// Command gracetrain runs one distributed training configuration end to end
// and reports per-epoch quality, virtual time, and volume — the building
// block the figure-level experiments are made of.
//
// Usage:
//
//	gracetrain -bench ncf -method topk -ratio 0.01 -ef -workers 8 -net tcp-10g
//	gracetrain -benchlist
//	gracetrain -methods
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
)

func main() {
	var (
		bench     = flag.String("bench", "cnnsmall", "benchmark name (see -benchlist)")
		method    = flag.String("method", "none", "compression method (see -methods)")
		ratio     = flag.Float64("ratio", 0, "sparsification ratio / adaptive alpha")
		levels    = flag.Int("levels", 0, "quantization levels / sketch buckets")
		rank      = flag.Int("rank", 0, "low-rank factorization rank")
		threshold = flag.Float64("threshold", 0, "threshold (thresholdv) / sparsity multiplier (threelc)")
		ef        = flag.Bool("ef", false, "enable framework error feedback")
		codecpar  = flag.Int("codecpar", 0, "codec lanes per worker Engine (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 8, "number of workers")
		net       = flag.String("net", "tcp-10g", "network preset")
		scale     = flag.Float64("scale", 1.0, "epoch scale factor")
		seed      = flag.Uint64("seed", 42, "run seed")
		benchlist = flag.Bool("benchlist", false, "list benchmarks")
		methods   = flag.Bool("methods", false, "list methods")
		chaos     = flag.Bool("chaos", false, "run the fault-injection chaos sweep instead of training")
	)
	flag.Parse()

	if *chaos {
		runChaos(*workers, *seed)
		return
	}

	if *benchlist {
		for _, b := range harness.Benchmarks() {
			fmt.Printf("%-10s stands in for %-24s (%s, metric: %s)\n", b.Name, b.PaperModel, b.Task, b.Metric)
		}
		return
	}
	if *methods {
		for _, m := range grace.All() {
			fmt.Printf("%-12s %-15s EF-default=%v builtin-EF=%v  %s\n", m.Name, m.Class, m.DefaultEF, m.BuiltinEF, m.Reference)
		}
		return
	}

	b, err := harness.BenchmarkByName(*bench)
	if err != nil {
		fatal(err)
	}
	link, err := simnet.PresetByName(*net)
	if err != nil {
		fatal(err)
	}
	meta, err := grace.Lookup(*method)
	if err != nil {
		fatal(err)
	}
	useEF := *ef
	if meta.BuiltinEF && useEF {
		fmt.Fprintf(os.Stderr, "gracetrain: %s has built-in memory; disabling framework EF\n", *method)
		useEF = false
	}
	spec := harness.MethodSpec{
		Label: *method,
		Name:  *method,
		Opts: grace.BuildOptions(
			grace.WithRatio(*ratio), grace.WithLevels(*levels),
			grace.WithRank(*rank), grace.WithThreshold(*threshold),
		),
		EF: useEF,
	}
	sc := harness.SweepConfig{
		Workers: *workers, Net: link, Scale: *scale, Seed: *seed,
		CodecParallelism: *codecpar,
	}
	fmt.Printf("training %s (%s) with %s on %d workers over %s\n",
		b.Name, b.PaperModel, *method, *workers, link.Name)
	rep, err := harness.RunOne(b, spec, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\n%-6s %-12s %-12s\n", "epoch", b.Metric, "time (s)")
	for i := range rep.EpochQuality {
		fmt.Printf("%-6d %-12.4f %-12.2f\n", i+1, rep.EpochQuality[i], rep.EpochVirtualTime[i].Seconds())
	}
	fmt.Printf("\nbest %s:        %.4f\n", b.Metric, rep.BestQuality)
	fmt.Printf("throughput:       %.1f samples/s (virtual)\n", rep.Throughput)
	fmt.Printf("volume/iteration: %.0f bytes/worker\n", rep.BytesPerIter)
	fmt.Printf("time split:       compute %v | codec %v | network %v\n",
		rep.ComputeTime, rep.CodecTime, rep.CommTime)
}

// runChaos executes the default fault-injection battery: engines over a
// Faulty-wrapped hub, one scenario per fault kind, with a watchdog converting
// any deadlock into a failed row. Exits nonzero if any scenario fails.
func runChaos(workers int, seed uint64) {
	cfg := harness.DefaultChaos(workers, seed)
	fmt.Printf("chaos sweep: %d workers, %d tensors x %d steps, method %s\n\n",
		cfg.Workers, cfg.Tensors, cfg.Steps, cfg.Method)
	fmt.Printf("%-18s %-6s %-9s %-9s %-10s %-8s\n",
		"scenario", "pass", "injected", "faults", "fallbacks", "elapsed")
	failed := 0
	for _, r := range harness.RunChaos(cfg) {
		verdict := "ok"
		if !r.Pass {
			verdict = "FAIL"
			failed++
		}
		fmt.Printf("%-18s %-6s %-9d %-9d %-10d %-8s\n",
			r.Scenario, verdict, r.Injected, r.Faults, r.Fallbacks, r.Elapsed.Round(time.Millisecond))
		if r.Detail != "" {
			fmt.Printf("    %s\n", r.Detail)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d chaos scenario(s) failed", failed))
	}
	runRecoveryScenarios()
}

// runRecoveryScenarios executes the supervised kill/restart battery: one
// worker dies mid-run, the group rolls back to the newest common checkpoint,
// and the recovered finals must match an uninterrupted run bit for bit — on
// both the in-process hub and a real heartbeat-enabled TCP ring, for a
// stateless codec with framework error feedback and a codec with internal
// state.
func runRecoveryScenarios() {
	fmt.Printf("\nrecovery scenarios: kill one rank mid-run, restart from the newest common checkpoint\n")
	fmt.Printf("%-14s %-6s %-12s %-8s\n", "scenario", "pass", "resume-step", "elapsed")
	failed := 0
	for _, sc := range []struct {
		transport, method string
		mem               bool
	}{
		{harness.TransportHub, "topk", true},
		{harness.TransportHub, "dgc", false},
		{harness.TransportTCP, "topk", true},
		{harness.TransportTCP, "dgc", false},
	} {
		name := sc.transport + "/" + sc.method
		dir, err := os.MkdirTemp("", "grace-recovery-*")
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		res, err := harness.RunRecovery(harness.DefaultRecovery(sc.transport, sc.method, sc.mem, dir))
		elapsed := time.Since(start).Round(time.Millisecond)
		os.RemoveAll(dir)
		switch {
		case err != nil:
			failed++
			fmt.Printf("%-14s %-6s %-12s %-8s\n    %v\n", name, "FAIL", "-", elapsed, err)
		case !res.Match:
			failed++
			fmt.Printf("%-14s %-6s %-12d %-8s\n    %s\n", name, "FAIL", res.ResumeStep, elapsed, res.Detail)
		default:
			fmt.Printf("%-14s %-6s %-12d %-8s\n", name, "ok", res.ResumeStep, elapsed)
		}
	}
	if failed > 0 {
		fatal(fmt.Errorf("%d recovery scenario(s) failed", failed))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gracetrain:", err)
	os.Exit(1)
}
