// Command gracetrain runs one distributed training configuration end to end
// and reports per-epoch quality, virtual time, and volume — the building
// block the figure-level experiments are made of.
//
// Usage:
//
//	gracetrain -bench ncf -method topk -ratio 0.01 -ef -workers 8 -net tcp-10g
//	gracetrain -bench ncf -method topk,qsgd,powersgd -telemetry-addr 127.0.0.1:9090
//	gracetrain -benchlist
//	gracetrain -methods
//
// -method accepts a comma-separated list; each method trains in turn inside
// the one process, so a single live telemetry endpoint (-telemetry-addr)
// observes all of them. -trace writes a Chrome trace_event file of every
// phase span; -runjson writes a machine-readable run summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

func main() {
	var (
		bench       = flag.String("bench", "cnnsmall", "benchmark name (see -benchlist)")
		method      = flag.String("method", "none", "compression method, or comma-separated list (see -methods)")
		ratio       = flag.Float64("ratio", 0, "sparsification ratio / adaptive alpha")
		levels      = flag.Int("levels", 0, "quantization levels / sketch buckets")
		rank        = flag.Int("rank", 0, "low-rank factorization rank")
		threshold   = flag.Float64("threshold", 0, "threshold (thresholdv) / sparsity multiplier (threelc)")
		ef          = flag.Bool("ef", false, "enable framework error feedback")
		codecpar    = flag.Int("codecpar", 0, "codec lanes per worker Engine (0 = GOMAXPROCS)")
		fusion      = flag.Int("fusion-bytes", 0, "tensor-fusion bucket fill target in bytes; one collective round carries many tensors (0 = per-tensor rounds)")
		workers     = flag.Int("workers", 8, "number of workers")
		net         = flag.String("net", "tcp-10g", "network preset")
		scale       = flag.Float64("scale", 1.0, "epoch scale factor")
		seed        = flag.Uint64("seed", 42, "run seed")
		benchlist   = flag.Bool("benchlist", false, "list benchmarks")
		methods     = flag.Bool("methods", false, "list methods")
		chaos       = flag.Bool("chaos", false, "run the fault-injection chaos sweep (add an explicit -bench/-method to also train afterwards in the same process)")
		rejoin      = flag.Bool("rejoin", false, "run the live-rejoin battery standalone: one rank dies mid-run, the survivors reform and heal in place, with a restart-vs-rejoin downtime comparison (included in -chaos)")
		elastic     = flag.Bool("elastic", false, "run the elastic-membership battery: one rank dies for good, the survivors vote to continue at N-1 (verified bitwise against an N-1 reference), then a fresh joiner grows a group back to full size; includes a degrade-vs-restart downtime comparison")
		retryBudget = flag.Int("retry-budget", 0, "override the total retry budget of the chaos sweep's transient-fault retry scenarios (0 = policy default)")
		autotune    = flag.Bool("autotune", false, "run the autotune battery on -bench: one tuned run vs every static candidate, compared on modeled step time (writes BENCH_autotune_<bench>.json; ignores -method and -fusion-bytes)")
		straggler   = flag.Bool("straggler", false, "run the straggler-attribution battery: 4 ranks with one injected slow rank; the merged cross-rank trace must attribute ≥90% of steps to it (writes XRANK_* artifacts into -artifacts)")
		xr          = flag.Bool("xrank", false, "enable the cross-rank observability plane for training runs: step-correlated distributed trace, flight recorder, skew analytics (artifacts land in -artifacts)")
		xrEvery     = flag.Int("xrank-every", 25, "cross-rank trace aggregation cadence in optimizer steps (with -xrank; adds one small allgather per cadence tick)")
		telAddr     = flag.String("telemetry-addr", "", "serve live /metrics, /debug/vars and /debug/pprof on this address; also enables span recording")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event file (load in Perfetto / chrome://tracing); also enables span recording")
		telLinger   = flag.Duration("telemetry-linger", 0, "keep the telemetry server up this long after the run, for a final scrape")
		artifacts   = flag.String("artifacts", "", "write an auto-named run summary (RUN_<kind>.json) into this directory")
		runJSON     = flag.String("runjson", "", "write a machine-readable run summary (JSON) to this exact path (deprecated: use -artifacts)")
	)
	flag.Parse()

	finishTel := startTelemetry(*telAddr, *tracePath, *telLinger)

	// -xrank arms the cross-rank plane process-wide up front, so the chaos
	// battery's injected faults leave flight recordings too — not only the
	// training run (whose trainer re-applies the same configuration).
	if *xr {
		xrank.Default.SetEnabled(true)
		if *artifacts != "" {
			xrank.Default.ConfigureFlight(*artifacts, 0, 0)
		}
	}

	// -chaos / -rejoin / -elastic alone replace training; combined with an
	// explicit -bench or -method they run first, so one process (and one
	// telemetry endpoint) covers fault/recovery counters and multi-strategy
	// training.
	trainRequested := !*chaos && !*rejoin && !*elastic
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "bench" || f.Name == "method" || f.Name == "autotune" {
			trainRequested = true
		}
	})
	summary := &harness.RunSummary{Kind: "train", Workers: *workers, Seed: *seed, Pass: true}
	chaosFailed := 0
	if *straggler {
		summary.Kind = "straggler"
		failed := runStraggler(*seed, *artifacts, summary)
		writeSummary(*runJSON, *artifacts, summary)
		finishTel()
		if failed {
			fatal(fmt.Errorf("straggler-attribution battery failed"))
		}
		return
	}
	if *chaos || *rejoin || *elastic {
		var kinds []string
		if *chaos {
			kinds = append(kinds, "chaos")
		} else if *rejoin {
			kinds = append(kinds, "rejoin")
		}
		if *elastic {
			kinds = append(kinds, "elastic")
		}
		summary.Kind = strings.Join(kinds, "+")
		if trainRequested {
			summary.Kind += "+train"
		}
		if *chaos {
			// The full sweep already includes the rejoin battery.
			chaosFailed = runChaos(*workers, *seed, *retryBudget, summary)
		} else if *rejoin {
			chaosFailed = runRejoinScenarios(summary)
		}
		if *elastic {
			chaosFailed += runElasticScenarios(summary)
		}
		if !trainRequested {
			writeSummary(*runJSON, *artifacts, summary)
			finishTel()
			if chaosFailed > 0 {
				fatal(fmt.Errorf("%d chaos/recovery scenario(s) failed", chaosFailed))
			}
			return
		}
	}

	if *benchlist {
		for _, b := range harness.Benchmarks() {
			fmt.Printf("%-10s stands in for %-24s (%s, metric: %s)\n", b.Name, b.PaperModel, b.Task, b.Metric)
		}
		return
	}
	if *methods {
		for _, m := range grace.All() {
			fmt.Printf("%-12s %-15s EF-default=%v builtin-EF=%v  %s\n", m.Name, m.Class, m.DefaultEF, m.BuiltinEF, m.Reference)
		}
		return
	}

	b, err := harness.BenchmarkByName(*bench)
	if err != nil {
		fatal(err)
	}
	link, err := simnet.PresetByName(*net)
	if err != nil {
		fatal(err)
	}
	sc := harness.SweepConfig{
		Workers: *workers, Net: link, Scale: *scale, Seed: *seed,
		CodecParallelism: *codecpar,
		FusionBytes:      *fusion,
	}
	if *xr {
		sc.XRank = grace.XRankConfig{
			Enable:         true,
			AggregateEvery: *xrEvery,
			ArtifactsDir:   *artifacts,
		}
	}

	if *autotune {
		if *chaos {
			summary.Kind = "chaos+autotune"
		} else {
			summary.Kind = "autotune"
		}
		// The Engine rejects fusion in tuner mode; the battery compares
		// per-tensor collective schedules.
		sc.FusionBytes = 0
		runAutotune(b, sc, *artifacts, summary)
		writeSummary(*runJSON, *artifacts, summary)
		finishTel()
		if chaosFailed > 0 {
			fatal(fmt.Errorf("%d chaos/recovery scenario(s) failed", chaosFailed))
		}
		return
	}

	for _, name := range strings.Split(*method, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		meta, err := grace.Lookup(name)
		if err != nil {
			fatal(err)
		}
		useEF := *ef
		if meta.BuiltinEF && useEF {
			fmt.Fprintf(os.Stderr, "gracetrain: %s has built-in memory; disabling framework EF\n", name)
			useEF = false
		}
		spec := harness.MethodSpec{
			Label: name,
			Name:  name,
			Opts: grace.BuildOptions(
				grace.WithRatio(*ratio), grace.WithLevels(*levels),
				grace.WithRank(*rank), grace.WithThreshold(*threshold),
			),
			EF: useEF,
		}
		fmt.Printf("training %s (%s) with %s on %d workers over %s\n",
			b.Name, b.PaperModel, name, *workers, link.Name)
		rep, err := harness.RunOne(b, spec, sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%-6s %-12s %-12s\n", "epoch", b.Metric, "time (s)")
		for i := range rep.EpochQuality {
			fmt.Printf("%-6d %-12.4f %-12.2f\n", i+1, rep.EpochQuality[i], rep.EpochVirtualTime[i].Seconds())
		}
		fmt.Printf("\nbest %s:        %.4f\n", b.Metric, rep.BestQuality)
		fmt.Printf("throughput:       %.1f samples/s (virtual)\n", rep.Throughput)
		fmt.Printf("volume/iteration: %.0f bytes/worker sent, %.0f received\n", rep.BytesPerIter, rep.RecvPerIter)
		fmt.Printf("time split:       compute %v | codec %v | network %v\n\n",
			rep.ComputeTime, rep.CodecTime, rep.CommTime)
		summary.Train = append(summary.Train, harness.TrainJSON(b.Name, name, rep))
		// The summary carries the last method's per-tensor quality table;
		// with -xrank the headline rows also print here.
		summary.Quality = rep.Quality
		if *xr && len(rep.Quality) > 0 {
			fmt.Printf("%-24s %-12s %-10s %-14s %-12s\n", "tensor", "method", "params", "bits/param", "residual-L2")
			for _, q := range rep.Quality {
				fmt.Printf("%-24s %-12s %-10d %-14.3f %-12.4g\n", q.Name, q.Method, q.Params, q.BitsPerParam, q.ResidualL2)
			}
			fmt.Println()
		}
	}

	writeSummary(*runJSON, *artifacts, summary)
	finishTel()
	if chaosFailed > 0 {
		fatal(fmt.Errorf("%d chaos/recovery scenario(s) failed", chaosFailed))
	}
}

// startTelemetry enables span recording and stands up the exporters the
// flags ask for; the returned func finishes them (linger for a last scrape,
// flush and close the trace). With no flags set, both are no-ops.
func startTelemetry(addr, tracePath string, linger time.Duration) func() {
	if addr == "" && tracePath == "" {
		return func() {}
	}
	telemetry.Default.Enable(true)
	var tr *telemetry.Tracer
	if tracePath != "" {
		var err error
		if tr, err = telemetry.CreateTrace(tracePath); err != nil {
			fatal(err)
		}
		telemetry.Default.SetTracer(tr)
	}
	var srv *telemetry.MetricsServer
	if addr != "" {
		var err error
		if srv, err = telemetry.Default.Serve(addr); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}
	return func() {
		if srv != nil && linger > 0 {
			fmt.Printf("telemetry: lingering %v for a final scrape of http://%s/metrics\n", linger, srv.Addr())
			time.Sleep(linger)
		}
		if tr != nil {
			telemetry.Default.SetTracer(nil)
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "gracetrain: closing trace:", err)
			} else {
				fmt.Printf("telemetry: trace written to %s\n", tracePath)
			}
		}
		if srv != nil {
			srv.Close()
		}
	}
}

// writeSummary snapshots the telemetry registry into the summary and writes
// it — auto-named into dir (-artifacts) and/or to the exact path (-runjson,
// the deprecated alias). With neither set, it does nothing.
func writeSummary(path, dir string, s *harness.RunSummary) {
	if path == "" && dir == "" {
		return
	}
	snap := telemetry.Default.Snapshot()
	s.Telemetry = &snap
	if dir != "" {
		out, err := harness.WriteRunSummaryDir(dir, s)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run summary written to %s\n", out)
	}
	if path != "" {
		if err := harness.WriteRunSummary(path, s); err != nil {
			fatal(err)
		}
		fmt.Printf("run summary written to %s\n", path)
	}
}

// runAutotune runs the autotune battery on one benchmark — a tuned training
// run against every static candidate, all frozen policies rescored on a
// common replay stream — prints the ranking, and writes the
// BENCH_autotune_<bench>.json artifact (into -artifacts, or ./results).
func runAutotune(b harness.Benchmark, sc harness.SweepConfig, artifactsDir string, summary *harness.RunSummary) {
	fmt.Printf("autotune battery: %s (%s) on %d workers over %s\n\n",
		b.Name, b.PaperModel, sc.Workers, sc.Net.Name)
	res, err := harness.RunAutotuneBench(b, sc)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-12s %-14s %-12s %-9s\n", "policy", "step (modeled)", b.Metric, "switches")
	for _, r := range res.Rows {
		fmt.Printf("%-12s %-14s %-12.4f %-9d\n",
			r.Label, r.StepTime.Round(time.Microsecond), r.Report.FinalQuality, r.Switches)
		summary.Train = append(summary.Train, harness.TrainJSON(b.Name, r.Label, r.Report))
	}
	fmt.Printf("\ntuned vs best static (%s): %s vs %s\n",
		res.BestStatic.Label, res.Tuned.StepTime.Round(time.Microsecond), res.BestStatic.StepTime.Round(time.Microsecond))
	fmt.Printf("final tuned policy: %s\n", strings.Join(res.Tuned.FinalPolicy, ", "))
	if res.Tuned.StepTime > res.BestStatic.StepTime {
		summary.Pass = false
		fmt.Println("WARNING: tuned policy is slower than the best static method")
	}
	dir := artifactsDir
	if dir == "" {
		dir = "results"
	}
	out, err := telemetry.WriteBenchArtifact(dir, harness.AutotuneArtifact(res))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("bench artifact written to %s\n", out)
}

// runChaos executes the default fault-injection battery: engines over a
// Faulty-wrapped hub, one scenario per fault kind, with a watchdog converting
// any deadlock into a failed row. Scenario rows land in summary; the return
// value is the number of failed scenarios.
// runStraggler executes the straggler-attribution battery and reports the
// verdict; artifacts (merged trace + skew summary) land in artifactsDir for
// gracestat. Returns true on failure.
func runStraggler(seed uint64, artifactsDir string, summary *harness.RunSummary) bool {
	cfg := harness.DefaultStraggler(4, seed)
	cfg.ArtifactsDir = artifactsDir
	fmt.Printf("straggler battery: %d ranks, rank %d delayed %v before every allreduce, %d steps\n",
		cfg.Workers, cfg.DelayRank, cfg.Delay, cfg.Steps)
	res := harness.RunStraggler(cfg)
	for rank, err := range res.Errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracetrain: straggler rank %d: %v\n", rank, err)
		}
	}
	verdict := "ok"
	if !res.Pass {
		verdict = "FAIL"
		summary.Pass = false
	}
	fmt.Printf("%-6s attributed %d/%d steps to rank %d, max skew %v, counts %v\n",
		verdict, res.Attributed, res.SkewSteps, res.DelayedRank,
		time.Duration(res.MaxSkewNs).Round(time.Microsecond), res.Counts)
	if res.Detail != "" {
		fmt.Printf("    %s\n", res.Detail)
	}
	if artifactsDir != "" && res.Pass {
		fmt.Printf("artifacts: %s/XRANK_trace.json (chrome://tracing), %s/XRANK_skew.json (gracestat)\n",
			artifactsDir, artifactsDir)
	}
	summary.Straggler = append(summary.Straggler, harness.StragglerJSON(res))
	return !res.Pass
}

func runChaos(workers int, seed uint64, retryBudget int, summary *harness.RunSummary) int {
	cfg := harness.DefaultChaos(workers, seed)
	tuned := harness.AutotuneChaos(workers, seed)
	if retryBudget > 0 {
		for _, c := range []*harness.ChaosConfig{&cfg, &tuned} {
			for i := range c.Scenarios {
				if c.Scenarios[i].Retry != nil {
					c.Scenarios[i].Retry.Budget = retryBudget
				}
			}
		}
	}
	fmt.Printf("chaos sweep: %d workers, %d tensors x %d steps, method %s\n\n",
		cfg.Workers, cfg.Tensors, cfg.Steps, cfg.Method)
	fmt.Printf("%-18s %-6s %-9s %-8s %-9s %-10s %-8s\n",
		"scenario", "pass", "injected", "retries", "faults", "fallbacks", "elapsed")
	failed := 0
	report := func(r harness.ChaosResult, prefix string) {
		verdict := "ok"
		if !r.Pass {
			verdict = "FAIL"
			failed++
			summary.Pass = false
		}
		r.Scenario = prefix + r.Scenario
		fmt.Printf("%-18s %-6s %-9d %-8d %-9d %-10d %-8s\n",
			r.Scenario, verdict, r.Injected, r.Retries, r.Faults, r.Fallbacks, r.Elapsed.Round(time.Millisecond))
		if r.Detail != "" {
			fmt.Printf("    %s\n", r.Detail)
		}
		summary.Chaos = append(summary.Chaos, harness.ChaosJSON(r))
	}
	for _, r := range harness.RunChaos(cfg) {
		report(r, "")
	}
	// The same battery with the engines in autotuning mode, so faults also
	// land on warmup probes, scored switches, and flush handoffs.
	for _, r := range harness.RunChaos(tuned) {
		report(r, "tuned/")
	}
	return failed + runRecoveryScenarios(summary) + runRejoinScenarios(summary)
}

// runRecoveryScenarios executes the supervised kill/restart battery: one
// worker dies mid-run, the group rolls back to the newest common checkpoint,
// and the recovered finals must match an uninterrupted run bit for bit — on
// both the in-process hub and a real heartbeat-enabled TCP ring, for a
// stateless codec with framework error feedback and a codec with internal
// state.
func runRecoveryScenarios(summary *harness.RunSummary) int {
	fmt.Printf("\nrecovery scenarios: kill one rank mid-run, restart from the newest common checkpoint\n")
	fmt.Printf("%-14s %-6s %-12s %-8s\n", "scenario", "pass", "resume-step", "elapsed")
	failed := 0
	for _, sc := range []struct {
		transport, method string
		mem               bool
		// hang freezes the victim instead of severing its sockets, so the
		// survivors convict it through the heartbeat miss window.
		hang bool
		// autotune runs the workers under the runtime policy engine; the
		// restart must resume the policy trajectory bitwise too.
		autotune bool
	}{
		{harness.TransportHub, "topk", true, false, false},
		{harness.TransportHub, "dgc", false, false, false},
		{harness.TransportTCP, "topk", true, false, false},
		{harness.TransportTCP, "dgc", false, true, false},
		{harness.TransportHub, "autotune", true, false, true},
		{harness.TransportTCP, "autotune", true, false, true},
	} {
		name := sc.transport + "/" + sc.method
		if sc.hang {
			name += "/hang"
		}
		dir, err := os.MkdirTemp("", "grace-recovery-*")
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rcfg := harness.DefaultRecovery(sc.transport, sc.method, sc.mem, dir)
		if sc.autotune {
			rcfg = harness.AutotuneRecovery(sc.transport, dir)
		}
		if sc.hang {
			rcfg.KillMode = "hang"
		}
		res, err := harness.RunRecovery(rcfg)
		elapsed := time.Since(start).Round(time.Millisecond)
		os.RemoveAll(dir)
		row := harness.RecoveryJSON(name, res, elapsed, err)
		summary.Recovery = append(summary.Recovery, row)
		switch {
		case err != nil:
			failed++
			summary.Pass = false
			fmt.Printf("%-14s %-6s %-12s %-8s\n    %v\n", name, "FAIL", "-", elapsed, err)
		case !res.Match:
			failed++
			summary.Pass = false
			fmt.Printf("%-14s %-6s %-12d %-8s\n    %s\n", name, "FAIL", res.ResumeStep, elapsed, res.Detail)
		default:
			fmt.Printf("%-14s %-6s %-12d %-8s\n", name, "ok", res.ResumeStep, elapsed)
		}
	}
	return failed
}

// runRejoinScenarios executes the live-rejoin battery and prints the
// restart-vs-rejoin downtime comparison: the same kill handled by (a) the
// supervised full-restart path, where every rank's worker is torn down and
// relaunched from the newest common checkpoint, and (b) the self-healing
// path, where the survivors reform at the next generation and roll back in
// place while only the dead rank is respawned. Both must converge bitwise to
// the uninterrupted reference; the rejoin path must additionally keep every
// healthy rank's worker alive (launch count 1).
func runRejoinScenarios(summary *harness.RunSummary) int {
	fmt.Printf("\nrejoin scenarios: kill one rank mid-run, survivors heal in place (vs full restart)\n")
	fmt.Printf("%-14s %-6s %-12s %-4s %-10s %-16s %-16s\n",
		"scenario", "pass", "resume-step", "gen", "launches", "rejoin-downtime", "restart-downtime")
	failed := 0
	for _, sc := range []struct {
		transport, method string
		mem               bool
		autotune          bool
	}{
		{harness.TransportHub, "topk", true, false},
		{harness.TransportTCP, "topk", true, false},
		{harness.TransportTCP, "dgc", false, false},
		{harness.TransportTCP, "autotune", true, true},
	} {
		name := sc.transport + "/" + sc.method
		mkcfg := func() (harness.RecoveryConfig, string, error) {
			dir, err := os.MkdirTemp("", "grace-rejoin-*")
			if err != nil {
				return harness.RecoveryConfig{}, "", err
			}
			cfg := harness.DefaultRecovery(sc.transport, sc.method, sc.mem, dir)
			if sc.autotune {
				cfg = harness.AutotuneRecovery(sc.transport, dir)
			}
			return cfg, dir, nil
		}

		// The restart baseline: same transport, same kill, full teardown.
		cfg, dir, err := mkcfg()
		if err != nil {
			fatal(err)
		}
		var restartDowntime time.Duration
		if rres, rerr := harness.RunRecovery(cfg); rerr == nil && rres.Match {
			restartDowntime = rres.Downtime
		}
		os.RemoveAll(dir)

		if cfg, dir, err = mkcfg(); err != nil {
			fatal(err)
		}
		res, err := harness.RunRejoin(cfg)
		os.RemoveAll(dir)
		row := harness.RejoinJSON(name, res, restartDowntime, err)
		summary.Rejoin = append(summary.Rejoin, row)
		healthyStayed := err == nil
		if err == nil {
			for rank, launches := range res.Launches {
				want := 1
				if rank == cfg.KillRank {
					want = 2
				}
				if launches != want {
					healthyStayed = false
				}
			}
		}
		switch {
		case err != nil:
			failed++
			summary.Pass = false
			fmt.Printf("%-14s %-6s\n    %v\n", name, "FAIL", err)
		case !res.Match || !healthyStayed:
			failed++
			summary.Pass = false
			fmt.Printf("%-14s %-6s %-12d %-4d %-10v %-16s %-16s\n    %s\n",
				name, "FAIL", res.ResumeStep, res.Generation, res.Launches,
				res.Downtime.Round(time.Millisecond), restartDowntime.Round(time.Millisecond), res.Detail)
		default:
			fmt.Printf("%-14s %-6s %-12d %-4d %-10v %-16s %-16s\n",
				name, "ok", res.ResumeStep, res.Generation, res.Launches,
				res.Downtime.Round(time.Millisecond), restartDowntime.Round(time.Millisecond))
		}
	}
	return failed
}

// runElasticScenarios drives the elastic-membership battery: a rank dies for
// good, the survivors vote to continue at N−1 (finishing bitwise-identical to
// an N−1 reference started from the post-reform state), and — in the grow
// scenario — a fresh joiner presented at a step boundary is absorbed back to
// full size. The supervised full-restart path on the same kill provides the
// degrade-vs-restart downtime comparison.
func runElasticScenarios(summary *harness.RunSummary) int {
	fmt.Printf("\nelastic scenarios: kill one rank for good; survivors commit N-1 and continue, then a fresh joiner grows the group back\n")
	fmt.Printf("%-12s %-6s %-7s %-12s %-6s %-9s %-17s %-16s\n",
		"scenario", "pass", "size", "shrink-step", "lost", "ef-drops", "shrink-downtime", "restart-downtime")
	failed := 0
	for _, sc := range []struct {
		transport, method string
		mem               bool
	}{
		{harness.TransportHub, "topk", true},
		{harness.TransportHub, "dgc", false},
		{harness.TransportTCP, "topk", true},
	} {
		name := sc.transport + "/" + sc.method
		mkcfg := func() (harness.RecoveryConfig, string, error) {
			dir, err := os.MkdirTemp("", "grace-elastic-*")
			if err != nil {
				return harness.RecoveryConfig{}, "", err
			}
			return harness.DefaultElastic(sc.transport, sc.method, sc.mem, dir), dir, nil
		}

		// The restart baseline: same transport, same kill, full teardown of
		// every rank instead of a degraded continue.
		cfg, dir, err := mkcfg()
		if err != nil {
			fatal(err)
		}
		var restartDowntime time.Duration
		if rres, rerr := harness.RunRecovery(cfg); rerr == nil && rres.Match {
			restartDowntime = rres.Downtime
		}
		os.RemoveAll(dir)

		if cfg, dir, err = mkcfg(); err != nil {
			fatal(err)
		}
		res, err := harness.RunElastic(cfg)
		os.RemoveAll(dir)
		row := harness.ElasticJSON(name, res, restartDowntime, err)
		summary.Elastic = append(summary.Elastic, row)
		switch {
		case err != nil:
			failed++
			summary.Pass = false
			fmt.Printf("%-12s %-6s\n    %v\n", name, "FAIL", err)
		case !res.Match:
			failed++
			summary.Pass = false
			fmt.Printf("%-12s %-6s %-7s %-12d %-6s %-9d %-17s %-16s\n    %s\n",
				name, "FAIL", fmt.Sprintf("%d->%d", cfg.Train.Workers, res.ShrinkSize),
				res.ShrinkStep, fmt.Sprint(res.Lost), res.EFDrops,
				res.Downtime.Round(time.Millisecond), restartDowntime.Round(time.Millisecond), res.Detail)
		default:
			fmt.Printf("%-12s %-6s %-7s %-12d %-6s %-9d %-17s %-16s\n",
				name, "ok", fmt.Sprintf("%d->%d", cfg.Train.Workers, res.ShrinkSize),
				res.ShrinkStep, fmt.Sprint(res.Lost), res.EFDrops,
				res.Downtime.Round(time.Millisecond), restartDowntime.Round(time.Millisecond))
		}
	}

	// The grow scenario: shrink as above, then a fresh worker presents at the
	// members' join point and the group absorbs it back to full size.
	name := harness.TransportHub + "/grow"
	dir, err := os.MkdirTemp("", "grace-elastic-*")
	if err != nil {
		fatal(err)
	}
	growCfg := harness.DefaultElastic(harness.TransportHub, "topk", true, dir)
	gres, gerr := harness.RunElasticGrow(growCfg)
	os.RemoveAll(dir)
	row := harness.ElasticGrowJSON(name, gres, growCfg.Train.Workers, gerr)
	summary.Elastic = append(summary.Elastic, row)
	fmt.Printf("\n%-12s %-6s %-7s %-12s %-12s %-16s\n",
		"scenario", "pass", "size", "shrink-step", "grow-step", "grow-downtime")
	switch {
	case gerr != nil:
		failed++
		summary.Pass = false
		fmt.Printf("%-12s %-6s\n    %v\n", name, "FAIL", gerr)
	case !row.Pass:
		failed++
		summary.Pass = false
		fmt.Printf("%-12s %-6s %-7s %-12d %-12d %-16s\n",
			name, "FAIL", fmt.Sprintf("%d->%d", growCfg.Train.Workers-1, gres.GrowSize),
			gres.ShrinkStep, gres.GrowStep, gres.GrowDowntime.Round(time.Millisecond))
	default:
		fmt.Printf("%-12s %-6s %-7s %-12d %-12d %-16s\n",
			name, "ok", fmt.Sprintf("%d->%d", growCfg.Train.Workers-1, gres.GrowSize),
			gres.ShrinkStep, gres.GrowStep, gres.GrowDowntime.Round(time.Millisecond))
	}
	return failed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gracetrain:", err)
	os.Exit(1)
}
