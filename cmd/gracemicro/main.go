// Command gracemicro runs the Figure 8 codec micro-benchmark in isolation:
// compress+decompress latency per method over a range of input sizes.
//
// Usage:
//
//	gracemicro [-sizes 1,10,100] [-reps 30] [-method topk] [-artifacts results]
//
// With -artifacts (or its deprecated alias -json), each (method, size) point
// also lands as a machine-readable BENCH_codec_<method>_<size>.json artifact
// carrying mean ns/op, payload wire bytes, and the compression ratio.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	_ "repro/internal/compress/all"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	var (
		sizes   = flag.String("sizes", "1,10", "input sizes in MB, comma separated")
		reps    = flag.Int("reps", 10, "repetitions per point (paper: 30)")
		method  = flag.String("method", "", "restrict to one method label (e.g. 'Topk(0.01)')")
		artDir  = flag.String("artifacts", "", "write auto-named BENCH_codec_*.json artifacts into this directory")
		jsonDir = flag.String("json", "", "deprecated alias of -artifacts")
	)
	flag.Parse()
	if *artDir == "" {
		*artDir = *jsonDir
	}

	var mbs []int
	for _, s := range strings.Split(*sizes, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v <= 0 {
			fatal(fmt.Errorf("bad size %q", s))
		}
		mbs = append(mbs, v)
	}
	specs := harness.Suite()
	fmt.Printf("%-16s %-8s %-10s %-10s %-10s\n", "method", "input", "min(ms)", "mean(ms)", "max(ms)")
	for _, spec := range specs {
		if spec.Name == "none" {
			continue
		}
		if *method != "" && spec.Label != *method {
			continue
		}
		for _, mb := range mbs {
			d := mb * 1024 * 1024 / 4
			durs, err := harness.CodecLatency(spec, d, *reps, 7)
			if err != nil {
				fatal(err)
			}
			min, max, sum := durs[0], durs[0], time.Duration(0)
			for _, dd := range durs {
				if dd < min {
					min = dd
				}
				if dd > max {
					max = dd
				}
				sum += dd
			}
			mean := sum / time.Duration(len(durs))
			fmt.Printf("%-16s %-8s %-10.3f %-10.3f %-10.3f\n",
				spec.Label, fmt.Sprintf("%dMB", mb),
				float64(min)/1e6, float64(mean)/1e6, float64(max)/1e6)
			if *artDir != "" {
				wire, err := harness.CodecVolume(spec, d, 7)
				if err != nil {
					fatal(err)
				}
				a := telemetry.BenchArtifact{
					Name:             fmt.Sprintf("codec_%s_%dMB", spec.Label, mb),
					NsPerOp:          float64(mean.Nanoseconds()),
					SentBytes:        int64(wire),
					CompressionRatio: float64(4*d) / float64(wire),
					Extra: map[string]float64{
						"min_ns": float64(min.Nanoseconds()),
						"max_ns": float64(max.Nanoseconds()),
						"reps":   float64(len(durs)),
					},
				}
				path, err := telemetry.WriteBenchArtifact(*artDir, a)
				if err != nil {
					fatal(err)
				}
				fmt.Printf("    wrote %s\n", path)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gracemicro:", err)
	os.Exit(1)
}
