// Command gracestat renders the cross-rank observability artifacts a run
// leaves in its -artifacts directory: the per-step skew timeline and top
// stragglers from XRANK_skew.json, the per-tensor compression-quality table
// from the RUN_*.json summaries, and the flight-recorder dumps the fault
// path froze.
//
// Usage:
//
//	gracestat -artifacts results            # everything the dir holds
//	gracestat -artifacts results -top 3     # top-3 straggler table
//	gracestat -flight results/FLIGHT_000_comm_allreduce.json
//
// The merged Chrome trace (XRANK_trace.json) is not rendered here — load it
// in Perfetto or chrome://tracing; gracestat points at it when present.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/telemetry/xrank"
)

func main() {
	var (
		artifacts = flag.String("artifacts", "results", "artifacts directory to render")
		top       = flag.Int("top", 5, "straggler table length")
		timeline  = flag.Int("timeline", 20, "skew timeline rows (most recent steps; 0 = all)")
		flight    = flag.String("flight", "", "render one flight-recorder dump in detail instead of the directory overview")
	)
	flag.Parse()

	if *flight != "" {
		if err := renderFlight(*flight); err != nil {
			fatal(err)
		}
		return
	}
	any := false
	if renderSkew(filepath.Join(*artifacts, xrank.SkewFile), *top, *timeline) {
		any = true
	}
	if renderSummaries(*artifacts) {
		any = true
	}
	if renderFlightList(*artifacts) {
		any = true
	}
	if p := filepath.Join(*artifacts, xrank.TraceFile); exists(p) {
		fmt.Printf("merged trace: %s (load in Perfetto / chrome://tracing)\n", p)
		any = true
	}
	if !any {
		fatal(fmt.Errorf("no observability artifacts in %s (expected %s, RUN_*.json, or FLIGHT_*.json)",
			*artifacts, xrank.SkewFile))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gracestat:", err)
	os.Exit(1)
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// renderSkew prints the top-straggler table and the skew timeline from one
// XRANK_skew.json; reports whether the file was present.
func renderSkew(path string, top, timeline int) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	var s xrank.SkewSummary
	if err := json.Unmarshal(raw, &s); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	fmt.Printf("skew analytics: %d ranks, %d attributed steps (%s)\n\n", s.Size, s.Steps, path)
	if len(s.StragglerSteps) > 0 {
		type rankCount struct {
			rank  int
			count int64
		}
		ranks := make([]rankCount, 0, len(s.StragglerSteps))
		for r, n := range s.StragglerSteps {
			ranks = append(ranks, rankCount{r, n})
		}
		sort.SliceStable(ranks, func(a, b int) bool { return ranks[a].count > ranks[b].count })
		if top > 0 && len(ranks) > top {
			ranks = ranks[:top]
		}
		fmt.Printf("top stragglers:\n%-6s %-16s %s\n", "rank", "straggler-steps", "share")
		for _, rc := range ranks {
			share := 0.0
			if s.Steps > 0 {
				share = float64(rc.count) / float64(s.Steps)
			}
			fmt.Printf("%-6d %-16d %5.1f%%\n", rc.rank, rc.count, 100*share)
		}
		fmt.Println()
	}
	rows := s.Rows
	if timeline > 0 && len(rows) > timeline {
		fmt.Printf("skew timeline (last %d of %d steps):\n", timeline, len(rows))
		rows = rows[len(rows)-timeline:]
	} else if len(rows) > 0 {
		fmt.Println("skew timeline:")
	}
	if len(rows) > 0 {
		fmt.Printf("%-8s %-10s %-12s %s\n", "step", "straggler", "skew", "per-rank wait")
		for _, row := range rows {
			waits := make([]string, len(row.WaitNs))
			for r, w := range row.WaitNs {
				waits[r] = time.Duration(w).Round(10 * time.Microsecond).String()
			}
			fmt.Printf("%-8d %-10d %-12s %s\n",
				row.Step, row.Straggler, time.Duration(row.SkewNs).Round(10*time.Microsecond),
				strings.Join(waits, " "))
		}
		fmt.Println()
	}
	return true
}

// renderSummaries prints the quality table and battery verdicts from every
// RUN_*.json in the directory; reports whether any were found.
func renderSummaries(dir string) bool {
	paths, _ := filepath.Glob(filepath.Join(dir, "RUN_*.json"))
	found := false
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var s harness.RunSummary
		if err := json.Unmarshal(raw, &s); err != nil {
			fmt.Fprintf(os.Stderr, "gracestat: skipping %s: %v\n", path, err)
			continue
		}
		found = true
		verdict := "pass"
		if !s.Pass {
			verdict = "FAIL"
		}
		fmt.Printf("run summary %s: kind=%s workers=%d %s\n", filepath.Base(path), s.Kind, s.Workers, verdict)
		for _, st := range s.Straggler {
			fmt.Printf("  straggler battery: rank %d attributed %d/%d steps, max skew %.2fms (%s)\n",
				st.DelayedRank, st.Attributed, st.SkewSteps, st.MaxSkewMs, passStr(st.Pass))
		}
		if len(s.Quality) > 0 {
			rows := append([]grace.TensorQuality(nil), s.Quality...)
			grace.SortQualityByDensity(rows)
			fmt.Printf("  quality (densest wire first):\n")
			fmt.Printf("  %-24s %-12s %-10s %-12s %-12s %-8s %s\n",
				"tensor", "method", "params", "bits/param", "residual-L2", "faults", "fallbacks")
			for _, q := range rows {
				fmt.Printf("  %-24s %-12s %-10d %-12.3f %-12.4g %-8d %d\n",
					q.Name, q.Method, q.Params, q.BitsPerParam, q.ResidualL2, q.Faults, q.Fallbacks)
			}
		}
		fmt.Println()
	}
	return found
}

func passStr(ok bool) string {
	if ok {
		return "pass"
	}
	return "FAIL"
}

// renderFlightList names every flight dump in the directory with its reason
// and contents at a glance; reports whether any were found.
func renderFlightList(dir string) bool {
	paths, _ := filepath.Glob(filepath.Join(dir, "FLIGHT_*.json"))
	if len(paths) == 0 {
		return false
	}
	sort.Strings(paths)
	fmt.Printf("flight recordings (%d):\n", len(paths))
	for _, path := range paths {
		d, err := readFlight(path)
		if err != nil {
			fmt.Printf("  %-44s unreadable: %v\n", filepath.Base(path), err)
			continue
		}
		faults := 0
		for _, ev := range d.Events {
			if ev.Kind == xrank.KindFault {
				faults++
			}
		}
		fmt.Printf("  %-44s reason=%s events=%d faults=%d gen=%d\n",
			filepath.Base(path), d.Reason, len(d.Events), faults, d.Generation)
	}
	fmt.Printf("render one with: gracestat -flight %s\n\n", paths[0])
	return true
}

// renderFlight details one dump: the error, the fault events, and the tail
// of the op/step window leading up to the freeze.
func renderFlight(path string) error {
	d, err := readFlight(path)
	if err != nil {
		return err
	}
	fmt.Printf("flight recording %s\n", filepath.Base(path))
	fmt.Printf("reason:     %s\n", d.Reason)
	if d.Error != "" {
		fmt.Printf("error:      %s\n", d.Error)
	}
	fmt.Printf("frozen at:  %s (window %v, generation %d)\n\n",
		d.Time, time.Duration(d.WindowNs), d.Generation)
	var faults, others []xrank.Event
	for _, ev := range d.Events {
		if ev.Kind == xrank.KindFault {
			faults = append(faults, ev)
		} else {
			others = append(others, ev)
		}
	}
	if len(faults) > 0 {
		fmt.Printf("fault events (%d):\n%-6s %-12s %-10s %-8s %s\n", len(faults), "rank", "fault", "op", "seq", "gen")
		for _, ev := range faults {
			fmt.Printf("%-6d %-12s %-10s %-8d %d\n",
				ev.Rank, xrank.FaultName(ev.Aux), xrank.OpName(ev.Op), ev.Seq, ev.Gen)
		}
		fmt.Println()
	}
	const tail = 30
	if len(others) > tail {
		fmt.Printf("last %d of %d op/step events before the freeze:\n", tail, len(others))
		others = others[len(others)-tail:]
	} else if len(others) > 0 {
		fmt.Printf("op/step events (%d):\n", len(others))
	}
	if len(others) > 0 {
		fmt.Printf("%-6s %-6s %-10s %-8s %-12s %s\n", "rank", "kind", "op", "seq", "dur", "bytes")
		for _, ev := range others {
			kind, op := "op", xrank.OpName(ev.Op)
			if ev.Kind == xrank.KindStep {
				kind, op = "step", "-"
			}
			fmt.Printf("%-6d %-6s %-10s %-8d %-12v %d\n",
				ev.Rank, kind, op, ev.Seq, time.Duration(ev.DurNs).Round(time.Microsecond), ev.Bytes)
		}
	}
	if d.Goroutines != "" {
		fmt.Printf("\ngoroutine profile: %d bytes captured (in the JSON under \"goroutines\")\n", len(d.Goroutines))
	}
	return nil
}

func readFlight(path string) (*xrank.FlightDump, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d xrank.FlightDump
	if err := json.Unmarshal(raw, &d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &d, nil
}
