// Command graceworker runs one rank of a genuinely multi-process distributed
// training job over a real TCP ring: launch one process per rank with the
// same -addrs list and distinct -rank values (on one machine or several).
//
//	graceworker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -bench ncf -method topk -ratio 0.01 -ef &
//	graceworker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -bench ncf -method topk -ratio 0.01 -ef
//
// Every process builds the same synthetic dataset and model from the shared
// seed, so replicas agree exactly as the in-process trainer's do.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
)

func main() {
	var (
		rank      = flag.Int("rank", -1, "this process's rank")
		addrsFlag = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		bench     = flag.String("bench", "cnnsmall", "benchmark name")
		method    = flag.String("method", "none", "compression method")
		ratio     = flag.Float64("ratio", 0, "sparsification ratio")
		levels    = flag.Int("levels", 0, "quantization levels")
		rank_     = flag.Int("lowrank", 0, "low-rank factorization rank")
		ef        = flag.Bool("ef", false, "enable framework error feedback")
		codecpar  = flag.Int("codecpar", 0, "codec lanes for this worker's Engine (0 = GOMAXPROCS)")
		net       = flag.String("net", "tcp-10g", "modeled network preset for the virtual clock")
		scale     = flag.Float64("scale", 1.0, "epoch scale factor")
		seed      = flag.Uint64("seed", 42, "shared run seed")
		timeout   = flag.Duration("timeout", 30*time.Second, "ring setup timeout")
		optimeout = flag.Duration("optimeout", comm.DefaultOpTimeout, "per-collective-op deadline (<0 disables)")
		maxframe  = flag.Int("maxframe", comm.DefaultMaxFrameBytes, "largest accepted wire frame in bytes")
		chaos     = flag.String("chaos", "", "fault-injection plan, e.g. 'drop:rank=1,op=allgather,from=10' (see comm.ParsePlan)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for probabilistic fault rules")
	)
	flag.Parse()

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		fatal(fmt.Errorf("need -addrs with at least two entries"))
	}
	if *rank < 0 || *rank >= len(addrs) {
		fatal(fmt.Errorf("-rank %d out of range for %d addresses", *rank, len(addrs)))
	}
	b, err := harness.BenchmarkByName(*bench)
	if err != nil {
		fatal(err)
	}
	link, err := simnet.PresetByName(*net)
	if err != nil {
		fatal(err)
	}

	ring, err := comm.DialTCPRingConfig(comm.RingConfig{
		Rank:          *rank,
		Addrs:         addrs,
		SetupTimeout:  *timeout,
		OpTimeout:     *optimeout,
		MaxFrameBytes: *maxframe,
	})
	if err != nil {
		fatal(fmt.Errorf("ring setup: %w", err))
	}
	defer ring.Close()
	fmt.Printf("rank %d/%d joined the ring\n", *rank, len(addrs))

	// The worker's collective handle: the hardened ring, optionally wrapped in
	// a fault injector when a -chaos plan is given.
	var coll comm.Collective = ring
	if *chaos != "" {
		plan, err := comm.ParsePlan(*chaos, *chaosSeed)
		if err != nil {
			fatal(fmt.Errorf("bad -chaos plan: %w", err))
		}
		fy := comm.NewFaulty(ring, plan)
		defer func() {
			c := fy.Counts()
			fmt.Printf("rank %d injected faults: %d delays, %d drops, %d corruptions, %d resets, %d stalls\n",
				*rank, c.Delays, c.Drops, c.Corruptions, c.Resets, c.Stalls)
		}()
		coll = fy
	}

	workers := len(addrs)
	cfg := grace.Config{
		Workers:      workers,
		BatchSize:    b.BatchSize,
		Epochs:       scaledEpochs(b, *scale),
		Seed:         *seed,
		NewModel:     b.NewModel,
		Dataset:      b.NewDataset(),
		NewOptimizer: b.NewOptimizer,
		NewCompressor: func(r int) (grace.Compressor, error) {
			return grace.New(*method,
				grace.WithRatio(*ratio), grace.WithLevels(*levels), grace.WithRank(*rank_),
				grace.WithSeed(*seed*1000+uint64(r)))
		},
		UseMemory:            *ef,
		CodecParallelism:     *codecpar,
		Net:                  link,
		ComputePerIter:       b.ComputePerIter,
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	if *rank == 0 {
		cfg.Eval = b.NewEval()
	}

	rep, err := grace.RunWorker(cfg, *rank, coll, simnet.NewCluster(link, workers))
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		fmt.Printf("\n%-6s %-12s %-10s\n", "epoch", b.Metric, "time (s)")
		for i := range rep.EpochQuality {
			fmt.Printf("%-6d %-12.4f %-10.2f\n", i+1, rep.EpochQuality[i], rep.EpochVirtualTime[i].Seconds())
		}
		fmt.Printf("\nbest %s: %.4f | %.1f samples/s | %.0f bytes/iter/worker\n",
			b.Metric, rep.BestQuality, rep.Throughput, rep.BytesPerIter)
	} else {
		fmt.Printf("rank %d finished %d iterations (%.0f bytes/iter)\n", *rank, rep.Iters, rep.BytesPerIter)
	}
}

func scaledEpochs(b harness.Benchmark, scale float64) int {
	e := int(float64(b.Epochs) * scale)
	if e < 1 {
		e = 1
	}
	return e
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graceworker:", err)
	os.Exit(1)
}
