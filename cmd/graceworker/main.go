// Command graceworker runs one rank of a genuinely multi-process distributed
// training job over a real TCP ring: launch one process per rank with the
// same -addrs list and distinct -rank values (on one machine or several).
//
//	graceworker -rank 0 -addrs 127.0.0.1:7000,127.0.0.1:7001 -bench ncf -method topk -ratio 0.01 -ef &
//	graceworker -rank 1 -addrs 127.0.0.1:7000,127.0.0.1:7001 -bench ncf -method topk -ratio 0.01 -ef
//
// Every process builds the same synthetic dataset and model from the shared
// seed, so replicas agree exactly as the in-process trainer's do.
//
// With -checkpoint-dir/-checkpoint-every each rank snapshots its full
// training state crash-consistently; after a crash, relaunching every rank
// with -resume rolls the whole group back to the newest checkpoint all ranks
// hold and continues bitwise-identically. -heartbeat enables the ring's
// liveness layer so a dead peer fails collectives in a few intervals instead
// of a long stall timeout.
//
// With -rejoin (plus -heartbeat and -checkpoint-dir) a peer death no longer
// ends the run: the survivors reform the ring under the next group
// generation, roll back to the newest checkpoint step every rank holds, and
// continue in place. Respawn only the dead rank with the same flags plus
// -rejoin-sync and it negotiates its way back into the running group. A
// -retry-budget additionally absorbs transient collective failures with
// bounded, deterministically jittered retry before they escalate at all.
//
// With -elastic the group additionally survives PERMANENT rank loss: if the
// dead rank's respawn misses the -rejoin-deadline, the survivors vote to
// continue at N-1 (denominators, shards, and fusion plans re-derive from the
// new size; the lost rank's error-feedback residuals are declared lost and
// counted). Launching a fresh worker with -elastic-join later grows the group
// back to full size: it is absorbed at the members' next step boundary and
// adopts its training state from a donor snapshot.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

func main() {
	var (
		rank        = flag.Int("rank", -1, "this process's rank")
		addrsFlag   = flag.String("addrs", "", "comma-separated listen addresses, one per rank")
		bench       = flag.String("bench", "cnnsmall", "benchmark name")
		method      = flag.String("method", "none", "compression method")
		ratio       = flag.Float64("ratio", 0, "sparsification ratio")
		levels      = flag.Int("levels", 0, "quantization levels")
		rank_       = flag.Int("lowrank", 0, "low-rank factorization rank")
		ef          = flag.Bool("ef", false, "enable framework error feedback")
		codecpar    = flag.Int("codecpar", 0, "codec lanes for this worker's Engine (0 = GOMAXPROCS)")
		fusion      = flag.Int("fusion-bytes", 0, "tensor-fusion bucket fill target in bytes; one collective round carries many tensors (0 = per-tensor rounds; all ranks must agree)")
		autotune    = flag.Bool("autotune", false, "run under the runtime compression autotuner instead of a fixed -method (all ranks must agree; mutually exclusive with -fusion-bytes)")
		net         = flag.String("net", "tcp-10g", "modeled network preset for the virtual clock")
		scale       = flag.Float64("scale", 1.0, "epoch scale factor")
		seed        = flag.Uint64("seed", 42, "shared run seed")
		timeout     = flag.Duration("timeout", 30*time.Second, "ring setup timeout")
		optimeout   = flag.Duration("optimeout", comm.DefaultOpTimeout, "per-collective-op deadline, applied via the context layer (comm.WithTimeout); <=0 disables")
		maxframe    = flag.Int("maxframe", comm.DefaultMaxFrameBytes, "largest accepted wire frame in bytes")
		chaos       = flag.String("chaos", "", "fault-injection plan, e.g. 'drop:rank=1,op=allgather,from=10' (see comm.ParsePlan)")
		chaosSeed   = flag.Uint64("chaos-seed", 1, "seed for probabilistic fault rules")
		heartbeat   = flag.Duration("heartbeat", 0, "liveness ping interval; >0 makes a dead neighbor fail collectives within 3 intervals (all ranks must agree)")
		rejoin      = flag.Bool("rejoin", false, "self-heal on peer death instead of exiting: survivors reform the ring at the next generation and roll back to the newest common checkpoint; needs -checkpoint-dir and -heartbeat (all ranks must agree)")
		rejoinSync  = flag.Bool("rejoin-sync", false, "sync into an already-running group on start: used when respawning a single dead rank whose survivors are parked at the recovery barrier (implies -rejoin)")
		elastic     = flag.Bool("elastic", false, "elastic membership: when a dead rank misses the -rejoin-deadline the survivors vote to continue at N-1 instead of waiting forever, and a later -elastic-join worker grows the group back; implies -rejoin and needs -checkpoint-every (all ranks must agree)")
		elasticJoin = flag.Bool("elastic-join", false, "present this process as a fresh joiner at a running elastic group's join point: it is absorbed at the members' next step boundary and adopts state from a donor snapshot (implies -elastic)")
		rejoinDl    = flag.Duration("rejoin-deadline", 10*time.Second, "with -elastic: how long survivors hold the door open for a dead rank's respawn before voting to continue without it")
		retryBudget = flag.Int("retry-budget", 0, "absorb transient collective failures (timeouts, resets, injected chaos) with bounded in-place retry, spending at most this many retries over the run (0 = off)")
		ckptDir     = flag.String("checkpoint-dir", "", "directory for crash-consistent per-rank checkpoints")
		ckptEvery   = flag.Int("checkpoint-every", 0, "checkpoint every N optimizer steps (0 = final only)")
		resume      = flag.Bool("resume", false, "resume from the newest checkpoint step every rank can load (negotiated over the ring)")
		xr          = flag.Bool("xrank", false, "enable the cross-rank observability plane: per-op event recording, periodic trace aggregation over the ring, fault flight recorder (all ranks must agree)")
		xrEvery     = flag.Int("xrank-every", 25, "cross-rank trace aggregation cadence in optimizer steps (with -xrank; adds one small allgather per tick, so all ranks must agree)")
		xrDir       = flag.String("xrank-dir", "", "directory for flight-recorder dumps and (rank 0) the merged XRANK_* artifacts (with -xrank)")
		telAddr     = flag.String("telemetry-addr", "", "serve live /metrics, /debug/vars and /debug/pprof on this address; also enables span recording")
		tracePath   = flag.String("trace", "", "write a Chrome trace_event file for this rank; also enables span recording")
		telLinger   = flag.Duration("telemetry-linger", 0, "keep the telemetry server up this long after the run, for a final scrape")
	)
	flag.Parse()

	finishTel := startTelemetry(*telAddr, *tracePath, *telLinger)

	addrs := strings.Split(*addrsFlag, ",")
	if *addrsFlag == "" || len(addrs) < 2 {
		fatal(fmt.Errorf("need -addrs with at least two entries"))
	}
	if *rank < 0 || *rank >= len(addrs) {
		fatal(fmt.Errorf("-rank %d out of range for %d addresses", *rank, len(addrs)))
	}
	b, err := harness.BenchmarkByName(*bench)
	if err != nil {
		fatal(err)
	}
	link, err := simnet.PresetByName(*net)
	if err != nil {
		fatal(err)
	}

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume needs -checkpoint-dir"))
	}
	if *autotune && *fusion > 0 {
		fatal(fmt.Errorf("-autotune is mutually exclusive with -fusion-bytes"))
	}
	if *rejoinSync {
		*rejoin = true
	}
	if *elasticJoin {
		*elastic = true
	}
	if *elastic {
		*rejoin = true
		if *ckptEvery <= 0 {
			fatal(fmt.Errorf("-elastic needs -checkpoint-every > 0 (the shrink rolls back to a recent periodic step)"))
		}
		if *elasticJoin && *resume {
			fatal(fmt.Errorf("-resume and -elastic-join are mutually exclusive: the first is a whole-group restart, the second joins a live group"))
		}
		if *elasticJoin && *rejoinSync {
			fatal(fmt.Errorf("-rejoin-sync and -elastic-join are mutually exclusive: the first rejoins under the original membership, the second grows an elastic group"))
		}
	}
	if *rejoin {
		if *ckptDir == "" {
			fatal(fmt.Errorf("-rejoin needs -checkpoint-dir (the heal rolls back to checkpoints)"))
		}
		if *heartbeat <= 0 {
			fatal(fmt.Errorf("-rejoin needs -heartbeat (peer death is convicted by the liveness layer)"))
		}
		if *resume && *rejoinSync {
			fatal(fmt.Errorf("-resume and -rejoin-sync are mutually exclusive: the first is a whole-group restart, the second joins a live group"))
		}
	}

	// The ring is dialed with frame deadlines off: op timeouts are owned by
	// the context layer below (comm.WithTimeout), which bounds each whole
	// collective instead of each wire frame. With -rejoin the ring is the
	// re-dialable wrapper, so the trainer's heal path can reform it under the
	// next generation after a peer death.
	rcfg := comm.RingConfig{
		Rank:          *rank,
		Addrs:         addrs,
		SetupTimeout:  *timeout,
		OpTimeout:     -1,
		MaxFrameBytes: *maxframe,
		Heartbeat:     *heartbeat,
	}
	var ring comm.Collective
	var closeRing func()
	switch {
	case *elasticJoin:
		r, err := comm.JoinElasticRing(rcfg, *timeout)
		if err != nil {
			fatal(fmt.Errorf("elastic join: %w", err))
		}
		ring, closeRing = r, func() { r.Close() }
	case *elastic:
		r, err := comm.DialElasticRing(rcfg)
		if err != nil {
			fatal(fmt.Errorf("ring setup: %w", err))
		}
		ring, closeRing = r, func() { r.Close() }
	case *rejoin:
		r, err := comm.DialRing(rcfg)
		if err != nil {
			fatal(fmt.Errorf("ring setup: %w", err))
		}
		ring, closeRing = r, func() { r.Close() }
	default:
		r, err := comm.DialTCPRingConfig(rcfg)
		if err != nil {
			fatal(fmt.Errorf("ring setup: %w", err))
		}
		ring, closeRing = r, func() { r.Close() }
	}
	defer closeRing()
	fmt.Printf("rank %d/%d joined the ring\n", *rank, len(addrs))

	// The worker's collective handle: the hardened ring, optionally wrapped in
	// a fault injector when a -chaos plan is given, then in the per-op
	// deadline wrapper, then — outermost — the bounded-retry wrapper when a
	// -retry-budget is given, so its retries cover injected faults and
	// deadline expiries alike.
	coll := ring
	if *chaos != "" {
		plan, err := comm.ParsePlan(*chaos, *chaosSeed)
		if err != nil {
			fatal(fmt.Errorf("bad -chaos plan: %w", err))
		}
		fy := comm.NewFaulty(coll, plan)
		defer func() {
			c := fy.Counts()
			fmt.Printf("rank %d injected faults: %d delays, %d drops, %d corruptions, %d resets, %d stalls\n",
				*rank, c.Delays, c.Drops, c.Corruptions, c.Resets, c.Stalls)
		}()
		coll = fy
	}
	coll = comm.WithTimeout(coll, *optimeout)
	if *retryBudget > 0 {
		rs := comm.NewResilient(coll, comm.RetryPolicy{Budget: *retryBudget, Seed: *seed})
		defer func() {
			if n := rs.Retries(); n > 0 {
				fmt.Printf("rank %d absorbed %d transient failures (%d reforms)\n", *rank, n, rs.Reforms())
			}
		}()
		coll = rs
	}

	workers := len(addrs)
	cfg := grace.Config{
		Workers:              workers,
		BatchSize:            b.BatchSize,
		Epochs:               scaledEpochs(b, *scale),
		Seed:                 *seed,
		NewModel:             b.NewModel,
		Dataset:              b.NewDataset(),
		NewOptimizer:         b.NewOptimizer,
		UseMemory:            *ef,
		CodecParallelism:     *codecpar,
		Fusion:               grace.FusionConfig{TargetBytes: *fusion},
		Net:                  link,
		ComputePerIter:       b.ComputePerIter,
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	if *autotune {
		// Tuner mode: the policy engine is a pure function of rank-identical
		// inputs, so every rank building the same tuner from the shared link
		// preset and group size stays in lockstep without extra collectives.
		// The Engine rejects fusion in tuner mode, and the tuned run always
		// trains with the framework error-feedback memory.
		cfg.Fusion = grace.FusionConfig{}
		cfg.UseMemory = true
		cfg.NewTuner = harness.NewDefaultTuner(harness.SweepConfig{Workers: workers, Net: link})
	} else {
		cfg.NewCompressor = func(r int) (grace.Compressor, error) {
			return grace.New(*method,
				grace.WithRatio(*ratio), grace.WithLevels(*levels), grace.WithRank(*rank_),
				grace.WithSeed(*seed*1000+uint64(r)))
		}
	}
	if *rank == 0 {
		cfg.Eval = b.NewEval()
	}
	if *xr {
		cfg.XRank = grace.XRankConfig{
			Enable:         true,
			AggregateEvery: *xrEvery,
			ArtifactsDir:   *xrDir,
		}
	}

	// Crash-consistent checkpointing. Each rank snapshots its own full state;
	// on -resume the ranks negotiate the newest step they ALL hold (dirs may
	// live on different machines, and a crash can leave the victim an
	// interval behind), so every replica rolls back to the same point.
	if *ckptDir != "" {
		d, err := ckpt.OpenDir(*ckptDir, *rank)
		if err != nil {
			fatal(err)
		}
		cfg.Checkpoint = &grace.CheckpointConfig{
			Every: *ckptEvery,
			Final: true,
			Save:  d.SaveStep,
		}
		if *resume {
			step, err := negotiateResume(ring, d)
			if err != nil {
				fatal(fmt.Errorf("resume negotiation: %w", err))
			}
			if step < 0 {
				fmt.Printf("rank %d: no common checkpoint, starting fresh\n", *rank)
			} else {
				s, err := ckpt.Load(d.Path(step))
				if err != nil {
					fatal(err)
				}
				cfg.Checkpoint.Resume = s
				fmt.Printf("rank %d: resuming from step %d\n", *rank, step)
			}
		}
		if *rejoin {
			rj := d.RejoinConfig()
			rj.SyncOnStart = *rejoinSync
			rj.OnHeal = func(gen uint64, step int64) {
				fmt.Printf("rank %d: healed to step %d at generation %d\n", *rank, step, gen)
			}
			cfg.Rejoin = rj
		}
		if *elastic {
			// A joiner's deadline also bounds its JoinGroup wait, and absorption
			// needs the members to reach their next step boundary first — give it
			// the setup budget rather than the (possibly much shorter) vote
			// deadline the members run with.
			deadline := *rejoinDl
			if *elasticJoin && *timeout > deadline {
				deadline = *timeout
			}
			cfg.Elastic = &grace.ElasticConfig{
				RejoinDeadline: deadline,
				JoinOnStart:    *elasticJoin,
				OnResize: func(m comm.Membership, step int64) {
					fmt.Printf("rank %d: group resized to %d members (generation %d) at step %d\n",
						*rank, m.Size(), m.Gen, step)
				},
			}
		}
	}

	rep, err := grace.RunWorker(cfg, *rank, coll, simnet.NewCluster(link, workers))
	if err != nil {
		fatal(err)
	}
	if *rank == 0 {
		fmt.Printf("\n%-6s %-12s %-10s\n", "epoch", b.Metric, "time (s)")
		for i := range rep.EpochQuality {
			fmt.Printf("%-6d %-12.4f %-10.2f\n", i+1, rep.EpochQuality[i], rep.EpochVirtualTime[i].Seconds())
		}
		fmt.Printf("\nbest %s: %.4f | %.1f samples/s | %.0f bytes/iter/worker\n",
			b.Metric, rep.BestQuality, rep.Throughput, rep.BytesPerIter)
		if *autotune {
			fmt.Printf("autotune: %d switches | final policy: %s\n",
				rep.Switches, strings.Join(rep.FinalPolicy, ", "))
		}
	} else {
		fmt.Printf("rank %d finished %d iterations (%.0f bytes/iter)\n", *rank, rep.Iters, rep.BytesPerIter)
	}
	finishTel()
}

// startTelemetry enables span recording and stands up the exporters the
// flags ask for; the returned func finishes them (linger for a last scrape,
// flush and close the trace). With no flags set, both are no-ops. Each rank
// is its own process, so each serves its own endpoint and writes its own
// trace file.
func startTelemetry(addr, tracePath string, linger time.Duration) func() {
	if addr == "" && tracePath == "" {
		return func() {}
	}
	telemetry.Default.Enable(true)
	var tr *telemetry.Tracer
	if tracePath != "" {
		var err error
		if tr, err = telemetry.CreateTrace(tracePath); err != nil {
			fatal(err)
		}
		telemetry.Default.SetTracer(tr)
	}
	var srv *telemetry.MetricsServer
	if addr != "" {
		var err error
		if srv, err = telemetry.Default.Serve(addr); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry: serving /metrics, /debug/vars, /debug/pprof on http://%s\n", srv.Addr())
	}
	return func() {
		if srv != nil && linger > 0 {
			fmt.Printf("telemetry: lingering %v for a final scrape of http://%s/metrics\n", linger, srv.Addr())
			time.Sleep(linger)
		}
		if tr != nil {
			telemetry.Default.SetTracer(nil)
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "graceworker: closing trace:", err)
			} else {
				fmt.Printf("telemetry: trace written to %s\n", tracePath)
			}
		}
		if srv != nil {
			srv.Close()
		}
	}
}

// negotiateResume allgathers every rank's loadable checkpoint steps over the
// ring and returns the newest step present on all ranks, or -1 when the
// intersection is empty.
func negotiateResume(ring comm.Collective, d *ckpt.Dir) (int64, error) {
	steps, err := d.Steps()
	if err != nil {
		return -1, err
	}
	var mine []string
	for _, step := range steps {
		if _, err := ckpt.Load(d.Path(step)); err == nil {
			mine = append(mine, strconv.FormatInt(step, 10))
		}
	}
	gathered, err := ring.AllgatherBytes([]byte(strings.Join(mine, ",")))
	if err != nil {
		return -1, err
	}
	counts := map[int64]int{}
	for _, b := range gathered {
		if len(b) == 0 {
			continue
		}
		for _, f := range strings.Split(string(b), ",") {
			step, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return -1, fmt.Errorf("malformed step list %q from a peer", b)
			}
			counts[step]++
		}
	}
	common := int64(-1)
	for step, n := range counts {
		if n == ring.Size() && step > common {
			common = step
		}
	}
	return common, nil
}

func scaledEpochs(b harness.Benchmark, scale float64) int {
	e := int(float64(b.Epochs) * scale)
	if e < 1 {
		e = 1
	}
	return e
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graceworker:", err)
	os.Exit(1)
}
