// Command gracebenchdiff gates benchmark regressions: it compares freshly
// written BENCH_<name>.json artifacts against the committed baselines and
// fails when a machine-independent metric regresses.
//
// Usage:
//
//	gracebenchdiff -baseline results -candidate /tmp/bench \
//	    -names step_exchange_manysmall-unfused,step_exchange_manysmall-fused
//
// Two metrics are gated. rounds_per_step (from Extra) must not increase at
// all — collective rounds are a property of the fusion plan, identical on
// every machine, so any growth is a real scheduling regression.
// allocs_per_op may not grow by more than -allocs-slack (default 25%):
// allocation counts are near-deterministic but measured over whole-process
// MemStats deltas, so a tolerance absorbs run-to-run noise while still
// catching a lost buffer-reuse path. Wall-clock metrics are reported but
// never gated; they are not comparable across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	var (
		baseline    = flag.String("baseline", "results", "directory holding the committed BENCH_*.json baselines")
		candidate   = flag.String("candidate", "", "directory holding the freshly generated BENCH_*.json artifacts")
		names       = flag.String("names", "", "comma-separated artifact names to gate (the BENCH_<name>.json middle part)")
		allocsSlack = flag.Float64("allocs-slack", 0.25, "allowed fractional growth in allocs_per_op before failing")
	)
	flag.Parse()
	if *candidate == "" || *names == "" {
		fmt.Fprintln(os.Stderr, "gracebenchdiff: -candidate and -names are required")
		flag.Usage()
		os.Exit(2)
	}

	failed := 0
	fmt.Printf("%-36s %-22s %-26s %s\n", "artifact", "rounds/step", "allocs/op", "ns/op (informational)")
	for _, name := range strings.Split(*names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		base, err := load(*baseline, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: baseline %s: %v\n", name, err)
			failed++
			continue
		}
		cand, err := load(*candidate, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: candidate %s: %v\n", name, err)
			failed++
			continue
		}
		var verdicts []string
		br, cr := base.Extra["rounds_per_step"], cand.Extra["rounds_per_step"]
		if cr > br {
			verdicts = append(verdicts, fmt.Sprintf("rounds/step regressed %v -> %v", br, cr))
		}
		limit := base.AllocsPerOp * (1 + *allocsSlack)
		if cand.AllocsPerOp > limit {
			verdicts = append(verdicts, fmt.Sprintf("allocs/op regressed %.0f -> %.0f (limit %.0f)",
				base.AllocsPerOp, cand.AllocsPerOp, limit))
		}
		fmt.Printf("%-36s %-22s %-26s %.0f -> %.0f\n", name,
			fmt.Sprintf("%v -> %v", br, cr),
			fmt.Sprintf("%.0f -> %.0f", base.AllocsPerOp, cand.AllocsPerOp),
			base.NsPerOp, cand.NsPerOp)
		for _, v := range verdicts {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: %s: %s\n", name, v)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "gracebenchdiff: %d regression(s)\n", failed)
		os.Exit(1)
	}
	fmt.Println("gracebenchdiff: no regressions")
}

func load(dir, name string) (telemetry.BenchArtifact, error) {
	var a telemetry.BenchArtifact
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_"+name+".json"))
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(blob, &a); err != nil {
		return a, fmt.Errorf("parsing %s: %w", name, err)
	}
	return a, nil
}
