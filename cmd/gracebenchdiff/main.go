// Command gracebenchdiff gates benchmark regressions: it compares freshly
// written BENCH_<name>.json artifacts against the committed baselines and
// fails when a machine-independent metric regresses.
//
// Usage:
//
//	gracebenchdiff -baseline results -candidate /tmp/bench \
//	    -names step_exchange_manysmall-unfused,step_exchange_manysmall-fused
//
// Two metrics are gated. rounds_per_step (from Extra) must not increase at
// all — collective rounds are a property of the fusion plan, identical on
// every machine, so any growth is a real scheduling regression.
// allocs_per_op may not grow by more than -allocs-slack (default 25%):
// allocation counts are near-deterministic but measured over whole-process
// MemStats deltas, so a tolerance absorbs run-to-run noise while still
// catching a lost buffer-reuse path. Wall-clock metrics are reported but
// never gated; they are not comparable across machines.
//
// A second mode gates paired artifacts from the SAME run against each other:
//
//	gracebenchdiff -candidate /tmp/bench \
//	    -equal-allocs step_exchange_engine=step_exchange_engine-telemetry
//
// fails unless the two artifacts' allocs_per_op agree within
// -equal-allocs-tol. This is the zero-overhead proof for instrumentation:
// the telemetry/xrank disabled path must not allocate, so turning spans on
// may not change the engine's allocation count. The tolerance (default 8
// allocs/op) absorbs whole-process MemStats noise; a real leak on the hot
// path costs at least tensors x workers allocs per op, far above it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	var (
		baseline    = flag.String("baseline", "results", "directory holding the committed BENCH_*.json baselines")
		candidate   = flag.String("candidate", "", "directory holding the freshly generated BENCH_*.json artifacts")
		names       = flag.String("names", "", "comma-separated artifact names to gate (the BENCH_<name>.json middle part)")
		allocsSlack = flag.Float64("allocs-slack", 0.25, "allowed fractional growth in allocs_per_op before failing")
		equalAllocs = flag.String("equal-allocs", "", "comma-separated a=b artifact pairs whose allocs_per_op must match (both read from -candidate, or -baseline when -candidate is empty)")
		equalTol    = flag.Float64("equal-allocs-tol", 8, "allowed absolute allocs_per_op difference for -equal-allocs pairs")
	)
	flag.Parse()
	if *equalAllocs != "" {
		dir := *candidate
		if dir == "" {
			dir = *baseline
		}
		gateEqualAllocs(dir, *equalAllocs, *equalTol)
		return
	}
	if *candidate == "" || *names == "" {
		fmt.Fprintln(os.Stderr, "gracebenchdiff: -candidate and -names are required")
		flag.Usage()
		os.Exit(2)
	}

	failed := 0
	fmt.Printf("%-36s %-22s %-26s %s\n", "artifact", "rounds/step", "allocs/op", "ns/op (informational)")
	for _, name := range strings.Split(*names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		base, err := load(*baseline, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: baseline %s: %v\n", name, err)
			failed++
			continue
		}
		cand, err := load(*candidate, name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: candidate %s: %v\n", name, err)
			failed++
			continue
		}
		var verdicts []string
		br, cr := base.Extra["rounds_per_step"], cand.Extra["rounds_per_step"]
		if cr > br {
			verdicts = append(verdicts, fmt.Sprintf("rounds/step regressed %v -> %v", br, cr))
		}
		limit := base.AllocsPerOp * (1 + *allocsSlack)
		if cand.AllocsPerOp > limit {
			verdicts = append(verdicts, fmt.Sprintf("allocs/op regressed %.0f -> %.0f (limit %.0f)",
				base.AllocsPerOp, cand.AllocsPerOp, limit))
		}
		fmt.Printf("%-36s %-22s %-26s %.0f -> %.0f\n", name,
			fmt.Sprintf("%v -> %v", br, cr),
			fmt.Sprintf("%.0f -> %.0f", base.AllocsPerOp, cand.AllocsPerOp),
			base.NsPerOp, cand.NsPerOp)
		for _, v := range verdicts {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: %s: %s\n", name, v)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "gracebenchdiff: %d regression(s)\n", failed)
		os.Exit(1)
	}
	fmt.Println("gracebenchdiff: no regressions")
}

// gateEqualAllocs enforces allocs_per_op equality (within tol) for each a=b
// pair, exiting nonzero on any mismatch. Both artifacts of a pair come from
// the same directory — this gates instrumentation overhead within one run,
// not drift across runs.
func gateEqualAllocs(dir, pairs string, tol float64) {
	failed := 0
	fmt.Printf("%-72s %-22s %s\n", "pair", "allocs/op", "delta (tol)")
	for _, pair := range strings.Split(pairs, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		an, bn, ok := strings.Cut(pair, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: -equal-allocs entry %q is not a=b\n", pair)
			failed++
			continue
		}
		a, err := load(dir, an)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: %s: %v\n", an, err)
			failed++
			continue
		}
		b, err := load(dir, bn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: %s: %v\n", bn, err)
			failed++
			continue
		}
		delta := b.AllocsPerOp - a.AllocsPerOp
		if delta < 0 {
			delta = -delta
		}
		fmt.Printf("%-72s %-22s %.2f (%.2f)\n", pair,
			fmt.Sprintf("%.1f vs %.1f", a.AllocsPerOp, b.AllocsPerOp), delta, tol)
		if delta > tol {
			fmt.Fprintf(os.Stderr, "gracebenchdiff: %s: allocs/op differ by %.2f (%.1f vs %.1f, tol %.2f) — instrumentation is taxing the disabled path\n",
				pair, delta, a.AllocsPerOp, b.AllocsPerOp, tol)
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "gracebenchdiff: %d overhead violation(s)\n", failed)
		os.Exit(1)
	}
	fmt.Println("gracebenchdiff: instrumentation overhead within tolerance")
}

func load(dir, name string) (telemetry.BenchArtifact, error) {
	var a telemetry.BenchArtifact
	blob, err := os.ReadFile(filepath.Join(dir, "BENCH_"+name+".json"))
	if err != nil {
		return a, err
	}
	if err := json.Unmarshal(blob, &a); err != nil {
		return a, fmt.Errorf("parsing %s: %w", name, err)
	}
	return a, nil
}
