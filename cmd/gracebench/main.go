// Command gracebench regenerates the paper's tables and figures.
//
// Usage:
//
//	gracebench -exp fig6d [-workers 8] [-net tcp-10g] [-scale 1.0] [-csv dir]
//	gracebench -list
//	gracebench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	_ "repro/internal/compress/all"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (see -list), or 'all'")
		list    = flag.Bool("list", false, "list experiment ids")
		workers = flag.Int("workers", 8, "number of workers")
		net     = flag.String("net", "tcp-10g", "network preset: tcp-1g | tcp-10g | tcp-25g | rdma-25g | infinite")
		scale   = flag.Float64("scale", 1.0, "epoch scale factor (lower = faster, less faithful)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		csvDir  = flag.String("csv", "", "also write each table as CSV into this directory")
		artDir  = flag.String("artifacts", "", "write auto-named BENCH_<exp>.json artifacts into this directory")
		jsonDir = flag.String("json", "", "deprecated alias of -artifacts")
	)
	flag.Parse()
	if *artDir == "" {
		*artDir = *jsonDir
	}

	if *list {
		exps := harness.Experiments()
		for _, id := range harness.ExperimentIDs() {
			e := exps[id]
			fmt.Printf("%-12s %-14s %s\n", e.ID, e.Paper, e.Description)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "gracebench: -exp or -list required")
		flag.Usage()
		os.Exit(2)
	}

	link, err := simnet.PresetByName(*net)
	if err != nil {
		fatal(err)
	}
	sc := harness.SweepConfig{Workers: *workers, Net: link, Scale: *scale, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = harness.ExperimentIDs()
	}
	exps := harness.Experiments()
	for _, id := range ids {
		e, ok := exps[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q; try -list", id))
		}
		start := time.Now()
		tables, err := e.Run(sc)
		if err != nil {
			fatal(err)
		}
		rows := 0
		for ti, t := range tables {
			t.Print(os.Stdout)
			rows += len(t.Rows)
			if *csvDir != "" {
				if err := writeCSV(*csvDir, fmt.Sprintf("%s_%d.csv", id, ti), t); err != nil {
					fatal(err)
				}
			}
		}
		elapsed := time.Since(start)
		if *artDir != "" {
			path, err := telemetry.WriteBenchArtifact(*artDir, telemetry.BenchArtifact{
				Name:    "exp_" + id,
				NsPerOp: float64(elapsed.Nanoseconds()),
				Extra: map[string]float64{
					"tables":  float64(len(tables)),
					"rows":    float64(rows),
					"workers": float64(*workers),
					"scale":   *scale,
				},
			})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		fmt.Printf("[%s finished in %v]\n\n", id, elapsed.Round(time.Millisecond))
	}
}

func writeCSV(dir, name string, t *harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	t.CSV(f)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gracebench:", err)
	os.Exit(1)
}
