// Package repro is a from-scratch Go reproduction of "GRACE: A Compressed
// Communication Framework for Distributed Machine Learning" (Xu et al.,
// ICDCS 2021): a unified gradient-compression framework with 17 compression
// methods, a neural-network training substrate, real and simulated
// collective communication, and a benchmark harness regenerating every table
// and figure of the paper's evaluation. See README.md and DESIGN.md.
package repro
