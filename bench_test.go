// Benchmarks regenerating the paper's tables and figures (one bench target
// per table/figure, per DESIGN.md §5). Each target runs the corresponding
// harness experiment at a reduced scale so `go test -bench=.` finishes in
// minutes; the gracebench CLI runs the full-scale versions.
package repro_test

import (
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// benchArtifactDir is where bench targets drop BENCH_<name>.json artifacts
// (committed as the perf trajectory across PRs). Override with
// GRACE_BENCH_DIR; only benchmark runs write here, plain `go test` does not.
func benchArtifactDir() string {
	if dir := os.Getenv("GRACE_BENCH_DIR"); dir != "" {
		return dir
	}
	return "results"
}

// benchSweep is the reduced-scale system configuration for bench targets.
func benchSweep() harness.SweepConfig {
	return harness.SweepConfig{Workers: 4, Net: simnet.TCP10G, Scale: 0.25, Seed: 42}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := harness.Experiments()[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(benchSweep())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			t.Print(io.Discard)
		}
	}
}

func BenchmarkTable1Registry(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkTable2Baselines(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

func BenchmarkFig6(b *testing.B) {
	for _, id := range []string{"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f"} {
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}

func BenchmarkFig7(b *testing.B) {
	for _, id := range []string{"fig7a", "fig7b", "fig7c"} {
		b.Run(id, func(b *testing.B) { runExperiment(b, id) })
	}
}

// BenchmarkFig8Codec measures compress+decompress latency per method on a
// 1 MB gradient — the natural testing.B form of the paper's Figure 8
// micro-benchmark (gracemicro runs the 10 MB / 100 MB points).
func BenchmarkFig8Codec(b *testing.B) {
	const d = 1024 * 1024 / 4
	for _, spec := range harness.Suite() {
		if spec.Name == "none" {
			continue
		}
		spec := spec
		b.Run(spec.Label, func(b *testing.B) {
			opts := spec.Opts
			opts.Seed = 7
			c, err := grace.New(spec.Name, opts)
			if err != nil {
				b.Fatal(err)
			}
			info := grace.NewTensorInfo("bench", []int{512, d / 512})
			g := make([]float32, info.Size())
			for i := range g {
				g[i] = float32((i%97))*0.001 - 0.048
			}
			b.SetBytes(int64(4 * d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p, err := c.Compress(g, info)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := c.Decompress(p, info); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStepExchange compares the sequential per-tensor Pipeline loop
// against the grace.Engine on one full training step: 4 workers over the
// in-process hub exchanging Top-k(5%)-compressed gradients for the cnnsmall
// model's real layer-size distribution (8 tensors, conv kernels through the
// classifier head), with framework error feedback. ns/op is one whole step
// across all workers; allocs/op shows the Engine's buffer reuse.
//
// The engine variant runs twice — telemetry disabled (the default fast path,
// which must not regress Step) and with span recording enabled — and each
// sub-benchmark writes a BENCH_step_exchange_*.json artifact so the
// comparison is committed, not just printed.
func BenchmarkStepExchange(b *testing.B) {
	const workers = 4
	bench, err := harness.BenchmarkByName("cnnsmall")
	if err != nil {
		b.Fatal(err)
	}
	params := bench.NewModel(42).Params()
	infos := make([]grace.TensorInfo, len(params))
	grads := make([][][]float32, workers)
	for rank := range grads {
		grads[rank] = make([][]float32, len(params))
	}
	for i, p := range params {
		infos[i] = grace.NewTensorInfo(p.Name, p.Value.Shape())
		for rank := range grads {
			g := make([]float32, infos[i].Size())
			for j := range g {
				g[j] = float32((j+rank*31+i*7)%101)*0.001 - 0.05
			}
			grads[rank][i] = g
		}
	}
	newComp := func() (grace.Compressor, error) {
		return grace.New("topk", grace.WithRatio(0.05))
	}

	rawBytes := 0
	for _, info := range infos {
		rawBytes += 4 * info.Size()
	}

	// emit writes one sub-benchmark's result as a committed JSON artifact.
	// Allocation figures come from whole-process MemStats deltas over the
	// timed region (the testing package's per-op numbers are not readable
	// from inside the benchmark), so they cover all four workers' goroutines.
	emit := func(b *testing.B, name string, rep *grace.StepReport, ms0, ms1 *runtime.MemStats) {
		a := telemetry.BenchArtifact{
			Name:        "step_exchange_" + name,
			NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
			AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N),
			BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.N),
			Extra:       map[string]float64{"workers": workers, "tensors": float64(len(infos))},
		}
		if rep != nil {
			a.SentBytes = int64(rep.SentBytes)
			a.RecvBytes = int64(rep.RecvBytes)
			a.CompressionRatio = float64(rawBytes) / float64(rep.SentBytes)
		}
		path, err := telemetry.WriteBenchArtifact(benchArtifactDir(), a)
		if err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}

	b.Run("pipeline-sequential", func(b *testing.B) {
		hub := comm.NewHub(workers)
		pipes := make([]*grace.Pipeline, workers)
		for rank := range pipes {
			c, err := newComp()
			if err != nil {
				b.Fatal(err)
			}
			pipes[rank] = &grace.Pipeline{Comp: c, Coll: hub.Worker(rank), Mem: grace.NewMemory(1, 1)}
		}
		b.ReportAllocs()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			for rank := 0; rank < workers; rank++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					for t, info := range infos {
						if _, _, err := pipes[rank].Exchange(grads[rank][t], info); err != nil {
							panic(err)
						}
					}
				}(rank)
			}
			wg.Wait()
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		emit(b, "pipeline", nil, &ms0, &ms1)
	})

	// engine runs the telemetry-disabled fast path; engine-telemetry the same
	// workload with span recording on. Comparing their artifacts is the
	// committed proof that disabled telemetry does not tax Engine.Step.
	for _, variant := range []struct {
		name string
		tel  bool
	}{{"engine", false}, {"engine-telemetry", true}} {
		b.Run(variant.name, func(b *testing.B) {
			prev := telemetry.Default.Enabled()
			telemetry.Default.Enable(variant.tel)
			defer telemetry.Default.Enable(prev)
			hub := comm.NewHub(workers)
			engines := make([]*grace.Engine, workers)
			for rank := range engines {
				eng, err := grace.NewEngine(
					grace.WithCollective(hub.Worker(rank)),
					grace.WithCompressorFactory(newComp),
					grace.WithEngineMemory(grace.NewMemory(1, 1)),
				)
				if err != nil {
					b.Fatal(err)
				}
				engines[rank] = eng
			}
			var rep *grace.StepReport
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for rank := 0; rank < workers; rank++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						_, r, err := engines[rank].Step(grads[rank], infos)
						if err != nil {
							panic(err)
						}
						if rank == 0 {
							rep = r
						}
					}(rank)
				}
				wg.Wait()
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			emit(b, variant.name, rep, &ms0, &ms1)
		})
	}

	// The tensor-fusion contrast: the same step on a model dominated by many
	// small tensors (the regime where per-tensor collective rounds eat the
	// gains of compression), unfused vs fused. Each variant's artifact
	// records rounds per step — the machine-independent number the CI
	// bench-regression job pins — and the fused run must use at least 4×
	// fewer collective rounds than the per-tensor schedule.
	manyInfos, manyGrads := manySmallTensors(workers)
	fusedRounds := map[string]int{}
	for _, variant := range []struct {
		name string
		fc   grace.FusionConfig
	}{
		{"manysmall-unfused", grace.FusionConfig{}},
		{"manysmall-fused", grace.FusionConfig{TargetBytes: 16 << 10}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			hub := comm.NewHub(workers)
			engines := make([]*grace.Engine, workers)
			for rank := range engines {
				eng, err := grace.NewEngine(
					grace.WithCollective(hub.Worker(rank)),
					grace.WithCompressorFactory(newComp),
					grace.WithEngineMemory(grace.NewMemory(1, 1)),
					grace.WithFusion(variant.fc),
				)
				if err != nil {
					b.Fatal(err)
				}
				engines[rank] = eng
			}
			var rep *grace.StepReport
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for rank := 0; rank < workers; rank++ {
					wg.Add(1)
					go func(rank int) {
						defer wg.Done()
						_, r, err := engines[rank].Step(manyGrads[rank], manyInfos)
						if err != nil {
							panic(err)
						}
						if rank == 0 {
							rep = r
						}
					}(rank)
				}
				wg.Wait()
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			fusedRounds[variant.name] = rep.Rounds
			a := telemetry.BenchArtifact{
				Name:        "step_exchange_" + variant.name,
				NsPerOp:     float64(b.Elapsed().Nanoseconds()) / float64(b.N),
				AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N),
				BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.N),
				SentBytes:   int64(rep.SentBytes),
				RecvBytes:   int64(rep.RecvBytes),
				Extra: map[string]float64{
					"workers":         workers,
					"tensors":         float64(len(manyInfos)),
					"rounds_per_step": float64(rep.Rounds),
					"fused_buckets":   float64(rep.FusedBuckets),
				},
			}
			path, err := telemetry.WriteBenchArtifact(benchArtifactDir(), a)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("wrote %s", path)
		})
	}
	if u, f := fusedRounds["manysmall-unfused"], fusedRounds["manysmall-fused"]; f*4 > u {
		b.Fatalf("fusion saves too little: %d fused rounds/step vs %d unfused (need >= 4x fewer)", f, u)
	}
}

// manySmallTensors builds the fusion benchmark's layer set: 48 tensors,
// nearly all small (norm scales, biases, tiny projections) plus a couple of
// mid-sized kernels, mirroring how transformer-style parameter lists are
// dominated by count rather than bytes.
func manySmallTensors(workers int) ([]grace.TensorInfo, [][][]float32) {
	var shapes [][]int
	for i := 0; i < 12; i++ {
		shapes = append(shapes, []int{256}, []int{64}, []int{16, 16})
	}
	shapes = append(shapes,
		[]int{64, 64}, []int{64, 64}, []int{128, 32},
		[]int{96}, []int{96}, []int{96}, []int{96},
		[]int{8, 8}, []int{8, 8}, []int{8, 8}, []int{8, 8}, []int{24}, []int{24},
	)
	infos := make([]grace.TensorInfo, len(shapes))
	grads := make([][][]float32, workers)
	for rank := range grads {
		grads[rank] = make([][]float32, len(shapes))
	}
	for i, s := range shapes {
		infos[i] = grace.NewTensorInfo("small"+string(rune('a'+i%26))+string(rune('0'+i/26)), s)
		for rank := range grads {
			g := make([]float32, infos[i].Size())
			for j := range g {
				g[j] = float32((j+rank*13+i*5)%89)*0.001 - 0.044
			}
			grads[rank][i] = g
		}
	}
	return infos, grads
}

func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

func BenchmarkNet25(b *testing.B) { runExperiment(b, "net25") }

func BenchmarkEFAblation(b *testing.B) { runExperiment(b, "efablation") }
