// Quickstart: compress a single gradient tensor with several GRACE methods
// and inspect wire size and reconstruction error — the paper's Figures 3
// (QSGD codebook) and 4 (Top-k selection) as runnable code.
package main

import (
	"fmt"
	"math"

	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

func main() {
	// A gradient tensor, as back-propagation would produce for one layer.
	const d = 4096
	rng := fxrand.New(1)
	g := make([]float32, d)
	for i := range g {
		g[i] = rng.NormFloat32() * 0.1
	}
	info := grace.NewTensorInfo("layer1.w", []int{64, 64})

	fmt.Println("GRACE quickstart: one 4096-element gradient (16384 bytes dense)")
	fmt.Printf("%-14s %-10s %-12s %-14s\n", "method", "bytes", "ratio", "L2 error")
	for _, name := range []string{"none", "topk", "randomk", "qsgd", "terngrad", "eightbit", "signsgd", "threelc", "powersgd"} {
		c, err := grace.New(name,
			grace.WithRatio(0.05), grace.WithLevels(16), grace.WithRank(4), grace.WithSeed(7))
		if err != nil {
			panic(err)
		}
		p, err := c.Compress(g, info)
		if err != nil {
			panic(err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			panic(err)
		}
		var errSq, normSq float64
		for i := range g {
			diff := float64(out[i] - g[i])
			errSq += diff * diff
			normSq += float64(g[i]) * float64(g[i])
		}
		fmt.Printf("%-14s %-10d %-12.4f %-14.4f\n",
			name, p.WireBytes(), float64(p.WireBytes())/float64(4*d),
			math.Sqrt(errSq/normSq))
	}

	// Figure 4 of the paper: Top-k keeps the k largest-magnitude elements
	// and their indices.
	fmt.Println("\nFigure 4 worked example — Top-k (20%) on a 15-element gradient:")
	example := []float32{-0.1, 1.2, 3, 0, -3.5, 4.9, 0.88, 0, 0, -0.7, 1, 0, 9, -0.3, 0}
	einfo := grace.NewTensorInfo("fig4", []int{15})
	tk, _ := grace.New("topk", grace.WithRatio(0.2))
	p, _ := tk.Compress(example, einfo)
	dec, _ := tk.Decompress(p, einfo)
	fmt.Printf("  input:  %v\n", example)
	fmt.Printf("  output: %v\n", dec)

	// Figure 3 of the paper: QSGD's randomized codebook rounding. With s=4
	// the code-words are multiples of ‖g‖₂/4.
	fmt.Println("\nFigure 3 worked example — QSGD (s=4) randomized rounding:")
	q, _ := grace.New("qsgd", grace.WithLevels(4), grace.WithSeed(3))
	qg := []float32{-3.39, 1.78, 10.87, -2.22, 10.9, 1.12, -32.1, 12.5}
	qinfo := grace.NewTensorInfo("fig3", []int{8})
	for trial := 0; trial < 3; trial++ {
		p, _ := q.Compress(qg, qinfo)
		dec, _ := q.Decompress(p, qinfo)
		fmt.Printf("  trial %d: %.2f\n", trial+1, dec)
	}
	fmt.Println("  (code-words are 0, ±9.5, ±19, ±28.5, ±38 = multiples of ‖g‖₂/4; the")
	fmt.Println("   assignment is random, proportional to each element's magnitude)")
}
