// Imageclass reproduces the paper's Figure 1 motivation in miniature: train
// the communication-bound VGG-16 stand-in on 8 workers over a 25 Gbps link
// with no compression, Random-k(0.01) and 8-bit quantization, and show that
// the epoch-level picture ("all methods equivalent") inverts once wall time
// is accounted for.
package main

import (
	"fmt"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/simnet"
)

func main() {
	bench, err := harness.BenchmarkByName("mlpwide")
	if err != nil {
		panic(err)
	}
	sc := harness.SweepConfig{Workers: 8, Net: simnet.TCP25G, Scale: 1.0, Seed: 42}

	specs := []harness.MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "Randk(0.01)", Name: "randomk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "8-bit", Name: "eightbit", EF: true},
	}
	fmt.Printf("Figure 1: %s (%s), %d workers, %s\n\n", bench.Name, bench.PaperModel, sc.Workers, sc.Net.Name)

	type series struct {
		label string
		rep   *grace.Report
	}
	var runs []series
	for _, spec := range specs {
		fmt.Printf("training with %s...\n", spec.Label)
		rep, err := harness.RunOne(bench, spec, sc)
		if err != nil {
			panic(err)
		}
		runs = append(runs, series{spec.Label, rep})
	}

	fmt.Println("\n(a) accuracy vs epochs — the methods look equivalent:")
	fmt.Printf("%-7s", "epoch")
	for _, r := range runs {
		fmt.Printf("%-14s", r.label)
	}
	fmt.Println()
	for e := range runs[0].rep.EpochQuality {
		fmt.Printf("%-7d", e+1)
		for _, r := range runs {
			fmt.Printf("%-14.4f", r.rep.EpochQuality[e])
		}
		fmt.Println()
	}

	fmt.Println("\n(b) accuracy vs virtual wall time — the ranking changes:")
	for _, r := range runs {
		last := len(r.rep.EpochVirtualTime) - 1
		fmt.Printf("%-14s total %8.2fs   best accuracy %.4f   (compute %v, codec %v, network %v)\n",
			r.label, r.rep.EpochVirtualTime[last].Seconds(), r.rep.BestQuality,
			r.rep.ComputeTime.Round(1e6), r.rep.CodecTime.Round(1e6), r.rep.CommTime.Round(1e6))
	}
	fmt.Println("\nAs in the paper: the sparsifier converges in less wall time than the")
	fmt.Println("baseline, while 8-bit quantization — same accuracy per epoch — is slower")
	fmt.Println("than not compressing at all once codec cost and allgather volume count.")
}
