// Recommender reproduces the paper's §V-B recommendation findings on the
// NCF stand-in: the benchmark is communication-bound (embedding gradients
// dominate), compression trades hit rate for multi-x throughput, and —
// uniquely on this task — error feedback *hurts* Top-k (the TopK vs TopK-EF
// split highlighted in Figure 6d).
package main

import (
	"fmt"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func main() {
	bench, err := harness.BenchmarkByName("ncf")
	if err != nil {
		panic(err)
	}
	sc := harness.SweepConfig{Workers: 8, Net: simnet.TCP10G, Scale: 1.0, Seed: 42}

	specs := []harness.MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "TopK", Name: "topk", Opts: grace.Options{Ratio: 0.01}},
		{Label: "TopK-EF", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "Randk(0.01)", Name: "randomk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "TernGrad", Name: "terngrad"},
	}
	fmt.Printf("Figure 6d scenario: %s (%s), %d workers, %s\n\n",
		bench.Name, bench.PaperModel, sc.Workers, sc.Net.Name)
	fmt.Printf("%-14s %-12s %-16s %-14s\n", "method", "hit rate", "rel throughput", "bytes/iter")

	var baseTP float64
	for _, spec := range specs {
		rep, err := harness.RunOne(bench, spec, sc)
		if err != nil {
			panic(err)
		}
		if spec.Name == "none" {
			baseTP = rep.Throughput
		}
		fmt.Printf("%-14s %-12.4f %-16.2f %-14.0f\n",
			spec.Label, rep.BestQuality, metrics.Relative(rep.Throughput, baseTP), rep.BytesPerIter)
	}
	fmt.Println("\nObservations to compare against the paper:")
	fmt.Println(" - compressors trade some hit rate for substantial throughput gains")
	fmt.Println("   (this is the most communication-bound benchmark in the suite);")
	fmt.Println(" - TopK-EF does not beat plain TopK here — the recommendation task is")
	fmt.Println("   the one case in the paper where error feedback worsens Top-k.")
}
