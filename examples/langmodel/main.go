// Langmodel trains the LSTM language-model benchmark (the PTB stand-in)
// under quantization (QSGD) and low-rank compression (PowerSGD), tracing the
// paper's Figure 7b trade-off: test perplexity against communicated data
// volume per iteration.
package main

import (
	"fmt"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

func main() {
	bench, err := harness.BenchmarkByName("lstm")
	if err != nil {
		panic(err)
	}
	sc := harness.SweepConfig{Workers: 8, Net: simnet.TCP10G, Scale: 1.0, Seed: 42}

	specs := []harness.MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "QSGD(64)", Name: "qsgd", Opts: grace.Options{Levels: 64}},
		{Label: "QSGD(4)", Name: "qsgd", Opts: grace.Options{Levels: 4}},
		{Label: "PowerSGD(4)", Name: "powersgd", Opts: grace.Options{Rank: 4}},
		{Label: "PowerSGD(1)", Name: "powersgd", Opts: grace.Options{Rank: 1}},
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
	}
	fmt.Printf("Figure 7b scenario: %s (%s), %d workers, %s\n", bench.Name, bench.PaperModel, sc.Workers, sc.Net.Name)
	fmt.Println("lower perplexity is better; volume is per worker per iteration")
	fmt.Printf("\n%-13s %-13s %-12s %-12s\n", "method", "perplexity", "rel volume", "bytes/iter")

	var baseVol float64
	for _, spec := range specs {
		rep, err := harness.RunOne(bench, spec, sc)
		if err != nil {
			panic(err)
		}
		if spec.Name == "none" {
			baseVol = rep.BytesPerIter
		}
		fmt.Printf("%-13s %-13.3f %-12.4f %-12.0f\n",
			spec.Label, rep.BestQuality, metrics.Relative(rep.BytesPerIter, baseVol), rep.BytesPerIter)
	}
	fmt.Println("\nThe paper's Figure 7 lesson: methods that send more data generally reach")
	fmt.Println("better quality, and aggressive settings (QSGD(4), PowerSGD(1)) pay for")
	fmt.Println("their volume savings in model quality.")
}
