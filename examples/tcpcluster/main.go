// Tcpcluster demonstrates GRACE over real TCP collectives: four workers on
// localhost form a ring (the same topology Horovod's allreduce uses) and
// exchange a whole model's worth of Top-k-compressed per-layer gradients
// through the grace.Engine, which overlaps compression compute with the
// wire exchange of earlier layers. Every worker verifies it agrees on all
// aggregates. This exercises the actual network substrate rather than the
// in-process hub the experiments use.
package main

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

const (
	workers = 4
	rounds  = 5
)

func main() {
	// A realistic per-layer gradient size distribution: a few big tensors,
	// many small ones.
	shapes := [][]int{
		{64, 128}, {128}, {128, 128}, {128}, {128, 64}, {64}, {64, 10}, {10},
	}
	infos := make([]grace.TensorInfo, len(shapes))
	for i, s := range shapes {
		infos[i] = grace.NewTensorInfo(fmt.Sprintf("layer%d", i), s)
	}

	// Reserve distinct localhost ports for the ring.
	addrs := make([]string, workers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	fmt.Printf("forming a %d-worker TCP ring: %v\n", workers, addrs)

	results := make([][][]float32, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring, err := comm.DialTCPRing(rank, addrs, 5*time.Second)
			if err != nil {
				panic(fmt.Sprintf("rank %d: %v", rank, err))
			}
			defer ring.Close()

			meter := comm.NewMeter(ring)
			// Functional options are the construction surface; WithFusionBytes
			// packs the many small layers into shared collective rounds.
			eng, err := grace.NewEngine(
				grace.WithCollective(meter),
				grace.WithCompressorFactory(func() (grace.Compressor, error) {
					return grace.New("topk", grace.WithRatio(0.05))
				}),
				grace.WithEngineMemory(grace.NewMemory(1, 1)),
				grace.WithParallelism(2),
				grace.WithFusionBytes(64<<10),
			)
			if err != nil {
				panic(err)
			}

			rng := fxrand.New(uint64(rank) + 1)
			grads := make([][]float32, len(infos))
			for i, info := range infos {
				grads[i] = make([]float32, info.Size())
			}
			var lastWall, lastCodec time.Duration
			for round := 0; round < rounds; round++ {
				for _, g := range grads {
					for i := range g {
						g[i] = rng.NormFloat32() * 0.1
					}
				}
				aggs, rep, err := eng.Step(grads, infos)
				if err != nil {
					panic(fmt.Sprintf("rank %d round %d: %v", rank, round, err))
				}
				if round == rounds-1 {
					// The engine owns its buffers; keep a copy of the last
					// round's aggregates for the agreement check.
					results[rank] = make([][]float32, len(aggs))
					for i, a := range aggs {
						results[rank][i] = append([]float32(nil), a...)
					}
					lastWall, lastCodec = rep.WallTime, rep.CodecTime
				}
			}
			if rank == 0 {
				var dense int
				for _, info := range infos {
					dense += 4 * info.Size()
				}
				fmt.Printf("rank 0 sent %d bytes over %d collective ops (vs %d dense per round × %d rounds)\n",
					meter.BytesSent(), meter.Ops(), dense, rounds)
				fmt.Printf("last step: wall %v, codec (summed over %d lanes) %v\n",
					lastWall, eng.Lanes(), lastCodec)
			}
		}(rank)
	}
	wg.Wait()

	for rank := 1; rank < workers; rank++ {
		for ti := range infos {
			for i := range results[0][ti] {
				if results[rank][ti][i] != results[0][ti][i] {
					panic(fmt.Sprintf("worker %d disagrees with worker 0 on tensor %d element %d", rank, ti, i))
				}
			}
		}
	}
	fmt.Printf("all %d workers agree on %d aggregated tensors after %d rounds over real TCP\n",
		workers, len(infos), rounds)
}
