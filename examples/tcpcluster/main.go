// Tcpcluster demonstrates GRACE over real TCP collectives: four workers on
// localhost form a ring (the same topology Horovod's allreduce uses),
// exchange Top-k-compressed gradients through the grace.Pipeline, and verify
// every worker agrees on the aggregate. This exercises the actual network
// substrate rather than the in-process hub the experiments use.
package main

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

const (
	workers = 4
	dim     = 1 << 14
	rounds  = 5
)

func main() {
	// Reserve distinct localhost ports for the ring.
	addrs := make([]string, workers)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	fmt.Printf("forming a %d-worker TCP ring: %v\n", workers, addrs)

	results := make([][]float32, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			ring, err := comm.DialTCPRing(rank, addrs, 5*time.Second)
			if err != nil {
				panic(fmt.Sprintf("rank %d: %v", rank, err))
			}
			defer ring.Close()

			compressor, err := grace.New("topk", grace.Options{Ratio: 0.05})
			if err != nil {
				panic(err)
			}
			meter := comm.NewMeter(ring)
			pipe := &grace.Pipeline{
				Comp: compressor,
				Mem:  grace.NewMemory(1, 1),
				Coll: meter,
			}
			info := grace.NewTensorInfo("w", []int{128, 128})
			rng := fxrand.New(uint64(rank) + 1)
			var agg []float32
			for round := 0; round < rounds; round++ {
				g := make([]float32, dim)
				for i := range g {
					g[i] = rng.NormFloat32() * 0.1
				}
				agg, _, err = pipe.Exchange(g, info)
				if err != nil {
					panic(fmt.Sprintf("rank %d round %d: %v", rank, round, err))
				}
			}
			results[rank] = agg
			if rank == 0 {
				fmt.Printf("rank 0 sent %d bytes over %d collective ops (vs %d dense)\n",
					meter.BytesSent(), meter.Ops(), rounds*dim*4)
			}
		}(rank)
	}
	wg.Wait()

	for rank := 1; rank < workers; rank++ {
		for i := range results[0] {
			if results[rank][i] != results[0][i] {
				panic(fmt.Sprintf("worker %d disagrees with worker 0 at element %d", rank, i))
			}
		}
	}
	fmt.Printf("all %d workers agree on the aggregated gradient after %d rounds over real TCP\n",
		workers, rounds)
}
