# Tier-1 gate: everything must compile, vet clean, and pass the full test
# suite under the race detector (the Engine and collective tests rely on it).
.PHONY: check build test vet race bench fuzz

check: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Engine vs sequential-Pipeline step exchange, plus the paper's figure
# benchmarks.
bench:
	go test -run xxx -bench BenchmarkStepExchange -benchmem .

# Fuzz smoke: run every fuzz target for a short burst. Decoders must reject
# hostile payloads with errors — never panic or over-allocate.
FUZZTIME ?= 10s
fuzz:
	go test -run xxx -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzSplitFused -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/topk
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/randomk
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/qsgd
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/eightbit
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/huffcoded
	go test -run xxx -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME) ./internal/ckpt
