# Tier-1 gate: everything must compile, vet clean, and pass the full test
# suite under the race detector (the Engine and collective tests rely on it).
.PHONY: check build test vet race bench fuzz cover

check: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Engine vs sequential-Pipeline step exchange, plus the paper's figure
# benchmarks.
bench:
	go test -run xxx -bench BenchmarkStepExchange -benchmem .

# Fuzz smoke: run every fuzz target for a short burst. Decoders must reject
# hostile payloads with errors — never panic or over-allocate.
FUZZTIME ?= 10s
fuzz:
	go test -run xxx -fuzz FuzzReadFrame -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzFrameRoundTrip -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzSplitFused -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzRingHandshake -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzElasticHandshake -fuzztime $(FUZZTIME) ./internal/comm
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/topk
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/randomk
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/qsgd
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/eightbit
	go test -run xxx -fuzz FuzzDecompress -fuzztime $(FUZZTIME) ./internal/compress/huffcoded
	go test -run xxx -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME) ./internal/ckpt
	go test -run xxx -fuzz FuzzAutotuneState -fuzztime $(FUZZTIME) ./internal/ckpt

# Coverage gate: the packages at the heart of the correctness story may not
# drop below their floors (current: grace 88.7, comm 81.0, ckpt 88.9 — the
# floors leave a little headroom for refactoring noise, not for deleted
# tests).
cover:
	@set -e; for spec in ./internal/grace:88 ./internal/comm:80 ./internal/ckpt:86; do \
		pkg=$${spec%:*}; floor=$${spec##*:}; \
		line=$$(go test -cover -count=1 $$pkg); echo "$$line"; \
		pct=$$(echo "$$line" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "no coverage figure for $$pkg"; exit 1; fi; \
		awk -v p="$$pct" -v f="$$floor" 'BEGIN{exit !(p+0 >= f+0)}' \
			|| { echo "FAIL: $$pkg coverage $$pct% is below the $$floor% floor"; exit 1; }; \
	done
