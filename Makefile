# Tier-1 gate: everything must compile, vet clean, and pass the full test
# suite under the race detector (the Engine and collective tests rely on it).
.PHONY: check build test vet race bench

check: vet build race

vet:
	go vet ./...

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Engine vs sequential-Pipeline step exchange, plus the paper's figure
# benchmarks.
bench:
	go test -run xxx -bench BenchmarkStepExchange -benchmem .
