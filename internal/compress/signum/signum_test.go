package signum

import (
	"testing"

	"repro/internal/grace"
)

func TestMomentumSmoothsSignFlips(t *testing.T) {
	// An alternating gradient must not flip SIGNUM's output every step: the
	// momentum buffer retains the dominant direction.
	c, _ := grace.New("signum", grace.Options{Momentum: 0.9})
	info := grace.NewTensorInfo("t", []int{1})
	// Strong positive step establishes the momentum.
	p, _ := c.Compress([]float32{5}, info)
	out, _ := c.Decompress(p, info)
	if out[0] != 1 {
		t.Fatalf("initial sign %v, want +1", out[0])
	}
	// A single small negative gradient must not flip the sign.
	p, _ = c.Compress([]float32{-0.1}, info)
	out, _ = c.Decompress(p, info)
	if out[0] != 1 {
		t.Fatalf("momentum failed to smooth a transient flip: %v", out[0])
	}
	// Sustained negative gradients eventually flip it.
	flipped := false
	for i := 0; i < 100 && !flipped; i++ {
		p, _ = c.Compress([]float32{-1}, info)
		out, _ = c.Decompress(p, info)
		flipped = out[0] == -1
	}
	if !flipped {
		t.Fatal("sustained reversal never flipped the sign")
	}
}

func TestMomentumIsPerTensor(t *testing.T) {
	c, _ := grace.New("signum", grace.Options{Momentum: 0.9})
	a := grace.NewTensorInfo("a", []int{1})
	b := grace.NewTensorInfo("b", []int{1})
	for i := 0; i < 10; i++ {
		if _, err := c.Compress([]float32{1}, a); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := c.Compress([]float32{-1}, b)
	out, _ := c.Decompress(p, b)
	if out[0] != -1 {
		t.Fatal("tensor b inherited tensor a's momentum")
	}
}

func TestRejectsBadMomentum(t *testing.T) {
	if _, err := grace.New("signum", grace.Options{Momentum: 1.5}); err == nil {
		t.Fatal("expected error for momentum >= 1")
	}
}
