// Package signum implements SIGNUM [30]: SignSGD applied to a per-tensor
// momentum of the gradient rather than the raw gradient. The momentum buffer
// is compressor-internal state; like SignSGD the paper runs it without error
// feedback.
package signum

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "signum",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		Reference: "Bernstein et al., ICLR 2019 [30]",
		New: func(o grace.Options) (grace.Compressor, error) {
			momentum := o.Momentum
			if momentum == 0 {
				momentum = 0.9
			}
			if momentum < 0 || momentum >= 1 {
				return nil, fmt.Errorf("signum: momentum %v out of [0,1)", momentum)
			}
			return &Compressor{momentum: float32(momentum), buf: map[string][]float32{}}, nil
		},
	})
}

// Compressor transmits the sign of the gradient momentum.
type Compressor struct {
	momentum float32
	buf      map[string][]float32
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "signum".
func (*Compressor) Name() string { return "signum" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress updates the momentum m ← βm + (1−β)g and packs sign(m).
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	m := c.buf[info.Name]
	if m == nil {
		m = make([]float32, len(g))
		c.buf[info.Name] = m
	}
	for i, v := range g {
		m[i] = c.momentum*m[i] + (1-c.momentum)*v
	}
	return &grace.Payload{Bytes: encode.PackSigns(m)}, nil
}

// Decompress expands sign bits to ±1.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return encode.UnpackSigns(p.Bytes, info.Size())
}
