// Package dgc implements Deep Gradient Compression [16]: per-tensor momentum
// correction and gradient accumulation (a form of error feedback), followed
// by threshold sparsification where the threshold is estimated from a sample
// to hit the target ratio. Accumulators are cleared only at transmitted
// positions ("momentum factor masking").
//
// Memory management is built in, so the framework's error-feedback memory
// must stay off for this method (Meta.BuiltinEF).
package dgc

import (
	"fmt"

	"repro/internal/compress/cbase"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "dgc",
		Class:     "sparsification",
		Output:    "adaptive",
		Nature:    "deterministic",
		DefaultEF: true,
		BuiltinEF: true,
		Reference: "Lin et al., ICLR 2018 [16]",
		New: func(o grace.Options) (grace.Compressor, error) {
			ratio := o.Ratio
			if ratio == 0 {
				ratio = 0.01
			}
			if ratio < 0 || ratio > 1 {
				return nil, fmt.Errorf("dgc: ratio %v out of (0,1]", ratio)
			}
			momentum := o.Momentum
			if momentum == 0 {
				momentum = 0.9
			}
			return &Compressor{ratio: ratio, momentum: float32(momentum),
				u: map[string][]float32{}, v: map[string][]float32{}}, nil
		},
	})
}

// Compressor carries the per-tensor momentum (u) and accumulation (v) state.
type Compressor struct {
	ratio    float64
	momentum float32
	u, v     map[string][]float32
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "dgc".
func (*Compressor) Name() string { return "dgc" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress applies momentum correction, accumulates, then transmits the
// elements of the accumulator whose magnitude clears the sampled threshold.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	d := len(g)
	u := c.state(c.u, info.Name, d)
	v := c.state(c.v, info.Name, d)
	for i, gi := range g {
		u[i] = c.momentum*u[i] + gi
		v[i] += u[i]
	}

	k := cbase.KFor(c.ratio, d)
	threshold := cbase.QuantileAbsThreshold(v, c.ratio, 4096, max(1, d/4096))
	idx := make([]int, 0, k*2)
	for i, vi := range v {
		a := vi
		if a < 0 {
			a = -a
		}
		if a >= threshold && a > 0 {
			idx = append(idx, i)
		}
	}
	// The sampled threshold can overshoot badly; fall back to exact top-k
	// selection over the candidates (one hierarchical refinement step, the
	// expensive loop §V-D profiles).
	if len(idx) > 2*k {
		cand := make([]float32, d)
		for _, i := range idx {
			cand[i] = v[i]
		}
		idx = cbase.TopK(cand, k)
	} else if len(idx) == 0 {
		idx = cbase.TopK(v, k)
	}

	vals := make([]float32, len(idx))
	for i, j := range idx {
		vals[i] = v[j]
	}
	payload := cbase.EncodeSparse(idx, vals)
	// Momentum factor masking: clear transmitted positions.
	for _, j := range idx {
		u[j] = 0
		v[j] = 0
	}
	return &grace.Payload{Bytes: payload}, nil
}

// Decompress restores the dense gradient.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return cbase.DecodeSparse(p.Bytes, info.Size())
}

// CodecState exports a deep copy of the per-tensor momentum (slot "u") and
// accumulator (slot "v") state for checkpointing.
func (c *Compressor) CodecState() grace.CodecState {
	return grace.CodecState{Tensors: map[string]map[string][]float32{
		"u": copyState(c.u),
		"v": copyState(c.v),
	}}
}

// LoadCodecState replaces the momentum and accumulator state with a deep
// copy of the snapshot; training resumed from it reproduces the
// uninterrupted run bit for bit.
func (c *Compressor) LoadCodecState(st grace.CodecState) error {
	c.u = copyState(st.Tensors["u"])
	c.v = copyState(st.Tensors["v"])
	return nil
}

var _ grace.Stateful = (*Compressor)(nil)

func copyState(m map[string][]float32) map[string][]float32 {
	out := make(map[string][]float32, len(m))
	for name, s := range m {
		out[name] = append([]float32(nil), s...)
	}
	return out
}

func (c *Compressor) state(m map[string][]float32, name string, d int) []float32 {
	s := m[name]
	if s == nil {
		s = make([]float32, d)
		m[name] = s
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
