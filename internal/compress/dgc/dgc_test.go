package dgc

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestSelectionCountNearTarget(t *testing.T) {
	c, err := grace.New("dgc", grace.Options{Ratio: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r := fxrand.New(1)
	const d = 4000
	g := make([]float32, d)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{d})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := c.Decompress(p, info)
	nz := 0
	for _, v := range out {
		if v != 0 {
			nz++
		}
	}
	// The sampled threshold targets 5%; the hierarchical refinement caps
	// overshoot at 2x.
	if nz < d/100 || nz > d/10 {
		t.Fatalf("selected %d of %d, want around %d", nz, d, d/20)
	}
}

func TestMomentumCorrectionAmplifiesPersistentGradients(t *testing.T) {
	// A constant gradient direction accumulates u ≈ g/(1−m), so transmitted
	// values exceed the raw gradient once momentum warms up.
	c, err := grace.New("dgc", grace.Options{Ratio: 0.5, Momentum: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{1, 0.9}
	info := grace.NewTensorInfo("t", []int{2})
	var last float32
	for i := 0; i < 30; i++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := c.Decompress(p, info)
		if out[0] != 0 {
			last = out[0]
		}
	}
	if last <= 1 {
		t.Fatalf("momentum correction should amplify persistent gradient: %v", last)
	}
}

func TestMaskingClearsTransmittedState(t *testing.T) {
	// After a huge element is transmitted, its accumulators reset: the next
	// round must not retransmit stale mass.
	c, _ := grace.New("dgc", grace.Options{Ratio: 0.02})
	const d = 100
	g := make([]float32, d)
	g[0] = 100
	info := grace.NewTensorInfo("t", []int{d})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	if out[0] == 0 {
		t.Fatal("dominant element not transmitted")
	}
	first := out[0]
	// Now feed zeros: the element's state was cleared, so a second round
	// must transmit far less at index 0 (only residual drift, not 100+).
	zero := make([]float32, d)
	p, _ = c.Compress(zero, info)
	out, _ = c.Decompress(p, info)
	if out[0] >= first/2 {
		t.Fatalf("masking failed: retransmitted %v after %v", out[0], first)
	}
}

func TestPerTensorState(t *testing.T) {
	c, _ := grace.New("dgc", grace.Options{Ratio: 0.5})
	a := grace.NewTensorInfo("a", []int{4})
	b := grace.NewTensorInfo("b", []int{4})
	for i := 0; i < 5; i++ {
		if _, err := c.Compress([]float32{1, 1, 1, 1}, a); err != nil {
			t.Fatal(err)
		}
	}
	p, _ := c.Compress([]float32{0.1, 0, 0, 0}, b)
	out, _ := c.Decompress(p, b)
	// Tensor b has no accumulated mass beyond its own first gradient.
	if out[0] > 0.10001 {
		t.Fatalf("tensor b inherited tensor a's accumulator: %v", out[0])
	}
}
