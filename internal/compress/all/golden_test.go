package all_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

var update = flag.Bool("update", false, "regenerate testdata/golden.json")

// goldenEntry freezes one (method, input) pair: the exact wire payload the
// compressor emitted and the exact vector it decoded back. Payload and Output
// are little-endian bytes (float32 for dense payloads and outputs), so any
// drift — a codec tweak, an RNG change, a platform difference — shows up as a
// byte-level diff against the committed file.
type goldenEntry struct {
	Method    string `json:"method"`
	Input     string `json:"input"`
	Strategy  string `json:"strategy"`
	WireBytes int    `json:"wire_bytes"`
	Payload   []byte `json:"payload,omitempty"`
	Output    []byte `json:"output"`
}

// goldenInput is one fixed, seeded gradient tensor.
type goldenInput struct {
	name string
	info grace.TensorInfo
	g    []float32
}

func goldenInputs() []goldenInput {
	mk := func(name string, shape []int, seed uint64) goldenInput {
		info := grace.NewTensorInfo(name, shape)
		r := fxrand.New(seed)
		g := make([]float32, info.Size())
		for i := range g {
			g[i] = r.NormFloat32() * 0.1
		}
		return goldenInput{name: name, info: info, g: g}
	}
	return []goldenInput{
		mk("mat8x12", []int{8, 12}, 42),
		mk("vec23", []int{23}, 43),
	}
}

// goldenOptions is the fixed knob set a method is constructed with; each
// method reads only the knobs it understands, so one carrier covers nearly
// all 22 — the exceptions reinterpret a shared knob and get an override
// (3LC's Threshold is a sparsity multiplier in [1,2), not a cutoff).
func goldenOptions(method string) grace.Options {
	o := grace.Options{Ratio: 0.25, Levels: 8, Rank: 2, Threshold: 0.05, Momentum: 0.9, Seed: 123}
	if method == "threelc" {
		o.Threshold = 1.5
	}
	return o
}

func f32LE(x []float32) []byte {
	out := make([]byte, len(x)*4)
	for i, v := range x {
		bits := math.Float32bits(v)
		out[i*4] = byte(bits)
		out[i*4+1] = byte(bits >> 8)
		out[i*4+2] = byte(bits >> 16)
		out[i*4+3] = byte(bits >> 24)
	}
	return out
}

// computeGolden runs one method over one input with a fresh compressor.
// Allgather/Allreduce methods freeze (payload, decoded); Custom methods
// (powersgd) freeze the single-worker CommunicateAggregate result.
func computeGolden(method string, in goldenInput) (goldenEntry, error) {
	c, err := grace.New(method, goldenOptions(method))
	if err != nil {
		return goldenEntry{}, fmt.Errorf("New(%q): %w", method, err)
	}
	e := goldenEntry{Method: method, Input: in.name, Strategy: c.Strategy().String()}

	if c.Strategy() == grace.Custom {
		cc, ok := c.(grace.CustomComm)
		if !ok {
			return goldenEntry{}, fmt.Errorf("%s: Custom strategy without CustomComm", method)
		}
		agg, sent, err := cc.CommunicateAggregate(in.g, in.info, comm.Serial{})
		if err != nil {
			return goldenEntry{}, fmt.Errorf("%s custom comm: %w", method, err)
		}
		e.WireBytes = sent
		e.Output = f32LE(agg)
		return e, nil
	}

	pay, err := c.Compress(in.g, in.info)
	if err != nil {
		return goldenEntry{}, fmt.Errorf("%s compress: %w", method, err)
	}
	e.WireBytes = pay.WireBytes()
	if pay.Dense != nil {
		e.Payload = f32LE(pay.Dense)
	} else {
		e.Payload = append([]byte(nil), pay.Bytes...)
	}
	dec, err := c.Decompress(pay, in.info)
	if err != nil {
		return goldenEntry{}, fmt.Errorf("%s decompress: %w", method, err)
	}
	if len(dec) != in.info.Size() {
		return goldenEntry{}, fmt.Errorf("%s decoded %d elements, want %d", method, len(dec), in.info.Size())
	}
	e.Output = f32LE(dec)
	return e, nil
}

func leF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		bits := uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

// computeFusedGolden freezes the fused-frame view of a method: one compressor
// instance compresses every golden input in step order (the Engine reuses one
// codec across a step's tensors, so cross-tensor codec state is pinned too),
// the payloads are packed into a single comm.AppendFused frame, and each
// tensor is decoded from its zero-copy SplitFused part. Payload holds the
// whole fused frame and Output the per-tensor decodes concatenated in input
// order. Custom-strategy methods never fuse and report ok=false.
func computeFusedGolden(method string, ins []goldenInput) (goldenEntry, bool, error) {
	c, err := grace.New(method, goldenOptions(method))
	if err != nil {
		return goldenEntry{}, false, fmt.Errorf("New(%q): %w", method, err)
	}
	if c.Strategy() == grace.Custom {
		return goldenEntry{}, false, nil
	}
	e := goldenEntry{Method: method, Input: "fused", Strategy: c.Strategy().String()}
	parts := make([][]byte, len(ins))
	dense := c.Strategy() == grace.Allreduce
	for i, in := range ins {
		pay, err := c.Compress(in.g, in.info)
		if err != nil {
			return goldenEntry{}, false, fmt.Errorf("%s fused compress %s: %w", method, in.name, err)
		}
		if pay.Dense != nil {
			parts[i] = f32LE(pay.Dense)
		} else {
			parts[i] = append([]byte(nil), pay.Bytes...)
		}
		e.WireBytes += pay.WireBytes()
	}
	frame := comm.AppendFused(nil, parts)
	e.WireBytes += comm.FusedOverhead(len(parts))
	e.Payload = frame
	split, err := comm.SplitFused(frame, len(ins))
	if err != nil {
		return goldenEntry{}, false, fmt.Errorf("%s fused split: %w", method, err)
	}
	for i, in := range ins {
		pay := &grace.Payload{}
		if dense {
			pay.Dense = leF32(split[i])
		} else {
			pay.Bytes = split[i]
		}
		dec, err := c.Decompress(pay, in.info)
		if err != nil {
			return goldenEntry{}, false, fmt.Errorf("%s fused decompress %s: %w", method, in.name, err)
		}
		if len(dec) != in.info.Size() {
			return goldenEntry{}, false, fmt.Errorf("%s fused decoded %d elements for %s, want %d",
				method, len(dec), in.name, in.info.Size())
		}
		e.Output = append(e.Output, f32LE(dec)...)
	}
	return e, true, nil
}

const goldenPath = "testdata/golden.json"

// TestGoldenVectors pins every registered compressor's exact wire bytes and
// decoded output on fixed seeded inputs against the committed golden file.
// Regenerate intentionally with:
//
//	go test ./internal/compress/all -run TestGoldenVectors -update
func TestGoldenVectors(t *testing.T) {
	inputs := goldenInputs()
	var got []goldenEntry
	for _, method := range wantMethods {
		for _, in := range inputs {
			e, err := computeGolden(method, in)
			if err != nil {
				t.Fatal(err)
			}
			// A golden vector is only meaningful if the codec is run-to-run
			// deterministic; verify with a second fresh instance before
			// pinning anything.
			e2, err := computeGolden(method, in)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(e.Payload, e2.Payload) || !bytes.Equal(e.Output, e2.Output) || e.WireBytes != e2.WireBytes {
				t.Fatalf("%s/%s: two fresh runs disagree — codec is not deterministic under a fixed seed", method, in.name)
			}
			got = append(got, e)
		}
		fe, ok, err := computeFusedGolden(method, inputs)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			fe2, _, err := computeFusedGolden(method, inputs)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fe.Payload, fe2.Payload) || !bytes.Equal(fe.Output, fe2.Output) {
				t.Fatalf("%s/fused: two fresh runs disagree — codec is not deterministic under a fixed seed", method)
			}
			got = append(got, fe)
		}
	}

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	index := make(map[string]goldenEntry, len(want))
	for _, e := range want {
		index[e.Method+"/"+e.Input] = e
	}
	seen := make(map[string]bool, len(got))
	for _, g := range got {
		key := g.Method + "/" + g.Input
		seen[key] = true
		w, ok := index[key]
		if !ok {
			t.Errorf("%s: no golden entry (regenerate with -update)", key)
			continue
		}
		if g.Strategy != w.Strategy {
			t.Errorf("%s: strategy %s, golden says %s", key, g.Strategy, w.Strategy)
		}
		if g.WireBytes != w.WireBytes {
			t.Errorf("%s: wire bytes %d, golden says %d", key, g.WireBytes, w.WireBytes)
		}
		if !bytes.Equal(g.Payload, w.Payload) {
			t.Errorf("%s: payload drifted from golden (%d vs %d bytes)", key, len(g.Payload), len(w.Payload))
		}
		if !bytes.Equal(g.Output, w.Output) {
			t.Errorf("%s: decoded output drifted from golden", key)
		}
	}
	for key := range index {
		if !seen[key] {
			t.Errorf("stale golden entry %s (regenerate with -update)", key)
		}
	}
}
