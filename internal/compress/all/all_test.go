package all_test

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

// The 18 methods of DESIGN.md §4 (16 paper methods + baseline + extension
// hooks); keep in sync with the registry.
var wantMethods = []string{
	"none",
	"eightbit", "onebit", "signsgd", "signsgdmv", "signum", "qsgd", "natural", "terngrad", "efsignsgd", "inceptionn",
	"randomk", "topk", "thresholdv", "dgc",
	"adaptive", "sketchml", "threelc",
	"atomo", "huffterngrad", "huffqsgd",
	"powersgd",
}

func newCompressor(t *testing.T, name string, seed uint64) grace.Compressor {
	t.Helper()
	c, err := grace.New(name, grace.Options{Seed: seed})
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return c
}

func randomGrad(seed uint64, d int) []float32 {
	r := fxrand.New(seed)
	g := make([]float32, d)
	for i := range g {
		g[i] = r.NormFloat32() * 0.1
	}
	return g
}

func TestRegistryHasAllMethods(t *testing.T) {
	for _, name := range wantMethods {
		if _, err := grace.Lookup(name); err != nil {
			t.Errorf("missing method %q: %v", name, err)
		}
	}
	if got := len(grace.Names()); got < len(wantMethods) {
		t.Fatalf("registry has %d methods, want >= %d", got, len(wantMethods))
	}
}

func TestTableIMetadata(t *testing.T) {
	// Spot-check taxonomy entries against the paper's Table I.
	cases := map[string]struct{ class, nature string }{
		"qsgd":     {"quantization", "randomized"},
		"signsgd":  {"quantization", "deterministic"},
		"topk":     {"sparsification", "deterministic"},
		"randomk":  {"sparsification", "randomized"},
		"adaptive": {"hybrid", "deterministic"},
		"sketchml": {"hybrid", "randomized"},
		"powersgd": {"lowrank", "deterministic"},
		"none":     {"baseline", "deterministic"},
	}
	for name, want := range cases {
		m, err := grace.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Class != want.class || m.Nature != want.nature {
			t.Errorf("%s: class/nature = %s/%s, want %s/%s", name, m.Class, m.Nature, want.class, want.nature)
		}
	}
	// Built-in EF methods must be flagged so the framework memory stays off.
	for _, name := range []string{"onebit", "dgc", "threelc", "powersgd"} {
		m, _ := grace.Lookup(name)
		if !m.BuiltinEF {
			t.Errorf("%s should declare BuiltinEF", name)
		}
	}
}

// TestRoundTripShape verifies the fundamental decompression contract for
// every registered method over several tensor geometries.
func TestRoundTripShape(t *testing.T) {
	shapes := [][]int{{64}, {16, 16}, {8, 4, 3, 3}, {1}, {37}}
	for _, name := range grace.Names() {
		for si, shape := range shapes {
			info := grace.NewTensorInfo("t", shape)
			c := newCompressor(t, name, 7)
			g := randomGrad(uint64(si)+1, info.Size())
			p, err := c.Compress(g, info)
			if err != nil {
				t.Fatalf("%s compress %v: %v", name, shape, err)
			}
			if p.WireBytes() <= 0 {
				t.Fatalf("%s produced empty payload for %v", name, shape)
			}
			out, err := c.Decompress(p, info)
			if err != nil {
				t.Fatalf("%s decompress %v: %v", name, shape, err)
			}
			if len(out) != info.Size() {
				t.Fatalf("%s: decompressed %d elements for shape %v (%d)", name, len(out), shape, info.Size())
			}
			for i, v := range out {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s produced non-finite value at %d", name, i)
				}
			}
		}
	}
}

// TestCompressionRatios checks each method's wire size against its format's
// expected footprint on a 10k-element gradient.
func TestCompressionRatios(t *testing.T) {
	const d = 10000
	info := grace.NewTensorInfo("t", []int{100, 100})
	g := randomGrad(3, d)
	full := 4 * d

	maxBytes := map[string]int{
		"none":         full,             // dense baseline
		"signsgd":      d/8 + 16,         // 1 bit/elem
		"signum":       d/8 + 16,         // 1 bit/elem
		"signsgdmv":    d/8 + 16,         // 1 bit/elem, majority-vote agg
		"efsignsgd":    d/8 + 16,         // 1 bit/elem + scale
		"onebit":       d/8 + 24,         // 1 bit/elem + two means
		"terngrad":     d/4 + 16,         // 2 bits/elem
		"qsgd":         d + 16,           // 8 bits/elem at s=64 (7 level + 1 sign)
		"natural":      d + 8,            // 1 byte/elem
		"eightbit":     d + 8,            // 1 byte/elem + norm
		"inceptionn":   d/4 + 5*d/2 + 64, // tags + mixed fp8/f16/f32 bodies
		"topk":         d/100*8 + 64,     // 1% of (4B value + ~2B index) with slack
		"randomk":      d/100*8 + 64,
		"dgc":          d/50*8 + 64, // adaptive; generous cap at 2%
		"adaptive":     d/100*4 + 96,
		"sketchml":     2*d + 600,               // dense input: packed ids + boundaries
		"threelc":      d/2 + 64,                // <= 1.6 bits/elem before RLE
		"powersgd":     4 * 4 * (100 + 100) * 2, // rank-4 factors with slack
		"atomo":        8*(100+100+1)*4 + 16,    // up to 8 sampled triples
		"huffterngrad": d/4 + 320,               // entropy-coded 2-bit symbols
		"huffqsgd":     d/2 + 320,               // entropy-coded 4-bit symbols (s=8)
		"thresholdv":   full * 5 / 4,            // threshold 0.01 on N(0,0.1²) keeps most; index overhead inflates
	}
	for _, name := range grace.Names() {
		c := newCompressor(t, name, 5)
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cap, ok := maxBytes[name]
		if !ok {
			t.Fatalf("no wire-size expectation for %q; add one", name)
		}
		if p.WireBytes() > cap {
			t.Errorf("%s: wire %d bytes exceeds expected cap %d", name, p.WireBytes(), cap)
		}
	}
}

// TestDeterministicMethodsAreDeterministic compares payloads from two
// independent instances on the same input.
func TestDeterministicMethodsAreDeterministic(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{40, 25})
	g := randomGrad(11, info.Size())
	for _, m := range grace.All() {
		if m.Nature != "deterministic" || m.Name == "powersgd" {
			// PowerSGD's payload depends on warm-start state; covered by its
			// own test below.
			continue
		}
		a := newCompressor(t, m.Name, 1)
		b := newCompressor(t, m.Name, 2) // different seed must not matter
		pa, err := a.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pa.Bytes, pb.Bytes) || !f32Equal(pa.Dense, pb.Dense) {
			t.Errorf("%s: deterministic method produced differing payloads", m.Name)
		}
	}
}

func TestRandomizedMethodsUseSeed(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{1000})
	g := randomGrad(13, info.Size())
	for _, m := range grace.All() {
		if m.Nature != "randomized" {
			continue
		}
		same1 := newCompressor(t, m.Name, 42)
		same2 := newCompressor(t, m.Name, 42)
		p1, _ := same1.Compress(g, info)
		p2, _ := same2.Compress(g, info)
		if !bytes.Equal(p1.Bytes, p2.Bytes) {
			t.Errorf("%s: same seed produced different payloads", m.Name)
		}
		if m.Name == "sketchml" || m.Name == "atomo" {
			// SketchML's sketch is deterministic given the input; ATOMO hits
			// its dense fallback on vector shapes (its randomized sampling
			// is covered by TestATOMOSampling below).
			continue
		}
		diff := newCompressor(t, m.Name, 43)
		p3, _ := diff.Compress(g, info)
		if bytes.Equal(p1.Bytes, p3.Bytes) {
			t.Errorf("%s: different seeds produced identical payloads", m.Name)
		}
	}
}

// TestUnbiasedCompressors verifies E[Q(x)] ≈ x for the unbiased operators.
func TestUnbiasedCompressors(t *testing.T) {
	const trials = 3000
	info := grace.NewTensorInfo("t", []int{8})
	g := []float32{0.5, -0.3, 0.02, -0.9, 0.11, 0, 0.77, -0.05}
	for _, name := range []string{"qsgd", "terngrad", "natural"} {
		c := newCompressor(t, name, 99)
		mean := make([]float64, len(g))
		for trial := 0; trial < trials; trial++ {
			p, err := c.Compress(g, info)
			if err != nil {
				t.Fatal(err)
			}
			out, err := c.Decompress(p, info)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range out {
				mean[i] += float64(v) / trials
			}
		}
		for i := range g {
			tol := 0.05*math.Abs(float64(g[i])) + 0.02
			if math.Abs(mean[i]-float64(g[i])) > tol {
				t.Errorf("%s: E[Q(x)][%d] = %v, want %v (±%v)", name, i, mean[i], g[i], tol)
			}
		}
	}
}

// TestTopKContraction verifies the δ-compressor property
// ‖x − Q(x)‖² ≤ (1 − k/d)‖x‖².
func TestTopKContraction(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{1000})
	g := randomGrad(17, 1000)
	c, err := grace.New("topk", grace.Options{Ratio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	var errSq, normSq float64
	for i := range g {
		diff := float64(g[i] - out[i])
		errSq += diff * diff
		normSq += float64(g[i]) * float64(g[i])
	}
	if errSq > (1-0.1)*normSq {
		t.Fatalf("topk residual %v exceeds δ bound %v", errSq, 0.9*normSq)
	}
	// And strictly better than random selection would guarantee on average.
	if errSq > 0.8*normSq {
		t.Fatalf("topk kept too little mass: residual ratio %v", errSq/normSq)
	}
}

func TestTopKSelectsLargest(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{6})
	g := []float32{-0.1, 1.2, 3, 0, -3.5, 0.2}
	c, err := grace.New("topk", grace.Options{Ratio: 0.34}) // k = 2
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	want := []float32{0, 0, 3, 0, -3.5, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("topk got %v want %v", out, want)
		}
	}
}

func TestSignPreservation(t *testing.T) {
	// Where the decoded value is non-zero, it must carry the input's sign
	// for every deterministic sign-respecting method.
	info := grace.NewTensorInfo("t", []int{500})
	g := randomGrad(19, 500)
	for _, name := range []string{"signsgd", "efsignsgd", "eightbit", "topk", "thresholdv", "natural", "qsgd", "terngrad", "inceptionn"} {
		c := newCompressor(t, name, 3)
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatal(err)
		}
		for i := range g {
			if out[i] != 0 && g[i] != 0 && (out[i] > 0) != (g[i] > 0) {
				t.Errorf("%s flipped sign at %d: %v -> %v", name, i, g[i], out[i])
			}
		}
	}
}

func TestEightbitRelativeAccuracy(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{1000})
	g := randomGrad(23, 1000)
	c := newCompressor(t, "eightbit", 1)
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	norm := tensor.NormInfF32(g)
	for i := range g {
		if math.Abs(float64(g[i]))/norm < 1.0/32 {
			continue // below fp8 resolution relative to the scale
		}
		rel := math.Abs(float64(out[i]-g[i])) / math.Abs(float64(g[i]))
		if rel > 0.08 {
			t.Fatalf("eightbit relative error %v at %d (%v -> %v)", rel, i, g[i], out[i])
		}
	}
}

func TestOnebitBuiltinMemory(t *testing.T) {
	// Feeding a constant gradient, the cumulative decoded mass must approach
	// the cumulative input mass thanks to the built-in error feedback.
	info := grace.NewTensorInfo("t", []int{4})
	g := []float32{1, 0.5, -0.25, -1}
	c := newCompressor(t, "onebit", 1)
	total := make([]float64, 4)
	const steps = 50
	for s := 0; s < steps; s++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := c.Decompress(p, info)
		for i, v := range out {
			total[i] += float64(v)
		}
	}
	for i := range g {
		if math.Abs(total[i]-float64(g[i])*steps) > 3 {
			t.Fatalf("onebit EF drift at %d: delivered %v of %v", i, total[i], float64(g[i])*steps)
		}
	}
}

func TestThreeLCCompressesSparseWell(t *testing.T) {
	// With s close to 2 most elements quantize to zero, and ZRLE should
	// crush the payload far below 2 bits/element.
	info := grace.NewTensorInfo("t", []int{10000})
	r := fxrand.New(5)
	g := make([]float32, 10000)
	for i := range g {
		if r.Bernoulli(0.01) {
			g[i] = r.NormFloat32()
		} else {
			g[i] = r.NormFloat32() * 0.001
		}
	}
	c, err := grace.New("threelc", grace.Options{Threshold: 1.9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	if p.WireBytes() > 1500 {
		t.Fatalf("threelc payload %d bytes; expected heavy RLE compression", p.WireBytes())
	}
	if _, err := c.Decompress(p, info); err != nil {
		t.Fatal(err)
	}
}

func TestSketchMLBucketsApproximate(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{5000})
	g := randomGrad(31, 5000)
	c, err := grace.New("sketchml", grace.Options{Levels: 256})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	// Bucket midpoints must preserve the overall magnitude distribution:
	// check the mean absolute error is a small fraction of the value scale.
	var mae, scale float64
	for i := range g {
		mae += math.Abs(float64(out[i] - g[i]))
		scale += math.Abs(float64(g[i]))
	}
	if mae/scale > 0.15 {
		t.Fatalf("sketchml MAE ratio %v too high", mae/scale)
	}
}

func TestPowerSGDExactForLowRank(t *testing.T) {
	// A rank-1 matrix must be reconstructed (nearly) exactly by rank-4
	// PowerSGD once the power iteration has locked on.
	rows, cols := 32, 16
	info := grace.NewTensorInfo("w", []int{rows, cols})
	r := fxrand.New(7)
	u := make([]float32, rows)
	v := make([]float32, cols)
	for i := range u {
		u[i] = r.NormFloat32()
	}
	for i := range v {
		v[i] = r.NormFloat32()
	}
	g := make([]float32, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			g[i*cols+j] = u[i] * v[j]
		}
	}
	c, err := grace.New("powersgd", grace.Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	var out []float32
	for iter := 0; iter < 3; iter++ { // warm start converges
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, err = c.Decompress(p, info)
		if err != nil {
			t.Fatal(err)
		}
	}
	var errSq, normSq float64
	for i := range g {
		diff := float64(out[i] - g[i])
		errSq += diff * diff
		normSq += float64(g[i]) * float64(g[i])
	}
	if errSq/normSq > 1e-4 {
		t.Fatalf("powersgd rank-1 reconstruction error ratio %v", errSq/normSq)
	}
}

func TestPowerSGDDenseFallbackForVectors(t *testing.T) {
	info := grace.NewTensorInfo("b", []int{10})
	g := randomGrad(3, 10)
	c, err := grace.New("powersgd", grace.Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if out[i] != g[i] {
			t.Fatal("vector fallback must be lossless")
		}
	}
}

func TestPowerSGDCustomCommAggregates(t *testing.T) {
	const n = 4
	rows, cols := 16, 12
	info := grace.NewTensorInfo("w", []int{rows, cols})
	hub := comm.NewHub(n)
	outs := make([][]float32, n)
	var wg sync.WaitGroup
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := grace.New("powersgd", grace.Options{Rank: 4})
			if err != nil {
				panic(err)
			}
			cc := c.(grace.CustomComm)
			g := randomGrad(uint64(rank)+1, rows*cols)
			agg, sent, err := cc.CommunicateAggregate(g, info, hub.Worker(rank))
			if err != nil {
				panic(err)
			}
			if sent != 4*4*(rows+cols) {
				panic("sent bytes wrong")
			}
			outs[rank] = agg
		}(rank)
	}
	wg.Wait()
	for rank := 1; rank < n; rank++ {
		for i := range outs[0] {
			if outs[rank][i] != outs[0][i] {
				t.Fatalf("powersgd workers disagree at %d", i)
			}
		}
	}
}

func TestDGCAccumulatesUntilSent(t *testing.T) {
	// Elements never selected must keep accumulating (momentum + residual),
	// eventually forcing transmission.
	info := grace.NewTensorInfo("t", []int{100})
	g := make([]float32, 100)
	for i := range g {
		g[i] = 0.001
	}
	g[0] = 0.5 // dominates early selections
	c, err := grace.New("dgc", grace.Options{Ratio: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	sentOther := false
	for iter := 0; iter < 200 && !sentOther; iter++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := c.Decompress(p, info)
		for i := 1; i < len(out); i++ {
			if out[i] != 0 {
				sentOther = true
			}
		}
	}
	if !sentOther {
		t.Fatal("dgc never transmitted the small accumulated elements")
	}
}

func TestAdaptiveMeansMatchParts(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{8})
	g := []float32{4, 3, -6, -1, 0.5, -0.2, 2, -5}
	c, err := grace.New("adaptive", grace.Options{Ratio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	for i := range g {
		if out[i] != 0 {
			if (out[i] > 0) != (g[i] > 0) {
				t.Fatalf("adaptive sign mismatch at %d", i)
			}
		}
	}
	// The largest-magnitude element of each sign must be selected.
	if out[0] == 0 || out[2] == 0 {
		t.Fatalf("adaptive missed the largest elements: %v", out)
	}
}

func TestZeroGradientAllMethods(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{64})
	g := make([]float32, 64)
	for _, name := range grace.Names() {
		c := newCompressor(t, name, 1)
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatalf("%s on zero gradient: %v", name, err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatalf("%s decompress zero: %v", name, err)
		}
		for i, v := range out {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite at %d on zero input", name, i)
			}
		}
	}
}

func f32Equal(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPipelineMeanInvariant verifies Algorithm 1's aggregation contract for
// every default-Agg allgather method: the pipeline's output equals the mean
// of the locally decompressed payloads.
func TestPipelineMeanInvariant(t *testing.T) {
	const n = 3
	info := grace.NewTensorInfo("t", []int{30, 10})
	for _, name := range grace.Names() {
		meta, _ := grace.Lookup(name)
		ref, err := grace.New(name, grace.Options{Seed: 500})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Strategy() != grace.Allgather {
			continue
		}
		if _, custom := ref.(grace.Aggregator); custom {
			continue
		}
		// Reference: compress+decompress each worker's gradient locally with
		// per-rank seeded instances.
		grads := make([][]float32, n)
		want := make([]float32, info.Size())
		for rank := 0; rank < n; rank++ {
			grads[rank] = randomGrad(uint64(rank)+50, info.Size())
			c, err := grace.New(name, grace.Options{Seed: 500 + uint64(rank)})
			if err != nil {
				t.Fatal(err)
			}
			p, err := c.Compress(grads[rank], info)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			dec, err := c.Decompress(p, info)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, v := range dec {
				want[i] += v / n
			}
		}
		// Pipeline run with identically seeded instances.
		hub := comm.NewHub(n)
		got := make([][]float32, n)
		var wg sync.WaitGroup
		errs := make([]error, n)
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				c, err := grace.New(name, grace.Options{Seed: 500 + uint64(rank)})
				if err != nil {
					errs[rank] = err
					return
				}
				pipe := &grace.Pipeline{Comp: c, Coll: hub.Worker(rank)}
				got[rank], _, errs[rank] = pipe.Exchange(grads[rank], info)
			}(rank)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("%s rank %d: %v", name, rank, err)
			}
		}
		_ = meta
		for rank := 0; rank < n; rank++ {
			for i := range want {
				diff := float64(got[rank][i] - want[i])
				if diff > 1e-5 || diff < -1e-5 {
					t.Fatalf("%s: rank %d agg[%d] = %v, want %v", name, rank, i, got[rank][i], want[i])
				}
			}
		}
	}
}
