package all_test

import (
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

// lockstepInfos is a many-small-tensor layer set sized so a byte-targeted
// bucketer has real choices to make: mixed shapes, nothing aligned to a
// bucket boundary.
func lockstepInfos() []grace.TensorInfo {
	shapes := [][]int{
		{24, 4}, {33}, {17}, {8, 8}, {5, 5}, {80}, {12}, {10, 4}, {7}, {3, 4},
	}
	infos := make([]grace.TensorInfo, len(shapes))
	for i, s := range shapes {
		infos[i] = grace.NewTensorInfo("lt"+string(rune('a'+i)), s)
	}
	return infos
}

// runLockstep drives `workers` engines over the in-process hub for `steps`
// steps of seeded gradients and returns every rank's final aggregates plus
// rank 0's last step report. Construction goes through the functional-options
// surface, the same path the trainer and CLIs use.
func runLockstep(t *testing.T, method string, fc grace.FusionConfig, ef bool,
	infos []grace.TensorInfo) ([][][]float32, *grace.StepReport) {
	t.Helper()
	const workers, steps, lanes = 3, 2, 2
	hub := comm.NewHub(workers)
	final := make([][][]float32, workers)
	errs := make([]error, workers)
	var rep grace.StepReport
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var mem *grace.Memory
			if ef {
				mem = grace.NewMemory(1, 1)
			}
			opts := goldenOptions(method)
			opts.Seed = 900 + uint64(rank)
			eng, err := grace.NewEngine(
				grace.WithCollective(hub.Worker(rank)),
				grace.WithCompressorFactory(func() (grace.Compressor, error) {
					return grace.New(method, opts)
				}),
				grace.WithEngineMemory(mem),
				grace.WithParallelism(lanes),
				grace.WithFusion(fc),
			)
			if err != nil {
				errs[rank] = err
				return
			}
			grads := make([][]float32, len(infos))
			for step := 0; step < steps; step++ {
				for ti, info := range infos {
					r := fxrand.New(uint64(rank)<<16 | uint64(step)<<8 | uint64(ti) + 1)
					g := make([]float32, info.Size())
					for i := range g {
						g[i] = r.NormFloat32() * 0.1
					}
					grads[ti] = g
				}
				aggs, sr, err := eng.Step(grads, infos)
				if err != nil {
					errs[rank] = err
					return
				}
				final[rank] = make([][]float32, len(aggs))
				for i, a := range aggs {
					final[rank][i] = append([]float32(nil), a...)
				}
				if rank == 0 {
					rep = *sr
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("%s rank %d: %v", method, rank, err)
		}
	}
	return final, &rep
}

// TestFusedLockstepAllMethods asserts, for every registered method, that a
// fully fused multi-worker run (every fusable tensor in shared collective
// rounds) produces bitwise-identical aggregates to the per-tensor schedule —
// the registry-wide closure of the engine-level fusion identity tests. Run
// under -race via `make race`, it also exercises the fused exchange's
// cross-goroutine buffer handoffs on all 22 codecs at once.
func TestFusedLockstepAllMethods(t *testing.T) {
	infos := lockstepInfos()
	for _, method := range wantMethods {
		t.Run(method, func(t *testing.T) {
			meta, err := grace.Lookup(method)
			if err != nil {
				t.Fatal(err)
			}
			ef := meta.DefaultEF && !meta.BuiltinEF
			probe, err := grace.New(method, goldenOptions(method))
			if err != nil {
				t.Fatal(err)
			}
			want, wantRep := runLockstep(t, method, grace.FusionConfig{}, ef, infos)
			got, gotRep := runLockstep(t, method, grace.FusionConfig{TargetBytes: 1 << 20}, ef, infos)
			for rank := range got {
				for ti := range infos {
					for i := range want[rank][ti] {
						if got[rank][ti][i] != want[rank][ti][i] {
							t.Fatalf("rank %d tensor %d elem %d: fused %v != unfused %v",
								rank, ti, i, got[rank][ti][i], want[rank][ti][i])
						}
					}
				}
			}
			if probe.Strategy() != grace.Custom && gotRep.Rounds >= wantRep.Rounds {
				t.Fatalf("fused run used %d rounds, unfused %d — fusion never engaged",
					gotRep.Rounds, wantRep.Rounds)
			}
		})
	}
}
