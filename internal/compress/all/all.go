// Package all registers every compressor implementation with the grace
// registry. Import it for side effects:
//
//	import _ "repro/internal/compress/all"
package all

import (
	_ "repro/internal/compress/adaptive"
	_ "repro/internal/compress/atomo"
	_ "repro/internal/compress/dgc"
	_ "repro/internal/compress/efsignsgd"
	_ "repro/internal/compress/eightbit"
	_ "repro/internal/compress/huffcoded"
	_ "repro/internal/compress/inceptionn"
	_ "repro/internal/compress/natural"
	_ "repro/internal/compress/none"
	_ "repro/internal/compress/onebit"
	_ "repro/internal/compress/powersgd"
	_ "repro/internal/compress/qsgd"
	_ "repro/internal/compress/randomk"
	_ "repro/internal/compress/signsgd"
	_ "repro/internal/compress/signum"
	_ "repro/internal/compress/sketchml"
	_ "repro/internal/compress/terngrad"
	_ "repro/internal/compress/threelc"
	_ "repro/internal/compress/thresholdv"
	_ "repro/internal/compress/topk"
)
