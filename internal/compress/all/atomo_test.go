package all_test

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

// lowRankGrad builds an exactly rank-2 matrix gradient.
func lowRankGrad(seed uint64, rows, cols int) []float32 {
	r := fxrand.New(seed)
	g := make([]float32, rows*cols)
	for rank := 0; rank < 2; rank++ {
		u := make([]float32, rows)
		v := make([]float32, cols)
		for i := range u {
			u[i] = r.NormFloat32()
		}
		for i := range v {
			v[i] = r.NormFloat32()
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				g[i*cols+j] += u[i] * v[j]
			}
		}
	}
	return g
}

func TestATOMOLowRankReconstruction(t *testing.T) {
	// With a generous budget every spectral atom of a rank-2 matrix is
	// retained (p_i saturates at 1), so reconstruction is near exact.
	rows, cols := 24, 16
	info := grace.NewTensorInfo("w", []int{rows, cols})
	g := lowRankGrad(3, rows, cols)
	c, err := grace.New("atomo", grace.Options{Rank: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	var errSq, normSq float64
	for i := range g {
		diff := float64(out[i] - g[i])
		errSq += diff * diff
		normSq += float64(g[i]) * float64(g[i])
	}
	if errSq/normSq > 1e-3 {
		t.Fatalf("rank-2 reconstruction error ratio %v", errSq/normSq)
	}
}

func TestATOMOUnbiasedOverSpectrum(t *testing.T) {
	// With a budget below the true rank, sampling is random but the 1/p
	// scaling keeps the estimator unbiased over many draws.
	rows, cols := 16, 12
	info := grace.NewTensorInfo("w", []int{rows, cols})
	g := lowRankGrad(5, rows, cols)
	c, err := grace.New("atomo", grace.Options{Rank: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 800
	mean := make([]float64, len(g))
	for trial := 0; trial < trials; trial++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			mean[i] += float64(v) / trials
		}
	}
	var errSq, normSq float64
	for i := range g {
		diff := mean[i] - float64(g[i])
		errSq += diff * diff
		normSq += float64(g[i]) * float64(g[i])
	}
	// Sampling noise at 800 trials leaves a few percent; the estimator mean
	// must be far closer to g than a single biased draw would be.
	if errSq/normSq > 0.02 {
		t.Fatalf("ATOMO estimator biased: mean error ratio %v", errSq/normSq)
	}
}

func TestATOMOSampling(t *testing.T) {
	// Different seeds must select different atom subsets on a matrix shape.
	rows, cols := 32, 32
	info := grace.NewTensorInfo("w", []int{rows, cols})
	r := fxrand.New(7)
	g := make([]float32, rows*cols)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	a, _ := grace.New("atomo", grace.Options{Rank: 2, Seed: 1})
	b, _ := grace.New("atomo", grace.Options{Rank: 2, Seed: 2})
	// A single draw can collide by chance (the subset space is small);
	// across several draws the two seeds' selection streams must diverge.
	differed := false
	for trial := 0; trial < 10 && !differed; trial++ {
		pa, err := a.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		if len(pa.Bytes) != len(pb.Bytes) {
			differed = true
			continue
		}
		for i := range pa.Bytes {
			if pa.Bytes[i] != pb.Bytes[i] {
				differed = true
				break
			}
		}
	}
	if !differed {
		t.Fatal("different seeds produced identical atom selections across 10 draws")
	}
}

func TestATOMODenseFallbackLossless(t *testing.T) {
	info := grace.NewTensorInfo("b", []int{10})
	g := randomGrad(11, 10)
	c, _ := grace.New("atomo", grace.Options{Rank: 3, Seed: 1})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g {
		if out[i] != g[i] {
			t.Fatal("vector fallback must be lossless")
		}
	}
}

func TestATOMOBudgetControlsVolume(t *testing.T) {
	rows, cols := 64, 64
	info := grace.NewTensorInfo("w", []int{rows, cols})
	r := fxrand.New(13)
	g := make([]float32, rows*cols)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	small, _ := grace.New("atomo", grace.Options{Rank: 1, Seed: 3})
	big, _ := grace.New("atomo", grace.Options{Rank: 8, Seed: 3})
	var smallSum, bigSum float64
	for trial := 0; trial < 20; trial++ {
		ps, _ := small.Compress(g, info)
		pb, _ := big.Compress(g, info)
		smallSum += float64(ps.WireBytes())
		bigSum += float64(pb.WireBytes())
	}
	if !(smallSum < bigSum) || math.IsNaN(smallSum) {
		t.Fatalf("budget 1 volume %v should be below budget 8 volume %v", smallSum, bigSum)
	}
}
