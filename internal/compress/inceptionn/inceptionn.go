// Package inceptionn implements the INCEPTIONN gradient codec [35]: each
// element is stored at one of four precisions — 0 bits (dropped), 8-bit
// fp8, 16-bit float16 or full 32-bit float — selected by its magnitude
// relative to the tensor's infinity norm, with a 2-bit tag per element
// recording the choice.
//
// The original work runs this codec on an FPGA NIC to hide its cost; here it
// runs on the CPU, which is exactly the configuration whose overhead the
// paper's Figure 8 measures.
package inceptionn

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "inceptionn",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		Reference: "Li et al., MICRO 2018 [35]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return Compressor{}, nil
		},
	})
}

// Precision tags.
const (
	tagZero = 0
	tagFP8  = 1
	tagF16  = 2
	tagF32  = 3
)

// Relative-magnitude bands selecting the precision level. Elements below
// 2^-6 of the norm are dropped (fp8's representable floor); small elements
// take fp8, mid-range float16, and the largest full precision.
const (
	bandZero = 1.0 / 64
	bandFP8  = 1.0 / 8
	bandF16  = 1.0 / 2
)

// Compressor applies magnitude-banded mixed precision.
type Compressor struct{}

var _ grace.Compressor = Compressor{}

// Name returns "inceptionn".
func (Compressor) Name() string { return "inceptionn" }

// Strategy returns Allgather.
func (Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress emits ‖g‖∞, the 2-bit tag stream, then the heterogeneous values.
func (Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	scale := float32(tensor.NormInfF32(g))
	tags := make([]uint32, len(g))
	values := encode.NewWriter(len(g))
	if scale > 0 {
		inv := 1 / scale
		for i, v := range g {
			r := v * inv
			a := r
			if a < 0 {
				a = -a
			}
			switch {
			case a < bandZero:
				tags[i] = tagZero
			case a < bandFP8:
				tags[i] = tagFP8
				values.U8(uint8(encode.F32ToFP8(r)))
			case a < bandF16:
				tags[i] = tagF16
				values.U16(uint16(encode.F32ToF16(r)))
			default:
				tags[i] = tagF32
				values.F32(r)
			}
		}
	}
	w := encode.NewWriter(4 + encode.PackedLen(len(g), 2) + values.Len())
	w.F32(scale)
	w.Raw(encode.PackBits(tags, 2))
	w.Raw(values.Bytes())
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress walks the tag stream, decoding each value at its precision.
func (Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	scale := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("inceptionn: %w", r.Err())
	}
	d := info.Size()
	tagBytes := encode.PackedLen(d, 2)
	if len(p.Bytes) < 4+tagBytes {
		return nil, fmt.Errorf("inceptionn: truncated tag stream")
	}
	tags, err := encode.UnpackBits(p.Bytes[4:4+tagBytes], 2, d)
	if err != nil {
		return nil, fmt.Errorf("inceptionn: %w", err)
	}
	vr := encode.NewReader(p.Bytes[4+tagBytes:])
	out := make([]float32, d)
	if scale == 0 {
		return out, nil
	}
	for i, tag := range tags {
		switch tag {
		case tagZero:
			// stays 0
		case tagFP8:
			out[i] = encode.FP8ToF32(encode.FP8(vr.U8())) * scale
		case tagF16:
			out[i] = encode.F16ToF32(encode.Float16(vr.U16())) * scale
		case tagF32:
			out[i] = vr.F32() * scale
		}
	}
	if vr.Err() != nil {
		return nil, fmt.Errorf("inceptionn: %w", vr.Err())
	}
	return out, nil
}
