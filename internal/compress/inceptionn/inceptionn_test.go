package inceptionn

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestMixedPrecisionBands(t *testing.T) {
	// Large elements keep full precision, mid-range lose a little, small
	// ones quantize coarsely, and near-zero elements are dropped.
	c, _ := grace.New("inceptionn", grace.Options{})
	g := []float32{1.0, 0.3, 0.05, 0.001}
	info := grace.NewTensorInfo("t", []int{4})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1.0 {
		t.Fatalf("max element must be exact (32-bit band): %v", out[0])
	}
	if rel := math.Abs(float64(out[1]-0.3)) / 0.3; rel > 1e-3 {
		t.Fatalf("f16-band relative error %v too large", rel)
	}
	if rel := math.Abs(float64(out[2]-0.05)) / 0.05; rel > 0.05 {
		t.Fatalf("fp8-band relative error %v too large", rel)
	}
	if out[3] != 0 {
		t.Fatalf("below-band element should be dropped, got %v", out[3])
	}
}

func TestVolumeBetweenQuarterAndFull(t *testing.T) {
	// Mixed precision always costs at least the 2-bit tag stream and at
	// most tags + full floats.
	c, _ := grace.New("inceptionn", grace.Options{})
	r := fxrand.New(1)
	const d = 4000
	g := make([]float32, d)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{d})
	p, _ := c.Compress(g, info)
	minBytes := 4 + d/4
	maxBytes := 4 + d/4 + 4*d
	if p.WireBytes() < minBytes || p.WireBytes() > maxBytes {
		t.Fatalf("wire %d outside [%d, %d]", p.WireBytes(), minBytes, maxBytes)
	}
	// For a Gaussian most mass is in the low bands, so it should be far
	// below full float32.
	if p.WireBytes() > 3*d {
		t.Fatalf("wire %d bytes: banding is not compressing a Gaussian", p.WireBytes())
	}
}
