package topk

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

// FuzzDecompress feeds the sparse-payload decoder arbitrary bytes: hostile
// input must yield an error or a correctly-sized vector — never a panic or an
// allocation driven by a corrupt length prefix.
func FuzzDecompress(f *testing.F) {
	info := grace.NewTensorInfo("w", []int{9, 7})
	seedComp := &Compressor{ratio: 0.25}
	r := fxrand.New(5)
	g := make([]float32, info.Size())
	for i := range g {
		g[i] = r.NormFloat32()
	}
	if pay, err := seedComp.Compress(g, info); err == nil {
		f.Add(pay.Bytes)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		c := &Compressor{ratio: 0.25}
		dec, err := c.Decompress(&grace.Payload{Bytes: data}, info)
		if err != nil {
			return
		}
		if len(dec) != info.Size() {
			t.Fatalf("decoded %d elements, want %d", len(dec), info.Size())
		}
		dst := make([]float32, info.Size())
		if err := c.DecompressInto(&grace.Payload{Bytes: data}, info, dst); err != nil {
			t.Fatalf("Decompress accepted what DecompressInto rejected: %v", err)
		}
	})
}
