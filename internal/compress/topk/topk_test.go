package topk

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestExactSelectionCount(t *testing.T) {
	for _, ratio := range []float64{0.01, 0.1, 0.5, 1.0} {
		c, err := grace.New("topk", grace.Options{Ratio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		r := fxrand.New(1)
		const d = 1000
		g := make([]float32, d)
		for i := range g {
			g[i] = r.NormFloat32()
		}
		info := grace.NewTensorInfo("t", []int{d})
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		nz := 0
		for _, v := range out {
			if v != 0 {
				nz++
			}
		}
		want := int(ratio * d)
		if nz != want {
			t.Fatalf("ratio %v: selected %d, want %d", ratio, nz, want)
		}
	}
}

func TestSelectedValuesAreExact(t *testing.T) {
	// Top-k is lossless on the selected coordinates.
	c, _ := grace.New("topk", grace.Options{Ratio: 0.2})
	r := fxrand.New(2)
	g := make([]float32, 500)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{500})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	for i, v := range out {
		if v != 0 && v != g[i] {
			t.Fatalf("selected value altered at %d: %v vs %v", i, v, g[i])
		}
	}
}

func TestRatioOneIsLossless(t *testing.T) {
	c, _ := grace.New("topk", grace.Options{Ratio: 1.0})
	g := []float32{1, -2, 0, 3.5}
	info := grace.NewTensorInfo("t", []int{4})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	for i := range g {
		if out[i] != g[i] {
			t.Fatalf("ratio 1.0 lost data: %v vs %v", out, g)
		}
	}
}

func TestRejectsBadRatio(t *testing.T) {
	if _, err := grace.New("topk", grace.Options{Ratio: 1.5}); err == nil {
		t.Fatal("expected error for ratio > 1")
	}
	if _, err := grace.New("topk", grace.Options{Ratio: -0.1}); err == nil {
		t.Fatal("expected error for negative ratio")
	}
}
