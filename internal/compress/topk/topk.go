// Package topk implements Top-k sparsification [15]: transmit the k gradient
// elements of largest absolute value together with their indices (Figure 4
// of the paper). Deterministic and biased; the paper runs it with error
// feedback on.
package topk

import (
	"fmt"

	"repro/internal/compress/cbase"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "topk",
		Class:     "sparsification",
		Output:    "k",
		Nature:    "deterministic",
		DefaultEF: true,
		Reference: "Aji & Heafield, EMNLP 2017 [15]",
		New: func(o grace.Options) (grace.Compressor, error) {
			ratio := o.Ratio
			if ratio == 0 {
				ratio = 0.01
			}
			if ratio < 0 || ratio > 1 {
				return nil, fmt.Errorf("topk: ratio %v out of (0,1]", ratio)
			}
			return &Compressor{ratio: ratio}, nil
		},
	})
}

// Compressor selects the top-k elements by magnitude.
type Compressor struct {
	ratio float64
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "topk".
func (*Compressor) Name() string { return "topk" }

// Strategy returns Allgather (sparse payloads are not summable).
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress selects and serializes the k largest-magnitude elements.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	k := cbase.KFor(c.ratio, len(g))
	idx := cbase.TopK(g, k)
	vals := make([]float32, len(idx))
	for i, j := range idx {
		vals[i] = g[j]
	}
	return &grace.Payload{Bytes: cbase.EncodeSparse(idx, vals)}, nil
}

// Decompress restores the dense gradient with zeros at unselected positions.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return cbase.DecodeSparse(p.Bytes, info.Size())
}

// DecompressInto restores the dense gradient into dst without allocating
// (grace.DecompressorInto).
func (c *Compressor) DecompressInto(p *grace.Payload, info grace.TensorInfo, dst []float32) error {
	return cbase.DecodeSparseInto(p.Bytes, dst)
}

var _ grace.DecompressorInto = (*Compressor)(nil)
