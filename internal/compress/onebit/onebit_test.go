package onebit

import (
	"math"
	"testing"

	"repro/internal/grace"
)

func TestDecodeMeansMatchParts(t *testing.T) {
	c, _ := grace.New("onebit", grace.Options{})
	g := []float32{2, 4, -1, -3, 6}
	info := grace.NewTensorInfo("t", []int{5})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	// Non-negative part mean = (2+4+6)/3 = 4; negative part mean = -2.
	want := []float32{4, 4, -2, -2, 4}
	for i := range want {
		if math.Abs(float64(out[i]-want[i])) > 1e-6 {
			t.Fatalf("decode got %v want %v", out, want)
		}
	}
}

func TestThresholdShiftsSplit(t *testing.T) {
	c, err := grace.New("onebit", grace.Options{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{1, 2, 4, 5}
	info := grace.NewTensorInfo("t", []int{4})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	// With τ=3, "low" part = {1,2} (mean 1.5), "high" part = {4,5} (mean 4.5).
	if math.Abs(float64(out[0]-1.5)) > 1e-6 || math.Abs(float64(out[2]-4.5)) > 1e-6 {
		t.Fatalf("thresholded decode wrong: %v", out)
	}
}

func TestMemoryIsPerTensor(t *testing.T) {
	c, _ := grace.New("onebit", grace.Options{})
	infoA := grace.NewTensorInfo("a", []int{2})
	infoB := grace.NewTensorInfo("b", []int{2})
	// Build residual on tensor a.
	for i := 0; i < 5; i++ {
		if _, err := c.Compress([]float32{1, -1}, infoA); err != nil {
			t.Fatal(err)
		}
	}
	// Tensor b must start with a clean memory: its first compression of a
	// symmetric input decodes to the exact part means.
	p, _ := c.Compress([]float32{1, -1}, infoB)
	out, _ := c.Decompress(p, infoB)
	if out[0] != 1 || out[1] != -1 {
		t.Fatalf("tensor b inherited memory: %v", out)
	}
}

func TestResidualStaysBounded(t *testing.T) {
	// The built-in error feedback must keep the residual bounded for a
	// constant gradient (it contracts rather than accumulates).
	c := mustNew(t)
	g := []float32{0.9, 0.5, -0.2, -0.8, 0.1}
	info := grace.NewTensorInfo("t", []int{5})
	comp := c.(*Compressor)
	for i := 0; i < 200; i++ {
		if _, err := comp.Compress(g, info); err != nil {
			t.Fatal(err)
		}
	}
	var norm float64
	for _, v := range comp.mem["t"] {
		norm += float64(v) * float64(v)
	}
	if math.Sqrt(norm) > 5 {
		t.Fatalf("residual norm %v grew unboundedly", math.Sqrt(norm))
	}
}

func mustNew(t *testing.T) grace.Compressor {
	t.Helper()
	c, err := grace.New("onebit", grace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
