// Package onebit implements 1-bit SGD [13]: elements below a threshold
// (default 0) quantize to '0', the rest to '1'; decoding maps the two code
// words to the mean of the negative and non-negative parts respectively.
// The original work introduced the memory mechanism m = g − Q⁻¹(g̃); that
// memory is built into this compressor (BuiltinEF), applied to g + m before
// quantization.
package onebit

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "onebit",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		DefaultEF: true,
		BuiltinEF: true,
		Reference: "Seide et al., INTERSPEECH 2014 [13]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return &Compressor{threshold: float32(o.Threshold), mem: map[string][]float32{}}, nil
		},
	})
}

// Compressor carries the built-in error memory.
type Compressor struct {
	threshold float32
	mem       map[string][]float32
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "onebit".
func (*Compressor) Name() string { return "onebit" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress quantizes g+m to one bit per element with two decode means, then
// updates the memory with the quantization residual.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	d := len(g)
	m := c.mem[info.Name]
	if m == nil {
		m = make([]float32, d)
		c.mem[info.Name] = m
	}
	x := make([]float32, d)
	for i := range x {
		x[i] = g[i] + m[i]
	}
	var sumLo, sumHi float64
	var nLo, nHi int
	bits := make([]byte, (d+7)/8)
	for i, v := range x {
		if v >= c.threshold {
			bits[i/8] |= 1 << (uint(i) % 8)
			sumHi += float64(v)
			nHi++
		} else {
			sumLo += float64(v)
			nLo++
		}
	}
	meanLo, meanHi := float32(0), float32(0)
	if nLo > 0 {
		meanLo = float32(sumLo / float64(nLo))
	}
	if nHi > 0 {
		meanHi = float32(sumHi / float64(nHi))
	}
	w := encode.NewWriter(8 + len(bits))
	w.F32(meanLo)
	w.F32(meanHi)
	w.Raw(bits)
	// Built-in memory update: m ← x − Q⁻¹(Q(x)).
	for i, v := range x {
		if bits[i/8]&(1<<(uint(i)%8)) != 0 {
			m[i] = v - meanHi
		} else {
			m[i] = v - meanLo
		}
	}
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress maps '0' bits to the negative-part mean and '1' bits to the
// non-negative-part mean.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	meanLo := r.F32()
	meanHi := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("onebit: %w", r.Err())
	}
	d := info.Size()
	bits := p.Bytes[8:]
	if len(bits)*8 < d {
		return nil, fmt.Errorf("onebit: %d bits for %d elements", len(bits)*8, d)
	}
	out := make([]float32, d)
	for i := range out {
		if bits[i/8]&(1<<(uint(i)%8)) != 0 {
			out[i] = meanHi
		} else {
			out[i] = meanLo
		}
	}
	return out, nil
}
