// Package powersgd implements PowerSGD [26]: rank-r gradient factorization
// by a single power iteration (Figure 5 of the paper). The gradient matrix
// M (rows×cols) is approximated as P·Qᵀ with P ∈ R^(rows×r), Q ∈ R^(cols×r);
// Q is warm-started from the previous iteration, P is orthonormalized.
//
// PowerSGD owns its communication (Strategy Custom): both factors are dense
// float32 matrices that sum correctly across workers, so they travel through
// two Allreduce calls — the property that makes PowerSGD the only practical
// Allreduce-compatible compressor in the survey. Tensors too small to profit
// from factorization fall back to dense allreduce, as the reference
// implementation does.
package powersgd

import (
	"fmt"
	"math"

	"repro/internal/comm"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "powersgd",
		Class:     "lowrank",
		Output:    "(m+L)r",
		Nature:    "deterministic",
		DefaultEF: true,
		BuiltinEF: true, // post-compression error feedback per the original
		Reference: "Vogels et al., NeurIPS 2019 [26]",
		New: func(o grace.Options) (grace.Compressor, error) {
			rank := o.Rank
			if rank == 0 {
				rank = 4
			}
			if rank < 1 {
				return nil, fmt.Errorf("powersgd: rank %d must be >= 1", rank)
			}
			return New(rank), nil
		},
	})
}

// Compressor carries the per-tensor warm-start factors.
type Compressor struct {
	rank int
	q    map[string]*tensor.Dense
	mem  map[string][]float32 // built-in error feedback
}

var (
	_ grace.Compressor = (*Compressor)(nil)
	_ grace.CustomComm = (*Compressor)(nil)
)

// New constructs a PowerSGD compressor of the given rank.
func New(rank int) *Compressor {
	return &Compressor{rank: rank, q: map[string]*tensor.Dense{}, mem: map[string][]float32{}}
}

// Name returns "powersgd".
func (*Compressor) Name() string { return "powersgd" }

// Strategy returns Custom.
func (*Compressor) Strategy() grace.Strategy { return grace.Custom }

// worthFactoring reports whether the matrix view is large enough that the
// factors are smaller than the dense tensor.
func (c *Compressor) worthFactoring(info grace.TensorInfo) bool {
	return c.rank*(info.Rows+info.Cols) < info.Rows*info.Cols &&
		info.Rows > c.rank && info.Cols > c.rank
}

// warmQ returns the per-tensor Q factor, initializing it with a deterministic
// Gaussian seeded by the tensor name so all workers agree.
func (c *Compressor) warmQ(info grace.TensorInfo) *tensor.Dense {
	q := c.q[info.Name]
	if q == nil {
		seed := uint64(14695981039346656037)
		for _, ch := range info.Name {
			seed = (seed ^ uint64(ch)) * 1099511628211
		}
		q = tensor.New(info.Cols, c.rank).RandN(fxrand.New(seed), 1)
		orthonormalize(q)
		c.q[info.Name] = q
	}
	return q
}

// CommunicateAggregate runs the two-allreduce PowerSGD round and returns the
// aggregated gradient approximation. Error feedback is built in: the local
// residual (compensated gradient minus aggregated approximation) feeds the
// next iteration.
func (c *Compressor) CommunicateAggregate(g []float32, info grace.TensorInfo, coll comm.Collective) ([]float32, int, error) {
	n := float32(coll.Size())

	// Dense fallback for small tensors.
	if !c.worthFactoring(info) {
		agg := append([]float32(nil), g...)
		if err := coll.AllreduceF32(agg); err != nil {
			return nil, 0, err
		}
		for i := range agg {
			agg[i] /= n
		}
		return agg, len(g) * 4, nil
	}

	// Built-in error feedback: compress x = g + m.
	m := c.mem[info.Name]
	if m == nil {
		m = make([]float32, len(g))
		c.mem[info.Name] = m
	}
	x := make([]float32, len(g))
	for i := range x {
		x[i] = g[i] + m[i]
	}

	M := tensor.FromSlice(x, info.Rows, info.Cols)
	q := c.warmQ(info)

	// P = M·Q, allreduced then orthonormalized.
	p := tensor.Matmul(M, q)
	if err := coll.AllreduceF32(p.Data()); err != nil {
		return nil, 0, err
	}
	orthonormalize(p)

	// Q' = Mᵀ·P, allreduced and averaged.
	qNew := tensor.MatmulTA(M, p)
	if err := coll.AllreduceF32(qNew.Data()); err != nil {
		return nil, 0, err
	}
	qNew.Scale(1 / n)
	c.q[info.Name] = qNew

	// Aggregated approximation = P·Q'ᵀ.
	agg := tensor.MatmulTB(p, qNew)
	out := agg.Data()

	// Residual into the memory.
	for i := range m {
		m[i] = x[i] - out[i]
	}
	sent := 4 * c.rank * (info.Rows + info.Cols)
	return out, sent, nil
}

// Compress produces the local (non-communicated) factorization; used by the
// codec micro-benchmarks and round-trip tests. The wire format is P then Q.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	if !c.worthFactoring(info) {
		// Dense passthrough, flagged by payload length.
		buf := make([]byte, 4*len(g))
		for i, v := range g {
			putF32(buf[i*4:], v)
		}
		return &grace.Payload{Bytes: buf}, nil
	}
	M := tensor.FromSlice(append([]float32(nil), g...), info.Rows, info.Cols)
	q := c.warmQ(info)
	p := tensor.Matmul(M, q)
	orthonormalize(p)
	qNew := tensor.MatmulTA(M, p)
	c.q[info.Name] = qNew
	buf := make([]byte, 4*(p.Size()+qNew.Size()))
	off := 0
	for _, v := range p.Data() {
		putF32(buf[off:], v)
		off += 4
	}
	for _, v := range qNew.Data() {
		putF32(buf[off:], v)
		off += 4
	}
	return &grace.Payload{Bytes: buf}, nil
}

// Decompress reconstructs P·Qᵀ (or the dense passthrough).
func (c *Compressor) Decompress(pay *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	d := info.Size()
	if len(pay.Bytes) == 4*d && !c.worthFactoring(info) {
		out := make([]float32, d)
		for i := range out {
			out[i] = getF32(pay.Bytes[i*4:])
		}
		return out, nil
	}
	want := 4 * c.rank * (info.Rows + info.Cols)
	if len(pay.Bytes) != want {
		return nil, fmt.Errorf("powersgd: payload %d bytes, want %d", len(pay.Bytes), want)
	}
	p := tensor.New(info.Rows, c.rank)
	q := tensor.New(info.Cols, c.rank)
	off := 0
	for i := range p.Data() {
		p.Data()[i] = getF32(pay.Bytes[off:])
		off += 4
	}
	for i := range q.Data() {
		q.Data()[i] = getF32(pay.Bytes[off:])
		off += 4
	}
	return tensor.MatmulTB(p, q).Data(), nil
}

// orthonormalize applies modified Gram-Schmidt to the columns of a (rows×r)
// matrix in place; degenerate columns become zero.
func orthonormalize(m *tensor.Dense) {
	rows, r := m.Dim(0), m.Dim(1)
	col := func(j int) []float64 {
		out := make([]float64, rows)
		for i := 0; i < rows; i++ {
			out[i] = float64(m.At(i, j))
		}
		return out
	}
	setCol := func(j int, v []float64) {
		for i := 0; i < rows; i++ {
			m.Set(float32(v[i]), i, j)
		}
	}
	for j := 0; j < r; j++ {
		v := col(j)
		var origNorm float64
		for _, x := range v {
			origNorm += x * x
		}
		origNorm = math.Sqrt(origNorm)
		// Two projection passes ("twice is enough"): a single pass leaves an
		// O(1) component along earlier columns when the column is nearly
		// parallel to their span, because the stored float32 basis vectors
		// carry rounding error that the residual inherits at full relative
		// magnitude.
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				u := col(k)
				var dot float64
				for i := range v {
					dot += v[i] * u[i]
				}
				for i := range v {
					v[i] -= dot * u[i]
				}
			}
		}
		var norm float64
		for _, x := range v {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		// A column that collapsed relative to its original size is linearly
		// dependent on the earlier ones; keep it zero rather than normalize
		// rounding noise into a fake basis direction.
		if norm < 1e-7*origNorm || norm < 1e-30 {
			for i := range v {
				v[i] = 0
			}
		} else {
			for i := range v {
				v[i] /= norm
			}
		}
		setCol(j, v)
	}
}

func putF32(b []byte, v float32) {
	u := math.Float32bits(v)
	b[0] = byte(u)
	b[1] = byte(u >> 8)
	b[2] = byte(u >> 16)
	b[3] = byte(u >> 24)
}

func getF32(b []byte) float32 {
	u := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	return math.Float32frombits(u)
}
