package powersgd

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func newInfo(rows, cols int) grace.TensorInfo {
	return grace.NewTensorInfo("w", []int{rows, cols})
}

func TestOrthonormalizeProducesOrthonormalColumns(t *testing.T) {
	r := fxrand.New(1)
	m := tensor.New(20, 4).RandN(r, 1)
	orthonormalize(m)
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			var dot float64
			for k := 0; k < 20; k++ {
				dot += float64(m.At(k, i)) * float64(m.At(k, j))
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-5 {
				t.Fatalf("col %d · col %d = %v, want %v", i, j, dot, want)
			}
		}
	}
}

func TestOrthonormalizeZeroesDependentColumns(t *testing.T) {
	// Two identical columns: the second must collapse to zero rather than
	// being normalized rounding noise.
	m := tensor.New(8, 2)
	for i := 0; i < 8; i++ {
		m.Set(float32(i+1), i, 0)
		m.Set(float32(i+1), i, 1)
	}
	orthonormalize(m)
	var n1 float64
	for i := 0; i < 8; i++ {
		n1 += float64(m.At(i, 1)) * float64(m.At(i, 1))
	}
	if n1 > 1e-10 {
		t.Fatalf("dependent column survived with norm² %v", n1)
	}
}

func TestWarmStartImprovesApproximation(t *testing.T) {
	// Repeated compression of the same matrix must not get worse: the warm
	// Q converges toward the leading singular subspace.
	r := fxrand.New(3)
	rows, cols := 40, 24
	g := make([]float32, rows*cols)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := newInfo(rows, cols)
	c := New(2)
	errAt := func() float64 {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for i := range g {
			d := float64(out[i] - g[i])
			e += d * d
		}
		return e
	}
	first := errAt()
	var last float64
	for i := 0; i < 5; i++ {
		last = errAt()
	}
	if last > first*1.05 {
		t.Fatalf("warm start degraded approximation: %v -> %v", first, last)
	}
}

func TestWorthFactoringBoundary(t *testing.T) {
	c := New(4)
	if c.worthFactoring(newInfo(1, 100)) {
		t.Fatal("vectors must not be factored")
	}
	if !c.worthFactoring(newInfo(64, 64)) {
		t.Fatal("large square matrices must be factored")
	}
	if c.worthFactoring(newInfo(4, 4)) {
		t.Fatal("rank >= dims must not be factored")
	}
}
