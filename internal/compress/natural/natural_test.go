package natural

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestDecodedValuesArePowersOfTwo(t *testing.T) {
	c, _ := grace.New("natural", grace.Options{Seed: 1})
	r := fxrand.New(2)
	g := make([]float32, 300)
	for i := range g {
		g[i] = r.NormFloat32() * 0.3
	}
	info := grace.NewTensorInfo("t", []int{300})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v == 0 {
			continue
		}
		l := math.Log2(math.Abs(float64(v)))
		if l != math.Trunc(l) {
			t.Fatalf("element %d = %v is not a power of two", i, v)
		}
	}
}

func TestRoundsToBracketingPowers(t *testing.T) {
	// 1.5 must round to 1 or 2 (never further), with probability 1/2 each
	// for the unbiased scheme.
	c, _ := grace.New("natural", grace.Options{Seed: 3})
	info := grace.NewTensorInfo("t", []int{1})
	ups := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		p, _ := c.Compress([]float32{1.5}, info)
		out, _ := c.Decompress(p, info)
		switch out[0] {
		case 2:
			ups++
		case 1:
		default:
			t.Fatalf("1.5 rounded to %v", out[0])
		}
	}
	rate := float64(ups) / trials
	if math.Abs(rate-0.5) > 0.03 {
		t.Fatalf("1.5 rounded up %v of the time, want ~0.5", rate)
	}
}

func TestExactPowersUnchanged(t *testing.T) {
	c, _ := grace.New("natural", grace.Options{Seed: 4})
	g := []float32{1, 2, 0.25, -0.5, -8}
	info := grace.NewTensorInfo("t", []int{5})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	for i := range g {
		if out[i] != g[i] {
			t.Fatalf("exact power %v became %v", g[i], out[i])
		}
	}
}

func TestOneBytePerElement(t *testing.T) {
	g := make([]float32, 1000)
	info := grace.NewTensorInfo("t", []int{1000})
	c, _ := grace.New("natural", grace.Options{Seed: 1})
	p, _ := c.Compress(g, info)
	if p.WireBytes() != 1000 {
		t.Fatalf("wire %d bytes, want 1000", p.WireBytes())
	}
}
