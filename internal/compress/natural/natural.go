// Package natural implements natural compression [31]: each element rounds
// to one of the two nearest integer powers of two, randomized so the operator
// is unbiased (probability proportional to proximity). The wire format is one
// byte per element: a sign bit plus a 7-bit biased exponent, with 0 reserved
// for zero — a 4x reduction over float32.
package natural

import (
	"fmt"
	"math"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "natural",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "randomized",
		DefaultEF: true,
		Reference: "Horvath et al., 2019 [31]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return &Compressor{rng: fxrand.New(o.Seed)}, nil
		},
	})
}

// expBias centers the 7-bit exponent field; representable exponents span
// [-63, 63], covering every gradient magnitude that occurs in practice.
const expBias = 64

// Compressor rounds to powers of two.
type Compressor struct {
	rng *fxrand.RNG
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "natural".
func (*Compressor) Name() string { return "natural" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress encodes each element as sign + exponent of the randomized
// power-of-two rounding.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	out := make([]byte, len(g))
	for i, v := range g {
		out[i] = c.encodeOne(v)
	}
	return &grace.Payload{Bytes: out}, nil
}

func (c *Compressor) encodeOne(v float32) byte {
	if v == 0 {
		return 0
	}
	a := math.Abs(float64(v))
	e := math.Floor(math.Log2(a))
	lo := math.Pow(2, e)
	// Round up to 2^(e+1) with probability (a-lo)/lo, the unbiased choice:
	// E[out] = lo*(1-p) + 2lo*p = lo*(1+p) = a when p = a/lo - 1.
	if c.rng.Float64() < a/lo-1 {
		e++
	}
	ei := int(e) + expBias
	if ei < 1 {
		return 0 // underflow to zero
	}
	if ei > 127 {
		ei = 127
	}
	b := byte(ei)
	if v < 0 {
		b |= 0x80
	}
	return b
}

// Decompress reconstructs ±2^(e−bias).
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	if len(p.Bytes) != info.Size() {
		return nil, fmt.Errorf("natural: %d bytes for %d elements", len(p.Bytes), info.Size())
	}
	out := make([]float32, len(p.Bytes))
	for i, b := range p.Bytes {
		e := int(b & 0x7f)
		if e == 0 {
			continue
		}
		v := float32(math.Pow(2, float64(e-expBias)))
		if b&0x80 != 0 {
			v = -v
		}
		out[i] = v
	}
	return out, nil
}
