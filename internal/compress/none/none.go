// Package none implements the no-compression baseline: gradients travel as
// dense float32 vectors through Allreduce, exactly as Horovod's default path
// does in the paper's baseline runs.
package none

import (
	"fmt"

	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "none",
		Class:     "baseline",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		Reference: "no compression",
		New: func(o grace.Options) (grace.Compressor, error) {
			return Compressor{}, nil
		},
	})
}

// Compressor is the identity codec over Allreduce.
type Compressor struct{}

var _ grace.Compressor = Compressor{}

// Name returns "none".
func (Compressor) Name() string { return "none" }

// Strategy returns Allreduce: dense float32 sums directly.
func (Compressor) Strategy() grace.Strategy { return grace.Allreduce }

// Compress copies the gradient into a dense payload.
func (Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	return &grace.Payload{Dense: append([]float32(nil), g...)}, nil
}

// Decompress copies the dense payload back out.
func (Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	if p.Dense == nil {
		return nil, fmt.Errorf("none: payload has no dense data")
	}
	if len(p.Dense) != info.Size() {
		return nil, fmt.Errorf("none: payload has %d elements, tensor has %d", len(p.Dense), info.Size())
	}
	return append([]float32(nil), p.Dense...), nil
}

// DecompressInto copies the dense payload into dst without allocating
// (grace.DecompressorInto).
func (Compressor) DecompressInto(p *grace.Payload, info grace.TensorInfo, dst []float32) error {
	if p.Dense == nil {
		return fmt.Errorf("none: payload has no dense data")
	}
	if len(p.Dense) != len(dst) {
		return fmt.Errorf("none: payload has %d elements, tensor has %d", len(p.Dense), len(dst))
	}
	copy(dst, p.Dense)
	return nil
}

var _ grace.DecompressorInto = Compressor{}
