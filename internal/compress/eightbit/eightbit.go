// Package eightbit implements Dettmers' 8-bit quantization [11]: each
// float32 gradient element maps to an 8-bit floating-point value with 1 sign,
// 3 exponent and 4 mantissa bits. Elements are first normalized by the
// tensor's infinity norm so the fp8 dynamic range is used fully; the norm
// travels with the payload.
package eightbit

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "eightbit",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		DefaultEF: true,
		Reference: "Dettmers, ICLR 2016 [11]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return Compressor{}, nil
		},
	})
}

// Compressor quantizes to the 1-3-4 fp8 format.
type Compressor struct{}

var _ grace.Compressor = Compressor{}

// Name returns "eightbit".
func (Compressor) Name() string { return "eightbit" }

// Strategy returns Allgather.
func (Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress emits ‖g‖∞ plus one fp8 byte per element.
func (Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	scale := float32(tensor.NormInfF32(g))
	w := encode.NewWriter(4 + len(g))
	w.F32(scale)
	if scale == 0 {
		w.Raw(make([]byte, len(g)))
		return &grace.Payload{Bytes: w.Bytes()}, nil
	}
	inv := 1 / scale
	for _, v := range g {
		w.U8(uint8(encode.F32ToFP8(v * inv)))
	}
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress rescales the fp8 values by the stored norm.
func (Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	scale := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("eightbit: %w", r.Err())
	}
	d := info.Size()
	if len(p.Bytes) != 4+d {
		return nil, fmt.Errorf("eightbit: %d payload bytes for %d elements", len(p.Bytes), d)
	}
	out := make([]float32, d)
	for i := 0; i < d; i++ {
		out[i] = encode.FP8ToF32(encode.FP8(p.Bytes[4+i])) * scale
	}
	return out, nil
}
