package eightbit

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestNormalizationUsesFullRange(t *testing.T) {
	// Scaling by ‖g‖∞ means the largest element maps to fp8's top of range
	// and survives with small relative error regardless of absolute scale.
	c, _ := grace.New("eightbit", grace.Options{})
	for _, scale := range []float32{1e-6, 1, 1e6} {
		g := []float32{0.5 * scale, -scale, 0.25 * scale}
		info := grace.NewTensorInfo("t", []int{3})
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		for i := range g {
			rel := math.Abs(float64(out[i]-g[i])) / math.Abs(float64(g[i]))
			if rel > 0.05 {
				t.Fatalf("scale %v: relative error %v at %d", scale, rel, i)
			}
		}
	}
}

func TestQuantizationIsIdempotent(t *testing.T) {
	// Q(Q⁻¹(Q(x))) = Q(x): re-compressing a decompressed tensor is lossless.
	c, _ := grace.New("eightbit", grace.Options{})
	r := fxrand.New(1)
	g := make([]float32, 500)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{500})
	p1, _ := c.Compress(g, info)
	once, _ := c.Decompress(p1, info)
	p2, _ := c.Compress(once, info)
	twice, _ := c.Decompress(p2, info)
	for i := range once {
		if math.Abs(float64(once[i]-twice[i])) > 1e-6 {
			t.Fatalf("not idempotent at %d: %v vs %v", i, once[i], twice[i])
		}
	}
}

func TestSmallElementsFlushToZero(t *testing.T) {
	c, _ := grace.New("eightbit", grace.Options{})
	g := []float32{1, 1e-5}
	info := grace.NewTensorInfo("t", []int{2})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	if out[0] != 1 {
		t.Fatalf("max element must be exact: %v", out[0])
	}
	if out[1] != 0 {
		t.Fatalf("element below fp8 range must flush to zero: %v", out[1])
	}
}
