package eightbit

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

// FuzzDecompress feeds the fp8-payload decoder arbitrary bytes: hostile input
// must yield an error or a correctly-sized vector — never a panic or an
// allocation driven by a corrupt length prefix.
func FuzzDecompress(f *testing.F) {
	info := grace.NewTensorInfo("w", []int{5, 13})
	r := fxrand.New(5)
	g := make([]float32, info.Size())
	for i := range g {
		g[i] = r.NormFloat32()
	}
	if pay, err := (Compressor{}).Compress(g, info); err == nil {
		f.Add(pay.Bytes)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x80, 0x7F, 0xAA})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		dec, err := (Compressor{}).Decompress(&grace.Payload{Bytes: data}, info)
		if err != nil {
			return
		}
		if len(dec) != info.Size() {
			t.Fatalf("decoded %d elements, want %d", len(dec), info.Size())
		}
	})
}
