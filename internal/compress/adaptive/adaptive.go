// Package adaptive implements adaptive-threshold quantized SGD [21] (Dryden
// et al.): per mini-batch, pick thresholds τ⁺ and τ⁻ so that a proportion α
// of the positive and of the negative gradient elements are transmitted; the
// selected elements quantize to the mean of their respective part, so the
// wire carries two floats plus two index sets — a hybrid of sparsification
// and 1-bit quantization.
package adaptive

import (
	"fmt"
	"sort"

	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "adaptive",
		Class:     "hybrid",
		Output:    "adaptive",
		Nature:    "deterministic",
		DefaultEF: true,
		Reference: "Dryden et al., MLHPC 2016 [21]",
		New: func(o grace.Options) (grace.Compressor, error) {
			alpha := o.Ratio
			if alpha == 0 {
				alpha = 0.01
			}
			if alpha <= 0 || alpha > 1 {
				return nil, fmt.Errorf("adaptive: alpha %v out of (0,1]", alpha)
			}
			return &Compressor{alpha: alpha}, nil
		},
	})
}

// Compressor selects the top α fraction of each sign's elements.
type Compressor struct {
	alpha float64
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "adaptive".
func (*Compressor) Name() string { return "adaptive" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress determines τ⁺/τ⁻ by sampling each part's magnitude distribution
// (the adaptive step) and emits the two part means plus the selected indices.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	var pos, neg []int
	for i, v := range g {
		if v > 0 {
			pos = append(pos, i)
		} else if v < 0 {
			neg = append(neg, i)
		}
	}
	posSel, posMean := c.selectPart(g, pos, false)
	negSel, negMean := c.selectPart(g, neg, true)

	w := encode.NewWriter(16 + len(posSel) + len(negSel))
	w.F32(posMean)
	w.F32(negMean)
	w.BytesSlice(encode.EncodeIndices(posSel))
	w.BytesSlice(encode.EncodeIndices(negSel))
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// selectPart picks the α-largest-magnitude indices of one sign's part and
// returns them with the mean of the selected values.
func (c *Compressor) selectPart(g []float32, part []int, negative bool) ([]int, float32) {
	if len(part) == 0 {
		return nil, 0
	}
	k := int(c.alpha * float64(len(part)))
	if k < 1 {
		k = 1
	}
	// Threshold at the (1-α) magnitude quantile of this part.
	mags := make([]float64, len(part))
	for i, j := range part {
		m := float64(g[j])
		if m < 0 {
			m = -m
		}
		mags[i] = m
	}
	sort.Float64s(mags)
	tau := mags[len(mags)-k]
	sel := make([]int, 0, k)
	var sum float64
	for _, j := range part {
		m := float64(g[j])
		if negative {
			m = -m
		}
		if m >= tau && len(sel) < k {
			sel = append(sel, j)
			sum += m
		}
	}
	if len(sel) == 0 {
		return nil, 0
	}
	mean := float32(sum / float64(len(sel)))
	if negative {
		mean = -mean
	}
	return sel, mean
}

// Decompress fills the positive indices with the positive mean and the
// negative indices with the negative mean.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	posMean := r.F32()
	negMean := r.F32()
	posBlock := r.BytesSlice()
	negBlock := r.BytesSlice()
	if r.Err() != nil {
		return nil, fmt.Errorf("adaptive: %w", r.Err())
	}
	out := make([]float32, info.Size())
	fill := func(block []byte, mean float32) error {
		idx, err := encode.DecodeIndices(block)
		if err != nil {
			return err
		}
		for _, i := range idx {
			if i < 0 || i >= len(out) {
				return fmt.Errorf("adaptive: index %d out of %d", i, len(out))
			}
			out[i] = mean
		}
		return nil
	}
	if err := fill(posBlock, posMean); err != nil {
		return nil, err
	}
	if err := fill(negBlock, negMean); err != nil {
		return nil, err
	}
	return out, nil
}
