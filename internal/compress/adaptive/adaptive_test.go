package adaptive

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestSelectionRatioPerPart(t *testing.T) {
	// With α = 0.1 roughly 10% of the positive part and 10% of the negative
	// part must be transmitted.
	c, err := grace.New("adaptive", grace.Options{Ratio: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	r := fxrand.New(1)
	g := make([]float32, 5000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{5000})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	var posSel, negSel, posAll, negAll int
	for i, v := range g {
		if v > 0 {
			posAll++
			if out[i] != 0 {
				posSel++
			}
		} else if v < 0 {
			negAll++
			if out[i] != 0 {
				negSel++
			}
		}
	}
	posRate := float64(posSel) / float64(posAll)
	negRate := float64(negSel) / float64(negAll)
	if math.Abs(posRate-0.1) > 0.03 || math.Abs(negRate-0.1) > 0.03 {
		t.Fatalf("selection rates %v/%v, want ~0.1 each", posRate, negRate)
	}
}

func TestTwoValueDecode(t *testing.T) {
	// The decoded tensor carries exactly two distinct non-zero values: the
	// positive-part mean and the negative-part mean (the 1-bit hybrid of
	// Dryden et al.).
	c, _ := grace.New("adaptive", grace.Options{Ratio: 0.3})
	r := fxrand.New(2)
	g := make([]float32, 1000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{1000})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	vals := map[float32]bool{}
	for _, v := range out {
		if v != 0 {
			vals[v] = true
		}
	}
	if len(vals) != 2 {
		t.Fatalf("decoded %d distinct non-zero values, want 2", len(vals))
	}
	var pos, neg bool
	for v := range vals {
		if v > 0 {
			pos = true
		} else {
			neg = true
		}
	}
	if !pos || !neg {
		t.Fatal("decode must contain one positive and one negative level")
	}
}

func TestAllPositiveGradient(t *testing.T) {
	c, _ := grace.New("adaptive", grace.Options{Ratio: 0.5})
	g := []float32{1, 2, 3, 4}
	info := grace.NewTensorInfo("t", []int{4})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v < 0 {
			t.Fatal("negative decode for all-positive input")
		}
	}
}

func TestRejectsBadAlpha(t *testing.T) {
	if _, err := grace.New("adaptive", grace.Options{Ratio: -0.5}); err == nil {
		t.Fatal("expected error for negative alpha")
	}
}
