package cbase

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/fxrand"
)

func TestEncodeDecodeSparseRoundTrip(t *testing.T) {
	idx := []int{7, 2, 99}
	vals := []float32{0.7, 0.2, 9.9}
	dense, err := DecodeSparse(EncodeSparse(idx, vals), 100)
	if err != nil {
		t.Fatal(err)
	}
	if dense[2] != 0.2 || dense[7] != 0.7 || dense[99] != 9.9 {
		t.Fatalf("round trip wrong: %v %v %v", dense[2], dense[7], dense[99])
	}
	nz := 0
	for _, v := range dense {
		if v != 0 {
			nz++
		}
	}
	if nz != 3 {
		t.Fatalf("%d non-zeros, want 3", nz)
	}
}

func TestEncodeSparseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeSparse([]int{1}, []float32{1, 2})
}

func TestDecodeSparseOutOfRange(t *testing.T) {
	buf := EncodeSparse([]int{5}, []float32{1})
	if _, err := DecodeSparse(buf, 3); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSparseProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%500) + 10
		r := fxrand.New(seed)
		k := r.Intn(n) + 1
		idx := r.Sample(n, k)
		vals := make([]float32, k)
		for i := range vals {
			vals[i] = r.NormFloat32()
		}
		// Keep reference copies; EncodeSparse mutates its arguments.
		refIdx := append([]int(nil), idx...)
		refVals := append([]float32(nil), vals...)
		dense, err := DecodeSparse(EncodeSparse(idx, vals), n)
		if err != nil {
			return false
		}
		for i, j := range refIdx {
			if dense[j] != refVals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKSelectsLargestMagnitudes(t *testing.T) {
	g := []float32{0.1, -5, 3, -0.2, 4, 0}
	idx := TopK(g, 3)
	sort.Ints(idx)
	want := []int{1, 2, 4}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("TopK got %v want %v", idx, want)
		}
	}
}

func TestTopKClamps(t *testing.T) {
	g := []float32{1, 2}
	if len(TopK(g, 0)) != 1 {
		t.Fatal("k<1 should clamp to 1")
	}
	if len(TopK(g, 99)) != 2 {
		t.Fatal("k>d should clamp to d")
	}
	if TopK(nil, 3) != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestTopKProperty(t *testing.T) {
	// Every selected element's magnitude must be >= every unselected one's.
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw)%n + 1
		r := fxrand.New(seed)
		g := make([]float32, n)
		for i := range g {
			g[i] = r.NormFloat32()
		}
		idx := TopK(g, k)
		if len(idx) != k {
			return false
		}
		selected := make(map[int]bool, k)
		minSel := math.Inf(1)
		for _, i := range idx {
			if selected[i] {
				return false // duplicate
			}
			selected[i] = true
			if a := math.Abs(float64(g[i])); a < minSel {
				minSel = a
			}
		}
		for i, v := range g {
			if !selected[i] && math.Abs(float64(v)) > minSel {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileAbsThreshold(t *testing.T) {
	// On a large uniform sample the threshold for ratio r should sit near
	// the (1-r) quantile of |g|.
	r := fxrand.New(3)
	g := make([]float32, 10000)
	for i := range g {
		g[i] = r.Float32()*2 - 1
	}
	th := QuantileAbsThreshold(g, 0.1, 4096, 1)
	if th < 0.8 || th > 0.95 {
		t.Fatalf("threshold %v, want ~0.9 for 10%% of U(-1,1)", th)
	}
	selected := 0
	for _, v := range g {
		if math.Abs(float64(v)) >= float64(th) {
			selected++
		}
	}
	ratio := float64(selected) / float64(len(g))
	if ratio < 0.05 || ratio > 0.2 {
		t.Fatalf("threshold selects %v, want ~0.1", ratio)
	}
}

func TestQuantileAbsThresholdEdges(t *testing.T) {
	if QuantileAbsThreshold(nil, 0.5, 100, 1) != 0 {
		t.Fatal("empty input should give 0")
	}
	if QuantileAbsThreshold([]float32{1, 2}, 1.0, 100, 1) != 0 {
		t.Fatal("ratio >= 1 should give 0 (select everything)")
	}
}

func TestKFor(t *testing.T) {
	if KFor(0.01, 100) != 1 || KFor(0.5, 100) != 50 || KFor(0.0001, 100) != 1 || KFor(2, 100) != 100 {
		t.Fatal("KFor clamping wrong")
	}
}
