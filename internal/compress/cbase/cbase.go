// Package cbase holds helpers shared by the compressor implementations: the
// sparse (indices, values) wire format the paper's sparsify/desparsify API
// describes, and top-k selection by absolute value.
package cbase

import (
	"fmt"
	"sort"

	"repro/internal/encode"
)

// EncodeSparse serializes selected (index, value) pairs:
// [index block (delta varint)] [values, 4 bytes each]. Pairs are sorted by
// index; idx and vals are mutated (sorted) in place.
func EncodeSparse(idx []int, vals []float32) []byte {
	if len(idx) != len(vals) {
		panic(fmt.Sprintf("cbase: %d indices vs %d values", len(idx), len(vals)))
	}
	encode.SortByIndex(idx, vals)
	idxBlock := encode.EncodeIndices(idx)
	w := encode.NewWriter(len(idxBlock) + 4*len(vals) + 8)
	w.BytesSlice(idxBlock)
	for _, v := range vals {
		w.F32(v)
	}
	return w.Bytes()
}

// DecodeSparse reconstructs a dense vector of the given size from
// EncodeSparse output, filling unselected positions with zero (the paper's
// desparsify).
func DecodeSparse(buf []byte, size int) ([]float32, error) {
	out := make([]float32, size)
	if err := DecodeSparseInto(buf, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeSparseInto is the allocation-free form of DecodeSparse: it zeroes
// dst and scatters the decoded (index, value) pairs into it. len(dst) is the
// dense size.
func DecodeSparseInto(buf []byte, dst []float32) error {
	r := encode.NewReader(buf)
	idxBlock := r.BytesSlice()
	if r.Err() != nil {
		return r.Err()
	}
	idx, err := encode.DecodeIndices(idxBlock)
	if err != nil {
		return err
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, i := range idx {
		if i < 0 || i >= len(dst) {
			return fmt.Errorf("cbase: sparse index %d out of size %d", i, len(dst))
		}
		dst[i] = r.F32()
	}
	return r.Err()
}

// TopK returns the indices of the k elements of g with the largest absolute
// values (k clamped to [1, len(g)] for non-empty g), in unspecified order.
// Selection is O(d) expected via quickselect.
func TopK(g []float32, k int) []int {
	d := len(g)
	if d == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	idx := make([]int, d)
	for i := range idx {
		idx[i] = i
	}
	quickSelectAbs(g, idx, k)
	return idx[:k]
}

// quickSelectAbs partially sorts idx so its first k entries reference the
// largest |g| values. Deterministic median-of-three pivoting keeps runs
// reproducible.
func quickSelectAbs(g []float32, idx []int, k int) {
	lo, hi := 0, len(idx)-1
	for lo < hi {
		p := partitionAbs(g, idx, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partitionAbs(g []float32, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Median-of-three on |g|, descending.
	if abs(g[idx[mid]]) > abs(g[idx[lo]]) {
		idx[lo], idx[mid] = idx[mid], idx[lo]
	}
	if abs(g[idx[hi]]) > abs(g[idx[lo]]) {
		idx[lo], idx[hi] = idx[hi], idx[lo]
	}
	if abs(g[idx[mid]]) > abs(g[idx[hi]]) {
		idx[mid], idx[hi] = idx[hi], idx[mid]
	}
	pivot := abs(g[idx[hi]])
	i := lo
	for j := lo; j < hi; j++ {
		if abs(g[idx[j]]) > pivot {
			idx[i], idx[j] = idx[j], idx[i]
			i++
		}
	}
	idx[i], idx[hi] = idx[hi], idx[i]
	return i
}

func abs(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}

// QuantileAbsThreshold estimates the |g| threshold above which roughly
// ratio·len(g) elements fall, using a sorted sample of at most sampleCap
// elements (DGC's sampling-based threshold estimation [16], [49]).
func QuantileAbsThreshold(g []float32, ratio float64, sampleCap int, stride int) float32 {
	if len(g) == 0 || ratio >= 1 {
		return 0
	}
	if stride < 1 {
		stride = 1
	}
	sample := make([]float32, 0, sampleCap)
	for i := 0; i < len(g) && len(sample) < sampleCap; i += stride {
		sample = append(sample, abs(g[i]))
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	pos := int(float64(len(sample)) * (1 - ratio))
	if pos >= len(sample) {
		pos = len(sample) - 1
	}
	if pos < 0 {
		pos = 0
	}
	return sample[pos]
}

// KFor returns the selection count for a sparsification ratio over d
// elements, never below 1.
func KFor(ratio float64, d int) int {
	k := int(ratio * float64(d))
	if k < 1 {
		k = 1
	}
	if k > d {
		k = d
	}
	return k
}
