package huffcoded

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

// heavyTailed builds a gradient with many near-zero values, the regime where
// entropy coding pays.
func heavyTailed(seed uint64, d int) []float32 {
	r := fxrand.New(seed)
	g := make([]float32, d)
	for i := range g {
		if r.Bernoulli(0.05) {
			g[i] = r.NormFloat32()
		} else {
			g[i] = r.NormFloat32() * 0.01
		}
	}
	return g
}

func TestWrapperIsTransparent(t *testing.T) {
	// Huffman is lossless: wrapped and unwrapped decodes must be identical.
	inner, err := grace.New("terngrad", grace.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := Wrap(mustNew(t, "terngrad", 9))
	g := heavyTailed(1, 3000)
	info := grace.NewTensorInfo("t", []int{3000})
	pi, err := inner.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := wrapped.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	oi, _ := inner.Decompress(pi, info)
	ow, err := wrapped.Decompress(pw, info)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oi {
		if oi[i] != ow[i] {
			t.Fatalf("wrapper changed decode at %d: %v vs %v", i, oi[i], ow[i])
		}
	}
}

func TestWrapperShrinksSkewedPayloads(t *testing.T) {
	inner := mustNew(t, "terngrad", 2)
	wrapped := Wrap(mustNew(t, "terngrad", 2))
	g := heavyTailed(3, 20000)
	info := grace.NewTensorInfo("t", []int{20000})
	pi, _ := inner.Compress(g, info)
	pw, _ := wrapped.Compress(g, info)
	if pw.WireBytes() >= pi.WireBytes() {
		t.Fatalf("huffman did not shrink: %d -> %d bytes", pi.WireBytes(), pw.WireBytes())
	}
	if pw.WireBytes() > pi.WireBytes()/2 {
		t.Fatalf("expected >2x reduction on a heavy-tailed gradient, got %d -> %d",
			pi.WireBytes(), pw.WireBytes())
	}
}

func TestRegisteredVariants(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{500})
	g := heavyTailed(4, 500)
	for _, name := range []string{"huffterngrad", "huffqsgd"} {
		c, err := grace.New(name, grace.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(out) != 500 {
			t.Fatalf("%s: decoded %d elements", name, len(out))
		}
	}
}

func TestName(t *testing.T) {
	w := Wrap(mustNew(t, "qsgd", 1))
	if w.Name() != "huff+qsgd" {
		t.Fatalf("Name = %q", w.Name())
	}
	if w.Strategy() != grace.Allgather {
		t.Fatal("wrapper must use allgather")
	}
}

func mustNew(t *testing.T, name string, seed uint64) grace.Compressor {
	t.Helper()
	c, err := grace.New(name, grace.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}
