package huffcoded

import (
	"testing"

	_ "repro/internal/compress/qsgd" // registers the inner codec
	"repro/internal/fxrand"
	"repro/internal/grace"
)

func newHuffQSGD(tb testing.TB) *Compressor {
	tb.Helper()
	inner, err := grace.New("qsgd", grace.WithLevels(8), grace.WithSeed(7))
	if err != nil {
		tb.Fatal(err)
	}
	return Wrap(inner)
}

// FuzzDecompress drives the Huffman stage plus the inner quantized decoder
// with arbitrary bytes: the entropy coder's header fields (symbol count,
// payload bit count) are fully attacker-controlled, and hostile values must
// produce an error or a correctly-sized vector — never a panic or a huge
// allocation.
func FuzzDecompress(f *testing.F) {
	info := grace.NewTensorInfo("w", []int{7, 8})
	seedComp := newHuffQSGD(f)
	r := fxrand.New(5)
	g := make([]float32, info.Size())
	for i := range g {
		g[i] = r.NormFloat32()
	}
	if pay, err := seedComp.Compress(g, info); err == nil {
		f.Add(pay.Bytes)
	}
	f.Add([]byte{})
	// Hostile header: enormous symbol count, no payload.
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		c := newHuffQSGD(t)
		dec, err := c.Decompress(&grace.Payload{Bytes: data}, info)
		if err != nil {
			return
		}
		if len(dec) != info.Size() {
			t.Fatalf("decoded %d elements, want %d", len(dec), info.Size())
		}
	})
}
