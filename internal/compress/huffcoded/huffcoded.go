// Package huffcoded implements the entropy-coding extension discussed in the
// paper's related work (Gajjala et al. [81]): quantized gradients have
// highly skewed symbol distributions, so a lossless Huffman stage shrinks
// their payloads further at extra codec cost. The wrapper composes with any
// inner compressor; the registry exposes the two combinations the reference
// work evaluates (TernGrad and QSGD).
package huffcoded

import (
	"fmt"

	// The wrapped codecs must be registered whenever this package is linked.
	_ "repro/internal/compress/qsgd"
	_ "repro/internal/compress/terngrad"
	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "huffterngrad",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "randomized",
		Reference: "Gajjala et al., CoNEXT DistributedML 2020 [81] (extension)",
		New: func(o grace.Options) (grace.Compressor, error) {
			inner, err := grace.New("terngrad", o)
			if err != nil {
				return nil, err
			}
			return Wrap(inner), nil
		},
	})
	grace.Register(grace.Meta{
		Name:      "huffqsgd",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "randomized",
		Reference: "Gajjala et al., CoNEXT DistributedML 2020 [81] (extension)",
		New: func(o grace.Options) (grace.Compressor, error) {
			if o.Levels == 0 {
				o.Levels = 8
			}
			inner, err := grace.New("qsgd", o)
			if err != nil {
				return nil, err
			}
			return Wrap(inner), nil
		},
	})
}

// Compressor wraps an inner compressor with a Huffman lossless stage.
type Compressor struct {
	inner grace.Compressor
}

var _ grace.Compressor = (*Compressor)(nil)

// Wrap decorates inner with Huffman coding of its wire payload.
func Wrap(inner grace.Compressor) *Compressor {
	return &Compressor{inner: inner}
}

// Name returns "huff+<inner>".
func (c *Compressor) Name() string { return "huff+" + c.inner.Name() }

// Strategy returns Allgather: entropy-coded payloads are never summable.
func (c *Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress runs the inner codec then Huffman-codes the payload bytes.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	p, err := c.inner.Compress(g, info)
	if err != nil {
		return nil, err
	}
	if p.Bytes == nil {
		return nil, fmt.Errorf("huffcoded: inner compressor %s produced no byte payload", c.inner.Name())
	}
	return &grace.Payload{Bytes: encode.HuffmanEncode(p.Bytes)}, nil
}

// Decompress reverses the Huffman stage then the inner codec.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	raw, err := encode.HuffmanDecode(p.Bytes)
	if err != nil {
		return nil, fmt.Errorf("huffcoded: %w", err)
	}
	return c.inner.Decompress(&grace.Payload{Bytes: raw}, info)
}
