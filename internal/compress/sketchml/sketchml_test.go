package sketchml

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestSparseInputSendsOnlyNonzeros(t *testing.T) {
	c, err := grace.New("sketchml", grace.Options{Levels: 16})
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float32, 1000)
	g[3], g[500], g[999] = 1.5, -2, 0.25
	info := grace.NewTensorInfo("t", []int{1000})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	// A 3-nonzero sparse payload must be tiny compared to the dense case.
	if p.WireBytes() > 16*4+64 {
		t.Fatalf("sparse payload %d bytes too large", p.WireBytes())
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if g[i] == 0 && v != 0 {
			t.Fatalf("zero position %d decoded to %v", i, v)
		}
		if g[i] != 0 && v == 0 {
			t.Fatalf("nonzero position %d lost", i)
		}
	}
}

func TestMoreBucketsLowerError(t *testing.T) {
	r := fxrand.New(3)
	g := make([]float32, 4000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{4000})
	errFor := func(buckets int) float64 {
		c, err := grace.New("sketchml", grace.Options{Levels: buckets})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		var e float64
		for i := range g {
			d := float64(out[i] - g[i])
			e += d * d
		}
		return e
	}
	if e256, e8 := errFor(256), errFor(8); e256 >= e8 {
		t.Fatalf("256 buckets error %v should be below 8 buckets %v", e256, e8)
	}
}

func TestBucketsPreserveOrdering(t *testing.T) {
	// Quantile-bucket decoding must be monotone: if g[i] < g[j] then
	// decoded[i] <= decoded[j].
	c, _ := grace.New("sketchml", grace.Options{Levels: 32})
	r := fxrand.New(5)
	g := make([]float32, 2000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{2000})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	for i := 0; i < 500; i++ {
		a, b := r.Intn(2000), r.Intn(2000)
		if g[a] < g[b] && out[a] > out[b] {
			t.Fatalf("ordering violated: g[%d]=%v < g[%d]=%v but decoded %v > %v",
				a, g[a], b, g[b], out[a], out[b])
		}
	}
}

func TestRejectsBadBuckets(t *testing.T) {
	if _, err := grace.New("sketchml", grace.Options{Levels: 1}); err == nil {
		t.Fatal("expected error for 1 bucket")
	}
}
