// Package sketchml implements SketchML [22]: the non-zero gradient values
// feed a Greenwald-Khanna quantile sketch [50] that defines non-uniform
// buckets; each value is transmitted as its bucket index (quantization), and
// when the gradient is genuinely sparse only the non-zero positions travel
// (sparsification). Bucket boundaries ride along so the receiver decodes each
// index to its bucket's midpoint.
package sketchml

import (
	"fmt"
	"math"

	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "sketchml",
		Class:     "hybrid",
		Output:    "adaptive",
		Nature:    "randomized",
		DefaultEF: true,
		Reference: "Jiang et al., SIGMOD 2018 [22]",
		New: func(o grace.Options) (grace.Compressor, error) {
			buckets := o.Levels
			if buckets == 0 {
				buckets = 64
			}
			if buckets < 2 || buckets > 1<<16 {
				return nil, fmt.Errorf("sketchml: bucket count %d out of [2, 65536]", buckets)
			}
			return &Compressor{buckets: buckets}, nil
		},
	})
}

// denseFlag marks payloads where all elements were transmitted (no index
// block follows the bucket table).
const (
	denseFlag  = 1
	sparseFlag = 0
)

// Compressor quantizes values into quantile-sketch buckets.
type Compressor struct {
	buckets int
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "sketchml".
func (*Compressor) Name() string { return "sketchml" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress builds the quantile sketch over non-zero values and emits bucket
// boundaries, (optionally) the non-zero index block, and packed bucket ids.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	var nz []int
	sketch := encode.NewQuantileSketch(0.01)
	for i, v := range g {
		if v != 0 {
			nz = append(nz, i)
			sketch.Insert(float64(v))
		}
	}
	boundaries := sketch.Quantiles(c.buckets)
	bits := uint(math.Ceil(math.Log2(float64(c.buckets))))
	if bits == 0 {
		bits = 1
	}

	dense := len(nz) == len(g)
	w := encode.NewWriter(len(g)/2 + 8*(c.buckets+1))
	if dense {
		w.U8(denseFlag)
	} else {
		w.U8(sparseFlag)
	}
	for _, b := range boundaries {
		w.F32(float32(b))
	}
	if !dense {
		w.BytesSlice(encode.EncodeIndices(nz))
	}
	ids := make([]uint32, len(nz))
	for i, j := range nz {
		ids[i] = uint32(encode.BucketOf(boundaries, float64(g[j])))
	}
	w.Uvarint(uint64(len(ids)))
	w.Raw(encode.PackBits(ids, bits))
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress reconstructs each transmitted element as its bucket midpoint.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	flag := r.U8()
	boundaries := make([]float64, c.buckets+1)
	for i := range boundaries {
		boundaries[i] = float64(r.F32())
	}
	var idx []int
	if flag == sparseFlag {
		block := r.BytesSlice()
		if r.Err() != nil {
			return nil, fmt.Errorf("sketchml: %w", r.Err())
		}
		var err error
		idx, err = encode.DecodeIndices(block)
		if err != nil {
			return nil, fmt.Errorf("sketchml: %w", err)
		}
	}
	nIDs := int(r.Uvarint())
	if r.Err() != nil {
		return nil, fmt.Errorf("sketchml: %w", r.Err())
	}
	bits := uint(math.Ceil(math.Log2(float64(c.buckets))))
	if bits == 0 {
		bits = 1
	}
	ids, err := encode.UnpackBits(p.Bytes[len(p.Bytes)-r.Remaining():], bits, nIDs)
	if err != nil {
		return nil, fmt.Errorf("sketchml: %w", err)
	}
	out := make([]float32, info.Size())
	if flag == denseFlag {
		if nIDs != len(out) {
			return nil, fmt.Errorf("sketchml: dense payload has %d ids for %d elements", nIDs, len(out))
		}
		for i, id := range ids {
			out[i] = float32(encode.BucketMid(boundaries, int(id)))
		}
		return out, nil
	}
	if nIDs != len(idx) {
		return nil, fmt.Errorf("sketchml: %d ids for %d indices", nIDs, len(idx))
	}
	for i, j := range idx {
		if j < 0 || j >= len(out) {
			return nil, fmt.Errorf("sketchml: index %d out of %d", j, len(out))
		}
		out[j] = float32(encode.BucketMid(boundaries, int(ids[i])))
	}
	return out, nil
}
