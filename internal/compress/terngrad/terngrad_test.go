package terngrad

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestDecodedValuesAreTernary(t *testing.T) {
	c, _ := grace.New("terngrad", grace.Options{Seed: 1})
	r := fxrand.New(2)
	g := make([]float32, 500)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{500})
	scale := float32(0)
	for _, v := range g {
		if a := abs32(v); a > scale {
			scale = a
		}
	}
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 0 && v != scale && v != -scale {
			t.Fatalf("element %d = %v is not in {0, ±%v}", i, v, scale)
		}
	}
}

func TestSelectionProbabilityTracksMagnitude(t *testing.T) {
	// P(b_i = 1) = |g_i|/‖g‖∞, so an element at half the max magnitude must
	// survive about half the time and the max element always.
	c, _ := grace.New("terngrad", grace.Options{Seed: 3})
	g := []float32{1.0, 0.5, 0.1, 0}
	info := grace.NewTensorInfo("t", []int{4})
	counts := make([]int, 4)
	const trials = 4000
	for trial := 0; trial < trials; trial++ {
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		for i, v := range out {
			if v != 0 {
				counts[i]++
			}
		}
	}
	rates := make([]float64, 4)
	for i, n := range counts {
		rates[i] = float64(n) / trials
	}
	if rates[0] != 1 {
		t.Fatalf("max element survived %v of draws, want 1", rates[0])
	}
	if math.Abs(rates[1]-0.5) > 0.03 {
		t.Fatalf("half-magnitude element survived %v, want ~0.5", rates[1])
	}
	if math.Abs(rates[2]-0.1) > 0.02 {
		t.Fatalf("0.1-magnitude element survived %v, want ~0.1", rates[2])
	}
	if rates[3] != 0 {
		t.Fatalf("zero element survived %v of draws, want 0", rates[3])
	}
}

func TestTwoBitsPerElement(t *testing.T) {
	g := make([]float32, 8000)
	g[0] = 1
	info := grace.NewTensorInfo("t", []int{8000})
	c, _ := grace.New("terngrad", grace.Options{Seed: 1})
	p, _ := c.Compress(g, info)
	want := 4 + 8000/4 // norm + 2 bits/elem
	if p.WireBytes() != want {
		t.Fatalf("wire %d bytes, want %d", p.WireBytes(), want)
	}
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
