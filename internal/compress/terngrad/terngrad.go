// Package terngrad implements TernGrad [14]: gradients quantize to
// {−1, 0, +1} scaled by the infinity norm, with each element surviving
// (b_i = 1) with probability |g[i]|/‖g‖∞ — an unbiased randomized operator.
// Ternary symbols are packed 2 bits per element.
package terngrad

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "terngrad",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "randomized",
		Reference: "Wen et al., NeurIPS 2017 [14]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return &Compressor{rng: fxrand.New(o.Seed)}, nil
		},
	})
}

// Ternary symbol values.
const (
	symZero = 0
	symPos  = 1
	symNeg  = 2
)

// Compressor quantizes to scaled ternary values.
type Compressor struct {
	rng *fxrand.RNG
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "terngrad".
func (*Compressor) Name() string { return "terngrad" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress emits ‖g‖∞ plus 2-bit ternary symbols.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	scale := tensor.NormInfF32(g)
	symbols := make([]uint32, len(g))
	if scale > 0 {
		for i, v := range g {
			a := float64(v)
			if a < 0 {
				a = -a
			}
			if c.rng.Float64() < a/scale {
				if v >= 0 {
					symbols[i] = symPos
				} else {
					symbols[i] = symNeg
				}
			}
		}
	}
	w := encode.NewWriter(4 + encode.PackedLen(len(g), 2))
	w.F32(float32(scale))
	w.Raw(encode.PackBits(symbols, 2))
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress reconstructs ±‖g‖∞ or 0.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	scale := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("terngrad: %w", r.Err())
	}
	d := info.Size()
	symbols, err := encode.UnpackBits(p.Bytes[4:], 2, d)
	if err != nil {
		return nil, fmt.Errorf("terngrad: %w", err)
	}
	out := make([]float32, d)
	for i, sym := range symbols {
		switch sym {
		case symPos:
			out[i] = scale
		case symNeg:
			out[i] = -scale
		case symZero:
			// stays 0
		default:
			return nil, fmt.Errorf("terngrad: invalid symbol %d", sym)
		}
	}
	return out, nil
}
