// Package qsgd implements QSGD [9]: codebook quantization with randomized
// rounding (Figure 3 of the paper). Each element is mapped to one of s+1
// levels of |g[i]|/‖g‖₂, choosing between the two bracketing levels with
// probability proportional to proximity, which makes the operator unbiased.
// Symbols (sign + level) are bit-packed, so an s=4 configuration really costs
// 3 bits per element on the wire.
package qsgd

import (
	"fmt"
	"math"

	"repro/internal/encode"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "qsgd",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "randomized",
		Reference: "Alistarh et al., NeurIPS 2017 [9]",
		New: func(o grace.Options) (grace.Compressor, error) {
			levels := o.Levels
			if levels == 0 {
				levels = 64
			}
			return New(levels, o.Seed)
		},
	})
}

// Compressor quantizes to s+1 levels with randomized rounding.
type Compressor struct {
	s         int
	levelBits uint
	rng       *fxrand.RNG
}

var _ grace.Compressor = (*Compressor)(nil)

// New constructs a QSGD compressor with s levels.
func New(s int, seed uint64) (*Compressor, error) {
	if s < 1 {
		return nil, fmt.Errorf("qsgd: levels %d must be >= 1", s)
	}
	bits := uint(math.Ceil(math.Log2(float64(s + 1))))
	if bits == 0 {
		bits = 1
	}
	return &Compressor{s: s, levelBits: bits, rng: fxrand.New(seed)}, nil
}

// Name returns "qsgd".
func (*Compressor) Name() string { return "qsgd" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress emits ‖g‖₂ plus bit-packed (sign, level) symbols.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	norm := tensor.Norm2F32(g)
	symbols := make([]uint32, len(g))
	if norm > 0 {
		sf := float64(c.s)
		for i, v := range g {
			r := math.Abs(float64(v)) / norm * sf
			l := math.Floor(r)
			if c.rng.Float64() < r-l {
				l++
			}
			if l > sf {
				l = sf
			}
			sym := uint32(l)
			if v < 0 {
				sym |= 1 << c.levelBits
			}
			symbols[i] = sym
		}
	}
	w := encode.NewWriter(4 + encode.PackedLen(len(g), c.levelBits+1))
	w.F32(float32(norm))
	w.Raw(encode.PackBits(symbols, c.levelBits+1))
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// CodecState exports the randomized-rounding RNG stream position so a
// restored run draws the identical continuation of rounding decisions.
func (c *Compressor) CodecState() grace.CodecState {
	st := c.rng.State()
	return grace.CodecState{RNG: &st}
}

// LoadCodecState rewinds the rounding RNG to a captured stream position.
func (c *Compressor) LoadCodecState(st grace.CodecState) error {
	if st.RNG == nil {
		return fmt.Errorf("qsgd: codec state has no RNG stream")
	}
	c.rng.Restore(*st.RNG)
	return nil
}

var _ grace.Stateful = (*Compressor)(nil)

// Decompress reconstructs sign·‖g‖₂·level/s.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	norm := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("qsgd: %w", r.Err())
	}
	d := info.Size()
	symbols, err := encode.UnpackBits(p.Bytes[4:], c.levelBits+1, d)
	if err != nil {
		return nil, fmt.Errorf("qsgd: %w", err)
	}
	out := make([]float32, d)
	levelMask := uint32(1)<<c.levelBits - 1
	for i, sym := range symbols {
		v := norm * float32(sym&levelMask) / float32(c.s)
		if sym>>c.levelBits != 0 {
			v = -v
		}
		out[i] = v
	}
	return out, nil
}
