package qsgd

import (
	"math"
	"testing"

	"repro/internal/grace"
	"repro/internal/tensor"
)

func TestCodewordsAreLevelMultiples(t *testing.T) {
	// Every decoded value must be sign·‖g‖₂·l/s for integer l in [0, s].
	c, err := New(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{-3.39, 1.78, 10.87, -2.22, 10.9, 1.12, -32.1, 12.5} // Figure 3
	info := grace.NewTensorInfo("t", []int{len(g)})
	norm := tensor.Norm2F32(g)
	for trial := 0; trial < 50; trial++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			l := math.Abs(float64(v)) / norm * 4
			if math.Abs(l-math.Round(l)) > 1e-3 {
				t.Fatalf("value %v at %d is not a codeword multiple (l=%v)", v, i, l)
			}
			if l > 4+1e-3 {
				t.Fatalf("level %v exceeds s", l)
			}
		}
	}
}

func TestLevelBracketsInput(t *testing.T) {
	// Randomized rounding must pick one of the two levels bracketing
	// |g[i]|/‖g‖₂·s (Figure 3's two-outcome structure).
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{-3.39, 1.78, 10.87, -2.22, 10.9, 1.12, -32.1, 12.5}
	info := grace.NewTensorInfo("t", []int{len(g)})
	norm := tensor.Norm2F32(g)
	for trial := 0; trial < 200; trial++ {
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		for i, v := range out {
			r := math.Abs(float64(g[i])) / norm * 4
			l := math.Abs(float64(v)) / norm * 4
			lo, hi := math.Floor(r), math.Ceil(r)
			if math.Abs(l-lo) > 1e-3 && math.Abs(l-hi) > 1e-3 {
				t.Fatalf("element %d: level %v not in {%v, %v}", i, l, lo, hi)
			}
		}
	}
}

func TestHigherLevelsLowerError(t *testing.T) {
	info := grace.NewTensorInfo("t", []int{1000})
	g := make([]float32, 1000)
	for i := range g {
		g[i] = float32(i%17)*0.01 - 0.08
	}
	errFor := func(s int) float64 {
		c, err := New(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for trial := 0; trial < 20; trial++ {
			p, _ := c.Compress(g, info)
			out, _ := c.Decompress(p, info)
			for i := range g {
				d := float64(out[i] - g[i])
				total += d * d
			}
		}
		return total
	}
	if e4, e64 := errFor(4), errFor(64); e64 >= e4 {
		t.Fatalf("s=64 error %v should be below s=4 error %v", e64, e4)
	}
}

func TestBitWidthMatchesLevels(t *testing.T) {
	// s=4 -> 5 codewords -> 3 level bits + 1 sign: the paper's Figure 3
	// "represented by 3-bits" refers to the level field.
	info := grace.NewTensorInfo("t", []int{8000})
	g := make([]float32, 8000)
	for i := range g {
		g[i] = float32(i) * 1e-4
	}
	c4, _ := New(4, 1)
	p4, _ := c4.Compress(g, info)
	want4 := 4 + (8000*4+7)/8 // norm + 4 bits/elem (3 level + 1 sign)
	if p4.WireBytes() != want4 {
		t.Fatalf("s=4 wire %d bytes, want %d", p4.WireBytes(), want4)
	}
	c64, _ := New(64, 1)
	p64, _ := c64.Compress(g, info)
	want64 := 4 + 8000 // norm + 8 bits/elem (7 level + 1 sign)
	if p64.WireBytes() != want64 {
		t.Fatalf("s=64 wire %d bytes, want %d", p64.WireBytes(), want64)
	}
}

func TestRejectsBadLevels(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("expected error for s=0")
	}
}
