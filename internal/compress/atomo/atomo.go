// Package atomo implements spectral ATOMO [27] (extension beyond the
// paper's 16 implemented methods; Table I row "ATOMO"): the gradient matrix
// is decomposed by truncated SVD, and each singular triple (σ, u, v) is
// transmitted with probability p_i = min(1, s·σ_i/Σσ) under sparsity budget
// s, scaled by 1/p_i so the estimator is unbiased over the retained
// spectrum. Remark 1 of the paper notes QSGD and TernGrad are recoverable
// from ATOMO under the standard basis; this package uses the singular-vector
// basis (spectral ATOMO).
//
// The SVD is a power iteration with deflation truncated at maxTriples,
// which bounds codec cost on large tensors; the dropped tail is the
// deterministic truncation error (documented in EXPERIMENTS.md).
package atomo

import (
	"fmt"
	"math"

	"repro/internal/encode"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "atomo",
		Class:     "lowrank",
		Output:    "sparsity budget",
		Nature:    "randomized",
		Reference: "Wang et al., NeurIPS 2018 [27] (extension)",
		New: func(o grace.Options) (grace.Compressor, error) {
			budget := o.Rank
			if budget == 0 {
				budget = 3
			}
			if budget < 1 {
				return nil, fmt.Errorf("atomo: sparsity budget %d must be >= 1", budget)
			}
			return &Compressor{budget: budget, rng: fxrand.New(o.Seed)}, nil
		},
	})
}

// maxTriples caps the power-iteration SVD depth.
const maxTriples = 8

// powerIters is the number of power-iteration refinement steps per triple.
const powerIters = 6

// Compressor transmits sampled singular triples.
type Compressor struct {
	budget int
	rng    *fxrand.RNG
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "atomo".
func (*Compressor) Name() string { return "atomo" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress factorizes, samples triples by spectral weight, and serializes
// [count | per triple: scale, u, v]. Vectors and tensors too small to profit
// fall back to a dense payload (flagged by count = 0xffff).
const denseFlag = 0xffff

// Compress implements grace.Compressor.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	rows, cols := info.Rows, info.Cols
	k := maxTriples
	if rows < k {
		k = rows
	}
	if cols < k {
		k = cols
	}
	// Dense fallback when factorization cannot pay for itself.
	if k < 1 || c.budget*(rows+cols+1) >= rows*cols {
		w := encode.NewWriter(4 + 4*len(g))
		w.U16(denseFlag)
		for _, v := range g {
			w.F32(v)
		}
		return &grace.Payload{Bytes: w.Bytes()}, nil
	}

	m := tensor.FromSlice(append([]float32(nil), g...), rows, cols)
	sigmas, us, vs := truncatedSVD(m, k)

	var sum float64
	for _, s := range sigmas {
		sum += s
	}
	w := encode.NewWriter(64)
	var chosen []int
	if sum > 0 {
		for i, s := range sigmas {
			p := float64(c.budget) * s / sum
			if p > 1 {
				p = 1
			}
			if s > 0 && c.rng.Float64() < p {
				chosen = append(chosen, i)
				sigmas[i] = s / p // fold 1/p into the scale for unbiasedness
			}
		}
	}
	w.U16(uint16(len(chosen)))
	for _, i := range chosen {
		w.F32(float32(sigmas[i]))
		for _, x := range us[i] {
			w.F32(x)
		}
		for _, x := range vs[i] {
			w.F32(x)
		}
	}
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress sums the transmitted rank-1 atoms (or reads the dense
// fallback).
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	count := r.U16()
	if r.Err() != nil {
		return nil, fmt.Errorf("atomo: %w", r.Err())
	}
	d := info.Size()
	out := make([]float32, d)
	if count == denseFlag {
		for i := range out {
			out[i] = r.F32()
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("atomo: %w", r.Err())
		}
		return out, nil
	}
	rows, cols := info.Rows, info.Cols
	for t := 0; t < int(count); t++ {
		scale := r.F32()
		u := make([]float32, rows)
		for i := range u {
			u[i] = r.F32()
		}
		v := make([]float32, cols)
		for i := range v {
			v[i] = r.F32()
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("atomo: truncated payload: %w", r.Err())
		}
		for i := 0; i < rows; i++ {
			ui := scale * u[i]
			if ui == 0 {
				continue
			}
			row := out[i*cols : (i+1)*cols]
			for j, vj := range v {
				row[j] += ui * vj
			}
		}
	}
	return out, nil
}

// truncatedSVD computes up to k leading singular triples of m by power
// iteration with deflation. Singular vectors are unit length; sigmas are
// non-negative and non-increasing up to iteration tolerance.
func truncatedSVD(m *tensor.Dense, k int) (sigmas []float64, us, vs [][]float32) {
	rows, cols := m.Dim(0), m.Dim(1)
	work := m.Clone()
	// Deterministic seed: factorization must agree across replicas only in
	// distribution, so a fixed stream is fine and keeps tests reproducible.
	rng := fxrand.New(0x5eed)
	for t := 0; t < k; t++ {
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		normalize(v)
		var sigma float64
		u := make([]float64, rows)
		for it := 0; it < powerIters; it++ {
			// u = Mv
			for i := 0; i < rows; i++ {
				var s float64
				row := work.Data()[i*cols : (i+1)*cols]
				for j, vj := range v {
					s += float64(row[j]) * vj
				}
				u[i] = s
			}
			sigma = normalize(u)
			// v = Mᵀu
			for j := range v {
				v[j] = 0
			}
			for i := 0; i < rows; i++ {
				row := work.Data()[i*cols : (i+1)*cols]
				ui := u[i]
				for j := range v {
					v[j] += float64(row[j]) * ui
				}
			}
			sigma = normalize(v)
		}
		if sigma <= 1e-12 {
			break
		}
		uf := make([]float32, rows)
		vf := make([]float32, cols)
		for i := range u {
			uf[i] = float32(u[i])
		}
		for i := range v {
			vf[i] = float32(v[i])
		}
		sigmas = append(sigmas, sigma)
		us = append(us, uf)
		vs = append(vs, vf)
		// Deflate: work -= σ·u·vᵀ.
		for i := 0; i < rows; i++ {
			row := work.Data()[i*cols : (i+1)*cols]
			ui := sigma * u[i]
			for j := range v {
				row[j] -= float32(ui * v[j])
			}
		}
	}
	return sigmas, us, vs
}

// normalize scales x to unit length, returning the original norm.
func normalize(x []float64) float64 {
	var n float64
	for _, v := range x {
		n += v * v
	}
	n = math.Sqrt(n)
	if n > 0 {
		for i := range x {
			x[i] /= n
		}
	}
	return n
}
