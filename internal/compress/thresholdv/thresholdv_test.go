package thresholdv

import (
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestOnlyAboveThresholdTransmitted(t *testing.T) {
	c, err := grace.New("thresholdv", grace.Options{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g := []float32{0.4, 0.6, -0.7, -0.3, 0.51}
	info := grace.NewTensorInfo("t", []int{5})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	want := []float32{0, 0.6, -0.7, 0, 0.51}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("decode %v want %v", out, want)
		}
	}
}

func TestOutputSizeIsAdaptive(t *testing.T) {
	// Unlike Top-k, the payload grows with the number of large elements —
	// the "adaptive ‖g̃‖0" property of Table I.
	c, _ := grace.New("thresholdv", grace.Options{Threshold: 0.5})
	info := grace.NewTensorInfo("t", []int{1000})
	r := fxrand.New(1)
	calm := make([]float32, 1000)
	spiky := make([]float32, 1000)
	for i := range calm {
		calm[i] = r.NormFloat32() * 0.1  // almost nothing crosses 0.5
		spiky[i] = r.NormFloat32() * 2.0 // most cross 0.5
	}
	pc, _ := c.Compress(calm, info)
	ps, _ := c.Compress(spiky, info)
	if pc.WireBytes() >= ps.WireBytes()/10 {
		t.Fatalf("calm payload %d not ≪ spiky %d", pc.WireBytes(), ps.WireBytes())
	}
}

func TestNeverEmptyPayload(t *testing.T) {
	// Even when nothing crosses the threshold, the largest element is sent
	// so training never silently stalls.
	c, _ := grace.New("thresholdv", grace.Options{Threshold: 100})
	g := []float32{0.1, -0.4, 0.2}
	info := grace.NewTensorInfo("t", []int{3})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	if out[1] != -0.4 {
		t.Fatalf("largest element not transmitted: %v", out)
	}
}

func TestRejectsNegativeThreshold(t *testing.T) {
	if _, err := grace.New("thresholdv", grace.Options{Threshold: -1}); err == nil {
		t.Fatal("expected error")
	}
}
