// Package thresholdv implements Threshold-v sparsification [36]: transmit
// every gradient element whose absolute value exceeds a fixed threshold. The
// paper notes the appropriate threshold is model-specific and hard to pick;
// the adaptive output size is what distinguishes it from Top-k.
package thresholdv

import (
	"fmt"

	"repro/internal/compress/cbase"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "thresholdv",
		Class:     "sparsification",
		Output:    "adaptive",
		Nature:    "deterministic",
		DefaultEF: true,
		Reference: "Dutta et al., AAAI 2020 [36]",
		New: func(o grace.Options) (grace.Compressor, error) {
			th := o.Threshold
			if th == 0 {
				th = 0.01
			}
			if th < 0 {
				return nil, fmt.Errorf("thresholdv: negative threshold %v", th)
			}
			return &Compressor{threshold: float32(th)}, nil
		},
	})
}

// Compressor transmits elements with |g[i]| > threshold.
type Compressor struct {
	threshold float32
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "thresholdv".
func (*Compressor) Name() string { return "thresholdv" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress selects all elements exceeding the threshold. At least one
// element (the largest) is always sent so the payload is never empty.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	var idx []int
	var vals []float32
	best := 0
	for i, v := range g {
		a := v
		if a < 0 {
			a = -a
		}
		if a > c.threshold {
			idx = append(idx, i)
			vals = append(vals, v)
		}
		if abs32(g[i]) > abs32(g[best]) {
			best = i
		}
	}
	if len(idx) == 0 && len(g) > 0 {
		idx = []int{best}
		vals = []float32{g[best]}
	}
	return &grace.Payload{Bytes: cbase.EncodeSparse(idx, vals)}, nil
}

// Decompress restores the dense gradient.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return cbase.DecodeSparse(p.Bytes, info.Size())
}

func abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
