package randomk

import (
	"math"
	"testing"

	"repro/internal/grace"
)

func TestSelectionIsUniform(t *testing.T) {
	// Over many draws every coordinate must be selected at close to the
	// target rate.
	c := New(0.1, 7)
	const d = 200
	g := make([]float32, d)
	for i := range g {
		g[i] = 1
	}
	info := grace.NewTensorInfo("t", []int{d})
	counts := make([]int, d)
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := c.Decompress(p, info)
		for i, v := range out {
			if v != 0 {
				counts[i]++
			}
		}
	}
	for i, n := range counts {
		rate := float64(n) / trials
		if math.Abs(rate-0.1) > 0.04 {
			t.Fatalf("coordinate %d selected at rate %v, want ~0.1", i, rate)
		}
	}
}

func TestUnbiasedVariant(t *testing.T) {
	// With the d/k rescaling, E[Q(x)] = x.
	c := New(0.25, 11)
	c.Unbiased = true
	g := []float32{1, -2, 0.5, 4, -1, 2, 0.25, -3}
	info := grace.NewTensorInfo("t", []int{8})
	mean := make([]float64, 8)
	const trials = 8000
	for trial := 0; trial < trials; trial++ {
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		for i, v := range out {
			mean[i] += float64(v) / trials
		}
	}
	for i := range g {
		tol := 0.06*math.Abs(float64(g[i])) + 0.02
		if math.Abs(mean[i]-float64(g[i])) > tol {
			t.Fatalf("unbiased variant: E[Q(x)][%d] = %v, want %v", i, mean[i], g[i])
		}
	}
}

func TestWorkersSelectDifferentIndices(t *testing.T) {
	// Different seeds (ranks) must select mostly non-overlapping sets —
	// that is why the paper pairs Random-k with allgather rather than
	// allreduce.
	a := New(0.05, 1)
	b := New(0.05, 2)
	const d = 1000
	g := make([]float32, d)
	for i := range g {
		g[i] = 1
	}
	info := grace.NewTensorInfo("t", []int{d})
	pa, _ := a.Compress(g, info)
	pb, _ := b.Compress(g, info)
	oa, _ := a.Decompress(pa, info)
	ob, _ := b.Decompress(pb, info)
	overlap := 0
	for i := range oa {
		if oa[i] != 0 && ob[i] != 0 {
			overlap++
		}
	}
	if overlap > 15 { // expected overlap 50*0.05 = 2.5
		t.Fatalf("workers overlap on %d indices", overlap)
	}
}
