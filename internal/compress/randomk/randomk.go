// Package randomk implements Random-k sparsification [17]: transmit k
// uniformly random gradient elements. Biased by design (the unbiased d/k
// rescaling is available as an option); the paper runs it with error
// feedback on.
package randomk

import (
	"fmt"

	"repro/internal/compress/cbase"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "randomk",
		Class:     "sparsification",
		Output:    "k",
		Nature:    "randomized",
		DefaultEF: true,
		Reference: "Stich et al., NeurIPS 2018 [17]",
		New: func(o grace.Options) (grace.Compressor, error) {
			ratio := o.Ratio
			if ratio == 0 {
				ratio = 0.01
			}
			if ratio < 0 || ratio > 1 {
				return nil, fmt.Errorf("randomk: ratio %v out of (0,1]", ratio)
			}
			return &Compressor{ratio: ratio, rng: fxrand.New(o.Seed)}, nil
		},
	})
}

// Compressor selects k uniformly random elements.
type Compressor struct {
	ratio float64
	rng   *fxrand.RNG
	// Unbiased applies the d/k rescaling that makes the operator unbiased.
	Unbiased bool
}

var _ grace.Compressor = (*Compressor)(nil)

// New constructs a Random-k compressor directly (examples/tests).
func New(ratio float64, seed uint64) *Compressor {
	return &Compressor{ratio: ratio, rng: fxrand.New(seed)}
}

// Name returns "randomk".
func (*Compressor) Name() string { return "randomk" }

// Strategy returns Allgather: workers select non-overlapping index sets so
// payloads are not summable.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress samples k random positions and serializes them.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	k := cbase.KFor(c.ratio, len(g))
	idx := c.rng.Sample(len(g), k)
	vals := make([]float32, len(idx))
	scale := float32(1)
	if c.Unbiased {
		scale = float32(float64(len(g)) / float64(k))
	}
	for i, j := range idx {
		vals[i] = g[j] * scale
	}
	return &grace.Payload{Bytes: cbase.EncodeSparse(idx, vals)}, nil
}

// Decompress restores the dense gradient with zeros elsewhere.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return cbase.DecodeSparse(p.Bytes, info.Size())
}

// DecompressInto restores the dense gradient into dst without allocating
// (grace.DecompressorInto).
func (c *Compressor) DecompressInto(p *grace.Payload, info grace.TensorInfo, dst []float32) error {
	return cbase.DecodeSparseInto(p.Bytes, dst)
}

var _ grace.DecompressorInto = (*Compressor)(nil)
