package efsignsgd

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func TestScaleIsMeanAbs(t *testing.T) {
	c, _ := grace.New("efsignsgd", grace.Options{})
	g := []float32{1, -3, 2, -2}
	info := grace.NewTensorInfo("t", []int{4})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(2) // (1+3+2+2)/4
	expect := []float32{want, -want, want, -want}
	for i := range expect {
		if math.Abs(float64(out[i]-expect[i])) > 1e-6 {
			t.Fatalf("decode %v want %v", out, expect)
		}
	}
}

func TestContractionProperty(t *testing.T) {
	// The scaled-sign operator is a contraction: ‖x − Q(x)‖ < ‖x‖ for any
	// non-zero x (which is why it composes with EF where raw SignSGD does
	// not; Karimireddy et al.).
	c, _ := grace.New("efsignsgd", grace.Options{})
	r := fxrand.New(1)
	info := grace.NewTensorInfo("t", []int{200})
	for trial := 0; trial < 50; trial++ {
		g := make([]float32, 200)
		for i := range g {
			g[i] = r.NormFloat32()
		}
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		res := make([]float32, len(g))
		for i := range g {
			res[i] = g[i] - out[i]
		}
		if tensor.Norm2F32(res) >= tensor.Norm2F32(g) {
			t.Fatalf("not a contraction: residual %v >= input %v",
				tensor.Norm2F32(res), tensor.Norm2F32(g))
		}
	}
}

func TestWireSizeIsOneBitPlusScale(t *testing.T) {
	c, _ := grace.New("efsignsgd", grace.Options{})
	g := make([]float32, 8000)
	info := grace.NewTensorInfo("t", []int{8000})
	p, _ := c.Compress(g, info)
	if p.WireBytes() != 4+1000 {
		t.Fatalf("wire %d bytes, want 1004", p.WireBytes())
	}
}
