// Package efsignsgd implements EFsignSGD [12]: sign compression scaled by
// the mean absolute value (‖x‖₁/d), designed to be combined with error
// feedback, which fixes SignSGD's convergence issues. The scaling makes the
// residual x − Q(x) contractive, which plain SignSGD's unit-magnitude decode
// is not.
//
// The method *is* error feedback (the paper's Table I marks EF as N/A); run
// it with the framework memory on, which the Meta declares via DefaultEF.
package efsignsgd

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "efsignsgd",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		DefaultEF: true,
		Reference: "Karimireddy et al., ICML 2019 [12]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return Compressor{}, nil
		},
	})
}

// Compressor transmits sign bits plus a single scale.
type Compressor struct{}

var _ grace.Compressor = Compressor{}

// Name returns "efsignsgd".
func (Compressor) Name() string { return "efsignsgd" }

// Strategy returns Allgather.
func (Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress emits (‖x‖₁/d) · sign(x): one float32 scale plus packed signs.
func (Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	scale := float32(0)
	if len(g) > 0 {
		scale = float32(tensor.Norm1F32(g) / float64(len(g)))
	}
	w := encode.NewWriter(4 + len(g)/8 + 1)
	w.F32(scale)
	w.Raw(encode.PackSigns(g))
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress expands to scale·sign.
func (Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	scale := r.F32()
	if r.Err() != nil {
		return nil, fmt.Errorf("efsignsgd: %w", r.Err())
	}
	out, err := encode.UnpackSigns(p.Bytes[4:], info.Size())
	if err != nil {
		return nil, fmt.Errorf("efsignsgd: %w", err)
	}
	for i := range out {
		out[i] *= scale
	}
	return out, nil
}
