package signsgd

import (
	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "signsgdmv",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		Reference: "Bernstein et al., ICLR 2019 [30] (majority vote)",
		New: func(o grace.Options) (grace.Compressor, error) {
			return MajorityVote{}, nil
		},
	})
}

// MajorityVote is SignSGD with majority-vote aggregation [30]: workers
// exchange sign bits and the global update is the element-wise majority —
// the sign of the sum of signs — instead of the mean. It demonstrates the
// framework's custom Agg hook (§IV-B: "support for custom gradient
// aggregation functions").
type MajorityVote struct {
	Compressor
}

var (
	_ grace.Compressor = MajorityVote{}
	_ grace.Aggregator = MajorityVote{}
)

// Name returns "signsgdmv".
func (MajorityVote) Name() string { return "signsgdmv" }

// Aggregate takes the element-wise majority of the workers' signs. Ties
// (even worker counts) resolve to +1, consistent with sign(0) = +1.
func (MajorityVote) Aggregate(decoded [][]float32, info grace.TensorInfo) []float32 {
	out := make([]float32, info.Size())
	for _, dec := range decoded {
		for i, v := range dec {
			out[i] += v
		}
	}
	for i, v := range out {
		if v >= 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out
}

// Compress packs one sign bit per element (inherited wire format).
func (m MajorityVote) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	return &grace.Payload{Bytes: encode.PackSigns(g)}, nil
}
