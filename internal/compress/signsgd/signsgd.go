// Package signsgd implements SignSGD [10]: transmit only the sign of each
// gradient element, 1 bit per element. Decoding yields ±1; aggregation by
// mean across workers approximates the majority vote of SIGNUM's follow-up
// work. The paper runs it without error feedback (EF harms it; EFsignSGD is
// the fixed variant).
package signsgd

import (
	"fmt"

	"repro/internal/encode"
	"repro/internal/grace"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "signsgd",
		Class:     "quantization",
		Output:    "‖g‖0",
		Nature:    "deterministic",
		Reference: "Bernstein et al., ICML 2018 [10]",
		New: func(o grace.Options) (grace.Compressor, error) {
			return Compressor{}, nil
		},
	})
}

// Compressor transmits sign bits.
type Compressor struct{}

var _ grace.Compressor = Compressor{}

// Name returns "signsgd".
func (Compressor) Name() string { return "signsgd" }

// Strategy returns Allgather (bitmasks are not float-summable).
func (Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress packs one sign bit per element.
func (Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	return &grace.Payload{Bytes: encode.PackSigns(g)}, nil
}

// Decompress expands sign bits to ±1.
func (Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	out, err := encode.UnpackSigns(p.Bytes, info.Size())
	if err != nil {
		return nil, fmt.Errorf("signsgd: %w", err)
	}
	return out, nil
}
