package threelc

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/grace"
)

func TestDecodedValuesAreScaledTernary(t *testing.T) {
	c, _ := grace.New("threelc", grace.Options{})
	r := fxrand.New(1)
	g := make([]float32, 200)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{200})
	p, err := c.Compress(g, info)
	if err != nil {
		t.Fatal(err)
	}
	out, err := c.Decompress(p, info)
	if err != nil {
		t.Fatal(err)
	}
	var m float32
	for _, v := range out {
		if a := float32(math.Abs(float64(v))); a > m {
			m = a
		}
	}
	for i, v := range out {
		if v != 0 && v != m && v != -m {
			t.Fatalf("element %d = %v not in {0, ±%v}", i, v, m)
		}
	}
}

func TestSparsityMultiplierIncreasesZeros(t *testing.T) {
	r := fxrand.New(2)
	g := make([]float32, 2000)
	for i := range g {
		g[i] = r.NormFloat32()
	}
	info := grace.NewTensorInfo("t", []int{2000})
	zeros := func(s float64) int {
		c, err := grace.New("threelc", grace.Options{Threshold: s})
		if err != nil {
			t.Fatal(err)
		}
		p, _ := c.Compress(g, info)
		out, _ := c.Decompress(p, info)
		n := 0
		for _, v := range out {
			if v == 0 {
				n++
			}
		}
		return n
	}
	if z19, z10 := zeros(1.9), zeros(1.0); z19 <= z10 {
		t.Fatalf("s=1.9 zeros (%d) should exceed s=1.0 zeros (%d)", z19, z10)
	}
}

func TestErrorCompensationAccumulates(t *testing.T) {
	// A gradient too small to quantize on its own must eventually transmit
	// through the built-in memory.
	c, _ := grace.New("threelc", grace.Options{})
	info := grace.NewTensorInfo("t", []int{2})
	g := []float32{1.0, 0.2} // second element below the rounding threshold
	sent := false
	for i := 0; i < 10 && !sent; i++ {
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := c.Decompress(p, info)
		if out[1] != 0 {
			sent = true
		}
	}
	if !sent {
		t.Fatal("small element never transmitted despite error compensation")
	}
}

func TestRejectsBadMultiplier(t *testing.T) {
	if _, err := grace.New("threelc", grace.Options{Threshold: 2.5}); err == nil {
		t.Fatal("expected error for s >= 2")
	}
	if _, err := grace.New("threelc", grace.Options{Threshold: 0.5}); err == nil {
		t.Fatal("expected error for s < 1")
	}
}

func TestPartialGroupRoundTrip(t *testing.T) {
	// Lengths not divisible by 5 exercise the final partial base-3 group.
	for _, d := range []int{1, 4, 5, 6, 9, 11} {
		c, _ := grace.New("threelc", grace.Options{})
		g := make([]float32, d)
		for i := range g {
			g[i] = float32(i%3) - 1
		}
		info := grace.NewTensorInfo("t", []int{d})
		p, err := c.Compress(g, info)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		out, err := c.Decompress(p, info)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if len(out) != d {
			t.Fatalf("d=%d: decoded %d elements", d, len(out))
		}
	}
}
