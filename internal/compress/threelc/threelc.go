// Package threelc implements 3LC [23]: ternary quantization with a sparsity
// multiplier s ∈ [1, 2) — elements quantize to {−1, 0, +1}·M with
// M = s·‖g‖∞, so larger s zeroes more elements — followed by an aggressive
// lossless stage (five ternary digits packed per byte, then zero run-length
// encoding). Error compensation is built in, per the original design.
package threelc

import (
	"fmt"
	"math"

	"repro/internal/encode"
	"repro/internal/grace"
	"repro/internal/tensor"
)

func init() {
	grace.Register(grace.Meta{
		Name:      "threelc",
		Class:     "hybrid",
		Output:    "adaptive",
		Nature:    "deterministic",
		DefaultEF: true,
		BuiltinEF: true,
		Reference: "Lim et al., MLSys 2019 [23]",
		New: func(o grace.Options) (grace.Compressor, error) {
			s := o.Threshold
			if s == 0 {
				s = 1.0
			}
			if s < 1 || s >= 2 {
				return nil, fmt.Errorf("threelc: sparsity multiplier %v out of [1,2)", s)
			}
			return &Compressor{s: s, mem: map[string][]float32{}}, nil
		},
	})
}

// base3PerByte is how many ternary digits fit a byte (3^5 = 243 <= 255).
const base3PerByte = 5

// Compressor carries the built-in error-compensation memory.
type Compressor struct {
	s   float64
	mem map[string][]float32
}

var _ grace.Compressor = (*Compressor)(nil)

// Name returns "threelc".
func (*Compressor) Name() string { return "threelc" }

// Strategy returns Allgather.
func (*Compressor) Strategy() grace.Strategy { return grace.Allgather }

// Compress quantizes g+m to scaled ternary, packs 5 digits per byte, ZRLE
// encodes the byte stream, and folds the quantization error back into m.
func (c *Compressor) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	d := len(g)
	m := c.mem[info.Name]
	if m == nil {
		m = make([]float32, d)
		c.mem[info.Name] = m
	}
	x := make([]float32, d)
	for i := range x {
		x[i] = g[i] + m[i]
	}
	// M = s·‖x‖∞: a larger sparsity multiplier shrinks (1/M)·x, so more
	// elements round to zero.
	M := float32(tensor.NormInfF32(x) * c.s)
	trits := make([]byte, d) // 0, 1, 2 encoding -1, 0, +1 offset by 1
	if M > 0 {
		for i, v := range x {
			q := math.Round(float64(v / M))
			switch {
			case q <= -1:
				trits[i] = 0
				m[i] = v + M
			case q >= 1:
				trits[i] = 2
				m[i] = v - M
			default:
				trits[i] = 1
				m[i] = v
			}
		}
	} else {
		for i := range trits {
			trits[i] = 1
			m[i] = x[i]
		}
	}
	// Base-3^5 packing. The digit value 1 ("zero") yields byte value
	// 1+3+9+27+81 = 121 for all-zero groups, so remap so that the all-zero
	// group becomes byte 0 and ZRLE can eat it: subtract 121 mod 256 is not
	// order-preserving, so instead pack digits with "zero" as 0 by mapping
	// {-1,0,+1} -> {1,0,2}.
	packed := make([]byte, (d+base3PerByte-1)/base3PerByte)
	for i, t := range trits {
		digit := byte(0)
		switch t {
		case 0:
			digit = 1
		case 1:
			digit = 0
		case 2:
			digit = 2
		}
		packed[i/base3PerByte] = packed[i/base3PerByte]*3 + digit
	}
	body := encode.ZRLECompress(packed)
	w := encode.NewWriter(8 + len(body))
	w.F32(M)
	w.Uvarint(uint64(len(packed)))
	w.Raw(body)
	return &grace.Payload{Bytes: w.Bytes()}, nil
}

// Decompress reverses the lossless stage and maps digits back to {−M, 0, M}.
func (c *Compressor) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	r := encode.NewReader(p.Bytes)
	M := r.F32()
	packedLen := int(r.Uvarint())
	if r.Err() != nil {
		return nil, fmt.Errorf("threelc: %w", r.Err())
	}
	body := p.Bytes[len(p.Bytes)-r.Remaining():]
	packed, err := encode.ZRLEDecompress(body, packedLen)
	if err != nil {
		return nil, fmt.Errorf("threelc: %w", err)
	}
	d := info.Size()
	out := make([]float32, d)
	for group := 0; group < packedLen; group++ {
		v := packed[group]
		// Digits were packed most-significant first within the group.
		lo := group * base3PerByte
		hi := lo + base3PerByte
		if hi > d {
			hi = d
		}
		nd := hi - lo
		// Extract nd digits; the encoder only shifted nd times for the
		// final partial group.
		digits := make([]byte, nd)
		for i := nd - 1; i >= 0; i-- {
			digits[i] = v % 3
			v /= 3
		}
		for i, digit := range digits {
			switch digit {
			case 1:
				out[lo+i] = -M
			case 2:
				out[lo+i] = M
			}
		}
	}
	return out, nil
}
