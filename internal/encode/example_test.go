package encode_test

import (
	"fmt"

	"repro/internal/encode"
)

// ExamplePackBits shows the paper's pack/unpack helper on 2-bit ternary
// symbols: 8 symbols fit in 2 bytes instead of 32.
func ExamplePackBits() {
	symbols := []uint32{0, 1, 2, 1, 0, 0, 2, 1}
	packed := encode.PackBits(symbols, 2)
	fmt.Println(len(packed), "bytes")
	back, _ := encode.UnpackBits(packed, 2, len(symbols))
	fmt.Println(back)
	// Output:
	// 2 bytes
	// [0 1 2 1 0 0 2 1]
}

// ExampleEncodeIndices shows delta-varint coding of sparse positions.
func ExampleEncodeIndices() {
	idx := []int{4, 100, 7, 1000}
	buf := encode.EncodeIndices(idx)
	back, _ := encode.DecodeIndices(buf)
	fmt.Println(len(buf), "bytes for", len(back), "indices:", back)
	// Output: 6 bytes for 4 indices: [4 7 100 1000]
}

// ExampleZRLECompress shows 3LC's zero run-length stage.
func ExampleZRLECompress() {
	src := []byte{9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7}
	comp := encode.ZRLECompress(src)
	fmt.Println(len(src), "->", len(comp), "bytes")
	back, _ := encode.ZRLEDecompress(comp, len(src))
	fmt.Println(back)
	// Output:
	// 13 -> 4 bytes
	// [9 0 0 0 0 0 0 0 0 0 0 0 7]
}

// ExampleF32ToFP8 shows Dettmers' 1-3-4 8-bit float format.
func ExampleF32ToFP8() {
	for _, v := range []float32{1, 0.5, -0.3} {
		fmt.Printf("%v -> %v\n", v, encode.FP8ToF32(encode.F32ToFP8(v)))
	}
	// Output:
	// 1 -> 1
	// 0.5 -> 0.5
	// -0.3 -> -0.296875
}
