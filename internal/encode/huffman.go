package encode

import (
	"container/heap"
	"fmt"
	"sort"
)

// HuffmanEncode compresses a byte-symbol stream with a canonical Huffman
// code. This implements the lossless entropy-coding stage discussed in the
// paper's related work (Gajjala et al. [81]): quantized gradients have highly
// skewed symbol distributions, so Huffman coding shrinks them well below the
// fixed-width packed size.
//
// Wire format: varint(#symbols) | 256 code lengths (one byte each, 0 = symbol
// absent) | varint(payload bits) | packed payload.
func HuffmanEncode(src []byte) []byte {
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	lengths := huffmanCodeLengths(freq[:])
	codes := canonicalCodes(lengths)

	w := NewWriter(len(src)/2 + 300)
	w.Uvarint(uint64(len(src)))
	for _, l := range lengths {
		w.U8(uint8(l))
	}
	var totalBits uint64
	for _, b := range src {
		totalBits += uint64(lengths[b])
	}
	w.Uvarint(totalBits)
	payload := make([]byte, (totalBits+7)/8)
	var bitPos uint64
	for _, b := range src {
		c, l := codes[b], uint64(lengths[b])
		for i := uint64(0); i < l; i++ {
			if c&(1<<(l-1-i)) != 0 {
				payload[bitPos/8] |= 1 << (bitPos % 8)
			}
			bitPos++
		}
	}
	w.Raw(payload)
	return w.Bytes()
}

// HuffmanDecode reverses HuffmanEncode.
func HuffmanDecode(src []byte) ([]byte, error) {
	r := NewReader(src)
	n := r.Uvarint()
	var lengths [256]int
	for i := range lengths {
		lengths[i] = int(r.U8())
	}
	totalBits := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	// Bound the attacker-controlled sizes before allocating anything: the
	// packed payload cannot hold more bits than the remaining bytes, and
	// every decoded symbol costs at least one bit, so a symbol count beyond
	// totalBits is unsatisfiable. Without these checks a corrupt header
	// drives a near-unbounded allocation (or a negative Raw count) below.
	if totalBits > uint64(r.Remaining())*8 {
		return nil, fmt.Errorf("encode: huffman payload claims %d bits, %d available", totalBits, uint64(r.Remaining())*8)
	}
	if n > totalBits {
		return nil, fmt.Errorf("encode: huffman claims %d symbols in %d payload bits", n, totalBits)
	}
	payload := r.Raw(int((totalBits + 7) / 8))
	if r.Err() != nil {
		return nil, r.Err()
	}
	codes := canonicalCodes(lengths[:])

	// Build a decode map keyed by (length, code).
	type key struct {
		len  int
		code uint32
	}
	dec := make(map[key]byte)
	for s, l := range lengths {
		if l > 0 {
			dec[key{l, codes[s]}] = byte(s)
		}
	}

	out := make([]byte, 0, n)
	var code uint32
	codeLen := 0
	var bitPos uint64
	for uint64(len(out)) < n {
		if bitPos >= totalBits {
			return nil, fmt.Errorf("encode: huffman stream truncated at %d/%d symbols", len(out), n)
		}
		bit := payload[bitPos/8] >> (bitPos % 8) & 1
		bitPos++
		code = code<<1 | uint32(bit)
		codeLen++
		if codeLen > 32 {
			return nil, fmt.Errorf("encode: huffman code overflow")
		}
		if s, ok := dec[key{codeLen, code}]; ok {
			out = append(out, s)
			code, codeLen = 0, 0
		}
	}
	return out, nil
}

type hNode struct {
	freq        int
	sym         int // -1 for internal
	left, right *hNode
}

type hHeap []*hNode

func (h hHeap) Len() int { return len(h) }
func (h hHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].sym < h[j].sym // deterministic tie-break
}
func (h hHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *hHeap) Push(x interface{}) { *h = append(*h, x.(*hNode)) }
func (h *hHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// huffmanCodeLengths computes per-symbol code lengths from frequencies.
// A lone symbol gets length 1 so the stream is self-delimiting.
func huffmanCodeLengths(freq []int) []int {
	lengths := make([]int, len(freq))
	h := &hHeap{}
	for s, f := range freq {
		if f > 0 {
			*h = append(*h, &hNode{freq: f, sym: s})
		}
	}
	if h.Len() == 0 {
		return lengths
	}
	if h.Len() == 1 {
		lengths[(*h)[0].sym] = 1
		return lengths
	}
	heap.Init(h)
	for h.Len() > 1 {
		a := heap.Pop(h).(*hNode)
		b := heap.Pop(h).(*hNode)
		heap.Push(h, &hNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	var walk func(n *hNode, depth int)
	walk = func(n *hNode, depth int) {
		if n.sym >= 0 {
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk((*h)[0], 0)
	return lengths
}

// canonicalCodes assigns canonical codes (shorter lengths first, then symbol
// order) given code lengths.
func canonicalCodes(lengths []int) []uint32 {
	type sl struct{ sym, len int }
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].len != syms[j].len {
			return syms[i].len < syms[j].len
		}
		return syms[i].sym < syms[j].sym
	})
	codes := make([]uint32, len(lengths))
	var code uint32
	prevLen := 0
	for _, e := range syms {
		code <<= uint(e.len - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.len
	}
	return codes
}
