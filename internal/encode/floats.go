package encode

import "math"

// Float16 is the IEEE 754 binary16 format (1 sign, 5 exponent, 10 mantissa
// bits), used by INCEPTIONN's 16-bit level.
type Float16 uint16

// F32ToF16 converts a float32 to binary16 with round-to-nearest-even.
func F32ToF16(f float32) Float16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow (or inf/NaN input): saturate to inf, keep NaN payload bit.
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return Float16(sign | 0x7e00) // NaN
		}
		return Float16(sign | 0x7c00) // Inf
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return Float16(sign)
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		return Float16(sign | uint16(rounded))
	default:
		// Normal: round mantissa to 10 bits.
		rounded := mant + 0x1000
		if rounded&0x800000 != 0 {
			rounded = 0
			exp++
			if exp >= 0x1f {
				return Float16(sign | 0x7c00)
			}
		}
		return Float16(sign | uint16(exp)<<10 | uint16(rounded>>13))
	}
}

// F16ToF32 converts a binary16 value back to float32.
func F16ToF32(h Float16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// FP8 is Dettmers' 8-bit floating-point format for gradients: 1 sign bit,
// 3 exponent bits and 4 mantissa bits [11]. The exponent is biased so the
// representable dynamic range covers the normalized gradient values the
// method produces (inputs are expected to be scaled to roughly [-1, 1]).
type FP8 uint8

// Stored exponent se=0 means zero; se in [1,7] represents the real exponent
// se-1-fp8Bias, so magnitudes span [2^-6, (1+15/16)*2^0].
const (
	fp8ExpBits  = 3
	fp8ManBits  = 4
	fp8Bias     = 6
	fp8ManScale = 1 << fp8ManBits
	fp8MaxSE    = (1 << fp8ExpBits) - 1 // 7
)

// F32ToFP8 quantizes f (expected in roughly [-1, 1]) to the 1-3-4 format.
// Values below the smallest representable magnitude flush to zero; values
// above ~2 in magnitude saturate.
func F32ToFP8(f float32) FP8 {
	var sign FP8
	if f < 0 {
		sign = 0x80
		f = -f
	}
	if f == 0 {
		return sign
	}
	// Real exponent e such that f = m * 2^e, m in [1, 2).
	e := math.Ilogb(float64(f))
	se := e + fp8Bias + 1
	if se < 1 {
		return sign // underflow to zero
	}
	if se > fp8MaxSE {
		return sign | 0x7f // saturate to max magnitude
	}
	m := float64(f) / math.Ldexp(1, e) // in [1,2)
	frac := int(math.Round((m - 1) * fp8ManScale))
	if frac == fp8ManScale { // rounded up to next exponent
		frac = 0
		se++
		if se > fp8MaxSE {
			return sign | 0x7f
		}
	}
	return sign | FP8(se)<<fp8ManBits | FP8(frac)
}

// FP8ToF32 dequantizes the 1-3-4 format.
func FP8ToF32(b FP8) float32 {
	sign := float64(1)
	if b&0x80 != 0 {
		sign = -1
	}
	se := int(b >> fp8ManBits & fp8MaxSE)
	frac := float64(b&(fp8ManScale-1)) / fp8ManScale
	if se == 0 {
		return float32(math.Copysign(0, sign))
	}
	return float32(sign * (1 + frac) * math.Ldexp(1, se-1-fp8Bias))
}

// NearestPow2 rounds x to one of the two nearest integer powers of two,
// deterministically picking the closer one (ties round up). It is the
// deterministic core of natural compression [31]; the randomized variant
// lives in the compressor, which chooses between the two powers with
// probability proportional to proximity.
func NearestPow2(x float64) float64 {
	if x == 0 {
		return 0
	}
	a := math.Abs(x)
	lo := math.Pow(2, math.Floor(math.Log2(a)))
	hi := lo * 2
	out := lo
	if a-lo >= hi-a {
		out = hi
	}
	return math.Copysign(out, x)
}
