// Package encode provides the wire-format primitives shared by the gradient
// compressors: a little-endian byte writer/reader, bit-packing of b-bit
// symbols (the paper's pack/unpack helper API), float16 and 8-bit
// floating-point codecs, delta-varint index coding for sparse tensors,
// zero run-length coding (3LC's lossless stage), a Greenwald-Khanna quantile
// sketch (SketchML), and a canonical Huffman coder (the Huffman-encoding
// extension discussed in the paper's related work).
package encode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates a wire message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer {
	return &Writer{buf: make([]byte, 0, n)}
}

// Bytes returns the accumulated message.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// F32 appends a float32.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// F64 appends a float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Uvarint appends v in unsigned LEB128 form.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// F32Slice appends a length-prefixed slice of float32 values.
func (w *Writer) F32Slice(vals []float32) {
	w.Uvarint(uint64(len(vals)))
	for _, v := range vals {
		w.F32(v)
	}
}

// BytesSlice appends a length-prefixed byte slice.
func (w *Writer) BytesSlice(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.Raw(b)
}

// Reader consumes a wire message produced by Writer. Methods return an error
// once the buffer underflows; subsequent calls keep returning errors so
// callers may batch error checks via Err.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps b for reading.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 {
		// A negative count means an upstream length computation overflowed
		// on hostile input; fail instead of slicing with a negative index.
		r.err = fmt.Errorf("encode: negative read of %d bytes", n)
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("encode: buffer underflow: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F32 reads a float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Uvarint reads an unsigned LEB128 value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("encode: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

// Raw reads n bytes verbatim.
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// F32Slice reads a length-prefixed float32 slice.
func (r *Reader) F32Slice() []float32 {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining())/4 {
		// Compare divided, not multiplied: n*4 can wrap uint64 on a hostile
		// length prefix and sneak past the bound into a huge allocation.
		r.err = fmt.Errorf("encode: F32Slice length %d exceeds remaining %d bytes", n, r.Remaining())
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = r.F32()
	}
	return out
}

// BytesSlice reads a length-prefixed byte slice.
func (r *Reader) BytesSlice() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if uint64(r.Remaining()) < n {
		r.err = fmt.Errorf("encode: BytesSlice length %d exceeds remaining %d bytes", n, r.Remaining())
		return nil
	}
	return r.Raw(int(n))
}
