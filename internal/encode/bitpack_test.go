package encode

import (
	"testing"
	"testing/quick"

	"repro/internal/fxrand"
)

func TestPackBitsKnown(t *testing.T) {
	// Two 4-bit symbols fill one byte LSB-first.
	b := PackBits([]uint32{0x3, 0xA}, 4)
	if len(b) != 1 || b[0] != 0xA3 {
		t.Fatalf("PackBits got %x", b)
	}
	got, err := UnpackBits(b, 4, 2)
	if err != nil || got[0] != 3 || got[1] != 0xA {
		t.Fatalf("UnpackBits got %v err %v", got, err)
	}
}

func TestPackBitsRoundTripProperty(t *testing.T) {
	f := func(seed uint64, widthRaw uint8, nRaw uint16) bool {
		width := uint(widthRaw%32) + 1
		n := int(nRaw % 300)
		r := fxrand.New(seed)
		syms := make([]uint32, n)
		mask := uint32((uint64(1) << width) - 1)
		for i := range syms {
			syms[i] = r.Uint32() & mask
		}
		packed := PackBits(syms, width)
		if len(packed) != PackedLen(n, width) {
			return false
		}
		got, err := UnpackBits(packed, width, n)
		if err != nil {
			return false
		}
		for i := range syms {
			if got[i] != syms[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackBitsCompression(t *testing.T) {
	// 2-bit symbols should take 1/16 the space of float32.
	n := 1024
	syms := make([]uint32, n)
	packed := PackBits(syms, 2)
	if len(packed) != n/4 {
		t.Fatalf("2-bit packing of %d symbols = %d bytes, want %d", n, len(packed), n/4)
	}
}

func TestUnpackBitsShortBuffer(t *testing.T) {
	if _, err := UnpackBits([]byte{0xff}, 8, 2); err == nil {
		t.Fatal("expected short-buffer error")
	}
}

func TestPackBitsBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on width 0")
		}
	}()
	PackBits([]uint32{1}, 0)
}

func TestPackSignsRoundTrip(t *testing.T) {
	x := []float32{1.5, -2, 0, -0.001, 3}
	packed := PackSigns(x)
	if len(packed) != 1 {
		t.Fatalf("PackSigns length %d", len(packed))
	}
	got, err := UnpackSigns(packed, len(x))
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, -1, 1, -1, 1} // sign(0) = +1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("UnpackSigns got %v want %v", got, want)
		}
	}
}

func TestPackSignsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 500)
		r := fxrand.New(seed)
		x := make([]float32, n)
		for i := range x {
			x[i] = r.NormFloat32()
		}
		got, err := UnpackSigns(PackSigns(x), n)
		if err != nil {
			return false
		}
		for i, v := range x {
			want := float32(1)
			if v < 0 {
				want = -1
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnpackSignsShortBuffer(t *testing.T) {
	if _, err := UnpackSigns([]byte{0}, 9); err == nil {
		t.Fatal("expected short-buffer error")
	}
}
