package encode

import "fmt"

// zrleEscape marks a zero run. 3LC's lossless stage exploits the fact that
// after ternary quantization most symbols are zero; runs of zeros compress to
// an escape byte plus a varint run length.
const zrleEscape = 0x00

// ZRLECompress run-length encodes zero bytes in src. Non-zero bytes are
// emitted verbatim; a run of n >= 1 zero bytes becomes the escape byte
// followed by a varint(n). Worst case (no zeros) adds no overhead.
func ZRLECompress(src []byte) []byte {
	w := NewWriter(len(src)/2 + 16)
	i := 0
	for i < len(src) {
		if src[i] != 0 {
			w.U8(src[i])
			i++
			continue
		}
		j := i
		for j < len(src) && src[j] == 0 {
			j++
		}
		w.U8(zrleEscape)
		w.Uvarint(uint64(j - i))
		i = j
	}
	return w.Bytes()
}

// ZRLEDecompress reverses ZRLECompress. n is the expected decoded length and
// guards against corrupt input.
func ZRLEDecompress(src []byte, n int) ([]byte, error) {
	out := make([]byte, 0, n)
	r := NewReader(src)
	for r.Remaining() > 0 {
		b := r.U8()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if b != zrleEscape {
			out = append(out, b)
			continue
		}
		run := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if uint64(len(out))+run > uint64(n) {
			return nil, fmt.Errorf("encode: ZRLE run overflows expected length %d", n)
		}
		for k := uint64(0); k < run; k++ {
			out = append(out, 0)
		}
	}
	if len(out) != n {
		return nil, fmt.Errorf("encode: ZRLE decoded %d bytes, want %d", len(out), n)
	}
	return out, nil
}
