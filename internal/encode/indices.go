package encode

import (
	"fmt"
	"sort"
)

// EncodeIndices delta-varint encodes a strictly increasing index list. Sparse
// compressors (Top-k, Random-k, DGC, ...) transmit the positions of selected
// gradient elements; delta+LEB128 coding makes dense selections cost ~1 byte
// per index instead of 4.
//
// The input need not be sorted; a sorted copy is encoded, since the positions
// of a sparse tensor are a set. It panics on duplicate indices.
func EncodeIndices(idx []int) []byte {
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	w := NewWriter(len(sorted) + 8)
	w.Uvarint(uint64(len(sorted)))
	prev := -1
	for _, v := range sorted {
		if v == prev {
			panic(fmt.Sprintf("encode: duplicate index %d", v))
		}
		w.Uvarint(uint64(v - prev))
		prev = v
	}
	return w.Bytes()
}

// DecodeIndices reverses EncodeIndices, returning the sorted index list.
func DecodeIndices(buf []byte) ([]int, error) {
	r := NewReader(buf)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if n > uint64(len(buf))*8 { // sanity: each index costs >= 1 bit is impossible; >=1 byte
		return nil, fmt.Errorf("encode: implausible index count %d for %d-byte buffer", n, len(buf))
	}
	out := make([]int, n)
	prev := -1
	for i := range out {
		d := r.Uvarint()
		if r.Err() != nil {
			return nil, r.Err()
		}
		prev += int(d)
		out[i] = prev
	}
	return out, nil
}

// SortByIndex sorts (idx, vals) pairs by ascending index in place. Sparse
// compressors select (index, value) pairs in arbitrary order but the wire
// format requires sorted indices for delta coding.
func SortByIndex(idx []int, vals []float32) {
	if len(idx) != len(vals) {
		panic("encode: SortByIndex length mismatch")
	}
	sort.Sort(&pairSlice{idx, vals})
}

type pairSlice struct {
	idx  []int
	vals []float32
}

func (p *pairSlice) Len() int           { return len(p.idx) }
func (p *pairSlice) Less(i, j int) bool { return p.idx[i] < p.idx[j] }
func (p *pairSlice) Swap(i, j int) {
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
	p.vals[i], p.vals[j] = p.vals[j], p.vals[i]
}
