package encode

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(7)
	w.U16(513)
	w.U32(70000)
	w.U64(1 << 40)
	w.F32(3.25)
	w.F64(-1.5e-10)
	w.Uvarint(300)
	w.Raw([]byte{1, 2, 3})
	w.F32Slice([]float32{1, 2, 3})
	w.BytesSlice([]byte{9, 8})

	r := NewReader(w.Bytes())
	if r.U8() != 7 || r.U16() != 513 || r.U32() != 70000 || r.U64() != 1<<40 {
		t.Fatal("integer round trip failed")
	}
	if r.F32() != 3.25 || r.F64() != -1.5e-10 {
		t.Fatal("float round trip failed")
	}
	if r.Uvarint() != 300 {
		t.Fatal("uvarint round trip failed")
	}
	if !bytes.Equal(r.Raw(3), []byte{1, 2, 3}) {
		t.Fatal("raw round trip failed")
	}
	fs := r.F32Slice()
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatal("F32Slice round trip failed")
	}
	bs := r.BytesSlice()
	if !bytes.Equal(bs, []byte{9, 8}) {
		t.Fatal("BytesSlice round trip failed")
	}
	if r.Err() != nil || r.Remaining() != 0 {
		t.Fatalf("reader state: err=%v remaining=%d", r.Err(), r.Remaining())
	}
}

func TestReaderUnderflow(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32()
	if r.Err() == nil {
		t.Fatal("expected underflow error")
	}
	// Error is sticky.
	r.U8()
	if r.Err() == nil {
		t.Fatal("error should be sticky")
	}
}

func TestF32SliceBadLength(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1000) // claims 1000 floats, provides none
	r := NewReader(w.Bytes())
	if r.F32Slice() != nil || r.Err() == nil {
		t.Fatal("expected error on implausible F32Slice length")
	}
}

func TestBytesSliceBadLength(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if r.BytesSlice() != nil || r.Err() == nil {
		t.Fatal("expected error on implausible BytesSlice length")
	}
}

func TestSpecialFloats(t *testing.T) {
	w := NewWriter(0)
	w.F32(float32(math.Inf(1)))
	w.F32(float32(math.Inf(-1)))
	w.F32(float32(math.NaN()))
	r := NewReader(w.Bytes())
	if !math.IsInf(float64(r.F32()), 1) || !math.IsInf(float64(r.F32()), -1) || !math.IsNaN(float64(r.F32())) {
		t.Fatal("special float round trip failed")
	}
}

func TestUvarintProperty(t *testing.T) {
	f := func(v uint64) bool {
		w := NewWriter(0)
		w.Uvarint(v)
		r := NewReader(w.Bytes())
		return r.Uvarint() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
