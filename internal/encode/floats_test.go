package encode

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fxrand"
)

func TestF16ExactValues(t *testing.T) {
	cases := []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504}
	for _, v := range cases {
		if got := F16ToF32(F32ToF16(v)); got != v {
			t.Fatalf("f16 round trip of exactly-representable %v = %v", v, got)
		}
	}
}

func TestF16RelativeError(t *testing.T) {
	r := fxrand.New(1)
	for i := 0; i < 10000; i++ {
		v := r.NormFloat32()
		got := F16ToF32(F32ToF16(v))
		if v == 0 {
			continue
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/1024 { // 10 mantissa bits -> rel err <= 2^-11 + slack
			t.Fatalf("f16 relative error %v for %v -> %v", rel, v, got)
		}
	}
}

func TestF16Specials(t *testing.T) {
	if got := F16ToF32(F32ToF16(float32(math.Inf(1)))); !math.IsInf(float64(got), 1) {
		t.Fatalf("+inf became %v", got)
	}
	if got := F16ToF32(F32ToF16(float32(math.Inf(-1)))); !math.IsInf(float64(got), -1) {
		t.Fatalf("-inf became %v", got)
	}
	if got := F16ToF32(F32ToF16(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Fatalf("NaN became %v", got)
	}
	if got := F16ToF32(F32ToF16(1e30)); !math.IsInf(float64(got), 1) {
		t.Fatalf("overflow should saturate to inf, got %v", got)
	}
	if got := F16ToF32(F32ToF16(1e-30)); got != 0 {
		t.Fatalf("tiny value should flush to zero, got %v", got)
	}
}

func TestF16Subnormals(t *testing.T) {
	v := float32(3e-5) // falls in the binary16 subnormal range
	got := F16ToF32(F32ToF16(v))
	rel := math.Abs(float64(got-v)) / float64(v)
	if rel > 0.05 {
		t.Fatalf("subnormal round trip error %v (%v -> %v)", rel, v, got)
	}
}

func TestF16SignPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		v := fxrand.New(seed).NormFloat32()
		got := F16ToF32(F32ToF16(v))
		return (v >= 0) == (got >= 0) || got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFP8Zero(t *testing.T) {
	if FP8ToF32(F32ToFP8(0)) != 0 {
		t.Fatal("fp8 zero round trip failed")
	}
}

func TestFP8KnownValues(t *testing.T) {
	// 1.0 = (1+0) * 2^(7-7) -> exactly representable.
	if got := FP8ToF32(F32ToFP8(1)); got != 1 {
		t.Fatalf("fp8(1) = %v", got)
	}
	// 0.5 exactly representable.
	if got := FP8ToF32(F32ToFP8(0.5)); got != 0.5 {
		t.Fatalf("fp8(0.5) = %v", got)
	}
	if got := FP8ToF32(F32ToFP8(-0.5)); got != -0.5 {
		t.Fatalf("fp8(-0.5) = %v", got)
	}
}

func TestFP8RelativeError(t *testing.T) {
	r := fxrand.New(2)
	for i := 0; i < 10000; i++ {
		v := r.Float32()*2 - 1 // [-1, 1), the normalized-gradient domain
		if math.Abs(float64(v)) < 1.0/64 {
			continue // below representable range, flushes to zero
		}
		got := FP8ToF32(F32ToFP8(v))
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		if rel > 1.0/16 { // 4 mantissa bits -> rel err <= 2^-5 + rounding slack
			t.Fatalf("fp8 relative error %v for %v -> %v", rel, v, got)
		}
	}
}

func TestFP8Saturation(t *testing.T) {
	got := FP8ToF32(F32ToFP8(100))
	if got < 1.9 || got > 2 { // max magnitude = (1 + 15/16) * 2^0
		t.Fatalf("fp8 saturation value %v", got)
	}
	if FP8ToF32(F32ToFP8(-100)) != -got {
		t.Fatal("fp8 saturation not symmetric")
	}
}

func TestFP8SignPreserved(t *testing.T) {
	f := func(seed uint64) bool {
		v := fxrand.New(seed).NormFloat32()
		got := FP8ToF32(F32ToFP8(v))
		if got == 0 {
			return true
		}
		return (v < 0) == (got < 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFP8Underflow(t *testing.T) {
	if got := FP8ToF32(F32ToFP8(1e-6)); got != 0 {
		t.Fatalf("fp8 underflow should flush to zero, got %v", got)
	}
}

func TestNearestPow2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{1.4, 1},
		{1.6, 2},
		{3, 4}, // tie rounds up
		{-3, -4},
		{0.75, 1}, // tie rounds up: |0.75-0.5| = |1-0.75|
		{-1.2, -1},
		{1000, 1024},
	}
	for _, c := range cases {
		if got := NearestPow2(c.in); got != c.want {
			t.Fatalf("NearestPow2(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNearestPow2IsPow2(t *testing.T) {
	f := func(seed uint64) bool {
		v := fxrand.New(seed).NormFloat64() * 100
		got := NearestPow2(v)
		if v == 0 || got == 0 {
			return got == 0 == (v == 0)
		}
		l := math.Log2(math.Abs(got))
		return l == math.Trunc(l)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
