package encode

import "fmt"

// PackBits encodes n symbols of width bits each (1..32) into a dense byte
// slice, LSB-first within each byte. Symbols must fit in width bits; values
// exceeding the width are truncated to it, which callers must avoid.
//
// This is the paper's `pack` helper: it is what turns, e.g., 2-bit ternary
// codes or 3-bit QSGD code-words into an actually-small wire message. The
// paper notes its own Python implementation omits packing and therefore
// inflates quantized volumes; we implement it so measured volumes are true.
func PackBits(symbols []uint32, width uint) []byte {
	if width == 0 || width > 32 {
		panic(fmt.Sprintf("encode: PackBits width %d out of range [1,32]", width))
	}
	totalBits := uint64(len(symbols)) * uint64(width)
	out := make([]byte, (totalBits+7)/8)
	var bitPos uint64
	mask := uint32((uint64(1) << width) - 1)
	for _, s := range symbols {
		v := uint64(s & mask)
		bytePos := bitPos / 8
		shift := bitPos % 8
		// A width<=32 symbol spans at most 5 bytes after shifting.
		acc := v << shift
		for i := 0; acc != 0 && i < 5; i++ {
			out[bytePos+uint64(i)] |= byte(acc)
			acc >>= 8
		}
		bitPos += uint64(width)
	}
	return out
}

// UnpackBits decodes n symbols of width bits each from buf (the paper's
// `unpack`). It returns an error if buf is too short.
func UnpackBits(buf []byte, width uint, n int) ([]uint32, error) {
	if width == 0 || width > 32 {
		return nil, fmt.Errorf("encode: UnpackBits width %d out of range [1,32]", width)
	}
	totalBits := uint64(n) * uint64(width)
	if uint64(len(buf))*8 < totalBits {
		return nil, fmt.Errorf("encode: UnpackBits needs %d bits, buffer has %d", totalBits, len(buf)*8)
	}
	out := make([]uint32, n)
	mask := uint64((uint64(1) << width) - 1)
	var bitPos uint64
	for i := 0; i < n; i++ {
		bytePos := bitPos / 8
		shift := bitPos % 8
		var acc uint64
		// Gather up to 5 bytes covering the symbol.
		for j := uint64(0); j < 5 && bytePos+j < uint64(len(buf)); j++ {
			acc |= uint64(buf[bytePos+j]) << (8 * j)
		}
		out[i] = uint32((acc >> shift) & mask)
		bitPos += uint64(width)
	}
	return out, nil
}

// PackedLen returns the number of bytes PackBits produces for n symbols of
// the given width.
func PackedLen(n int, width uint) int {
	return int((uint64(n)*uint64(width) + 7) / 8)
}

// PackSigns packs a sign vector (+1 encoded as 1, otherwise 0) into a
// bitmask, one bit per element. Elements with value >= 0 are encoded as 1,
// matching SignSGD's convention that sign(0) = +1.
func PackSigns(x []float32) []byte {
	out := make([]byte, (len(x)+7)/8)
	for i, v := range x {
		if v >= 0 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// UnpackSigns expands a PackSigns bitmask into a ±1 float vector of length n.
func UnpackSigns(buf []byte, n int) ([]float32, error) {
	if len(buf)*8 < n {
		return nil, fmt.Errorf("encode: UnpackSigns needs %d bits, buffer has %d", n, len(buf)*8)
	}
	out := make([]float32, n)
	for i := range out {
		if buf[i/8]&(1<<(uint(i)%8)) != 0 {
			out[i] = 1
		} else {
			out[i] = -1
		}
	}
	return out, nil
}
