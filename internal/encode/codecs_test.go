package encode

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/fxrand"
)

// --- indices ---

func TestEncodeIndicesRoundTrip(t *testing.T) {
	idx := []int{5, 2, 100, 0, 7}
	got, err := DecodeIndices(EncodeIndices(idx))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 5, 7, 100}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestEncodeIndicesEmpty(t *testing.T) {
	got, err := DecodeIndices(EncodeIndices(nil))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip: %v %v", got, err)
	}
}

func TestEncodeIndicesDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate index")
		}
	}()
	EncodeIndices([]int{1, 1})
}

func TestEncodeIndicesProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%200) + 1
		k := int(seed%uint64(n)) + 1
		idx := fxrand.New(seed).Sample(n*10, k)
		got, err := DecodeIndices(EncodeIndices(idx))
		if err != nil || len(got) != k {
			return false
		}
		sort.Ints(idx)
		for i := range idx {
			if got[i] != idx[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIndicesDenseIsCompact(t *testing.T) {
	// Dense consecutive indices should cost ~1 byte each.
	idx := make([]int, 1000)
	for i := range idx {
		idx[i] = i
	}
	if n := len(EncodeIndices(idx)); n > 1100 {
		t.Fatalf("dense index encoding too large: %d bytes for 1000 indices", n)
	}
}

func TestDecodeIndicesCorrupt(t *testing.T) {
	if _, err := DecodeIndices([]byte{0xff}); err == nil {
		t.Fatal("expected error on corrupt buffer")
	}
}

func TestSortByIndex(t *testing.T) {
	idx := []int{3, 1, 2}
	vals := []float32{30, 10, 20}
	SortByIndex(idx, vals)
	for i := 0; i < 3; i++ {
		if idx[i] != i+1 || vals[i] != float32((i+1)*10) {
			t.Fatalf("SortByIndex got %v %v", idx, vals)
		}
	}
}

// --- ZRLE ---

func TestZRLERoundTrip(t *testing.T) {
	src := []byte{1, 0, 0, 0, 2, 3, 0, 4, 0, 0}
	dec, err := ZRLEDecompress(ZRLECompress(src), len(src))
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("ZRLE round trip: %v err=%v", dec, err)
	}
}

func TestZRLEAllZeros(t *testing.T) {
	src := make([]byte, 10000)
	comp := ZRLECompress(src)
	if len(comp) > 4 {
		t.Fatalf("all-zero compression too large: %d bytes", len(comp))
	}
	dec, err := ZRLEDecompress(comp, len(src))
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatal("all-zero round trip failed")
	}
}

func TestZRLENoZeros(t *testing.T) {
	src := []byte{1, 2, 3, 4, 5}
	comp := ZRLECompress(src)
	if len(comp) != len(src) {
		t.Fatalf("no-zero stream should not grow: %d vs %d", len(comp), len(src))
	}
}

func TestZRLEProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 1000)
		r := fxrand.New(seed)
		src := make([]byte, n)
		for i := range src {
			if r.Bernoulli(0.7) {
				src[i] = 0
			} else {
				src[i] = byte(r.Intn(255) + 1)
			}
		}
		dec, err := ZRLEDecompress(ZRLECompress(src), n)
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZRLECorruptLength(t *testing.T) {
	comp := ZRLECompress([]byte{0, 0, 0})
	if _, err := ZRLEDecompress(comp, 2); err == nil {
		t.Fatal("expected error when decoded length mismatches")
	}
}

// --- quantile sketch ---

func TestSketchUniformQuantiles(t *testing.T) {
	s := NewQuantileSketch(0.01)
	r := fxrand.New(3)
	const n = 50000
	for i := 0; i < n; i++ {
		s.Insert(r.Float64())
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := s.Query(q)
		if math.Abs(got-q) > 0.03 {
			t.Fatalf("quantile %v estimated as %v", q, got)
		}
	}
}

func TestSketchExtremes(t *testing.T) {
	s := NewQuantileSketch(0.05)
	for i := 1; i <= 100; i++ {
		s.Insert(float64(i))
	}
	if got := s.Query(0); got > 6 {
		t.Fatalf("min quantile %v", got)
	}
	if got := s.Query(1); got < 95 {
		t.Fatalf("max quantile %v", got)
	}
}

func TestSketchEmpty(t *testing.T) {
	s := NewQuantileSketch(0.1)
	if s.Query(0.5) != 0 {
		t.Fatal("empty sketch should return 0")
	}
}

func TestSketchQuantilesMonotone(t *testing.T) {
	s := NewQuantileSketch(0.02)
	r := fxrand.New(9)
	for i := 0; i < 5000; i++ {
		s.Insert(r.NormFloat64())
	}
	bs := s.Quantiles(16)
	if len(bs) != 17 {
		t.Fatalf("Quantiles length %d", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] < bs[i-1] {
			t.Fatalf("boundaries not monotone: %v", bs)
		}
	}
}

func TestBucketOfAndMid(t *testing.T) {
	bs := []float64{0, 1, 2, 3} // 3 buckets
	if BucketOf(bs, -5) != 0 {
		t.Fatal("below-range value should land in bucket 0")
	}
	if BucketOf(bs, 0.5) != 0 || BucketOf(bs, 1.5) != 1 || BucketOf(bs, 2.5) != 2 {
		t.Fatal("interior bucketing wrong")
	}
	if BucketOf(bs, 99) != 2 {
		t.Fatal("above-range value should land in last bucket")
	}
	if BucketMid(bs, 1) != 1.5 {
		t.Fatal("BucketMid wrong")
	}
}

func TestSketchBadEpsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantileSketch(0)
}

// --- Huffman ---

func TestHuffmanRoundTripSkewed(t *testing.T) {
	r := fxrand.New(4)
	src := make([]byte, 10000)
	for i := range src {
		// Highly skewed: mostly zeros, as in quantized gradients.
		if r.Bernoulli(0.9) {
			src[i] = 0
		} else {
			src[i] = byte(r.Intn(4) + 1)
		}
	}
	comp := HuffmanEncode(src)
	if len(comp) > len(src)/2+300 {
		t.Fatalf("huffman did not compress skewed stream: %d -> %d", len(src), len(comp))
	}
	dec, err := HuffmanDecode(comp)
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("huffman round trip failed: err=%v", err)
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	src := bytes.Repeat([]byte{42}, 1000)
	dec, err := HuffmanDecode(HuffmanEncode(src))
	if err != nil || !bytes.Equal(dec, src) {
		t.Fatalf("single-symbol round trip failed: err=%v", err)
	}
}

func TestHuffmanEmpty(t *testing.T) {
	dec, err := HuffmanDecode(HuffmanEncode(nil))
	if err != nil || len(dec) != 0 {
		t.Fatalf("empty round trip: %v err=%v", dec, err)
	}
}

func TestHuffmanProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw % 2000)
		r := fxrand.New(seed)
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(r.Intn(8))
		}
		dec, err := HuffmanDecode(HuffmanEncode(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanCorrupt(t *testing.T) {
	comp := HuffmanEncode([]byte{1, 2, 3, 1, 2, 3})
	if _, err := HuffmanDecode(comp[:len(comp)-1]); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func BenchmarkPackBits2(b *testing.B) {
	syms := make([]uint32, 1<<18)
	b.SetBytes(int64(len(syms)) * 4)
	for i := 0; i < b.N; i++ {
		_ = PackBits(syms, 2)
	}
}

func BenchmarkHuffmanEncode(b *testing.B) {
	r := fxrand.New(1)
	src := make([]byte, 1<<16)
	for i := range src {
		src[i] = byte(r.Intn(4))
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HuffmanEncode(src)
	}
}
