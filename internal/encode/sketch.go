package encode

import (
	"fmt"
	"sort"
)

// QuantileSketch is a Greenwald-Khanna ε-approximate quantile summary [50].
// SketchML builds a non-uniform quantile sketch over the non-zero gradient
// values and transmits per-value bucket indices instead of floats.
//
// The zero value is not usable; construct with NewQuantileSketch.
type QuantileSketch struct {
	eps     float64
	n       int
	tuples  []gkTuple
	pending []float64
}

type gkTuple struct {
	v     float64
	g     int // number of observations between previous tuple and this one
	delta int // uncertainty
}

// NewQuantileSketch returns a sketch with additive rank error ε·n.
func NewQuantileSketch(eps float64) *QuantileSketch {
	if eps <= 0 || eps >= 1 {
		panic(fmt.Sprintf("encode: quantile sketch eps %v out of (0,1)", eps))
	}
	return &QuantileSketch{eps: eps}
}

// Add inserts a value. Insertions are buffered and merged in batches for
// speed; Query and Quantiles flush automatically.
func (s *QuantileSketch) Insert(v float64) {
	s.pending = append(s.pending, v)
	if len(s.pending) >= 256 {
		s.flush()
	}
}

// Count returns the number of inserted values.
func (s *QuantileSketch) Count() int { return s.n + len(s.pending) }

func (s *QuantileSketch) flush() {
	if len(s.pending) == 0 {
		return
	}
	sort.Float64s(s.pending)
	merged := make([]gkTuple, 0, len(s.tuples)+len(s.pending))
	i := 0
	for _, v := range s.pending {
		for i < len(s.tuples) && s.tuples[i].v <= v {
			merged = append(merged, s.tuples[i])
			i++
		}
		delta := 0
		if s.n > 0 && len(merged) > 0 && i < len(s.tuples) {
			delta = int(2 * s.eps * float64(s.n))
		}
		merged = append(merged, gkTuple{v: v, g: 1, delta: delta})
		s.n++
	}
	merged = append(merged, s.tuples[i:]...)
	s.tuples = merged
	s.pending = s.pending[:0]
	s.compress()
}

func (s *QuantileSketch) compress() {
	if len(s.tuples) < 3 {
		return
	}
	threshold := int(2 * s.eps * float64(s.n))
	out := s.tuples[:1]
	for i := 1; i < len(s.tuples)-1; i++ {
		t := s.tuples[i]
		next := &s.tuples[i+1]
		if t.g+next.g+next.delta <= threshold {
			next.g += t.g
			continue
		}
		out = append(out, t)
	}
	out = append(out, s.tuples[len(s.tuples)-1])
	s.tuples = out
}

// Query returns an ε-approximate q-quantile (q in [0,1]). It returns 0 for an
// empty sketch.
func (s *QuantileSketch) Query(q float64) float64 {
	s.flush()
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int(q*float64(s.n-1)) + 1
	margin := int(s.eps*float64(s.n)) + 1
	rmin := 0
	for i, t := range s.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if rank-margin <= rmin && rmax <= rank+margin {
			return t.v
		}
		if i == len(s.tuples)-1 {
			break
		}
	}
	return s.tuples[len(s.tuples)-1].v
}

// Quantiles returns k+1 bucket boundaries splitting the observed distribution
// into k approximately equal-mass buckets (boundaries are non-decreasing).
func (s *QuantileSketch) Quantiles(k int) []float64 {
	if k < 1 {
		panic("encode: Quantiles needs k >= 1")
	}
	out := make([]float64, k+1)
	for i := 0; i <= k; i++ {
		out[i] = s.Query(float64(i) / float64(k))
	}
	// Enforce monotonicity against approximation jitter.
	for i := 1; i <= k; i++ {
		if out[i] < out[i-1] {
			out[i] = out[i-1]
		}
	}
	return out
}

// BucketOf returns the bucket index in [0, k) for value v given boundaries
// from Quantiles(k).
func BucketOf(boundaries []float64, v float64) int {
	k := len(boundaries) - 1
	// Binary search for the rightmost boundary <= v.
	i := sort.SearchFloat64s(boundaries, v)
	if i > 0 {
		i--
	}
	if i >= k {
		i = k - 1
	}
	return i
}

// BucketMid returns the representative (midpoint) of bucket i.
func BucketMid(boundaries []float64, i int) float64 {
	return (boundaries[i] + boundaries[i+1]) / 2
}
