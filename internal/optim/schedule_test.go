package optim

import (
	"math"
	"testing"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.1)
	if s(0) != 0.1 || s(100) != 0.1 {
		t.Fatal("constant schedule not constant")
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay(1.0, 0.1, 5, 10)
	if s(0) != 1.0 || s(4) != 1.0 {
		t.Fatal("decayed before first milestone")
	}
	if math.Abs(s(5)-0.1) > 1e-12 || math.Abs(s(9)-0.1) > 1e-12 {
		t.Fatalf("first milestone wrong: %v", s(5))
	}
	if math.Abs(s(10)-0.01) > 1e-12 {
		t.Fatalf("second milestone wrong: %v", s(10))
	}
}

func TestExpDecay(t *testing.T) {
	s := ExpDecay(1.0, 0.5)
	if s(0) != 1 || s(1) != 0.5 || s(3) != 0.125 {
		t.Fatalf("exp decay wrong: %v %v %v", s(0), s(1), s(3))
	}
}

func TestCosineAnneal(t *testing.T) {
	s := CosineAnneal(1.0, 0.1, 11)
	if math.Abs(s(0)-1.0) > 1e-12 {
		t.Fatalf("cosine start %v", s(0))
	}
	if math.Abs(s(10)-0.1) > 1e-12 {
		t.Fatalf("cosine end %v", s(10))
	}
	mid := s(5)
	if mid <= 0.1 || mid >= 1.0 {
		t.Fatalf("cosine mid %v out of range", mid)
	}
	// Monotone non-increasing.
	prev := s(0)
	for e := 1; e <= 10; e++ {
		if s(e) > prev+1e-12 {
			t.Fatalf("cosine increased at %d", e)
		}
		prev = s(e)
	}
	// Past-the-end epochs clamp to the floor.
	if math.Abs(s(50)-0.1) > 1e-12 {
		t.Fatalf("cosine beyond total = %v", s(50))
	}
}

func TestWarmup(t *testing.T) {
	s := Warmup(4, ConstantLR(1.0))
	if math.Abs(s(0)-0.25) > 1e-12 || math.Abs(s(1)-0.5) > 1e-12 {
		t.Fatalf("warmup ramp wrong: %v %v", s(0), s(1))
	}
	if s(4) != 1.0 || s(9) != 1.0 {
		t.Fatal("post-warmup rate wrong")
	}
}

func TestScheduleDrivesOptimizer(t *testing.T) {
	opt := NewSGD(0)
	sched := StepDecay(0.1, 0.5, 2)
	for epoch := 0; epoch < 4; epoch++ {
		opt.SetLR(sched(epoch))
	}
	if math.Abs(opt.LR()-0.05) > 1e-12 {
		t.Fatalf("optimizer LR %v after schedule, want 0.05", opt.LR())
	}
}
