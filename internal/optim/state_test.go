package optim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func makeParams(seed uint64, shapes ...[]int) []*nn.Param {
	rng := fxrand.New(seed)
	params := make([]*nn.Param, len(shapes))
	for i, sh := range shapes {
		t := tensor.New(sh...)
		d := t.Data()
		for j := range d {
			d[j] = rng.NormFloat32()
		}
		params[i] = &nn.Param{Name: "p" + string(rune('a'+i)), Value: t}
	}
	return params
}

func cloneParams(params []*nn.Param) []*nn.Param {
	out := make([]*nn.Param, len(params))
	for i, p := range params {
		t := tensor.New(p.Value.Shape()...)
		copy(t.Data(), p.Value.Data())
		out[i] = &nn.Param{Name: p.Name, Value: t}
	}
	return out
}

func randGrads(rng *fxrand.RNG, params []*nn.Param) []*tensor.Dense {
	grads := make([]*tensor.Dense, len(params))
	for i, p := range params {
		g := tensor.New(p.Value.Shape()...)
		d := g.Data()
		for j := range d {
			d[j] = rng.NormFloat32() * 0.1
		}
		grads[i] = g
	}
	return grads
}

func paramsBitwiseEqual(t *testing.T, got, want []*nn.Param, label string) {
	t.Helper()
	for i := range want {
		gd, wd := got[i].Value.Data(), want[i].Value.Data()
		for j := range wd {
			if math.Float32bits(gd[j]) != math.Float32bits(wd[j]) {
				t.Fatalf("%s: param %d element %d = %v, want %v (bitwise)", label, i, j, gd[j], wd[j])
			}
		}
	}
}

// TestStateResumeEquivalence runs each optimizer for a few steps, snapshots
// state mid-run, continues in a fresh optimizer seeded from the snapshot, and
// requires the resumed trajectory to match the uninterrupted one bitwise.
func TestStateResumeEquivalence(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Stateful
	}{
		{"sgd", func() Stateful { return NewSGD(0.1) }},
		{"momentum-sgd", func() Stateful { return NewMomentumSGD(0.1, 0.9) }},
		{"nesterov-sgd", func() Stateful { return NewNesterovSGD(0.1, 0.9) }},
		{"adam", func() Stateful { return NewAdam(0.01) }},
		{"rmsprop", func() Stateful { return NewRMSProp(0.01) }},
		{"adagrad", func() Stateful { return NewAdaGrad(0.1) }},
	}
	shapes := [][]int{{4, 3}, {3}, {2, 2, 2}}
	const before, after = 5, 7
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref := makeParams(1, shapes...)
			refOpt := tc.mk()
			rng := fxrand.New(77)
			var gradSeq [][]*tensor.Dense
			for i := 0; i < before+after; i++ {
				gradSeq = append(gradSeq, randGrads(rng, ref))
			}
			for _, g := range gradSeq {
				refOpt.Step(ref, g)
			}

			// Interrupted run: step, snapshot, resume in a fresh optimizer.
			live := makeParams(1, shapes...)
			liveOpt := tc.mk()
			for i := 0; i < before; i++ {
				liveOpt.Step(live, gradSeq[i])
			}
			st := liveOpt.State(live)

			resumed := cloneParams(live)
			resOpt := tc.mk()
			if err := resOpt.LoadState(resumed, st); err != nil {
				t.Fatalf("LoadState: %v", err)
			}
			for i := before; i < before+after; i++ {
				resOpt.Step(resumed, gradSeq[i])
			}
			paramsBitwiseEqual(t, resumed, ref, "resumed vs uninterrupted")
		})
	}
}

// TestStateRoundTripPreservesLazyNils verifies that parameters the optimizer
// has never touched stay nil through a State/LoadState round trip.
func TestStateRoundTripPreservesLazyNils(t *testing.T) {
	params := makeParams(2, []int{3}, []int{2})
	opt := NewMomentumSGD(0.1, 0.9)
	// Snapshot before any step: every velocity slot is still unallocated.
	st := opt.State(params)
	if len(st.Slots) != 1 || st.Slots[0].Name != "velocity" {
		t.Fatalf("unexpected slots: %+v", st.Slots)
	}
	for i, d := range st.Slots[0].Data {
		if d != nil {
			t.Fatalf("param %d velocity non-nil before any step", i)
		}
	}
	fresh := NewMomentumSGD(0.1, 0.9)
	if err := fresh.LoadState(params, st); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if len(fresh.velocity) != 0 {
		t.Fatalf("nil slots materialized %d velocity entries", len(fresh.velocity))
	}
}

// TestLoadStateRejectsMismatches covers the typed validation paths.
func TestLoadStateRejectsMismatches(t *testing.T) {
	params := makeParams(3, []int{4})
	opt := NewAdam(0.01)
	opt.Step(params, randGrads(fxrand.New(1), params))
	st := opt.State(params)

	t.Run("wrong-optimizer", func(t *testing.T) {
		err := NewSGD(0.1).LoadState(params, st)
		if err == nil || !strings.Contains(err.Error(), "cannot load") {
			t.Fatalf("err = %v, want name mismatch", err)
		}
	})
	t.Run("wrong-param-count", func(t *testing.T) {
		more := makeParams(3, []int{4}, []int{2})
		err := NewAdam(0.01).LoadState(more, st)
		if err == nil || !strings.Contains(err.Error(), "entries for") {
			t.Fatalf("err = %v, want param-count mismatch", err)
		}
	})
	t.Run("wrong-vector-size", func(t *testing.T) {
		bad := State{Name: st.Name, Step: st.Step, Slots: []Slot{
			{Name: "m", Data: [][]float32{{1, 2}}},
			{Name: "v", Data: [][]float32{{1, 2}}},
		}}
		err := NewAdam(0.01).LoadState(params, bad)
		if err == nil || !strings.Contains(err.Error(), "elements, want") {
			t.Fatalf("err = %v, want size mismatch", err)
		}
	})
	t.Run("missing-slot", func(t *testing.T) {
		bad := State{Name: st.Name, Slots: []Slot{{Name: "m", Data: make([][]float32, 1)}}}
		err := NewAdam(0.01).LoadState(params, bad)
		if err == nil || !strings.Contains(err.Error(), "missing slot") {
			t.Fatalf("err = %v, want missing slot", err)
		}
	})
}

// TestStateIsDeepCopy: mutating the optimizer after State() must not change
// the exported snapshot.
func TestStateIsDeepCopy(t *testing.T) {
	params := makeParams(4, []int{5})
	opt := NewMomentumSGD(0.1, 0.9)
	rng := fxrand.New(3)
	opt.Step(params, randGrads(rng, params))
	st := opt.State(params)
	before := append([]float32(nil), st.Slots[0].Data[0]...)
	opt.Step(params, randGrads(rng, params))
	for j := range before {
		if st.Slots[0].Data[0][j] != before[j] {
			t.Fatalf("snapshot aliased live state at element %d", j)
		}
	}
}
