package optim

import "math"

// Schedule maps an epoch index to a learning rate. The paper's benchmarks
// use per-task decay schedules (step decay for image classification, warmup
// for large-batch ImageNet runs); these are applied between epochs via
// Optimizer.SetLR.
type Schedule func(epoch int) float64

// ConstantLR returns lr for every epoch.
func ConstantLR(lr float64) Schedule {
	return func(int) float64 { return lr }
}

// StepDecay multiplies the base rate by factor each time an epoch boundary
// in milestones is passed (the classic divide-by-10-at-epoch-k schedule).
func StepDecay(base float64, factor float64, milestones ...int) Schedule {
	return func(epoch int) float64 {
		lr := base
		for _, m := range milestones {
			if epoch >= m {
				lr *= factor
			}
		}
		return lr
	}
}

// ExpDecay decays the base rate by gamma per epoch.
func ExpDecay(base, gamma float64) Schedule {
	return func(epoch int) float64 {
		return base * math.Pow(gamma, float64(epoch))
	}
}

// CosineAnneal decays from base to floor over total epochs along a cosine.
func CosineAnneal(base, floor float64, total int) Schedule {
	return func(epoch int) float64 {
		if total <= 1 {
			return floor
		}
		t := float64(epoch) / float64(total-1)
		if t > 1 {
			t = 1
		}
		return floor + (base-floor)*(1+math.Cos(math.Pi*t))/2
	}
}

// Warmup linearly ramps from 0 to the inner schedule's rate over warm
// epochs, then follows inner.
func Warmup(warm int, inner Schedule) Schedule {
	return func(epoch int) float64 {
		if epoch < warm {
			return inner(epoch) * float64(epoch+1) / float64(warm)
		}
		return inner(epoch)
	}
}
