package optim

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadratic is a convex test problem: f(x) = ½‖x − target‖², ∇f = x − target.
type quadratic struct {
	p      *nn.Param
	target *tensor.Dense
}

func newQuadratic(seed uint64, dim int) *quadratic {
	r := fxrand.New(seed)
	p := nn.NewParam("x", tensor.New(dim).RandN(r, 1))
	return &quadratic{p: p, target: tensor.New(dim).RandN(r, 1)}
}

func (q *quadratic) grad() *tensor.Dense {
	g := q.p.Value.Clone()
	g.Sub(q.target)
	return g
}

func (q *quadratic) dist() float64 {
	d := q.p.Value.Clone()
	d.Sub(q.target)
	return d.Norm2()
}

func converges(t *testing.T, opt Optimizer, seed uint64, steps int) {
	t.Helper()
	q := newQuadratic(seed, 10)
	start := q.dist()
	for i := 0; i < steps; i++ {
		opt.Step([]*nn.Param{q.p}, []*tensor.Dense{q.grad()})
	}
	if q.dist() > start*0.01 {
		t.Fatalf("%s did not converge: %v -> %v", opt.Name(), start, q.dist())
	}
}

func TestSGDConverges(t *testing.T)      { converges(t, NewSGD(0.1), 1, 200) }
func TestMomentumConverges(t *testing.T) { converges(t, NewMomentumSGD(0.05, 0.9), 2, 200) }
func TestNesterovConverges(t *testing.T) { converges(t, NewNesterovSGD(0.05, 0.9), 3, 200) }
func TestAdamConverges(t *testing.T)     { converges(t, NewAdam(0.1), 4, 400) }
func TestRMSPropConverges(t *testing.T)  { converges(t, NewRMSProp(0.05), 5, 500) }
func TestAdaGradConverges(t *testing.T)  { converges(t, NewAdaGrad(0.5), 6, 500) }

func TestSGDKnownStep(t *testing.T) {
	p := nn.NewParam("x", tensor.FromSlice([]float32{1, 2}, 2))
	g := tensor.FromSlice([]float32{10, 20}, 2)
	NewSGD(0.1).Step([]*nn.Param{p}, []*tensor.Dense{g})
	if p.Value.Data()[0] != 0 || math.Abs(float64(p.Value.Data()[1]))-0 > 1e-6 {
		t.Fatalf("SGD step got %v, want [0 0]", p.Value.Data())
	}
}

func TestMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("x", tensor.FromSlice([]float32{0}, 1))
	g := tensor.FromSlice([]float32{1}, 1)
	opt := NewMomentumSGD(1, 0.5)
	opt.Step([]*nn.Param{p}, []*tensor.Dense{g.Clone()})
	// v=1, x=-1
	opt.Step([]*nn.Param{p}, []*tensor.Dense{g.Clone()})
	// v=1.5, x=-2.5
	if math.Abs(float64(p.Value.Data()[0])+2.5) > 1e-6 {
		t.Fatalf("momentum state wrong: x=%v want -2.5", p.Value.Data()[0])
	}
}

func TestWeightDecayShrinks(t *testing.T) {
	p := nn.NewParam("x", tensor.FromSlice([]float32{10}, 1))
	g := tensor.New(1) // zero gradient
	opt := NewSGD(0.1).WithWeightDecay(0.5)
	opt.Step([]*nn.Param{p}, []*tensor.Dense{g})
	if p.Value.Data()[0] >= 10 {
		t.Fatal("weight decay did not shrink the parameter")
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, Adam's first step is ~lr regardless of gradient
	// scale.
	p := nn.NewParam("x", tensor.FromSlice([]float32{0}, 1))
	g := tensor.FromSlice([]float32{1e-3}, 1)
	NewAdam(0.1).Step([]*nn.Param{p}, []*tensor.Dense{g})
	if math.Abs(float64(p.Value.Data()[0])+0.1) > 1e-3 {
		t.Fatalf("Adam first step %v, want ~ -0.1", p.Value.Data()[0])
	}
}

func TestSetLR(t *testing.T) {
	for _, opt := range []Optimizer{NewSGD(0.1), NewAdam(0.1), NewRMSProp(0.1), NewAdaGrad(0.1)} {
		opt.SetLR(0.5)
		if opt.LR() != 0.5 {
			t.Fatalf("%s SetLR failed", opt.Name())
		}
	}
}

func TestOptimizerNames(t *testing.T) {
	names := map[string]Optimizer{
		"sgd":          NewSGD(0.1),
		"momentum-sgd": NewMomentumSGD(0.1, 0.9),
		"nesterov-sgd": NewNesterovSGD(0.1, 0.9),
		"adam":         NewAdam(0.1),
		"rmsprop":      NewRMSProp(0.1),
		"adagrad":      NewAdaGrad(0.1),
	}
	for want, opt := range names {
		if opt.Name() != want {
			t.Fatalf("Name() = %q want %q", opt.Name(), want)
		}
	}
}

func TestStatefulOptimizersTrackParamsByIdentity(t *testing.T) {
	// Two parameters with identical shapes must keep independent state.
	p1 := nn.NewParam("a", tensor.FromSlice([]float32{0}, 1))
	p2 := nn.NewParam("b", tensor.FromSlice([]float32{0}, 1))
	opt := NewAdam(0.1)
	g1 := tensor.FromSlice([]float32{1}, 1)
	g2 := tensor.FromSlice([]float32{-1}, 1)
	for i := 0; i < 10; i++ {
		opt.Step([]*nn.Param{p1, p2}, []*tensor.Dense{g1.Clone(), g2.Clone()})
	}
	if p1.Value.Data()[0] >= 0 || p2.Value.Data()[0] <= 0 {
		t.Fatalf("independent state violated: %v %v", p1.Value.Data()[0], p2.Value.Data()[0])
	}
}
