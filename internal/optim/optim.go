// Package optim implements the stochastic optimizers used by the paper's
// benchmarks: SGD, SGD with (Nesterov) momentum, AdaGrad, RMSProp and ADAM.
//
// GRACE's training loop (Algorithm 1) is optimizer-independent: the optimizer
// consumes the aggregated, decompressed gradient g_k and updates parameters.
// The paper's defaults per task — SGD+momentum for image classification,
// RMSProp for segmentation, ADAM for recommendation, vanilla SGD for language
// modeling — are all available here.
package optim

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters given per-parameter aggregated gradients.
// Step consumes grads[i] as the gradient for params[i].
type Optimizer interface {
	Name() string
	Step(params []*nn.Param, grads []*tensor.Dense)
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
	// LR reports the current learning rate.
	LR() float64
}

// SGD is plain stochastic gradient descent, optionally with momentum and
// Nesterov lookahead, plus decoupled L2 weight decay.
type SGD struct {
	lr          float64
	momentum    float64
	nesterov    bool
	weightDecay float64
	velocity    map[*nn.Param]*tensor.Dense
}

var _ Optimizer = (*SGD)(nil)

// NewSGD returns vanilla SGD.
func NewSGD(lr float64) *SGD { return &SGD{lr: lr} }

// NewMomentumSGD returns SGD with classical momentum.
func NewMomentumSGD(lr, momentum float64) *SGD {
	return &SGD{lr: lr, momentum: momentum, velocity: map[*nn.Param]*tensor.Dense{}}
}

// NewNesterovSGD returns SGD with Nesterov momentum (§II).
func NewNesterovSGD(lr, momentum float64) *SGD {
	s := NewMomentumSGD(lr, momentum)
	s.nesterov = true
	return s
}

// WithWeightDecay sets decoupled L2 weight decay and returns s.
func (s *SGD) WithWeightDecay(wd float64) *SGD {
	s.weightDecay = wd
	return s
}

// Name identifies the optimizer configuration.
func (s *SGD) Name() string {
	switch {
	case s.nesterov:
		return "nesterov-sgd"
	case s.momentum > 0:
		return "momentum-sgd"
	default:
		return "sgd"
	}
}

// SetLR changes the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR reports the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Step applies x ← x − η·(v or g).
func (s *SGD) Step(params []*nn.Param, grads []*tensor.Dense) {
	for i, p := range params {
		g := grads[i]
		if s.weightDecay > 0 {
			g.AddScaled(float32(s.weightDecay), p.Value)
		}
		if s.momentum == 0 {
			p.Value.AddScaled(float32(-s.lr), g)
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		v.Scale(float32(s.momentum)).Add(g)
		if s.nesterov {
			// x ← x − η(g + μv)
			p.Value.AddScaled(float32(-s.lr), g)
			p.Value.AddScaled(float32(-s.lr*s.momentum), v)
		} else {
			p.Value.AddScaled(float32(-s.lr), v)
		}
	}
}

// Adam implements Kingma & Ba [46].
type Adam struct {
	lr, beta1, beta2, eps float64
	t                     int
	m, v                  map[*nn.Param]*tensor.Dense
}

var _ Optimizer = (*Adam)(nil)

// NewAdam returns ADAM with the standard defaults β1=0.9, β2=0.999, ε=1e-8.
func NewAdam(lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: map[*nn.Param]*tensor.Dense{}, v: map[*nn.Param]*tensor.Dense{}}
}

// Name identifies the optimizer.
func (a *Adam) Name() string { return "adam" }

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// Step applies the bias-corrected ADAM update.
func (a *Adam) Step(params []*nn.Param, grads []*tensor.Dense) {
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range params {
		g := grads[i]
		m, ok := a.m[p]
		if !ok {
			m = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = tensor.New(p.Value.Shape()...)
		}
		v := a.v[p]
		md, vd, gd, xd := m.Data(), v.Data(), g.Data(), p.Value.Data()
		b1, b2 := float32(a.beta1), float32(a.beta2)
		for j := range gd {
			md[j] = b1*md[j] + (1-b1)*gd[j]
			vd[j] = b2*vd[j] + (1-b2)*gd[j]*gd[j]
			mHat := float64(md[j]) / c1
			vHat := float64(vd[j]) / c2
			xd[j] -= float32(a.lr * mHat / (math.Sqrt(vHat) + a.eps))
		}
	}
}

// RMSProp implements the running-RMS normalizer used by the paper's
// segmentation benchmark.
type RMSProp struct {
	lr, decay, eps float64
	cache          map[*nn.Param]*tensor.Dense
}

var _ Optimizer = (*RMSProp)(nil)

// NewRMSProp returns RMSProp with decay 0.9 and ε=1e-8.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{lr: lr, decay: 0.9, eps: 1e-8, cache: map[*nn.Param]*tensor.Dense{}}
}

// Name identifies the optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// SetLR changes the learning rate.
func (r *RMSProp) SetLR(lr float64) { r.lr = lr }

// LR reports the current learning rate.
func (r *RMSProp) LR() float64 { return r.lr }

// Step applies the RMSProp update.
func (r *RMSProp) Step(params []*nn.Param, grads []*tensor.Dense) {
	for i, p := range params {
		g := grads[i]
		c, ok := r.cache[p]
		if !ok {
			c = tensor.New(p.Value.Shape()...)
			r.cache[p] = c
		}
		cd, gd, xd := c.Data(), g.Data(), p.Value.Data()
		d := float32(r.decay)
		for j := range gd {
			cd[j] = d*cd[j] + (1-d)*gd[j]*gd[j]
			xd[j] -= float32(r.lr * float64(gd[j]) / (math.Sqrt(float64(cd[j])) + r.eps))
		}
	}
}

// AdaGrad implements Duchi et al. [47].
type AdaGrad struct {
	lr, eps float64
	cache   map[*nn.Param]*tensor.Dense
}

var _ Optimizer = (*AdaGrad)(nil)

// NewAdaGrad returns AdaGrad with ε=1e-8.
func NewAdaGrad(lr float64) *AdaGrad {
	return &AdaGrad{lr: lr, eps: 1e-8, cache: map[*nn.Param]*tensor.Dense{}}
}

// Name identifies the optimizer.
func (a *AdaGrad) Name() string { return "adagrad" }

// SetLR changes the learning rate.
func (a *AdaGrad) SetLR(lr float64) { a.lr = lr }

// LR reports the current learning rate.
func (a *AdaGrad) LR() float64 { return a.lr }

// Step applies the AdaGrad update.
func (a *AdaGrad) Step(params []*nn.Param, grads []*tensor.Dense) {
	for i, p := range params {
		g := grads[i]
		c, ok := a.cache[p]
		if !ok {
			c = tensor.New(p.Value.Shape()...)
			a.cache[p] = c
		}
		cd, gd, xd := c.Data(), g.Data(), p.Value.Data()
		for j := range gd {
			cd[j] += gd[j] * gd[j]
			xd[j] -= float32(a.lr * float64(gd[j]) / (math.Sqrt(float64(cd[j])) + a.eps))
		}
	}
}
