package optim

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// State is a serializable, index-ordered view of an optimizer's evolving
// state. The in-memory representation keys slot tensors by live *nn.Param
// pointers, which neither serializes nor iterates deterministically; State
// re-keys every slot by the parameter's position in the Params() slice, which
// is stable across replicas and across process restarts (models are rebuilt
// in the same layer order from the same seed).
type State struct {
	// Name is the optimizer configuration name (Optimizer.Name()); LoadState
	// refuses state captured from a differently configured optimizer.
	Name string
	// Step is the optimizer's step counter (ADAM's bias-correction t); zero
	// for optimizers without one.
	Step int64
	// Slots holds one entry per state tensor family ("velocity", "m", ...).
	Slots []Slot
}

// Slot is one named family of per-parameter state vectors.
type Slot struct {
	// Name identifies the slot ("velocity", "m", "v", "cache").
	Name string
	// Data[i] is the flat state vector for params[i]; nil when the optimizer
	// has not yet allocated state for that parameter (lazily initialized
	// slots stay nil until the first Step touches the parameter).
	Data [][]float32
}

// Stateful is implemented by optimizers whose state can be exported for
// checkpointing and restored for a bitwise-identical training continuation.
// All optimizers in this package implement it.
type Stateful interface {
	Optimizer
	// State returns a deep copy of the optimizer's state, keyed by position
	// in params. params must be the same slice the optimizer steps over.
	State(params []*nn.Param) State
	// LoadState replaces the optimizer's state with a deep copy of st. The
	// optimizer must be configured identically to the one that produced st
	// (same Name), and every present vector must match its parameter's size.
	LoadState(params []*nn.Param, st State) error
}

var (
	_ Stateful = (*SGD)(nil)
	_ Stateful = (*Adam)(nil)
	_ Stateful = (*RMSProp)(nil)
	_ Stateful = (*AdaGrad)(nil)
)

// exportSlot copies a pointer-keyed slot map into params order.
func exportSlot(name string, params []*nn.Param, m map[*nn.Param]*tensor.Dense) Slot {
	s := Slot{Name: name, Data: make([][]float32, len(params))}
	for i, p := range params {
		if t, ok := m[p]; ok {
			s.Data[i] = append([]float32(nil), t.Data()...)
		}
	}
	return s
}

// importSlot rebuilds a pointer-keyed slot map from an index-ordered slot.
// The destination map is cleared first so stale entries cannot survive.
func importSlot(opt string, params []*nn.Param, m map[*nn.Param]*tensor.Dense, s Slot) error {
	if len(s.Data) != len(params) {
		return fmt.Errorf("optim: %s slot %q has %d entries for %d params", opt, s.Name, len(s.Data), len(params))
	}
	for k := range m {
		delete(m, k)
	}
	for i, p := range params {
		d := s.Data[i]
		if d == nil {
			continue
		}
		if len(d) != p.Value.Size() {
			return fmt.Errorf("optim: %s slot %q param %d (%s): %d elements, want %d",
				opt, s.Name, i, p.Name, len(d), p.Value.Size())
		}
		t := tensor.New(p.Value.Shape()...)
		copy(t.Data(), d)
		m[p] = t
	}
	return nil
}

// findSlot locates a named slot in st.
func findSlot(opt string, st State, name string) (Slot, error) {
	for _, s := range st.Slots {
		if s.Name == name {
			return s, nil
		}
	}
	return Slot{}, fmt.Errorf("optim: %s state is missing slot %q", opt, name)
}

// checkName verifies st was captured from an identically configured optimizer.
func checkName(o Optimizer, st State) error {
	if st.Name != o.Name() {
		return fmt.Errorf("optim: cannot load %q state into %q optimizer", st.Name, o.Name())
	}
	return nil
}

// State exports the momentum velocity (empty for vanilla SGD).
func (s *SGD) State(params []*nn.Param) State {
	st := State{Name: s.Name()}
	if s.momentum != 0 {
		st.Slots = []Slot{exportSlot("velocity", params, s.velocity)}
	}
	return st
}

// LoadState restores the momentum velocity.
func (s *SGD) LoadState(params []*nn.Param, st State) error {
	if err := checkName(s, st); err != nil {
		return err
	}
	if s.momentum == 0 {
		return nil
	}
	slot, err := findSlot(s.Name(), st, "velocity")
	if err != nil {
		return err
	}
	if s.velocity == nil {
		s.velocity = map[*nn.Param]*tensor.Dense{}
	}
	return importSlot(s.Name(), params, s.velocity, slot)
}

// State exports the first/second moment estimates and the step counter.
func (a *Adam) State(params []*nn.Param) State {
	return State{Name: a.Name(), Step: int64(a.t), Slots: []Slot{
		exportSlot("m", params, a.m),
		exportSlot("v", params, a.v),
	}}
}

// LoadState restores the moment estimates and the bias-correction counter.
func (a *Adam) LoadState(params []*nn.Param, st State) error {
	if err := checkName(a, st); err != nil {
		return err
	}
	m, err := findSlot(a.Name(), st, "m")
	if err != nil {
		return err
	}
	v, err := findSlot(a.Name(), st, "v")
	if err != nil {
		return err
	}
	if err := importSlot(a.Name(), params, a.m, m); err != nil {
		return err
	}
	if err := importSlot(a.Name(), params, a.v, v); err != nil {
		return err
	}
	a.t = int(st.Step)
	return nil
}

// State exports the running RMS cache.
func (r *RMSProp) State(params []*nn.Param) State {
	return State{Name: r.Name(), Slots: []Slot{exportSlot("cache", params, r.cache)}}
}

// LoadState restores the running RMS cache.
func (r *RMSProp) LoadState(params []*nn.Param, st State) error {
	if err := checkName(r, st); err != nil {
		return err
	}
	slot, err := findSlot(r.Name(), st, "cache")
	if err != nil {
		return err
	}
	return importSlot(r.Name(), params, r.cache, slot)
}

// State exports the accumulated squared-gradient cache.
func (a *AdaGrad) State(params []*nn.Param) State {
	return State{Name: a.Name(), Slots: []Slot{exportSlot("cache", params, a.cache)}}
}

// LoadState restores the accumulated squared-gradient cache.
func (a *AdaGrad) LoadState(params []*nn.Param, st State) error {
	if err := checkName(a, st); err != nil {
		return err
	}
	slot, err := findSlot(a.Name(), st, "cache")
	if err != nil {
		return err
	}
	return importSlot(a.Name(), params, a.cache, slot)
}
