package nn

import (
	"fmt"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Dense is a fully connected layer: y = x·W + b.
//
// It accepts inputs of any rank >= 1 whose trailing dimension equals the
// input feature count; leading dimensions are flattened into the batch, which
// lets the same layer serve per-timestep projections in recurrent models.
type Dense struct {
	name    string
	in, out int
	w, b    *Param

	x       *tensor.Dense // cached input, flattened to [batch, in]
	inShape []int         // original input shape for gradient reshaping
}

var _ Layer = (*Dense)(nil)

// NewDense builds a Dense layer with Glorot-uniform weights.
func NewDense(name string, in, out int, r *fxrand.RNG) *Dense {
	w := tensor.New(in, out).GlorotInit(r, in, out)
	b := tensor.New(out)
	return &Dense{
		name: name, in: in, out: out,
		w: NewParam(name+".w", w),
		b: NewParam(name+".b", b),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return d.name }

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Forward computes y = x·W + b.
func (d *Dense) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	d.inShape = append(d.inShape[:0], x.Shape()...)
	batch := x.Size() / d.in
	if x.Size()%d.in != 0 {
		panic(fmt.Sprintf("nn: %s: input shape %v incompatible with in=%d", d.name, x.Shape(), d.in))
	}
	flat := x.Reshape(batch, d.in)
	if train {
		d.x = flat
	}
	y := tensor.Matmul(flat, d.w.Value)
	// Add bias row-wise.
	yd, bd := y.Data(), d.b.Value.Data()
	for i := 0; i < batch; i++ {
		row := yd[i*d.out : (i+1)*d.out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	outShape := append(append([]int(nil), d.inShape[:len(d.inShape)-1]...), d.out)
	return y.Reshape(outShape...)
}

// Backward accumulates dW = xᵀ·dY, db = Σ dY and returns dX = dY·Wᵀ.
func (d *Dense) Backward(dout *tensor.Dense) *tensor.Dense {
	batch := dout.Size() / d.out
	dy := dout.Reshape(batch, d.out)
	d.w.Grad.Add(tensor.MatmulTA(d.x, dy))
	gb := d.b.Grad.Data()
	dyd := dy.Data()
	for i := 0; i < batch; i++ {
		row := dyd[i*d.out : (i+1)*d.out]
		for j, v := range row {
			gb[j] += v
		}
	}
	dx := tensor.MatmulTB(dy, d.w.Value)
	return dx.Reshape(d.inShape...)
}
