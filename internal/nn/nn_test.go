package nn

import (
	"math"
	"testing"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

const (
	gcSamples = 12
	gcEps     = 1e-2
	gcTol     = 0.05
)

// runGradCheck wires a layer + MSE loss against a random target and verifies
// analytic gradients against finite differences.
func runGradCheck(t *testing.T, layer Layer, x *tensor.Dense) {
	t.Helper()
	r := fxrand.New(99)
	var target *tensor.Dense

	forward := func() float64 {
		y := layer.Forward(x, true)
		if target == nil {
			target = tensor.New(y.Shape()...).RandN(r, 1)
		}
		loss, _ := MSE(y, target)
		return loss
	}
	// Populate analytic gradients.
	ZeroGrads(layer.Params())
	y := layer.Forward(x, true)
	if target == nil {
		target = tensor.New(y.Shape()...).RandN(r, 1)
	}
	_, dl := MSE(y, target)
	dx := layer.Backward(dl)

	rel, worst := GradCheck(layer.Params(), x, dx, forward, gcSamples, gcEps)
	if rel > gcTol {
		t.Fatalf("%s gradient check failed: rel err %v at %s", layer.Name(), rel, worst)
	}
}

func TestDenseForwardKnown(t *testing.T) {
	r := fxrand.New(1)
	d := NewDense("fc", 2, 2, r)
	d.w.Value.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2))
	d.b.Value.CopyFrom(tensor.FromSlice([]float32{10, 20}, 2))
	y := d.Forward(tensor.FromSlice([]float32{1, 1}, 1, 2), false)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("Dense forward got %v", y.Data())
	}
}

func TestDenseGradients(t *testing.T) {
	r := fxrand.New(2)
	d := NewDense("fc", 5, 4, r)
	x := tensor.New(3, 5).RandN(r, 1)
	runGradCheck(t, d, x)
}

func TestDenseRank3Input(t *testing.T) {
	r := fxrand.New(3)
	d := NewDense("fc", 4, 2, r)
	x := tensor.New(2, 3, 4).RandN(r, 1)
	y := d.Forward(x, true)
	want := []int{2, 3, 2}
	for i, dim := range y.Shape() {
		if dim != want[i] {
			t.Fatalf("rank-3 Dense output shape %v", y.Shape())
		}
	}
	dx := d.Backward(tensor.New(y.Shape()...).RandN(r, 1))
	if !dx.SameShape(x) {
		t.Fatalf("rank-3 Dense dx shape %v", dx.Shape())
	}
}

func TestReLUForwardBackward(t *testing.T) {
	l := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2}, 3)
	y := l.Forward(x, true)
	if y.Data()[0] != 0 || y.Data()[1] != 0 || y.Data()[2] != 2 {
		t.Fatalf("ReLU forward %v", y.Data())
	}
	dx := l.Backward(tensor.FromSlice([]float32{5, 5, 5}, 3))
	if dx.Data()[0] != 0 || dx.Data()[1] != 0 || dx.Data()[2] != 5 {
		t.Fatalf("ReLU backward %v", dx.Data())
	}
}

func TestTanhGradients(t *testing.T) {
	r := fxrand.New(4)
	l := NewTanh("tanh")
	x := tensor.New(2, 6).RandN(r, 1)
	runGradCheck(t, l, x)
}

func TestSigmoidGradients(t *testing.T) {
	r := fxrand.New(5)
	l := NewSigmoid("sig")
	x := tensor.New(2, 6).RandN(r, 1)
	runGradCheck(t, l, x)
}

func TestDropoutEvalPassThrough(t *testing.T) {
	r := fxrand.New(6)
	l := NewDropout("drop", 0.5, r)
	x := tensor.New(100).RandN(r, 1)
	y := l.Forward(x, false)
	for i := range x.Data() {
		if y.Data()[i] != x.Data()[i] {
			t.Fatal("dropout should pass through at eval time")
		}
	}
}

func TestDropoutTrainRate(t *testing.T) {
	r := fxrand.New(7)
	l := NewDropout("drop", 0.3, r)
	x := tensor.New(10000)
	x.Fill(1)
	y := l.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	rate := float64(zeros) / float64(x.Size())
	if math.Abs(rate-0.3) > 0.03 {
		t.Fatalf("dropout rate %v want ~0.3", rate)
	}
	// Inverted dropout keeps the expectation.
	if math.Abs(sum/float64(x.Size())-1) > 0.05 {
		t.Fatalf("dropout mean %v want ~1", sum/float64(x.Size()))
	}
}

func TestConvForwardKnown(t *testing.T) {
	r := fxrand.New(8)
	c := NewConv2D("conv", 1, 1, 2, 1, 0, r)
	// Kernel = all ones, bias 0: output = sum of each 2x2 patch.
	c.w.Value.Fill(1)
	c.b.Value.Zero()
	x := tensor.FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 1, 3, 3)
	y := c.Forward(x, false)
	want := []float32{12, 16, 24, 28}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("conv forward got %v want %v", y.Data(), want)
		}
	}
}

func TestConvPaddingShape(t *testing.T) {
	r := fxrand.New(9)
	c := NewConv2D("conv", 2, 3, 3, 1, 1, r)
	x := tensor.New(2, 2, 8, 8).RandN(r, 1)
	y := c.Forward(x, false)
	want := []int{2, 3, 8, 8}
	for i, d := range y.Shape() {
		if d != want[i] {
			t.Fatalf("same-padding conv shape %v", y.Shape())
		}
	}
}

func TestConvGradients(t *testing.T) {
	r := fxrand.New(10)
	c := NewConv2D("conv", 2, 3, 3, 1, 1, r)
	x := tensor.New(2, 2, 5, 5).RandN(r, 1)
	runGradCheck(t, c, x)
}

func TestConvStride2Gradients(t *testing.T) {
	r := fxrand.New(11)
	c := NewConv2D("conv", 1, 2, 3, 2, 1, r)
	x := tensor.New(1, 1, 6, 6).RandN(r, 1)
	runGradCheck(t, c, x)
}

func TestMaxPoolForward(t *testing.T) {
	m := NewMaxPool2D("pool", 2)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	y := m.Forward(x, true)
	want := []float32{4, 8, 9, 4}
	for i, v := range y.Data() {
		if v != want[i] {
			t.Fatalf("maxpool forward %v want %v", y.Data(), want)
		}
	}
	dx := m.Backward(tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2))
	// Gradient lands exactly on argmax positions.
	var nz int
	for _, v := range dx.Data() {
		if v != 0 {
			nz++
		}
	}
	if nz != 4 {
		t.Fatalf("maxpool backward has %d non-zeros, want 4", nz)
	}
}

func TestMaxPoolGradients(t *testing.T) {
	r := fxrand.New(12)
	m := NewMaxPool2D("pool", 2)
	x := tensor.New(2, 2, 4, 4).RandN(r, 1)
	runGradCheck(t, m, x)
}

func TestUpsampleForwardBackward(t *testing.T) {
	u := NewUpsample2D("up", 2)
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	y := u.Forward(x, true)
	if y.Dim(2) != 4 || y.Dim(3) != 4 {
		t.Fatalf("upsample shape %v", y.Shape())
	}
	if y.At(0, 0, 0, 0) != 1 || y.At(0, 0, 1, 1) != 1 || y.At(0, 0, 2, 3) != 4 {
		t.Fatalf("upsample values wrong: %v", y.Data())
	}
	d := tensor.New(1, 1, 4, 4)
	d.Fill(1)
	dx := u.Backward(d)
	for _, v := range dx.Data() {
		if v != 4 {
			t.Fatalf("upsample backward %v want all 4s", dx.Data())
		}
	}
}

func TestUpsampleGradients(t *testing.T) {
	r := fxrand.New(13)
	u := NewUpsample2D("up", 2)
	x := tensor.New(1, 2, 3, 3).RandN(r, 1)
	runGradCheck(t, u, x)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	r := fxrand.New(14)
	x := tensor.New(2, 3, 4).RandN(r, 1)
	y := f.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 12 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	dx := f.Backward(y.Clone())
	if !dx.SameShape(x) {
		t.Fatalf("flatten backward shape %v", dx.Shape())
	}
}

func TestLSTMShapes(t *testing.T) {
	r := fxrand.New(15)
	l := NewLSTM("lstm", 3, 5, r)
	x := tensor.New(2, 4, 3).RandN(r, 1)
	y := l.Forward(x, true)
	want := []int{2, 4, 5}
	for i, d := range y.Shape() {
		if d != want[i] {
			t.Fatalf("lstm output shape %v", y.Shape())
		}
	}
	dx := l.Backward(tensor.New(2, 4, 5).RandN(r, 1))
	if !dx.SameShape(x) {
		t.Fatalf("lstm dx shape %v", dx.Shape())
	}
}

func TestLSTMGradients(t *testing.T) {
	r := fxrand.New(16)
	l := NewLSTM("lstm", 3, 4, r)
	x := tensor.New(2, 3, 3).RandN(r, 1)
	runGradCheck(t, l, x)
}

func TestLSTMStateless(t *testing.T) {
	// Two identical forward passes must produce identical output (fresh
	// zero state each call).
	r := fxrand.New(17)
	l := NewLSTM("lstm", 2, 3, r)
	x := tensor.New(1, 5, 2).RandN(r, 1)
	y1 := l.Forward(x, false)
	y2 := l.Forward(x, false)
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("LSTM carried state across Forward calls")
		}
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	r := fxrand.New(18)
	e := NewEmbedding("emb", 10, 4, r)
	ids := [][]int{{1, 2}, {2, 3}}
	y := e.ForwardIDs(ids, true)
	if y.Dim(0) != 2 || y.Dim(1) != 2 || y.Dim(2) != 4 {
		t.Fatalf("embedding shape %v", y.Shape())
	}
	// Row 2 appears twice; its gradient must be the sum.
	d := tensor.New(2, 2, 4)
	d.Fill(1)
	e.BackwardIDs(d)
	g := e.w.Grad
	if g.At(2, 0) != 2 {
		t.Fatalf("shared-id gradient %v want 2", g.At(2, 0))
	}
	if g.At(1, 0) != 1 || g.At(3, 0) != 1 {
		t.Fatal("embedding gradient wrong for single-use ids")
	}
	if g.At(0, 0) != 0 {
		t.Fatal("untouched embedding row has gradient")
	}
}

func TestEmbeddingOutOfVocabPanics(t *testing.T) {
	r := fxrand.New(19)
	e := NewEmbedding("emb", 5, 2, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.ForwardIDs([][]int{{5}}, false)
}

func TestSequentialComposition(t *testing.T) {
	r := fxrand.New(20)
	m := NewSequential("mlp",
		NewDense("fc1", 4, 8, r),
		NewReLU("relu1"),
		NewDense("fc2", 8, 2, r),
	)
	if len(m.Params()) != 4 {
		t.Fatalf("Sequential params = %d, want 4", len(m.Params()))
	}
	if NumParams(m.Params()) != 4*8+8+8*2+2 {
		t.Fatalf("NumParams = %d", NumParams(m.Params()))
	}
	x := tensor.New(3, 4).RandN(r, 1)
	runGradCheck(t, m, x)
}

func TestZeroGrads(t *testing.T) {
	r := fxrand.New(21)
	d := NewDense("fc", 2, 2, r)
	d.w.Grad.Fill(5)
	ZeroGrads(d.Params())
	if d.w.Grad.Sum() != 0 {
		t.Fatal("ZeroGrads did not clear")
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform CE loss %v want %v", loss, math.Log(4))
	}
	// Gradient sums to zero.
	if math.Abs(grad.Sum()) > 1e-6 {
		t.Fatalf("CE gradient sum %v", grad.Sum())
	}
	if grad.At(0, 2) >= 0 {
		t.Fatal("gradient at true label must be negative")
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	r := fxrand.New(22)
	logits := tensor.New(3, 5).RandN(r, 1)
	labels := []int{1, 0, 4}
	_, analytic := SoftmaxCrossEntropy(logits, labels)
	const eps = 1e-3
	for i := 0; i < logits.Size(); i += 2 {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data()[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(analytic.Data()[i])) > 1e-3 {
			t.Fatalf("CE gradient mismatch at %d: numeric %v analytic %v", i, numeric, analytic.Data()[i])
		}
	}
}

func TestBCEWithLogitsGradient(t *testing.T) {
	r := fxrand.New(23)
	logits := tensor.New(10).RandN(r, 2)
	targets := tensor.New(10).RandU(r, 0, 1)
	_, analytic := BCEWithLogits(logits, targets)
	const eps = 1e-3
	for i := 0; i < 10; i++ {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + eps
		lp, _ := BCEWithLogits(logits, targets)
		logits.Data()[i] = orig - eps
		lm, _ := BCEWithLogits(logits, targets)
		logits.Data()[i] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(analytic.Data()[i])) > 1e-3 {
			t.Fatalf("BCE gradient mismatch at %d", i)
		}
	}
}

func TestBCEStableAtExtremes(t *testing.T) {
	logits := tensor.FromSlice([]float32{50, -50}, 2)
	targets := tensor.FromSlice([]float32{1, 0}, 2)
	loss, _ := BCEWithLogits(logits, targets)
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 1e-6 {
		t.Fatalf("BCE unstable at extremes: %v", loss)
	}
}

func TestMSEKnown(t *testing.T) {
	p := tensor.FromSlice([]float32{1, 2}, 2)
	q := tensor.FromSlice([]float32{0, 0}, 2)
	loss, grad := MSE(p, q)
	if loss != 2.5 {
		t.Fatalf("MSE %v want 2.5", loss)
	}
	if grad.Data()[0] != 1 || grad.Data()[1] != 2 {
		t.Fatalf("MSE grad %v", grad.Data())
	}
}

func TestArgmaxRows(t *testing.T) {
	logits := tensor.FromSlice([]float32{1, 3, 2, 9, 0, 1}, 2, 3)
	got := ArgmaxRows(logits, 2)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgmaxRows %v", got)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	// End-to-end sanity: a small MLP fits random-but-separable data with SGD.
	r := fxrand.New(42)
	m := NewSequential("mlp",
		NewDense("fc1", 2, 16, r),
		NewTanh("t1"),
		NewDense("fc2", 16, 2, r),
	)
	// Two Gaussian blobs.
	const n = 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		labels[i] = c
		x.Set(r.NormFloat32()*0.5+float32(2*c-1), i, 0)
		x.Set(r.NormFloat32()*0.5+float32(2*c-1), i, 1)
	}
	var first, last float64
	for step := 0; step < 200; step++ {
		ZeroGrads(m.Params())
		y := m.Forward(x, true)
		loss, dl := SoftmaxCrossEntropy(y, labels)
		m.Backward(dl)
		for _, p := range m.Params() {
			p.Value.AddScaled(-0.5, p.Grad)
		}
		if step == 0 {
			first = loss
		}
		last = loss
	}
	if last > first/10 {
		t.Fatalf("training did not reduce loss: %v -> %v", first, last)
	}
}

func BenchmarkDenseForward(b *testing.B) {
	r := fxrand.New(1)
	d := NewDense("fc", 256, 256, r)
	x := tensor.New(32, 256).RandN(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Forward(x, true)
	}
}

func BenchmarkConvForward(b *testing.B) {
	r := fxrand.New(1)
	c := NewConv2D("conv", 8, 16, 3, 1, 1, r)
	x := tensor.New(8, 8, 16, 16).RandN(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(x, true)
	}
}

func BenchmarkLSTMForwardBackward(b *testing.B) {
	r := fxrand.New(1)
	l := NewLSTM("lstm", 32, 64, r)
	x := tensor.New(8, 16, 32).RandN(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := l.Forward(x, true)
		l.Backward(y)
	}
}
