package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy of logits [N, classes]
// against integer labels, returning the loss and d(loss)/d(logits).
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int) (float64, *tensor.Dense) {
	n := len(labels)
	classes := logits.Size() / n
	if logits.Size() != n*classes {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v vs %d labels", logits.Shape(), n))
	}
	dl := tensor.New(logits.Shape()...)
	ld, dd := logits.Data(), dl.Data()
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*classes : (i+1)*classes]
		drow := dd[i*classes : (i+1)*classes]
		// Stable softmax.
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - max))
			drow[j] = float32(e)
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= classes {
			panic(fmt.Sprintf("nn: label %d out of %d classes", label, classes))
		}
		p := float64(drow[label]) / sum
		loss -= math.Log(math.Max(p, 1e-12)) * inv
		for j := range drow {
			drow[j] = float32((float64(drow[j])/sum - b2f(j == label)) * inv)
		}
	}
	return loss, dl
}

// BCEWithLogits computes the mean binary cross-entropy of logits against
// targets in [0,1], returning the loss and d(loss)/d(logits). The gradient
// uses the numerically exact σ(x)−t form.
func BCEWithLogits(logits, targets *tensor.Dense) (float64, *tensor.Dense) {
	if logits.Size() != targets.Size() {
		panic("nn: BCEWithLogits size mismatch")
	}
	n := logits.Size()
	dl := tensor.New(logits.Shape()...)
	ld, td, dd := logits.Data(), targets.Data(), dl.Data()
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		x, t := float64(ld[i]), float64(td[i])
		// log(1+exp(x)) computed stably.
		var softplus float64
		if x > 0 {
			softplus = x + math.Log1p(math.Exp(-x))
		} else {
			softplus = math.Log1p(math.Exp(x))
		}
		loss += (softplus - t*x) * inv
		s := 1 / (1 + math.Exp(-x))
		dd[i] = float32((s - t) * inv)
	}
	return loss, dl
}

// MSE computes the mean squared error and its gradient w.r.t. predictions.
func MSE(pred, target *tensor.Dense) (float64, *tensor.Dense) {
	if pred.Size() != target.Size() {
		panic("nn: MSE size mismatch")
	}
	n := pred.Size()
	dl := tensor.New(pred.Shape()...)
	pd, td, dd := pred.Data(), target.Data(), dl.Data()
	var loss float64
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		diff := float64(pd[i]) - float64(td[i])
		loss += diff * diff * inv
		dd[i] = float32(2 * diff * inv)
	}
	return loss, dl
}

// ArgmaxRows returns the argmax of each row of a [N, classes] tensor.
func ArgmaxRows(logits *tensor.Dense, n int) []int {
	classes := logits.Size() / n
	out := make([]int, n)
	ld := logits.Data()
	for i := 0; i < n; i++ {
		row := ld[i*classes : (i+1)*classes]
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
