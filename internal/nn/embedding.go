package nn

import (
	"fmt"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Embedding maps integer ids to dense vectors. Models call ForwardIDs /
// BackwardIDs directly (ids are not float tensors); the Layer interface is
// implemented so embeddings participate in parameter collection, but
// Forward/Backward panic if used with float inputs.
//
// The gradient is materialized densely over the full table. That matches the
// paper's setup: NCF's large embedding layers dominate its communicated
// gradient volume, which is what makes the recommendation benchmark
// communication-bound (§V-B).
type Embedding struct {
	name       string
	vocab, dim int
	w          *Param

	ids [][]int
}

var _ Layer = (*Embedding)(nil)

// NewEmbedding builds an embedding table with N(0, 0.05²) init.
func NewEmbedding(name string, vocab, dim int, r *fxrand.RNG) *Embedding {
	w := tensor.New(vocab, dim).RandN(r, 0.05)
	return &Embedding{name: name, vocab: vocab, dim: dim, w: NewParam(name+".w", w)}
}

// Name returns the layer name.
func (e *Embedding) Name() string { return e.name }

// Params returns the embedding table parameter.
func (e *Embedding) Params() []*Param { return []*Param{e.w} }

// Dim returns the embedding dimensionality.
func (e *Embedding) Dim() int { return e.dim }

// Forward panics; use ForwardIDs.
func (e *Embedding) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	panic(fmt.Sprintf("nn: %s: Embedding requires ForwardIDs, not Forward", e.name))
}

// Backward panics; use BackwardIDs.
func (e *Embedding) Backward(dout *tensor.Dense) *tensor.Dense {
	panic(fmt.Sprintf("nn: %s: Embedding requires BackwardIDs, not Backward", e.name))
}

// ForwardIDs gathers rows for a [batch][seq] id matrix, producing
// [batch, seq, dim] (or [batch, dim] when every row has length 1 is NOT
// special-cased; callers reshape as needed).
func (e *Embedding) ForwardIDs(ids [][]int, train bool) *tensor.Dense {
	b := len(ids)
	seq := len(ids[0])
	if train {
		e.ids = ids
	}
	out := tensor.New(b, seq, e.dim)
	od, wd := out.Data(), e.w.Value.Data()
	for i, row := range ids {
		if len(row) != seq {
			panic(fmt.Sprintf("nn: %s: ragged id rows (%d vs %d)", e.name, len(row), seq))
		}
		for t, id := range row {
			if id < 0 || id >= e.vocab {
				panic(fmt.Sprintf("nn: %s: id %d out of vocab %d", e.name, id, e.vocab))
			}
			copy(od[(i*seq+t)*e.dim:(i*seq+t+1)*e.dim], wd[id*e.dim:(id+1)*e.dim])
		}
	}
	return out
}

// BackwardIDs scatter-adds dout ([batch, seq, dim]) into the table gradient.
func (e *Embedding) BackwardIDs(dout *tensor.Dense) {
	gd, dd := e.w.Grad.Data(), dout.Data()
	seq := len(e.ids[0])
	for i, row := range e.ids {
		for t, id := range row {
			src := dd[(i*seq+t)*e.dim : (i*seq+t+1)*e.dim]
			dst := gd[id*e.dim : (id+1)*e.dim]
			for j, v := range src {
				dst[j] += v
			}
		}
	}
}
