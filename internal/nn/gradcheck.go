package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// GradCheck numerically verifies a layer's analytic gradients by central
// finite differences. lossFn must run a fresh forward pass (train=true) and
// return a scalar loss; GradCheck perturbs each sampled coordinate of every
// parameter and of the input tensor (if x is non-nil), compares against the
// analytic gradients that backFn populates, and returns the worst relative
// error encountered.
//
// Float32 parameters limit the usable step size; eps around 1e-2..1e-3 with a
// tolerance of a few percent is the realistic regime.
func GradCheck(params []*Param, x *tensor.Dense, analyticDX *tensor.Dense, lossFn func() float64, samplesPerTensor int, eps float64) (maxRelErr float64, worst string) {
	check := func(value *tensor.Dense, grad *tensor.Dense, name string) {
		n := value.Size()
		stride := n / samplesPerTensor
		if stride == 0 {
			stride = 1
		}
		for i := 0; i < n; i += stride {
			orig := value.Data()[i]
			value.Data()[i] = orig + float32(eps)
			lp := lossFn()
			value.Data()[i] = orig - float32(eps)
			lm := lossFn()
			value.Data()[i] = orig
			numeric := (lp - lm) / (2 * eps)
			analytic := float64(grad.Data()[i])
			denom := maxAbs(numeric, analytic)
			if denom < 1e-5 {
				continue // both effectively zero
			}
			rel := absf(numeric-analytic) / denom
			if rel > maxRelErr {
				maxRelErr = rel
				worst = fmt.Sprintf("%s[%d]: numeric %v analytic %v", name, i, numeric, analytic)
			}
		}
	}
	for _, p := range params {
		check(p.Value, p.Grad, p.Name)
	}
	if x != nil && analyticDX != nil {
		check(x, analyticDX, "input")
	}
	return maxRelErr, worst
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func maxAbs(a, b float64) float64 {
	a, b = absf(a), absf(b)
	if a > b {
		return a
	}
	return b
}
