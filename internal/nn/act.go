package nn

import (
	"math"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	name string
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU returns a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer name.
func (l *ReLU) Name() string { return l.name }

// Params returns nil; ReLU has no parameters.
func (l *ReLU) Params() []*Param { return nil }

// Forward clamps negatives to zero, remembering the mask for Backward.
func (l *ReLU) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	y := x.Clone()
	if train {
		if cap(l.mask) < y.Size() {
			l.mask = make([]bool, y.Size())
		}
		l.mask = l.mask[:y.Size()]
	}
	for i, v := range y.Data() {
		pos := v > 0
		if train {
			l.mask[i] = pos
		}
		if !pos {
			y.Data()[i] = 0
		}
	}
	return y
}

// Backward zeroes gradients where the input was non-positive.
func (l *ReLU) Backward(dout *tensor.Dense) *tensor.Dense {
	dx := dout.Clone()
	for i := range dx.Data() {
		if !l.mask[i] {
			dx.Data()[i] = 0
		}
	}
	return dx
}

// Tanh applies tanh elementwise.
type Tanh struct {
	name string
	y    *tensor.Dense
}

var _ Layer = (*Tanh)(nil)

// NewTanh returns a Tanh activation layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name returns the layer name.
func (l *Tanh) Name() string { return l.name }

// Params returns nil; Tanh has no parameters.
func (l *Tanh) Params() []*Param { return nil }

// Forward computes tanh(x), caching the output for Backward.
func (l *Tanh) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	y := x.Clone().Apply(tanh32)
	if train {
		l.y = y
	}
	return y
}

// Backward computes dx = dout * (1 - y²).
func (l *Tanh) Backward(dout *tensor.Dense) *tensor.Dense {
	dx := dout.Clone()
	yd := l.y.Data()
	for i := range dx.Data() {
		dx.Data()[i] *= 1 - yd[i]*yd[i]
	}
	return dx
}

// Sigmoid applies the logistic function elementwise.
type Sigmoid struct {
	name string
	y    *tensor.Dense
}

var _ Layer = (*Sigmoid)(nil)

// NewSigmoid returns a Sigmoid activation layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name returns the layer name.
func (l *Sigmoid) Name() string { return l.name }

// Params returns nil; Sigmoid has no parameters.
func (l *Sigmoid) Params() []*Param { return nil }

// Forward computes σ(x), caching the output for Backward.
func (l *Sigmoid) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	y := x.Clone().Apply(sigmoid32)
	if train {
		l.y = y
	}
	return y
}

// Backward computes dx = dout * y(1-y).
func (l *Sigmoid) Backward(dout *tensor.Dense) *tensor.Dense {
	dx := dout.Clone()
	yd := l.y.Data()
	for i := range dx.Data() {
		dx.Data()[i] *= yd[i] * (1 - yd[i])
	}
	return dx
}

// Dropout zeroes activations with probability p during training, scaling the
// survivors by 1/(1-p) (inverted dropout). Evaluation passes through.
type Dropout struct {
	name string
	p    float32
	rng  *fxrand.RNG
	mask []float32
}

var _ Layer = (*Dropout)(nil)

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(name string, p float32, r *fxrand.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability out of [0,1)")
	}
	return &Dropout{name: name, p: p, rng: r}
}

// Name returns the layer name.
func (l *Dropout) Name() string { return l.name }

// Params returns nil; Dropout has no parameters.
func (l *Dropout) Params() []*Param { return nil }

// Forward applies inverted dropout in training mode.
func (l *Dropout) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if !train || l.p == 0 {
		return x.Clone()
	}
	if cap(l.mask) < x.Size() {
		l.mask = make([]float32, x.Size())
	}
	l.mask = l.mask[:x.Size()]
	scale := 1 / (1 - l.p)
	y := x.Clone()
	for i := range y.Data() {
		if l.rng.Float32() < l.p {
			l.mask[i] = 0
			y.Data()[i] = 0
		} else {
			l.mask[i] = scale
			y.Data()[i] *= scale
		}
	}
	return y
}

// Backward scales gradients by the saved mask.
func (l *Dropout) Backward(dout *tensor.Dense) *tensor.Dense {
	dx := dout.Clone()
	for i := range dx.Data() {
		dx.Data()[i] *= l.mask[i]
	}
	return dx
}

func tanh32(x float32) float32 { return float32(math.Tanh(float64(x))) }

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
