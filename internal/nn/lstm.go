package nn

import (
	"fmt"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network [63] processing
// [batch, time, in] inputs into [batch, time, hidden] outputs with full
// backpropagation through time. The initial state is zero each sequence.
//
// Gate layout within the 4H-wide projections is [i | f | o | g].
type LSTM struct {
	name       string
	in, hidden int
	wx, wh, b  *Param

	// Per-timestep caches for BPTT.
	steps []lstmStep
	batch int
	timeT int
}

type lstmStep struct {
	x, hPrev, cPrev      *tensor.Dense // [B,in], [B,H], [B,H]
	i, f, o, g, c, tanhC *tensor.Dense // [B,H] each
}

var _ Layer = (*LSTM)(nil)

// NewLSTM builds an LSTM with Glorot input weights, orthogonal-ish recurrent
// weights (Glorot is sufficient at this scale) and forget-gate bias 1.
func NewLSTM(name string, in, hidden int, r *fxrand.RNG) *LSTM {
	wx := tensor.New(in, 4*hidden).GlorotInit(r, in, hidden)
	wh := tensor.New(hidden, 4*hidden).GlorotInit(r, hidden, hidden)
	b := tensor.New(4 * hidden)
	for j := hidden; j < 2*hidden; j++ {
		b.Data()[j] = 1 // forget gate bias
	}
	return &LSTM{
		name: name, in: in, hidden: hidden,
		wx: NewParam(name+".wx", wx),
		wh: NewParam(name+".wh", wh),
		b:  NewParam(name+".b", b),
	}
}

// Name returns the layer name.
func (l *LSTM) Name() string { return l.name }

// Params returns input weights, recurrent weights and bias.
func (l *LSTM) Params() []*Param { return []*Param{l.wx, l.wh, l.b} }

// Forward runs the recurrence over the time dimension.
func (l *LSTM) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if x.Rank() != 3 || x.Dim(2) != l.in {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [B,T,%d]", l.name, x.Shape(), l.in))
	}
	b, T := x.Dim(0), x.Dim(1)
	l.batch, l.timeT = b, T
	l.steps = l.steps[:0]
	h := tensor.New(b, l.hidden)
	c := tensor.New(b, l.hidden)
	out := tensor.New(b, T, l.hidden)

	for t := 0; t < T; t++ {
		xt := sliceTime(x, t) // [B,in]
		z := tensor.Matmul(xt, l.wx.Value)
		z.Add(tensor.Matmul(h, l.wh.Value))
		// Add bias.
		zd, bd := z.Data(), l.b.Value.Data()
		for r := 0; r < b; r++ {
			row := zd[r*4*l.hidden : (r+1)*4*l.hidden]
			for j := range row {
				row[j] += bd[j]
			}
		}
		H := l.hidden
		i := tensor.New(b, H)
		f := tensor.New(b, H)
		o := tensor.New(b, H)
		g := tensor.New(b, H)
		cNew := tensor.New(b, H)
		tanhC := tensor.New(b, H)
		hNew := tensor.New(b, H)
		for r := 0; r < b; r++ {
			zr := zd[r*4*H : (r+1)*4*H]
			for j := 0; j < H; j++ {
				iv := sigmoid32(zr[j])
				fv := sigmoid32(zr[H+j])
				ov := sigmoid32(zr[2*H+j])
				gv := tanh32(zr[3*H+j])
				cv := fv*c.Data()[r*H+j] + iv*gv
				tc := tanh32(cv)
				i.Data()[r*H+j] = iv
				f.Data()[r*H+j] = fv
				o.Data()[r*H+j] = ov
				g.Data()[r*H+j] = gv
				cNew.Data()[r*H+j] = cv
				tanhC.Data()[r*H+j] = tc
				hNew.Data()[r*H+j] = ov * tc
			}
		}
		if train {
			l.steps = append(l.steps, lstmStep{
				x: xt, hPrev: h, cPrev: c,
				i: i, f: f, o: o, g: g, c: cNew, tanhC: tanhC,
			})
		}
		h, c = hNew, cNew
		// Write h into out[:, t, :].
		for r := 0; r < b; r++ {
			copy(out.Data()[(r*T+t)*l.hidden:(r*T+t+1)*l.hidden], h.Data()[r*l.hidden:(r+1)*l.hidden])
		}
	}
	return out
}

// Backward performs truncated-free full BPTT and returns d(input).
func (l *LSTM) Backward(dout *tensor.Dense) *tensor.Dense {
	b, T, H := l.batch, l.timeT, l.hidden
	dx := tensor.New(b, T, l.in)
	dhNext := tensor.New(b, H)
	dcNext := tensor.New(b, H)

	for t := T - 1; t >= 0; t-- {
		st := l.steps[t]
		dz := tensor.New(b, 4*H)
		dzd := dz.Data()
		for r := 0; r < b; r++ {
			for j := 0; j < H; j++ {
				k := r*H + j
				dh := dout.Data()[(r*T+t)*H+j] + dhNext.Data()[k]
				do := dh * st.tanhC.Data()[k]
				dc := dcNext.Data()[k] + dh*st.o.Data()[k]*(1-st.tanhC.Data()[k]*st.tanhC.Data()[k])
				di := dc * st.g.Data()[k]
				df := dc * st.cPrev.Data()[k]
				dg := dc * st.i.Data()[k]
				dcNext.Data()[k] = dc * st.f.Data()[k]
				iv, fv, ov, gv := st.i.Data()[k], st.f.Data()[k], st.o.Data()[k], st.g.Data()[k]
				zr := dzd[r*4*H:]
				zr[j] = di * iv * (1 - iv)
				zr[H+j] = df * fv * (1 - fv)
				zr[2*H+j] = do * ov * (1 - ov)
				zr[3*H+j] = dg * (1 - gv*gv)
			}
		}
		l.wx.Grad.Add(tensor.MatmulTA(st.x, dz))
		l.wh.Grad.Add(tensor.MatmulTA(st.hPrev, dz))
		gb := l.b.Grad.Data()
		for r := 0; r < b; r++ {
			row := dzd[r*4*H : (r+1)*4*H]
			for j, v := range row {
				gb[j] += v
			}
		}
		dxt := tensor.MatmulTB(dz, l.wx.Value) // [B,in]
		for r := 0; r < b; r++ {
			copy(dx.Data()[(r*T+t)*l.in:(r*T+t+1)*l.in], dxt.Data()[r*l.in:(r+1)*l.in])
		}
		dhNext = tensor.MatmulTB(dz, l.wh.Value)
	}
	return dx
}

// sliceTime extracts x[:, t, :] from a [B,T,F] tensor as a [B,F] copy.
func sliceTime(x *tensor.Dense, t int) *tensor.Dense {
	b, T, f := x.Dim(0), x.Dim(1), x.Dim(2)
	out := tensor.New(b, f)
	for r := 0; r < b; r++ {
		copy(out.Data()[r*f:(r+1)*f], x.Data()[(r*T+t)*f:(r*T+t+1)*f])
	}
	return out
}
