// Package nn implements the neural-network substrate: layers with
// hand-written backpropagation, parameter containers, and loss functions.
//
// This replaces the TensorFlow/PyTorch autograd stack the paper builds on.
// The contract mirrors what GRACE needs from a toolkit: after a
// forward/backward pass, every trainable parameter exposes a dense float32
// gradient tensor (one "gradient vector" per parameter, in the paper's
// Table II terminology) that the compression pipeline consumes layer-wise.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter with its accumulated gradient.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a parameter and matching zero gradient.
func NewParam(name string, value *tensor.Dense) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// Layer is a differentiable module.
//
// Forward consumes the input and caches whatever Backward needs; Backward
// consumes the gradient w.r.t. the layer output, accumulates parameter
// gradients, and returns the gradient w.r.t. the layer input. Layers are
// stateful across a single forward/backward pair and not safe for concurrent
// use; each distributed worker owns its own replica.
type Layer interface {
	Name() string
	Forward(x *tensor.Dense, train bool) *tensor.Dense
	Backward(dout *tensor.Dense) *tensor.Dense
	Params() []*Param
}

// Sequential chains layers.
type Sequential struct {
	name   string
	layers []Layer
}

var _ Layer = (*Sequential)(nil)

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name returns the chain's name.
func (s *Sequential) Name() string { return s.name }

// Layers returns the underlying layers in order.
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward runs the chain front to back.
func (s *Sequential) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	for _, l := range s.layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the chain back to front.
func (s *Sequential) Backward(dout *tensor.Dense) *tensor.Dense {
	for i := len(s.layers) - 1; i >= 0; i-- {
		dout = s.layers[i].Backward(dout)
	}
	return dout
}

// Params returns all parameters in layer order.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of scalar parameters, the paper's
// "training parameters" column in Table II.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Size()
	}
	return n
}

// CheckedShape panics with a descriptive message unless x has the expected
// trailing feature size; used by layers to fail fast on wiring bugs.
func CheckedShape(x *tensor.Dense, features int, layer string) (batch int) {
	sz := x.Size()
	if features == 0 || sz%features != 0 {
		panic(fmt.Sprintf("nn: %s: input %v not divisible into features of %d", layer, x.Shape(), features))
	}
	return sz / features
}
