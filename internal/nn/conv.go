package nn

import (
	"fmt"
	"math"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [batch, channels, height, width] inputs,
// implemented with im2col + matrix multiply (the standard CPU lowering).
type Conv2D struct {
	name                string
	inC, outC           int
	kh, kw, stride, pad int
	w, b                *Param

	x    *tensor.Dense // cached input
	cols []*tensor.Dense
	outH int
	outW int
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D builds a convolution with He-normal weights.
func NewConv2D(name string, inC, outC, kernel, stride, pad int, r *fxrand.RNG) *Conv2D {
	w := tensor.New(inC*kernel*kernel, outC).HeInit(r, inC*kernel*kernel)
	b := tensor.New(outC)
	return &Conv2D{
		name: name, inC: inC, outC: outC,
		kh: kernel, kw: kernel, stride: stride, pad: pad,
		w: NewParam(name+".w", w),
		b: NewParam(name+".b", b),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.w, c.b} }

// OutSize returns the spatial output size for an input of h×w.
func (c *Conv2D) OutSize(h, w int) (int, int) {
	oh := (h+2*c.pad-c.kh)/c.stride + 1
	ow := (w+2*c.pad-c.kw)/c.stride + 1
	return oh, ow
}

// Forward computes the convolution.
func (c *Conv2D) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if x.Rank() != 4 || x.Dim(1) != c.inC {
		panic(fmt.Sprintf("nn: %s: input shape %v, want [B,%d,H,W]", c.name, x.Shape(), c.inC))
	}
	b, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	oh, ow := c.OutSize(h, w)
	c.outH, c.outW = oh, ow
	if train {
		c.x = x
		c.cols = c.cols[:0]
	}
	out := tensor.New(b, c.outC, oh, ow)
	for s := 0; s < b; s++ {
		col := c.im2col(x, s, h, w, oh, ow)
		if train {
			c.cols = append(c.cols, col)
		}
		y := tensor.Matmul(col, c.w.Value) // [oh*ow, outC]
		// Scatter into [outC, oh, ow] layout with bias.
		yd := y.Data()
		bd := c.b.Value.Data()
		od := out.Data()[s*c.outC*oh*ow:]
		for pix := 0; pix < oh*ow; pix++ {
			row := yd[pix*c.outC : (pix+1)*c.outC]
			for oc, v := range row {
				od[oc*oh*ow+pix] = v + bd[oc]
			}
		}
	}
	return out
}

// im2col extracts sliding patches of sample s into [oh*ow, inC*kh*kw].
func (c *Conv2D) im2col(x *tensor.Dense, s, h, w, oh, ow int) *tensor.Dense {
	patch := c.inC * c.kh * c.kw
	col := tensor.New(oh*ow, patch)
	xd := x.Data()[s*c.inC*h*w:]
	cd := col.Data()
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			base := (oy*ow + ox) * patch
			iy0 := oy*c.stride - c.pad
			ix0 := ox*c.stride - c.pad
			p := base
			for ic := 0; ic < c.inC; ic++ {
				plane := xd[ic*h*w:]
				for ky := 0; ky < c.kh; ky++ {
					iy := iy0 + ky
					for kx := 0; kx < c.kw; kx++ {
						ix := ix0 + kx
						if iy >= 0 && iy < h && ix >= 0 && ix < w {
							cd[p] = plane[iy*w+ix]
						}
						p++
					}
				}
			}
		}
	}
	return col
}

// Backward accumulates kernel/bias gradients and returns dX.
func (c *Conv2D) Backward(dout *tensor.Dense) *tensor.Dense {
	b, h, w := c.x.Dim(0), c.x.Dim(2), c.x.Dim(3)
	oh, ow := c.outH, c.outW
	dx := tensor.New(b, c.inC, h, w)
	patch := c.inC * c.kh * c.kw
	gb := c.b.Grad.Data()
	for s := 0; s < b; s++ {
		// Gather dY of sample s into [oh*ow, outC].
		dy := tensor.New(oh*ow, c.outC)
		dd := dout.Data()[s*c.outC*oh*ow:]
		dyd := dy.Data()
		for oc := 0; oc < c.outC; oc++ {
			plane := dd[oc*oh*ow:]
			for pix := 0; pix < oh*ow; pix++ {
				v := plane[pix]
				dyd[pix*c.outC+oc] = v
				gb[oc] += v
			}
		}
		c.w.Grad.Add(tensor.MatmulTA(c.cols[s], dy))
		dcol := tensor.MatmulTB(dy, c.w.Value) // [oh*ow, patch]
		// col2im: scatter-add patches back into dx.
		dcd := dcol.Data()
		dxd := dx.Data()[s*c.inC*h*w:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				base := (oy*ow + ox) * patch
				iy0 := oy*c.stride - c.pad
				ix0 := ox*c.stride - c.pad
				p := base
				for ic := 0; ic < c.inC; ic++ {
					plane := dxd[ic*h*w:]
					for ky := 0; ky < c.kh; ky++ {
						iy := iy0 + ky
						for kx := 0; kx < c.kw; kx++ {
							ix := ix0 + kx
							if iy >= 0 && iy < h && ix >= 0 && ix < w {
								plane[iy*w+ix] += dcd[p]
							}
							p++
						}
					}
				}
			}
		}
	}
	return dx
}

// MaxPool2D performs non-overlapping max pooling with a square window.
type MaxPool2D struct {
	name   string
	size   int
	argmax []int
	inDims [4]int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D returns a max-pool layer with the given window/stride.
func NewMaxPool2D(name string, size int) *MaxPool2D {
	return &MaxPool2D{name: name, size: size}
}

// Name returns the layer name.
func (m *MaxPool2D) Name() string { return m.name }

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// Forward computes the pooled output, recording argmax positions.
func (m *MaxPool2D) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	b, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh, ow := h/m.size, w/m.size
	m.inDims = [4]int{b, ch, h, w}
	out := tensor.New(b, ch, oh, ow)
	if cap(m.argmax) < out.Size() {
		m.argmax = make([]int, out.Size())
	}
	m.argmax = m.argmax[:out.Size()]
	xd, od := x.Data(), out.Data()
	oi := 0
	for s := 0; s < b; s++ {
		for c := 0; c < ch; c++ {
			plane := xd[(s*ch+c)*h*w:]
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := float32(math.Inf(-1))
					bestIdx := 0
					for ky := 0; ky < m.size; ky++ {
						for kx := 0; kx < m.size; kx++ {
							idx := (oy*m.size+ky)*w + ox*m.size + kx
							if plane[idx] > best {
								best = plane[idx]
								bestIdx = idx
							}
						}
					}
					od[oi] = best
					m.argmax[oi] = (s*ch+c)*h*w + bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2D) Backward(dout *tensor.Dense) *tensor.Dense {
	dx := tensor.New(m.inDims[0], m.inDims[1], m.inDims[2], m.inDims[3])
	dd, dxd := dout.Data(), dx.Data()
	for i, v := range dd {
		dxd[m.argmax[i]] += v
	}
	return dx
}

// Flatten reshapes [B, ...] to [B, features].
type Flatten struct {
	name    string
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten returns a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer name.
func (f *Flatten) Name() string { return f.name }

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Forward flattens all but the leading dimension.
func (f *Flatten) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	f.inShape = append(f.inShape[:0], x.Shape()...)
	b := x.Dim(0)
	return x.Reshape(b, x.Size()/b)
}

// Backward restores the original shape.
func (f *Flatten) Backward(dout *tensor.Dense) *tensor.Dense {
	return dout.Reshape(f.inShape...)
}

// Upsample2D nearest-neighbour upsamples spatial dimensions by an integer
// factor; the decoder half of the segmentation network uses it in place of
// U-Net's transposed convolutions.
type Upsample2D struct {
	name   string
	factor int
	inDims [4]int
}

var _ Layer = (*Upsample2D)(nil)

// NewUpsample2D returns a nearest-neighbour upsampling layer.
func NewUpsample2D(name string, factor int) *Upsample2D {
	return &Upsample2D{name: name, factor: factor}
}

// Name returns the layer name.
func (u *Upsample2D) Name() string { return u.name }

// Params returns nil; upsampling has no parameters.
func (u *Upsample2D) Params() []*Param { return nil }

// Forward replicates each pixel factor×factor times.
func (u *Upsample2D) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	b, ch, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	u.inDims = [4]int{b, ch, h, w}
	f := u.factor
	out := tensor.New(b, ch, h*f, w*f)
	xd, od := x.Data(), out.Data()
	for p := 0; p < b*ch; p++ {
		in := xd[p*h*w:]
		o := od[p*h*f*w*f:]
		for y := 0; y < h*f; y++ {
			for xx := 0; xx < w*f; xx++ {
				o[y*w*f+xx] = in[(y/f)*w+xx/f]
			}
		}
	}
	return out
}

// Backward sums gradients over each replicated block.
func (u *Upsample2D) Backward(dout *tensor.Dense) *tensor.Dense {
	b, ch, h, w := u.inDims[0], u.inDims[1], u.inDims[2], u.inDims[3]
	f := u.factor
	dx := tensor.New(b, ch, h, w)
	dd, dxd := dout.Data(), dx.Data()
	for p := 0; p < b*ch; p++ {
		in := dd[p*h*f*w*f:]
		o := dxd[p*h*w:]
		for y := 0; y < h*f; y++ {
			for xx := 0; xx < w*f; xx++ {
				o[(y/f)*w+xx/f] += in[y*w*f+xx]
			}
		}
	}
	return dx
}
