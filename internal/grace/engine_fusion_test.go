package grace_test

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
)

// runEngineFusion is runEngine with an explicit fusion policy and collective
// wrapper hook; wrap may be nil.
func runEngineFusion(t *testing.T, workers, steps, lanes int, fc grace.FusionConfig,
	infos []grace.TensorInfo, newComp func(rank int) (grace.Compressor, error), ef bool,
	fallback bool, wrap func(rank int, c comm.Collective) comm.Collective) ([][][]float32, []*grace.StepReport) {
	t.Helper()
	hub := comm.NewHub(workers)
	final := make([][][]float32, workers)
	reports := make([]*grace.StepReport, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var mem *grace.Memory
			if ef {
				mem = grace.NewMemory(1, 1)
			}
			coll := comm.Collective(hub.Worker(rank))
			if wrap != nil {
				coll = wrap(rank, coll)
			}
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:           coll,
				New:            func() (grace.Compressor, error) { return newComp(rank) },
				Mem:            mem,
				Parallelism:    lanes,
				Fusion:         fc,
				DecodeFallback: fallback,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			for step := 0; step < steps; step++ {
				grads := engineTestGrads(rank, step, infos)
				aggs, rep, err := eng.Step(grads, infos)
				if err != nil {
					errs[rank] = err
					return
				}
				final[rank] = make([][]float32, len(aggs))
				for i, a := range aggs {
					final[rank][i] = append([]float32(nil), a...)
				}
				cp := *rep
				reports[rank] = &cp
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("fused engine rank %d: %v", rank, err)
		}
	}
	return final, reports
}

// TestEngineFusedMatchesUnfused is the bitwise-identity pillar of tensor
// fusion: on the in-process hub (rank-ordered, position-independent
// summation) the fused exchange must reproduce the unfused engine's
// aggregates exactly — for dense allreduce, allgather sparsifiers with error
// feedback, randomized payload methods, custom aggregators, and
// custom-communication methods (which fusion must leave alone) — across
// bucket geometries and lane counts.
func TestEngineFusedMatchesUnfused(t *testing.T) {
	const (
		workers = 4
		steps   = 3
		tensors = 12
	)
	infos := engineTestInfos(tensors)
	methods := []struct {
		name string
		ef   bool
		comp func(rank int) (grace.Compressor, error)
	}{
		{"none-allreduce", false, func(int) (grace.Compressor, error) { return grace.New("none") }},
		{"topk-ef-allgather", true, func(int) (grace.Compressor, error) {
			return grace.New("topk", grace.WithRatio(0.2))
		}},
		{"qsgd-random-payload", false, func(rank int) (grace.Compressor, error) {
			return grace.New("qsgd", grace.WithLevels(16), grace.WithSeed(uint64(rank)+1))
		}},
		{"signsgdmv-aggregator", false, func(int) (grace.Compressor, error) { return grace.New("signsgdmv") }},
		{"powersgd-custom", false, func(int) (grace.Compressor, error) {
			return grace.New("powersgd", grace.WithRank(2))
		}},
	}
	geometries := []grace.FusionConfig{
		{TargetBytes: 1 << 20},                // everything in one bucket
		{TargetBytes: 1500},                   // a few tensors per bucket
		{TargetBytes: 1 << 20, MaxTensors: 2}, // pairwise
	}
	for _, m := range methods {
		t.Run(m.name, func(t *testing.T) {
			// The unfused reference shares the lane count: randomized codecs
			// draw from per-lane RNG streams, so lane geometry (not fusion)
			// must be held fixed for a bitwise comparison.
			for _, lanes := range []int{1, 3} {
				want, _ := runEngineFusion(t, workers, steps, lanes, grace.FusionConfig{}, infos, m.comp, m.ef, false, nil)
				for _, fc := range geometries {
					got, _ := runEngineFusion(t, workers, steps, lanes, fc, infos, m.comp, m.ef, false, nil)
					for rank := range got {
						for ti := range infos {
							for j := range want[rank][ti] {
								if got[rank][ti][j] != want[rank][ti][j] {
									t.Fatalf("fusion %+v lanes=%d rank %d tensor %d elem %d: fused %v != unfused %v",
										fc, lanes, rank, ti, j, got[rank][ti][j], want[rank][ti][j])
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestEngineFusedReport checks the round accounting fusion exists for: fused
// runs issue strictly fewer collective rounds, classify bucket volume, and
// the unfused engine reports one round per tensor.
func TestEngineFusedReport(t *testing.T) {
	const workers = 3
	infos := engineTestInfos(12)
	newComp := func(int) (grace.Compressor, error) { return grace.New("topk", grace.WithRatio(0.1)) }

	_, plain := runEngineFusion(t, workers, 1, 2, grace.FusionConfig{}, infos, newComp, false, false, nil)
	if got := plain[0].Rounds; got != len(infos) {
		t.Fatalf("unfused Rounds = %d, want %d", got, len(infos))
	}
	if plain[0].FusedBuckets != 0 || plain[0].FusedTensors != 0 {
		t.Fatalf("unfused run reported fusion: %+v", plain[0])
	}

	_, fused := runEngineFusion(t, workers, 1, 2, grace.FusionConfig{TargetBytes: 1 << 20}, infos, newComp, false, false, nil)
	rep := fused[0]
	if rep.Rounds != 1 {
		t.Fatalf("single-bucket run issued %d rounds, want 1", rep.Rounds)
	}
	if rep.FusedBuckets != 1 || rep.FusedTensors != len(infos) {
		t.Fatalf("fusion accounting %d buckets / %d tensors, want 1 / %d",
			rep.FusedBuckets, rep.FusedTensors, len(infos))
	}
	if rep.FusionOverheadBytes != comm.FusedOverhead(len(infos)) {
		t.Fatalf("overhead %d bytes, want %d", rep.FusionOverheadBytes, comm.FusedOverhead(len(infos)))
	}
	var paySum int
	for _, st := range rep.Tensors {
		paySum += st.SentBytes
	}
	if rep.FusedBytes != paySum {
		t.Fatalf("FusedBytes %d != per-tensor payload sum %d", rep.FusedBytes, paySum)
	}
	if rep.SentBytes != paySum+rep.FusionOverheadBytes {
		t.Fatalf("SentBytes %d, want payloads %d + overhead %d", rep.SentBytes, paySum, rep.FusionOverheadBytes)
	}
}

// truncatingColl corrupts one AllgatherBytes round by truncating this
// worker's outgoing payload to a single byte — guaranteed to break the fused
// frame header, unlike random bit flips.
type truncatingColl struct {
	comm.Collective
	onOp int
	op   int
}

func (c *truncatingColl) AllgatherBytes(b []byte) ([][]byte, error) {
	c.op++
	if c.op == c.onOp {
		b = b[:1]
	}
	return c.Collective.AllgatherBytes(b)
}

// TestEngineFusedFrameFaultDegradesPerTensor: a fused allgather frame that
// fails to split is a whole-bucket decode fault, and under DecodeFallback
// every tensor in the bucket must degrade through the per-tensor recovery
// round — landing on the uncompressed mean, on every rank, with the step
// surviving. Without DecodeFallback the same fault must fail the step.
func TestEngineFusedFrameFaultDegradesPerTensor(t *testing.T) {
	const workers = 3
	infos := engineTestInfos(6)
	newComp := func(int) (grace.Compressor, error) { return grace.New("topk", grace.WithRatio(0.2)) }
	fc := grace.FusionConfig{TargetBytes: 1 << 20}
	breakRank1 := func(rank int, c comm.Collective) comm.Collective {
		if rank == 1 {
			return &truncatingColl{Collective: c, onOp: 1}
		}
		return c
	}

	got, reps := runEngineFusion(t, workers, 1, 2, fc, infos, newComp, false, true, breakRank1)

	// The salvage result is the uncompressed mean: what method "none"
	// computes over the same gradients.
	want, _ := runEngineFusion(t, workers, 1, 1, grace.FusionConfig{}, infos,
		func(int) (grace.Compressor, error) { return grace.New("none") }, false, false, nil)
	for rank := range got {
		if reps[rank].Fallbacks != len(infos) {
			t.Fatalf("rank %d recovered %d tensors, want the whole bucket (%d)",
				rank, reps[rank].Fallbacks, len(infos))
		}
		for ti := range infos {
			for j := range want[rank][ti] {
				if got[rank][ti][j] != want[rank][ti][j] {
					t.Fatalf("rank %d tensor %d elem %d: recovered %v != uncompressed mean %v",
						rank, ti, j, got[rank][ti][j], want[rank][ti][j])
				}
			}
		}
	}

	// Same fault without the fallback: the step must fail loudly.
	hub := comm.NewHub(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:   breakRank1(rank, hub.Worker(rank)),
				New:    func() (grace.Compressor, error) { return newComp(rank) },
				Fusion: fc,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			_, _, errs[rank] = eng.Step(engineTestGrads(rank, 0, infos), infos)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d survived a corrupt fused frame without DecodeFallback", rank)
		}
		var se *grace.StepError
		if !errors.As(err, &se) {
			t.Fatalf("rank %d: error %v is not a StepError", rank, err)
		}
		if !errors.Is(err, comm.ErrBadFusedFrame) {
			t.Fatalf("rank %d: error %v does not wrap ErrBadFusedFrame", rank, err)
		}
	}
}
