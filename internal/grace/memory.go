package grace

import "math"

// Memory implements the paper's error-feedback mechanism (Eq. 4):
//
//	φ(m, g) = β·m + γ·g            (memory_compensate)
//	ψ(m, g, g̃) = φ(m, g) − g̃      (memory_update)
//
// where g̃ is the worker-local decompressed approximation Q⁻¹(Q(φ(m,g))).
// State is per tensor, keyed by TensorInfo.Name. The zero value is not
// usable; construct with NewMemory.
type Memory struct {
	beta, gamma float32
	state       map[string][]float32
}

// NewMemory returns an error-feedback memory with decay β and gradient
// weight γ. The paper uses β = γ = 1 unless noted (§IV-A).
func NewMemory(beta, gamma float32) *Memory {
	return &Memory{beta: beta, gamma: gamma, state: make(map[string][]float32)}
}

// Compensate returns φ(m, g) = β·m + γ·g as a fresh slice; g is not mutated.
func (m *Memory) Compensate(name string, g []float32) []float32 {
	out := make([]float32, len(g))
	st := m.state[name]
	if st == nil {
		for i, v := range g {
			out[i] = m.gamma * v
		}
		return out
	}
	for i, v := range g {
		out[i] = m.beta*st[i] + m.gamma*v
	}
	return out
}

// Update stores ψ = compensated − approx as the new memory for the tensor.
func (m *Memory) Update(name string, compensated, approx []float32) {
	st := m.state[name]
	if st == nil {
		st = make([]float32, len(compensated))
		m.state[name] = st
	}
	for i := range st {
		st[i] = compensated[i] - approx[i]
	}
}

// Norm2 reports the Euclidean norm of a tensor's residual memory (0 when the
// tensor has no state yet); used by tests and diagnostics.
func (m *Memory) Norm2(name string) float64 {
	st := m.state[name]
	var s float64
	for _, v := range st {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
