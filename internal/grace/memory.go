package grace

import (
	"math"
	"sync"
)

// Memory implements the paper's error-feedback mechanism (Eq. 4):
//
//	φ(m, g) = β·m + γ·g            (memory_compensate)
//	ψ(m, g, g̃) = φ(m, g) − g̃      (memory_update)
//
// where g̃ is the worker-local decompressed approximation Q⁻¹(Q(φ(m,g))).
// State is per tensor, keyed by TensorInfo.Name. The zero value is not
// usable; construct with NewMemory.
//
// Concurrency: a Memory is safe for concurrent use across *distinct* tensor
// names — the map is internally locked, and per-tensor residual slices are
// only ever touched by the caller working on that tensor. Calls for the same
// name must be externally serialized (the Engine guarantees this by pinning
// each tensor to one codec lane).
type Memory struct {
	beta, gamma float32
	mu          sync.RWMutex
	state       map[string][]float32
}

// NewMemory returns an error-feedback memory with decay β and gradient
// weight γ. The paper uses β = γ = 1 unless noted (§IV-A).
func NewMemory(beta, gamma float32) *Memory {
	return &Memory{beta: beta, gamma: gamma, state: make(map[string][]float32)}
}

// residual returns the stored residual slice for a tensor (nil if none).
func (m *Memory) residual(name string) []float32 {
	m.mu.RLock()
	st := m.state[name]
	m.mu.RUnlock()
	return st
}

// Compensate returns φ(m, g) = β·m + γ·g as a fresh slice; g is not mutated.
func (m *Memory) Compensate(name string, g []float32) []float32 {
	out := make([]float32, len(g))
	m.compensateInto(out, name, g)
	return out
}

// compensateInto writes φ(m, g) into dst (len(dst) == len(g)); the engine's
// allocation-free path over persistent or pooled buffers.
func (m *Memory) compensateInto(dst []float32, name string, g []float32) {
	st := m.residual(name)
	if st == nil {
		for i, v := range g {
			dst[i] = m.gamma * v
		}
		return
	}
	for i, v := range g {
		dst[i] = m.beta*st[i] + m.gamma*v
	}
}

// Update stores ψ = compensated − approx as the new memory for the tensor.
func (m *Memory) Update(name string, compensated, approx []float32) {
	st := m.residual(name)
	if st == nil {
		st = make([]float32, len(compensated))
		m.mu.Lock()
		m.state[name] = st
		m.mu.Unlock()
	}
	for i := range st {
		st[i] = compensated[i] - approx[i]
	}
}

// State returns a deep copy of every tensor's residual memory, keyed by
// tensor name. The copy is safe to serialize or mutate; it shares nothing
// with the live memory.
func (m *Memory) State() map[string][]float32 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string][]float32, len(m.state))
	for name, st := range m.state {
		out[name] = append([]float32(nil), st...)
	}
	return out
}

// LoadState replaces the memory's residual state with a deep copy of st,
// discarding any existing residuals. β and γ are construction-time
// parameters and are not part of the state.
func (m *Memory) LoadState(st map[string][]float32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state = make(map[string][]float32, len(st))
	for name, v := range st {
		m.state[name] = append([]float32(nil), v...)
	}
}

// Norm2 reports the Euclidean norm of a tensor's residual memory (0 when the
// tensor has no state yet); used by tests and diagnostics.
func (m *Memory) Norm2(name string) float64 {
	st := m.residual(name)
	var s float64
	for _, v := range st {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}
