package grace

// DecompressorInto is an optional Compressor capability: decompress a payload
// directly into a caller-provided buffer instead of allocating the output.
// dst has exactly info.Size() elements and must be fully overwritten
// (including zeros for unselected positions of sparse formats). The Engine
// and Pipeline use this fast path, when available, to keep per-rank decoding
// allocation-free under the Allgather mean-aggregation strategy.
type DecompressorInto interface {
	Compressor
	DecompressInto(p *Payload, info TensorInfo, dst []float32) error
}

// Caps describes what a compressor instance can do beyond the base
// Compressor contract. It replaces scattered type assertions with one probe:
// the narrowed interface values double as the way to invoke each capability.
type Caps struct {
	// Strategy is the compressor's declared communication strategy.
	Strategy Strategy
	// Aggregator is non-nil when the method overrides the default mean with
	// a custom Agg function (Algorithm 1, line 13), e.g. majority vote.
	Aggregator Aggregator
	// Custom is non-nil when the method drives its own collectives
	// (Strategy() == Custom), e.g. PowerSGD's two-allreduce scheme.
	Custom CustomComm
	// Into is non-nil when the method can decompress into a caller-provided
	// buffer (allocation-free decode path).
	Into DecompressorInto
}

// Capabilities probes a compressor once for every optional interface the
// framework dispatches on. Probe at construction or setup time, not per
// exchange.
func Capabilities(c Compressor) Caps {
	caps := Caps{Strategy: c.Strategy()}
	if a, ok := c.(Aggregator); ok {
		caps.Aggregator = a
	}
	if cc, ok := c.(CustomComm); ok {
		caps.Custom = cc
	}
	if di, ok := c.(DecompressorInto); ok {
		caps.Into = di
	}
	return caps
}
