package grace

import (
	"time"

	"repro/internal/telemetry"
)

// telScope localizes span recording for one emitter (the comm driver or one
// codec lane): it pins the rank and trace track once, and optionally
// accumulates per-phase nanoseconds into a private array so concurrent lanes
// never contend on the shared StepReport. The Engine merges the accumulators
// after its lanes join.
type telScope struct {
	rank, tid int
	acc       *[telemetry.NumPhases]int64
}

// start opens a span (zero time when span recording is disabled).
func (s telScope) start() time.Time { return telemetry.Default.Start() }

// end closes a span: histogram + trace via the Default registry, plus the
// scope's private per-phase accumulator when one is attached.
func (s telScope) end(p telemetry.Phase, detail string, t0 time.Time) {
	d := telemetry.Default.Observe(p, s.rank, s.tid, detail, t0)
	if s.acc != nil && d > 0 {
		s.acc[p] += int64(d)
	}
}
