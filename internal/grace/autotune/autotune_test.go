package autotune_test

import (
	"reflect"
	"strings"
	"testing"

	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/grace/autotune"
	"repro/internal/simnet"
)

func testInfos(sizes ...int) []grace.TensorInfo {
	infos := make([]grace.TensorInfo, len(sizes))
	for i, n := range sizes {
		infos[i] = grace.NewTensorInfo("t"+string(rune('a'+i)), []int{n})
	}
	return infos
}

func mustPolicy(t *testing.T, cfg autotune.Config) *autotune.Policy {
	t.Helper()
	p, err := autotune.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// observe feeds one synthetic step back: every tensor reports its current
// assignment with the given per-tensor byte volumes.
func observe(p *autotune.Policy, assigns []grace.TunerAssign, bytes []int64) {
	obs := make([]grace.TunerObs, len(assigns))
	for i := range obs {
		obs[i] = grace.TunerObs{Cand: assigns[i].Cand, Flush: assigns[i].Flush, ExchBytes: bytes[i]}
	}
	p.Observe(obs)
}

func TestNewValidation(t *testing.T) {
	base := func() autotune.Config { return autotune.Config{Workers: 4} }
	cases := []struct {
		name   string
		mutate func(*autotune.Config)
	}{
		{"no-workers", func(c *autotune.Config) { c.Workers = 0 }},
		{"negative-every", func(c *autotune.Config) { c.Every = -1 }},
		{"negative-hysteresis", func(c *autotune.Config) { c.Hysteresis = -0.1 }},
		{"bad-handoff", func(c *autotune.Config) { c.EFHandoff = "defer" }},
		{"empty-candidates", func(c *autotune.Config) { c.Candidates = []grace.TunerCandidate{} }},
		{"unlabeled-candidate", func(c *autotune.Config) {
			c.Candidates = []grace.TunerCandidate{{Method: "none"}}
		}},
		{"duplicate-labels", func(c *autotune.Config) {
			c.Candidates = []grace.TunerCandidate{
				{Label: "x", Method: "none"},
				{Label: "x", Method: "topk", Opts: grace.Options{Ratio: 0.1}},
			}
		}},
		{"unknown-method", func(c *autotune.Config) {
			c.Candidates = []grace.TunerCandidate{{Label: "x", Method: "no-such-codec"}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			if _, err := autotune.New(cfg); err == nil {
				t.Fatalf("config %+v should be rejected", cfg)
			}
		})
	}
}

func TestDefaults(t *testing.T) {
	p := mustPolicy(t, autotune.Config{Workers: 4})
	cands := p.Candidates()
	want := autotune.DefaultCandidates()
	if len(cands) != len(want) {
		t.Fatalf("default candidate set has %d entries, want %d", len(cands), len(want))
	}
	for i := range cands {
		if cands[i].Label != want[i].Label {
			t.Fatalf("candidate %d is %q, want %q", i, cands[i].Label, want[i].Label)
		}
	}
	sig := p.Sig()
	for _, frag := range []string{"every=5", "hyst=0.1", "handoff=flush", "n=4", simnet.TCP10G.Name} {
		if !strings.Contains(sig, frag) {
			t.Fatalf("default sig %q lacks %q", sig, frag)
		}
	}
}

// TestSigPinsConfig: every decision-relevant knob changes the signature, and
// identical configs agree — the property checkpoint validation relies on.
func TestSigPinsConfig(t *testing.T) {
	base := autotune.Config{Workers: 4}
	sigOf := func(cfg autotune.Config) string { return mustPolicy(t, cfg).Sig() }
	ref := sigOf(base)
	if sigOf(autotune.Config{Workers: 4}) != ref {
		t.Fatal("identical configs produced different signatures")
	}
	variants := []autotune.Config{
		{Workers: 8},
		{Workers: 4, Every: 3},
		{Workers: 4, Hysteresis: 0.2},
		{Workers: 4, Link: simnet.RDMA25G},
		{Workers: 4, EFHandoff: autotune.HandoffCarry},
		{Workers: 4, Candidates: []grace.TunerCandidate{{Label: "none", Method: "none"}}},
	}
	for i, cfg := range variants {
		if sigOf(cfg) == ref {
			t.Fatalf("variant %d (%+v) has the same signature as the base config", i, cfg)
		}
	}
	// Same candidate method under different options must differ too.
	a := autotune.Config{Workers: 4, Candidates: []grace.TunerCandidate{
		{Label: "k", Method: "topk", Opts: grace.Options{Ratio: 0.01}}}}
	b := autotune.Config{Workers: 4, Candidates: []grace.TunerCandidate{
		{Label: "k", Method: "topk", Opts: grace.Options{Ratio: 0.05}}}}
	if sigOf(a) == sigOf(b) {
		t.Fatal("candidate options are not folded into the signature")
	}
}

// TestWarmupProbesEveryCandidate: with period Every, decision window w of the
// first C windows retargets every tensor to candidate w, arming flush
// handoffs for each switch, so by the end of warmup every (tensor, candidate)
// pair has a real observation.
func TestWarmupProbesEveryCandidate(t *testing.T) {
	const every = 2
	p := mustPolicy(t, autotune.Config{Workers: 2, Every: every})
	infos := testInfos(1000, 50)
	if err := p.Init(infos); err != nil {
		t.Fatal(err)
	}
	C := len(p.Candidates())
	dst := make([]grace.TunerAssign, len(infos))
	step := 0
	for w := 1; w < C; w++ {
		for k := 0; k < every; k++ {
			sw := p.Plan(dst)
			wantCand := w - 1
			wantSwitch := 0
			if k == 0 && w > 1 {
				// The retarget decided at the end of window w-1 lands on the
				// first Plan of window w.
				wantSwitch = len(infos)
			}
			if sw != wantSwitch {
				t.Fatalf("window %d step %d: Plan reported %d switches, want %d", w, k, sw, wantSwitch)
			}
			for i := range dst {
				if dst[i].Cand != wantCand {
					t.Fatalf("window %d step %d tensor %d assigned candidate %d, want %d", w, k, i, dst[i].Cand, wantCand)
				}
				wantFlush := k == 0 && w > 1
				if dst[i].Flush != wantFlush {
					t.Fatalf("window %d step %d tensor %d flush=%v, want %v", w, k, i, dst[i].Flush, wantFlush)
				}
			}
			observe(p, dst, []int64{4096, 256})
			step++
		}
	}
	st := p.State()
	if st.Step != int64(step) {
		t.Fatalf("policy observed %d steps, ran %d", st.Step, step)
	}
	if st.Switches == 0 {
		t.Fatal("warmup probing recorded no switches")
	}
}

// TestScoredDecisionConverges drives the policy past warmup with volumes that
// make one candidate the clear winner and checks (a) the policy converges on
// it, (b) a second identically-driven policy lands on the identical state —
// the cross-rank determinism property at the unit level.
func TestScoredDecisionConverges(t *testing.T) {
	cands := []grace.TunerCandidate{
		{Label: "none", Method: "none"},
		{Label: "topk@0.01", Method: "topk", Opts: grace.Options{Ratio: 0.01}},
	}
	run := func() *autotune.Policy {
		p := mustPolicy(t, autotune.Config{Workers: 4, Every: 1, Candidates: cands, Link: simnet.TCP1G})
		infos := testInfos(100000)
		if err := p.Init(infos); err != nil {
			t.Fatal(err)
		}
		dst := make([]grace.TunerAssign, 1)
		for step := 0; step < 12; step++ {
			p.Plan(dst)
			// Volumes by assigned candidate: dense 4n for none, ~1% for topk.
			bytes := int64(400000)
			if dst[0].Cand == 1 {
				bytes = 4 * 8016 // sum of per-rank sparse payloads
			}
			observe(p, dst, []int64{bytes})
		}
		return p
	}
	p := run()
	dst := make([]grace.TunerAssign, 1)
	p.Plan(dst)
	if got := p.Candidates()[dst[0].Cand].Label; got != "topk@0.01" {
		t.Fatalf("policy settled on %q, want the faster topk@0.01", got)
	}
	if !reflect.DeepEqual(p.State(), run().State()) {
		t.Fatal("two identically-driven policies diverged")
	}
}

// TestHysteresisBlocksMarginalSwitch: with a prohibitive hysteresis margin the
// policy never leaves the incumbent after warmup, however the volumes look.
func TestHysteresisBlocksMarginalSwitch(t *testing.T) {
	cands := []grace.TunerCandidate{
		{Label: "none", Method: "none"},
		{Label: "topk@0.01", Method: "topk", Opts: grace.Options{Ratio: 0.01}},
	}
	p := mustPolicy(t, autotune.Config{Workers: 4, Every: 1, Candidates: cands,
		Link: simnet.TCP1G, Hysteresis: 0.999999})
	infos := testInfos(100000)
	if err := p.Init(infos); err != nil {
		t.Fatal(err)
	}
	dst := make([]grace.TunerAssign, 1)
	warmup := len(cands)
	for step := 0; step < 12; step++ {
		sw := p.Plan(dst)
		if step > warmup && sw != 0 {
			t.Fatalf("step %d: switch under a ~100%% hysteresis margin", step)
		}
		bytes := int64(400000)
		if dst[0].Cand == 1 {
			bytes = 4 * 8016
		}
		observe(p, dst, []int64{bytes})
	}
}

// TestCarryHandoffArmsNoFlush: under HandoffCarry, switches happen without
// pending flush steps.
func TestCarryHandoffArmsNoFlush(t *testing.T) {
	p := mustPolicy(t, autotune.Config{Workers: 2, Every: 1, EFHandoff: autotune.HandoffCarry})
	infos := testInfos(512)
	if err := p.Init(infos); err != nil {
		t.Fatal(err)
	}
	dst := make([]grace.TunerAssign, 1)
	sawSwitch := false
	for step := 0; step < 8; step++ {
		sw := p.Plan(dst)
		if sw > 0 {
			sawSwitch = true
		}
		if dst[0].Flush {
			t.Fatalf("step %d armed a flush handoff under HandoffCarry", step)
		}
		observe(p, dst, []int64{2048})
	}
	if !sawSwitch {
		t.Fatal("warmup never switched candidates")
	}
}

// TestFlushObservationNotRecorded: a flush step's byte volume describes the
// uncompressed handoff exchange, not the assigned candidate, and must not
// enter that candidate's observed-volume cell.
func TestFlushObservationNotRecorded(t *testing.T) {
	p := mustPolicy(t, autotune.Config{Workers: 2, Every: 1})
	infos := testInfos(512)
	if err := p.Init(infos); err != nil {
		t.Fatal(err)
	}
	dst := make([]grace.TunerAssign, 1)
	p.Plan(dst)
	before := p.State()
	p.Observe([]grace.TunerObs{{Cand: dst[0].Cand, Flush: true, ExchBytes: 999999}})
	after := p.State()
	C := int(before.Cands)
	if after.LastBytes[dst[0].Cand] != before.LastBytes[dst[0].Cand] ||
		after.LastBytes[0*C+dst[0].Cand] != -1 {
		t.Fatalf("flush observation leaked into candidate volumes: %v", after.LastBytes)
	}
}

func TestInitRebind(t *testing.T) {
	p := mustPolicy(t, autotune.Config{Workers: 2})
	if err := p.Init(testInfos(10, 20)); err != nil {
		t.Fatal(err)
	}
	if err := p.Init(testInfos(10, 20)); err != nil {
		t.Fatalf("re-binding the same tensor set failed: %v", err)
	}
	if err := p.Init(testInfos(10, 20, 30)); err == nil {
		t.Fatal("re-binding a different tensor count should fail")
	}
}

func TestStateRoundTrip(t *testing.T) {
	p := mustPolicy(t, autotune.Config{Workers: 2, Every: 1})
	infos := testInfos(64, 256)
	if err := p.Init(infos); err != nil {
		t.Fatal(err)
	}
	dst := make([]grace.TunerAssign, len(infos))
	for step := 0; step < 5; step++ {
		p.Plan(dst)
		observe(p, dst, []int64{512, 2048})
	}
	st := p.State()

	q := mustPolicy(t, autotune.Config{Workers: 2, Every: 1})
	if err := q.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if err := q.Init(infos); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.State(), st) {
		t.Fatalf("restored state %+v != captured %+v", q.State(), st)
	}
	// The restored policy must continue the trajectory identically.
	d1 := make([]grace.TunerAssign, len(infos))
	d2 := make([]grace.TunerAssign, len(infos))
	for step := 0; step < 4; step++ {
		s1 := p.Plan(d1)
		s2 := q.Plan(d2)
		if s1 != s2 || !reflect.DeepEqual(d1, d2) {
			t.Fatalf("step %d after restore: plans diverged (%v/%d vs %v/%d)", step, d1, s1, d2, s2)
		}
		observe(p, d1, []int64{512, 2048})
		observe(q, d2, []int64{512, 2048})
	}
	if !reflect.DeepEqual(p.State(), q.State()) {
		t.Fatal("trajectories diverged after restore")
	}
}

func TestLoadStateValidation(t *testing.T) {
	mk := func() *autotune.Policy { return mustPolicy(t, autotune.Config{Workers: 2, Every: 1}) }
	good := func() *grace.TunerState {
		p := mk()
		if err := p.Init(testInfos(64, 256)); err != nil {
			t.Fatal(err)
		}
		return p.State()
	}
	cases := []struct {
		name   string
		mutate func(*grace.TunerState) *grace.TunerState
	}{
		{"nil", func(*grace.TunerState) *grace.TunerState { return nil }},
		{"wrong-sig", func(s *grace.TunerState) *grace.TunerState { s.Sig = "other"; return s }},
		{"wrong-cands", func(s *grace.TunerState) *grace.TunerState { s.Cands = 7; return s }},
		{"negative-step", func(s *grace.TunerState) *grace.TunerState { s.Step = -1; return s }},
		{"negative-switches", func(s *grace.TunerState) *grace.TunerState { s.Switches = -2; return s }},
		{"pending-mismatch", func(s *grace.TunerState) *grace.TunerState { s.Pending = s.Pending[:1]; return s }},
		{"bytes-mismatch", func(s *grace.TunerState) *grace.TunerState { s.LastBytes = s.LastBytes[:3]; return s }},
		{"assign-out-of-range", func(s *grace.TunerState) *grace.TunerState { s.Assign[0] = 99; return s }},
		{"bytes-below-sentinel", func(s *grace.TunerState) *grace.TunerState { s.LastBytes[0] = -2; return s }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mk().LoadState(tc.mutate(good())); err == nil {
				t.Fatal("corrupt state should be rejected")
			}
		})
	}
	// Tensor-count mismatch against an already-bound policy.
	p := mk()
	if err := p.Init(testInfos(64)); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadState(good()); err == nil {
		t.Fatal("state for a different tensor count should be rejected")
	}
}
