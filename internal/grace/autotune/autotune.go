// Package autotune is the runtime compression policy engine: a grace.Tuner
// that, every K steps, scores the candidate (method, ratio) pairs per tensor
// using the exchanged byte volumes the engine observed, combined with the
// simnet α-β link model and a coarse codec cost model, and switches a
// tensor's compressor when the modeled step time improves by a hysteresis
// margin.
//
// # Determinism
//
// Every rank runs its own Policy instance with no extra collective, so the
// whole policy is a pure function of rank-identical inputs:
//
//   - the step counter (ranks run in lockstep),
//   - the tensor metadata bound at Init (identical model on every rank),
//   - the exchanged byte counts fed back through Observe — an allreduce's
//     dense width is the same on every rank by construction, and an
//     allgather's ExchBytes is the sum of every rank's payload size, which
//     every rank sees in full,
//   - and the configuration constants (candidate set, period, hysteresis,
//     link model, worker count), which must be identical on every rank.
//
// Locally measured wall-clock time never enters a decision — it differs
// across ranks and would desync the collective sequence. Scoring uses
// modeled time derived from the byte observations instead. Floating-point
// scoring is reproducible across ranks because every rank evaluates the
// identical expression tree over identical inputs.
//
// # Exploration
//
// The first len(candidates) decision windows are warmup probes: window w
// assigns candidate w to every tensor, so by the end of warmup every
// (tensor, candidate) pair has real byte observations and steady-state
// scoring never depends on the built-in priors (the priors only matter for
// pairs that could not be observed, e.g. an Every=1 run whose single probe
// step was consumed by a flush handoff).
//
// # Fault evidence
//
// When the engine runs with DecodeFallback, each observation carries a
// rank-identical Fault flag (derived from the recovery round's union bitmask,
// see grace.TunerObs). The policy counts faults per (tensor, candidate) pair
// and multiplies the pair's modeled time by a growing penalty, so a candidate
// whose payloads keep failing decode is steered away from without breaking
// determinism — every rank observes the identical union. Fault memory is
// deliberately ephemeral (not part of TunerState): after a restore the policy
// trajectory still replays bitwise, it merely re-learns fault evidence, which
// is the desired behavior when the fault source was the previous incarnation's
// environment.
//
// # EF handoff
//
// Switching methods under error-feedback memory (Eq. 4) changes what the
// residual means. Config.EFHandoff selects the policy: "flush" (default)
// spends the first step after a switch exchanging the compensated gradient
// uncompressed, which zeroes the residual exactly, so the incoming method
// starts from clean accounting; "carry" leaves the residual in place — the
// EF recurrence telescopes regardless of which method produced each step's
// approximation, so nothing is lost, at the cost of the new method inheriting
// the old method's bias direction.
package autotune

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/grace"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// EF handoff policies (Config.EFHandoff).
const (
	// HandoffFlush zeroes the residual on a switch by spending one
	// uncompressed exchange (see the package doc).
	HandoffFlush = "flush"
	// HandoffCarry leaves the residual in place across a switch.
	HandoffCarry = "carry"
)

// Config parameterizes a Policy. Every field that influences decisions is
// folded into Sig(), so checkpoints reject resumes under a different
// configuration, and every worker must be constructed with identical values.
type Config struct {
	// Candidates is the method set the policy chooses among; nil selects
	// DefaultCandidates(). Candidates must be codec-stateless, non-Custom
	// registry methods (grace.NewEngine enforces this).
	Candidates []grace.TunerCandidate
	// Every is the decision period in steps; 0 selects 5. The first
	// len(Candidates) windows probe each candidate in turn (warmup).
	Every int
	// Hysteresis is the relative improvement a challenger must show over the
	// incumbent to trigger a switch; 0 selects 0.10 (10%). Negative is
	// rejected; an explicit 0 is expressed as a tiny positive value.
	Hysteresis float64
	// Link is the α-β network model scoring charges wire time against; the
	// zero value selects simnet.TCP10G.
	Link simnet.Link
	// Workers is the collective group size (required, ≥ 1). It shapes both
	// the ring cost formulas and the allgather volume accounting.
	Workers int
	// EFHandoff is the residual policy on method switches: HandoffFlush
	// (default) or HandoffCarry.
	EFHandoff string
}

// DefaultCandidates is the stock candidate set: the uncompressed baseline,
// two Top-k sparsification ratios, and 8-bit quantization — one entry per
// regime the paper's Figure 10 sweep distinguishes.
func DefaultCandidates() []grace.TunerCandidate {
	return []grace.TunerCandidate{
		{Label: "none", Method: "none"},
		{Label: "topk@0.01", Method: "topk", Opts: grace.Options{Ratio: 0.01}},
		{Label: "topk@0.05", Method: "topk", Opts: grace.Options{Ratio: 0.05}},
		{Label: "eightbit", Method: "eightbit"},
	}
}

// candModel is the per-candidate scoring input resolved at construction:
// the communication strategy (probed from a throwaway instance) and the
// codec cost coefficients (by registry class).
type candModel struct {
	strategy grace.Strategy
	class    string
	// encNsPerElem / decNsPerByte are the coarse codec cost coefficients;
	// see score().
	encNsPerElem float64
	decNsPerByte float64
	// ratio is the effective sparsification ratio for byte priors.
	ratio float64
}

// Policy implements grace.Tuner. Construct with New; a Policy belongs to one
// worker and is not safe for concurrent use.
type Policy struct {
	cfg     Config
	cands   []grace.TunerCandidate
	models  []candModel
	cluster simnet.Cluster
	sig     string

	// sizes is the bound tensor set's element counts (Init).
	sizes []int

	step         int64
	switches     int64
	nextSwitches int32
	// assign is the per-tensor target assignment for upcoming steps; pending
	// marks tensors whose flush handoff has not run yet.
	assign  []int32
	pending []bool
	// lastBytes[i*C+c] is the last ExchBytes observed for tensor i under
	// candidate c (-1 = never observed).
	lastBytes []int64
	// faults[i*C+c] counts union decode faults observed for tensor i under
	// candidate c. Ephemeral by design — see the package doc's fault-evidence
	// section — so it is absent from TunerState.
	faults []int64
}

// New builds a Policy. Candidate methods are resolved against the grace
// registry at call time (import a compressor aggregate such as
// internal/compress/all first).
func New(cfg Config) (*Policy, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("autotune: Workers must be ≥ 1, got %d", cfg.Workers)
	}
	if cfg.Every < 0 {
		return nil, fmt.Errorf("autotune: Every must be ≥ 0, got %d", cfg.Every)
	}
	if cfg.Every == 0 {
		cfg.Every = 5
	}
	if cfg.Hysteresis < 0 {
		return nil, fmt.Errorf("autotune: Hysteresis must be ≥ 0, got %g", cfg.Hysteresis)
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.10
	}
	if cfg.Link == (simnet.Link{}) {
		cfg.Link = simnet.TCP10G
	}
	switch cfg.EFHandoff {
	case "":
		cfg.EFHandoff = HandoffFlush
	case HandoffFlush, HandoffCarry:
	default:
		return nil, fmt.Errorf("autotune: unknown EFHandoff %q (want %q or %q)", cfg.EFHandoff, HandoffFlush, HandoffCarry)
	}
	cands := cfg.Candidates
	if cands == nil {
		cands = DefaultCandidates()
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("autotune: empty candidate set")
	}
	seen := map[string]bool{}
	p := &Policy{cfg: cfg, cands: cands, cluster: simnet.NewCluster(cfg.Link, cfg.Workers)}
	for i, cand := range cands {
		if cand.Label == "" {
			return nil, fmt.Errorf("autotune: candidate %d has no label", i)
		}
		if seen[cand.Label] {
			return nil, fmt.Errorf("autotune: duplicate candidate label %q", cand.Label)
		}
		seen[cand.Label] = true
		meta, err := grace.Lookup(cand.Method)
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %q: %w", cand.Label, err)
		}
		c, err := grace.New(cand.Method, cand.Opts)
		if err != nil {
			return nil, fmt.Errorf("autotune: candidate %q: %w", cand.Label, err)
		}
		m := candModel{strategy: grace.Capabilities(c).Strategy, class: meta.Class, ratio: cand.Opts.Ratio}
		if m.ratio <= 0 {
			m.ratio = 0.01
		}
		switch meta.Class {
		case "baseline":
			m.encNsPerElem, m.decNsPerByte = 0.5, 0.25
		case "quantization":
			m.encNsPerElem, m.decNsPerByte = 2, 0.5
		default: // sparsification, hybrid, ...
			m.encNsPerElem, m.decNsPerByte = 6, 0.5
		}
		p.models = append(p.models, m)
	}
	p.sig = buildSig(cfg, cands)
	return p, nil
}

// buildSig renders the full decision-relevant configuration as a stable
// string. Identical configs yield identical signatures on every rank and
// across runs, which is what lets checkpoints pin the policy.
func buildSig(cfg Config, cands []grace.TunerCandidate) string {
	var b strings.Builder
	fmt.Fprintf(&b, "autotune:v1 every=%d hyst=%g link=%s/%gGbps/%s/%g n=%d handoff=%s cands=",
		cfg.Every, cfg.Hysteresis, cfg.Link.Name, cfg.Link.BandwidthGbps,
		cfg.Link.StepLatency, cfg.Link.Efficiency, cfg.Workers, cfg.EFHandoff)
	for i, c := range cands {
		if i > 0 {
			b.WriteByte(',')
		}
		o := c.Opts
		fmt.Fprintf(&b, "%s=%s{r=%g,l=%d,rk=%d,t=%g,m=%g,s=%d}",
			c.Label, c.Method, o.Ratio, o.Levels, o.Rank, o.Threshold, o.Momentum, o.Seed)
	}
	return b.String()
}

// Candidates implements grace.Tuner.
func (p *Policy) Candidates() []grace.TunerCandidate { return p.cands }

// Sig implements grace.Tuner.
func (p *Policy) Sig() string { return p.sig }

// Init implements grace.Tuner: it binds the policy to the run's tensor set.
// A restore (LoadState) may precede Init; the bind then only validates that
// the tensor count matches the checkpointed trajectory.
func (p *Policy) Init(infos []grace.TensorInfo) error {
	m := len(infos)
	sizes := make([]int, m)
	for i, info := range infos {
		sizes[i] = info.Size()
	}
	if p.sizes != nil || p.assign != nil {
		if len(p.assign) != m {
			return fmt.Errorf("autotune: policy tracks %d tensors, run has %d (the tensor set must be stable)", len(p.assign), m)
		}
		p.sizes = sizes
		if p.faults == nil {
			// A restore precedes this bind; fault memory starts fresh.
			p.faults = make([]int64, m*len(p.cands))
		}
		return nil
	}
	p.sizes = sizes
	p.assign = make([]int32, m)
	p.pending = make([]bool, m)
	p.lastBytes = make([]int64, m*len(p.cands))
	for i := range p.lastBytes {
		p.lastBytes[i] = -1
	}
	p.faults = make([]int64, m*len(p.cands))
	return nil
}

// Plan implements grace.Tuner: it publishes the current target assignment
// (with any pending flush handoffs) and reports the switches that took
// effect at this step's start.
func (p *Policy) Plan(dst []grace.TunerAssign) int {
	for i := range dst {
		dst[i] = grace.TunerAssign{Cand: int(p.assign[i]), Flush: p.pending[i]}
	}
	n := int(p.nextSwitches)
	p.switches += int64(n)
	p.nextSwitches = 0
	return n
}

// Observe implements grace.Tuner: it records the step's byte observations,
// consumes any flush handoffs the step ran, advances the step counter, and —
// at decision boundaries — recomputes the assignment.
func (p *Policy) Observe(obs []grace.TunerObs) {
	C := len(p.cands)
	for i := range obs {
		o := &obs[i]
		if o.Flush || o.Cand < 0 || o.Cand >= C {
			continue
		}
		p.lastBytes[i*C+o.Cand] = o.ExchBytes
		if o.Fault {
			p.faults[i*C+o.Cand]++
			telemetry.Default.Add(telemetry.CtrAutotuneFaultObs, 1)
		}
	}
	// Any handoff requested by the last Plan has now run (or was ignored by a
	// memoryless engine, which is just as final).
	for i := range p.pending {
		p.pending[i] = false
	}
	p.step++
	if p.step%int64(p.cfg.Every) != 0 {
		return
	}
	p.decide()
}

// decide recomputes the per-tensor assignment at a window boundary: the
// first C windows probe each candidate in turn, the window right after
// warmup takes the scored argmin outright (the "incumbent" there is merely
// the last probe, with no claim to incumbency), and every later boundary
// switches a tensor only when the best challenger models at least
// Hysteresis faster than the incumbent. Ties break toward the lowest
// candidate index.
func (p *Policy) decide() {
	telemetry.Default.Add(telemetry.CtrAutotuneDecisions, 1)
	C := len(p.cands)
	window := p.step / int64(p.cfg.Every)
	if window < int64(C) {
		// Warmup: probe candidate `window` on every tensor.
		p.retarget(func(i int) int32 { return int32(window) })
		return
	}
	p.retarget(func(i int) int32 {
		best, bestScore := p.assign[i], math.Inf(1)
		for c := 0; c < C; c++ {
			s := p.score(i, c)
			if s < bestScore {
				best, bestScore = int32(c), s
			}
		}
		cur := p.assign[i]
		if best == cur {
			return cur
		}
		if window == int64(C) || bestScore < (1-p.cfg.Hysteresis)*p.score(i, int(cur)) {
			return best
		}
		return cur
	})
}

// retarget applies a new assignment, counting switches and arming flush
// handoffs under HandoffFlush.
func (p *Policy) retarget(target func(i int) int32) {
	for i := range p.assign {
		t := target(i)
		if t == p.assign[i] {
			continue
		}
		p.assign[i] = t
		p.nextSwitches++
		if p.cfg.EFHandoff == HandoffFlush {
			p.pending[i] = true
		}
	}
}

// score models tensor i's per-step time under candidate c, in nanoseconds:
//
//	score = wire + encode + decode
//	wire   = α-β ring cost of the candidate's collective at its observed
//	         (or, before first observation, estimated) byte volume
//	encode = encNsPerElem[class] · n
//	decode = decNsPerByte[class] · recvBytes
//
// All inputs are rank-identical (see the package doc), so every rank scores
// identically.
func (p *Policy) score(i, c int) float64 {
	m := &p.models[c]
	n := p.sizes[i]
	bytes := p.lastBytes[i*len(p.cands)+c]
	if bytes < 0 {
		bytes = p.estBytes(i, c)
	}
	var wire time.Duration
	var recv float64
	switch m.strategy {
	case grace.Allreduce:
		wire = p.cluster.AllreduceTime(int(bytes))
		recv = float64(bytes)
	default: // Allgather
		per := int(bytes) / p.cfg.Workers
		wire = p.cluster.AllgatherUniformTime(per)
		recv = float64(bytes) - float64(per) // peers' payloads
	}
	s := float64(wire.Nanoseconds()) + m.encNsPerElem*float64(n) + m.decNsPerByte*recv
	// Each union decode fault observed for this pair quadruples the price of
	// the next one: a strong, deterministic push away from candidates whose
	// payloads keep failing, without the cliff of a hard disqualification
	// (were every candidate faulting, argmin over equal penalties still
	// yields a valid, rank-identical assignment).
	if f := p.faults[i*len(p.cands)+c]; f > 0 {
		s *= float64(1 + 4*f)
	}
	return s
}

// estBytes is the pre-observation byte prior for (tensor, candidate):
// the dense width for allreduce candidates; for allgather candidates a
// class-shaped per-rank payload guess times the group size. Priors only
// matter before the warmup probe of the pair lands (see the package doc).
func (p *Policy) estBytes(i, c int) int64 {
	m := &p.models[c]
	n := p.sizes[i]
	if m.strategy == grace.Allreduce {
		return int64(4 * n)
	}
	var per int64
	switch m.class {
	case "quantization":
		per = int64(n + 32)
	case "sparsification", "hybrid":
		k := int64(math.Ceil(m.ratio * float64(n)))
		if k < 1 {
			k = 1
		}
		per = 8*k + 16
	default:
		per = int64(4*n + 16)
	}
	return per * int64(p.cfg.Workers)
}

// SetWorldSize implements grace.WorldSizeSetter: it re-derives the policy's
// group-shaped inputs (worker count, ring cost model, configuration
// signature) after an elastic membership change and resets the decision
// trajectory — assignment, step counter, byte observations, and fault
// evidence all restart, including the warmup probe windows. The signature
// pins the worker count, so pre-resize checkpointed states are correctly
// rejected afterwards. Every member calls this with the identical new size at
// the identical step, so the restarted trajectories stay rank-identical.
func (p *Policy) SetWorldSize(n int) {
	if n < 1 || n == p.cfg.Workers {
		return
	}
	p.cfg.Workers = n
	p.cluster = simnet.NewCluster(p.cfg.Link, n)
	p.sig = buildSig(p.cfg, p.cands)
	p.step = 0
	p.switches = 0
	p.nextSwitches = 0
	for i := range p.assign {
		p.assign[i] = 0
	}
	for i := range p.pending {
		p.pending[i] = false
	}
	for i := range p.lastBytes {
		p.lastBytes[i] = -1
	}
	for i := range p.faults {
		p.faults[i] = 0
	}
}

// State implements grace.Tuner.
func (p *Policy) State() *grace.TunerState {
	st := &grace.TunerState{
		Sig:          p.sig,
		Step:         p.step,
		Switches:     p.switches,
		NextSwitches: p.nextSwitches,
		Cands:        int32(len(p.cands)),
		Assign:       p.assign,
		Pending:      p.pending,
		LastBytes:    p.lastBytes,
	}
	return st.Clone()
}

// LoadState implements grace.Tuner: it validates the snapshot against this
// policy's configuration and restores the trajectory bitwise.
func (p *Policy) LoadState(st *grace.TunerState) error {
	if st == nil {
		return fmt.Errorf("autotune: nil policy state")
	}
	if st.Sig != p.sig {
		return fmt.Errorf("autotune: checkpoint is for policy %q, run uses %q", st.Sig, p.sig)
	}
	if int(st.Cands) != len(p.cands) {
		return fmt.Errorf("autotune: checkpoint has %d candidates, policy has %d", st.Cands, len(p.cands))
	}
	if st.Step < 0 || st.Switches < 0 || st.NextSwitches < 0 {
		return fmt.Errorf("autotune: negative counters in policy state")
	}
	m := len(st.Assign)
	if len(st.Pending) != m || len(st.LastBytes) != m*len(p.cands) {
		return fmt.Errorf("autotune: inconsistent policy state dimensions (%d assigns, %d pendings, %d byte cells)",
			m, len(st.Pending), len(st.LastBytes))
	}
	for i, a := range st.Assign {
		if a < 0 || int(a) >= len(p.cands) {
			return fmt.Errorf("autotune: tensor %d assigned out-of-range candidate %d", i, a)
		}
	}
	for i, b := range st.LastBytes {
		if b < -1 {
			return fmt.Errorf("autotune: byte cell %d holds invalid volume %d", i, b)
		}
	}
	if p.assign != nil && len(p.assign) != m {
		return fmt.Errorf("autotune: policy tracks %d tensors, checkpoint has %d", len(p.assign), m)
	}
	cl := st.Clone()
	p.step = cl.Step
	p.switches = cl.Switches
	p.nextSwitches = cl.NextSwitches
	p.assign = cl.Assign
	p.pending = cl.Pending
	p.lastBytes = cl.LastBytes
	return nil
}
