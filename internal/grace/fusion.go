package grace

import "fmt"

// FusionConfig sets the Engine's tensor-fusion batching policy: how per-step
// gradients are packed into buckets so one collective round carries many
// tensors' payloads (Horovod/DDP-style bucket fusion).
//
// Fusion batches the *exchange*, never the codec: compression, error-feedback
// residuals, codec state, and decode-fault recovery all stay per-tensor, so a
// fused step is bitwise-identical to the unfused one on the in-process hub
// (whose allreduce sums per element in rank order, making summation
// position-independent) and internally consistent on any transport. Buckets
// are planned from the tensor metadata alone — never from payload contents or
// sizes, which can differ per rank — so every worker derives the identical
// bucket layout and the collective sequence stays in lockstep.
type FusionConfig struct {
	// TargetBytes is the bucket fill target: consecutive tensors are packed
	// into one bucket until their estimated payload volume (uncompressed
	// width, 4 bytes/element — a rank-independent estimate) would exceed it.
	// 0 disables fusion: every tensor travels in its own collective round,
	// reproducing the legacy per-tensor schedule exactly.
	TargetBytes int
	// MaxTensors caps how many tensors one bucket may carry; 0 means
	// unlimited. The cap bounds the decode fan-out a single corrupt fused
	// frame can poison.
	MaxTensors int
	// ByStrategy, when set, forbids a bucket from mixing communication
	// strategies. An Engine is single-method and therefore single-strategy,
	// so this is a forward-compatibility guard for mixed-method schedules;
	// Custom-strategy tensors are never fused regardless (the compressor
	// drives its own communication).
	ByStrategy bool
}

// Enabled reports whether the config fuses anything at all.
func (fc FusionConfig) Enabled() bool { return fc.TargetBytes > 0 }

// validate rejects nonsensical configurations before they can desync the
// collective schedule.
func (fc FusionConfig) validate() error {
	if fc.TargetBytes < 0 {
		return fmt.Errorf("grace: fusion TargetBytes %d is negative", fc.TargetBytes)
	}
	if fc.MaxTensors < 0 {
		return fmt.Errorf("grace: fusion MaxTensors %d is negative", fc.MaxTensors)
	}
	return nil
}

// bucket is one fusion unit: the contiguous tensor index range [Lo, Hi).
// Contiguity is what lets the engine's comm driver keep issuing collectives
// in ascending tensor order — a bucket launches when its last tensor's
// payload arrives.
type Bucket struct {
	Lo, Hi int
}

// size is the tensor count of the bucket.
func (b Bucket) size() int { return b.Hi - b.Lo }

// planBuckets derives the step's bucket layout from the tensor set and the
// fusion policy. The plan is a pure function of (infos, fc, strategy):
// deterministic and identical on every rank. Estimated volume is the
// uncompressed tensor width; compressed payloads are smaller, so buckets
// under-fill rather than overshoot, which is the safe direction for a fill
// target. A tensor larger than TargetBytes on its own still gets a bucket
// (of one).
func planBuckets(infos []TensorInfo, fc FusionConfig, strategy Strategy) []Bucket {
	m := len(infos)
	if m == 0 {
		return nil
	}
	if !fc.Enabled() || strategy == Custom {
		out := make([]Bucket, m)
		for i := range out {
			out[i] = Bucket{Lo: i, Hi: i + 1}
		}
		return out
	}
	var out []Bucket
	lo, volume := 0, 0
	for i, info := range infos {
		sz := info.Size() * 4
		over := i > lo && volume+sz > fc.TargetBytes
		full := fc.MaxTensors > 0 && i-lo >= fc.MaxTensors
		if over || full {
			out = append(out, Bucket{Lo: lo, Hi: i})
			lo, volume = i, 0
		}
		volume += sz
	}
	return append(out, Bucket{Lo: lo, Hi: m})
}
