package grace_test

import (
	"fmt"
	"testing"

	"repro/internal/comm"
	"repro/internal/grace"
)

// This file is the EF-residual handoff property test: across a mid-stream
// method switch — with either handoff policy — the error-feedback recurrence
//
//	comp_t = r_{t-1} + g_t        (β = γ = 1, Eq. 4)
//	r_t    = comp_t − a_t
//
// telescopes exactly: summing the first equation into the second, the applied
// stream plus the carried residual equals the uncompressed gradient stream,
// Σ a_t + r_T = Σ g_t, in exact float arithmetic (each step's identity holds
// bitwise, so the sum does too). The test replays the recurrence outside the
// engine on a single worker (where the aggregate IS the worker's local
// approximation) and requires the engine's residual memory to match it
// elementwise every step, for every registry method the paper runs under
// framework error feedback. On a flush handoff the test further requires the
// applied value to equal the compensated gradient exactly and the residual to
// be exactly zero — the "clean accounting" the flush promises.

// scriptTuner is a deterministic two-candidate Tuner that switches every
// tensor from candidate 0 to candidate 1 at a fixed step, optionally arming
// the EF flush handoff on the switch step.
type scriptTuner struct {
	cands    []grace.TunerCandidate
	switchAt int64
	flush    bool
	step     int64
}

func (s *scriptTuner) Candidates() []grace.TunerCandidate { return s.cands }
func (s *scriptTuner) Sig() string                        { return "script" }
func (s *scriptTuner) Init([]grace.TensorInfo) error      { return nil }

func (s *scriptTuner) Plan(dst []grace.TunerAssign) int {
	switches := 0
	for i := range dst {
		if s.step < s.switchAt {
			dst[i] = grace.TunerAssign{Cand: 0}
			continue
		}
		dst[i] = grace.TunerAssign{Cand: 1, Flush: s.flush && s.step == s.switchAt}
		if s.step == s.switchAt {
			switches++
		}
	}
	return switches
}

func (s *scriptTuner) Observe([]grace.TunerObs) { s.step++ }
func (s *scriptTuner) State() *grace.TunerState {
	return &grace.TunerState{Sig: "script", Step: s.step}
}
func (s *scriptTuner) LoadState(st *grace.TunerState) error { return nil }

// efPropOptions is the fixed knob carrier for the property run; each method
// reads only the knobs it understands (same convention as the golden corpus).
func efPropOptions(method string) grace.Options {
	o := grace.Options{Ratio: 0.25, Levels: 8, Rank: 2, Threshold: 0.05, Momentum: 0.9, Seed: 123}
	if method == "threelc" {
		o.Threshold = 1.5
	}
	return o
}

// TestEFHandoffTelescopes runs every framework-EF method through a scripted
// mid-stream switch under both handoff policies and checks the telescoping
// identity bitwise at every step.
func TestEFHandoffTelescopes(t *testing.T) {
	const (
		steps    = 7
		switchAt = 3
	)
	infos := engineTestInfos(3)

	var methods []string
	for _, meta := range grace.All() {
		if meta.DefaultEF && !meta.BuiltinEF {
			methods = append(methods, meta.Name)
		}
	}
	if len(methods) < 5 {
		t.Fatalf("registry lists only %d framework-EF methods: %v", len(methods), methods)
	}

	for _, method := range methods {
		for _, mode := range []string{"flush", "carry"} {
			t.Run(fmt.Sprintf("%s/%s", method, mode), func(t *testing.T) {
				// The partner candidate is a different lossy codec so the
				// residual is nonzero on both sides of the switch; when the
				// method under test is topk itself, a different ratio keeps
				// the two candidates distinct.
				partner := grace.TunerCandidate{Label: "partner", Method: "topk", Opts: grace.Options{Ratio: 0.5}}
				tn := &scriptTuner{
					cands: []grace.TunerCandidate{
						{Label: "under-test", Method: method, Opts: efPropOptions(method)},
						partner,
					},
					switchAt: switchAt,
					flush:    mode == "flush",
				}
				mem := grace.NewMemory(1, 1)
				eng, err := grace.NewEngine(
					grace.WithCollective(comm.Serial{}),
					grace.WithTuner(tn),
					grace.WithEngineMemory(mem),
				)
				if err != nil {
					t.Fatal(err)
				}

				// residual replays r_t = comp_t − a_t outside the engine.
				residual := make([][]float32, len(infos))
				for step := 0; step < steps; step++ {
					grads := engineTestGrads(0, step, infos)
					// comp_t = r_{t-1} + g_t, replicated before the engine
					// consumes the gradients (β = γ = 1: the multiplications
					// in Eq. 4 are exact identities).
					comps := make([][]float32, len(infos))
					for i, g := range grads {
						comp := make([]float32, len(g))
						if residual[i] == nil {
							copy(comp, g)
						} else {
							for j := range g {
								comp[j] = residual[i][j] + g[j]
							}
						}
						comps[i] = comp
					}

					aggs, rep, err := eng.Step(grads, infos)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}

					wantFlushes := 0
					if mode == "flush" && step == switchAt {
						wantFlushes = len(infos)
					}
					if rep.Flushes != wantFlushes {
						t.Fatalf("step %d ran %d flush handoffs, want %d", step, rep.Flushes, wantFlushes)
					}

					state := mem.State()
					for i, info := range infos {
						a := aggs[i]
						if wantFlushes > 0 {
							// Flush: the applied value is the compensated
							// gradient itself, exactly.
							for j := range a {
								if a[j] != comps[i][j] {
									t.Fatalf("flush step tensor %d elem %d: applied %v != compensated %v",
										i, j, a[j], comps[i][j])
								}
							}
						}
						// r_t = comp_t − a_t; on a single worker a_t is the
						// local approximation, so this must equal the
						// engine's residual memory bitwise.
						got := state[info.Name]
						if len(got) != len(a) {
							t.Fatalf("step %d tensor %d: memory has %d elems, want %d", step, i, len(got), len(a))
						}
						r := make([]float32, len(a))
						allZero := true
						for j := range a {
							r[j] = comps[i][j] - a[j]
							if r[j] != got[j] {
								t.Fatalf("step %d tensor %d elem %d: replayed residual %v != engine memory %v (method %s, %s)",
									step, i, j, r[j], got[j], method, mode)
							}
							if got[j] != 0 {
								allZero = false
							}
						}
						if wantFlushes > 0 && !allZero {
							t.Fatalf("flush step left a nonzero residual on tensor %d", i)
						}
						residual[i] = r
					}
				}
			})
		}
	}
}
