package grace

import "fmt"

// StepError is the structured failure surfaced by Engine.Step: it pins the
// failure to a tensor (by input index and name) and to the phase of
// Algorithm 1 that broke, while Unwrap preserves the underlying cause so
// errors.Is/As still reach transport sentinels like comm.ErrAborted or a
// typed *comm.Error with (rank, op, step) coordinates.
type StepError struct {
	// Tensor is the input index of the failing tensor, or -1 when the error
	// is not tensor-scoped (e.g. the recovery round's mask exchange).
	Tensor int
	// Name is the failing tensor's TensorInfo.Name ("" when Tensor is -1).
	Name string
	// Phase is where the step broke: "compress" (pre-wire codec work),
	// "collective" (the transport), "custom" (a CustomComm compressor's own
	// communication), "decode" (post-wire codec work), or "recovery" (the
	// DecodeFallback round).
	Phase string
	// Err is the underlying cause.
	Err error
}

// Error formats the step coordinates and cause.
func (e *StepError) Error() string {
	if e.Tensor < 0 {
		return fmt.Sprintf("grace: step failed in %s phase: %v", e.Phase, e.Err)
	}
	return fmt.Sprintf("grace: tensor %d (%s) failed in %s phase: %v", e.Tensor, e.Name, e.Phase, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StepError) Unwrap() error { return e.Err }
