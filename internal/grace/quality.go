package grace

import "sort"

// TensorQuality is one tensor's compression-quality record, accumulated by
// the Engine over the lifetime of the current tensor set (reset when shapes
// change) and rendered by QualityReport. It answers "how hard is this tensor
// actually being compressed, and at what cost": the achieved wire density in
// bits per parameter against the dense 32-bit baseline, the error-feedback
// residual the compression has accumulated, and the decode fault/fallback
// history.
type TensorQuality struct {
	// Tensor and Name identify the tensor (input order / TensorInfo.Name).
	Tensor int    `json:"tensor"`
	Name   string `json:"name"`
	// Method labels the active compression method: the autotuner's current
	// candidate in tuning mode, the engine's fixed method otherwise.
	Method string `json:"method"`
	// Params is the tensor's element count.
	Params int `json:"params"`
	// Steps is how many completed steps the tensor has been exchanged in.
	Steps int64 `json:"steps"`
	// SentBytes is the cumulative compressed payload volume this worker sent
	// for the tensor (including any uncompressed fallback re-exchanges).
	SentBytes int64 `json:"sent_bytes"`
	// BitsPerParam is the achieved average wire density:
	// SentBytes·8 / (Params·Steps). Dense float32 exchange is 32; the ratio
	// 32/BitsPerParam is the achieved compression factor.
	BitsPerParam float64 `json:"bits_per_param"`
	// ResidualL2 is the current L2 norm of the tensor's error-feedback
	// residual (Eq. 4); 0 when the engine runs without EF memory. A
	// monotonically growing trajectory across reports flags a method whose
	// bias the optimizer is not absorbing.
	ResidualL2 float64 `json:"residual_l2"`
	// Faults counts payloads of this tensor that failed decode on this
	// worker; Fallbacks counts the union recovery re-exchanges the group ran
	// for it (rank-identical, ≥ the local fault count in aggregate).
	Faults    int64 `json:"faults"`
	Fallbacks int64 `json:"fallbacks"`
	// EFDrops counts error-feedback residual sets declared lost for this
	// tensor by elastic shrinks: one per evicted rank per shrink while the
	// engine runs with EF memory. The evicted rank's residual was rank-local
	// state with no surviving copy; the drop is recorded rather than hidden.
	EFDrops int64 `json:"ef_drops,omitempty"`
}

// QualityReport renders the per-tensor compression-quality accumulators.
// Rows come back in input-tensor order. The report allocates; it is meant
// for cadence/END-of-run consumption (artifacts, gracestat), not the per-step
// hot path. Must not be called concurrently with Step.
func (e *Engine) QualityReport() []TensorQuality {
	m := len(e.sizes)
	if m == 0 {
		return nil
	}
	names := make([]string, m)
	for name, i := range e.nameIdx {
		names[i] = name
	}
	rows := make([]TensorQuality, m)
	for i := 0; i < m; i++ {
		q := &rows[i]
		q.Tensor = i
		q.Name = names[i]
		q.Method = e.methodLabel(i)
		q.Params = e.sizes[i]
		q.Steps = e.qSteps[i]
		q.SentBytes = e.qSentBytes[i]
		if denom := float64(q.Params) * float64(q.Steps); denom > 0 {
			q.BitsPerParam = float64(q.SentBytes) * 8 / denom
		}
		if e.mem != nil {
			q.ResidualL2 = e.mem.Norm2(q.Name)
		}
		q.Faults = e.qFaults[i]
		q.Fallbacks = e.qFallbacks[i]
		q.EFDrops = e.qEFDrops[i]
	}
	return rows
}

// methodLabel names tensor i's active compression method: the tuner's
// current candidate label in autotuning mode, the fixed compressor's name
// otherwise.
func (e *Engine) methodLabel(i int) string {
	if e.tuner != nil {
		if i < len(e.rep.PolicyByTensor) && e.rep.PolicyByTensor[i] != "" {
			return e.rep.PolicyByTensor[i]
		}
		return "?"
	}
	if len(e.lanes) > 0 && e.lanes[0].comp != nil {
		return e.lanes[0].comp.Name()
	}
	return "?"
}

// SortQualityByDensity orders rows densest-wire-first (highest achieved
// bits/param first), the "who is compressing worst" view gracestat leads
// with. Ties break by tensor index for stable output.
func SortQualityByDensity(rows []TensorQuality) {
	sort.SliceStable(rows, func(a, b int) bool {
		return rows[a].BitsPerParam > rows[b].BitsPerParam
	})
}
