package grace_test

import (
	"fmt"
	"math"
	"testing"

	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

// TestMemoryTelescopingProperty checks the defining invariant of error
// feedback (Eq. 4 with β = γ = 1): the residual memory is exactly the
// information the codec has dropped so far, so over any run
//
//	Σ_t approx_t + residual_T = Σ_t g_t
//
// up to float32 rounding — regardless of how lossy the compressor is. The
// property is exercised over randomized multi-step runs for a spread of codec
// families (sparsification, quantization, threshold methods).
func TestMemoryTelescopingProperty(t *testing.T) {
	cases := []struct {
		name string
		opts []grace.Option
	}{
		{"topk", []grace.Option{grace.WithRatio(0.25)}},
		{"randomk", []grace.Option{grace.WithRatio(0.25), grace.WithSeed(11)}},
		{"qsgd", []grace.Option{grace.WithLevels(8), grace.WithSeed(11)}},
		{"eightbit", nil},
		{"thresholdv", []grace.Option{grace.WithThreshold(0.05)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				c, err := grace.New(tc.name, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				rng := fxrand.New(uint64(trial)*977 + 13)
				shape := []int{5 + trial, 17}
				info := grace.NewTensorInfo(fmt.Sprintf("w%d", trial), shape)
				d := info.Size()
				mem := grace.NewMemory(1, 1)

				steps := 8 + 4*trial
				sumG := make([]float64, d)
				sumA := make([]float64, d)
				var lastComp, lastApprox []float32
				for step := 0; step < steps; step++ {
					g := make([]float32, d)
					for i := range g {
						g[i] = rng.NormFloat32() * 0.1
					}
					comp := mem.Compensate(info.Name, g)
					pay, err := c.Compress(comp, info)
					if err != nil {
						t.Fatalf("step %d compress: %v", step, err)
					}
					approx, err := c.Decompress(pay, info)
					if err != nil {
						t.Fatalf("step %d decompress: %v", step, err)
					}
					if len(approx) != d {
						t.Fatalf("step %d: approx has %d elements, want %d", step, len(approx), d)
					}
					mem.Update(info.Name, comp, approx)
					for i := range g {
						sumG[i] += float64(g[i])
						sumA[i] += float64(approx[i])
					}
					lastComp, lastApprox = comp, approx
				}

				// residual_T = comp_T − approx_T, by definition of Update.
				for i := 0; i < d; i++ {
					residual := float64(lastComp[i]) - float64(lastApprox[i])
					got := sumA[i] + residual
					tol := 1e-3 * math.Max(1, math.Abs(sumG[i]))
					if math.Abs(got-sumG[i]) > tol {
						t.Fatalf("trial %d elem %d: Σapprox+residual = %v, Σg = %v (diff %v)",
							trial, i, got, sumG[i], got-sumG[i])
					}
				}
			}
		})
	}
}

// TestMemoryDecayWeights checks the generalized form φ(m,g) = β·m + γ·g used
// by methods like DGC-style momentum-corrected feedback.
func TestMemoryDecayWeights(t *testing.T) {
	mem := grace.NewMemory(0.5, 2)
	g := []float32{1, -2, 4}
	c1 := mem.Compensate("w", g)
	for i, v := range g {
		if c1[i] != 2*v {
			t.Fatalf("first compensate elem %d = %v, want %v", i, c1[i], 2*v)
		}
	}
	// Drop everything: residual becomes the full compensated vector.
	mem.Update("w", c1, make([]float32, len(g)))
	c2 := mem.Compensate("w", g)
	for i, v := range g {
		want := float32(0.5)*c1[i] + 2*v
		if c2[i] != want {
			t.Fatalf("second compensate elem %d = %v, want %v", i, c2[i], want)
		}
	}
}
