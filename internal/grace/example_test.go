package grace_test

import (
	"fmt"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
)

// ExampleNew shows the registry-based construction of a compressor and a
// basic compress/decompress round trip.
func ExampleNew() {
	c, err := grace.New("topk", grace.Options{Ratio: 0.25})
	if err != nil {
		panic(err)
	}
	g := []float32{0.1, -4, 0.3, 2}
	info := grace.NewTensorInfo("layer.w", []int{4})
	p, _ := c.Compress(g, info)
	out, _ := c.Decompress(p, info)
	fmt.Println(out)
	// Output: [0 -4 0 0]
}

// ExampleMemory demonstrates the error-feedback equations (Eq. 4): the part
// of the gradient a compressor drops is replayed into the next iteration.
func ExampleMemory() {
	mem := grace.NewMemory(1, 1) // β = γ = 1
	g := []float32{1.0}

	compensated := mem.Compensate("w", g) // φ = m + g = 1.0
	approx := []float32{0.25}             // pretend Q kept a quarter
	mem.Update("w", compensated, approx)  // ψ = 1.0 − 0.25 = 0.75

	next := mem.Compensate("w", g) // 0.75 + 1.0
	fmt.Println(next)
	// Output: [1.75]
}

// ExamplePipeline runs one compressed gradient exchange across two workers.
func ExamplePipeline() {
	hub := comm.NewHub(2)
	done := make(chan []float32, 2)
	for rank := 0; rank < 2; rank++ {
		go func(rank int) {
			c, _ := grace.New("none", grace.Options{})
			pipe := &grace.Pipeline{Comp: c, Coll: hub.Worker(rank)}
			g := []float32{float32(rank + 1)} // worker 0: [1], worker 1: [2]
			agg, _, err := pipe.Exchange(g, grace.NewTensorInfo("w", []int{1}))
			if err != nil {
				panic(err)
			}
			done <- agg
		}(rank)
	}
	a, b := <-done, <-done
	fmt.Println(a[0], b[0]) // both workers hold the mean
	// Output: 1.5 1.5
}

// ExampleLookup inspects a method's Table I metadata.
func ExampleLookup() {
	m, _ := grace.Lookup("qsgd")
	fmt.Println(m.Class, m.Nature, m.Output)
	// Output: quantization randomized ‖g‖0
}
