package grace_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/data"
	"repro/internal/grace"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/simnet"
)

// ckptConfig is a tiny run sized so checkpoints land mid-epoch: 3 workers ×
// 4 iters/epoch × 2 epochs = 8 lockstep steps.
func ckptConfig(method string, mem bool) grace.Config {
	ds := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 96, Noise: 0.3, Seed: 5})
	return grace.Config{
		Workers:   3,
		BatchSize: 8,
		Epochs:    2,
		Seed:      11,
		NewModel: func(seed uint64) grace.Model {
			return models.NewMLPClassifier(seed, 64, []int{24}, 4)
		},
		Dataset:      ds,
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.05, 0.9) },
		NewCompressor: func(rank int) (grace.Compressor, error) {
			return grace.New(method, grace.Options{Seed: uint64(rank) + 1, Ratio: 0.25, Levels: 8})
		},
		UseMemory:        mem,
		CodecParallelism: 2,
		Net:              simnet.TCP10G,
	}
}

// runCheckpointed drives RunWorker for every rank over one hub, saving
// periodic checkpoints into dir and returning each rank's final snapshot
// (captured via Checkpoint.Final). resume[rank], when non-nil, restores that
// rank before its first step.
func runCheckpointed(t *testing.T, cfg grace.Config, dir string, every int,
	resume []*grace.Snapshot) []*grace.Snapshot {
	t.Helper()
	hub := comm.NewHub(cfg.Workers)
	cluster := simnet.NewCluster(cfg.Net, cfg.Workers)
	finals := make([]*grace.Snapshot, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.Workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := cfg
			d, err := ckpt.OpenDir(dir, rank)
			if err != nil {
				errs[rank] = err
				return
			}
			c.Checkpoint = &grace.CheckpointConfig{
				Every: every,
				Final: true,
				Save: func(s *grace.Snapshot) error {
					finals[rank] = s
					return d.SaveStep(s)
				},
			}
			if resume != nil {
				c.Checkpoint.Resume = resume[rank]
			}
			_, errs[rank] = grace.RunWorker(c, rank, hub.Worker(rank), cluster)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return finals
}

func assertSnapshotsBitwiseEqual(t *testing.T, got, want []*grace.Snapshot, label string) {
	t.Helper()
	for rank := range want {
		g, w := got[rank], want[rank]
		if g.Step != w.Step {
			t.Fatalf("%s: rank %d final step %d, want %d", label, rank, g.Step, w.Step)
		}
		for i := range w.Params {
			for j := range w.Params[i].Data {
				gb := math.Float32bits(g.Params[i].Data[j])
				wb := math.Float32bits(w.Params[i].Data[j])
				if gb != wb {
					t.Fatalf("%s: rank %d param %s[%d]: %08x != %08x",
						label, rank, w.Params[i].Name, j, gb, wb)
				}
			}
		}
	}
}

// TestTrainerCheckpointResumeBitwise: for a stateless method with framework
// EF memory (topk), a built-in-EF method (dgc), and an RNG-carrying method
// (qsgd), a run restored from its on-disk mid-run checkpoint must finish
// with weights bitwise identical to the uninterrupted run — through the full
// ckpt encode→fsync→decode path, mid-epoch and at an epoch boundary.
func TestTrainerCheckpointResumeBitwise(t *testing.T) {
	cases := []struct {
		method string
		mem    bool
	}{
		{"topk", true},
		{"dgc", false},
		{"qsgd", true},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			cfg := ckptConfig(tc.method, tc.mem)
			refDir := t.TempDir()
			want := runCheckpointed(t, cfg, refDir, 3, nil)

			// Checkpoints exist at steps 3 and 6 (every=3, 8 steps total);
			// resume from each — step 3 is mid-epoch 0, step 6 is mid-epoch 1.
			for _, step := range []int64{3, 6} {
				resume := make([]*grace.Snapshot, cfg.Workers)
				for rank := range resume {
					d, err := ckpt.OpenDir(refDir, rank)
					if err != nil {
						t.Fatal(err)
					}
					s, err := ckpt.Load(d.Path(step))
					if err != nil {
						t.Fatalf("loading rank %d step %d: %v", rank, step, err)
					}
					resume[rank] = s
				}
				got := runCheckpointed(t, cfg, t.TempDir(), 3, resume)
				assertSnapshotsBitwiseEqual(t, got, want, tc.method)
			}
		})
	}
}

// TestTrainerCheckpointResumeLocalSGD: the sync point and since-sync counter
// survive a resume in local-SGD mode.
func TestTrainerCheckpointResumeLocalSGD(t *testing.T) {
	cfg := ckptConfig("topk", true)
	cfg.SyncEvery = 3 // sync boundaries at steps 3 and 6; checkpoint every 2
	refDir := t.TempDir()
	want := runCheckpointed(t, cfg, refDir, 2, nil)

	resume := make([]*grace.Snapshot, cfg.Workers)
	for rank := range resume {
		d, err := ckpt.OpenDir(refDir, rank)
		if err != nil {
			t.Fatal(err)
		}
		// Step 4: mid sync-window (sinceSync = 1).
		s, err := ckpt.Load(d.Path(4))
		if err != nil {
			t.Fatal(err)
		}
		if s.SinceSync != 1 {
			t.Fatalf("rank %d step 4 sinceSync = %d, want 1", rank, s.SinceSync)
		}
		if s.SyncPoint == nil {
			t.Fatalf("rank %d snapshot lacks a sync point", rank)
		}
		resume[rank] = s
	}
	got := runCheckpointed(t, cfg, t.TempDir(), 2, resume)
	assertSnapshotsBitwiseEqual(t, got, want, "local-sgd")
}

// TestTrainerCheckpointValidation: a snapshot from a different
// configuration is rejected with a descriptive error, not silently resumed.
func TestTrainerCheckpointValidation(t *testing.T) {
	cfg := ckptConfig("topk", true)
	dir := t.TempDir()
	finals := runCheckpointed(t, cfg, dir, 0, nil) // Final-only snapshots

	tryResume := func(mutate func(c *grace.Config, s *grace.Snapshot)) error {
		c := ckptConfig("topk", true)
		s := *finals[0]
		mutate(&c, &s)
		hub := comm.NewHub(1)
		c.Workers = 1
		s.Workers = 1
		c.Checkpoint = &grace.CheckpointConfig{Resume: &s}
		_, err := grace.RunWorker(c, 0, hub.Worker(0), simnet.NewCluster(c.Net, 1))
		return err
	}

	cases := map[string]struct {
		mutate func(c *grace.Config, s *grace.Snapshot)
		want   string
	}{
		"seed":   {func(c *grace.Config, s *grace.Snapshot) { s.Seed = 999 }, "seed"},
		"rank":   {func(c *grace.Config, s *grace.Snapshot) { s.Rank = 2 }, "rank"},
		"method": {func(c *grace.Config, s *grace.Snapshot) { s.Method = "dgc" }, "method"},
		"memory": {func(c *grace.Config, s *grace.Snapshot) { c.UseMemory = false }, "error-feedback"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			err := tryResume(tc.mutate)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestRunRejectsResume: the multi-goroutine Run entry point refuses a
// shared Resume snapshot.
func TestRunRejectsResume(t *testing.T) {
	cfg := ckptConfig("topk", true)
	cfg.Checkpoint = &grace.CheckpointConfig{Resume: &grace.Snapshot{}}
	if _, err := grace.Run(cfg); err == nil || !strings.Contains(err.Error(), "per-rank") {
		t.Fatalf("err = %v, want per-rank rejection", err)
	}
}
