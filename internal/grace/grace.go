// Package grace is the core of the reproduction: the unified compressed-
// communication framework of §IV. It defines the Compressor interface (the
// paper's compress/decompress API), the error-feedback Memory (the
// memory_compensate/memory_update functions, Eq. 4), the compressor registry
// (Table I), the communication-strategy dispatch of Algorithm 1, and the
// distributed training loop itself.
package grace

import (
	"fmt"

	"repro/internal/comm"
)

// Strategy selects the collective primitive a compressor's payloads require
// (Algorithm 1, lines 7-14).
type Strategy int

const (
	// Allgather is the general strategy: workers exchange opaque compressed
	// payloads and aggregate after decompression (Agg = mean). It supports
	// variable sizes and arbitrary wire formats.
	Allgather Strategy = iota
	// Allreduce requires the compressed form to be a dense summable float32
	// vector of fixed length; aggregation happens inside the collective.
	// It is cheaper on the wire (2(n−1)/n vs n−1 payload traversals) but,
	// as the paper notes, most compressed formats are not summable.
	Allreduce
	// Custom lets the compressor drive communication itself (PowerSGD's
	// two-allreduce scheme); the compressor must implement CustomComm.
	Custom
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Allgather:
		return "allgather"
	case Allreduce:
		return "allreduce"
	case Custom:
		return "custom"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// TensorInfo describes the gradient tensor being compressed. Name is unique
// per parameter and stable across iterations, which is what lets compressors
// and memories keep per-tensor state. Rows/Cols give the matrix view used by
// low-rank methods (for a parameter of shape [a,b,...] the framework uses
// a × (size/a); vectors become 1 × size).
type TensorInfo struct {
	Name       string
	Shape      []int
	Rows, Cols int
}

// NewTensorInfo derives the matrix view from a shape.
func NewTensorInfo(name string, shape []int) TensorInfo {
	size := 1
	for _, d := range shape {
		size *= d
	}
	rows := 1
	if len(shape) >= 2 {
		rows = shape[0]
	}
	cols := size
	if rows > 0 {
		cols = size / rows
	}
	return TensorInfo{Name: name, Shape: append([]int(nil), shape...), Rows: rows, Cols: cols}
}

// Size returns the number of elements.
func (t TensorInfo) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Payload is one compressed gradient message. Exactly one of Dense and Bytes
// is populated: Dense for Allreduce-strategy compressors (summable float32
// form), Bytes for the packed Allgather wire format.
type Payload struct {
	Dense []float32
	Bytes []byte
}

// WireBytes is the metered on-the-wire size of the payload, the paper's
// per-worker data-volume metric. Dense payloads cost 4 bytes per element.
func (p *Payload) WireBytes() int {
	if p == nil {
		return 0
	}
	if p.Dense != nil {
		return len(p.Dense) * 4
	}
	return len(p.Bytes)
}

// Compressor is the paper's core abstraction: a (lossy) codec for gradient
// tensors. Compress must not retain or mutate g. Decompress must return a
// vector of exactly info.Size() elements and must not retain p or return
// memory aliasing it (the framework recycles payload buffers through a
// sync.Pool). Implementations may keep per-tensor state keyed by info.Name
// (momentum, low-rank warm starts); they are used by a single worker and
// need not be safe for concurrent use — the Engine pins each tensor to one
// compressor instance so per-tensor state is never touched from two
// goroutines.
type Compressor interface {
	Name() string
	Strategy() Strategy
	Compress(g []float32, info TensorInfo) (*Payload, error)
	Decompress(p *Payload, info TensorInfo) ([]float32, error)
}

// Aggregator is the paper's custom Agg function (Algorithm 1, line 13):
// compressors under the Allgather strategy may replace the default mean of
// decompressed gradients with their own aggregation — e.g. SignSGD with
// majority vote [30] takes the sign of the element-wise sum.
type Aggregator interface {
	Compressor
	// Aggregate combines the decompressed per-worker gradients (rank order)
	// into the global gradient. Implementations must not retain decoded.
	Aggregate(decoded [][]float32, info TensorInfo) []float32
}

// CustomComm is implemented by Strategy() == Custom compressors that manage
// their own communication (e.g. PowerSGD allreduces its low-rank factors).
// It returns the aggregated (already averaged) gradient and the number of
// bytes this worker sent.
type CustomComm interface {
	Compressor
	CommunicateAggregate(g []float32, info TensorInfo, coll comm.Collective) (agg []float32, sentBytes int, err error)
}

// scale multiplies a vector by s in place and returns it.
func scale(x []float32, s float32) []float32 {
	for i := range x {
		x[i] *= s
	}
	return x
}
