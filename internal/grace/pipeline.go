package grace

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/telemetry"
)

// StepStats reports what one Exchange did, for volume accounting and
// modeled communication time.
type StepStats struct {
	Strategy Strategy
	// SentBytes is this worker's wire payload (the paper's data-volume
	// metric).
	SentBytes int
	// RecvBytes is the peer payload volume this worker collected for the
	// tensor: the reduced vector for Allreduce (full width), the n-1 peer
	// payloads for Allgather — which is where sparsifiers' true wire cost
	// hides at scale — and, for Custom strategies that do not report their
	// own receive volume, a SentBytes mirror (symmetric-exchange assumption).
	RecvBytes int
	// GatherSizes holds every worker's payload size for Allgather exchanges
	// (nil otherwise); simnet's allgather cost model consumes it.
	GatherSizes []int
	// CodecTime is the measured compress+decompress+memory time, excluding
	// time spent blocked in the collective.
	CodecTime time.Duration
}

// Pipeline binds a compressor, an optional framework error-feedback memory,
// and a collective into the per-tensor exchange of Algorithm 1 (lines 5-14).
// One Pipeline belongs to one worker. It is the single-tensor primitive; the
// Engine composes it across a whole step's tensors with codec/communication
// overlap.
type Pipeline struct {
	Comp Compressor
	Mem  *Memory // nil disables framework EF
	Coll comm.Collective

	// caps memoizes Capabilities(Comp) after the first Exchange.
	caps    Caps
	capsSet bool
}

// Exchange runs one tensor through compress → communicate → aggregate and
// returns the aggregated (mean) gradient every worker agrees on. The
// returned slice is freshly allocated and owned by the caller.
func (p *Pipeline) Exchange(g []float32, info TensorInfo) ([]float32, StepStats, error) {
	if !p.capsSet {
		p.caps = Capabilities(p.Comp)
		p.capsSet = true
	}
	var stats StepStats
	stats.Strategy = p.caps.Strategy
	n := float32(p.Coll.Size())

	start := time.Now()
	comp := g
	pooled := false
	if p.Mem != nil {
		comp = getF32(len(g))
		pooled = true
		p.Mem.compensateInto(comp, info.Name, g)
	}
	defer func() {
		if pooled {
			putF32(comp)
		}
	}()

	// Custom strategy: the compressor drives communication itself.
	if stats.Strategy == Custom {
		if p.caps.Custom == nil {
			return nil, stats, fmt.Errorf("grace: %s declares Custom strategy but lacks CustomComm", p.Comp.Name())
		}
		stats.CodecTime = time.Since(start)
		agg, sent, err := p.caps.Custom.CommunicateAggregate(comp, info, p.Coll)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: %s custom comm: %w", p.Comp.Name(), err)
		}
		stats.SentBytes = sent
		stats.RecvBytes = sent // symmetric-exchange assumption, as in Engine
		if p.Mem != nil {
			t := time.Now()
			p.Mem.Update(info.Name, comp, agg)
			stats.CodecTime += time.Since(t)
		}
		return agg, stats, nil
	}

	pay, err := p.Comp.Compress(comp, info)
	if err != nil {
		return nil, stats, fmt.Errorf("grace: %s compress %s: %w", p.Comp.Name(), info.Name, err)
	}
	stats.SentBytes = pay.WireBytes()

	// Worker-local approximation, needed for the memory update; computed
	// before communication so codec time excludes collective wait.
	if p.Mem != nil {
		if p.caps.Into != nil {
			approx := getF32(info.Size())
			if err := p.caps.Into.DecompressInto(pay, info, approx); err != nil {
				return nil, stats, fmt.Errorf("grace: %s local decompress: %w", p.Comp.Name(), err)
			}
			p.Mem.Update(info.Name, comp, approx)
			putF32(approx)
		} else {
			approx, err := p.Comp.Decompress(pay, info)
			if err != nil {
				return nil, stats, fmt.Errorf("grace: %s local decompress: %w", p.Comp.Name(), err)
			}
			p.Mem.Update(info.Name, comp, approx)
		}
	}
	stats.CodecTime = time.Since(start)

	var agg []float32
	switch stats.Strategy {
	case Allreduce:
		if pay.Dense == nil {
			return nil, stats, fmt.Errorf("grace: %s uses Allreduce but produced no dense payload", p.Comp.Name())
		}
		summed := getF32(len(pay.Dense))
		copy(summed, pay.Dense)
		if err := p.Coll.AllreduceF32(summed); err != nil {
			return nil, stats, fmt.Errorf("grace: allreduce: %w", err)
		}
		stats.RecvBytes = len(summed) * 4
		t := time.Now()
		agg, err = p.Comp.Decompress(&Payload{Dense: summed}, info)
		putF32(summed)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: %s decompress sum: %w", p.Comp.Name(), err)
		}
		scale(agg, 1/n)
		stats.CodecTime += time.Since(t)

	case Allgather:
		if pay.Bytes == nil && pay.Dense != nil {
			return nil, stats, fmt.Errorf("grace: %s uses Allgather but produced a dense payload", p.Comp.Name())
		}
		all, err := p.Coll.AllgatherBytes(pay.Bytes)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: allgather: %w", err)
		}
		stats.GatherSizes = make([]int, len(all))
		for rank, b := range all {
			stats.GatherSizes[rank] = len(b)
			if rank != p.Coll.Rank() {
				stats.RecvBytes += len(b)
			}
		}
		t := time.Now()
		agg = make([]float32, info.Size())
		ts := telScope{rank: p.Coll.Rank(), tid: telemetry.TIDDriver}
		if err := decodeAggregate(p.Comp, p.caps, all, info, agg, n, ts); err != nil {
			return nil, stats, err
		}
		stats.CodecTime += time.Since(t)

	default:
		return nil, stats, fmt.Errorf("grace: unhandled strategy %v", stats.Strategy)
	}
	return agg, stats, nil
}

// decodeAggregate decompresses every rank's Allgather payload and writes the
// aggregate into dst (len(dst) == info.Size(), contents ignored). The default
// aggregation is the mean, accumulated in rank order so results are bitwise
// identical on every worker; compressors with a custom Agg function
// (caps.Aggregator) replace it. When the compressor supports DecompressInto,
// the mean path runs allocation-free over a pooled scratch buffer. ts scopes
// the decode/aggregate telemetry spans to the calling lane or pipeline.
func decodeAggregate(c Compressor, caps Caps, all [][]byte, info TensorInfo, dst []float32, n float32, ts telScope) error {
	size := info.Size()
	if caps.Aggregator != nil {
		// Custom Agg function (Algorithm 1, line 13) needs every rank's
		// decoded gradient at once.
		span := ts.start()
		decoded := make([][]float32, len(all))
		for rank, b := range all {
			dec, err := c.Decompress(&Payload{Bytes: b}, info)
			if err != nil {
				return fmt.Errorf("grace: %s decompress rank %d: %w", c.Name(), rank, err)
			}
			if len(dec) != size {
				return fmt.Errorf("grace: %s decompressed %d elements, want %d", c.Name(), len(dec), size)
			}
			decoded[rank] = dec
		}
		ts.end(telemetry.PhaseDecode, info.Name, span)
		span = ts.start()
		agg := caps.Aggregator.Aggregate(decoded, info)
		if len(agg) != size {
			return fmt.Errorf("grace: %s aggregated %d elements, want %d", c.Name(), len(agg), size)
		}
		copy(dst, agg)
		ts.end(telemetry.PhaseAggregate, info.Name, span)
		return nil
	}

	for i := range dst {
		dst[i] = 0
	}
	var scratch []float32
	if caps.Into != nil {
		scratch = getF32(size)
		defer putF32(scratch)
	}
	var decodeNs, aggNs time.Duration
	for rank, b := range all {
		var dec []float32
		span := ts.start()
		if caps.Into != nil {
			if err := caps.Into.DecompressInto(&Payload{Bytes: b}, info, scratch); err != nil {
				return fmt.Errorf("grace: %s decompress rank %d: %w", c.Name(), rank, err)
			}
			dec = scratch
		} else {
			var err error
			dec, err = c.Decompress(&Payload{Bytes: b}, info)
			if err != nil {
				return fmt.Errorf("grace: %s decompress rank %d: %w", c.Name(), rank, err)
			}
			if len(dec) != size {
				return fmt.Errorf("grace: %s decompressed %d elements, want %d", c.Name(), len(dec), size)
			}
		}
		decodeNs += telemetry.Default.Observe(telemetry.PhaseDecode, ts.rank, ts.tid, info.Name, span)
		span = ts.start()
		for i, v := range dec {
			dst[i] += v
		}
		aggNs += telemetry.Default.Observe(telemetry.PhaseAggregate, ts.rank, ts.tid, info.Name, span)
	}
	span := ts.start()
	scale(dst, 1/n)
	aggNs += telemetry.Default.Observe(telemetry.PhaseAggregate, ts.rank, ts.tid, info.Name, span)
	if ts.acc != nil {
		ts.acc[telemetry.PhaseDecode] += int64(decodeNs)
		ts.acc[telemetry.PhaseAggregate] += int64(aggNs)
	}
	return nil
}
