package grace

import (
	"fmt"
	"time"

	"repro/internal/comm"
)

// StepStats reports what one Exchange did, for volume accounting and
// modeled communication time.
type StepStats struct {
	Strategy Strategy
	// SentBytes is this worker's wire payload (the paper's data-volume
	// metric).
	SentBytes int
	// GatherSizes holds every worker's payload size for Allgather exchanges
	// (nil otherwise); simnet's allgather cost model consumes it.
	GatherSizes []int
	// CodecTime is the measured compress+decompress+memory time, excluding
	// time spent blocked in the collective.
	CodecTime time.Duration
}

// Pipeline binds a compressor, an optional framework error-feedback memory,
// and a collective into the per-tensor exchange of Algorithm 1 (lines 5-14).
// One Pipeline belongs to one worker.
type Pipeline struct {
	Comp Compressor
	Mem  *Memory // nil disables framework EF
	Coll comm.Collective
}

// Exchange runs one tensor through compress → communicate → aggregate and
// returns the aggregated (mean) gradient every worker agrees on.
func (p *Pipeline) Exchange(g []float32, info TensorInfo) ([]float32, StepStats, error) {
	var stats StepStats
	stats.Strategy = p.Comp.Strategy()
	n := float32(p.Coll.Size())

	start := time.Now()
	comp := g
	if p.Mem != nil {
		comp = p.Mem.Compensate(info.Name, g)
	}

	// Custom strategy: the compressor drives communication itself.
	if stats.Strategy == Custom {
		cc, ok := p.Comp.(CustomComm)
		if !ok {
			return nil, stats, fmt.Errorf("grace: %s declares Custom strategy but lacks CustomComm", p.Comp.Name())
		}
		stats.CodecTime = time.Since(start)
		agg, sent, err := cc.CommunicateAggregate(comp, info, p.Coll)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: %s custom comm: %w", p.Comp.Name(), err)
		}
		stats.SentBytes = sent
		if p.Mem != nil {
			t := time.Now()
			p.Mem.Update(info.Name, comp, agg)
			stats.CodecTime += time.Since(t)
		}
		return agg, stats, nil
	}

	pay, err := p.Comp.Compress(comp, info)
	if err != nil {
		return nil, stats, fmt.Errorf("grace: %s compress %s: %w", p.Comp.Name(), info.Name, err)
	}
	stats.SentBytes = pay.WireBytes()

	// Worker-local approximation, needed for the memory update; computed
	// before communication so codec time excludes collective wait.
	var approx []float32
	if p.Mem != nil {
		approx, err = p.Comp.Decompress(pay, info)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: %s local decompress: %w", p.Comp.Name(), err)
		}
		p.Mem.Update(info.Name, comp, approx)
	}
	stats.CodecTime = time.Since(start)

	var agg []float32
	switch stats.Strategy {
	case Allreduce:
		if pay.Dense == nil {
			return nil, stats, fmt.Errorf("grace: %s uses Allreduce but produced no dense payload", p.Comp.Name())
		}
		summed := append([]float32(nil), pay.Dense...)
		if err := p.Coll.AllreduceF32(summed); err != nil {
			return nil, stats, fmt.Errorf("grace: allreduce: %w", err)
		}
		t := time.Now()
		agg, err = p.Comp.Decompress(&Payload{Dense: summed}, info)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: %s decompress sum: %w", p.Comp.Name(), err)
		}
		scale(agg, 1/n)
		stats.CodecTime += time.Since(t)

	case Allgather:
		if pay.Bytes == nil && pay.Dense != nil {
			return nil, stats, fmt.Errorf("grace: %s uses Allgather but produced a dense payload", p.Comp.Name())
		}
		all, err := p.Coll.AllgatherBytes(pay.Bytes)
		if err != nil {
			return nil, stats, fmt.Errorf("grace: allgather: %w", err)
		}
		stats.GatherSizes = make([]int, len(all))
		t := time.Now()
		decoded := make([][]float32, len(all))
		for rank, b := range all {
			stats.GatherSizes[rank] = len(b)
			dec, err := p.Comp.Decompress(&Payload{Bytes: b}, info)
			if err != nil {
				return nil, stats, fmt.Errorf("grace: %s decompress rank %d: %w", p.Comp.Name(), rank, err)
			}
			if len(dec) != info.Size() {
				return nil, stats, fmt.Errorf("grace: %s decompressed %d elements, want %d", p.Comp.Name(), len(dec), info.Size())
			}
			decoded[rank] = dec
		}
		if aggc, ok := p.Comp.(Aggregator); ok {
			// Custom Agg function (Algorithm 1, line 13).
			agg = aggc.Aggregate(decoded, info)
			if len(agg) != info.Size() {
				return nil, stats, fmt.Errorf("grace: %s aggregated %d elements, want %d", p.Comp.Name(), len(agg), info.Size())
			}
		} else {
			agg = make([]float32, info.Size())
			for _, dec := range decoded {
				for i, v := range dec {
					agg[i] += v
				}
			}
			scale(agg, 1/n)
		}
		stats.CodecTime += time.Since(t)

	default:
		return nil, stats, fmt.Errorf("grace: unhandled strategy %v", stats.Strategy)
	}
	return agg, stats, nil
}
