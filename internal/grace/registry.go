package grace

import (
	"fmt"
	"sort"
	"sync"
)

// Options carries the tunable parameters compressor factories understand.
// Each method reads the fields relevant to it and ignores the rest; zero
// values select the method's documented defaults.
type Options struct {
	// Ratio is the sparsification ratio k/d (Top-k, Random-k, DGC, Adaptive).
	Ratio float64
	// Levels is the quantization level count s (QSGD) or bucket count
	// (SketchML).
	Levels int
	// Rank is the factorization rank r (PowerSGD, ATOMO).
	Rank int
	// Threshold is the fixed threshold τ (Threshold-v, 1-bit SGD).
	Threshold float64
	// Momentum is the momentum coefficient for methods with built-in
	// momentum (SIGNUM, DGC).
	Momentum float64
	// Seed seeds the method's private RNG (randomized compressors).
	Seed uint64
}

// Factory constructs a fresh per-worker compressor instance.
type Factory func(o Options) (Compressor, error)

// Meta is one row of the paper's Table I: a method's taxonomy entry plus its
// factory.
type Meta struct {
	// Name is the registry key, e.g. "topk".
	Name string
	// Class is one of "baseline", "quantization", "sparsification",
	// "hybrid", "lowrank".
	Class string
	// Output describes ‖g̃‖0: "‖g‖0", "k", "adaptive" or "(m+L)r".
	Output string
	// Nature is "deterministic" or "randomized" (the paper's Nature of Q).
	Nature string
	// DefaultEF reports whether the paper runs the method with framework
	// error feedback on (Table I's EF-On column).
	DefaultEF bool
	// BuiltinEF reports whether the method manages its own memory, in which
	// case framework EF must stay off (1-bit SGD, EFsignSGD, DGC, 3LC,
	// PowerSGD).
	BuiltinEF bool
	// Reference cites the original paper.
	Reference string
	// New builds an instance.
	New Factory
}

var (
	regMu    sync.RWMutex
	registry = map[string]Meta{}
)

// Register adds a method to the registry. Compressor packages call it from
// init(); registering a duplicate name panics to surface wiring mistakes
// early.
func Register(m Meta) {
	regMu.Lock()
	defer regMu.Unlock()
	if m.Name == "" || m.New == nil {
		panic("grace: Register requires a name and factory")
	}
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("grace: duplicate compressor %q", m.Name))
	}
	registry[m.Name] = m
}

// Lookup returns a method's metadata.
func Lookup(name string) (Meta, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	m, ok := registry[name]
	if !ok {
		return Meta{}, fmt.Errorf("grace: unknown compressor %q (have %v)", name, namesLocked())
	}
	return m, nil
}

// New constructs a compressor by name. Configuration is given as functional
// options (WithRatio, WithLevels, ...); a literal Options struct is itself an
// Option, so both styles compose:
//
//	grace.New("topk", grace.WithRatio(0.01))
//	grace.New("qsgd", grace.Options{Levels: 64}, grace.WithSeed(7))
func New(name string, opts ...Option) (Compressor, error) {
	m, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return m.New(BuildOptions(opts...))
}

// Names lists registered methods in sorted order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns every registered Meta sorted by (class, name); this is the
// data behind the Table I reproduction.
func All() []Meta {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Meta, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return classOrder(out[i].Class) < classOrder(out[j].Class)
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func classOrder(c string) int {
	switch c {
	case "baseline":
		return 0
	case "quantization":
		return 1
	case "sparsification":
		return 2
	case "hybrid":
		return 3
	case "lowrank":
		return 4
	default:
		return 5
	}
}
