package grace_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/grace"
	"repro/internal/simnet"
)

// elasticCfg is ckptConfig with the elastic prerequisites attached per rank
// at launch time (Rejoin and Checkpoint are per-worker, built by the runner).
func elasticCfg(method string, mem bool, workers int) grace.Config {
	cfg := ckptConfig(method, mem)
	cfg.Workers = workers
	return cfg
}

// runElasticResumed drives an elastic-enabled run over one hub where each
// rank resumes from the given snapshot (possibly captured at a different
// world size), returning the per-rank final snapshots.
func runElasticResumed(t *testing.T, cfg grace.Config, dir string,
	resume []*grace.Snapshot) []*grace.Snapshot {
	t.Helper()
	hub := comm.NewHub(cfg.Workers)
	cluster := simnet.NewCluster(cfg.Net, cfg.Workers)
	finals := make([]*grace.Snapshot, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.Workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := cfg
			d, err := ckpt.OpenDir(dir, rank)
			if err != nil {
				errs[rank] = err
				return
			}
			c.Checkpoint = &grace.CheckpointConfig{
				Every: 3,
				Final: true,
				Save: func(s *grace.Snapshot) error {
					finals[rank] = s
					return d.SaveStep(s)
				},
			}
			if resume != nil {
				c.Checkpoint.Resume = resume[rank]
			}
			c.Rejoin = d.RejoinConfig()
			c.Elastic = &grace.ElasticConfig{RejoinDeadline: time.Second}
			_, errs[rank] = grace.RunWorker(c, rank, hub.Worker(rank), cluster)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return finals
}

// loadStep loads every rank's on-disk snapshot at one step.
func loadStep(t *testing.T, dir string, workers int, step int64) []*grace.Snapshot {
	t.Helper()
	out := make([]*grace.Snapshot, workers)
	for rank := range out {
		d, err := ckpt.OpenDir(dir, rank)
		if err != nil {
			t.Fatal(err)
		}
		if out[rank], err = ckpt.Load(d.Path(step)); err != nil {
			t.Fatalf("loading rank %d step %d: %v", rank, step, err)
		}
	}
	return out
}

// TestElasticResumeShrinkWorldSize: snapshots captured by a 3-worker run
// resume into a 2-worker elastic run. The loop position is re-derived (the
// interrupted epoch replays from its start under the new partition), the
// finals carry the new world size, and the whole transform is deterministic:
// two independent resumed runs finish bitwise identical.
func TestElasticResumeShrinkWorldSize(t *testing.T) {
	srcDir := t.TempDir()
	runCheckpointed(t, elasticCfg("topk", true, 3), srcDir, 3, nil)

	// Ranks 0 and 1 of the 3-worker run become the 2-worker group; their
	// snapshots keep Workers=3, which is what selects the elastic transform.
	resume := loadStep(t, srcDir, 2, 3)
	small := elasticCfg("topk", true, 2)
	got := runElasticResumed(t, small, t.TempDir(), resume)

	// 96 examples / (8 batch × 2 workers) = 6 iters/epoch. Resume lands at
	// step 3 inside epoch 0, which replays in full: 3 + 6 + 6.
	const wantFinal = 15
	for rank, s := range got {
		if s.Step != wantFinal {
			t.Fatalf("rank %d final step %d, want %d", rank, s.Step, wantFinal)
		}
		if s.Workers != 2 {
			t.Fatalf("rank %d final world size %d, want 2", rank, s.Workers)
		}
	}

	again := runElasticResumed(t, small, t.TempDir(), resume)
	assertSnapshotsBitwiseEqual(t, again, got, "shrink-resume determinism")
}

// TestElasticResumeGrowWorldSize: snapshots captured by a 2-worker run resume
// into a 3-worker elastic run; the extra rank adopts a donor snapshot with
// its rank identity rewritten (the state-transfer path). Deterministic across
// two independent runs.
func TestElasticResumeGrowWorldSize(t *testing.T) {
	srcDir := t.TempDir()
	runCheckpointed(t, elasticCfg("topk", true, 2), srcDir, 3, nil)

	// Step 3 is pruned by the source run's keep-3 retention (12 steps mean
	// checkpoints at 3,6,9,12); step 6 — the epoch boundary — survives.
	resume := loadStep(t, srcDir, 2, 6)
	adopted := *resume[0]
	adopted.Rank = 2
	resume = append(resume, &adopted)

	big := elasticCfg("topk", true, 3)
	got := runElasticResumed(t, big, t.TempDir(), resume)

	// 96 / (8 × 3) = 4 iters/epoch. The step-6 snapshot records epoch 0,
	// iter 6 (the epoch counter advances at the loop boundary, after the
	// save), and the elastic transform replays the recorded epoch from its
	// start under the 3-way partition: 6 + 4 + 4.
	const wantFinal = 14
	for rank, s := range got {
		if s.Step != wantFinal {
			t.Fatalf("rank %d final step %d, want %d", rank, s.Step, wantFinal)
		}
		if s.Workers != 3 {
			t.Fatalf("rank %d final world size %d, want 3", rank, s.Workers)
		}
	}

	again := runElasticResumed(t, big, t.TempDir(), resume)
	assertSnapshotsBitwiseEqual(t, again, got, "grow-resume determinism")
}

// TestElasticResumeReshardDeterministic: the sampler's partition at a new
// world size is a pure function of (len, workers, rank, seed) — every member
// derives the identical re-shard with no coordination, the shards are
// disjoint, and together they cover exactly the per-worker truncation of the
// same global permutation.
func TestElasticResumeReshardDeterministic(t *testing.T) {
	const n, bs, seed = 96, 8, 11
	for _, workers := range []int{2, 3, 4} {
		seen := make(map[int]int)
		total := 0
		for rank := 0; rank < workers; rank++ {
			// Derive twice; the schedules must agree element for element.
			a := data.NewSampler(n, workers, rank, seed).EpochBatches(bs)
			b := data.NewSampler(n, workers, rank, seed).EpochBatches(bs)
			if len(a) != len(b) {
				t.Fatalf("workers=%d rank %d: %d vs %d batches across derivations", workers, rank, len(a), len(b))
			}
			for i := range a {
				for j := range a[i] {
					if a[i][j] != b[i][j] {
						t.Fatalf("workers=%d rank %d: batch %d element %d differs", workers, rank, i, j)
					}
					if prev, dup := seen[a[i][j]]; dup {
						t.Fatalf("workers=%d: example %d in both rank %d and rank %d shards", workers, a[i][j], prev, rank)
					}
					seen[a[i][j]] = rank
					total++
				}
			}
		}
		// Every worker contributes full batches over an equal shard: the
		// union covers workers×⌊(n/workers)/bs⌋×bs distinct examples.
		want := workers * ((n / workers) / bs) * bs
		if total != want {
			t.Fatalf("workers=%d: %d examples covered, want %d", workers, total, want)
		}
	}
}

// TestElasticResumeRejectsWithoutElastic: without ElasticConfig a cross-world
// snapshot must still be refused — the transform is opt-in.
func TestElasticResumeRejectsWithoutElastic(t *testing.T) {
	srcDir := t.TempDir()
	runCheckpointed(t, elasticCfg("topk", true, 3), srcDir, 3, nil)
	resume := loadStep(t, srcDir, 2, 3)
	cfg := elasticCfg("topk", true, 2)
	hub := comm.NewHub(2)
	cfg.Checkpoint = &grace.CheckpointConfig{Resume: resume[0]}
	_, err := grace.RunWorker(cfg, 0, hub.Worker(0), simnet.NewCluster(cfg.Net, 2))
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Fatalf("err = %v, want worker-count rejection", err)
	}
}
