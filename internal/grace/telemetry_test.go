package grace_test

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/telemetry"
)

// telInfos builds a small mixed-shape tensor set for engine telemetry tests.
func telInfos(m int) []grace.TensorInfo {
	infos := make([]grace.TensorInfo, m)
	for i := range infos {
		shape := []int{32, 4}
		if i%2 == 1 {
			shape = []int{41}
		}
		infos[i] = grace.NewTensorInfo(fmt.Sprintf("tel%d", i), shape)
	}
	return infos
}

func telGrads(rank int, infos []grace.TensorInfo) [][]float32 {
	out := make([][]float32, len(infos))
	for i, info := range infos {
		g := make([]float32, info.Size())
		for j := range g {
			g[j] = float32((j+rank*13+i*7)%101)*0.001 - 0.05
		}
		out[i] = g
	}
	return out
}

// runTelStep runs `steps` engine steps on `workers` hub workers and returns
// rank 0's last report.
func runTelStep(t *testing.T, workers, steps int, newComp func() (grace.Compressor, error)) *grace.StepReport {
	t.Helper()
	infos := telInfos(4)
	hub := comm.NewHub(workers)
	var rep *grace.StepReport
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll: hub.Worker(rank), New: newComp, Parallelism: 2,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			grads := telGrads(rank, infos)
			for s := 0; s < steps; s++ {
				_, r, err := eng.Step(grads, infos)
				if err != nil {
					errs[rank] = err
					return
				}
				if rank == 0 {
					rep = r
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return rep
}

// TestEngineTelemetryAcrossStrategies drives one engine step per strategy
// with span recording on and checks (a) the per-step phase timings land in
// StepReport.PhaseNs, (b) RecvBytes follows each strategy's semantics, and
// (c) the global registry's step and per-strategy byte counters advance by
// exactly what the reports claim. Counter assertions are deltas: the Default
// registry is process-global and other tests in this binary also feed it.
func TestEngineTelemetryAcrossStrategies(t *testing.T) {
	prev := telemetry.Default.Enabled()
	telemetry.Default.Enable(true)
	defer telemetry.Default.Enable(prev)

	cases := []struct {
		method   string
		opts     grace.Options
		strategy grace.Strategy
	}{
		{"none", grace.Options{}, grace.Allreduce},
		{"topk", grace.Options{Ratio: 0.25}, grace.Allgather},
		{"powersgd", grace.Options{Rank: 2}, grace.Custom},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			const workers = 3
			stepsBefore := telemetry.Default.Value(telemetry.CtrSteps)
			sentBefore, recvBefore := telemetry.Default.StrategyBytes(int(tc.strategy))

			rep := runTelStep(t, workers, 1, func() (grace.Compressor, error) {
				return grace.New(tc.method, tc.opts)
			})

			if rep.SentBytes <= 0 || rep.RecvBytes <= 0 {
				t.Fatalf("degenerate volume: sent=%d recv=%d", rep.SentBytes, rep.RecvBytes)
			}
			bs := rep.ByStrategy[int(tc.strategy)]
			if bs.Tensors != 4 {
				t.Fatalf("expected all 4 tensors under %v, got %+v", tc.strategy, rep.ByStrategy)
			}
			switch tc.strategy {
			case grace.Allreduce:
				// The reduced vector comes back at full dense width: recv ==
				// sent for an uncompressed allreduce.
				if rep.RecvBytes != rep.SentBytes {
					t.Fatalf("allreduce recv=%d, want %d", rep.RecvBytes, rep.SentBytes)
				}
			case grace.Allgather:
				// n-1 peers with equal payload sizes (same ratio, same L).
				if rep.RecvBytes != (workers-1)*rep.SentBytes {
					t.Fatalf("allgather recv=%d, want %d", rep.RecvBytes, (workers-1)*rep.SentBytes)
				}
			case grace.Custom:
				// Symmetric-exchange mirror.
				if rep.RecvBytes != rep.SentBytes {
					t.Fatalf("custom recv=%d, want %d", rep.RecvBytes, rep.SentBytes)
				}
			}

			if rep.PhaseNs[telemetry.PhaseCollective] <= 0 {
				t.Fatalf("no collective time recorded: %v", rep.PhaseNs)
			}
			if tc.strategy == grace.Allgather &&
				rep.PhaseNs[telemetry.PhaseDecode]+rep.PhaseNs[telemetry.PhaseAggregate] <= 0 {
				t.Fatalf("allgather recorded no decode/aggregate time: %v", rep.PhaseNs)
			}

			if got := telemetry.Default.Value(telemetry.CtrSteps) - stepsBefore; got != workers {
				t.Fatalf("step counter advanced by %d, want %d", got, workers)
			}
			sentAfter, recvAfter := telemetry.Default.StrategyBytes(int(tc.strategy))
			// Every worker sends and receives the same volume on this
			// symmetric workload.
			if sentAfter-sentBefore != int64(workers*rep.SentBytes) {
				t.Fatalf("strategy sent delta = %d, want %d", sentAfter-sentBefore, workers*rep.SentBytes)
			}
			if recvAfter-recvBefore != int64(workers*rep.RecvBytes) {
				t.Fatalf("strategy recv delta = %d, want %d", recvAfter-recvBefore, workers*rep.RecvBytes)
			}
		})
	}
}

// TestStepReportPhaseNsDisabled checks the flip side: with span recording
// off, Step still works and PhaseNs stays zero (the disabled fast path does
// not time anything).
func TestStepReportPhaseNsDisabled(t *testing.T) {
	prev := telemetry.Default.Enabled()
	telemetry.Default.Enable(false)
	defer telemetry.Default.Enable(prev)

	rep := runTelStep(t, 2, 1, func() (grace.Compressor, error) {
		return grace.New("topk", grace.Options{Ratio: 0.25})
	})
	for p, ns := range rep.PhaseNs {
		if ns != 0 {
			t.Fatalf("phase %v recorded %dns with telemetry disabled", telemetry.Phase(p), ns)
		}
	}
	if rep.SentBytes <= 0 || rep.RecvBytes <= 0 {
		t.Fatalf("volume accounting must not depend on telemetry: %+v", rep)
	}
}

// TestTrainerRecvPerIter checks the trainer surfaces the receive volume:
// for a 2-worker allgather method every worker receives exactly what its one
// peer sends, so RecvPerIter must equal BytesPerIter.
func TestTrainerRecvPerIter(t *testing.T) {
	cfg := baseConfig(2, "topk", true)
	cfg.Epochs = 1
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RecvPerIter <= 0 {
		t.Fatalf("RecvPerIter = %v, want > 0", rep.RecvPerIter)
	}
	// Sent volume is the compressor's modeled WireBytes while received volume
	// counts actual gathered payload lengths, so the two can differ by a few
	// bytes of framing — but for one peer they must agree closely.
	if ratio := rep.RecvPerIter / rep.BytesPerIter; ratio < 0.98 || ratio > 1.02 {
		t.Fatalf("2-worker allgather: RecvPerIter %v vs BytesPerIter %v", rep.RecvPerIter, rep.BytesPerIter)
	}
}

// TestTelemetryConcurrentEngineAndHeartbeat is the race battery: engines on
// a live heartbeat-enabled TCP ring hammer the span/counter paths from codec
// lanes, wire goroutines, and heartbeat loops, while scrapers concurrently
// read Prometheus text, snapshots, and raw counters, and a tracer serializes
// every span. Run with -race this proves the registry is data-race free end
// to end.
func TestTelemetryConcurrentEngineAndHeartbeat(t *testing.T) {
	prev := telemetry.Default.Enabled()
	telemetry.Default.Enable(true)
	defer telemetry.Default.Enable(prev)
	tr := telemetry.NewTracer(io.Discard)
	telemetry.Default.SetTracer(tr)
	defer telemetry.Default.SetTracer(nil)

	pingsBefore := telemetry.Default.Value(telemetry.CtrHeartbeatPings)
	wireBefore := telemetry.Default.Value(telemetry.CtrWireBytesSent)

	const ranks = 2
	addrs := freeTelAddrs(t, ranks)

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				telemetry.Default.WritePrometheus(io.Discard)
				telemetry.Default.Snapshot()
				telemetry.Default.Value(telemetry.CtrWireBytesRecv)
			}
		}()
	}

	infos := telInfos(4)
	var wg sync.WaitGroup
	errs := make([]error, ranks)
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// A generous miss budget: the hot scraper goroutines contend for
			// CPU, and a starved ping loop must not convict a healthy peer.
			ring, err := comm.DialTCPRingConfig(comm.RingConfig{
				Rank: rank, Addrs: addrs,
				SetupTimeout:    10 * time.Second,
				OpTimeout:       30 * time.Second,
				Heartbeat:       10 * time.Millisecond,
				HeartbeatMisses: 20,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			defer ring.Close()
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll: ring,
				New: func() (grace.Compressor, error) {
					return grace.New("topk", grace.Options{Ratio: 0.25})
				},
				Parallelism: 2,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			grads := telGrads(rank, infos)
			for s := 0; s < 15; s++ {
				if _, _, err := eng.Step(grads, infos); err != nil {
					errs[rank] = err
					return
				}
			}
			// Idle past one heartbeat interval so pings provably tick even
			// when the steps themselves finish quickly.
			time.Sleep(25 * time.Millisecond)
		}(rank)
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	if telemetry.Default.Value(telemetry.CtrWireBytesSent) <= wireBefore {
		t.Fatal("no wire bytes counted on the TCP ring")
	}
	if telemetry.Default.Value(telemetry.CtrHeartbeatPings) <= pingsBefore {
		t.Fatal("no heartbeat pings counted")
	}
}

// freeTelAddrs reserves n distinct loopback ports by briefly listening.
func freeTelAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}
