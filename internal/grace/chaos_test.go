package grace_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
)

// chaosDeadline fails the test if fn does not return within d: the chaos
// suite's core assertion that injected faults become typed errors, not hangs.
func chaosDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("deadlocked: engine step did not complete within deadline")
	}
}

// chaosRun drives per-worker Engines over a (possibly Faulty-wrapped) hub for
// several steps and returns each rank's final outputs, last report, and first
// error. A nil plan runs the raw hub.
func chaosRun(t *testing.T, workers, steps int, infos []grace.TensorInfo, plan *comm.Plan,
	fallback bool) ([][][]float32, []*grace.StepReport, []error) {
	t.Helper()
	hub := comm.NewHub(workers)
	outs := make([][][]float32, workers)
	reps := make([]*grace.StepReport, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var coll comm.Collective = hub.Worker(rank)
			if plan != nil {
				coll = comm.NewFaulty(coll, *plan)
			}
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:           coll,
				New:            func() (grace.Compressor, error) { return grace.New("topk", grace.WithRatio(0.2)) },
				Parallelism:    2,
				DecodeFallback: fallback,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			for step := 0; step < steps; step++ {
				aggs, rep, err := eng.Step(engineTestGrads(rank, step, infos), infos)
				if err != nil {
					errs[rank] = err
					return
				}
				reps[rank] = rep
				outs[rank] = make([][]float32, len(aggs))
				for i, a := range aggs {
					outs[rank][i] = append([]float32(nil), a...)
				}
			}
		}(rank)
	}
	wg.Wait()
	return outs, reps, errs
}

// TestEngineChaosTable drives the Engine through every comm.Faulty fault kind
// and asserts the step-level contract: benign faults (delay, stall) leave the
// results bitwise identical to a fault-free run, while fatal faults (drop,
// reset) surface typed *grace.StepError values wrapping typed *comm.Error
// coordinates on every rank — within a hard deadline, never a hang.
func TestEngineChaosTable(t *testing.T) {
	const (
		workers = 3
		steps   = 4
		tensors = 6
	)
	infos := engineTestInfos(tensors)
	clean, _, cleanErrs := chaosRun(t, workers, steps, infos, nil, false)
	for rank, err := range cleanErrs {
		if err != nil {
			t.Fatalf("clean run rank %d: %v", rank, err)
		}
	}

	benign := func(t *testing.T, plan comm.Plan) {
		var outs [][][]float32
		var errs []error
		chaosDeadline(t, 30*time.Second, func() {
			outs, _, errs = chaosRun(t, workers, steps, infos, &plan, false)
		})
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: benign fault became an error: %v", rank, err)
			}
		}
		for rank := range outs {
			for ti := range infos {
				for j := range clean[rank][ti] {
					if outs[rank][ti][j] != clean[rank][ti][j] {
						t.Fatalf("rank %d tensor %d elem %d diverges from fault-free run", rank, ti, j)
					}
				}
			}
		}
	}
	fatal := func(t *testing.T, plan comm.Plan, victim int) {
		var errs []error
		chaosDeadline(t, 30*time.Second, func() {
			_, _, errs = chaosRun(t, workers, steps, infos, &plan, false)
		})
		for rank, err := range errs {
			if err == nil {
				t.Fatalf("rank %d: completed despite injected %s", rank, plan.Faults[0].Kind)
			}
			var se *grace.StepError
			if !errors.As(err, &se) {
				t.Fatalf("rank %d: error %v is not a *grace.StepError", rank, err)
			}
			if se.Phase != "collective" {
				t.Fatalf("rank %d: phase %q, want collective", rank, se.Phase)
			}
			var ce *comm.Error
			if !errors.As(err, &ce) || ce.Rank != rank {
				t.Fatalf("rank %d: error %v lacks typed comm coordinates", rank, err)
			}
		}
		if !errors.Is(errs[victim], comm.ErrInjected) {
			t.Fatalf("victim error %v should wrap ErrInjected", errs[victim])
		}
		for rank, err := range errs {
			if rank != victim && !errors.Is(err, comm.ErrAborted) {
				t.Fatalf("peer rank %d error %v should wrap ErrAborted", rank, err)
			}
		}
	}

	t.Run("delay", func(t *testing.T) {
		benign(t, comm.Plan{Faults: []comm.Fault{
			{Kind: comm.FaultDelay, Rank: 0, Op: comm.OpAllgather, Delay: 200 * time.Microsecond},
		}})
	})
	t.Run("stall", func(t *testing.T) {
		benign(t, comm.Plan{Faults: []comm.Fault{
			{Kind: comm.FaultStall, Rank: 1, Delay: 200 * time.Microsecond},
		}})
	})
	t.Run("drop", func(t *testing.T) {
		fatal(t, comm.Plan{Faults: []comm.Fault{
			{Kind: comm.FaultDrop, Rank: 1, Op: comm.OpAllgather, FromStep: 3},
		}}, 1)
	})
	t.Run("reset", func(t *testing.T) {
		fatal(t, comm.Plan{Faults: []comm.Fault{
			{Kind: comm.FaultReset, Rank: 2, Op: comm.OpAllgather, FromStep: 5},
		}}, 2)
	})
}

// rawComp is an identity Allgather codec for fault testing: payloads are the
// raw little-endian float32 bytes, except that the rank holding poison emits
// garbage for that tensor name — a deterministic stand-in for wire corruption
// that defeats decode on every rank.
type rawComp struct {
	poison string
}

func (c *rawComp) Name() string             { return "rawtest" }
func (c *rawComp) Strategy() grace.Strategy { return grace.Allgather }

func (c *rawComp) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	if info.Name == c.poison {
		return &grace.Payload{Bytes: []byte{0xDE, 0xAD}}, nil
	}
	b := make([]byte, len(g)*4)
	for i, v := range g {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return &grace.Payload{Bytes: b}, nil
}

func (c *rawComp) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	if len(p.Bytes) != info.Size()*4 {
		return nil, fmt.Errorf("rawtest: payload is %d bytes, want %d", len(p.Bytes), info.Size()*4)
	}
	out := make([]float32, info.Size())
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(p.Bytes[i*4:]))
	}
	return out, nil
}

// runRawEngines drives 3 workers with rawComp (rank 0 optionally poisoning
// one tensor) and returns outputs, reports, errors.
func runRawEngines(t *testing.T, infos []grace.TensorInfo, poison string, fallback bool) ([][][]float32, []*grace.StepReport, []error) {
	t.Helper()
	const workers = 3
	hub := comm.NewHub(workers)
	outs := make([][][]float32, workers)
	reps := make([]*grace.StepReport, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := ""
			if rank == 0 {
				p = poison
			}
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:           hub.Worker(rank),
				Comp:           &rawComp{poison: p},
				DecodeFallback: fallback,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			aggs, rep, err := eng.Step(engineTestGrads(rank, 0, infos), infos)
			if err != nil {
				errs[rank] = err
				return
			}
			reps[rank] = rep
			outs[rank] = make([][]float32, len(aggs))
			for i, a := range aggs {
				outs[rank][i] = append([]float32(nil), a...)
			}
		}(rank)
	}
	wg.Wait()
	return outs, reps, errs
}

// TestEngineDecodeFallbackRecovers: with DecodeFallback, a payload that fails
// to decode does not kill the step — every rank agrees on the failure via the
// mask exchange, re-exchanges that tensor uncompressed, and lands on the mean
// of the raw gradients; the report counts the fault and the fallback.
func TestEngineDecodeFallbackRecovers(t *testing.T) {
	const workers = 3
	infos := engineTestInfos(4)
	poison := infos[2].Name

	var outs [][][]float32
	var reps []*grace.StepReport
	var errs []error
	chaosDeadline(t, 30*time.Second, func() {
		outs, reps, errs = runRawEngines(t, infos, poison, true)
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: fallback did not recover: %v", rank, err)
		}
	}
	for rank, rep := range reps {
		// Allgather hands rank 0's poisoned payload to everyone, so every
		// rank observes exactly one local fault and one group fallback.
		if rep.Faults != 1 || rep.Fallbacks != 1 {
			t.Fatalf("rank %d: Faults=%d Fallbacks=%d, want 1/1", rank, rep.Faults, rep.Fallbacks)
		}
	}

	// rawComp is an identity codec, so every tensor — recovered or not — must
	// equal the rank-ordered float32 mean of the raw gradients.
	grads := make([][][]float32, workers)
	for rank := range grads {
		grads[rank] = engineTestGrads(rank, 0, infos)
	}
	s := 1 / float32(workers)
	for ti, info := range infos {
		for j := 0; j < info.Size(); j++ {
			var sum float32
			for rank := 0; rank < workers; rank++ {
				sum += grads[rank][ti][j]
			}
			want := sum * s
			for rank := 0; rank < workers; rank++ {
				got := outs[rank][ti][j]
				if math.Abs(float64(got-want)) > 1e-5*math.Max(1, math.Abs(float64(want))) {
					t.Fatalf("rank %d tensor %d elem %d: got %v, want mean %v", rank, ti, j, got, want)
				}
			}
		}
	}
}

// TestEngineDecodeFailureFatalWithoutFallback: the same corruption without
// DecodeFallback is a structured, tensor-scoped step error on every rank —
// and still not a hang, because decode runs after the collectives complete.
func TestEngineDecodeFailureFatalWithoutFallback(t *testing.T) {
	infos := engineTestInfos(4)
	poison := infos[2].Name
	var errs []error
	chaosDeadline(t, 30*time.Second, func() {
		_, _, errs = runRawEngines(t, infos, poison, false)
	})
	for rank, err := range errs {
		if err == nil {
			t.Fatalf("rank %d: decode failure went unnoticed", rank)
		}
		var se *grace.StepError
		if !errors.As(err, &se) {
			t.Fatalf("rank %d: error %v is not a *grace.StepError", rank, err)
		}
		if se.Phase != "decode" || se.Tensor != 2 || se.Name != poison {
			t.Fatalf("rank %d: error coordinates %+v, want decode/2/%s", rank, se, poison)
		}
	}
}

// TestEngineFallbackFaultFreeOverhead: with no faults, DecodeFallback changes
// nothing but the one-bitmask wire overhead — outputs stay bitwise identical.
func TestEngineFallbackFaultFreeOverhead(t *testing.T) {
	infos := engineTestInfos(4)
	plain, plainReps, errs1 := runRawEngines(t, infos, "", false)
	fb, fbReps, errs2 := runRawEngines(t, infos, "", true)
	for rank := range errs1 {
		if errs1[rank] != nil || errs2[rank] != nil {
			t.Fatalf("rank %d: %v / %v", rank, errs1[rank], errs2[rank])
		}
	}
	for rank := range plain {
		if fbReps[rank].Faults != 0 || fbReps[rank].Fallbacks != 0 {
			t.Fatalf("rank %d: phantom faults in fault-free run: %+v", rank, fbReps[rank])
		}
		maskBytes := (len(infos) + 7) / 8
		if got, want := fbReps[rank].SentBytes, plainReps[rank].SentBytes+maskBytes; got != want {
			t.Fatalf("rank %d: fallback wire volume %d, want %d (+%d mask bytes)", rank, got, want, maskBytes)
		}
		for ti := range infos {
			for j := range plain[rank][ti] {
				if plain[rank][ti][j] != fb[rank][ti][j] {
					t.Fatalf("rank %d tensor %d elem %d: fallback changed a fault-free result", rank, ti, j)
				}
			}
		}
	}
}

// boomComp fails Compress for one tensor name while armed.
type boomComp struct {
	rawComp
	armed *bool
	name  string
}

var errCompressBoom = errors.New("compress boom")

func (c *boomComp) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	if *c.armed && info.Name == c.name {
		return nil, errCompressBoom
	}
	return c.rawComp.Compress(g, info)
}

// TestEngineDrainsLanesAfterError: a failed step must leave the engine
// reusable — codec lanes and the ready queue drain cleanly, and the next
// Step on the same engine succeeds.
func TestEngineDrainsLanesAfterError(t *testing.T) {
	infos := engineTestInfos(5)
	hub := comm.NewHub(1)
	armed := true
	eng, err := grace.NewEngine(grace.EngineConfig{
		Coll: hub.Worker(0),
		Comp: &boomComp{armed: &armed, name: infos[1].Name},
	})
	if err != nil {
		t.Fatal(err)
	}
	chaosDeadline(t, 30*time.Second, func() {
		_, _, err := eng.Step(engineTestGrads(0, 0, infos), infos)
		var se *grace.StepError
		if !errors.As(err, &se) || se.Phase != "compress" || se.Tensor != 1 {
			t.Fatalf("step error %v, want compress-phase StepError at tensor 1", err)
		}
		if !errors.Is(err, errCompressBoom) {
			t.Fatalf("step error %v should wrap the compressor's cause", err)
		}
		armed = false
		aggs, _, err := eng.Step(engineTestGrads(0, 1, infos), infos)
		if err != nil {
			t.Fatalf("engine unusable after a failed step: %v", err)
		}
		if len(aggs) != len(infos) {
			t.Fatalf("post-recovery step returned %d tensors, want %d", len(aggs), len(infos))
		}
	})
}
