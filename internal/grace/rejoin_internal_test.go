package grace

import (
	"bytes"
	"testing"
)

func TestStepListCodec(t *testing.T) {
	cases := []struct {
		steps []int64
		text  string
	}{
		{nil, ""},
		{[]int64{3}, "3"},
		{[]int64{3, 6, 9}, "3,6,9"},
	}
	for _, tc := range cases {
		b := encodeStepList(tc.steps)
		if string(b) != tc.text {
			t.Errorf("encode(%v) = %q, want %q", tc.steps, b, tc.text)
		}
		back, err := decodeStepList(b)
		if err != nil || len(back) != len(tc.steps) {
			t.Fatalf("decode(%q) = %v, %v", b, back, err)
		}
		for i := range back {
			if back[i] != tc.steps[i] {
				t.Errorf("round trip lost %v: got %v", tc.steps, back)
			}
		}
	}
	// Hostile peers: malformed text must error, never panic or mis-parse.
	for _, bad := range []string{",", "3,", "x", "3,-4", "9223372036854775808"} {
		if _, err := decodeStepList([]byte(bad)); err == nil {
			t.Errorf("decodeStepList(%q) accepted malformed input", bad)
		}
	}
}

func TestCommonStep(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]int64
		step  int64
		donor int
	}{
		{"all-aligned", [][]int64{{3, 6}, {3, 6}, {3, 6}}, 6, 0},
		{"laggard", [][]int64{{3, 6}, {3}, {3, 6}}, 3, 0},
		{"stateless-rank", [][]int64{{3, 6}, nil, {3, 6}}, 6, 0},
		{"stateless-donor-shift", [][]int64{nil, {3, 6}, {3, 6}}, 6, 1},
		{"disjoint", [][]int64{{3}, {6}, {3, 6}}, -1, 0},
		{"nobody", [][]int64{nil, nil, nil}, -1, -1},
		{"duplicates", [][]int64{{3, 3, 6}, {6}, {6}}, 6, 0},
	}
	for _, tc := range cases {
		step, donor := commonStep(tc.lists)
		if step != tc.step || donor != tc.donor {
			t.Errorf("%s: commonStep = (%d, %d), want (%d, %d)", tc.name, step, donor, tc.step, tc.donor)
		}
	}
}

func TestRejoinConfigDefaults(t *testing.T) {
	rj := &RejoinConfig{}
	if err := rj.validate(); err == nil {
		t.Fatal("empty RejoinConfig passed validation")
	}
	if rj.maxHeals() != 3 {
		t.Fatalf("default MaxHeals = %d, want 3", rj.maxHeals())
	}
	rj.MaxHeals = 7
	if rj.maxHeals() != 7 {
		t.Fatalf("explicit MaxHeals = %d, want 7", rj.maxHeals())
	}
	if !bytes.Equal(encodeStepList(nil), nil) {
		t.Fatal("stateless rank must encode as the empty payload")
	}
}
