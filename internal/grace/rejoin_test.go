package grace_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

var errSimulatedCrash = errors.New("simulated crash")

type healEvent struct {
	rank int
	gen  uint64
	step int64
}

// runRejoinScenario runs cfg over a hub with the self-healing path enabled,
// crashes killRank right after killStep, poisons the group the way a real
// transport's liveness layer would (comm.ErrPeerDead), and respawns only the
// victim with SyncOnStart. wipedDir, when non-empty, is a fresh checkpoint
// root for the respawned rank — the donor-state-transfer scenario. It
// returns each rank's final snapshot plus the per-rank OnHeal events.
func runRejoinScenario(t *testing.T, cfg grace.Config, dir string, every int,
	killRank int, killStep int64, wipedDir string) ([]*grace.Snapshot, []healEvent) {
	t.Helper()
	hub := comm.NewHub(cfg.Workers)
	hub.SetReformTimeout(30 * time.Second)
	cluster := simnet.NewCluster(cfg.Net, cfg.Workers)
	finals := make([]*grace.Snapshot, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var mu sync.Mutex
	var heals []healEvent

	mkCfg := func(rank int, root string, killAt int64, respawn bool) (grace.Config, error) {
		c := cfg
		d, err := ckpt.OpenDir(root, rank)
		if err != nil {
			return c, err
		}
		c.Checkpoint = &grace.CheckpointConfig{
			Every: every,
			Final: true,
			Save: func(s *grace.Snapshot) error {
				finals[rank] = s
				return d.SaveStep(s)
			},
		}
		rj := d.RejoinConfig()
		rj.SyncOnStart = respawn
		rj.OnHeal = func(gen uint64, step int64) {
			mu.Lock()
			heals = append(heals, healEvent{rank: rank, gen: gen, step: step})
			mu.Unlock()
		}
		c.Rejoin = rj
		if killAt > 0 {
			c.OnStep = func(_ int, step int64) error {
				if step == killAt {
					return errSimulatedCrash
				}
				return nil
			}
		}
		return c, nil
	}

	died := make(chan struct{})
	var wg sync.WaitGroup
	for rank := 0; rank < cfg.Workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			killAt := int64(0)
			if rank == killRank {
				killAt = killStep
			}
			c, err := mkCfg(rank, dir, killAt, false)
			if err != nil {
				errs[rank] = err
				return
			}
			_, err = grace.RunWorker(c, rank, hub.Worker(rank), cluster)
			if rank == killRank {
				if !errors.Is(err, errSimulatedCrash) {
					errs[rank] = fmt.Errorf("victim exited with %v, want the simulated crash", err)
				}
				close(died)
				return
			}
			errs[rank] = err
		}(rank)
	}

	// Supervisor: once the victim is down, deliver the liveness verdict to the
	// group and respawn only the dead rank. The survivors' goroutines keep
	// their original RunWorker call — that is the whole point of rejoin.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-died
		hub.Abort(fmt.Errorf("rank %d process died: %w", killRank, comm.ErrPeerDead))
		root := dir
		if wipedDir != "" {
			root = wipedDir
		}
		c, err := mkCfg(killRank, root, 0, true)
		if err != nil {
			errs[killRank] = err
			return
		}
		_, errs[killRank] = grace.RunWorker(c, killRank, hub.Worker(killRank), cluster)
	}()
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return finals, heals
}

// TestTrainerRejoinBitwise: a mid-run rank death healed by generation reform
// plus rollback-to-common-step must finish with every rank's weights bitwise
// identical to the uninterrupted run — with the healthy ranks never leaving
// their original RunWorker call. Covers the framework-EF topk path and the
// codec-stateful dgc path (both roll back to their OWN checkpoints, so
// per-rank divergent state is fully restored).
func TestTrainerRejoinBitwise(t *testing.T) {
	cases := []struct {
		method string
		mem    bool
	}{
		{"topk", true},
		{"dgc", false},
	}
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			cfg := ckptConfig(tc.method, tc.mem)
			want := runCheckpointed(t, cfg, t.TempDir(), 3, nil)

			// Checkpoints at steps 3 and 6 of 8; kill right after step 5 so
			// the group rolls back to 3 and replays two already-done steps.
			got, heals := runRejoinScenario(t, cfg, t.TempDir(), 3, 1, 5, "")
			assertSnapshotsBitwiseEqual(t, got, want, tc.method)
			if len(heals) != cfg.Workers {
				t.Fatalf("heal events = %+v, want one per rank", heals)
			}
			for _, h := range heals {
				if h.gen != 1 || h.step != 3 {
					t.Fatalf("heal event %+v, want generation 1 at step 3", h)
				}
			}
		})
	}
}

// TestTrainerRejoinDonorTransfer: when the respawned rank lost its checkpoint
// directory, it adopts the donor's snapshot over the collective. With no
// per-rank divergent state (EF memory off, stateless deterministic codec) the
// adopted state equals what the rank's own checkpoint would have held, so the
// run still finishes bitwise identical to the uninterrupted reference — and
// the state-transfer byte counter moves.
func TestTrainerRejoinDonorTransfer(t *testing.T) {
	cfg := ckptConfig("topk", false)
	want := runCheckpointed(t, cfg, t.TempDir(), 3, nil)

	telemetry.Default.Enable(true)
	defer telemetry.Default.Enable(false)
	before := telemetry.Default.Value(telemetry.CtrRejoinTransferBytes)
	got, heals := runRejoinScenario(t, cfg, t.TempDir(), 3, 1, 5, t.TempDir())
	assertSnapshotsBitwiseEqual(t, got, want, "donor-transfer")
	if len(heals) != cfg.Workers {
		t.Fatalf("heal events = %+v, want one per rank", heals)
	}
	if d := telemetry.Default.Value(telemetry.CtrRejoinTransferBytes) - before; d <= 0 {
		t.Fatalf("rejoin transfer bytes delta = %d, want > 0", d)
	}
}

// TestTrainerRejoinRequiresCheckpoints: a heal with no recovery point
// anywhere fails with a descriptive error instead of looping.
func TestTrainerRejoinRequiresCheckpoints(t *testing.T) {
	cfg := ckptConfig("topk", true)
	cfg.Workers = 1
	hub := comm.NewHub(1)
	d, err := ckpt.OpenDir(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	rj := d.RejoinConfig()
	rj.SyncOnStart = true // forces a heal round before the first step
	cfg.Rejoin = rj
	_, err = grace.RunWorker(cfg, 0, hub.Worker(0), simnet.NewCluster(cfg.Net, 1))
	if err == nil || !strings.Contains(err.Error(), "no rank holds a checkpoint") {
		t.Fatalf("err = %v, want the no-recovery-point rejection", err)
	}

	// An incomplete RejoinConfig is rejected before any training happens.
	bad := ckptConfig("topk", true)
	bad.Workers = 1
	bad.Rejoin = &grace.RejoinConfig{}
	_, err = grace.RunWorker(bad, 0, comm.NewHub(1).Worker(0), simnet.NewCluster(bad.Net, 1))
	if err == nil || !strings.Contains(err.Error(), "ListSteps") {
		t.Fatalf("err = %v, want the RejoinConfig validation error", err)
	}
}

// TestEnginePauseGuard: a paused engine refuses Step, and Resume restores it.
func TestEnginePauseGuard(t *testing.T) {
	eng, err := grace.NewEngine(
		grace.WithCollective(comm.Serial{}),
		grace.WithCompressorFactory(func() (grace.Compressor, error) {
			return grace.New("none", grace.Options{})
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Pause(); err != nil {
		t.Fatalf("pause at rest: %v", err)
	}
	if _, _, err := eng.Step(nil, nil); err == nil || !strings.Contains(err.Error(), "paused") {
		t.Fatalf("paused Step err = %v, want the pause rejection", err)
	}
	eng.Resume()
	if _, _, err := eng.Step(nil, nil); err != nil {
		t.Fatalf("resumed Step: %v", err)
	}
}
