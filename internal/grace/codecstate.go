package grace

import (
	"fmt"

	"repro/internal/fxrand"
)

// CodecState is a serializable snapshot of one compressor instance's evolving
// state. Two kinds of state exist in this repository's methods:
//
//   - Per-tensor vectors (DGC's momentum u and accumulator v), keyed
//     slot name → tensor name → flat vector.
//   - A deterministic random stream (QSGD's randomized rounding RNG).
//
// A compressor reports whichever it has; both maps/pointers may be nil.
type CodecState struct {
	// Tensors holds per-tensor state vectors: slot → tensor name → data.
	Tensors map[string]map[string][]float32
	// RNG is the compressor's random stream position, if it has one.
	RNG *fxrand.State
}

// Stateful is implemented by compressors whose internal state must survive a
// checkpoint/restore cycle for training to resume bitwise-identically.
// Stateless methods (topk, efsignsgd, ...) simply don't implement it.
//
// CodecState must return a deep copy; LoadCodecState must deep-copy its
// input, so a loaded snapshot can be handed to several lane instances.
type Stateful interface {
	Compressor
	CodecState() CodecState
	LoadCodecState(CodecState) error
}

// EngineCodecState is the engine-level merge of all codec lanes' state.
//
// Tensors are pinned to lanes (tensor i → lane i mod P), so each per-tensor
// vector lives authoritatively in exactly one lane instance; the engine
// filters out stale duplicates at capture and hands every lane the full map
// at restore (non-owned entries are never read, hence harmless). Lane RNG
// streams are positional, which makes a snapshot valid only for the same
// lane count — LoadCodecState enforces that.
type EngineCodecState struct {
	// Method is the compressor name the state belongs to.
	Method string
	// Tensors is the merged per-tensor state: slot → tensor name → data.
	Tensors map[string]map[string][]float32
	// LaneRNGs holds one RNG state per codec lane, or nil when the method
	// has no random stream.
	LaneRNGs []fxrand.State
}

// Method reports the compressor method name the engine runs. In autotuning
// mode there is no single method; the policy signature stands in, so
// checkpoints reject a resume under a differently configured policy through
// the same config check that pins fixed methods.
func (e *Engine) Method() string {
	if e.tuner != nil {
		return e.tuner.Sig()
	}
	return e.lanes[0].comp.Name()
}

// CodecState captures the merged compressor state across all codec lanes as
// a deep copy. For per-tensor slots, only the lane that owns a tensor
// (tensor index mod lane count, per the last Step's tensor set) contributes
// its entry; entries for tensors the engine has never exchanged are dropped
// as stale. Stateless methods yield a state with empty Tensors and nil
// LaneRNGs.
func (e *Engine) CodecState() EngineCodecState {
	p := len(e.lanes)
	out := EngineCodecState{Method: e.Method()}
	for l, ln := range e.lanes {
		sf, ok := ln.comp.(Stateful)
		if !ok {
			continue
		}
		st := sf.CodecState()
		if st.RNG != nil {
			if out.LaneRNGs == nil {
				out.LaneRNGs = make([]fxrand.State, p)
			}
			out.LaneRNGs[l] = *st.RNG
		}
		for slot, byName := range st.Tensors {
			for name, vec := range byName {
				idx, known := e.nameIdx[name]
				if !known || idx%p != l {
					continue
				}
				if out.Tensors == nil {
					out.Tensors = map[string]map[string][]float32{}
				}
				if out.Tensors[slot] == nil {
					out.Tensors[slot] = map[string][]float32{}
				}
				out.Tensors[slot][name] = append([]float32(nil), vec...)
			}
		}
	}
	return out
}

// LoadCodecState restores a previously captured snapshot into every codec
// lane. Each lane receives the full per-tensor map (it only ever reads the
// tensors it owns) and its own positional RNG state; the snapshot must come
// from the same method and, when RNG streams are present, the same lane
// count.
func (e *Engine) LoadCodecState(st EngineCodecState) error {
	if st.Method != "" && st.Method != e.Method() {
		return fmt.Errorf("grace: cannot load %q codec state into %q engine", st.Method, e.Method())
	}
	if st.LaneRNGs != nil && len(st.LaneRNGs) != len(e.lanes) {
		return fmt.Errorf("grace: codec state has %d lane RNG streams, engine has %d lanes; "+
			"restore with the same codec parallelism", len(st.LaneRNGs), len(e.lanes))
	}
	for l, ln := range e.lanes {
		sf, ok := ln.comp.(Stateful)
		if !ok {
			if len(st.Tensors) > 0 || st.LaneRNGs != nil {
				return fmt.Errorf("grace: method %q carries codec state but the engine's compressor is stateless", st.Method)
			}
			continue
		}
		cs := CodecState{Tensors: st.Tensors}
		if st.LaneRNGs != nil {
			r := st.LaneRNGs[l]
			cs.RNG = &r
		}
		if err := sf.LoadCodecState(cs); err != nil {
			return fmt.Errorf("grace: lane %d: %w", l, err)
		}
	}
	return nil
}
