package grace

// Option configures compressor construction. Options are applied in order
// onto a zero Options carrier, so later options win. Two kinds of values
// satisfy Option: the With* functional options below, and the Options struct
// itself (which merges its non-zero fields), so legacy call sites that pass
// a literal carrier keep working:
//
//	c, err := grace.New("topk", grace.WithRatio(0.01))
//	c, err := grace.New("qsgd", grace.WithLevels(64), grace.WithSeed(7))
//	c, err := grace.New("topk", grace.Options{Ratio: 0.01}) // legacy form
type Option interface {
	apply(*Options)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*Options)

func (f optionFunc) apply(o *Options) { f(o) }

// apply merges the non-zero fields of o into dst, making a literal Options
// usable anywhere an Option is expected. Zero fields are skipped because the
// zero value of every knob means "use the method's documented default".
func (o Options) apply(dst *Options) {
	if o.Ratio != 0 {
		dst.Ratio = o.Ratio
	}
	if o.Levels != 0 {
		dst.Levels = o.Levels
	}
	if o.Rank != 0 {
		dst.Rank = o.Rank
	}
	if o.Threshold != 0 {
		dst.Threshold = o.Threshold
	}
	if o.Momentum != 0 {
		dst.Momentum = o.Momentum
	}
	if o.Seed != 0 {
		dst.Seed = o.Seed
	}
}

// WithRatio sets the sparsification ratio k/d (Top-k, Random-k, DGC,
// Adaptive).
func WithRatio(ratio float64) Option {
	return optionFunc(func(o *Options) { o.Ratio = ratio })
}

// WithLevels sets the quantization level count s (QSGD) or bucket count
// (SketchML).
func WithLevels(levels int) Option {
	return optionFunc(func(o *Options) { o.Levels = levels })
}

// WithRank sets the factorization rank r (PowerSGD, ATOMO).
func WithRank(rank int) Option {
	return optionFunc(func(o *Options) { o.Rank = rank })
}

// WithThreshold sets the fixed threshold τ (Threshold-v) or sparsity
// multiplier (3LC).
func WithThreshold(t float64) Option {
	return optionFunc(func(o *Options) { o.Threshold = t })
}

// WithMomentum sets the momentum coefficient for methods with built-in
// momentum (SIGNUM, DGC).
func WithMomentum(m float64) Option {
	return optionFunc(func(o *Options) { o.Momentum = m })
}

// WithSeed seeds the method's private RNG (randomized compressors).
func WithSeed(seed uint64) Option {
	return optionFunc(func(o *Options) { o.Seed = seed })
}

// BuildOptions folds a list of options into the Options carrier the
// registry's factories consume. Exposed for callers (CLIs, harnesses) that
// assemble a carrier once and reuse it across constructions.
func BuildOptions(opts ...Option) Options {
	var o Options
	for _, opt := range opts {
		opt.apply(&o)
	}
	return o
}
