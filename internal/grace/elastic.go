package grace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
)

// ElasticConfig opts a training run into elastic world-size membership: when
// a rank is permanently lost (its retry budget and the rejoin deadline both
// exhausted), the survivors vote to reform at world size N−1 and training
// continues — averaging denominators, allgather fan-in, and the autotuner's
// link model all re-derive from the new Size(), and the lost rank's data
// shard is deterministically re-partitioned across the survivors. A fresh
// worker presenting at a later step boundary is absorbed back, restoring the
// original world size.
//
// Semantics of a shrink, explicitly:
//
//   - The evicted rank's error-feedback residuals are DECLARED LOST. Every
//     survivor's quality accumulators record the drop (TensorQuality.EFDrops,
//     telemetry counter elastic_ef_drops_total); the gradient mass the dead
//     rank's residual held is simply gone from the optimization, exactly as
//     if that rank had flushed to /dev/null. This is the standard elastic
//     trade-off — residual state is rank-local by construction.
//   - The group rolls back to the newest checkpoint step every survivor
//     holds (the same heal sync round as single-rank rejoin), then re-runs
//     the interrupted epoch from its start under the N−1 partition: the
//     sampler is a pure function of (dataset length, workers, rank, seed),
//     so every survivor derives the identical new shard assignment with no
//     extra coordination.
//   - The autotuner's policy state is reset deterministically on every
//     survivor (its signature pins the worker count), so post-shrink policy
//     trajectories stay rank-identical but are not comparable to the
//     pre-shrink run.
//
// Requires Rejoin (for the heal sync machinery) and Checkpoint.Every > 0
// (for a rollback point); the collective must implement comm.Elastic.
type ElasticConfig struct {
	// RejoinDeadline is how long survivors hold the door open for a lost
	// rank before voting to shrink (phase 1 of the reform protocol). A rank
	// that re-presents within the deadline rejoins an intact group and
	// nothing shrinks. 0 selects 10s.
	RejoinDeadline time.Duration
	// MinWorkers is the smallest world size the run may degrade to; a shrink
	// that would go below it fails the run instead. 0 selects 2 (a ring
	// needs two members; a singleton "group" is training alone, which the
	// operator should opt into explicitly by restarting, not slide into).
	MinWorkers int
	// JoinEvery is the cadence, in optimizer steps, of the elastic join
	// beacon: every JoinEvery steps the members allgather their pending-join
	// sets and, when the union is non-empty, reform the group to absorb the
	// joiners. The beacon is one extra AllgatherBytes in the lockstep op
	// sequence, so the value must be identical on every rank. 0 selects 1.
	JoinEvery int
	// JoinOnStart marks this worker as a fresh joiner: before its first step
	// it presents at the group's join point (comm.Joiner.JoinGroup), adopts
	// the survivors' state through the heal sync round, and starts training
	// as a member. Implies the worker has no usable local loop position —
	// its checkpoints older than the join are ignored.
	JoinOnStart bool
	// OnResize, when set, is called after each committed membership change
	// (shrink or grow) with the new membership and the step the group rolled
	// back to.
	OnResize func(m comm.Membership, step int64)
}

func (el *ElasticConfig) rejoinDeadline() time.Duration {
	if el.RejoinDeadline > 0 {
		return el.RejoinDeadline
	}
	return 10 * time.Second
}

func (el *ElasticConfig) minWorkers() int {
	if el.MinWorkers > 0 {
		return el.MinWorkers
	}
	return 2
}

func (el *ElasticConfig) joinEvery() int {
	if el.JoinEvery > 0 {
		return el.JoinEvery
	}
	return 1
}

func (el *ElasticConfig) validate(cfg *Config) error {
	if cfg.Rejoin == nil {
		return fmt.Errorf("grace: Elastic requires Rejoin (the heal sync round is the rollback machinery)")
	}
	if cfg.Checkpoint == nil || cfg.Checkpoint.Every <= 0 {
		return fmt.Errorf("grace: Elastic requires Checkpoint.Every > 0 (a shrink rolls back to a checkpoint)")
	}
	if cfg.SyncEvery > 1 {
		return fmt.Errorf("grace: Elastic does not support local-SGD runs (SyncEvery > 1)")
	}
	return nil
}

// growSignal is the internal error the step hook raises when the elastic
// join beacon observes pending joiners: it unwinds the training loop to the
// heal loop, which reforms the group over the agreed member set. It is not a
// failure — no training state is damaged — just a control transfer to the
// same rollback machinery a heal uses, so every member rewinds to an
// identical step before the joiner syncs.
type growSignal struct {
	members []int // agreed post-grow member set (original ranks, sorted)
}

func (g *growSignal) Error() string {
	return fmt.Sprintf("grace: elastic join point: growing to members %v", g.members)
}

// joinBeacon is the step-boundary grow handshake: every member allgathers its
// locally observed pending-join set (a joiner's registration lands on ONE
// member — whichever answered its request first — so the union is what makes
// the observation collective). When the union is empty it returns (nil, nil)
// and the step completes normally; otherwise it returns the growSignal that
// unwinds the training loop to the heal loop, carrying the agreed post-grow
// member set. The allgather itself keeps every rank's op sequence aligned:
// all members run the beacon at the same step, so they all unwind together.
func joinBeacon(coll comm.Collective, el comm.Elastic) (*growSignal, error) {
	pend := el.PendingJoins()
	steps := make([]int64, len(pend))
	for i, p := range pend {
		steps[i] = int64(p)
	}
	lists, err := coll.AllgatherBytes(encodeStepList(steps))
	if err != nil {
		return nil, err
	}
	joiners := make(map[int]bool)
	for r, b := range lists {
		l, derr := decodeStepList(b)
		if derr != nil {
			return nil, fmt.Errorf("rank %d sent a malformed pending-join list: %w", r, derr)
		}
		for _, j := range l {
			joiners[int(j)] = true
		}
	}
	if len(joiners) == 0 {
		return nil, nil
	}
	members := el.Membership().Members
	set := make(map[int]bool, len(members)+len(joiners))
	for _, m := range members {
		set[m] = true
	}
	for j := range joiners {
		set[j] = true
	}
	agreed := make([]int, 0, len(set))
	for m := range set {
		agreed = append(agreed, m)
	}
	sort.Ints(agreed)
	return &growSignal{members: agreed}, nil
}
