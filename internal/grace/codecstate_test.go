package grace_test

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/grace"
)

// runEngineResumable drives `workers` engines over the shared hub for steps
// [from, to), optionally seeding each engine with a codec-state snapshot, and
// returns the final aggregated outputs plus each rank's captured state at the
// end.
func runEngineResumable(t *testing.T, workers, lanes, from, to int, infos []grace.TensorInfo,
	method string, opts []grace.Option, load []grace.EngineCodecState) ([][][]float32, []grace.EngineCodecState) {
	t.Helper()
	hub := comm.NewHub(workers)
	final := make([][][]float32, workers)
	states := make([]grace.EngineCodecState, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:        hub.Worker(rank),
				New:         func() (grace.Compressor, error) { return grace.New(method, opts...) },
				Parallelism: lanes,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			if load != nil {
				if err := eng.LoadCodecState(load[rank]); err != nil {
					errs[rank] = err
					return
				}
			}
			for step := from; step < to; step++ {
				grads := engineTestGrads(rank, step, infos)
				aggs, _, err := eng.Step(grads, infos)
				if err != nil {
					errs[rank] = err
					return
				}
				out := make([][]float32, len(aggs))
				for i, a := range aggs {
					out[i] = append([]float32(nil), a...)
				}
				final[rank] = out
			}
			states[rank] = eng.CodecState()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return final, states
}

// TestEngineCodecStateResume: a run snapshotted mid-stream and resumed in
// fresh engines must produce bitwise-identical aggregated gradients to an
// uninterrupted run, for both kinds of codec state — DGC's per-tensor
// momentum/accumulator maps and QSGD's per-lane rounding RNG streams.
func TestEngineCodecStateResume(t *testing.T) {
	cases := []struct {
		method string
		opts   []grace.Option
	}{
		{"dgc", []grace.Option{grace.WithRatio(0.25)}},
		{"qsgd", []grace.Option{grace.WithLevels(8), grace.WithSeed(42)}},
	}
	const workers, lanes, before, after = 2, 2, 3, 4
	infos := engineTestInfos(5)
	for _, tc := range cases {
		t.Run(tc.method, func(t *testing.T) {
			ref, _ := runEngineResumable(t, workers, lanes, 0, before+after, infos, tc.method, tc.opts, nil)
			_, snap := runEngineResumable(t, workers, lanes, 0, before, infos, tc.method, tc.opts, nil)
			got, _ := runEngineResumable(t, workers, lanes, before, before+after, infos, tc.method, tc.opts, snap)
			for rank := range ref {
				for i := range ref[rank] {
					for j := range ref[rank][i] {
						r, g := ref[rank][i][j], got[rank][i][j]
						if math.Float32bits(r) != math.Float32bits(g) {
							t.Fatalf("rank %d tensor %d elem %d: resumed %v, uninterrupted %v",
								rank, i, j, g, r)
						}
					}
				}
			}
		})
	}
}

// TestEngineCodecStateFresh: a snapshot restored without any prior Step must
// also work — the cold-start path a restarted worker takes.
func TestEngineCodecStateFresh(t *testing.T) {
	const workers, lanes, steps = 2, 2, 3
	infos := engineTestInfos(4)
	opts := []grace.Option{grace.WithRatio(0.25)}
	_, snap := runEngineResumable(t, workers, lanes, 0, steps, infos, "dgc", opts, nil)
	for rank := range snap {
		if len(snap[rank].Tensors["u"]) != len(infos) || len(snap[rank].Tensors["v"]) != len(infos) {
			t.Fatalf("rank %d snapshot covers %d/%d tensors (u/v), want %d each",
				rank, len(snap[rank].Tensors["u"]), len(snap[rank].Tensors["v"]), len(infos))
		}
	}
}

// TestEngineCodecStateStateless: stateless methods capture an empty snapshot
// and accept it back silently.
func TestEngineCodecStateStateless(t *testing.T) {
	hub := comm.NewHub(1)
	eng, err := grace.NewEngine(grace.EngineConfig{
		Coll: hub.Worker(0),
		New:  func() (grace.Compressor, error) { return grace.New("topk", grace.WithRatio(0.1)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.CodecState()
	if st.Method != "topk" || st.Tensors != nil || st.LaneRNGs != nil {
		t.Fatalf("stateless snapshot not empty: %+v", st)
	}
	if err := eng.LoadCodecState(st); err != nil {
		t.Fatalf("loading empty snapshot: %v", err)
	}
}

// TestEngineCodecStateMismatches covers the typed rejection paths: wrong
// method, wrong lane count for positional RNG streams, and stateful payload
// into a stateless engine.
func TestEngineCodecStateMismatches(t *testing.T) {
	hub := comm.NewHub(1)
	mkEngine := func(method string, lanes int, opts ...grace.Option) *grace.Engine {
		eng, err := grace.NewEngine(grace.EngineConfig{
			Coll:        hub.Worker(0),
			New:         func() (grace.Compressor, error) { return grace.New(method, opts...) },
			Parallelism: lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eng
	}

	t.Run("wrong-method", func(t *testing.T) {
		st := mkEngine("dgc", 1, grace.WithRatio(0.25)).CodecState()
		err := mkEngine("topk", 1, grace.WithRatio(0.25)).LoadCodecState(st)
		if err == nil || !strings.Contains(err.Error(), "cannot load") {
			t.Fatalf("err = %v, want method mismatch", err)
		}
	})
	t.Run("wrong-lane-count", func(t *testing.T) {
		st := mkEngine("qsgd", 2, grace.WithLevels(8)).CodecState()
		if len(st.LaneRNGs) != 2 {
			t.Fatalf("snapshot has %d lane RNGs, want 2", len(st.LaneRNGs))
		}
		err := mkEngine("qsgd", 1, grace.WithLevels(8)).LoadCodecState(st)
		if err == nil || !strings.Contains(err.Error(), "lane RNG streams") {
			t.Fatalf("err = %v, want lane-count mismatch", err)
		}
	})
	t.Run("state-into-stateless", func(t *testing.T) {
		st := mkEngine("qsgd", 1, grace.WithLevels(8)).CodecState()
		st.Method = "" // defeat the name check to reach the capability check
		err := mkEngine("topk", 1, grace.WithRatio(0.25)).LoadCodecState(st)
		if err == nil || !strings.Contains(err.Error(), "stateless") {
			t.Fatalf("err = %v, want stateless rejection", err)
		}
	})
}

// TestMemoryStateRoundTrip: the framework EF memory's snapshot is a deep
// copy and restores bitwise.
func TestMemoryStateRoundTrip(t *testing.T) {
	m := grace.NewMemory(1, 1)
	m.Update("a", []float32{1, 2, 3}, []float32{0.5, 0.5, 0.5})
	m.Update("b", []float32{4}, []float32{1})
	st := m.State()

	// Deep copy: mutating the live memory must not leak into the snapshot.
	m.Update("a", []float32{9, 9, 9}, []float32{0, 0, 0})
	if st["a"][0] != 0.5 {
		t.Fatalf("snapshot aliased live residual: %v", st["a"])
	}

	m2 := grace.NewMemory(1, 1)
	m2.LoadState(st)
	got := m2.Compensate("a", []float32{0, 0, 0})
	want := []float32{0.5, 1.5, 2.5}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("restored residual[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// And LoadState deep-copies its input too.
	st["b"][0] = -1
	if m2.Norm2("b") == 0 {
		t.Fatal("restored memory lost tensor b")
	}
	if got := m2.Compensate("b", []float32{0}); got[0] == -1 {
		t.Fatal("LoadState aliased the input map")
	}
}
