package grace

import (
	"math"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/simnet"
)

func clusterForTest() simnet.Cluster {
	return simnet.NewCluster(simnet.TCP10G, 4)
}

func TestNewTensorInfo(t *testing.T) {
	info := NewTensorInfo("w", []int{6, 4})
	if info.Size() != 24 || info.Rows != 6 || info.Cols != 4 {
		t.Fatalf("matrix info wrong: %+v", info)
	}
	vec := NewTensorInfo("b", []int{7})
	if vec.Size() != 7 || vec.Rows != 1 || vec.Cols != 7 {
		t.Fatalf("vector info wrong: %+v", vec)
	}
	conv := NewTensorInfo("k", []int{8, 3, 3, 3})
	if conv.Size() != 216 || conv.Rows != 8 || conv.Cols != 27 {
		t.Fatalf("conv info wrong: %+v", conv)
	}
}

func TestPayloadWireBytes(t *testing.T) {
	if (&Payload{Dense: make([]float32, 5)}).WireBytes() != 20 {
		t.Fatal("dense wire bytes wrong")
	}
	if (&Payload{Bytes: make([]byte, 9)}).WireBytes() != 9 {
		t.Fatal("bytes wire bytes wrong")
	}
	var nilP *Payload
	if nilP.WireBytes() != 0 {
		t.Fatal("nil payload should be 0 bytes")
	}
}

func TestStrategyString(t *testing.T) {
	if Allgather.String() != "allgather" || Allreduce.String() != "allreduce" || Custom.String() != "custom" {
		t.Fatal("strategy names wrong")
	}
}

func TestMemoryCompensateNoState(t *testing.T) {
	m := NewMemory(1, 1)
	g := []float32{1, 2}
	out := m.Compensate("t", g)
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("first compensate should be γ·g: %v", out)
	}
	// Input must not be aliased.
	out[0] = 99
	if g[0] != 1 {
		t.Fatal("Compensate aliased its input")
	}
}

func TestMemoryAccumulatesResidual(t *testing.T) {
	m := NewMemory(1, 1)
	g := []float32{1, 1}
	comp := m.Compensate("t", g)
	approx := []float32{0.25, 0.5} // pretend the compressor kept this much
	m.Update("t", comp, approx)
	// Next compensate must add the residual 0.75 / 0.5.
	comp2 := m.Compensate("t", g)
	if comp2[0] != 1.75 || comp2[1] != 1.5 {
		t.Fatalf("residual not applied: %v", comp2)
	}
}

func TestMemoryBetaGamma(t *testing.T) {
	m := NewMemory(0.5, 2)
	g := []float32{1}
	comp := m.Compensate("t", g) // = 2
	if comp[0] != 2 {
		t.Fatalf("γ scaling wrong: %v", comp)
	}
	m.Update("t", comp, []float32{0}) // memory = 2
	comp2 := m.Compensate("t", g)     // = 0.5*2 + 2*1 = 3
	if comp2[0] != 3 {
		t.Fatalf("β decay wrong: %v", comp2)
	}
}

func TestMemoryNorm(t *testing.T) {
	m := NewMemory(1, 1)
	if m.Norm2("missing") != 0 {
		t.Fatal("missing tensor should have zero norm")
	}
	m.Update("t", []float32{3, 4}, []float32{0, 0})
	if math.Abs(m.Norm2("t")-5) > 1e-9 {
		t.Fatalf("memory norm %v", m.Norm2("t"))
	}
}

func TestMemoryPerTensorIsolation(t *testing.T) {
	m := NewMemory(1, 1)
	m.Update("a", []float32{1}, []float32{0})
	out := m.Compensate("b", []float32{0})
	if out[0] != 0 {
		t.Fatal("memory leaked across tensors")
	}
}

// --- registry ---

func TestRegistryRegisterLookup(t *testing.T) {
	Register(Meta{
		Name: "test-dummy", Class: "quantization", Output: "‖g‖0", Nature: "deterministic",
		New: func(o Options) (Compressor, error) { return stubComp{}, nil },
	})
	m, err := Lookup("test-dummy")
	if err != nil || m.Class != "quantization" {
		t.Fatalf("lookup failed: %v", err)
	}
	c, err := New("test-dummy", Options{})
	if err != nil || c.Name() != "stub" {
		t.Fatalf("New failed: %v", err)
	}
	if _, err := Lookup("no-such"); err == nil {
		t.Fatal("expected error for unknown method")
	}
	found := false
	for _, n := range Names() {
		if n == "test-dummy" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing registered method")
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register(Meta{Name: "dup-test", Class: "hybrid", New: func(o Options) (Compressor, error) { return stubComp{}, nil }})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register(Meta{Name: "dup-test", Class: "hybrid", New: func(o Options) (Compressor, error) { return stubComp{}, nil }})
}

func TestRegistryRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty meta")
		}
	}()
	Register(Meta{})
}

// stubComp is a trivial allgather compressor used by registry and pipeline
// tests: wire format is the raw little-endian float bytes.
type stubComp struct{}

func (stubComp) Name() string       { return "stub" }
func (stubComp) Strategy() Strategy { return Allgather }
func (stubComp) Compress(g []float32, info TensorInfo) (*Payload, error) {
	b := make([]byte, len(g)*4)
	for i, v := range g {
		u := math.Float32bits(v)
		b[i*4] = byte(u)
		b[i*4+1] = byte(u >> 8)
		b[i*4+2] = byte(u >> 16)
		b[i*4+3] = byte(u >> 24)
	}
	return &Payload{Bytes: b}, nil
}
func (stubComp) Decompress(p *Payload, info TensorInfo) ([]float32, error) {
	out := make([]float32, len(p.Bytes)/4)
	for i := range out {
		u := uint32(p.Bytes[i*4]) | uint32(p.Bytes[i*4+1])<<8 | uint32(p.Bytes[i*4+2])<<16 | uint32(p.Bytes[i*4+3])<<24
		out[i] = math.Float32frombits(u)
	}
	return out, nil
}

// halfComp keeps only half the value, so error feedback has a residual to
// accumulate. Lossy but linear: Q(x) = x/2.
type halfComp struct{ stubComp }

func (halfComp) Compress(g []float32, info TensorInfo) (*Payload, error) {
	h := make([]float32, len(g))
	for i, v := range g {
		h[i] = v / 2
	}
	return stubComp{}.Compress(h, info)
}

// --- pipeline ---

func runPipelineGroup(t *testing.T, n int, mem bool, comp func(rank int) Compressor, g func(rank int) []float32, info TensorInfo) [][]float32 {
	t.Helper()
	hub := comm.NewHub(n)
	out := make([][]float32, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for rank := 0; rank < n; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := &Pipeline{Comp: comp(rank), Coll: hub.Worker(rank)}
			if mem {
				p.Mem = NewMemory(1, 1)
			}
			agg, _, err := p.Exchange(g(rank), info)
			out[rank] = agg
			errs[rank] = err
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return out
}

func TestPipelineAllgatherMean(t *testing.T) {
	info := NewTensorInfo("t", []int{2})
	out := runPipelineGroup(t, 4, false,
		func(rank int) Compressor { return stubComp{} },
		func(rank int) []float32 { return []float32{float32(rank), 1} },
		info)
	for rank, agg := range out {
		if agg[0] != 1.5 || agg[1] != 1 {
			t.Fatalf("rank %d agg %v, want [1.5 1]", rank, agg)
		}
	}
}

func TestPipelineWorkersAgree(t *testing.T) {
	info := NewTensorInfo("t", []int{16})
	out := runPipelineGroup(t, 3, false,
		func(rank int) Compressor { return stubComp{} },
		func(rank int) []float32 {
			g := make([]float32, 16)
			for i := range g {
				g[i] = float32(rank*i) * 0.1
			}
			return g
		}, info)
	for rank := 1; rank < 3; rank++ {
		for i := range out[0] {
			if out[rank][i] != out[0][i] {
				t.Fatalf("rank %d disagrees at %d", rank, i)
			}
		}
	}
}

func TestPipelineStats(t *testing.T) {
	hub := comm.NewHub(1)
	p := &Pipeline{Comp: stubComp{}, Coll: hub.Worker(0)}
	info := NewTensorInfo("t", []int{8})
	_, stats, err := p.Exchange(make([]float32, 8), info)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SentBytes != 32 {
		t.Fatalf("SentBytes = %d", stats.SentBytes)
	}
	if len(stats.GatherSizes) != 1 || stats.GatherSizes[0] != 32 {
		t.Fatalf("GatherSizes = %v", stats.GatherSizes)
	}
	if stats.Strategy != Allgather {
		t.Fatalf("Strategy = %v", stats.Strategy)
	}
}

func TestPipelineErrorFeedbackConverges(t *testing.T) {
	// With Q(x) = x/2 and EF, the transmitted sequence sums to the full
	// gradient: residual halves each step, and the running total of decoded
	// values approaches the cumulative gradient.
	hub := comm.NewHub(1)
	p := &Pipeline{Comp: halfComp{}, Mem: NewMemory(1, 1), Coll: hub.Worker(0)}
	info := NewTensorInfo("t", []int{1})
	g := []float32{1}
	var transmitted float64
	steps := 20
	for i := 0; i < steps; i++ {
		agg, _, err := p.Exchange(g, info)
		if err != nil {
			t.Fatal(err)
		}
		transmitted += float64(agg[0])
	}
	// Total gradient mass after `steps` iterations is `steps`; EF must have
	// delivered almost all of it (residual <= 1 remains in memory).
	if transmitted < float64(steps)-1.5 {
		t.Fatalf("EF delivered %v of %d", transmitted, steps)
	}
	if p.Mem.Norm2("t") > 1.01 {
		t.Fatalf("memory residual %v should stay bounded", p.Mem.Norm2("t"))
	}
}

func TestPipelineNoMemoryDropsResidual(t *testing.T) {
	hub := comm.NewHub(1)
	p := &Pipeline{Comp: halfComp{}, Coll: hub.Worker(0)}
	info := NewTensorInfo("t", []int{1})
	agg, _, err := p.Exchange([]float32{1}, info)
	if err != nil {
		t.Fatal(err)
	}
	if agg[0] != 0.5 {
		t.Fatalf("agg = %v, want 0.5", agg[0])
	}
	agg, _, err = p.Exchange([]float32{1}, info)
	if err != nil {
		t.Fatal(err)
	}
	if agg[0] != 0.5 {
		t.Fatalf("without memory the second step must also be 0.5, got %v", agg[0])
	}
}

type badStrategyComp struct{ stubComp }

func (badStrategyComp) Strategy() Strategy { return Custom }

func TestPipelineCustomWithoutInterfaceErrors(t *testing.T) {
	hub := comm.NewHub(1)
	p := &Pipeline{Comp: badStrategyComp{}, Coll: hub.Worker(0)}
	info := NewTensorInfo("t", []int{1})
	if _, _, err := p.Exchange([]float32{1}, info); err == nil {
		t.Fatal("expected error for Custom strategy without CustomComm")
	}
}

func TestCommTimeModel(t *testing.T) {
	// Verified indirectly through the trainer; here check the dispatch does
	// not panic for each strategy and is monotone in volume.
	for _, s := range []Strategy{Allreduce, Custom} {
		small := StepStats{Strategy: s, SentBytes: 100}
		big := StepStats{Strategy: s, SentBytes: 10_000_000}
		c := clusterForTest()
		if commTime(c, big) <= commTime(c, small) {
			t.Fatalf("commTime not monotone for %v", s)
		}
	}
	c := clusterForTest()
	ag := StepStats{Strategy: Allgather, GatherSizes: []int{100, 100, 100, 100}}
	if commTime(c, ag) <= 0 {
		t.Fatal("allgather time must be positive")
	}
}

func TestExchangeRejectsWrongDecompressedLength(t *testing.T) {
	hub := comm.NewHub(1)
	p := &Pipeline{Comp: shortComp{}, Coll: hub.Worker(0)}
	info := NewTensorInfo("t", []int{4})
	if _, _, err := p.Exchange(make([]float32, 4), info); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

type shortComp struct{ stubComp }

func (shortComp) Decompress(p *Payload, info TensorInfo) ([]float32, error) {
	return []float32{1}, nil // wrong length
}
