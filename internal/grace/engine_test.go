package grace_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/fxrand"
	"repro/internal/grace"
)

// engineTestInfos builds a mixed layer-size distribution: a few large
// matrices, many small vectors — the shape profile real models hand the
// Engine.
func engineTestInfos(m int) []grace.TensorInfo {
	infos := make([]grace.TensorInfo, m)
	for i := range infos {
		var shape []int
		switch i % 3 {
		case 0:
			shape = []int{16, 32}
		case 1:
			shape = []int{8, 8}
		default:
			shape = []int{23}
		}
		infos[i] = grace.NewTensorInfo(fmt.Sprintf("layer%d.p%d", i/2, i), shape)
	}
	return infos
}

// engineTestGrads returns per-worker, per-step, per-tensor gradients,
// deterministic in (rank, step, tensor).
func engineTestGrads(rank, step int, infos []grace.TensorInfo) [][]float32 {
	rng := fxrand.New(uint64(rank)*1000 + uint64(step) + 1)
	out := make([][]float32, len(infos))
	for i, info := range infos {
		g := make([]float32, info.Size())
		for j := range g {
			g[j] = rng.NormFloat32() * 0.1
		}
		out[i] = g
	}
	return out
}

// runSequentialPipeline is the reference: the pre-Engine per-tensor loop.
func runSequentialPipeline(t *testing.T, workers, steps int, infos []grace.TensorInfo,
	newComp func(rank int) (grace.Compressor, error), ef bool) [][][]float32 {
	t.Helper()
	hub := comm.NewHub(workers)
	final := make([][][]float32, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := newComp(rank)
			if err != nil {
				errs[rank] = err
				return
			}
			pipe := &grace.Pipeline{Comp: c, Coll: hub.Worker(rank)}
			if ef {
				pipe.Mem = grace.NewMemory(1, 1)
			}
			for step := 0; step < steps; step++ {
				grads := engineTestGrads(rank, step, infos)
				aggs := make([][]float32, len(infos))
				for i, info := range infos {
					agg, _, err := pipe.Exchange(grads[i], info)
					if err != nil {
						errs[rank] = err
						return
					}
					aggs[i] = agg
				}
				final[rank] = aggs
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("pipeline rank %d: %v", rank, err)
		}
	}
	return final
}

// runEngine runs the same exchange schedule through per-worker Engines.
func runEngine(t *testing.T, workers, steps, lanes int, infos []grace.TensorInfo,
	newComp func(rank int) (grace.Compressor, error), ef bool) [][][]float32 {
	t.Helper()
	hub := comm.NewHub(workers)
	final := make([][][]float32, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var mem *grace.Memory
			if ef {
				mem = grace.NewMemory(1, 1)
			}
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:        hub.Worker(rank),
				New:         func() (grace.Compressor, error) { return newComp(rank) },
				Mem:         mem,
				Parallelism: lanes,
			})
			if err != nil {
				errs[rank] = err
				return
			}
			for step := 0; step < steps; step++ {
				grads := engineTestGrads(rank, step, infos)
				aggs, _, err := eng.Step(grads, infos)
				if err != nil {
					errs[rank] = err
					return
				}
				// Copy: engine buffers are only valid until the next Step.
				final[rank] = make([][]float32, len(aggs))
				for i, a := range aggs {
					final[rank][i] = append([]float32(nil), a...)
				}
			}
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("engine rank %d: %v", rank, err)
		}
	}
	return final
}

// TestEngineMatchesPipeline proves the Engine computes exactly what the
// sequential Pipeline loop computes — same aggregates, bitwise — for every
// communication strategy: Allreduce (none), Allgather with mean (topk, with
// error feedback exercising the memory path), Allgather with a custom
// aggregator (signsgdmv's majority vote), and Custom comm (powersgd's
// two-allreduce scheme, which carries per-tensor warm-start state across
// steps). Deterministic methods only, so single-lane and multi-lane engines
// must agree with the reference exactly.
func TestEngineMatchesPipeline(t *testing.T) {
	const (
		workers = 4
		steps   = 3
		tensors = 10
	)
	infos := engineTestInfos(tensors)
	cases := []struct {
		name string
		ef   bool
		comp func(rank int) (grace.Compressor, error)
	}{
		{"none-allreduce", false, func(int) (grace.Compressor, error) { return grace.New("none") }},
		{"topk-ef-allgather", true, func(int) (grace.Compressor, error) {
			return grace.New("topk", grace.WithRatio(0.2))
		}},
		{"signsgdmv-aggregator", false, func(int) (grace.Compressor, error) { return grace.New("signsgdmv") }},
		{"powersgd-custom", false, func(int) (grace.Compressor, error) {
			return grace.New("powersgd", grace.WithRank(2))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := runSequentialPipeline(t, workers, steps, infos, tc.comp, tc.ef)
			for _, lanes := range []int{1, 3} {
				got := runEngine(t, workers, steps, lanes, infos, tc.comp, tc.ef)
				for rank := range got {
					for ti := range infos {
						for j := range want[rank][ti] {
							if got[rank][ti][j] != want[rank][ti][j] {
								t.Fatalf("lanes=%d rank %d tensor %d elem %d: engine %v != pipeline %v",
									lanes, rank, ti, j, got[rank][ti][j], want[rank][ti][j])
							}
						}
					}
				}
			}
		})
	}
}

// TestEngineWorkersAgree runs randomized compressors (whose payloads carry
// their random choices) and checks every worker lands on identical
// aggregates — the replica-consistency invariant — under concurrent lanes.
func TestEngineWorkersAgree(t *testing.T) {
	const (
		workers = 5
		steps   = 4
		tensors = 12
	)
	infos := engineTestInfos(tensors)
	for _, method := range []struct {
		name string
		comp func(rank int) (grace.Compressor, error)
	}{
		{"qsgd", func(rank int) (grace.Compressor, error) {
			return grace.New("qsgd", grace.WithLevels(16), grace.WithSeed(uint64(rank)+1))
		}},
		{"randomk", func(rank int) (grace.Compressor, error) {
			return grace.New("randomk", grace.WithRatio(0.25), grace.WithSeed(uint64(rank)+1))
		}},
	} {
		t.Run(method.name, func(t *testing.T) {
			got := runEngine(t, workers, steps, 4, infos, method.comp, false)
			for rank := 1; rank < workers; rank++ {
				for ti := range infos {
					for j := range got[0][ti] {
						if got[rank][ti][j] != got[0][ti][j] {
							t.Fatalf("rank %d tensor %d elem %d disagrees with rank 0", rank, ti, j)
						}
					}
				}
			}
		})
	}
}

// TestEngineStepReport checks the merged accounting: totals equal the
// per-tensor sums and the per-strategy breakdown classifies every tensor.
func TestEngineStepReport(t *testing.T) {
	const workers = 3
	infos := engineTestInfos(8)
	hub := comm.NewHub(workers)
	reports := make([]*grace.StepReport, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := grace.NewEngine(grace.EngineConfig{
				Coll:        hub.Worker(rank),
				New:         func() (grace.Compressor, error) { return grace.New("topk", grace.WithRatio(0.1)) },
				Parallelism: 2,
			})
			if err != nil {
				panic(err)
			}
			_, rep, err := eng.Step(engineTestGrads(rank, 0, infos), infos)
			if err != nil {
				panic(err)
			}
			reports[rank] = rep
		}(rank)
	}
	wg.Wait()

	rep := reports[0]
	if len(rep.Tensors) != len(infos) {
		t.Fatalf("report has %d tensor entries, want %d", len(rep.Tensors), len(infos))
	}
	var sent int
	for i, st := range rep.Tensors {
		if st.Strategy != grace.Allgather {
			t.Fatalf("tensor %d classified as %v, want allgather", i, st.Strategy)
		}
		if st.SentBytes <= 0 {
			t.Fatalf("tensor %d has no wire volume", i)
		}
		if len(st.GatherSizes) != workers {
			t.Fatalf("tensor %d GatherSizes has %d entries, want %d", i, len(st.GatherSizes), workers)
		}
		sent += st.SentBytes
	}
	if rep.SentBytes != sent {
		t.Fatalf("merged SentBytes %d != per-tensor sum %d", rep.SentBytes, sent)
	}
	ag := rep.ByStrategy[grace.Allgather]
	if ag.Tensors != len(infos) || ag.SentBytes != sent {
		t.Fatalf("allgather breakdown %+v, want %d tensors / %d bytes", ag, len(infos), sent)
	}
	if rep.ByStrategy[grace.Allreduce].Tensors != 0 || rep.ByStrategy[grace.Custom].Tensors != 0 {
		t.Fatalf("unexpected non-allgather entries: %+v", rep.ByStrategy)
	}
	if rep.WallTime <= 0 {
		t.Fatal("report has no wall time")
	}
}

// badCustom declares the Custom strategy without implementing CustomComm.
type badCustom struct{}

func (badCustom) Name() string             { return "badcustom" }
func (badCustom) Strategy() grace.Strategy { return grace.Custom }
func (badCustom) Compress(g []float32, info grace.TensorInfo) (*grace.Payload, error) {
	return &grace.Payload{}, nil
}
func (badCustom) Decompress(p *grace.Payload, info grace.TensorInfo) ([]float32, error) {
	return nil, nil
}

func TestNewEngineValidation(t *testing.T) {
	coll := comm.Serial{}
	if _, err := grace.NewEngine(grace.EngineConfig{Coll: coll}); err == nil {
		t.Fatal("engine without compressor should be rejected")
	}
	if _, err := grace.NewEngine(grace.EngineConfig{Comp: badCustom{}}); err == nil {
		t.Fatal("engine without collective should be rejected")
	}
	if _, err := grace.NewEngine(grace.EngineConfig{Coll: coll, Comp: badCustom{}}); err == nil {
		t.Fatal("Custom strategy without CustomComm should be rejected")
	}
	flip := 0
	_, err := grace.NewEngine(grace.EngineConfig{
		Coll: coll,
		New: func() (grace.Compressor, error) {
			flip++
			if flip%2 == 0 {
				return grace.New("none")
			}
			return grace.New("topk")
		},
		Parallelism: 2,
	})
	if err == nil {
		t.Fatal("lanes with disagreeing methods should be rejected")
	}

	eng, err := grace.NewEngine(grace.EngineConfig{Coll: coll, Comp: mustComp(t, "topk")})
	if err != nil {
		t.Fatal(err)
	}
	info := grace.NewTensorInfo("w", []int{4})
	if _, _, err := eng.Step([][]float32{{1, 2}}, []grace.TensorInfo{info}); err == nil {
		t.Fatal("length-mismatched gradient should be rejected")
	}
	if _, _, err := eng.Step([][]float32{{1, 2, 3, 4}, {1}}, []grace.TensorInfo{info}); err == nil {
		t.Fatal("gradient/info count mismatch should be rejected")
	}
}

func mustComp(t *testing.T, name string, opts ...grace.Option) grace.Compressor {
	t.Helper()
	c, err := grace.New(name, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineEmptyStep: a zero-tensor step is a no-op, not a hang.
func TestEngineEmptyStep(t *testing.T) {
	eng, err := grace.NewEngine(grace.EngineConfig{Coll: comm.Serial{}, Comp: mustComp(t, "none")})
	if err != nil {
		t.Fatal(err)
	}
	aggs, rep, err := eng.Step(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 0 || rep.SentBytes != 0 {
		t.Fatalf("empty step produced output: %d tensors, %d bytes", len(aggs), rep.SentBytes)
	}
}

// TestRegistryConcurrent hammers the registry from many goroutines:
// registrations of fresh names racing Lookup/Names/All/New on existing ones.
// Run under -race this enforces the registry's concurrent-use guarantee.
func TestRegistryConcurrent(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				if k%5 == 0 {
					grace.Register(grace.Meta{
						Name:  fmt.Sprintf("zz-conc-%d-%d", gi, k),
						Class: "baseline",
						New:   func(o grace.Options) (grace.Compressor, error) { return grace.New("none") },
					})
				}
				if _, err := grace.Lookup("topk"); err != nil {
					panic(err)
				}
				if _, err := grace.New("qsgd", grace.WithLevels(8)); err != nil {
					panic(err)
				}
				if len(grace.Names()) == 0 || len(grace.All()) == 0 {
					panic("registry listing went empty")
				}
			}
		}(gi)
	}
	wg.Wait()
}
