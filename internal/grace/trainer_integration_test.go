package grace_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	_ "repro/internal/compress/all"
	"repro/internal/data"
	"repro/internal/grace"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/simnet"
)

// baseConfig builds a small image-classification run shared by the trainer
// tests.
func baseConfig(workers int, compressor string, mem bool) grace.Config {
	ds := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 256, Noise: 0.3, Seed: 1})
	test := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 64, Noise: 0.3, Seed: 1, SampleSalt: 1})
	return grace.Config{
		Workers:   workers,
		BatchSize: 16,
		Epochs:    3,
		Seed:      7,
		NewModel: func(seed uint64) grace.Model {
			return models.NewMLPClassifier(seed, 64, []int{32}, 4)
		},
		Dataset:      ds,
		NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.05, 0.9) },
		NewCompressor: func(rank int) (grace.Compressor, error) {
			return grace.New(compressor, grace.Options{Seed: uint64(rank) + 1, Ratio: 0.05})
		},
		UseMemory: mem,
		Net:       simnet.TCP10G,
		Eval: func(m grace.Model) float64 {
			return models.EvalAccuracy(m.(*models.Classifier), test, 32)
		},
	}
}

func TestTrainerBaselineConverges(t *testing.T) {
	rep, err := grace.Run(baseConfig(4, "none", false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestQuality < 0.6 {
		t.Fatalf("baseline accuracy %v too low", rep.BestQuality)
	}
	if rep.Iters != 3*(256/4/16) {
		t.Fatalf("iters = %d", rep.Iters)
	}
	if rep.Throughput <= 0 || rep.TotalVirtualTime <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if len(rep.EpochQuality) != 3 || len(rep.EpochVirtualTime) != 3 {
		t.Fatalf("epoch series lengths wrong")
	}
}

func TestTrainerDeterministic(t *testing.T) {
	a, err := grace.Run(baseConfig(2, "none", false))
	if err != nil {
		t.Fatal(err)
	}
	b, err := grace.Run(baseConfig(2, "none", false))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.EpochQuality {
		if a.EpochQuality[i] != b.EpochQuality[i] {
			t.Fatalf("runs diverged at epoch %d: %v vs %v", i, a.EpochQuality[i], b.EpochQuality[i])
		}
	}
}

func TestTrainerTopKWithEFConverges(t *testing.T) {
	cfg := baseConfig(4, "topk", true)
	cfg.Epochs = 5
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestQuality < 0.5 {
		t.Fatalf("topk+EF accuracy %v too low", rep.BestQuality)
	}
}

func TestTrainerTopKFullRatioMatchesBaseline(t *testing.T) {
	// Top-k with ratio 1.0 transmits everything: training must match the
	// baseline bit for bit.
	base := baseConfig(2, "none", false)
	full := baseConfig(2, "topk", false)
	full.NewCompressor = func(rank int) (grace.Compressor, error) {
		return grace.New("topk", grace.Options{Ratio: 1.0})
	}
	a, err := grace.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := grace.Run(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.EpochQuality {
		if a.EpochQuality[i] != b.EpochQuality[i] {
			t.Fatalf("full topk differs from baseline at epoch %d: %v vs %v",
				i, a.EpochQuality[i], b.EpochQuality[i])
		}
	}
}

func TestTrainerVolumeAccounting(t *testing.T) {
	base, err := grace.Run(baseConfig(2, "none", false))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := grace.Run(baseConfig(2, "topk", true))
	if err != nil {
		t.Fatal(err)
	}
	if sparse.BytesPerIter >= base.BytesPerIter/5 {
		t.Fatalf("topk(0.05) bytes/iter %v not ≪ baseline %v", sparse.BytesPerIter, base.BytesPerIter)
	}
}

func TestTrainerModeledComputeAndNetwork(t *testing.T) {
	// With modeled compute, virtual time decomposes exactly and a slower
	// network must increase total time for the dense baseline.
	fast := baseConfig(2, "none", false)
	fast.ComputePerIter = 5 * time.Millisecond
	slow := baseConfig(2, "none", false)
	slow.ComputePerIter = 5 * time.Millisecond
	slow.Net = simnet.TCP1G

	rf, err := grace.Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := grace.Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if rf.ComputeTime != time.Duration(rf.Iters)*5*time.Millisecond {
		t.Fatalf("modeled compute time wrong: %v for %d iters", rf.ComputeTime, rf.Iters)
	}
	if rs.CommTime <= rf.CommTime {
		t.Fatalf("1G comm time %v should exceed 10G %v", rs.CommTime, rf.CommTime)
	}
	if rs.Throughput >= rf.Throughput {
		t.Fatalf("1G throughput %v should be below 10G %v", rs.Throughput, rf.Throughput)
	}
}

func TestTrainerPowerSGDRuns(t *testing.T) {
	cfg := baseConfig(2, "powersgd", false)
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestQuality < 0.4 {
		t.Fatalf("powersgd accuracy %v too low", rep.BestQuality)
	}
}

func TestTrainerAllCompressorsSmoke(t *testing.T) {
	// Every registered method must run end to end (1 epoch, 2 workers).
	for _, name := range grace.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			meta, err := grace.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := baseConfig(2, name, meta.DefaultEF && !meta.BuiltinEF)
			cfg.Epochs = 1
			rep, err := grace.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if rep.Iters == 0 || rep.BytesPerIter <= 0 {
				t.Fatalf("%s: degenerate run %+v", name, rep)
			}
		})
	}
}

func TestTrainerRejectsBadConfig(t *testing.T) {
	if _, err := grace.Run(grace.Config{}); err == nil {
		t.Fatal("expected error for empty config")
	}
	cfg := baseConfig(0, "none", false)
	if _, err := grace.Run(cfg); err == nil {
		t.Fatal("expected error for zero workers")
	}
}

func TestTrainerLowerIsBetterQuality(t *testing.T) {
	cfg := baseConfig(2, "none", false)
	cfg.QualityLowerIsBetter = true
	// Quality = 1 - accuracy, decreasing over training.
	inner := cfg.Eval
	cfg.Eval = func(m grace.Model) float64 { return 1 - inner(m) }
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	min := rep.EpochQuality[0]
	for _, q := range rep.EpochQuality {
		if q < min {
			min = q
		}
	}
	if rep.BestQuality != min {
		t.Fatalf("BestQuality %v != min epoch quality %v", rep.BestQuality, min)
	}
}

func TestTrainerParamServer(t *testing.T) {
	// The parameter-server topology must produce identical training results
	// (same aggregates) but, in the bandwidth-bound regime (large gradient,
	// many workers), lower throughput than the ring: the server link
	// serializes 2N payloads. (For tiny latency-bound tensors the star's two
	// hops can win — that regime is covered by the simnet tests.)
	wideModel := func(seed uint64) grace.Model {
		return models.NewMLPClassifier(seed, 64, []int{4096}, 4)
	}
	ring := baseConfig(8, "none", false)
	ring.ComputePerIter = 100 * time.Microsecond
	ring.NewModel = wideModel
	star := baseConfig(8, "none", false)
	star.ComputePerIter = 100 * time.Microsecond
	star.NewModel = wideModel
	star.ParamServer = true

	rr, err := grace.Run(ring)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := grace.Run(star)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rr.EpochQuality {
		if rr.EpochQuality[i] != rs.EpochQuality[i] {
			t.Fatalf("topologies diverged at epoch %d", i)
		}
	}
	if rs.Throughput >= rr.Throughput {
		t.Fatalf("param server throughput %v should trail ring %v", rs.Throughput, rr.Throughput)
	}
}

func TestTrainerEvalEvery(t *testing.T) {
	cfg := baseConfig(2, "none", false)
	cfg.Epochs = 4
	cfg.EvalEvery = 2
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.EpochQuality[0] != 0 || rep.EpochQuality[2] != 0 {
		t.Fatal("skipped epochs should record 0 quality")
	}
	if rep.EpochQuality[1] == 0 || rep.EpochQuality[3] == 0 {
		t.Fatal("eval epochs should record quality")
	}
}

func TestTrainerLRSchedule(t *testing.T) {
	// A schedule that zeroes the rate after epoch 1 freezes the model: the
	// quality series must be flat from epoch 2 on.
	cfg := baseConfig(2, "none", false)
	cfg.Epochs = 4
	cfg.LRSchedule = optim.StepDecay(0.05, 0, 1) // lr = 0 from epoch 1
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 2; e < 4; e++ {
		if rep.EpochQuality[e] != rep.EpochQuality[1] {
			t.Fatalf("model kept moving with zero LR: %v", rep.EpochQuality)
		}
	}
}

func TestTrainerLocalSGD(t *testing.T) {
	// Qsparse-local-SGD: syncing every H steps must cut communication
	// volume by ~H while still converging.
	perStep := baseConfig(4, "topk", true)
	perStep.Epochs = 5
	local := baseConfig(4, "topk", true)
	local.Epochs = 5
	local.SyncEvery = 4

	rp, err := grace.Run(perStep)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := grace.Run(local)
	if err != nil {
		t.Fatal(err)
	}
	if rl.BytesPerIter >= rp.BytesPerIter/2 {
		t.Fatalf("local SGD bytes/iter %v not well below per-step %v", rl.BytesPerIter, rp.BytesPerIter)
	}
	if rl.BestQuality < 0.5 {
		t.Fatalf("local SGD failed to converge: %v", rl.BestQuality)
	}
}

func TestTrainerLocalSGDWithBaselineMatchesAveraging(t *testing.T) {
	// With the identity compressor and H=2, workers follow classic periodic
	// parameter averaging; replicas must re-converge at every sync (the run
	// stays deterministic and healthy).
	cfg := baseConfig(2, "none", false)
	cfg.SyncEvery = 2
	rep, err := grace.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestQuality < 0.5 {
		t.Fatalf("periodic averaging accuracy %v", rep.BestQuality)
	}
}

func TestMajorityVoteAggregation(t *testing.T) {
	// With 3 workers voting {+1, +1, -1} on one coordinate, the default
	// mean aggregation would yield 1/3; the majority-vote Agg must yield
	// exactly +1 on every worker.
	hub := comm.NewHub(3)
	info := grace.NewTensorInfo("t", []int{2})
	inputs := [][]float32{{1, -1}, {2, -2}, {-3, -3}}
	out := make([][]float32, 3)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for rank := 0; rank < 3; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := grace.New("signsgdmv", grace.Options{})
			if err != nil {
				errs[rank] = err
				return
			}
			pipe := &grace.Pipeline{Comp: c, Coll: hub.Worker(rank)}
			out[rank], _, errs[rank] = pipe.Exchange(inputs[rank], info)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if out[rank][0] != 1 || out[rank][1] != -1 {
			t.Fatalf("rank %d majority vote got %v, want [1 -1]", rank, out[rank])
		}
	}
}

func TestTrainerRejectsBadCompressorConfig(t *testing.T) {
	cfg := baseConfig(2, "none", false)
	cfg.NewCompressor = func(rank int) (grace.Compressor, error) {
		return grace.New("topk", grace.Options{Ratio: 5}) // invalid ratio
	}
	if _, err := grace.Run(cfg); err == nil {
		t.Fatal("expected error for invalid compressor options")
	}
}
