package grace

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
	"repro/internal/tensor"
)

// XRankConfig parameterizes the cross-rank observability plane for one run
// (see Config.XRank and package telemetry/xrank).
type XRankConfig struct {
	// Enable turns on event recording in the process-wide xrank recorder.
	Enable bool
	// AggregateEvery > 0 piggybacks each rank's event window on one extra
	// AllgatherBytes every that many optimizer steps; rank 0 merges the
	// windows into the run's distributed trace, other ranks contribute and
	// discard. The extra collective is part of the lockstep op sequence, so
	// the value must be identical on every rank (like DecodeFallback or
	// Fusion). 0 disables aggregation: events are still recorded locally and
	// remain available to the flight recorder.
	AggregateEvery int
	// ArtifactsDir receives rank 0's merged trace + skew artifacts at run
	// end and every rank's flight-recorder dumps. Empty leaves the flight
	// recorder disarmed and skips the artifact write.
	ArtifactsDir string
	// FlightWindow bounds the flight recorder's look-back (0 keeps the
	// recorder's default, 10s).
	FlightWindow time.Duration
}

// Model is what the trainer needs from a benchmark model: parameters with
// gradients and a forward/backward step over one mini-batch returning the
// loss. Replicas are constructed identically on every worker (same seed) and
// stay identical because they apply the same aggregated gradients.
type Model interface {
	Params() []*nn.Param
	ForwardBackward(b data.Batch) float64
}

// Config describes one distributed training run.
type Config struct {
	Workers   int
	BatchSize int // per-worker mini-batch size
	Epochs    int
	Seed      uint64

	// NewModel constructs a model replica; it is called once per worker with
	// the same seed so replicas start identical.
	NewModel func(seed uint64) Model
	// Dataset provides training batches; it must be safe for concurrent
	// read-only Batch calls.
	Dataset data.Dataset
	// NewOptimizer constructs a per-worker optimizer.
	NewOptimizer func() optim.Optimizer
	// LRSchedule, when set, adjusts the optimizer's learning rate at the
	// start of each epoch.
	LRSchedule optim.Schedule
	// NewCompressor constructs the per-worker compressor instance. Workers
	// must get distinct instances (compressors carry state); randomized
	// methods should be seeded per rank. Required unless NewTuner is set.
	NewCompressor func(rank int) (Compressor, error)
	// NewTuner, when set, runs the workers in autotuning mode: each worker's
	// Engine gets its own policy instance from this factory instead of a
	// fixed compressor (see EngineConfig.Tuner). Policies must be configured
	// identically on every rank — the trajectory is part of the collective
	// sequence — which is why the factory takes no rank. Mutually exclusive
	// with NewCompressor and Fusion.
	NewTuner func() (Tuner, error)

	// UseMemory enables the framework error-feedback memory (Eq. 4) with
	// coefficients Beta and Gamma (both default to 1).
	UseMemory   bool
	Beta, Gamma float32

	// CodecParallelism bounds each worker's Engine codec lanes (concurrent
	// compress/decompress goroutines); 0 selects GOMAXPROCS. 1 still
	// overlaps codec compute with collective wait, it just doesn't run two
	// tensors' codec work at once.
	CodecParallelism int

	// Fusion sets the Engine's tensor-fusion batching policy (see
	// FusionConfig): many tensors' payloads share one collective round. The
	// zero value keeps the per-tensor schedule. Modeled wire time is charged
	// per bucket, so fusion shows up as fewer per-round latency charges.
	Fusion FusionConfig

	// SyncEvery > 1 enables local-SGD training (Qsparse-local-SGD [20] /
	// periodic averaging [75]): workers take SyncEvery local optimizer
	// steps between synchronizations, then exchange the *compressed model
	// delta* accumulated since the last sync and set every replica to the
	// sync point plus the mean delta. Error feedback applies to the delta.
	// 0 or 1 selects the standard per-iteration gradient exchange of
	// Algorithm 1.
	SyncEvery int

	// Net is the modeled network for virtual-time accounting.
	Net simnet.Link
	// ParamServer switches from peer collectives (ring cost model) to a
	// central parameter server (star cost model), the master-worker
	// architecture §IV-A notes the framework also supports.
	ParamServer bool
	// ComputePerIter, when non-zero, is the modeled accelerator time of one
	// forward/backward pass; when zero the measured Go wall time is used.
	// The paper's testbed trains on V100 GPUs; modeling compute lets the
	// harness reproduce each benchmark's compute/communication balance (see
	// EXPERIMENTS.md).
	//
	// When compute is modeled, measured codec time is rescaled by the same
	// accelerator-to-Go speed ratio (ComputePerIter / measured compute,
	// capped at 1 so codec cost is never inflated): the paper runs
	// compression kernels on the same device as training, so a virtual
	// clock that mixes modeled GPU compute with raw CPU codec time would
	// overstate compression overhead by the Go-vs-GPU gap.
	ComputePerIter time.Duration

	// Checkpoint, when non-nil, enables crash-consistent snapshots of the
	// full per-rank training state (and, via Resume, restores from one).
	Checkpoint *CheckpointConfig
	// OnStep, when set, is called after every completed optimizer step —
	// after any checkpoint for that step has been saved — with the rank and
	// the global step count. Returning an error aborts the worker; the
	// supervisor harness uses this to simulate a crash at a chosen step.
	OnStep func(rank int, step int64) error
	// Rejoin, when non-nil, enables the self-healing path: a worker whose
	// collective fails with the comm.ErrPeerDead verdict reforms the group at
	// the next generation (the collective must support comm.Reformer) and
	// runs the heal sync round — every rank rolls back to the newest
	// checkpoint step they all hold — instead of surfacing the error. Pair it
	// with Checkpoint.Every > 0 so there is a recovery point to roll back to.
	Rejoin *RejoinConfig
	// Elastic, when non-nil, upgrades the self-healing path to elastic
	// world-size membership: a permanently lost rank is voted out after
	// RejoinDeadline and training continues at N−1 (denominators, shards,
	// fan-in, and the autotuner's link model all re-derive from the new
	// Size()); a fresh worker presenting at a join point is absorbed back.
	// Requires Rejoin and a collective implementing comm.Elastic; see
	// ElasticConfig for the shrink semantics (EF-residual loss, epoch
	// replay, policy reset).
	Elastic *ElasticConfig

	// XRank configures the cross-rank observability plane (telemetry/xrank):
	// per-op/step event recording, periodic cross-rank aggregation of the
	// event windows, and the fault flight recorder. The zero value keeps
	// everything off, which leaves the hot path at one atomic load per hook.
	XRank XRankConfig

	// Eval computes the quality metric (rank 0, every EvalEvery epochs,
	// default 1). Optional.
	Eval func(m Model) float64
	// EvalEvery is the evaluation period in epochs.
	EvalEvery int
	// QualityLowerIsBetter flips best-quality tracking (perplexity).
	QualityLowerIsBetter bool
}

// Report is the outcome of a run.
type Report struct {
	// EpochQuality[i] is the metric after epoch i+1 (NaN-free; 0 when Eval
	// is nil or the epoch was skipped by EvalEvery).
	EpochQuality []float64
	// EpochVirtualTime[i] is the cumulative virtual wall time at the end of
	// epoch i+1.
	EpochVirtualTime []time.Duration
	// EpochCommTime[i] is the cumulative modeled communication time at the
	// end of epoch i+1. Unlike EpochVirtualTime it carries no measured
	// codec component, so it is a deterministic function of the exchanged
	// byte volumes — the autotune benchmark compares runs on it.
	EpochCommTime []time.Duration
	// EpochIters[i] is the number of iterations epoch i+1 ran.
	EpochIters []int
	// BestQuality is the best metric seen (the paper reports best-witnessed
	// quality, §V-A).
	BestQuality float64
	// FinalQuality is the metric at the last evaluated epoch.
	FinalQuality float64
	// BytesPerIter is the mean wire bytes one worker sends per iteration.
	BytesPerIter float64
	// RecvPerIter is the mean peer payload bytes one worker receives per
	// iteration — the figure that exposes allgather-heavy sparsifiers' true
	// wire cost (each worker sends one payload but collects n-1).
	RecvPerIter float64
	// Throughput is training samples per virtual second over the last
	// epoch (all workers combined).
	Throughput float64
	// TotalVirtualTime is the virtual wall time of the whole run.
	TotalVirtualTime time.Duration
	// ComputeTime, CodecTime and CommTime decompose rank 0's virtual time.
	ComputeTime, CodecTime, CommTime time.Duration
	// Iters is the number of iterations each worker executed.
	Iters int
	// Switches is the cumulative autotune method-switch count (0 for
	// fixed-method runs; identical on every rank).
	Switches int64
	// FinalPolicy is the autotuner's last per-tensor candidate assignment
	// (nil for fixed-method runs).
	FinalPolicy []string
	// Quality is the per-tensor compression-quality report accumulated over
	// the run: achieved bits/param, EF residual norm, fault/fallback history
	// (see Engine.QualityReport).
	Quality []TensorQuality
}

// Run executes the distributed training loop of Algorithm 1 and returns the
// rank-0 report. Workers are goroutines over an in-process hub; compute and
// codec times are measured, transfer time is modeled on cfg.Net.
func Run(cfg Config) (*Report, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("grace: workers must be positive")
	}
	if cfg.NewModel == nil || cfg.Dataset == nil || cfg.NewOptimizer == nil {
		return nil, fmt.Errorf("grace: incomplete config")
	}
	if (cfg.NewCompressor == nil) == (cfg.NewTuner == nil) {
		return nil, fmt.Errorf("grace: config needs exactly one of NewCompressor or NewTuner")
	}
	if cfg.Checkpoint != nil && cfg.Checkpoint.Resume != nil {
		// Snapshots are per-rank; a single shared Resume cannot restore all
		// workers. Multi-rank restarts drive RunWorker per rank instead.
		return nil, fmt.Errorf("grace: Checkpoint.Resume is per-rank; use RunWorker")
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	beta, gamma := cfg.Beta, cfg.Gamma
	if beta == 0 {
		beta = 1
	}
	if gamma == 0 {
		gamma = 1
	}

	// Surface compressor/policy configuration errors before any worker blocks
	// in a collective; factories are deterministic across ranks.
	if cfg.NewCompressor != nil {
		if _, err := cfg.NewCompressor(0); err != nil {
			return nil, fmt.Errorf("grace: compressor config: %w", err)
		}
	} else if _, err := cfg.NewTuner(); err != nil {
		return nil, fmt.Errorf("grace: autotune config: %w", err)
	}

	var worker func(rank int) comm.Collective
	cluster := simnet.NewCluster(cfg.Net, cfg.Workers)
	if cfg.ParamServer {
		hub := comm.NewPSHub(cfg.Workers)
		worker = func(rank int) comm.Collective { return hub.Worker(rank) }
		cluster = simnet.NewStarCluster(cfg.Net, cfg.Workers)
	} else {
		hub := comm.NewHub(cfg.Workers)
		worker = func(rank int) comm.Collective { return hub.Worker(rank) }
	}

	var (
		wg     sync.WaitGroup
		report *Report
		runErr error
		errMu  sync.Mutex
	)
	fail := func(rank int, err error) {
		errMu.Lock()
		if runErr == nil {
			runErr = fmt.Errorf("grace: worker %d: %w", rank, err)
		}
		errMu.Unlock()
		// Collectives would deadlock with a missing participant; a worker
		// that cannot continue must abort the process-wide run. This only
		// fires on programming errors in compressors, which the per-method
		// unit tests catch first.
		panic(err)
	}

	for rank := 0; rank < cfg.Workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rep, err := RunWorker(cfg, rank, worker(rank), cluster)
			if err != nil {
				fail(rank, err)
			}
			if rank == 0 {
				report = rep
			}
		}(rank)
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return report, nil
}

// RunWorker executes one worker's share of the training loop over an
// externally provided collective: this is the multi-process entry point
// (cmd/graceworker) where each OS process owns one rank of a real TCP ring.
// cfg.Workers must equal coll.Size(). Quality evaluation and the epoch time
// series are produced on rank 0; other ranks return per-rank accounting
// only.
func RunWorker(cfg Config, rank int, coll comm.Collective, cluster simnet.Cluster) (*Report, error) {
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 1
	}
	beta, gamma := cfg.Beta, cfg.Gamma
	if beta == 0 {
		beta = 1
	}
	if gamma == 0 {
		gamma = 1
	}
	el := cfg.Elastic
	var elColl comm.Elastic
	joinFloor := int64(-1) // JoinOnStart: checkpoint steps at or below are stale
	if el != nil {
		if err := el.validate(&cfg); err != nil {
			return nil, err
		}
		if el.JoinOnStart {
			// A hub joiner blocks here until the members' join beacon absorbs
			// it; a TCP joiner arrives pre-joined through JoinElasticRing (its
			// handle has no JoinGroup), so the miss is not an error. Either
			// way the joiner's own pre-eviction checkpoints are unusable until
			// it has adopted the group's state: the wrapped ListSteps keeps
			// them invisible until the startup sync pins the join floor.
			if j, ok := comm.AsJoiner(coll); ok {
				if _, err := j.JoinGroup(el.rejoinDeadline()); err != nil {
					return nil, fmt.Errorf("grace: elastic join: %w", err)
				}
			}
			if cfg.Rejoin != nil && cfg.Rejoin.ListSteps != nil {
				rj := *cfg.Rejoin
				inner := rj.ListSteps
				rj.ListSteps = func() ([]int64, error) {
					if joinFloor < 0 {
						return nil, nil
					}
					steps, err := inner()
					if err != nil {
						return nil, err
					}
					kept := steps[:0]
					for _, s := range steps {
						if s > joinFloor {
							kept = append(kept, s)
						}
					}
					return kept, nil
				}
				rj.SyncOnStart = true
				cfg.Rejoin = &rj
			}
		}
		ec, ok := comm.AsElastic(coll)
		if !ok {
			return nil, fmt.Errorf("grace: Elastic needs a collective with elastic membership (comm.Elastic)")
		}
		elColl = ec
		// Under elastic membership the collective, not the config, owns the
		// world size: a joiner or a post-shrink restart arrives at whatever
		// size the group currently has.
		cfg.Workers = coll.Size()
	}
	if coll.Size() != cfg.Workers {
		return nil, fmt.Errorf("grace: collective size %d != configured workers %d", coll.Size(), cfg.Workers)
	}

	model := cfg.NewModel(cfg.Seed)
	params := model.Params()
	infos := make([]TensorInfo, len(params))
	for i, p := range params {
		infos[i] = NewTensorInfo(p.Name, p.Value.Shape())
	}
	opt := cfg.NewOptimizer()
	var mem *Memory
	if cfg.UseMemory {
		mem = NewMemory(beta, gamma)
	}
	engOpts := []EngineOption{
		WithCollective(coll),
		WithEngineMemory(mem),
		WithParallelism(cfg.CodecParallelism),
		WithFusion(cfg.Fusion),
	}
	switch {
	case cfg.NewTuner != nil:
		if cfg.NewCompressor != nil {
			return nil, fmt.Errorf("grace: config needs exactly one of NewCompressor or NewTuner")
		}
		tn, err := cfg.NewTuner()
		if err != nil {
			return nil, fmt.Errorf("grace: autotune config: %w", err)
		}
		engOpts = append(engOpts, WithTuner(tn))
	case cfg.NewCompressor != nil:
		engOpts = append(engOpts, WithCompressorFactory(func() (Compressor, error) { return cfg.NewCompressor(rank) }))
	default:
		return nil, fmt.Errorf("grace: config needs exactly one of NewCompressor or NewTuner")
	}
	eng, err := NewEngine(engOpts...)
	if err != nil {
		return nil, err
	}

	// Cross-rank observability: arm the process-wide recorder and, when an
	// aggregation cadence is configured, prepare the piggyback collector.
	var xagg *xrank.Aggregator
	if cfg.XRank.Enable {
		xrank.Default.SetEnabled(true)
		if cfg.XRank.ArtifactsDir != "" {
			xrank.Default.ConfigureFlight(cfg.XRank.ArtifactsDir, cfg.XRank.FlightWindow, 0)
		}
		if cfg.XRank.AggregateEvery > 0 {
			xagg = xrank.NewAggregator(xrank.Default, rank, cfg.Workers)
		}
	}

	// Data shards key off the CURRENT rank under elastic membership (a
	// survivor's index shifts when the group shrinks, re-partitioning the
	// lost rank's shard deterministically across survivors); a static group's
	// current rank is its original rank, so the fallback is the same value.
	shardRank := rank
	if el != nil {
		shardRank = coll.Rank()
	}
	sampler := data.NewSampler(cfg.Dataset.Len(), cfg.Workers, shardRank, cfg.Seed)

	rep := &Report{}
	evaluated := false
	var clock simnet.Clock
	var lastEpochStart time.Duration
	var lastEpochIters int
	var totalBytes, totalRecv int64
	ts := telScope{rank: rank, tid: telemetry.TIDDriver}

	// Local-SGD state: the parameter values at the last synchronization.
	var syncPoint []*tensor.Dense
	if cfg.SyncEvery > 1 {
		syncPoint = make([]*tensor.Dense, len(params))
		for i, p := range params {
			syncPoint[i] = p.Value.Clone()
		}
	}
	sinceSync := 0

	// Step-scoped vectors handed to the Engine, reused every iteration.
	gradVecs := make([][]float32, len(params))
	gradTensors := make([]*tensor.Dense, len(params))

	// Checkpoint resume: restore the full state and fast-forward the loop
	// position. Epoch schedules are pure functions of (seed, epoch), so
	// seeking the sampler and skipping the already-consumed batches of the
	// resume epoch replays exactly the uninterrupted run's remaining batches.
	var globalStep int64
	startEpoch, skipIters := 0, 0
	if rj := cfg.Rejoin; rj != nil {
		if err := rj.validate(); err != nil {
			return nil, err
		}
	}
	if ck := cfg.Checkpoint; ck != nil {
		if (ck.Every > 0 || ck.Final) && ck.Save == nil {
			return nil, fmt.Errorf("grace: CheckpointConfig needs Save when Every or Final is set")
		}
		if ck.Resume != nil {
			pos, err := applySnapshot(&cfg, rank, ck.Resume, model, opt, mem, eng, syncPoint)
			if err != nil {
				return nil, err
			}
			globalStep = pos.step
			startEpoch, skipIters = pos.epoch, pos.iter
			sinceSync = pos.sinceSync
			sampler.Seek(startEpoch)
			// Counted here, at the one successful application, rather than in
			// ckpt.Load: resume negotiation probes many candidate files.
			telemetry.Default.Add(telemetry.CtrCheckpointRestores, 1)
			telemetry.Default.Mark(fmt.Sprintf("restore:step%d", pos.step), rank)
		}
	}

	// resize re-derives every world-size-shaped piece of worker state after a
	// committed elastic membership change: the config's worker count, the
	// data shard (current rank under the new partition), the modeled network
	// cluster, the engine's denominators/fan-in (and, through it, the
	// autotuner's link model), and the xrank aggregator.
	resize := func(m comm.Membership, lost int) error {
		if m.Size() < el.minWorkers() {
			return fmt.Errorf("grace: elastic shrink to %d workers is below MinWorkers %d: %w",
				m.Size(), el.minWorkers(), comm.ErrPeerDead)
		}
		cfg.Workers = m.Size()
		sampler = data.NewSampler(cfg.Dataset.Len(), cfg.Workers, coll.Rank(), cfg.Seed)
		if cfg.ParamServer {
			cluster = simnet.NewStarCluster(cfg.Net, cfg.Workers)
		} else {
			cluster = simnet.NewCluster(cfg.Net, cfg.Workers)
		}
		if err := eng.Pause(); err != nil {
			return err
		}
		err := eng.Rebind(lost)
		eng.Resume()
		if err != nil {
			return err
		}
		if xagg != nil {
			xagg = xrank.NewAggregator(xrank.Default, coll.Rank(), cfg.Workers)
		}
		telemetry.Default.Mark(fmt.Sprintf("elastic:size%d", m.Size()), rank)
		return nil
	}

	// stepDone runs the post-step bookkeeping shared by both training modes:
	// periodic checkpointing first (so a crash right after the boundary can
	// roll back to it), then the OnStep hook.
	stepDone := func(epoch, iter int) error {
		globalStep++
		ck := cfg.Checkpoint
		if ck != nil && ck.Every > 0 && globalStep%int64(ck.Every) == 0 {
			span := ts.start()
			snap, err := captureSnapshot(&cfg, rank, model, opt, mem, eng, syncPoint,
				trainerPos{step: globalStep, epoch: epoch, iter: iter + 1, sinceSync: sinceSync})
			if err != nil {
				return err
			}
			if err := ck.Save(snap); err != nil {
				return fmt.Errorf("grace: checkpoint save at step %d: %w", globalStep, err)
			}
			ts.end(telemetry.PhaseCheckpoint, "", span)
		}
		// Trace aggregation piggybacks one AllgatherBytes at the cadence
		// boundary — same position in every rank's op sequence, so the
		// lockstep contract holds.
		if xagg != nil && globalStep%int64(cfg.XRank.AggregateEvery) == 0 {
			if err := xagg.Exchange(coll); err != nil {
				return fmt.Errorf("grace: xrank trace aggregation at step %d: %w", globalStep, err)
			}
		}
		// Elastic join beacon: at the cadence boundary every member
		// allgathers its pending-join set; a non-empty union unwinds to the
		// heal loop as a growSignal, so the whole group reforms over the
		// same agreed member set at the same op position.
		if elColl != nil && globalStep%int64(el.joinEvery()) == 0 {
			gs, err := joinBeacon(coll, elColl)
			if err != nil {
				return fmt.Errorf("grace: elastic join beacon at step %d: %w", globalStep, err)
			}
			if gs != nil {
				return gs
			}
		}
		if cfg.OnStep != nil {
			if err := cfg.OnStep(rank, globalStep); err != nil {
				return err
			}
		}
		return nil
	}

	// exchange runs one whole-step Engine exchange over gradVecs and
	// accumulates the time/volume accounting.
	exchange := func(codecScale float64) ([][]float32, time.Duration, time.Duration, error) {
		aggs, stepRep, err := eng.Step(gradVecs, infos)
		if err != nil {
			return nil, 0, 0, err
		}
		codecDur := time.Duration(float64(stepRep.CodecTime) * codecScale)
		commDur := ModeledStepCommTime(cluster, stepRep)
		totalBytes += int64(stepRep.SentBytes)
		totalRecv += int64(stepRep.RecvBytes)
		rep.Switches += int64(stepRep.Switches)
		if stepRep.PolicyByTensor != nil {
			rep.FinalPolicy = append(rep.FinalPolicy[:0], stepRep.PolicyByTensor...)
		}
		return aggs, codecDur, commDur, nil
	}

	// syncDeltas exchanges compressed model deltas and resets every replica
	// to syncPoint + mean(delta) (Qsparse-local-SGD's synchronization).
	syncDeltas := func(codecScale float64) (codecDur, commDur time.Duration, err error) {
		for i, p := range params {
			gradVecs[i] = p.Value.Clone().Sub(syncPoint[i]).Data()
		}
		aggs, codecDur, commDur, err := exchange(codecScale)
		if err != nil {
			return 0, 0, err
		}
		for i, p := range params {
			p.Value.CopyFrom(syncPoint[i])
			p.Value.Add(tensor.FromSlice(aggs[i], p.Value.Shape()...))
			syncPoint[i].CopyFrom(p.Value)
		}
		return codecDur, commDur, nil
	}

	// runEpochs is the training loop proper, reading the loop position from
	// the enclosing startEpoch/skipIters so the heal loop below can rewind it.
	runEpochs := func() error {
		for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
			if cfg.LRSchedule != nil {
				opt.SetLR(cfg.LRSchedule(epoch))
			}
			lastEpochStart = clock.Elapsed()
			lastEpochIters = 0
			for iter, batchIdx := range sampler.EpochBatches(cfg.BatchSize) {
				if epoch == startEpoch && iter < skipIters {
					continue
				}
				batch := cfg.Dataset.Batch(batchIdx)
				nn.ZeroGrads(params)
				t0 := time.Now()
				span := ts.start()
				model.ForwardBackward(batch)
				ts.end(telemetry.PhaseCompute, "", span)
				computeDur := time.Since(t0)
				codecScale := 1.0
				if cfg.ComputePerIter > 0 {
					if computeDur > 0 && cfg.ComputePerIter < computeDur {
						codecScale = float64(cfg.ComputePerIter) / float64(computeDur)
					}
					computeDur = cfg.ComputePerIter
				}

				var codecDur, commDur time.Duration
				if cfg.SyncEvery > 1 {
					// Local step on the worker's own gradients; communicate
					// only at sync boundaries.
					grads := make([]*tensor.Dense, len(params))
					for i, p := range params {
						grads[i] = p.Grad
					}
					opt.Step(params, grads)
					sinceSync++
					if sinceSync >= cfg.SyncEvery {
						sinceSync = 0
						var err error
						codecDur, commDur, err = syncDeltas(codecScale)
						if err != nil {
							return err
						}
					}
				} else {
					// Whole-step exchange: the Engine overlaps codec compute for
					// later tensors with earlier tensors' collectives.
					for i, p := range params {
						gradVecs[i] = p.Grad.Data()
					}
					var aggs [][]float32
					var err error
					aggs, codecDur, commDur, err = exchange(codecScale)
					if err != nil {
						return err
					}
					for i, p := range params {
						gradTensors[i] = tensor.FromSlice(aggs[i], p.Grad.Shape()...)
					}
					opt.Step(params, gradTensors)
				}

				clock.Advance(computeDur + codecDur + commDur)
				rep.ComputeTime += computeDur
				rep.CodecTime += codecDur
				rep.CommTime += commDur
				rep.Iters++
				lastEpochIters++
				if err := stepDone(epoch, iter); err != nil {
					return err
				}
			}

			if rank == 0 {
				rep.EpochVirtualTime = append(rep.EpochVirtualTime, clock.Elapsed())
				rep.EpochCommTime = append(rep.EpochCommTime, rep.CommTime)
				rep.EpochIters = append(rep.EpochIters, lastEpochIters)
				q := 0.0
				if cfg.Eval != nil && (epoch+1)%cfg.EvalEvery == 0 {
					q = cfg.Eval(model)
					rep.FinalQuality = q
					better := q > rep.BestQuality
					if cfg.QualityLowerIsBetter {
						better = q < rep.BestQuality
					}
					if !evaluated || better {
						rep.BestQuality = q
						evaluated = true
					}
				}
				rep.EpochQuality = append(rep.EpochQuality, q)
			}
		}
		return nil
	}

	// rewind moves the loop position to a heal sync round's verdict and drops
	// the rank-0 epoch-series entries the rollback will re-produce. Scalar
	// totals (Iters, time and volume sums) intentionally keep the redone
	// work: they measure effort spent, while the epoch series describes the
	// logical training trajectory.
	baseEpoch := startEpoch
	rewind := func(pos trainerPos) {
		globalStep = pos.step
		startEpoch, skipIters = pos.epoch, pos.iter
		sinceSync = pos.sinceSync
		sampler.Seek(startEpoch)
		if rank == 0 {
			keep := pos.epoch - baseEpoch
			if keep < 0 {
				keep = 0
			}
			if keep < len(rep.EpochQuality) {
				rep.EpochQuality = rep.EpochQuality[:keep]
				rep.EpochVirtualTime = rep.EpochVirtualTime[:keep]
				rep.EpochCommTime = rep.EpochCommTime[:keep]
				rep.EpochIters = rep.EpochIters[:keep]
			}
		}
	}

	if rj := cfg.Rejoin; rj != nil && rj.SyncOnStart {
		// A respawned rank syncs with the survivors' recovery barrier before
		// its first step: the heal round replaces the Resume fast-forward.
		pos, gen, err := startupSync(&cfg, rank, coll, model, opt, mem, eng, syncPoint)
		if err != nil {
			return nil, err
		}
		rewind(pos)
		baseEpoch = startEpoch
		if el != nil && el.JoinOnStart {
			// The adopted step is the join floor: everything this rank's
			// checkpoint store holds at or below it predates the join and
			// stays invisible to future heal negotiations.
			joinFloor = pos.step
			// startupSync's fast path never reformed, so its generation is 0;
			// the joiner was absorbed under the committed membership's.
			gen = elColl.Membership().Gen
			if el.OnResize != nil {
				el.OnResize(elColl.Membership(), pos.step)
			}
		}
		if rj.OnHeal != nil {
			rj.OnHeal(gen, pos.step)
		}
	}
	heals := 0
	for {
		err := runEpochs()
		if err == nil {
			break
		}
		rj := cfg.Rejoin

		// Elastic join point: not a failure — the beacon observed pending
		// joiners and every member unwound at the identical step. Reform over
		// the agreed set, re-derive the world-size-shaped state, and run the
		// same heal sync the joiner enters through startupSync.
		var gs *growSignal
		if errors.As(err, &gs) {
			mship, gerr := elColl.ReformGrow(gs.members)
			if gerr != nil {
				return nil, fmt.Errorf("grace: elastic grow: %w", gerr)
			}
			if rerr := resize(mship, 0); rerr != nil {
				return nil, rerr
			}
			pos, herr := healSync(&cfg, rank, coll, model, opt, mem, eng, syncPoint)
			if herr != nil {
				return nil, herr
			}
			rewind(pos)
			if el.OnResize != nil {
				el.OnResize(mship, pos.step)
			}
			if rj.OnHeal != nil {
				rj.OnHeal(mship.Gen, pos.step)
			}
			continue
		}

		if rj == nil || !errors.Is(err, comm.ErrPeerDead) {
			return nil, err
		}
		if heals++; heals > rj.maxHeals() {
			return nil, fmt.Errorf("grace: giving up after %d heals: %w", heals-1, err)
		}
		// Freeze the event window before the reform rewrites the group: the
		// dump captures the conviction and the ops leading up to it. The
		// recorder rate-limits, so a whole group healing at once still yields
		// a bounded artifact set.
		xrank.Default.Flight("heal_peer_dead", err)

		if elColl != nil {
			// Elastic heal: hold the door open for the rejoin deadline, then
			// vote to continue without whoever is still missing. An intact
			// reform (everyone made it back) commits no membership change and
			// needs no resize.
			mship, rerr := elColl.ReformElastic(el.rejoinDeadline())
			if rerr != nil {
				return nil, fmt.Errorf("grace: elastic reform after peer death: %w", rerr)
			}
			if len(mship.Lost) > 0 {
				if rerr := resize(mship, len(mship.Lost)); rerr != nil {
					return nil, rerr
				}
			}
			pos, herr := healSync(&cfg, rank, coll, model, opt, mem, eng, syncPoint)
			if herr != nil {
				return nil, herr
			}
			rewind(pos)
			if len(mship.Lost) > 0 && el.OnResize != nil {
				el.OnResize(mship, pos.step)
			}
			if rj.OnHeal != nil {
				rj.OnHeal(mship.Gen, pos.step)
			}
			continue
		}

		rf, ok := comm.AsReformer(coll)
		if !ok {
			return nil, fmt.Errorf("grace: peer died and the collective cannot reform: %w", err)
		}
		gen, rerr := rf.Reform()
		if rerr != nil {
			return nil, fmt.Errorf("grace: reform after peer death: %w", rerr)
		}
		pos, herr := healSync(&cfg, rank, coll, model, opt, mem, eng, syncPoint)
		if herr != nil {
			return nil, herr
		}
		rewind(pos)
		if rj.OnHeal != nil {
			rj.OnHeal(gen, pos.step)
		}
	}

	// Final trace aggregation picks up the tail since the last cadence tick;
	// every rank participates (it is a collective), rank 0 then renders the
	// merged artifacts. A failure here loses only the tail — whatever earlier
	// ticks merged is still written.
	if xagg != nil {
		if err := xagg.Exchange(coll); err != nil {
			telemetry.Default.Mark("xrank:final-exchange-failed", rank)
		}
		if cfg.XRank.ArtifactsDir != "" {
			if err := xagg.WriteArtifacts(cfg.XRank.ArtifactsDir); err != nil {
				return nil, fmt.Errorf("grace: xrank artifacts: %w", err)
			}
		}
	}

	if ck := cfg.Checkpoint; ck != nil && ck.Final {
		span := ts.start()
		snap, err := captureSnapshot(&cfg, rank, model, opt, mem, eng, syncPoint,
			trainerPos{step: globalStep, epoch: cfg.Epochs, iter: 0, sinceSync: sinceSync})
		if err != nil {
			return nil, err
		}
		if err := ck.Save(snap); err != nil {
			return nil, fmt.Errorf("grace: final checkpoint save: %w", err)
		}
		ts.end(telemetry.PhaseCheckpoint, "", span)
	}

	rep.Quality = eng.QualityReport()
	rep.TotalVirtualTime = clock.Elapsed()
	if rep.Iters > 0 {
		rep.BytesPerIter = float64(totalBytes) / float64(rep.Iters)
		rep.RecvPerIter = float64(totalRecv) / float64(rep.Iters)
	}
	lastDur := clock.Elapsed() - lastEpochStart
	if lastDur > 0 && lastEpochIters > 0 {
		samples := float64(lastEpochIters * cfg.BatchSize * cfg.Workers)
		rep.Throughput = samples / lastDur.Seconds()
	}
	return rep, nil
}

// ModeledStepCommTime charges one StepReport's exchanges against the α-β
// cluster model, bucket by bucket — the same accounting the trainer's
// virtual clock uses. It is exported for harness batteries that replay a
// frozen policy outside a training loop and need the identical cost model.
func ModeledStepCommTime(c simnet.Cluster, rep *StepReport) time.Duration {
	var d time.Duration
	for _, b := range rep.Buckets {
		d += commTimeBucket(c, rep.Tensors[b.Lo:b.Hi])
	}
	return d
}

// commTimeBucket models the transfer time of one collective round — a fusion
// bucket — on the cluster. A singleton bucket is the legacy per-tensor charge;
// a fused bucket merges its tensors' volumes into one round, which is exactly
// the saving fusion exists for: one latency charge instead of len(span).
func commTimeBucket(c simnet.Cluster, span []StepStats) time.Duration {
	if len(span) == 1 {
		return commTime(c, span[0])
	}
	switch span[0].Strategy {
	case Allreduce:
		total := 0
		for _, s := range span {
			total += s.SentBytes
		}
		return c.AllreduceTime(total)
	case Allgather:
		// Per-rank fused frame = framing header + that rank's payloads.
		var sizes []int
		over := comm.FusedOverhead(len(span))
		for _, s := range span {
			if len(sizes) < len(s.GatherSizes) {
				grown := make([]int, len(s.GatherSizes))
				copy(grown, sizes)
				for r := len(sizes); r < len(grown); r++ {
					grown[r] = over
				}
				sizes = grown
			}
			for r, sz := range s.GatherSizes {
				sizes[r] += sz
			}
		}
		return c.AllgatherTime(sizes)
	default:
		// Custom-strategy tensors are never fused; charge per tensor.
		var d time.Duration
		for _, s := range span {
			d += commTime(c, s)
		}
		return d
	}
}

// commTime models the transfer time of one exchange on the cluster.
func commTime(c simnet.Cluster, s StepStats) time.Duration {
	switch s.Strategy {
	case Allreduce:
		return c.AllreduceTime(s.SentBytes)
	case Allgather:
		return c.AllgatherTime(s.GatherSizes)
	case Custom:
		// PowerSGD performs two allreduces (P then Q); model each as half
		// the sent volume.
		return 2 * c.AllreduceTime(s.SentBytes/2)
	default:
		return 0
	}
}
