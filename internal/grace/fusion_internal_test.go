package grace

import (
	"fmt"
	"testing"
)

func planInfos(sizes ...int) []TensorInfo {
	infos := make([]TensorInfo, len(sizes))
	for i, s := range sizes {
		infos[i] = NewTensorInfo(fmt.Sprintf("t%d", i), []int{s})
	}
	return infos
}

// checkPlan asserts the structural invariants every bucket plan must satisfy:
// buckets are non-empty, contiguous, ascending, and tile [0, len(infos))
// exactly.
func checkPlan(t *testing.T, infos []TensorInfo, bs []Bucket) {
	t.Helper()
	next := 0
	for i, b := range bs {
		if b.Lo != next || b.Hi <= b.Lo {
			t.Fatalf("bucket %d is [%d,%d), want contiguous from %d", i, b.Lo, b.Hi, next)
		}
		next = b.Hi
	}
	if next != len(infos) {
		t.Fatalf("plan covers [0,%d), want [0,%d)", next, len(infos))
	}
}

func TestPlanBucketsDisabled(t *testing.T) {
	infos := planInfos(10, 20, 30)
	for _, fc := range []FusionConfig{{}, {MaxTensors: 4}} {
		bs := planBuckets(infos, fc, Allreduce)
		checkPlan(t, infos, bs)
		if len(bs) != len(infos) {
			t.Fatalf("disabled fusion produced %d buckets for %d tensors", len(bs), len(infos))
		}
	}
}

func TestPlanBucketsTargetBytes(t *testing.T) {
	// 4 bytes/element estimate: sizes 10,10,10 → 40 bytes each.
	infos := planInfos(10, 10, 10, 10, 10)
	bs := planBuckets(infos, FusionConfig{TargetBytes: 80}, Allgather)
	checkPlan(t, infos, bs)
	// 80-byte target packs exactly two 40-byte tensors per bucket.
	want := []Bucket{{0, 2}, {2, 4}, {4, 5}}
	if len(bs) != len(want) {
		t.Fatalf("got %d buckets %v, want %v", len(bs), bs, want)
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, bs[i], want[i])
		}
	}
}

func TestPlanBucketsOversizeTensor(t *testing.T) {
	// A tensor above the target still gets a bucket of its own, and packing
	// resumes after it.
	infos := planInfos(2, 1000, 2, 2)
	bs := planBuckets(infos, FusionConfig{TargetBytes: 64}, Allreduce)
	checkPlan(t, infos, bs)
	want := []Bucket{{0, 1}, {1, 2}, {2, 4}}
	for i := range want {
		if i >= len(bs) || bs[i] != want[i] {
			t.Fatalf("got %v, want %v", bs, want)
		}
	}
}

func TestPlanBucketsMaxTensors(t *testing.T) {
	infos := planInfos(1, 1, 1, 1, 1, 1, 1)
	bs := planBuckets(infos, FusionConfig{TargetBytes: 1 << 20, MaxTensors: 3}, Allreduce)
	checkPlan(t, infos, bs)
	for i, b := range bs {
		if b.size() > 3 {
			t.Fatalf("bucket %d carries %d tensors, cap is 3", i, b.size())
		}
	}
	if len(bs) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bs))
	}
}

func TestPlanBucketsCustomNeverFuses(t *testing.T) {
	infos := planInfos(1, 1, 1)
	bs := planBuckets(infos, FusionConfig{TargetBytes: 1 << 20}, Custom)
	checkPlan(t, infos, bs)
	if len(bs) != len(infos) {
		t.Fatalf("custom strategy fused: %v", bs)
	}
}

func TestPlanBucketsEmpty(t *testing.T) {
	if bs := planBuckets(nil, FusionConfig{TargetBytes: 64}, Allreduce); bs != nil {
		t.Fatalf("empty tensor set produced buckets: %v", bs)
	}
}

func TestFusionConfigValidate(t *testing.T) {
	if err := (FusionConfig{TargetBytes: -1}).validate(); err == nil {
		t.Fatal("negative TargetBytes accepted")
	}
	if err := (FusionConfig{MaxTensors: -1}).validate(); err == nil {
		t.Fatal("negative MaxTensors accepted")
	}
	if err := (FusionConfig{TargetBytes: 1 << 20, MaxTensors: 8}).validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}
