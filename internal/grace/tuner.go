package grace

import "fmt"

// This file defines the engine side of runtime compression autotuning: the
// Tuner contract a policy engine (internal/grace/autotune) implements, the
// per-step plan/observation exchange between the Engine and the policy, and
// the serializable policy state checkpoints carry.
//
// Determinism contract: every rank runs its own Tuner instance with no extra
// collective, so the policy MUST derive decisions purely from rank-identical
// inputs — the step counter, the tensor metadata, and the exchanged byte
// counts the Engine observes through collectives (an allreduce's dense width
// and an allgather's summed per-rank payload sizes are the same on every
// rank by construction). Locally measured wall-clock time is NOT
// rank-identical and must never influence a decision; it feeds telemetry
// only. As long as that holds, every rank computes the same assignment at
// the same step and the collective sequence stays in lockstep.

// TunerCandidate is one (method, options) configuration an autotuning policy
// may assign to a tensor. Candidates must be codec-stateless (not
// implementing Stateful) and must not use the Custom communication strategy;
// NewEngine enforces both.
type TunerCandidate struct {
	// Label names the candidate in reports and policy traces, e.g.
	// "topk@0.01".
	Label string
	// Method is the registry name passed to New.
	Method string
	// Opts configures the method instance.
	Opts Options
}

// TunerAssign is one tensor's exchange plan for the upcoming step.
type TunerAssign struct {
	// Cand indexes the tuner's Candidates().
	Cand int
	// Flush requests the EF-residual flush handoff for this step: the tensor
	// is exchanged exactly once uncompressed (compensated gradient, dense
	// allreduce) and its residual becomes exactly zero, so the new method
	// starts from clean accounting. Ignored when the engine runs without
	// error-feedback memory.
	Flush bool
}

// TunerObs is the engine's post-step feedback for one tensor. All fields are
// rank-identical, so feeding them back into the policy preserves the
// determinism contract.
type TunerObs struct {
	// Cand and Flush echo the plan the observation belongs to.
	Cand  int
	Flush bool
	// Strategy is the communication strategy the exchange used.
	Strategy Strategy
	// ExchBytes is the exchanged-byte observation: the dense payload width
	// for an allreduce (every rank contributes the same width) and the sum of
	// every rank's payload sizes for an allgather (every rank sees every
	// payload). Flush steps report the uncompressed width.
	ExchBytes int64
	// Fault reports that this tensor's compressed payload failed decode on at
	// least one rank this step and was salvaged by the DecodeFallback recovery
	// round. It derives from the recovery round's union bitmask, so every rank
	// observes the identical value — safe to fold into policy decisions
	// without breaking the determinism contract. Always false when
	// DecodeFallback is off (a fault is then fatal, never observed).
	Fault bool
}

// TunerState is the serializable policy state. It is captured into
// Snapshot.Tuner at checkpoint boundaries and restored before the first
// post-resume step, so a killed and restarted run replays the identical
// policy trajectory bit for bit.
type TunerState struct {
	// Sig identifies the policy configuration (candidate set, period,
	// hysteresis, link model); restores reject a state from a different
	// configuration.
	Sig string
	// Step counts observed steps.
	Step int64
	// Switches counts method switches applied so far (cumulative).
	Switches int64
	// NextSwitches is the switch count the next Plan call reports — decisions
	// land between an Observe and the following Plan, so an un-reported count
	// must survive a checkpoint at that boundary.
	NextSwitches int32
	// Cands pins the candidate count LastBytes is strided by.
	Cands int32
	// Assign is the current per-tensor candidate assignment.
	Assign []int32
	// Pending marks tensors whose flush handoff has not run yet.
	Pending []bool
	// LastBytes[i*Cands+c] is the last ExchBytes observed for tensor i under
	// candidate c, or -1 when the pair has never been exchanged.
	LastBytes []int64
}

// Clone deep-copies the state (nil-safe).
func (s *TunerState) Clone() *TunerState {
	if s == nil {
		return nil
	}
	out := *s
	out.Assign = append([]int32(nil), s.Assign...)
	out.Pending = append([]bool(nil), s.Pending...)
	out.LastBytes = append([]int64(nil), s.LastBytes...)
	return &out
}

// Tuner is the per-tensor compression policy engine the Engine consults once
// per step. Implementations must be deterministic functions of their
// construction config plus the Init/Plan/Observe call sequence (see the
// determinism contract above); they are used by a single worker and need not
// be safe for concurrent use.
type Tuner interface {
	// Candidates returns the fixed candidate set; index positions are the
	// Cand values used everywhere else. Must not change after construction.
	Candidates() []TunerCandidate
	// Sig returns a deterministic signature of the policy configuration. The
	// engine reports it as Method() and checkpoints validate it on restore.
	Sig() string
	// Init binds the policy to a tensor set before the first planned step.
	// Re-binding to a matching tensor set (same count and sizes — the
	// checkpoint-resume path) must preserve existing policy state.
	Init(infos []TensorInfo) error
	// Plan fills dst (len = tensor count) with the step's assignment and
	// returns how many tensors switched methods at this step's start.
	Plan(dst []TunerAssign) int
	// Observe feeds back one completed step's per-tensor observations; the
	// policy advances its step counter and, at decision boundaries, computes
	// the next assignment.
	Observe(obs []TunerObs)
	// State returns a deep copy of the serializable policy state.
	State() *TunerState
	// LoadState restores a previously captured state; it validates the
	// signature and dimensions.
	LoadState(st *TunerState) error
}

// WorldSizeSetter is the optional Tuner extension an elastic run needs: a
// policy implementing it is told the new worker count after a committed
// membership change, so its link-model cluster and configuration signature
// re-derive from the new size. The call resets the policy trajectory (the
// signature pins the worker count, so pre-resize state is not loadable) —
// every member resets identically, keeping the lockstep contract. A tuning
// elastic run whose policy lacks this interface fails the resize.
type WorldSizeSetter interface {
	SetWorldSize(n int)
}

// TunerState reports a deep copy of the autotuning policy state, or nil when
// the engine runs a fixed method.
func (e *Engine) TunerState() *TunerState {
	if e.tuner == nil {
		return nil
	}
	return e.tuner.State()
}

// LoadTunerState restores a checkpointed policy state into the engine's
// tuner. Presence must match: a fixed-method engine rejects a state, and a
// tuning engine rejects its absence — resuming with a different tuning mode
// would desync the collective sequence across ranks.
func (e *Engine) LoadTunerState(st *TunerState) error {
	if e.tuner == nil {
		if st != nil {
			return errTunerPresence(true)
		}
		return nil
	}
	if st == nil {
		return errTunerPresence(false)
	}
	return e.tuner.LoadState(st)
}

func errTunerPresence(snapshotHas bool) error {
	if snapshotHas {
		return fmt.Errorf("grace: checkpoint carries autotune policy state but the run uses a fixed method")
	}
	return fmt.Errorf("grace: run autotunes but the checkpoint has no policy state")
}
