package grace

import (
	"math/bits"
	"sync"

	"repro/internal/telemetry"
)

// Scratch-buffer reuse. Exchanges allocate several gradient-sized float32
// slices per tensor per step (compensated gradients, allreduce working
// copies, decode scratch); at thousands of steps over dozens of tensors that
// churn dominates the allocator. Buffers are pooled in power-of-two size
// classes so a Get never returns a slice with less capacity than requested
// and mixed tensor sizes still hit the pool.

const f32PoolClasses = 31

var f32Pools [f32PoolClasses]sync.Pool

// getF32 returns a length-n float32 slice, reusing a pooled buffer when one
// is available. Contents are unspecified; callers must fully overwrite or
// zero it.
func getF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	telemetry.Default.Add(telemetry.CtrPoolGets, 1)
	c := poolClass(n)
	if c >= f32PoolClasses {
		return make([]float32, n)
	}
	if p, _ := f32Pools[c].Get().(*[]float32); p != nil {
		telemetry.Default.Add(telemetry.CtrPoolHits, 1)
		return (*p)[:n]
	}
	return make([]float32, n, 1<<c)
}

// putF32 returns a slice obtained from getF32 to its pool. Slices whose
// capacity is not an exact size class (i.e. not from getF32) are dropped.
func putF32(s []float32) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 || poolClass(c) >= f32PoolClasses {
		return
	}
	s = s[:c]
	f32Pools[poolClass(c)].Put(&s)
}

// poolClass is ceil(log2(n)): the smallest class whose buffers hold n
// elements.
func poolClass(n int) int {
	return bits.Len(uint(n - 1))
}
