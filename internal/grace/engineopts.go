package grace

import "repro/internal/comm"

// EngineOption configures NewEngine. Options are applied in order onto a
// zero EngineConfig, so later options win. Two kinds of values satisfy
// EngineOption: the With* functional options below — the preferred
// construction surface —
//
//	eng, err := grace.NewEngine(
//		grace.WithCollective(coll),
//		grace.WithCompressorFactory(newComp),
//		grace.WithFusion(grace.FusionConfig{TargetBytes: 1 << 20}),
//	)
//
// and the EngineConfig struct itself (which merges its non-zero fields), so
// call sites that assemble a literal config keep working:
//
//	eng, err := grace.NewEngine(grace.EngineConfig{Coll: coll, Comp: c})
//
// Raw struct-literal construction is deprecated in examples and docs in
// favor of the options form; it remains supported for programmatic callers
// that build configs field by field (the harness).
type EngineOption interface {
	applyEngine(*EngineConfig)
}

// engineOptionFunc adapts a function to the EngineOption interface.
type engineOptionFunc func(*EngineConfig)

func (f engineOptionFunc) applyEngine(c *EngineConfig) { f(c) }

// applyEngine merges the non-zero fields of c into dst, making a literal
// EngineConfig usable anywhere an EngineOption is expected. Zero fields are
// skipped because the zero value of every knob means "use the default".
func (c EngineConfig) applyEngine(dst *EngineConfig) {
	if c.Coll != nil {
		dst.Coll = c.Coll
	}
	if c.New != nil {
		dst.New = c.New
	}
	if c.Comp != nil {
		dst.Comp = c.Comp
	}
	if c.Mem != nil {
		dst.Mem = c.Mem
	}
	if c.Parallelism != 0 {
		dst.Parallelism = c.Parallelism
	}
	if c.DecodeFallback {
		dst.DecodeFallback = true
	}
	if c.Fusion != (FusionConfig{}) {
		dst.Fusion = c.Fusion
	}
	if c.Tuner != nil {
		dst.Tuner = c.Tuner
	}
}

// WithCollective sets the worker's collective handle (required).
func WithCollective(coll comm.Collective) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Coll = coll })
}

// WithCompressorFactory sets the per-lane compressor factory (see
// EngineConfig.New).
func WithCompressorFactory(f func() (Compressor, error)) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.New = f })
}

// WithCompressor sets a single pre-built compressor (see EngineConfig.Comp).
func WithCompressor(comp Compressor) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Comp = comp })
}

// WithEngineMemory attaches the framework error-feedback memory (Eq. 4).
func WithEngineMemory(m *Memory) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Mem = m })
}

// WithParallelism bounds the codec lane count; 0 selects GOMAXPROCS.
func WithParallelism(p int) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Parallelism = p })
}

// WithDecodeFallback enables graceful degradation of decode failures (see
// EngineConfig.DecodeFallback; must be set identically on every worker).
func WithDecodeFallback(on bool) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.DecodeFallback = on })
}

// WithFusion sets the tensor-fusion batching policy (see FusionConfig; must
// be set identically on every worker).
func WithFusion(fc FusionConfig) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Fusion = fc })
}

// WithFusionBytes is WithFusion with just a bucket fill target — the common
// case, mirroring the CLIs' -fusion-bytes flag. 0 disables fusion.
func WithFusionBytes(target int) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Fusion = FusionConfig{TargetBytes: target} })
}

// WithTuner puts the engine in autotuning mode under the given policy (see
// EngineConfig.Tuner; every worker must run an identically configured
// policy). The autotune package constructs policies: WithTuner(autotune.New(
// autotune.Config{...})).
func WithTuner(tn Tuner) EngineOption {
	return engineOptionFunc(func(c *EngineConfig) { c.Tuner = tn })
}

// BuildEngineConfig folds a list of options into the EngineConfig NewEngine
// consumes. Exposed for callers that assemble a config once and reuse it.
func BuildEngineConfig(opts ...EngineOption) EngineConfig {
	var c EngineConfig
	for _, opt := range opts {
		opt.applyEngine(&c)
	}
	return c
}
