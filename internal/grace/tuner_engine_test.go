package grace_test

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/grace"
	"repro/internal/grace/autotune"
	"repro/internal/simnet"
)

// tunerTestPolicy builds the autotune policy used throughout the engine-level
// tuner tests: three candidates spanning the strategies (dense allreduce,
// sparse allgather, quantized allgather) with a short decision period so a
// handful of steps crosses warmup into scored decisions.
func tunerTestPolicy(t *testing.T, workers, every int) *autotune.Policy {
	t.Helper()
	p, err := autotune.New(autotune.Config{
		Candidates: []grace.TunerCandidate{
			{Label: "none", Method: "none"},
			{Label: "topk@0.05", Method: "topk", Opts: grace.Options{Ratio: 0.05}},
			{Label: "eightbit", Method: "eightbit"},
		},
		Every:   every,
		Link:    simnet.TCP1G,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// tunerStepTrace is one rank's record of one step's policy-visible outcome.
type tunerStepTrace struct {
	Switches int
	Flushes  int
	Labels   []string
	Aggs     [][]float32
}

// tunerTrace is one rank's whole-run policy trajectory.
type tunerTrace struct {
	Steps []tunerStepTrace
	Final *grace.TunerState
}

// runTunedGroup drives `workers` autotuning engines in lockstep over the
// collectives `collFor` hands out, recording every rank's per-step policy
// trajectory and final tuner state.
func runTunedGroup(t *testing.T, workers, steps, every int, ef bool,
	collFor func(rank int) comm.Collective) []tunerTrace {
	t.Helper()
	infos := engineTestInfos(9)
	traces := make([]tunerTrace, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rank := 0; rank < workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			var mem *grace.Memory
			if ef {
				mem = grace.NewMemory(1, 1)
			}
			eng, err := grace.NewEngine(
				grace.WithCollective(collFor(rank)),
				grace.WithTuner(tunerTestPolicy(t, workers, every)),
				grace.WithEngineMemory(mem),
				grace.WithParallelism(2),
			)
			if err != nil {
				errs[rank] = err
				return
			}
			for step := 0; step < steps; step++ {
				aggs, rep, err := eng.Step(engineTestGrads(rank, step, infos), infos)
				if err != nil {
					errs[rank] = err
					return
				}
				tr := tunerStepTrace{
					Switches: rep.Switches,
					Flushes:  rep.Flushes,
					Labels:   append([]string(nil), rep.PolicyByTensor...),
					Aggs:     make([][]float32, len(aggs)),
				}
				for i, a := range aggs {
					tr.Aggs[i] = append([]float32(nil), a...)
				}
				traces[rank].Steps = append(traces[rank].Steps, tr)
			}
			traces[rank].Final = eng.TunerState()
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return traces
}

// requireLockstep asserts every rank's trajectory is bitwise identical to
// rank 0's: same per-step switch/flush counts, same per-tensor policy labels,
// same aggregates, same final policy state.
func requireLockstep(t *testing.T, traces []tunerTrace) {
	t.Helper()
	ref := traces[0]
	for rank := 1; rank < len(traces); rank++ {
		tr := traces[rank]
		if len(tr.Steps) != len(ref.Steps) {
			t.Fatalf("rank %d ran %d steps, rank 0 ran %d", rank, len(tr.Steps), len(ref.Steps))
		}
		for s := range tr.Steps {
			if tr.Steps[s].Switches != ref.Steps[s].Switches || tr.Steps[s].Flushes != ref.Steps[s].Flushes {
				t.Fatalf("rank %d step %d: %d switches/%d flushes, rank 0 has %d/%d",
					rank, s, tr.Steps[s].Switches, tr.Steps[s].Flushes,
					ref.Steps[s].Switches, ref.Steps[s].Flushes)
			}
			if !reflect.DeepEqual(tr.Steps[s].Labels, ref.Steps[s].Labels) {
				t.Fatalf("rank %d step %d policy %v, rank 0 policy %v", rank, s, tr.Steps[s].Labels, ref.Steps[s].Labels)
			}
			for ti := range tr.Steps[s].Aggs {
				for j := range tr.Steps[s].Aggs[ti] {
					if tr.Steps[s].Aggs[ti][j] != ref.Steps[s].Aggs[ti][j] {
						t.Fatalf("rank %d step %d tensor %d elem %d disagrees with rank 0", rank, s, ti, j)
					}
				}
			}
		}
		if !reflect.DeepEqual(tr.Final, ref.Final) {
			t.Fatalf("rank %d final policy state diverged:\n%+v\nvs rank 0:\n%+v", rank, tr.Final, ref.Final)
		}
	}
}

// requirePolicyEqual asserts two substrates produced the identical policy
// trajectory (labels, switch counts, final state; aggregates are substrate-
// independent too, but only the policy sequence is the determinism contract).
func requirePolicyEqual(t *testing.T, name string, got, want []tunerTrace) {
	t.Helper()
	for rank := range got {
		for s := range got[rank].Steps {
			if !reflect.DeepEqual(got[rank].Steps[s].Labels, want[rank].Steps[s].Labels) ||
				got[rank].Steps[s].Switches != want[rank].Steps[s].Switches ||
				got[rank].Steps[s].Flushes != want[rank].Steps[s].Flushes {
				t.Fatalf("%s: rank %d step %d policy %v (%d sw/%d fl) != reference %v (%d sw/%d fl)",
					name, rank, s, got[rank].Steps[s].Labels, got[rank].Steps[s].Switches, got[rank].Steps[s].Flushes,
					want[rank].Steps[s].Labels, want[rank].Steps[s].Switches, want[rank].Steps[s].Flushes)
			}
		}
		if !reflect.DeepEqual(got[rank].Final, want[rank].Final) {
			t.Fatalf("%s: rank %d final policy state diverged from reference", name, rank)
		}
	}
}

// freeRingAddrs reserves n distinct localhost TCP addresses for a ring.
func freeRingAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		l.Close()
	}
	return addrs
}

// TestTunedLockstepSubstrates is the autotune determinism proof: the policy
// trajectory — per-step candidate labels, switch and flush counts, final
// policy state — is bitwise identical (a) across ranks, (b) across transport
// substrates (in-process hub vs real TCP ring), and (c) under chaos-injected
// network delays, which perturb wall-clock timing but none of the
// rank-identical inputs decisions are allowed to depend on. Run under -race
// via `make race`.
func TestTunedLockstepSubstrates(t *testing.T) {
	const (
		workers = 3
		steps   = 13
		every   = 2
	)
	hub := comm.NewHub(workers)
	ref := runTunedGroup(t, workers, steps, every, true, func(rank int) comm.Collective {
		return hub.Worker(rank)
	})
	requireLockstep(t, ref)

	var switches, flushes int
	for _, st := range ref[0].Steps {
		switches += st.Switches
		flushes += st.Flushes
	}
	if switches == 0 {
		t.Fatal("no switches over 13 steps — warmup probing never engaged")
	}
	if flushes == 0 {
		t.Fatal("no EF flush handoffs despite switches under error feedback")
	}
	if ref[0].Final.Step != steps || ref[0].Final.Switches == 0 {
		t.Fatalf("final policy state %+v does not reflect the run", ref[0].Final)
	}

	t.Run("tcp-ring", func(t *testing.T) {
		addrs := freeRingAddrs(t, workers)
		rings := make([]*comm.TCPRing, workers)
		var dial sync.WaitGroup
		dialErrs := make([]error, workers)
		for rank := 0; rank < workers; rank++ {
			dial.Add(1)
			go func(rank int) {
				defer dial.Done()
				r, err := comm.DialTCPRing(rank, addrs, 5*time.Second)
				rings[rank] = r
				dialErrs[rank] = err
			}(rank)
		}
		dial.Wait()
		for rank, err := range dialErrs {
			if err != nil {
				t.Fatalf("dial rank %d: %v", rank, err)
			}
			defer rings[rank].Close()
		}
		got := runTunedGroup(t, workers, steps, every, true, func(rank int) comm.Collective {
			return rings[rank]
		})
		requireLockstep(t, got)
		requirePolicyEqual(t, "tcp-ring vs hub", got, ref)
	})

	t.Run("chaos-delays", func(t *testing.T) {
		chaosHub := comm.NewHub(workers)
		plan := comm.Plan{Seed: 7, Faults: []comm.Fault{
			{Kind: comm.FaultDelay, Rank: comm.AnyRank, Prob: 0.4, Delay: 2 * time.Millisecond},
			{Kind: comm.FaultDelay, Rank: 1, Prob: 0.8, Delay: 5 * time.Millisecond},
		}}
		got := runTunedGroup(t, workers, steps, every, true, func(rank int) comm.Collective {
			return comm.NewFaulty(chaosHub.Worker(rank), plan)
		})
		requireLockstep(t, got)
		requirePolicyEqual(t, "chaos vs clean hub", got, ref)
	})
}

// TestTunedEngineNoMemory: without error-feedback memory there is no residual
// to hand off, so switches must not produce flush steps, and the run stays in
// lockstep.
func TestTunedEngineNoMemory(t *testing.T) {
	const workers = 2
	hub := comm.NewHub(workers)
	traces := runTunedGroup(t, workers, 9, 2, false, func(rank int) comm.Collective {
		return hub.Worker(rank)
	})
	requireLockstep(t, traces)
	var switches, flushes int
	for _, st := range traces[0].Steps {
		switches += st.Switches
		flushes += st.Flushes
	}
	if switches == 0 {
		t.Fatal("no switches — warmup probing never engaged")
	}
	if flushes != 0 {
		t.Fatalf("memoryless run reported %d flush steps", flushes)
	}
}

// TestTunedEngineResume checks the kill/restart contract at engine level: a
// run checkpointed mid-stream (tuner state + EF memory) and resumed into
// fresh engines replays the identical policy trajectory and aggregates,
// bitwise, as the uninterrupted reference.
func TestTunedEngineResume(t *testing.T) {
	const (
		workers = 2
		steps   = 10
		cut     = 5
		every   = 2
	)
	infos := engineTestInfos(6)

	type phase struct {
		eng *grace.Engine
		mem *grace.Memory
	}
	run := func(engs []phase, from, to int) []tunerTrace {
		traces := make([]tunerTrace, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for rank := 0; rank < workers; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				for step := from; step < to; step++ {
					aggs, rep, err := engs[rank].eng.Step(engineTestGrads(rank, step, infos), infos)
					if err != nil {
						errs[rank] = err
						return
					}
					tr := tunerStepTrace{Switches: rep.Switches, Flushes: rep.Flushes,
						Labels: append([]string(nil), rep.PolicyByTensor...)}
					for _, a := range aggs {
						tr.Aggs = append(tr.Aggs, append([]float32(nil), a...))
					}
					traces[rank].Steps = append(traces[rank].Steps, tr)
				}
				traces[rank].Final = engs[rank].eng.TunerState()
			}(rank)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("rank %d: %v", rank, err)
			}
		}
		return traces
	}
	build := func(hub *comm.Hub) []phase {
		engs := make([]phase, workers)
		for rank := 0; rank < workers; rank++ {
			mem := grace.NewMemory(1, 1)
			eng, err := grace.NewEngine(
				grace.WithCollective(hub.Worker(rank)),
				grace.WithTuner(tunerTestPolicy(t, workers, every)),
				grace.WithEngineMemory(mem),
			)
			if err != nil {
				t.Fatal(err)
			}
			engs[rank] = phase{eng: eng, mem: mem}
		}
		return engs
	}

	ref := run(build(comm.NewHub(workers)), 0, steps)

	first := build(comm.NewHub(workers))
	pre := run(first, 0, cut)
	resumed := build(comm.NewHub(workers))
	for rank := range resumed {
		resumed[rank].mem.LoadState(first[rank].mem.State())
		if err := resumed[rank].eng.LoadTunerState(first[rank].eng.TunerState()); err != nil {
			t.Fatalf("rank %d restore: %v", rank, err)
		}
	}
	post := run(resumed, cut, steps)

	for rank := 0; rank < workers; rank++ {
		full := append(append([]tunerStepTrace(nil), pre[rank].Steps...), post[rank].Steps...)
		if len(full) != len(ref[rank].Steps) {
			t.Fatalf("rank %d: spliced run has %d steps, reference %d", rank, len(full), len(ref[rank].Steps))
		}
		for s := range full {
			if !reflect.DeepEqual(full[s].Labels, ref[rank].Steps[s].Labels) ||
				full[s].Switches != ref[rank].Steps[s].Switches {
				t.Fatalf("rank %d step %d: resumed policy %v (%d sw) != reference %v (%d sw)",
					rank, s, full[s].Labels, full[s].Switches,
					ref[rank].Steps[s].Labels, ref[rank].Steps[s].Switches)
			}
			if !reflect.DeepEqual(full[s].Aggs, ref[rank].Steps[s].Aggs) {
				t.Fatalf("rank %d step %d: resumed aggregates diverge from reference", rank, s)
			}
		}
		if !reflect.DeepEqual(post[rank].Final, ref[rank].Final) {
			t.Fatalf("rank %d final policy state diverged after resume", rank)
		}
	}
}

// emptyTuner is a Tuner with no candidates, for validation tests.
type emptyTuner struct{}

func (emptyTuner) Candidates() []grace.TunerCandidate { return nil }
func (emptyTuner) Sig() string                        { return "empty" }
func (emptyTuner) Init([]grace.TensorInfo) error      { return nil }
func (emptyTuner) Plan([]grace.TunerAssign) int       { return 0 }
func (emptyTuner) Observe([]grace.TunerObs)           {}
func (emptyTuner) State() *grace.TunerState           { return &grace.TunerState{Sig: "empty"} }
func (emptyTuner) LoadState(*grace.TunerState) error  { return nil }

func TestTunedEngineValidation(t *testing.T) {
	coll := comm.Serial{}
	mustPolicy := func(cands []grace.TunerCandidate) *autotune.Policy {
		p, err := autotune.New(autotune.Config{Candidates: cands, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := grace.NewEngine(
		grace.WithCollective(coll),
		grace.WithTuner(tunerTestPolicy(t, 1, 2)),
		grace.WithFusion(grace.FusionConfig{TargetBytes: 1 << 20}),
	); err == nil {
		t.Fatal("autotuning with fusion enabled should be rejected")
	}
	if _, err := grace.NewEngine(grace.WithCollective(coll), grace.WithTuner(emptyTuner{})); err == nil {
		t.Fatal("tuner with no candidates should be rejected")
	}
	if _, err := grace.NewEngine(
		grace.WithCollective(coll),
		grace.WithTuner(mustPolicy([]grace.TunerCandidate{
			{Label: "qsgd", Method: "qsgd", Opts: grace.Options{Levels: 8, Seed: 1}},
		})),
	); err == nil {
		t.Fatal("codec-stateful candidate (qsgd) should be rejected")
	}
	if _, err := grace.NewEngine(
		grace.WithCollective(coll),
		grace.WithTuner(mustPolicy([]grace.TunerCandidate{
			{Label: "powersgd", Method: "powersgd", Opts: grace.Options{Rank: 2}},
		})),
	); err == nil {
		t.Fatal("Custom-strategy candidate (powersgd) should be rejected")
	}
}

// TestTunedEngineStatePresence pins the checkpoint presence contract: tuner
// state must exist exactly when the engine autotunes, and Method() reports
// the policy signature so checkpoint validation pins the whole configuration.
func TestTunedEngineStatePresence(t *testing.T) {
	coll := comm.Serial{}
	fixed, err := grace.NewEngine(grace.WithCollective(coll), grace.WithCompressor(mustComp(t, "none")))
	if err != nil {
		t.Fatal(err)
	}
	if st := fixed.TunerState(); st != nil {
		t.Fatalf("fixed-method engine reports tuner state %+v", st)
	}
	if err := fixed.LoadTunerState(&grace.TunerState{Sig: "x"}); err == nil {
		t.Fatal("fixed-method engine accepted tuner state")
	}
	if err := fixed.LoadTunerState(nil); err != nil {
		t.Fatalf("fixed-method engine rejected absent tuner state: %v", err)
	}

	pol := tunerTestPolicy(t, 1, 2)
	tuned, err := grace.NewEngine(grace.WithCollective(coll), grace.WithTuner(pol))
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Method() != pol.Sig() {
		t.Fatalf("tuned engine Method() = %q, want policy sig %q", tuned.Method(), pol.Sig())
	}
	if err := tuned.LoadTunerState(nil); err == nil {
		t.Fatal("tuned engine accepted a checkpoint without policy state")
	}
	st := tuned.TunerState()
	if st == nil || st.Sig != pol.Sig() {
		t.Fatalf("tuned engine state %+v does not carry the policy sig", st)
	}
}
