package grace

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/comm"
	"repro/internal/optim"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// RejoinConfig wires live single-rank rejoin into a training run: when a peer
// dies mid-run, survivors reform the collective group at the next generation
// and every rank rolls back to the newest checkpoint step they all hold, so
// the respawned rank can slot back in without restarting the healthy ranks.
//
// The snapshot persistence callbacks are injected (rather than importing
// internal/ckpt) so the checkpoint encoding stays a caller choice and the
// grace package keeps no disk dependency; cmd/graceworker and the harness
// wire them to a ckpt.Dir.
type RejoinConfig struct {
	// ListSteps reports the steps of every locally loadable checkpoint (any
	// order; empty means this rank has no local state — it will adopt a
	// donor's snapshot). Required.
	ListSteps func() ([]int64, error)
	// LoadLocal loads this rank's own snapshot at the given step. Required.
	LoadLocal func(step int64) (*Snapshot, error)
	// Encode/Decode serialize a snapshot for the donor state transfer. Only
	// exercised when some rank reports no local checkpoints; required then.
	Encode func(*Snapshot) ([]byte, error)
	Decode func([]byte) (*Snapshot, error)
	// SyncOnStart makes the worker run one heal sync round before its first
	// step instead of the Checkpoint.Resume path: the respawned rank joins
	// the survivors' recovery barrier, agrees on the common rollback step,
	// and loads (or adopts) its state there. The healthy ranks reach the same
	// round through their heal loop, so the collective op sequences align.
	SyncOnStart bool
	// MaxHeals bounds how many peer-death heals one worker attempts before
	// giving up and surfacing the error (default 3).
	MaxHeals int
	// OnHeal, when set, is called after each completed heal with the new
	// group generation and the step the group rolled back to.
	OnHeal func(gen uint64, step int64)
}

func (rj *RejoinConfig) maxHeals() int {
	if rj.MaxHeals > 0 {
		return rj.MaxHeals
	}
	return 3
}

func (rj *RejoinConfig) validate() error {
	if rj.ListSteps == nil || rj.LoadLocal == nil {
		return fmt.Errorf("grace: RejoinConfig needs ListSteps and LoadLocal")
	}
	return nil
}

// encodeStepList renders a checkpoint-step set as comma-joined decimal text —
// the heal sync round's allgather payload. Empty set encodes as "".
func encodeStepList(steps []int64) []byte {
	if len(steps) == 0 {
		return nil
	}
	var b strings.Builder
	for i, s := range steps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatInt(s, 10))
	}
	return []byte(b.String())
}

// decodeStepList parses a peer's step list. Peers run the same code, but the
// bytes crossed a network: malformed input is an error, never a panic.
func decodeStepList(b []byte) ([]int64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	parts := strings.Split(string(b), ",")
	steps := make([]int64, 0, len(parts))
	for _, p := range parts {
		s, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad step %q: %w", p, err)
		}
		if s < 0 {
			return nil, fmt.Errorf("negative step %d", s)
		}
		steps = append(steps, s)
	}
	return steps, nil
}

// commonStep picks the rollback point: the newest step present in every
// checkpointed (non-stateless) rank's list, and the donor — the lowest rank
// that holds checkpoints at all. Returns step -1 when the checkpointed ranks
// share no step, donor -1 when no rank holds any checkpoint.
func commonStep(lists [][]int64) (step int64, donor int) {
	step, donor = -1, -1
	var inAll map[int64]int
	holders := 0
	for rank, l := range lists {
		if len(l) == 0 {
			continue
		}
		holders++
		if donor < 0 {
			donor = rank
		}
		seen := make(map[int64]bool, len(l))
		for _, s := range l {
			if seen[s] {
				continue // duplicates must not double-count
			}
			seen[s] = true
			if inAll == nil {
				inAll = make(map[int64]int)
			}
			inAll[s]++
		}
	}
	for s, n := range inAll {
		if n == holders && s > step {
			step = s
		}
	}
	return step, donor
}

// healSync is the recovery sync round every rank runs after a group reform
// (and, for a respawned rank with SyncOnStart, before its first step). The
// protocol is a fixed collective sequence, identical on every rank:
//
//  1. Allgather each rank's local checkpoint-step list (comma-joined text).
//  2. Deterministically agree on S — the newest step every checkpointed rank
//     holds — and on whether any rank is stateless (no local checkpoints).
//  3. Each checkpointed rank loads its OWN snapshot at S and applies it;
//     per-rank state (error-feedback residuals, rank-seeded codec RNG) lives
//     only in that rank's checkpoints, which is why rollback-to-own-snapshot
//     is the bitwise-exact path.
//  4. If any rank is stateless, the donor (lowest checkpointed rank)
//     broadcasts its encoded snapshot; stateless ranks adopt it with the rank
//     identity overridden (see adoptSnapshot for the exactness caveat).
//
// It returns the loop position to resume from. Collective errors keep their
// sentinel chains intact for errors.Is, so callers can distinguish another
// peer death mid-heal from local checkpoint problems.
func healSync(cfg *Config, rank int, coll comm.Collective, model Model, opt optim.Optimizer,
	mem *Memory, eng *Engine, syncPoint []*tensor.Dense) (trainerPos, error) {
	var pos trainerPos
	rj := cfg.Rejoin
	mine, err := rj.ListSteps()
	if err != nil {
		return pos, fmt.Errorf("grace: rejoin: list local checkpoints: %w", err)
	}
	// Collective results are indexed by CURRENT rank — under elastic
	// membership that can differ from this worker's original identity (the
	// rank parameter), which checkpoint ownership is keyed by.
	cur := coll.Rank()
	lists, err := coll.AllgatherBytes(encodeStepList(mine))
	if err != nil {
		return pos, fmt.Errorf("grace: rejoin step negotiation: %w", err)
	}
	peer := make([][]int64, len(lists))
	anyStateless := false
	for r, b := range lists {
		l, perr := decodeStepList(b)
		if perr != nil {
			return pos, fmt.Errorf("grace: rejoin: rank %d sent a malformed step list: %w", r, perr)
		}
		peer[r] = l
		anyStateless = anyStateless || len(l) == 0
	}
	step, donor := commonStep(peer)
	if donor < 0 {
		return pos, fmt.Errorf("grace: rejoin: no rank holds a checkpoint; nothing to recover to")
	}
	if step < 0 {
		return pos, fmt.Errorf("grace: rejoin: checkpointed ranks share no common step")
	}

	// Quiesce the engine while snapshot state is swapped underneath it.
	if err := eng.Pause(); err != nil {
		return pos, err
	}
	defer eng.Resume()

	var snap *Snapshot
	if len(peer[cur]) > 0 {
		snap, err = rj.LoadLocal(step)
		if err != nil {
			return pos, fmt.Errorf("grace: rejoin: load own checkpoint at step %d: %w", step, err)
		}
		pos, err = applySnapshot(cfg, rank, snap, model, opt, mem, eng, syncPoint)
		if err != nil {
			return pos, fmt.Errorf("grace: rejoin: apply own checkpoint at step %d: %w", step, err)
		}
	}

	if anyStateless {
		if rj.Encode == nil || rj.Decode == nil {
			return pos, fmt.Errorf("grace: rejoin: a rank lost its checkpoints but RejoinConfig has no Encode/Decode for the donor transfer")
		}
		var blob []byte
		if cur == donor {
			if blob, err = rj.Encode(snap); err != nil {
				return pos, fmt.Errorf("grace: rejoin: encode donor snapshot: %w", err)
			}
		}
		out, err := coll.BroadcastBytes(blob, donor)
		if err != nil {
			return pos, fmt.Errorf("grace: rejoin state transfer: %w", err)
		}
		if len(peer[cur]) == 0 {
			s, derr := rj.Decode(out)
			if derr != nil {
				return pos, fmt.Errorf("grace: rejoin: decode donated snapshot: %w", derr)
			}
			pos, err = adoptSnapshot(cfg, rank, s, model, opt, mem, eng, syncPoint)
			if err != nil {
				return pos, fmt.Errorf("grace: rejoin: adopt donated snapshot: %w", err)
			}
			telemetry.Default.Add(telemetry.CtrRejoinTransferBytes, int64(len(out)))
		}
	}

	telemetry.Default.Add(telemetry.CtrCheckpointRestores, 1)
	telemetry.Default.Mark(fmt.Sprintf("heal:step%d", pos.step), rank)
	return pos, nil
}

// startupSync is the SyncOnStart entry: a respawned rank joins the group's
// heal round before its first step. On a substrate still poisoned by the
// death this rank is replacing (the in-process hub), the first sync attempt
// fails with the abort verdict while the survivors wait at the reform
// rendezvous; this rank's Reform is then the final arrival that heals the
// group, after which the sync round runs cleanly. A TCP replacement has
// already joined the new generation in DialRing, so its first attempt
// succeeds outright.
func startupSync(cfg *Config, rank int, coll comm.Collective, model Model, opt optim.Optimizer,
	mem *Memory, eng *Engine, syncPoint []*tensor.Dense) (trainerPos, uint64, error) {
	pos, err := healSync(cfg, rank, coll, model, opt, mem, eng, syncPoint)
	if err == nil {
		return pos, 0, nil
	}
	if !errors.Is(err, comm.ErrAborted) && !errors.Is(err, comm.ErrPeerDead) {
		return pos, 0, err
	}
	rf, ok := comm.AsReformer(coll)
	if !ok {
		return pos, 0, fmt.Errorf("grace: rejoin: group is poisoned and the collective cannot reform: %w", err)
	}
	gen, rerr := rf.Reform()
	if rerr != nil {
		return pos, 0, fmt.Errorf("grace: rejoin: reform on start: %w", rerr)
	}
	pos, err = healSync(cfg, rank, coll, model, opt, mem, eng, syncPoint)
	return pos, gen, err
}
