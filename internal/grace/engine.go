package grace

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/telemetry"
	"repro/internal/telemetry/xrank"
)

// Engine is the per-worker, step-scoped exchange orchestrator: it accepts
// the full set of named layer gradients of one training step and runs the
// per-tensor exchange of Algorithm 1 over all of them with codec compute
// overlapping wire time — while tensor i sits in its collective, tensors
// i+1, i+2, ... are already being compressed.
//
// Architecture: codec work (compensate, compress, local decompress, decode,
// aggregate) runs on a bounded pool of "lanes" (GOMAXPROCS-aware,
// EngineConfig.Parallelism). Tensor i is pinned to lane i mod P for the
// engine's lifetime, so per-tensor compressor state (momentum, low-rank warm
// starts, error residuals) always lives in one instance even though lanes
// run concurrently. All collective calls are funneled through the Step
// caller's goroutine in ascending tensor order, honoring comm.Collective's
// lockstep contract: every worker issues the identical operation sequence,
// and no Collective handle is ever used concurrently.
//
// Buffers persist across steps (outputs, compensated gradients, gather-size
// slices) or come from a sync.Pool (allreduce working copies, decode
// scratch), so a steady-state Step performs near-zero framework allocation.
//
// An Engine belongs to one worker; Step must not be called concurrently.
// The returned gradients and report are valid until the next Step call.
type Engine struct {
	coll     comm.Collective
	mem      *Memory
	lanes    []*engineLane
	n        float32 // worker count
	rank     int
	fallback bool // DecodeFallback: recover decode failures via raw resend
	fusion   FusionConfig

	// drv is the comm driver's telemetry scope; drvNs is its per-phase
	// accumulator (driver goroutine only, merged into rep.PhaseNs at step
	// end together with the lanes' accumulators).
	drv   telScope
	drvNs [telemetry.NumPhases]int64

	// ready carries tensor indices from lanes to the comm driver as their
	// payloads become available; buffered to len(infos) so lanes never block.
	ready chan int

	// nameIdx maps tensor name → index for the current tensor set; the
	// lane-ownership filter for CodecState (lane = index mod lane count).
	nameIdx map[string]int

	// Step-scoped state, reused across steps while tensor shapes are stable.
	sizes   []int
	out     [][]float32 // aggregated gradient per tensor
	comp    [][]float32 // compensated gradient per tensor (mem != nil)
	compVec [][]float32 // what went into the codec (comp[i] or the raw grad)
	pays    []*Payload
	gathers [][][]byte // allgather results awaiting decode
	summed  [][]float32
	gsz     [][]int // persistent GatherSizes backing store
	have    []bool  // driver-side arrival tracking
	failed  []bool  // recoverable per-tensor decode failures (DecodeFallback)
	rep     StepReport

	// Cross-rank observability + per-tensor quality accounting. stepNum
	// counts completed Steps (lockstep, so identical across ranks — the
	// correlation key for xrank step events). fellback marks this step's
	// union-recovered tensors; because it derives from recoverStep's union
	// bitmask it is rank-identical and safe as a tuner observation. The q*
	// slices accumulate per-tensor quality totals (local decode faults,
	// union fallbacks, sent payload bytes, exchanged steps) for the lifetime
	// of the current tensor set; QualityReport renders them.
	stepNum    int64
	fellback   []bool
	qFaults    []int64
	qFallbacks []int64
	qSentBytes []int64
	qSteps     []int64
	qEFDrops   []int64 // EF residual sets lost to elastic shrinks (Rebind)

	// Fusion state. buckets is the step's bucket plan (contiguous tensor
	// ranges, identical on every rank); bucketOf inverts it. For multi-tensor
	// allreduce buckets the summed result is one pooled fused buffer shared
	// by the bucket's tensors as subslices: fusedBuf holds it, fusedRef
	// counts outstanding decodes (atomic — lanes decode concurrently), and
	// sharedSummed[i] tells the decoding lane that tensor i's summed slice is
	// a shared segment, returned to the pool only by the last decoder. gsplit
	// is the per-tensor per-rank view of split fused allgather frames.
	buckets      []Bucket
	bucketOf     []int
	fusedBuf     [][]float32
	fusedRef     []int32
	sharedSummed []bool
	gsplit       [][][]byte

	// Autotuning state (nil/empty when the engine runs a fixed method).
	// assign is the tuner's per-tensor plan for the current step; obs is the
	// per-tensor observation buffer fed back after it; occup counts tensors
	// per candidate (plus one trailing flush slot) for the occupancy
	// telemetry, reused every step.
	tuner  Tuner
	cands  []TunerCandidate
	assign []TunerAssign
	obs    []TunerObs
	occup  []int64

	errMu    sync.Mutex
	firstErr error

	// inStep/paused implement the heal-path quiesce guard: Step owns inStep
	// for its duration, Pause refuses while a step is in flight, and a paused
	// engine rejects Step. Step joins every codec lane before returning (even
	// on error), so a successful Pause guarantees no engine goroutine is
	// touching codec or memory state while a snapshot is being applied.
	inStep atomic.Bool
	paused atomic.Bool
}

// engineLane is one codec worker: a compressor instance plus its probed
// capabilities and a decode-task queue fed by the comm driver. In autotuning
// mode comp/caps are unset and comps/capsL hold one instance per Tuner
// candidate instead; tensors stay pinned to lanes either way.
type engineLane struct {
	comp    Compressor
	caps    Caps
	comps   []Compressor
	capsL   []Caps
	dec     chan int // tensor indices to decode; -1 ends the step
	scratch []float32

	// ts is this lane's telemetry scope; phaseNs is its private per-phase
	// accumulator, merged by the driver after the lanes join.
	ts      telScope
	phaseNs [telemetry.NumPhases]int64
}

// EngineConfig configures a per-worker Engine.
type EngineConfig struct {
	// Coll is this worker's collective handle. The Engine serializes every
	// collective call on the Step caller's goroutine.
	Coll comm.Collective
	// New constructs one compressor instance per codec lane. Instances must
	// be configured identically (same method, same options); per-tensor
	// state stays consistent because tensors are pinned to lanes. Required
	// unless Comp is set.
	New func() (Compressor, error)
	// Comp is a pre-built compressor used as the single lane when New is
	// nil; the engine still overlaps its codec work with communication.
	Comp Compressor
	// Mem is the optional framework error-feedback memory (Eq. 4).
	Mem *Memory
	// Parallelism bounds the codec lane count; 0 selects GOMAXPROCS. It is
	// ignored (forced to 1) when New is nil.
	Parallelism int
	// DecodeFallback enables graceful degradation for decode failures: when a
	// payload fails to decompress or aggregate (e.g. corrupted on the wire),
	// the step is not poisoned. Instead, after the normal exchange, workers
	// allgather a small per-tensor failure bitmask, take its union, and
	// re-exchange every affected tensor uncompressed — the NoneCompressor
	// path: one AllreduceF32 of the compensated gradient, averaged — so a
	// corrupt payload costs one step of compression savings instead of the
	// run. The flag must be set identically on every worker (it changes the
	// collective sequence); transport and compress errors remain fatal.
	DecodeFallback bool
	// Fusion sets the tensor-fusion batching policy (see FusionConfig). The
	// zero value disables fusion, reproducing the per-tensor collective
	// schedule exactly. Like DecodeFallback, it must be set identically on
	// every worker — the bucket plan is part of the collective sequence.
	Fusion FusionConfig
	// Tuner, when set, puts the engine in autotuning mode: every lane holds
	// one compressor instance per Tuner candidate, each tensor's method is
	// chosen per step by the policy, and the engine feeds rank-identical
	// exchange observations back after every step (see Tuner). New/Comp are
	// then ignored. Mutually exclusive with Fusion (a mixed-method step has
	// no single-strategy buckets to fuse); candidates must be codec-stateless
	// and must not use the Custom strategy. Every worker must run an
	// identically configured Tuner — the policy trajectory is part of the
	// collective sequence.
	Tuner Tuner
}

// StrategyStats is the per-strategy slice of a step's exchange volume.
type StrategyStats struct {
	// Tensors is how many tensors used the strategy this step.
	Tensors int
	// SentBytes is the wire volume those tensors cost this worker.
	SentBytes int
	// RecvBytes is the peer payload volume those tensors delivered to this
	// worker (see StepStats.RecvBytes for per-strategy semantics).
	RecvBytes int
}

// StepReport aggregates one Engine.Step: per-tensor stats (same semantics as
// Pipeline.Exchange's StepStats, consumed by simnet cost models) plus merged
// totals. The report is owned by the Engine and valid until the next Step.
type StepReport struct {
	// Tensors holds one StepStats per input tensor, in input order.
	Tensors []StepStats
	// SentBytes is this worker's total wire volume for the step.
	SentBytes int
	// RecvBytes is this worker's total received peer payload volume for the
	// step (the mirror of SentBytes; see StepStats.RecvBytes).
	RecvBytes int
	// CodecTime sums measured compress/decompress/memory time across all
	// tensors (lane time, not wall time — lanes run concurrently).
	CodecTime time.Duration
	// WallTime is the measured wall-clock duration of the whole Step,
	// including time blocked in collectives; WallTime < CodecTime +
	// collective wait indicates overlap is working.
	WallTime time.Duration
	// ByStrategy breaks the step down per communication strategy, indexed
	// by Strategy (Allgather, Allreduce, Custom).
	ByStrategy [3]StrategyStats
	// Faults counts tensors whose payloads failed to decode on this worker
	// this step (only populated under EngineConfig.DecodeFallback; without
	// it the first such failure is fatal).
	Faults int
	// Fallbacks counts tensors re-exchanged uncompressed by the recovery
	// round — the union of all workers' faults, so it is identical on every
	// rank and ≥ this worker's own Faults.
	Fallbacks int
	// Rounds counts the exchange collective rounds this step issued: one per
	// bucket (recovery-round collectives are excluded). Without fusion this
	// equals Tensors' length; with fusion it is the figure the paper's
	// per-tensor-overhead critique cares about.
	Rounds int
	// FusedBuckets / FusedTensors count the multi-tensor buckets issued and
	// the tensors they carried; FusedBytes is the payload volume packed into
	// them (fill-ratio numerator).
	FusedBuckets int
	FusedTensors int
	FusedBytes   int
	// FusionOverheadBytes is the framing overhead fused allgather rounds
	// added to this worker's sent volume (already folded into SentBytes).
	FusionOverheadBytes int
	// Buckets is the step's bucket plan as [Lo,Hi) tensor index ranges —
	// identical on every rank — so cost models can charge wire time per
	// collective round instead of per tensor. Owned by the Engine; valid
	// until the next Step.
	Buckets []Bucket
	// PhaseNs breaks the step's codec and communication time down per
	// telemetry.Phase (index = int(phase), nanoseconds summed across the
	// driver and all lanes). Populated only while telemetry span recording
	// is enabled (telemetry.Default.Enable); all zeros otherwise, so the
	// disabled fast path stays free of extra clock reads.
	PhaseNs [telemetry.NumPhases]int64
	// Switches counts tensors whose compression method changed at this
	// step's start (autotuning mode; identical on every rank).
	Switches int
	// Flushes counts tensors that ran the EF flush handoff this step.
	Flushes int
	// PolicyByTensor labels each tensor's active candidate this step
	// (autotuning mode; nil otherwise). Owned by the Engine; valid until the
	// next Step.
	PolicyByTensor []string
}

// NewEngine builds an Engine from functional options (see EngineOption; an
// EngineConfig literal is itself an option, so both construction styles
// work). All lane compressors must agree on method name and strategy;
// Custom-strategy methods must implement CustomComm.
func NewEngine(opts ...EngineOption) (*Engine, error) {
	cfg := BuildEngineConfig(opts...)
	if cfg.Coll == nil {
		return nil, fmt.Errorf("grace: engine needs a collective")
	}
	if cfg.Tuner != nil {
		return newTunedEngine(cfg)
	}
	var comps []Compressor
	switch {
	case cfg.New != nil:
		p := cfg.Parallelism
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		for i := 0; i < p; i++ {
			c, err := cfg.New()
			if err != nil {
				return nil, fmt.Errorf("grace: engine lane %d: %w", i, err)
			}
			comps = append(comps, c)
		}
	case cfg.Comp != nil:
		comps = []Compressor{cfg.Comp}
	default:
		return nil, fmt.Errorf("grace: engine needs a compressor (Comp) or factory (New)")
	}
	if err := cfg.Fusion.validate(); err != nil {
		return nil, err
	}
	first := comps[0]
	e := &Engine{coll: cfg.Coll, mem: cfg.Mem, n: float32(cfg.Coll.Size()),
		rank: cfg.Coll.Rank(), fallback: cfg.DecodeFallback, fusion: cfg.Fusion}
	e.drv = telScope{rank: e.rank, tid: telemetry.TIDDriver, acc: &e.drvNs}
	for i, c := range comps {
		if c.Name() != first.Name() || c.Strategy() != first.Strategy() {
			return nil, fmt.Errorf("grace: engine lanes disagree: lane 0 is %s/%v, lane %d is %s/%v",
				first.Name(), first.Strategy(), i, c.Name(), c.Strategy())
		}
		caps := Capabilities(c)
		if caps.Strategy == Custom && caps.Custom == nil {
			return nil, fmt.Errorf("grace: %s declares Custom strategy but lacks CustomComm", c.Name())
		}
		ln := &engineLane{comp: c, caps: caps}
		ln.ts = telScope{rank: e.rank, tid: 1 + i, acc: &ln.phaseNs}
		e.lanes = append(e.lanes, ln)
	}
	return e, nil
}

// newTunedEngine builds an Engine in autotuning mode: every lane holds one
// instance of every Tuner candidate, so a tensor can run any candidate while
// staying pinned to its lane. Fusion is rejected (a mixed-method step has no
// single-strategy buckets), as are stateful and Custom-strategy candidates —
// the former would need per-candidate codec-state checkpointing, the latter
// own their collective sequence and cannot be hot-swapped safely.
func newTunedEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Fusion.Enabled() {
		return nil, fmt.Errorf("grace: autotuning and tensor fusion are mutually exclusive")
	}
	cands := cfg.Tuner.Candidates()
	if len(cands) == 0 {
		return nil, fmt.Errorf("grace: autotune policy has no candidates")
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	e := &Engine{coll: cfg.Coll, mem: cfg.Mem, n: float32(cfg.Coll.Size()),
		rank: cfg.Coll.Rank(), fallback: cfg.DecodeFallback,
		tuner: cfg.Tuner, cands: cands}
	e.drv = telScope{rank: e.rank, tid: telemetry.TIDDriver, acc: &e.drvNs}
	e.occup = make([]int64, len(cands)+1)
	for l := 0; l < p; l++ {
		ln := &engineLane{}
		for ci, cand := range cands {
			c, err := New(cand.Method, cand.Opts)
			if err != nil {
				return nil, fmt.Errorf("grace: autotune candidate %d (%s): %w", ci, cand.Label, err)
			}
			if _, stateful := c.(Stateful); stateful {
				return nil, fmt.Errorf("grace: autotune candidate %q: method %s carries codec state; "+
					"only codec-stateless methods can be autotuned", cand.Label, cand.Method)
			}
			caps := Capabilities(c)
			if caps.Strategy == Custom {
				return nil, fmt.Errorf("grace: autotune candidate %q: Custom-strategy methods cannot be autotuned", cand.Label)
			}
			ln.comps = append(ln.comps, c)
			ln.capsL = append(ln.capsL, caps)
		}
		ln.ts = telScope{rank: e.rank, tid: 1 + l, acc: &ln.phaseNs}
		e.lanes = append(e.lanes, ln)
	}
	return e, nil
}

// compCaps resolves tensor i's compressor instance and capabilities on lane
// ln: the lane's single instance in fixed-method mode, the instance of the
// tensor's assigned candidate in autotuning mode.
func (e *Engine) compCaps(ln *engineLane, i int) (Compressor, Caps) {
	if e.tuner == nil {
		return ln.comp, ln.caps
	}
	c := e.assign[i].Cand
	return ln.comps[c], ln.capsL[c]
}

// isFlush reports whether tensor i runs the EF flush handoff this step: the
// compensated gradient travels exactly once uncompressed (dense allreduce)
// and the residual becomes exactly zero. Without error-feedback memory there
// is no residual to hand off, so the flag is ignored.
func (e *Engine) isFlush(i int) bool {
	return e.tuner != nil && e.mem != nil && e.assign[i].Flush
}

// Lanes reports the codec lane count.
func (e *Engine) Lanes() int { return len(e.lanes) }

// Fusion reports the engine's tensor-fusion policy.
func (e *Engine) Fusion() FusionConfig { return e.fusion }

// Pause quiesces the engine at a step boundary for state surgery (the
// self-healing trainer applies a checkpoint snapshot between steps). It fails
// if a Step is in flight — the trainer drives Step and Pause from the same
// goroutine, so that indicates a concurrency bug, not a race to win. While
// paused, Step refuses to run. Because Step joins all codec lanes before
// returning (even on the error paths), a paused engine has no concurrent
// owner of codec, memory, or tuner state.
func (e *Engine) Pause() error {
	if e.inStep.Load() {
		return fmt.Errorf("grace: engine Pause with a Step in flight")
	}
	e.paused.Store(true)
	return nil
}

// Resume lifts a Pause; the next Step runs normally. Resuming a never-paused
// engine is a no-op.
func (e *Engine) Resume() { e.paused.Store(false) }

// Rebind re-derives the engine's group-shaped state from the collective after
// an elastic membership change: the averaging denominator, this worker's rank,
// and the per-tensor gather fan-in all take the collective's current Size()
// and Rank(). lost is how many ranks the change evicted (0 for a grow); when
// the engine runs with error-feedback memory, each evicted rank's residual set
// is declared lost — recorded per tensor in the quality accumulators and in
// the elastic_ef_drops_total counter, never silently dropped. A tuning engine
// forwards the new size to its policy, which must implement WorldSizeSetter.
//
// The engine must be paused (the heal path's quiesce guard): Rebind swaps
// state the codec lanes index by group size.
func (e *Engine) Rebind(lost int) error {
	if !e.paused.Load() {
		return fmt.Errorf("grace: Rebind needs a paused engine")
	}
	n := e.coll.Size()
	if n < 1 {
		return fmt.Errorf("grace: Rebind with collective size %d", n)
	}
	e.n = float32(n)
	e.rank = e.coll.Rank()
	e.drv.rank = e.rank
	for l, ln := range e.lanes {
		ln.ts.rank = e.rank
		_ = l
	}
	for i := range e.gsz {
		if len(e.gsz[i]) != n {
			e.gsz[i] = make([]int, n)
		}
		if e.gsplit[i] != nil && len(e.gsplit[i]) != n {
			e.gsplit[i] = make([][]byte, n)
		}
	}
	if e.mem != nil && lost > 0 {
		for i := range e.qEFDrops {
			e.qEFDrops[i] += int64(lost)
		}
		telemetry.Default.Add(telemetry.CtrElasticEFDrops, int64(lost)*int64(len(e.qEFDrops)))
	}
	if e.tuner != nil {
		ws, ok := e.tuner.(WorldSizeSetter)
		if !ok {
			return fmt.Errorf("grace: elastic resize needs a tuner implementing WorldSizeSetter; %T does not", e.tuner)
		}
		ws.SetWorldSize(n)
	}
	return nil
}

// Step exchanges one training step's gradients: grads[i] is the gradient of
// the tensor described by infos[i]. It returns the aggregated gradients in
// input order plus the merged step report; both are valid until the next
// Step. The tensor list should be stable across steps (same names, same
// order) — that is what keeps per-tensor codec state and buffer reuse
// coherent, and what guarantees every worker issues the same collective
// sequence.
//
// Failures surface as a structured *StepError pinning the tensor and phase,
// with the underlying cause (including any typed *comm.Error) reachable via
// errors.Is/As. On error the collective group must be considered poisoned,
// exactly as with Pipeline.Exchange: peers blocked in a collective this
// worker never entered will not recover (substrates with group abort — the
// in-process Hub — fail those peers with comm.ErrAborted instead of hanging).
// With EngineConfig.DecodeFallback, decode failures are downgraded from fatal
// to a per-tensor recovery: see the config field for the protocol.
func (e *Engine) Step(grads [][]float32, infos []TensorInfo) ([][]float32, *StepReport, error) {
	start := time.Now()
	xt0 := xrank.Default.Start()
	if e.paused.Load() {
		return nil, nil, fmt.Errorf("grace: engine is paused (heal in progress)")
	}
	e.inStep.Store(true)
	defer e.inStep.Store(false)
	if len(grads) != len(infos) {
		return nil, nil, fmt.Errorf("grace: engine got %d gradients for %d tensor infos", len(grads), len(infos))
	}
	m := len(infos)
	for i := range grads {
		if len(grads[i]) != infos[i].Size() {
			return nil, nil, fmt.Errorf("grace: engine tensor %d (%s): gradient has %d elements, info says %d",
				i, infos[i].Name, len(grads[i]), infos[i].Size())
		}
	}
	if err := e.ensure(infos); err != nil {
		return nil, nil, err
	}
	if m == 0 {
		e.rep.WallTime = time.Since(start)
		return e.out, &e.rep, nil
	}
	if e.tuner != nil {
		e.planStep()
	}

	p := len(e.lanes)
	var wg sync.WaitGroup
	for l := 0; l < p; l++ {
		wg.Add(1)
		go func(l int) {
			defer wg.Done()
			ln := e.lanes[l]
			// Compress phase: this lane's tensors in ascending order, so the
			// comm driver (which consumes in global ascending order) is fed
			// as early as possible.
			for i := l; i < m; i += p {
				e.compressOne(ln, i, grads[i], infos[i])
			}
			// Decode phase: aggregate results the driver hands back as each
			// tensor's collective completes, overlapping with collectives
			// still in flight.
			for i := range ln.dec {
				if i < 0 {
					return
				}
				e.decodeOne(ln, i, infos[i])
			}
		}(l)
	}

	// Comm driver: issue each bucket's collective in ascending order as soon
	// as every payload in it is ready (unfused runs have one tensor per
	// bucket, so this degenerates to the per-tensor schedule). This is the
	// only goroutine touching e.coll.
	next, nb := 0, 0
driver:
	for nb < len(e.buckets) {
		i := <-e.ready
		e.have[i] = true
		for next < m && e.have[next] {
			next++
		}
		for nb < len(e.buckets) && e.buckets[nb].Hi <= next {
			if e.err() != nil {
				break driver
			}
			if err := e.issueBucket(nb, infos); err != nil {
				e.setErr(err)
				break driver
			}
			nb++
		}
	}

	for _, ln := range e.lanes {
		ln.dec <- -1
	}
	wg.Wait()
	// On abort some ready signals may be unconsumed; drain so the next step
	// starts clean.
	for len(e.ready) > 0 {
		<-e.ready
	}
	if err := e.err(); err != nil {
		return nil, nil, e.noteStepError(err)
	}
	if e.fallback {
		if err := e.recoverStep(infos); err != nil {
			return nil, nil, e.noteStepError(err)
		}
	}

	e.stepNum++
	for i := range e.rep.Tensors {
		st := &e.rep.Tensors[i]
		e.qSentBytes[i] += int64(st.SentBytes)
		e.qSteps[i]++
		e.rep.SentBytes += st.SentBytes
		e.rep.RecvBytes += st.RecvBytes
		e.rep.CodecTime += st.CodecTime
		bs := &e.rep.ByStrategy[st.Strategy]
		bs.Tensors++
		bs.SentBytes += st.SentBytes
		bs.RecvBytes += st.RecvBytes
	}
	if e.fallback {
		// The recovery round's failure bitmask is wire volume too.
		e.rep.SentBytes += (m + 7) / 8
	}
	// Fused-allgather framing overhead is wire volume the per-tensor stats
	// don't see (sent side; the receive side is accounted as it arrives).
	e.rep.SentBytes += e.rep.FusionOverheadBytes
	e.rep.WallTime = time.Since(start)

	// Merge the per-phase accumulators (driver + lanes, each written only by
	// its own goroutine) and feed the always-on registry counters.
	for p := 0; p < telemetry.NumPhases; p++ {
		e.rep.PhaseNs[p] = e.drvNs[p]
		for _, ln := range e.lanes {
			e.rep.PhaseNs[p] += ln.phaseNs[p]
		}
	}
	tel := telemetry.Default
	tel.Add(telemetry.CtrSteps, 1)
	tel.Add(telemetry.CtrStepBytesSent, int64(e.rep.SentBytes))
	tel.Add(telemetry.CtrStepBytesRecv, int64(e.rep.RecvBytes))
	tel.Add(telemetry.CtrDecodeFaults, int64(e.rep.Faults))
	tel.Add(telemetry.CtrDecodeFallbacks, int64(e.rep.Fallbacks))
	if e.rep.FusedBuckets > 0 {
		tel.Add(telemetry.CtrFusionBuckets, int64(e.rep.FusedBuckets))
		tel.Add(telemetry.CtrFusionTensorsFused, int64(e.rep.FusedTensors))
		tel.Add(telemetry.CtrFusionRoundsSaved, int64(m-e.rep.Rounds))
		tel.Add(telemetry.CtrFusionBucketBytes, int64(e.rep.FusedBytes))
	}
	for s, bs := range e.rep.ByStrategy {
		if bs.Tensors > 0 {
			tel.AddStrategyBytes(s, int64(bs.SentBytes), int64(bs.RecvBytes))
		}
	}
	if e.tuner != nil {
		e.observeStep()
	}
	xrank.Default.RecordStep(e.rank, e.stepNum, int64(e.rep.SentBytes), xt0)
	return e.out, &e.rep, nil
}

// noteStepError records a step-level fault event and arms a flight-recorder
// dump before the error escapes Step. Comm-layer failures already recorded
// their own event at the failing op's coordinates (see comm's wrapErr); this
// one marks the step boundary the failure surfaced at — carrying the failing
// op when a comm.Error is in the chain — so a merged trace shows both.
func (e *Engine) noteStepError(err error) error {
	op := int64(xrank.OpStep)
	var ce *comm.Error
	if errors.As(err, &ce) {
		op = xrank.OpCode(string(ce.Op))
	}
	xrank.Default.RecordFault(e.rank, op, e.stepNum+1, xrank.FaultStep)
	xrank.Default.Flight("step_error", err)
	return err
}

// planStep pulls the step's per-tensor assignment from the policy and
// publishes it into the report (labels, switch count) and the occupancy
// telemetry. Runs before the lanes start, on the Step caller's goroutine.
func (e *Engine) planStep() {
	e.rep.Switches = e.tuner.Plan(e.assign)
	for i := range e.occup {
		e.occup[i] = 0
	}
	flushSlot := len(e.cands)
	for i := range e.assign {
		a := e.assign[i]
		e.rep.PolicyByTensor[i] = e.cands[a.Cand].Label
		if e.isFlush(i) {
			e.rep.Flushes++
			e.occup[flushSlot]++
		} else {
			e.occup[a.Cand]++
		}
	}
	tel := telemetry.Default
	tel.Add(telemetry.CtrAutotuneSwitches, int64(e.rep.Switches))
	tel.Add(telemetry.CtrAutotuneFlushes, int64(e.rep.Flushes))
	for c, n := range e.occup[:flushSlot] {
		if n > 0 {
			tel.AddMethodSteps(e.cands[c].Label, n)
		}
	}
	if e.occup[flushSlot] > 0 {
		tel.AddMethodSteps("flush", e.occup[flushSlot])
	}
}

// observeStep feeds the completed step's rank-identical exchange volumes
// back into the policy: the dense width for allreduce tensors, the summed
// per-rank payload sizes for allgather tensors. Measured wall-clock time is
// deliberately absent — it differs across ranks and would desync the policy
// (see the determinism contract in tuner.go).
func (e *Engine) observeStep() {
	for i := range e.obs {
		st := &e.rep.Tensors[i]
		o := &e.obs[i]
		o.Cand = e.assign[i].Cand
		o.Flush = e.isFlush(i)
		o.Strategy = st.Strategy
		o.Fault = e.fellback[i]
		switch st.Strategy {
		case Allgather:
			var total int64
			for _, sz := range st.GatherSizes {
				total += int64(sz)
			}
			o.ExchBytes = total
		default:
			o.ExchBytes = int64(st.SentBytes)
		}
	}
	e.tuner.Observe(e.obs)
}

// compressOne runs the pre-communication codec work for tensor i on its
// lane: memory compensation, compression, and the local decompression the
// memory update needs. It always signals the driver, even on error.
func (e *Engine) compressOne(ln *engineLane, i int, g []float32, info TensorInfo) {
	defer func() { e.ready <- i }()
	t0 := time.Now()
	st := &e.rep.Tensors[i]
	cp, caps := e.compCaps(ln, i)
	st.Strategy = caps.Strategy

	comp := g
	if e.mem != nil {
		span := ln.ts.start()
		comp = e.comp[i]
		e.mem.compensateInto(comp, info.Name, g)
		ln.ts.end(telemetry.PhaseCompensate, info.Name, span)
	}
	e.compVec[i] = comp

	if e.isFlush(i) {
		// EF flush handoff: the compensated gradient travels uncompressed as
		// a dense allreduce (the allreduce path copies it into a pooled
		// buffer before the collective, so aliasing comp is safe) and the
		// residual becomes ψ = comp − comp = exactly zero, so the incoming
		// method starts from clean error accounting.
		st.Strategy = Allreduce
		e.pays[i] = &Payload{Dense: comp}
		st.SentBytes = len(comp) * 4
		e.mem.Update(info.Name, comp, comp)
		st.CodecTime = time.Since(t0)
		return
	}

	if caps.Strategy == Custom {
		// The compressor drives communication itself; all codec happens
		// inside CommunicateAggregate on the driver goroutine.
		st.CodecTime = time.Since(t0)
		return
	}

	span := ln.ts.start()
	pay, err := cp.Compress(comp, info)
	if err != nil {
		e.setErr(&StepError{Tensor: i, Name: info.Name, Phase: "compress",
			Err: fmt.Errorf("%s: %w", cp.Name(), err)})
		return
	}
	ln.ts.end(telemetry.PhaseCompress, info.Name, span)
	e.pays[i] = pay
	st.SentBytes = pay.WireBytes()

	if e.mem != nil {
		// Worker-local approximation for the memory update, before the
		// collective so codec time excludes wire wait. Attributed to the
		// compensate phase: the decompression here exists only to feed the
		// residual update (Eq. 4).
		span = ln.ts.start()
		if caps.Into != nil {
			scratch := ln.scratch[:info.Size()]
			if err := caps.Into.DecompressInto(pay, info, scratch); err != nil {
				e.setErr(&StepError{Tensor: i, Name: info.Name, Phase: "compress",
					Err: fmt.Errorf("%s local decompress: %w", cp.Name(), err)})
				return
			}
			e.mem.Update(info.Name, comp, scratch)
		} else {
			approx, err := cp.Decompress(pay, info)
			if err != nil {
				e.setErr(&StepError{Tensor: i, Name: info.Name, Phase: "compress",
					Err: fmt.Errorf("%s local decompress: %w", cp.Name(), err)})
				return
			}
			e.mem.Update(info.Name, comp, approx)
		}
		ln.ts.end(telemetry.PhaseCompensate, info.Name, span)
	}
	st.CodecTime = time.Since(t0)
}

// issueBucket runs bucket bi's collective round on the driver goroutine. A
// single-tensor bucket takes the legacy per-tensor path — byte-identical wire
// payloads and accounting — so disabling fusion reproduces the unfused engine
// exactly; multi-tensor buckets pack their payloads into one fused exchange.
func (e *Engine) issueBucket(bi int, infos []TensorInfo) error {
	b := e.buckets[bi]
	e.rep.Rounds++
	if b.size() == 1 {
		return e.issue(b.Lo, infos[b.Lo])
	}
	e.rep.FusedBuckets++
	e.rep.FusedTensors += b.size()
	if e.lanes[0].caps.Strategy == Allreduce {
		return e.issueFusedAllreduce(bi, b, infos)
	}
	return e.issueFusedAllgather(bi, b, infos)
}

// issueFusedAllreduce concatenates the bucket's dense payloads into one
// pooled buffer, allreduces it in a single round, and hands each tensor its
// segment as a shared subslice. Per-element summation is position-independent
// on rank-ordered substrates (the in-process hub), so each segment's sum is
// bitwise identical to the unfused per-tensor allreduce there; ring
// transports chunk by element position, so fused results remain internally
// consistent across ranks but may round differently from the unfused
// schedule (see DESIGN.md).
func (e *Engine) issueFusedAllreduce(bi int, b Bucket, infos []TensorInfo) error {
	span := e.drv.start()
	total := 0
	for i := b.Lo; i < b.Hi; i++ {
		pay := e.pays[i]
		if pay.Dense == nil {
			return fmt.Errorf("grace: %s uses Allreduce but produced no dense payload", e.lanes[0].comp.Name())
		}
		total += len(pay.Dense)
	}
	fused := getF32(total)
	off := 0
	for i := b.Lo; i < b.Hi; i++ {
		off += copy(fused[off:], e.pays[i].Dense)
	}
	e.rep.FusedBytes += total * 4
	e.drv.end(telemetry.PhaseFuse, infos[b.Lo].Name, span)

	span = e.drv.start()
	if err := e.coll.AllreduceF32(fused); err != nil {
		putF32(fused)
		return &StepError{Tensor: b.Lo, Name: infos[b.Lo].Name, Phase: "collective", Err: err}
	}
	e.drv.end(telemetry.PhaseCollective, infos[b.Lo].Name, span)

	e.fusedBuf[bi] = fused
	atomic.StoreInt32(&e.fusedRef[bi], int32(b.size()))
	off = 0
	for i := b.Lo; i < b.Hi; i++ {
		n := len(e.pays[i].Dense)
		e.summed[i] = fused[off : off+n : off+n]
		e.sharedSummed[i] = true
		e.rep.Tensors[i].RecvBytes = n * 4
		off += n
		e.lanes[i%len(e.lanes)].dec <- i
	}
	return nil
}

// issueFusedAllgather frames the bucket's byte payloads into one fused frame,
// allgathers it in a single round, and splits every rank's frame back into
// per-tensor parts (zero-copy subslices). A frame that fails to split is a
// decode fault for the whole bucket: under DecodeFallback each of its tensors
// degrades per-tensor through the recovery round, exactly as an unfused
// corrupt payload would; without it the step fails.
func (e *Engine) issueFusedAllgather(bi int, b Bucket, infos []TensorInfo) error {
	span := e.drv.start()
	parts := make([][]byte, 0, b.size())
	payloadBytes := 0
	for i := b.Lo; i < b.Hi; i++ {
		pay := e.pays[i]
		if pay.Bytes == nil && pay.Dense != nil {
			return fmt.Errorf("grace: %s uses Allgather but produced a dense payload", e.lanes[0].comp.Name())
		}
		parts = append(parts, pay.Bytes)
		payloadBytes += len(pay.Bytes)
	}
	// The frame is freshly allocated per bucket: on the in-process hub peers
	// read the deposited slice after the exchange returns, so it must not be
	// reused while a later bucket is in flight.
	frame := comm.AppendFused(nil, parts)
	e.rep.FusedBytes += payloadBytes
	e.rep.FusionOverheadBytes += comm.FusedOverhead(b.size())
	// Each peer's frame arrives with the same header overhead.
	e.rep.RecvBytes += (int(e.n) - 1) * comm.FusedOverhead(b.size())
	e.drv.end(telemetry.PhaseFuse, infos[b.Lo].Name, span)

	span = e.drv.start()
	all, err := e.coll.AllgatherBytes(frame)
	if err != nil {
		return &StepError{Tensor: b.Lo, Name: infos[b.Lo].Name, Phase: "collective", Err: err}
	}
	e.drv.end(telemetry.PhaseCollective, infos[b.Lo].Name, span)

	span = e.drv.start()
	for r, rframe := range all {
		rparts, err := comm.SplitFused(rframe, b.size())
		if err != nil {
			ferr := fmt.Errorf("fused frame from rank %d: %w", r, err)
			if !e.fallback {
				return &StepError{Tensor: b.Lo, Name: infos[b.Lo].Name, Phase: "decode", Err: ferr}
			}
			// Degrade the whole bucket per-tensor; the lanes never see these
			// indices, so the driver owns failed[Lo:Hi] exclusively here.
			for i := b.Lo; i < b.Hi; i++ {
				e.failed[i] = true
			}
			e.drv.end(telemetry.PhaseFuse, infos[b.Lo].Name, span)
			return nil
		}
		for k, p := range rparts {
			e.gsplit[b.Lo+k][r] = p
		}
	}
	e.drv.end(telemetry.PhaseFuse, infos[b.Lo].Name, span)

	for i := b.Lo; i < b.Hi; i++ {
		st := &e.rep.Tensors[i]
		for r, p := range e.gsplit[i] {
			if r != e.rank {
				st.RecvBytes += len(p)
			}
		}
		e.gathers[i] = e.gsplit[i]
		e.lanes[i%len(e.lanes)].dec <- i
	}
	return nil
}

// releaseSummed returns tensor i's allreduce result buffer to the pool. A
// tensor from a multi-tensor bucket holds a segment of the bucket's shared
// fused buffer, which only the last decoder may release; an aborted step
// leaves the refcount above zero and the buffer falls to the GC, which is
// safe.
func (e *Engine) releaseSummed(i int, summed []float32) {
	if !e.sharedSummed[i] {
		putF32(summed)
		return
	}
	bi := e.bucketOf[i]
	if atomic.AddInt32(&e.fusedRef[bi], -1) == 0 {
		putF32(e.fusedBuf[bi])
	}
}

// issue runs tensor i's collective on the driver goroutine and hands the
// result back to the owning lane for decode.
func (e *Engine) issue(i int, info TensorInfo) error {
	ln := e.lanes[i%len(e.lanes)]
	cp, caps := e.compCaps(ln, i)
	strat := caps.Strategy
	if e.isFlush(i) {
		strat = Allreduce
	}
	st := &e.rep.Tensors[i]
	switch strat {
	case Custom:
		span := e.drv.start()
		agg, sent, err := caps.Custom.CommunicateAggregate(e.compVec[i], info, e.coll)
		if err != nil {
			return &StepError{Tensor: i, Name: info.Name, Phase: "custom",
				Err: fmt.Errorf("%s: %w", cp.Name(), err)}
		}
		e.drv.end(telemetry.PhaseCollective, info.Name, span)
		st.SentBytes = sent
		// CustomComm reports only its send volume; assume a symmetric
		// exchange for the receive side rather than report zero.
		st.RecvBytes = sent
		if e.mem != nil {
			t := time.Now()
			span = e.drv.start()
			e.mem.Update(info.Name, e.compVec[i], agg)
			e.drv.end(telemetry.PhaseCompensate, info.Name, span)
			st.CodecTime += time.Since(t)
		}
		e.out[i] = agg
		return nil

	case Allreduce:
		pay := e.pays[i]
		if pay.Dense == nil {
			return fmt.Errorf("grace: %s uses Allreduce but produced no dense payload", cp.Name())
		}
		span := e.drv.start()
		summed := getF32(len(pay.Dense))
		copy(summed, pay.Dense)
		e.drv.end(telemetry.PhaseEncode, info.Name, span)
		span = e.drv.start()
		if err := e.coll.AllreduceF32(summed); err != nil {
			putF32(summed)
			return &StepError{Tensor: i, Name: info.Name, Phase: "collective", Err: err}
		}
		e.drv.end(telemetry.PhaseCollective, info.Name, span)
		st.RecvBytes = len(summed) * 4
		e.summed[i] = summed
		ln.dec <- i
		return nil

	case Allgather:
		pay := e.pays[i]
		if pay.Bytes == nil && pay.Dense != nil {
			return fmt.Errorf("grace: %s uses Allgather but produced a dense payload", cp.Name())
		}
		span := e.drv.start()
		all, err := e.coll.AllgatherBytes(pay.Bytes)
		if err != nil {
			return &StepError{Tensor: i, Name: info.Name, Phase: "collective", Err: err}
		}
		e.drv.end(telemetry.PhaseCollective, info.Name, span)
		for rank, b := range all {
			if rank != e.rank {
				st.RecvBytes += len(b)
			}
		}
		e.gathers[i] = all
		ln.dec <- i
		return nil

	default:
		return fmt.Errorf("grace: unhandled strategy %v", strat)
	}
}

// decodeOne runs the post-communication codec work for tensor i on its lane:
// decompressing the collective's result and aggregating into the output
// buffer.
func (e *Engine) decodeOne(ln *engineLane, i int, info TensorInfo) {
	if e.err() != nil {
		return
	}
	t0 := time.Now()
	st := &e.rep.Tensors[i]
	cp, caps := e.compCaps(ln, i)
	strat := caps.Strategy
	if e.isFlush(i) {
		strat = Allreduce
	}
	switch strat {
	case Allreduce:
		summed := e.summed[i]
		e.summed[i] = nil
		if e.isFlush(i) {
			// Flush payloads are the raw compensated gradients; the sum just
			// needs averaging, no codec involved.
			span := ln.ts.start()
			copy(e.out[i], summed)
			scale(e.out[i], 1/e.n)
			ln.ts.end(telemetry.PhaseAggregate, info.Name, span)
			e.releaseSummed(i, summed)
			break
		}
		span := ln.ts.start()
		if caps.Into != nil {
			if err := caps.Into.DecompressInto(&Payload{Dense: summed}, info, e.out[i]); err != nil {
				e.releaseSummed(i, summed)
				e.failTensor(i, info, fmt.Errorf("%s decompress sum: %w", cp.Name(), err))
				return
			}
			ln.ts.end(telemetry.PhaseDecode, info.Name, span)
			span = ln.ts.start()
			scale(e.out[i], 1/e.n)
			ln.ts.end(telemetry.PhaseAggregate, info.Name, span)
		} else {
			agg, err := cp.Decompress(&Payload{Dense: summed}, info)
			if err != nil {
				e.releaseSummed(i, summed)
				e.failTensor(i, info, fmt.Errorf("%s decompress sum: %w", cp.Name(), err))
				return
			}
			ln.ts.end(telemetry.PhaseDecode, info.Name, span)
			span = ln.ts.start()
			scale(agg, 1/e.n)
			ln.ts.end(telemetry.PhaseAggregate, info.Name, span)
			e.out[i] = agg
		}
		e.releaseSummed(i, summed)

	case Allgather:
		all := e.gathers[i]
		e.gathers[i] = nil
		sizes := e.gsz[i][:len(all)]
		for rank, b := range all {
			sizes[rank] = len(b)
		}
		st.GatherSizes = sizes
		if err := decodeAggregate(cp, caps, all, info, e.out[i], e.n, ln.ts); err != nil {
			e.failTensor(i, info, err)
			return
		}
	}
	st.CodecTime += time.Since(t0)
}

// failTensor handles a decode failure for tensor i: under DecodeFallback it
// is recoverable — marked for the recovery round and survived — otherwise it
// poisons the step. failed[i] is only ever touched by the lane owning tensor
// i during the exchange and by the driver after wg.Wait, so plain writes are
// race-free.
func (e *Engine) failTensor(i int, info TensorInfo, err error) {
	if e.fallback {
		e.failed[i] = true
		e.qFaults[i]++
		return
	}
	e.setErr(&StepError{Tensor: i, Name: info.Name, Phase: "decode", Err: err})
}

// recoverStep is the deterministic graceful-degradation round run when
// DecodeFallback is enabled. Workers allgather a per-tensor failure bitmask
// and take its union, so every rank agrees on which tensors to salvage even
// when only some ranks observed the bad payload; each affected tensor is then
// re-exchanged uncompressed — the NoneCompressor path: AllreduceF32 of the
// compensated gradient, averaged — in ascending order. Every worker issues
// the identical collective sequence, preserving the lockstep contract, and a
// corrupt payload costs one step of compression savings instead of the run.
func (e *Engine) recoverStep(infos []TensorInfo) error {
	span := e.drv.start()
	m := len(infos)
	mask := make([]byte, (m+7)/8)
	for i, bad := range e.failed {
		if bad {
			mask[i/8] |= 1 << (i % 8)
			e.rep.Faults++
		}
	}
	all, err := e.coll.AllgatherBytes(mask)
	if err != nil {
		return &StepError{Tensor: -1, Phase: "recovery", Err: err}
	}
	// Every peer's mask arrives over the wire; ours does not.
	e.rep.RecvBytes += (len(all) - 1) * len(mask)
	union := make([]byte, len(mask))
	for _, b := range all {
		if len(b) != len(mask) {
			return &StepError{Tensor: -1, Phase: "recovery",
				Err: fmt.Errorf("fault mask length mismatch: %d vs %d bytes", len(b), len(mask))}
		}
		for j := range union {
			union[j] |= b[j]
		}
	}
	for i := 0; i < m; i++ {
		if union[i/8]&(1<<(i%8)) == 0 {
			continue
		}
		if e.out[i] == nil || e.compVec[i] == nil {
			// Custom-strategy tensors own their aggregation and never mark
			// failures; a peer claiming one is a protocol violation.
			return &StepError{Tensor: i, Name: infos[i].Name, Phase: "recovery",
				Err: fmt.Errorf("tensor is not recoverable")}
		}
		copy(e.out[i], e.compVec[i])
		if err := e.coll.AllreduceF32(e.out[i]); err != nil {
			return &StepError{Tensor: i, Name: infos[i].Name, Phase: "recovery", Err: err}
		}
		scale(e.out[i], 1/e.n)
		e.rep.Fallbacks++
		e.fellback[i] = true
		e.qFallbacks[i]++
		e.rep.Tensors[i].SentBytes += len(e.out[i]) * 4
		e.rep.Tensors[i].RecvBytes += len(e.out[i]) * 4
	}
	e.drv.end(telemetry.PhaseRecovery, "", span)
	return nil
}

// ensure sizes the engine's step-scoped state for the given tensor set,
// reusing everything when shapes are unchanged from the previous step.
func (e *Engine) ensure(infos []TensorInfo) error {
	m := len(infos)
	same := len(e.sizes) == m
	if same {
		for i := range infos {
			if e.sizes[i] != infos[i].Size() {
				same = false
				break
			}
		}
	}
	if !same {
		p := len(e.lanes)
		// In autotuning mode there is no single engine-wide strategy; fusion is
		// disabled there, so planBuckets degenerates to singleton buckets and
		// the value is inert.
		strategy := Allreduce
		if e.tuner == nil {
			strategy = e.lanes[0].caps.Strategy
		}
		e.buckets = planBuckets(infos, e.fusion, strategy)
		e.bucketOf = make([]int, m)
		e.fusedBuf = make([][]float32, len(e.buckets))
		e.fusedRef = make([]int32, len(e.buckets))
		e.sharedSummed = make([]bool, m)
		e.gsplit = make([][][]byte, m)
		for bi, b := range e.buckets {
			for i := b.Lo; i < b.Hi; i++ {
				e.bucketOf[i] = bi
				if b.size() > 1 && strategy == Allgather {
					e.gsplit[i] = make([][]byte, e.coll.Size())
				}
			}
		}
		e.sizes = make([]int, m)
		e.out = make([][]float32, m)
		e.comp = make([][]float32, m)
		e.compVec = make([][]float32, m)
		e.pays = make([]*Payload, m)
		e.gathers = make([][][]byte, m)
		e.summed = make([][]float32, m)
		e.gsz = make([][]int, m)
		e.have = make([]bool, m)
		e.failed = make([]bool, m)
		e.fellback = make([]bool, m)
		e.qFaults = make([]int64, m)
		e.qFallbacks = make([]int64, m)
		e.qSentBytes = make([]int64, m)
		e.qSteps = make([]int64, m)
		e.qEFDrops = make([]int64, m)
		e.rep.Tensors = make([]StepStats, m)
		e.nameIdx = make(map[string]int, m)
		laneMax := make([]int, p)
		for i, info := range infos {
			size := info.Size()
			e.sizes[i] = size
			e.nameIdx[info.Name] = i
			if e.tuner != nil || strategy != Custom {
				// Custom-strategy compressors return their own aggregate
				// slice; everything else aggregates into a persistent buffer.
				// Autotuned candidates are never Custom.
				e.out[i] = make([]float32, size)
			}
			if e.mem != nil {
				e.comp[i] = make([]float32, size)
			}
			e.gsz[i] = make([]int, e.coll.Size())
			if size > laneMax[i%p] {
				laneMax[i%p] = size
			}
		}
		for l, ln := range e.lanes {
			ln.scratch = nil
			needScratch := ln.caps.Into != nil
			for _, caps := range ln.capsL {
				if caps.Into != nil {
					needScratch = true
				}
			}
			if e.mem != nil && needScratch && laneMax[l] > 0 {
				ln.scratch = make([]float32, laneMax[l])
			}
			if cap(ln.dec) < m/p+2 {
				ln.dec = make(chan int, m/p+2)
			}
		}
		if cap(e.ready) < m {
			e.ready = make(chan int, m)
		}
		if e.tuner != nil {
			if err := e.tuner.Init(infos); err != nil {
				return fmt.Errorf("grace: autotune init: %w", err)
			}
			e.assign = make([]TunerAssign, m)
			e.obs = make([]TunerObs, m)
			e.rep.PolicyByTensor = make([]string, m)
		}
	}

	// Per-step reset.
	e.firstErr = nil
	e.rep.SentBytes = 0
	e.rep.RecvBytes = 0
	e.rep.CodecTime = 0
	e.rep.WallTime = 0
	e.rep.ByStrategy = [3]StrategyStats{}
	e.rep.Faults = 0
	e.rep.Fallbacks = 0
	e.rep.Rounds = 0
	e.rep.FusedBuckets = 0
	e.rep.FusedTensors = 0
	e.rep.FusedBytes = 0
	e.rep.FusionOverheadBytes = 0
	e.rep.Buckets = e.buckets
	e.rep.Switches = 0
	e.rep.Flushes = 0
	e.rep.PhaseNs = [telemetry.NumPhases]int64{}
	e.drvNs = [telemetry.NumPhases]int64{}
	for _, ln := range e.lanes {
		ln.phaseNs = [telemetry.NumPhases]int64{}
	}
	for i := 0; i < m; i++ {
		e.rep.Tensors[i] = StepStats{}
		e.have[i] = false
		e.failed[i] = false
		e.fellback[i] = false
		e.pays[i] = nil
		e.compVec[i] = nil
		e.gathers[i] = nil
		e.summed[i] = nil
		e.sharedSummed[i] = false
	}
	for bi := range e.buckets {
		e.fusedBuf[bi] = nil
		e.fusedRef[bi] = 0
	}
	return nil
}

func (e *Engine) setErr(err error) {
	e.errMu.Lock()
	if e.firstErr == nil {
		e.firstErr = err
	}
	e.errMu.Unlock()
}

func (e *Engine) err() error {
	e.errMu.Lock()
	err := e.firstErr
	e.errMu.Unlock()
	return err
}
