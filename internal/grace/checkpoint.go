package grace

import (
	"fmt"

	"repro/internal/optim"
	"repro/internal/tensor"
)

// ParamTensor is one named dense tensor captured in a Snapshot (a model
// parameter or a local-SGD sync-point copy).
type ParamTensor struct {
	Name  string
	Shape []int
	Data  []float32
}

// Snapshot is the complete per-rank training state at an optimizer-step
// boundary. Restoring it into an identically configured worker and
// replaying the remaining batches reproduces the uninterrupted run bit for
// bit: model parameters, optimizer slots, the error-feedback residual
// memory, compressor-internal codec state (DGC momentum/accumulators, QSGD
// rounding RNG streams), and the loop position are all covered. The
// serialized on-disk form lives in internal/ckpt.
type Snapshot struct {
	// Step counts completed optimizer steps (the global lockstep position).
	Step int64
	// Epoch and Iter locate the training loop: the next batch to process is
	// batch Iter of epoch Epoch.
	Epoch, Iter int
	// SinceSync is the local-SGD counter (steps since the last model sync).
	SinceSync int
	// Seed, Rank and Workers identify the run; restores validate them so a
	// checkpoint cannot silently resume a different configuration.
	Seed    uint64
	Rank    int
	Workers int
	// Method is the compression method name the run uses.
	Method string
	// Fusion is the engine's tensor-fusion policy. It is part of the
	// collective sequence (the bucket plan must match on every rank), so
	// restores validate it like Method; checkpoints written before fusion
	// existed carry the zero value and resume unfused runs unchanged.
	Fusion FusionConfig
	// Params are the model parameters in Params() order.
	Params []ParamTensor
	// SyncPoint is the local-SGD synchronization point (nil when SyncEvery
	// is off).
	SyncPoint []ParamTensor
	// Opt is the optimizer state, index-ordered against Params.
	Opt optim.State
	// Memory is the framework error-feedback residual per tensor name (nil
	// when EF memory is off).
	Memory map[string][]float32
	// Codec is the compressor-internal state (empty for stateless methods).
	Codec EngineCodecState
	// Tuner is the autotuning policy state (nil for fixed-method runs).
	// Restoring it replays the policy trajectory bitwise, so a killed and
	// resumed autotuned run issues the identical collective sequence.
	Tuner *TunerState
}

// CheckpointConfig wires crash-consistent checkpointing into a training
// run.
type CheckpointConfig struct {
	// Every is the snapshot period in optimizer steps; 0 disables periodic
	// snapshots (Final may still produce one). All ranks run in lockstep,
	// so every rank snapshots at the same steps.
	Every int
	// Save persists one snapshot (typically ckpt.Dir.SaveStep); required
	// when Every > 0 or Final is set. A Save error aborts the worker — a
	// run that cannot persist its progress should fail loudly, not lose
	// recovery points silently.
	Save func(s *Snapshot) error
	// Resume, when non-nil, restores the worker to the snapshot before its
	// first step. Snapshots are per-rank, so Resume is only valid with
	// RunWorker; Run rejects it.
	Resume *Snapshot
	// Final snapshots once more after the last step, so a completed run's
	// terminal state is recoverable too.
	Final bool
}

// trainerPos is the loop position a snapshot pins.
type trainerPos struct {
	step      int64
	epoch     int
	iter      int
	sinceSync int
}

// captureSnapshot deep-copies the worker's full training state.
func captureSnapshot(cfg *Config, rank int, model Model, opt optim.Optimizer,
	mem *Memory, eng *Engine, syncPoint []*tensor.Dense, pos trainerPos) (*Snapshot, error) {
	sf, ok := opt.(optim.Stateful)
	if !ok {
		return nil, fmt.Errorf("grace: optimizer %q does not export state; checkpointing needs optim.Stateful", opt.Name())
	}
	params := model.Params()
	s := &Snapshot{
		Step:      pos.step,
		Epoch:     pos.epoch,
		Iter:      pos.iter,
		SinceSync: pos.sinceSync,
		Seed:      cfg.Seed,
		Rank:      rank,
		Workers:   cfg.Workers,
		Method:    eng.Method(),
		Fusion:    eng.Fusion(),
		Opt:       sf.State(params),
		Codec:     eng.CodecState(),
		Tuner:     eng.TunerState(),
	}
	s.Params = make([]ParamTensor, len(params))
	for i, p := range params {
		s.Params[i] = copyTensor(p.Name, p.Value)
	}
	if mem != nil {
		s.Memory = mem.State()
	}
	if syncPoint != nil {
		s.SyncPoint = make([]ParamTensor, len(syncPoint))
		for i, t := range syncPoint {
			s.SyncPoint[i] = copyTensor(params[i].Name, t)
		}
	}
	return s, nil
}

// applySnapshot validates the snapshot against the worker's configuration
// and restores every piece of state, returning the loop position to resume
// from.
func applySnapshot(cfg *Config, rank int, s *Snapshot, model Model, opt optim.Optimizer,
	mem *Memory, eng *Engine, syncPoint []*tensor.Dense) (trainerPos, error) {
	var pos trainerPos
	if s.Seed != cfg.Seed {
		return pos, fmt.Errorf("grace: checkpoint is for seed %d, run uses %d", s.Seed, cfg.Seed)
	}
	// An elastic run may restore a snapshot taken at a different world size
	// (the shrink/grow rollback): per-rank state transfers unchanged, but the
	// loop position and policy state are world-size-shaped and are
	// re-derived — see the resize block at the end.
	elasticResize := cfg.Elastic != nil && s.Workers != cfg.Workers
	if s.Workers != cfg.Workers && !elasticResize {
		return pos, fmt.Errorf("grace: checkpoint is for %d workers, run has %d", s.Workers, cfg.Workers)
	}
	if s.Rank != rank {
		return pos, fmt.Errorf("grace: checkpoint belongs to rank %d, not rank %d", s.Rank, rank)
	}
	if s.Method != eng.Method() {
		return pos, fmt.Errorf("grace: checkpoint is for method %q, run uses %q", s.Method, eng.Method())
	}
	if s.Fusion != eng.Fusion() {
		return pos, fmt.Errorf("grace: checkpoint is for fusion policy %+v, run uses %+v", s.Fusion, eng.Fusion())
	}
	params := model.Params()
	if len(s.Params) != len(params) {
		return pos, fmt.Errorf("grace: checkpoint has %d parameters, model has %d", len(s.Params), len(params))
	}
	for i, p := range params {
		pt := s.Params[i]
		if pt.Name != p.Name || len(pt.Data) != p.Value.Size() {
			return pos, fmt.Errorf("grace: checkpoint param %d is %s[%d], model wants %s[%d]",
				i, pt.Name, len(pt.Data), p.Name, p.Value.Size())
		}
		copy(p.Value.Data(), pt.Data)
	}
	sf, ok := opt.(optim.Stateful)
	if !ok {
		return pos, fmt.Errorf("grace: optimizer %q does not load state; checkpointing needs optim.Stateful", opt.Name())
	}
	if err := sf.LoadState(params, s.Opt); err != nil {
		return pos, err
	}
	if (mem != nil) != (s.Memory != nil) {
		return pos, fmt.Errorf("grace: checkpoint and run disagree on error-feedback memory (checkpoint %v, run %v)",
			s.Memory != nil, mem != nil)
	}
	if mem != nil {
		mem.LoadState(s.Memory)
	}
	if err := eng.LoadCodecState(s.Codec); err != nil {
		return pos, err
	}
	if elasticResize {
		// The policy signature pins the worker count, so a cross-world-size
		// tuner state is not loadable; presence must still match (a run cannot
		// switch tuning modes mid-flight). The policy was deterministically
		// reset by the resize (Engine.Rebind → WorldSizeSetter) on every
		// member, so trajectories stay rank-identical — they just restart.
		if (s.Tuner != nil) != (eng.TunerState() != nil) {
			return pos, errTunerPresence(s.Tuner != nil)
		}
	} else if err := eng.LoadTunerState(s.Tuner); err != nil {
		return pos, err
	}
	if (syncPoint != nil) != (s.SyncPoint != nil) {
		return pos, fmt.Errorf("grace: checkpoint and run disagree on local-SGD (checkpoint sync point %v, run %v)",
			s.SyncPoint != nil, syncPoint != nil)
	}
	if syncPoint != nil {
		if len(s.SyncPoint) != len(syncPoint) {
			return pos, fmt.Errorf("grace: checkpoint sync point has %d tensors, run has %d", len(s.SyncPoint), len(syncPoint))
		}
		for i, t := range syncPoint {
			if len(s.SyncPoint[i].Data) != t.Size() {
				return pos, fmt.Errorf("grace: checkpoint sync point %d has %d elements, run wants %d",
					i, len(s.SyncPoint[i].Data), t.Size())
			}
			copy(t.Data(), s.SyncPoint[i].Data)
		}
	}
	if elasticResize {
		// The snapshot's Iter counts batches of the OLD partition; under the
		// new world size the epoch's batch sequence is different, so the
		// interrupted epoch replays from its start under the new shard
		// assignment (the sampler is a pure function of (len, workers, rank,
		// seed) — every member derives the identical partition). Step keeps
		// the snapshot's count: it is the lockstep position, not a batch
		// index.
		return trainerPos{step: s.Step, epoch: s.Epoch, iter: 0, sinceSync: 0}, nil
	}
	return trainerPos{step: s.Step, epoch: s.Epoch, iter: s.Iter, sinceSync: s.SinceSync}, nil
}

// adoptSnapshot restores a snapshot that was captured by a *different* rank:
// the rejoin state-transfer path, where a rank whose local checkpoints were
// lost adopts a donor's snapshot broadcast over the collective. It is
// applySnapshot with the rank-identity check overridden — every other
// validation (seed, worker count, method, fusion, shapes) still applies.
//
// Adoption is bitwise-exact only when the run carries no per-rank divergent
// state: error-feedback memory off (or the residuals happen to be identical)
// and a codec whose state is rank-independent. Runs with rank-seeded codec
// RNG or EF memory will train on the donor's residual stream after adoption —
// still a valid model, but not the uninterrupted run bit for bit. The
// rejoining rank's own-checkpoint path (applySnapshot) has no such caveat.
func adoptSnapshot(cfg *Config, rank int, s *Snapshot, model Model, opt optim.Optimizer,
	mem *Memory, eng *Engine, syncPoint []*tensor.Dense) (trainerPos, error) {
	donated := *s
	donated.Rank = rank
	return applySnapshot(cfg, rank, &donated, model, opt, mem, eng, syncPoint)
}

func copyTensor(name string, t *tensor.Dense) ParamTensor {
	return ParamTensor{
		Name:  name,
		Shape: append([]int(nil), t.Shape()...),
		Data:  append([]float32(nil), t.Data()...),
	}
}
