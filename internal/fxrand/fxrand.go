// Package fxrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the repository.
//
// All stochastic behaviour in the library (weight initialization, dataset
// synthesis, randomized compressors such as QSGD and TernGrad) flows from
// fxrand so that experiments are bit-reproducible across runs and across
// worker replicas. The generator is splitmix64, which is statistically strong
// enough for simulation workloads, allocation free, and trivially forkable
// into independent streams.
package fxrand

import "math"

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is a valid generator seeded with 0; prefer New to make the
// seed explicit. RNG is not safe for concurrent use; fork per-goroutine
// streams with Fork.
type RNG struct {
	state uint64

	// Box-Muller cache for NormFloat64.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State is a serializable snapshot of a generator's complete internal state:
// the splitmix64 state word plus the Box-Muller spare cache. Restoring it
// replays the exact continuation of the stream, which is what crash-consistent
// checkpointing needs from every randomized component.
type State struct {
	Word     uint64
	HasSpare bool
	Spare    float64
}

// State captures the generator's current state.
func (r *RNG) State() State {
	return State{Word: r.state, HasSpare: r.hasSpare, Spare: r.spare}
}

// Restore rewinds the generator to a previously captured state; subsequent
// draws reproduce the stream that followed the capture bit for bit.
func (r *RNG) Restore(st State) {
	r.state = st.Word
	r.hasSpare = st.HasSpare
	r.spare = st.Spare
}

// Fork derives an independent generator from r. The derived stream is a
// deterministic function of r's current state and the provided salt, so
// distinct salts yield distinct streams.
func (r *RNG) Fork(salt uint64) *RNG {
	return &RNG{state: r.Uint64() ^ (salt * 0x9e3779b97f4a7c15)}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fxrand: Intn called with non-positive n")
	}
	// Lemire's multiply-shift rejection-free bound is overkill here; modulo
	// bias is negligible for the n << 2^64 values used in this repository,
	// but we keep the standard rejection loop for correctness.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// NormFloat64 returns a standard normal variate via Box-Muller.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormFloat32 returns a standard normal float32 variate.
func (r *RNG) NormFloat32() float32 { return float32(r.NormFloat64()) }

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements in place using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Sample returns k distinct indices drawn uniformly from [0, n) in
// unspecified order. It panics if k > n or k < 0.
//
// For small k relative to n it uses Floyd's algorithm (O(k) expected time and
// memory); otherwise it shuffles a full permutation prefix.
func (r *RNG) Sample(n, k int) []int {
	switch {
	case k < 0 || k > n:
		panic("fxrand: Sample called with k out of range")
	case k == 0:
		return nil
	}
	if k*4 >= n {
		// Dense draw: partial Fisher-Yates over the full index range.
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < k; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return p[:k]
	}
	// Sparse draw: Floyd's algorithm.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
