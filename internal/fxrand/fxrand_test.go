package fxrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	r := New(7)
	f1 := r.Fork(1)
	f2 := r.Fork(2)
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forks with different salts produced identical first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid element %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleProperties(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint16) bool {
		n := int(nRaw%500) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := make(map[int]struct{}, k)
		for _, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleFullRange(t *testing.T) {
	s := New(1).Sample(10, 10)
	seen := make([]bool, 10)
	for _, v := range s {
		seen[v] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("Sample(10,10) missing %d", i)
		}
	}
}

func TestSamplePanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestShuffleIntsPreservesElements(t *testing.T) {
	r := New(21)
	p := []int{5, 6, 7, 8, 9}
	r.ShuffleInts(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("shuffle lost elements: %v", p)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

// TestStateRestoreRoundTrip: draw N, snapshot, draw M, restore, redraw M —
// the two M-sequences must match exactly, including the Box-Muller spare
// cache (odd NormFloat64 counts leave a cached spare in flight).
func TestStateRestoreRoundTrip(t *testing.T) {
	for _, warmup := range []int{0, 1, 7, 32} {
		r := New(99)
		for i := 0; i < warmup; i++ {
			// Mixed draw pattern so snapshots land with and without a
			// cached Box-Muller spare.
			_ = r.Uint64()
			_ = r.NormFloat64()
			if i%2 == 0 {
				_ = r.NormFloat64()
			}
		}
		st := r.State()
		const m = 64
		want := make([]float64, m)
		for i := range want {
			if i%3 == 0 {
				want[i] = r.NormFloat64()
			} else {
				want[i] = r.Float64()
			}
		}
		r.Restore(st)
		for i := range want {
			var got float64
			if i%3 == 0 {
				got = r.NormFloat64()
			} else {
				got = r.Float64()
			}
			if got != want[i] {
				t.Fatalf("warmup %d: draw %d after restore = %v, want %v", warmup, i, got, want[i])
			}
		}
	}
}

// TestStateRestoreAcrossGenerators: a state captured from one generator must
// transplant the stream into a fresh one.
func TestStateRestoreAcrossGenerators(t *testing.T) {
	a := New(5)
	_ = a.NormFloat64() // leave a spare cached
	st := a.State()
	want := []uint64{a.Uint64(), a.Uint64(), a.Uint64()}
	wantN := a.NormFloat64()

	b := New(0)
	b.Restore(st)
	got := []uint64{b.Uint64(), b.Uint64(), b.Uint64()}
	gotN := b.NormFloat64()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transplanted draw %d = %d, want %d", i, got[i], want[i])
		}
	}
	if gotN != wantN {
		t.Fatalf("transplanted normal = %v, want %v", gotN, wantN)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
