package models

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/fxrand"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// Classifier wraps a feed-forward network with softmax cross-entropy for the
// image-classification benchmarks.
type Classifier struct {
	net *nn.Sequential
}

var _ Model = (*Classifier)(nil)

// NewMLPClassifier builds a wide multi-layer perceptron. With large hidden
// widths its parameter count is dominated by two dense matrices — the same
// communication-heavy profile as VGG-16's fully connected layers, making it
// the stand-in for the paper's communication-bound image models.
func NewMLPClassifier(seed uint64, inputDim int, hidden []int, classes int) *Classifier {
	r := fxrand.New(seed)
	var layers []nn.Layer
	in := inputDim
	layers = append(layers, nn.NewFlatten("flatten"))
	for i, h := range hidden {
		layers = append(layers,
			nn.NewDense(dname("fc", i), in, h, r),
			nn.NewReLU(dname("relu", i)))
		in = h
	}
	layers = append(layers, nn.NewDense("out", in, classes, r))
	return &Classifier{net: nn.NewSequential("mlp", layers...)}
}

// CNNConfig sizes a small convolutional classifier.
type CNNConfig struct {
	InC, H, W int
	// Channels per conv stage; each stage is conv3x3 + ReLU + 2x2 maxpool.
	Channels []int
	// Hidden is the dense head width (0 = direct projection).
	Hidden  int
	Classes int
}

// NewCNNClassifier builds a compact CNN: parameter count is small relative
// to its compute, reproducing the compute-bound profile of ResNet/DenseNet
// (§V-B: such models see no throughput win from compression at 10 Gbps).
func NewCNNClassifier(seed uint64, cfg CNNConfig) *Classifier {
	r := fxrand.New(seed)
	var layers []nn.Layer
	in, h, w := cfg.InC, cfg.H, cfg.W
	for i, ch := range cfg.Channels {
		layers = append(layers,
			nn.NewConv2D(dname("conv", i), in, ch, 3, 1, 1, r),
			nn.NewReLU(dname("crelu", i)),
			nn.NewMaxPool2D(dname("pool", i), 2))
		in = ch
		h /= 2
		w /= 2
	}
	layers = append(layers, nn.NewFlatten("flatten"))
	flat := in * h * w
	if cfg.Hidden > 0 {
		layers = append(layers,
			nn.NewDense("head", flat, cfg.Hidden, r),
			nn.NewReLU("hrelu"))
		flat = cfg.Hidden
	}
	layers = append(layers, nn.NewDense("out", flat, cfg.Classes, r))
	return &Classifier{net: nn.NewSequential("cnn", layers...)}
}

// Params returns the network parameters.
func (c *Classifier) Params() []*nn.Param { return c.net.Params() }

// ForwardBackward runs one batch through softmax cross-entropy.
func (c *Classifier) ForwardBackward(b data.Batch) float64 {
	logits := c.net.Forward(b.X, true)
	loss, dl := nn.SoftmaxCrossEntropy(logits, b.Y)
	c.net.Backward(dl)
	return loss
}

// EvalAccuracy computes top-1 accuracy over an image dataset.
func EvalAccuracy(c *Classifier, ds data.Dataset, batchSize int) float64 {
	idx := data.AllIndices(ds.Len())
	var preds, labels []int
	for lo := 0; lo < len(idx); lo += batchSize {
		hi := lo + batchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		b := ds.Batch(idx[lo:hi])
		logits := c.net.Forward(b.X, false)
		preds = append(preds, nn.ArgmaxRows(logits, len(b.Y))...)
		labels = append(labels, b.Y...)
	}
	return metrics.Accuracy(preds, labels)
}

func dname(prefix string, i int) string {
	return fmt.Sprintf("%s%d", prefix, i)
}
