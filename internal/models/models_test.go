package models

import (
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// train runs plain single-node SGD for a few epochs, returning per-epoch
// losses.
func train(t *testing.T, m Model, ds data.Dataset, opt optim.Optimizer, epochs, batchSize int) []float64 {
	t.Helper()
	sampler := data.NewSampler(ds.Len(), 1, 0, 7)
	var losses []float64
	params := m.Params()
	for e := 0; e < epochs; e++ {
		var sum float64
		var n int
		for _, idx := range sampler.EpochBatches(batchSize) {
			nn.ZeroGrads(params)
			loss := m.ForwardBackward(ds.Batch(idx))
			grads := make([]*tensor.Dense, len(params))
			for i, p := range params {
				grads[i] = p.Grad
			}
			opt.Step(params, grads)
			sum += loss
			n++
		}
		losses = append(losses, sum/float64(n))
	}
	return losses
}

func TestMLPClassifierLearns(t *testing.T) {
	ds := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 256, Noise: 0.3, Seed: 1})
	m := NewMLPClassifier(1, 64, []int{32}, 4)
	losses := train(t, m, ds, optim.NewMomentumSGD(0.05, 0.9), 5, 32)
	if losses[len(losses)-1] > losses[0]*0.5 {
		t.Fatalf("MLP did not learn: %v", losses)
	}
	test := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 64, Noise: 0.3, Seed: 1})
	acc := EvalAccuracy(m, test, 32)
	if acc < 0.6 {
		t.Fatalf("MLP accuracy %v too low", acc)
	}
}

func TestCNNClassifierLearns(t *testing.T) {
	ds := data.NewImages(data.ImagesConfig{Classes: 3, C: 1, H: 8, W: 8, N: 120, Noise: 0.3, Seed: 2})
	m := NewCNNClassifier(1, CNNConfig{InC: 1, H: 8, W: 8, Channels: []int{8, 16}, Hidden: 32, Classes: 3})
	losses := train(t, m, ds, optim.NewMomentumSGD(0.05, 0.9), 6, 20)
	if losses[len(losses)-1] > losses[0]*0.6 {
		t.Fatalf("CNN did not learn: %v", losses)
	}
	acc := EvalAccuracy(m, ds, 20)
	if acc < 0.7 {
		t.Fatalf("CNN train accuracy %v too low", acc)
	}
}

func TestClassifierParamCountScales(t *testing.T) {
	small := NewMLPClassifier(1, 64, []int{16}, 4)
	big := NewMLPClassifier(1, 64, []int{512, 512}, 4)
	if nn.NumParams(big.Params()) < 10*nn.NumParams(small.Params()) {
		t.Fatal("wide MLP should have far more parameters")
	}
}

func TestNCFLearns(t *testing.T) {
	ds := data.NewRatings(data.RatingsConfig{Users: 60, Items: 150, LatentDim: 4, PosPerUser: 10, NegPerPos: 4, Seed: 3})
	m := NewNCF(1, 60, 150, 8, []int{16})
	losses := train(t, m, ds, optim.NewAdam(0.01), 8, 64)
	if losses[len(losses)-1] > losses[0]*0.9 {
		t.Fatalf("NCF did not learn: %v", losses)
	}
	hr := EvalHitRate(m, ds)
	// Random ranking gives HR@10 ≈ 0.10; a trained model must beat it well.
	if hr < 0.2 {
		t.Fatalf("NCF HR@10 %v barely above chance", hr)
	}
}

func TestLSTMLMLearns(t *testing.T) {
	ds := data.NewTokenStream(data.TokenConfig{Vocab: 30, SeqLen: 8, TrainTok: 4000, TestTok: 800, Successors: 3, Seed: 4})
	m := NewLSTMLM(1, 30, 16, 32)
	before := EvalPerplexity(m, ds)
	train(t, m, ds, optim.NewAdam(0.01), 6, 16)
	after := EvalPerplexity(m, ds)
	if after >= before {
		t.Fatalf("perplexity did not improve: %v -> %v", before, after)
	}
	// Must beat uniform guessing (PPL = vocab = 30) substantially.
	if after > 20 {
		t.Fatalf("perplexity %v too close to uniform", after)
	}
}

func TestSegNetLearns(t *testing.T) {
	ds := data.NewBlobs(data.BlobsConfig{H: 16, W: 16, N: 60, Noise: 0.3, Seed: 5})
	m := NewSegNet(1, []int{8, 16})
	losses := train(t, m, ds, optim.NewRMSProp(0.002), 6, 10)
	if losses[len(losses)-1] > losses[0]*0.8 {
		t.Fatalf("SegNet did not learn: %v", losses)
	}
	iou := EvalIoU(m, ds, 10)
	if iou < 0.4 {
		t.Fatalf("SegNet IoU %v too low", iou)
	}
}

func TestSegNetOutputShape(t *testing.T) {
	m := NewSegNet(1, []int{4, 8})
	ds := data.NewBlobs(data.BlobsConfig{H: 16, W: 16, N: 2, Noise: 0.2, Seed: 6})
	b := ds.Batch([]int{0, 1})
	loss := m.ForwardBackward(b)
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
}

func TestModelsAreDeterministic(t *testing.T) {
	// Same seed => identical parameters (replica consistency requirement).
	a := NewMLPClassifier(9, 64, []int{32}, 4)
	b := NewMLPClassifier(9, 64, []int{32}, 4)
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Value.Data() {
			if pa[i].Value.Data()[j] != pb[i].Value.Data()[j] {
				t.Fatal("same-seed models differ")
			}
		}
	}
	c := NewMLPClassifier(10, 64, []int{32}, 4)
	if c.Params()[0].Value.Data()[0] == a.Params()[0].Value.Data()[0] {
		t.Fatal("different-seed models should differ")
	}
}

func TestNCFEmbeddingDominatesParams(t *testing.T) {
	// The communication-bound character requires the embedding tables to
	// dominate (Table II: NCF has 31.8M params, mostly embeddings).
	m := NewNCF(1, 2000, 4000, 32, []int{32, 16})
	var embParams, otherParams int
	for _, p := range m.Params() {
		if p.Name == "user_emb.w" || p.Name == "item_emb.w" {
			embParams += p.Value.Size()
		} else {
			otherParams += p.Value.Size()
		}
	}
	if embParams < 10*otherParams {
		t.Fatalf("embeddings (%d) should dominate MLP (%d)", embParams, otherParams)
	}
}
