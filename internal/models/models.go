// Package models implements the benchmark models of the paper's Table II,
// scaled to the Go/CPU substrate while preserving each benchmark's
// communication character (see DESIGN.md): image classifiers (CNN and wide
// MLP variants), the NCF recommender, an LSTM language model, and a
// convolutional encoder-decoder segmenter.
//
// Every model satisfies grace.Model: Params() exposes per-layer gradient
// tensors, ForwardBackward runs one mini-batch. Evaluators compute the
// benchmark's Table II quality metric on held-out data.
package models

import (
	"repro/internal/data"
	"repro/internal/nn"
)

// Model is re-declared here (identical to grace.Model) so this package does
// not depend on the framework; the trainer accepts either.
type Model interface {
	Params() []*nn.Param
	ForwardBackward(b data.Batch) float64
}
