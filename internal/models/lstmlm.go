package models

import (
	"math"

	"repro/internal/data"
	"repro/internal/fxrand"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// LSTMLM is the language model of the paper's PTB benchmark: embedding →
// LSTM → per-timestep vocabulary projection, trained with cross-entropy over
// next tokens and evaluated by test perplexity.
type LSTMLM struct {
	emb  *nn.Embedding
	lstm *nn.LSTM
	proj *nn.Dense
}

var _ Model = (*LSTMLM)(nil)

// NewLSTMLM builds the model.
func NewLSTMLM(seed uint64, vocab, embDim, hidden int) *LSTMLM {
	r := fxrand.New(seed)
	return &LSTMLM{
		emb:  nn.NewEmbedding("emb", vocab, embDim, r.Fork(1)),
		lstm: nn.NewLSTM("lstm", embDim, hidden, r.Fork(2)),
		proj: nn.NewDense("proj", hidden, vocab, r.Fork(3)),
	}
}

// Params returns embedding, LSTM and projection parameters.
func (m *LSTMLM) Params() []*nn.Param {
	ps := append([]*nn.Param{}, m.emb.Params()...)
	ps = append(ps, m.lstm.Params()...)
	return append(ps, m.proj.Params()...)
}

// ForwardBackward trains one batch of token windows.
func (m *LSTMLM) ForwardBackward(b data.Batch) float64 {
	x := m.emb.ForwardIDs(b.IDs, true) // [B,T,E]
	h := m.lstm.Forward(x, true)       // [B,T,H]
	logits := m.proj.Forward(h, true)  // [B,T,V]
	bn, T := len(b.IDs), len(b.IDs[0])
	loss, dl := nn.SoftmaxCrossEntropy(logits.Reshape(bn*T, logits.Dim(2)), b.Y)
	dh := m.proj.Backward(dl.Reshape(bn, T, logits.Dim(2)))
	dx := m.lstm.Backward(dh)
	m.emb.BackwardIDs(dx)
	return loss
}

// crossEntropy computes the mean CE of the model on token windows without
// touching gradients.
func (m *LSTMLM) crossEntropy(ids [][]int, targets [][]int) float64 {
	x := m.emb.ForwardIDs(ids, false)
	h := m.lstm.Forward(x, false)
	logits := m.proj.Forward(h, false)
	bn, T := len(ids), len(ids[0])
	flat := make([]int, 0, bn*T)
	for _, row := range targets {
		flat = append(flat, row...)
	}
	loss, _ := nn.SoftmaxCrossEntropy(logits.Reshape(bn*T, logits.Dim(2)), flat)
	return loss
}

// EvalPerplexity computes test perplexity over the held-out stream,
// processing windows in batches to bound memory.
func EvalPerplexity(m *LSTMLM, ds *data.TokenStream) float64 {
	ids, targets := ds.TestWindows()
	if len(ids) == 0 {
		return math.Inf(1)
	}
	const batch = 16
	var total float64
	var n int
	for lo := 0; lo < len(ids); lo += batch {
		hi := lo + batch
		if hi > len(ids) {
			hi = len(ids)
		}
		total += m.crossEntropy(ids[lo:hi], targets[lo:hi]) * float64(hi-lo)
		n += hi - lo
	}
	return metrics.Perplexity(total / float64(n))
}
