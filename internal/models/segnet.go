package models

import (
	"math"

	"repro/internal/data"
	"repro/internal/fxrand"
	"repro/internal/metrics"
	"repro/internal/nn"
)

// SegNet is the segmentation stand-in for U-Net: a convolutional
// encoder-decoder (conv/pool down, conv/upsample back) producing per-pixel
// defect logits, trained with binary cross-entropy and evaluated by IoU at
// the paper's 0.125 threshold.
type SegNet struct {
	net *nn.Sequential
}

var _ Model = (*SegNet)(nil)

// NewSegNet builds the encoder-decoder with the given stage widths.
func NewSegNet(seed uint64, channels []int) *SegNet {
	r := fxrand.New(seed)
	var layers []nn.Layer
	in := 1
	// Encoder.
	for i, ch := range channels {
		layers = append(layers,
			nn.NewConv2D(dname("enc", i), in, ch, 3, 1, 1, r),
			nn.NewReLU(dname("erelu", i)),
			nn.NewMaxPool2D(dname("epool", i), 2))
		in = ch
	}
	// Decoder.
	for i := len(channels) - 1; i >= 0; i-- {
		out := 1
		if i > 0 {
			out = channels[i-1]
		}
		layers = append(layers,
			nn.NewUpsample2D(dname("up", i), 2),
			nn.NewConv2D(dname("dec", i), in, out, 3, 1, 1, r))
		if i > 0 {
			layers = append(layers, nn.NewReLU(dname("drelu", i)))
		}
		in = out
	}
	return &SegNet{net: nn.NewSequential("segnet", layers...)}
}

// Params returns the network parameters.
func (s *SegNet) Params() []*nn.Param { return s.net.Params() }

// ForwardBackward trains one batch of (image, mask) pairs.
func (s *SegNet) ForwardBackward(b data.Batch) float64 {
	logits := s.net.Forward(b.X, true)
	loss, dl := nn.BCEWithLogits(logits, b.YF)
	s.net.Backward(dl)
	return loss
}

// EvalIoU computes mean IoU (threshold 0.125) over a held-out set.
func EvalIoU(s *SegNet, ds data.Dataset, batchSize int) float64 {
	idx := data.AllIndices(ds.Len())
	var total float64
	var n int
	for lo := 0; lo < len(idx); lo += batchSize {
		hi := lo + batchSize
		if hi > len(idx) {
			hi = len(idx)
		}
		b := ds.Batch(idx[lo:hi])
		logits := s.net.Forward(b.X, false)
		prob := logits.Clone().Apply(sigmoid32)
		total += metrics.IoU(prob.Data(), b.YF.Data(), 0.125)
		n++
	}
	return total / float64(n)
}

func sigmoid32(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}
