package models

import (
	"repro/internal/data"
	"repro/internal/fxrand"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// NCF is the neural collaborative filtering recommender [61]: user and item
// embeddings concatenated into an MLP scoring head trained with binary
// cross-entropy on implicit feedback. As in the paper, the embedding tables
// dominate the parameter count, which is what makes the recommendation
// benchmark communication-bound (§V-B).
type NCF struct {
	userEmb, itemEmb *nn.Embedding
	head             *nn.Sequential
	embDim           int

	// caches for backward
	lastIDs [][]int
}

var _ Model = (*NCF)(nil)

// NewNCF builds the model. hidden sizes the MLP tower.
func NewNCF(seed uint64, users, items, embDim int, hidden []int) *NCF {
	r := fxrand.New(seed)
	var layers []nn.Layer
	in := 2 * embDim
	for i, h := range hidden {
		layers = append(layers,
			nn.NewDense(dname("mlp", i), in, h, r),
			nn.NewReLU(dname("mrelu", i)))
		in = h
	}
	layers = append(layers, nn.NewDense("score", in, 1, r))
	return &NCF{
		userEmb: nn.NewEmbedding("user_emb", users, embDim, r.Fork(1)),
		itemEmb: nn.NewEmbedding("item_emb", items, embDim, r.Fork(2)),
		head:    nn.NewSequential("head", layers...),
		embDim:  embDim,
	}
}

// Params returns embeddings followed by the MLP head.
func (m *NCF) Params() []*nn.Param {
	ps := append([]*nn.Param{}, m.userEmb.Params()...)
	ps = append(ps, m.itemEmb.Params()...)
	return append(ps, m.head.Params()...)
}

// score runs the forward pass for (user, item) pairs, returning logits [B].
func (m *NCF) score(ids [][]int, train bool) *tensor.Dense {
	b := len(ids)
	users := make([][]int, b)
	items := make([][]int, b)
	for i, pair := range ids {
		users[i] = pair[:1]
		items[i] = pair[1:2]
	}
	ue := m.userEmb.ForwardIDs(users, train) // [B,1,E]
	ie := m.itemEmb.ForwardIDs(items, train) // [B,1,E]
	x := tensor.New(b, 2*m.embDim)
	for i := 0; i < b; i++ {
		copy(x.Data()[i*2*m.embDim:], ue.Data()[i*m.embDim:(i+1)*m.embDim])
		copy(x.Data()[i*2*m.embDim+m.embDim:], ie.Data()[i*m.embDim:(i+1)*m.embDim])
	}
	return m.head.Forward(x, train)
}

// ForwardBackward trains one batch of (user, item, label) triples.
func (m *NCF) ForwardBackward(b data.Batch) float64 {
	m.lastIDs = b.IDs
	logits := m.score(b.IDs, true)
	loss, dl := nn.BCEWithLogits(logits.Reshape(len(b.IDs)), b.YF)
	dx := m.head.Backward(dl.Reshape(len(b.IDs), 1))
	// Split the concatenated gradient back to the two embeddings.
	bn := len(b.IDs)
	du := tensor.New(bn, 1, m.embDim)
	di := tensor.New(bn, 1, m.embDim)
	for i := 0; i < bn; i++ {
		copy(du.Data()[i*m.embDim:(i+1)*m.embDim], dx.Data()[i*2*m.embDim:i*2*m.embDim+m.embDim])
		copy(di.Data()[i*m.embDim:(i+1)*m.embDim], dx.Data()[i*2*m.embDim+m.embDim:(i+1)*2*m.embDim])
	}
	m.userEmb.BackwardIDs(du)
	m.itemEmb.BackwardIDs(di)
	return loss
}

// EvalHitRate computes leave-one-out HR@10 over the dataset's eval cases:
// for each user, the held-out positive must rank in the top 10 among itself
// plus 99 sampled negatives (the paper's Best Hit Rate metric).
func EvalHitRate(m *NCF, ds *data.Ratings) float64 {
	pos, negs := ds.EvalCases()
	hits := 0
	for u := range pos {
		cand := append([]int{pos[u]}, negs[u]...)
		ids := make([][]int, len(cand))
		for i, item := range cand {
			ids[i] = []int{u, item}
		}
		scores := m.score(ids, false)
		if metrics.HitAtK(scores.Data(), 0, 10) {
			hits++
		}
	}
	return float64(hits) / float64(len(pos))
}
