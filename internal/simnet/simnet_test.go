package simnet

import (
	"testing"
	"time"
)

func TestTransferTimeMonotoneInBytes(t *testing.T) {
	for _, l := range []Link{TCP1G, TCP10G, TCP25G, RDMA25G} {
		prev := time.Duration(0)
		for _, n := range []int{0, 1 << 10, 1 << 20, 1 << 26} {
			d := l.TransferTime(n)
			if d < prev {
				t.Fatalf("%s: transfer time not monotone at %d bytes", l.Name, n)
			}
			prev = d
		}
	}
}

func TestMoreBandwidthIsFaster(t *testing.T) {
	const n = 10 << 20
	if TCP10G.TransferTime(n) >= TCP1G.TransferTime(n) {
		t.Fatal("10G should beat 1G")
	}
	if TCP25G.TransferTime(n) >= TCP10G.TransferTime(n) {
		t.Fatal("25G should beat 10G")
	}
}

func TestRDMABeatsTCP(t *testing.T) {
	// Figure 9's headline: RDMA > TCP at equal bandwidth, for both small
	// (latency-bound) and large (bandwidth-bound) messages.
	for _, n := range []int{64, 1 << 20, 100 << 20} {
		if RDMA25G.TransferTime(n) >= TCP25G.TransferTime(n) {
			t.Fatalf("RDMA not faster for %d bytes", n)
		}
	}
}

func TestTransferTimeKnownValue(t *testing.T) {
	// 1 Gbps at 0.70 efficiency = 87.5 MB/s. 87.5 MB should take ~1 s.
	d := TCP1G.TransferTime(87_500_000)
	if d < time.Second || d > time.Second+10*time.Millisecond {
		t.Fatalf("1G transfer of 87.5MB = %v, want ~1s", d)
	}
}

func TestAllreduceTimeProperties(t *testing.T) {
	c8 := NewCluster(TCP10G, 8)
	c1 := NewCluster(TCP10G, 1)
	if c1.AllreduceTime(1<<20) != 0 {
		t.Fatal("single worker allreduce must be free")
	}
	// Ring allreduce moves 2(n-1)/n of the data per worker: roughly
	// bandwidth-bound at 2x the vector size, independent of n for large n.
	big := c8.AllreduceTime(100 << 20)
	p2p := TCP10G.TransferTime(2 * (100 << 20) * 7 / 8)
	ratio := float64(big) / float64(p2p)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("allreduce cost off the 2(n-1)/n model: ratio %v", ratio)
	}
}

func TestAllreduceLatencyScalesWithN(t *testing.T) {
	small := 64
	c2 := NewCluster(TCP10G, 2).AllreduceTime(small)
	c8 := NewCluster(TCP10G, 8).AllreduceTime(small)
	if c8 <= c2 {
		t.Fatal("latency-bound allreduce should grow with worker count")
	}
}

func TestAllgatherTime(t *testing.T) {
	c := NewCluster(TCP10G, 4)
	uniform := c.AllgatherUniformTime(1 << 20)
	if uniform <= 0 {
		t.Fatal("allgather must cost time")
	}
	// Variable sizes: a single huge payload dominates.
	skewed := c.AllgatherTime([]int{100 << 20, 0, 0, 0})
	tiny := c.AllgatherTime([]int{1, 1, 1, 1})
	if skewed <= tiny {
		t.Fatal("skewed allgather should cost more")
	}
}

func TestAllgatherSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(TCP10G, 4).AllgatherTime([]int{1, 2})
}

func TestAllgatherCostExceedsAllreduceForEqualVolume(t *testing.T) {
	// Gathering n full payloads moves ~n/2 x more data than ring allreduce;
	// this is why Allreduce-capable compressors win at the same volume.
	c := NewCluster(TCP10G, 8)
	n := 10 << 20
	if c.AllgatherUniformTime(n) <= c.AllreduceTime(n) {
		t.Fatal("allgather should cost more than allreduce at equal per-worker bytes")
	}
}

func TestBroadcastTime(t *testing.T) {
	c := NewCluster(TCP10G, 4)
	if c.BroadcastTime(0) <= 0 {
		t.Fatal("broadcast latency must be positive for n>1")
	}
	if NewCluster(TCP10G, 1).BroadcastTime(1<<20) != 0 {
		t.Fatal("single-worker broadcast must be free")
	}
}

func TestPresetByName(t *testing.T) {
	l, err := PresetByName("tcp-10g")
	if err != nil || l.Name != "tcp-10g" {
		t.Fatalf("PresetByName: %v %v", l, err)
	}
	if _, err := PresetByName("modem"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(2 * time.Second)
	if c.Elapsed() != 3*time.Second {
		t.Fatalf("clock = %v", c.Elapsed())
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Fatal("reset failed")
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestNewClusterBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(TCP10G, 0)
}

func TestStarTopologyCosts(t *testing.T) {
	ring := NewCluster(TCP10G, 8)
	star := NewStarCluster(TCP10G, 8)
	n := 10 << 20
	// The server link serializes 2N payloads, so star allreduce must cost
	// far more than the balanced ring at equal volume.
	if star.AllreduceTime(n) <= ring.AllreduceTime(n) {
		t.Fatal("star allreduce should exceed ring allreduce")
	}
	sizes := make([]int, 8)
	for i := range sizes {
		sizes[i] = n
	}
	if star.AllgatherTime(sizes) <= ring.AllgatherTime(sizes) {
		t.Fatal("star allgather should exceed ring allgather")
	}
	if NewStarCluster(TCP10G, 1).AllreduceTime(n) != 0 {
		t.Fatal("single-worker star must be free")
	}
}
