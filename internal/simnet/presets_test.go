package simnet

import (
	"testing"
	"time"
)

// TestPresetCollectiveTimesPinned pins every preset's ring collective cost to
// hand-computed α-β values, so any silent drift in a preset's constants
// (bandwidth, step latency, efficiency) or in the cost formulas themselves
// fails loudly. The closed forms, with βeff = Gbps·Efficiency·10⁹/8 bytes/s:
//
//	allreduce(n, N)          = 2(N−1)·α + 2(N−1)·(n/N)/βeff
//	allgather_uniform(p, N)  = (N−1)·α + (N·p − p)/βeff
//	transfer(n)              = α + n/βeff
//
// Expected values below are those expressions evaluated by hand for N = 4,
// n = 4 MB allreduce, p = 250 kB allgather, 1 MiB transfer, truncated to
// whole nanoseconds exactly as time.Duration construction truncates. E.g.
// tcp-1g: βeff = 87.5 MB/s; allreduce = 6·150 µs + 6·(10⁶/87.5·10⁶) s =
// 900 µs + 68 571 428.57 ns = 69 471 428 ns.
func TestPresetCollectiveTimesPinned(t *testing.T) {
	const (
		workers        = 4
		allreduceBytes = 4_000_000
		allgatherPer   = 250_000
		transferBytes  = 1 << 20
	)
	cases := []struct {
		link      Link
		allreduce time.Duration
		allgather time.Duration
		transfer  time.Duration
	}{
		{TCP1G, 69471428 * time.Nanosecond, 9021428 * time.Nanosecond, 12133725 * time.Nanosecond},
		{TCP10G, 7577142 * time.Nanosecond, 1217142 * time.Nanosecond, 1318372 * time.Nanosecond},
		{TCP25G, 3462857 * time.Nanosecond, 702857 * time.Nanosecond, 599349 * time.Nanosecond},
		{RDMA25G, 2069052 * time.Nanosecond, 276631 * time.Nanosecond, 361204 * time.Nanosecond},
		{Infinite, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.link.Name, func(t *testing.T) {
			c := NewCluster(tc.link, workers)
			if got := c.AllreduceTime(allreduceBytes); got != tc.allreduce {
				t.Errorf("AllreduceTime(%d) = %v, want %v", allreduceBytes, got, tc.allreduce)
			}
			if got := c.AllgatherUniformTime(allgatherPer); got != tc.allgather {
				t.Errorf("AllgatherUniformTime(%d) = %v, want %v", allgatherPer, got, tc.allgather)
			}
			if got := tc.link.TransferTime(transferBytes); got != tc.transfer {
				t.Errorf("TransferTime(%d) = %v, want %v", transferBytes, got, tc.transfer)
			}
		})
	}
}

// TestPresetConstantsPinned freezes the preset table itself: the α-β test
// above would miss two constants drifting in compensating directions, so the
// raw fields are pinned too.
func TestPresetConstantsPinned(t *testing.T) {
	want := []Link{
		{Name: "tcp-1g", BandwidthGbps: 1, StepLatency: 150 * time.Microsecond, Efficiency: 0.70},
		{Name: "tcp-10g", BandwidthGbps: 10, StepLatency: 120 * time.Microsecond, Efficiency: 0.70},
		{Name: "tcp-25g", BandwidthGbps: 25, StepLatency: 120 * time.Microsecond, Efficiency: 0.70},
		{Name: "rdma-25g", BandwidthGbps: 25, StepLatency: 8 * time.Microsecond, Efficiency: 0.95},
		{Name: "infinite", BandwidthGbps: 1e9, StepLatency: 0, Efficiency: 1},
	}
	for _, w := range want {
		got, err := PresetByName(w.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got != w {
			t.Errorf("preset %s = %+v, want %+v", w.Name, got, w)
		}
	}
	if len(Presets) != len(want) {
		t.Errorf("Presets has %d entries, want %d", len(Presets), len(want))
	}
}
