// Package simnet models communication time for the system configurations the
// paper evaluates: 1/10/25 Gbps links with TCP or RDMA transports (§V-A,
// §V-E). Compute and compression costs are measured on the real substrate;
// only wire-transfer time is analytic, using standard cost formulas for the
// ring-based collectives (the same algorithms implemented for real in
// internal/comm).
//
// The model is the classic α-β formulation: each collective step costs a
// fixed per-message latency α (protocol + switch traversal) plus bytes/βeff
// where βeff is the link bandwidth derated by a transport efficiency factor.
// TCP pays higher α and lower efficiency than RDMA, which reproduces the
// paper's Figure 9 ordering.
package simnet

import (
	"fmt"
	"time"
)

// Link describes one network configuration.
type Link struct {
	Name          string
	BandwidthGbps float64
	// StepLatency is the per-message fixed cost of one collective step.
	StepLatency time.Duration
	// Efficiency derates nominal bandwidth for protocol overhead.
	Efficiency float64
}

// Preset network configurations matching the paper's testbed.
var (
	// TCP1G is the 1 Gbps setting of Figure 10.
	TCP1G = Link{Name: "tcp-1g", BandwidthGbps: 1, StepLatency: 150 * time.Microsecond, Efficiency: 0.70}
	// TCP10G is the default setting of the §V experiments.
	TCP10G = Link{Name: "tcp-10g", BandwidthGbps: 10, StepLatency: 120 * time.Microsecond, Efficiency: 0.70}
	// TCP25G is the 25 Gbps setting of Figure 1 and §V-A.
	TCP25G = Link{Name: "tcp-25g", BandwidthGbps: 25, StepLatency: 120 * time.Microsecond, Efficiency: 0.70}
	// RDMA25G is the RDMA transport of Figure 9.
	RDMA25G = Link{Name: "rdma-25g", BandwidthGbps: 25, StepLatency: 8 * time.Microsecond, Efficiency: 0.95}
	// Infinite disables communication cost (for ablations).
	Infinite = Link{Name: "infinite", BandwidthGbps: 1e9, StepLatency: 0, Efficiency: 1}
)

// Presets maps names to link configurations for CLI flags.
var Presets = map[string]Link{
	"tcp-1g":   TCP1G,
	"tcp-10g":  TCP10G,
	"tcp-25g":  TCP25G,
	"rdma-25g": RDMA25G,
	"infinite": Infinite,
}

// PresetByName returns a named preset.
func PresetByName(name string) (Link, error) {
	l, ok := Presets[name]
	if !ok {
		return Link{}, fmt.Errorf("simnet: unknown network preset %q", name)
	}
	return l, nil
}

// bytesPerSecond returns effective bandwidth in bytes/s.
func (l Link) bytesPerSecond() float64 {
	return l.BandwidthGbps * l.Efficiency * 1e9 / 8
}

// TransferTime is the point-to-point cost of moving n bytes in one message.
func (l Link) TransferTime(n int) time.Duration {
	if n < 0 {
		panic("simnet: negative transfer size")
	}
	sec := float64(n) / l.bytesPerSecond()
	return l.StepLatency + time.Duration(sec*float64(time.Second))
}

// Cluster models a group of workers on a shared link. Star selects the
// parameter-server topology (§IV-A): aggregation funnels through one central
// node whose link carries n payloads each way, instead of the ring's
// balanced 2(N−1)/N traffic.
type Cluster struct {
	Link Link
	N    int
	Star bool
}

// NewCluster returns a ring-topology cluster model; n must be positive.
func NewCluster(link Link, n int) Cluster {
	if n <= 0 {
		panic("simnet: cluster size must be positive")
	}
	return Cluster{Link: link, N: n}
}

// NewStarCluster returns a parameter-server-topology cluster model.
func NewStarCluster(link Link, n int) Cluster {
	c := NewCluster(link, n)
	c.Star = true
	return c
}

// AllreduceTime is the completion time of an allreduce of n bytes per
// worker: for the ring, 2(N−1) steps each moving n/N bytes; for the star,
// the server link serializes N inbound and N outbound payloads.
func (c Cluster) AllreduceTime(bytes int) time.Duration {
	if c.N == 1 {
		return 0
	}
	if c.Star {
		sec := 2 * float64(c.N) * float64(bytes) / c.Link.bytesPerSecond()
		return time.Duration(2*float64(c.Link.StepLatency) + sec*float64(time.Second))
	}
	steps := 2 * (c.N - 1)
	per := float64(bytes) / float64(c.N)
	sec := per / c.Link.bytesPerSecond() * float64(steps)
	return time.Duration(float64(c.Link.StepLatency)*float64(steps) + sec*float64(time.Second))
}

// AllgatherTime is the completion time of an allgather where worker i
// contributes sizes[i] bytes. Ring: N−1 steps; the global finish is
// dominated by the worker that relays the most bytes (every payload except
// the smallest traverses every position, so we bound by total − min). Star:
// the server receives all payloads once and retransmits the full set to
// each of the N workers.
func (c Cluster) AllgatherTime(sizes []int) time.Duration {
	if len(sizes) != c.N {
		panic(fmt.Sprintf("simnet: allgather sizes %d for %d workers", len(sizes), c.N))
	}
	if c.N == 1 {
		return 0
	}
	total, min := 0, sizes[0]
	for _, s := range sizes {
		total += s
		if s < min {
			min = s
		}
	}
	if c.Star {
		sec := (float64(total) + float64(c.N)*float64(total)) / c.Link.bytesPerSecond()
		return time.Duration(2*float64(c.Link.StepLatency) + sec*float64(time.Second))
	}
	relayed := total - min
	sec := float64(relayed) / c.Link.bytesPerSecond()
	return time.Duration(float64(c.Link.StepLatency)*float64(c.N-1) + sec*float64(time.Second))
}

// AllgatherUniformTime is AllgatherTime when every worker sends n bytes.
func (c Cluster) AllgatherUniformTime(bytes int) time.Duration {
	sizes := make([]int, c.N)
	for i := range sizes {
		sizes[i] = bytes
	}
	return c.AllgatherTime(sizes)
}

// BroadcastTime is the pipelined ring broadcast of n bytes.
func (c Cluster) BroadcastTime(bytes int) time.Duration {
	if c.N == 1 {
		return 0
	}
	sec := float64(bytes) / c.Link.bytesPerSecond()
	return time.Duration(float64(c.Link.StepLatency)*float64(c.N-1) + sec*float64(time.Second))
}

// Clock is a virtual wall clock accumulating measured compute durations and
// modeled communication durations; experiments report throughput in virtual
// seconds (DESIGN.md §6).
type Clock struct {
	elapsed time.Duration
}

// Advance adds d to the virtual clock.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simnet: negative clock advance")
	}
	c.elapsed += d
}

// Elapsed reports the virtual time so far.
func (c *Clock) Elapsed() time.Duration { return c.elapsed }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.elapsed = 0 }
