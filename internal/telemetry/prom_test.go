package telemetry

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// parsePhaseSeries extracts the bucket series (in emission order), _sum, and
// _count for one phase from a Prometheus text exposition.
func parsePhaseSeries(t *testing.T, out, phase string) (les []string, cums []int64, sum float64, count int64) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		phaseTag := `phase="` + phase + `"`
		switch {
		case strings.HasPrefix(line, "grace_phase_seconds_bucket{") && strings.Contains(line, phaseTag):
			i := strings.Index(line, `le="`)
			j := strings.Index(line[i+4:], `"`)
			les = append(les, line[i+4:i+4+j])
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad bucket line %q: %v", line, err)
			}
			cums = append(cums, v)
		case strings.HasPrefix(line, "grace_phase_seconds_sum{") && strings.Contains(line, phaseTag):
			var err error
			sum, err = strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
			if err != nil {
				t.Fatalf("bad sum line %q: %v", line, err)
			}
		case strings.HasPrefix(line, "grace_phase_seconds_count{") && strings.Contains(line, phaseTag):
			var err error
			count, err = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
		}
	}
	return les, cums, sum, count
}

func TestPrometheusLabelEscaping(t *testing.T) {
	reg := New()
	reg.AddMethodSteps("top_k \"0.01\"\\weird\nline", 5)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// %q must have escaped the quote, backslash, and newline — the raw forms
	// would corrupt the exposition format.
	want := `grace_autotune_method_steps_total{method="top_k \"0.01\"\\weird\nline"} 5`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped method label missing; output:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "weird") && strings.Count(line, "\n") != 0 {
			t.Fatalf("raw newline leaked into series line %q", line)
		}
	}
}

func TestPrometheusHistogramBucketBoundaries(t *testing.T) {
	reg := New()
	reg.Enable(true)
	// Land observations in known buckets: ≤1ns, ~1µs, ~1ms, and the top
	// bucket (recorded directly — Observe would need a real 9-minute wait).
	reg.phases[PhaseCompress].Record(1)
	reg.phases[PhaseCompress].Record(800 * time.Nanosecond)
	reg.phases[PhaseCompress].Record(time.Millisecond)
	reg.phases[PhaseCompress].Record(20 * time.Minute)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	les, cums, sum, count := parsePhaseSeries(t, buf.String(), "compress")
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if len(les) == 0 || les[len(les)-1] != "+Inf" {
		t.Fatalf("bucket series must end at +Inf, got les=%v", les)
	}
	if cums[len(cums)-1] != count {
		t.Fatalf("cumulative +Inf bucket %d != count %d", cums[len(cums)-1], count)
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("bucket counts must be cumulative: %v", cums)
		}
	}
	// le values (except +Inf) must be ascending upper bounds.
	var prev float64 = -1
	for _, le := range les[:len(les)-1] {
		v, err := strconv.ParseFloat(le, 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", le, err)
		}
		if v <= prev {
			t.Fatalf("le boundaries not ascending: %v", les)
		}
		prev = v
	}
	if wantSum := (float64(1) + 800 + 1e6 + float64(20*time.Minute)) / 1e9; sum < wantSum*0.999 || sum > wantSum*1.001 {
		t.Fatalf("sum = %g, want ≈%g", sum, wantSum)
	}

	// A phase with zero observations still emits a stable series set.
	les0, cums0, _, count0 := parsePhaseSeries(t, buf.String(), "decode")
	if count0 != 0 || len(les0) != 1 || les0[0] != "+Inf" || cums0[0] != 0 {
		t.Fatalf("empty phase series wrong: les=%v cums=%v count=%d", les0, cums0, count0)
	}
}

func TestPrometheusEmptyRegistry(t *testing.T) {
	reg := New()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every counter still emits (at zero), every phase emits its zero
	// histogram, and every non-comment line is "name[{labels}] value".
	for c := Counter(0); c < NumCounters; c++ {
		if !strings.Contains(out, "grace_"+c.String()+" 0") {
			t.Fatalf("empty registry missing counter %s:\n%s", c.String(), out)
		}
	}
	for sc := bufio.NewScanner(strings.NewReader(out)); sc.Scan(); {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndex(line, " ")
		if sp <= 0 {
			t.Fatalf("malformed series line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("series %q has non-numeric value: %v", line, err)
		}
	}
	if !strings.Contains(out, `grace_phase_seconds_bucket{phase="compress",le="+Inf"} 0`) {
		t.Fatal("empty registry should emit zero +Inf buckets")
	}
}

func TestPrometheusDeprecatedHeartbeatAlias(t *testing.T) {
	reg := New()
	reg.Add(CtrPeerDeaths, 3)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "grace_heartbeat_peer_deaths_total 3") {
		t.Fatalf("canonical heartbeat_peer_deaths_total missing:\n%s", out)
	}
	if !strings.Contains(out, "grace_peer_deaths_total 3") {
		t.Fatalf("deprecated alias grace_peer_deaths_total missing:\n%s", out)
	}
	if !strings.Contains(out, "Deprecated alias for grace_heartbeat_peer_deaths_total") {
		t.Fatal("alias must be marked deprecated in HELP")
	}
	// The snapshot carries only the canonical name.
	snap := reg.Snapshot()
	if snap.Counters["heartbeat_peer_deaths_total"] != 3 {
		t.Fatalf("snapshot missing canonical counter: %+v", snap.Counters)
	}
	if _, ok := snap.Counters["peer_deaths_total"]; ok {
		t.Fatal("snapshot must not duplicate the deprecated alias")
	}
}

// TestScraperVsWriterHistogramConsistency is the -race regression for the
// snapshot tear: a scrape taken mid-Record used to pair a counter value with
// a half-updated bucket set, so the +Inf cumulative count could disagree
// with _count. With Histogram.Snapshot every render is internally
// consistent no matter how hard the writers hammer.
func TestScraperVsWriterHistogramConsistency(t *testing.T) {
	reg := New()
	reg.Enable(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed + 1)
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.phases[PhaseCompress].Record(d)
				d = (d * 7) % time.Millisecond
			}
		}(w)
	}

	var lastCount int64
	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		_, cums, _, count := parsePhaseSeries(t, buf.String(), "compress")
		if len(cums) == 0 || cums[len(cums)-1] != count {
			t.Fatalf("scrape tore: +Inf cumulative %v != count %d", cums, count)
		}
		if count < lastCount {
			t.Fatalf("count went backwards: %d -> %d", lastCount, count)
		}
		lastCount = count

		snap := reg.phases[PhaseCompress].Snapshot()
		var cum int64
		for _, b := range snap.Buckets {
			cum += b
		}
		if cum != snap.Count {
			t.Fatalf("HistogramSnapshot inconsistent: bucket sum %d != count %d", cum, snap.Count)
		}
	}
	close(stop)
	wg.Wait()
}
