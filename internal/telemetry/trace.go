package telemetry

import (
	"bufio"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Tracer streams Chrome trace_event JSON ("[ {event}, {event}, ... ]") to a
// writer. The output loads in chrome://tracing and https://ui.perfetto.dev:
// each rank renders as a process, with the driver, codec lanes, and wire
// send/recv as threads (see the TID* constants).
//
// Events are "X" (complete) records emitted at span end, plus "i" (instant)
// records for Marks; timestamps are microseconds relative to the tracer's
// creation, keeping numbers small and the trace self-aligned. All methods are
// safe for concurrent use; one mutex serializes writers, which is fine at
// trace-enabled (diagnostic) rates.
type Tracer struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	base    time.Time
	first   bool
	named   map[int64]bool // pid<<8|tid pairs already given thread_name metadata
	scratch []byte
	err     error
}

// NewTracer wraps w in a Tracer. If w is an io.Closer, Close closes it after
// terminating the JSON array.
func NewTracer(w io.Writer) *Tracer {
	tr := &Tracer{
		w:       bufio.NewWriterSize(w, 64<<10),
		base:    time.Now(),
		first:   true,
		named:   make(map[int64]bool),
		scratch: make([]byte, 0, 256),
	}
	if c, ok := w.(io.Closer); ok {
		tr.c = c
	}
	tr.w.WriteString("[\n")
	return tr
}

// CreateTrace opens path for writing and returns a Tracer over it.
func CreateTrace(path string) (*Tracer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return NewTracer(f), nil
}

// Close terminates the JSON array, flushes, and closes the underlying writer
// when it is closable. The file stays Chrome-loadable even if the process
// dies before Close — trace viewers tolerate an unterminated array — but a
// clean Close yields strictly valid JSON.
func (tr *Tracer) Close() error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.w.WriteString("\n]\n")
	if err := tr.w.Flush(); err != nil && tr.err == nil {
		tr.err = err
	}
	if tr.c != nil {
		if err := tr.c.Close(); err != nil && tr.err == nil {
			tr.err = err
		}
	}
	return tr.err
}

// Err returns the first write error, if any.
func (tr *Tracer) Err() error {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.err
}

func trackName(tid int) string {
	switch tid {
	case TIDDriver:
		return "driver"
	case TIDWireSend:
		return "wire send"
	case TIDWireRecv:
		return "wire recv"
	default:
		return "lane " + strconv.Itoa(tid-1)
	}
}

// sep writes the record separator (everything after the first record is
// preceded by ",\n"). Caller holds mu.
func (tr *Tracer) sep() {
	if tr.first {
		tr.first = false
		return
	}
	tr.w.WriteString(",\n")
}

// meta emits process_name/thread_name metadata the first time a (pid, tid)
// track appears, so viewers show "rank 0 / lane 2" instead of bare numbers.
// Caller holds mu.
func (tr *Tracer) meta(pid, tid int) {
	key := int64(pid)<<8 | int64(tid&0xff)
	if tr.named[key] {
		return
	}
	tr.named[key] = true
	b := tr.scratch[:0]
	b = append(b, `{"ph":"M","name":"process_name","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"args":{"name":"rank `...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `"}}`...)
	b = append(b, ",\n"...)
	b = append(b, `{"ph":"M","name":"thread_name","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"args":{"name":`...)
	b = strconv.AppendQuote(b, trackName(tid))
	b = append(b, `}}`...)
	tr.sep()
	tr.w.Write(b)
	tr.scratch = b[:0]
}

// appendMicros renders a nanosecond count as microseconds with 3 decimals.
func appendMicros(b []byte, ns int64) []byte {
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	frac := ns % 1000
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// complete emits a ph:"X" event for a finished span.
func (tr *Tracer) complete(name string, pid, tid int, start time.Time, dur time.Duration, detail string) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.meta(pid, tid)
	b := tr.scratch[:0]
	b = append(b, `{"ph":"X","name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, start.Sub(tr.base).Nanoseconds())
	b = append(b, `,"dur":`...)
	b = appendMicros(b, dur.Nanoseconds())
	if detail != "" {
		b = append(b, `,"args":{"detail":`...)
		b = strconv.AppendQuote(b, detail)
		b = append(b, '}')
	}
	b = append(b, '}')
	tr.sep()
	if _, err := tr.w.Write(b); err != nil && tr.err == nil {
		tr.err = err
	}
	tr.scratch = b[:0]
}

// instant emits a ph:"i" event (process-scoped) for a discrete incident.
func (tr *Tracer) instant(name string, pid int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.meta(pid, TIDDriver)
	b := tr.scratch[:0]
	b = append(b, `{"ph":"i","s":"p","name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(TIDDriver), 10)
	b = append(b, `,"ts":`...)
	b = appendMicros(b, time.Since(tr.base).Nanoseconds())
	b = append(b, '}')
	tr.sep()
	if _, err := tr.w.Write(b); err != nil && tr.err == nil {
		tr.err = err
	}
	tr.scratch = b[:0]
}
