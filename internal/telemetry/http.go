package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler exposing the registry:
//
//	/metrics        Prometheus text exposition
//	/debug/vars     expvar JSON (Default registry mirrored under "grace")
//	/debug/pprof/*  net/http/pprof profiles (CPU, heap, goroutine, ...)
//
// pprof is mounted explicitly on this mux rather than relying on the
// net/http/pprof side effect, which only touches http.DefaultServeMux.
func (t *T) Handler() http.Handler {
	if t == Default {
		publishExpvar()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// MetricsServer is a running telemetry HTTP endpoint.
type MetricsServer struct {
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Addr is the bound listen address (useful with ":0").
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// Close shuts the endpoint down and waits for the serve loop to exit.
func (m *MetricsServer) Close() error {
	err := m.srv.Close()
	<-m.done
	return err
}

// Serve binds addr and serves Handler() on it in a background goroutine.
// The caller owns the returned server and should Close it on shutdown.
func (t *T) Serve(addr string) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{
		srv: &http.Server{
			Handler:           t.Handler(),
			ReadHeaderTimeout: 5 * time.Second,
		},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		m.srv.Serve(ln)
	}()
	return m, nil
}
