// Package telemetry is the repro's observability layer: a low-overhead,
// race-safe instrumentation registry threaded through the hot paths of the
// exchange engine, the collective transports, the trainer, and the
// checkpointer.
//
// Three kinds of signal flow through one registry (T):
//
//   - Counters: monotonic totals (bytes on the wire, faults injected, decode
//     fallbacks, heartbeat misses, checkpoint saves, pool hit rates). They
//     are plain atomic adds and are ALWAYS live — the cost is a few
//     nanoseconds and zero allocations, cheap enough for every hot path.
//   - Phase spans: nanosecond timings of one stage of a training step
//     (compress, encode, wire send/recv, decode, aggregate, ...). Spans feed
//     lock-free log2-bucket histograms and, when a Tracer is attached, Chrome
//     trace_event records. Span recording is gated behind Enable: when off,
//     Start returns the zero Time and Observe is a no-op, so the disabled
//     fast path costs one atomic load and allocates nothing.
//   - Marks: instant trace events (a fault injection, a peer death) that make
//     discrete incidents visible on the timeline; no-ops without a Tracer.
//
// Exporters: WritePrometheus renders the registry in Prometheus text format,
// Handler/Serve expose it at /metrics alongside net/http/pprof and an expvar
// mirror, Snapshot produces the machine-readable struct reused by the
// harness's structured run artifacts, and Tracer streams a Chrome-loadable
// trace (chrome://tracing, https://ui.perfetto.dev).
//
// The package-level Default registry is what the framework instruments; it is
// per-process, which makes it per-rank in multi-process runs (graceworker)
// and group-wide in single-process runs (gracetrain's in-process hub), with
// trace events keyed by rank either way.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase identifies one stage of a distributed training step. Phases are the
// unit of span accounting: each gets its own latency histogram and its own
// trace-event name.
type Phase uint8

const (
	// PhaseCompensate is the error-feedback memory work: compensate the raw
	// gradient with the residual, and update the residual from the local
	// decompression after compressing.
	PhaseCompensate Phase = iota
	// PhaseCompress is the codec's Compress call.
	PhaseCompress
	// PhaseEncode is payload staging between codec and collective (allreduce
	// working copies, recovery fault masks).
	PhaseEncode
	// PhaseWireSend is one transport-level frame write (TCP ring).
	PhaseWireSend
	// PhaseWireRecv is one transport-level frame read (TCP ring).
	PhaseWireRecv
	// PhaseCollective is time a worker spends inside a collective call —
	// wire time plus waiting for peers to arrive.
	PhaseCollective
	// PhaseDecode is the codec's Decompress of collective results.
	PhaseDecode
	// PhaseAggregate is the summation/averaging of decoded gradients.
	PhaseAggregate
	// PhaseRecovery is the DecodeFallback salvage round (mask exchange plus
	// uncompressed re-exchange of poisoned tensors).
	PhaseRecovery
	// PhaseCheckpoint is a crash-consistent snapshot capture + save.
	PhaseCheckpoint
	// PhaseCompute is the model forward/backward pass.
	PhaseCompute
	// PhaseFuse is the tensor-fusion pack/split work: copying per-tensor
	// payloads into a bucket's fused buffer before its collective and
	// splitting the fused result back per tensor after it.
	PhaseFuse
)

// NumPhases is the number of defined phases (array-sizing constant).
const NumPhases = int(PhaseFuse) + 1

var phaseNames = [NumPhases]string{
	"compensate", "compress", "encode", "wire_send", "wire_recv",
	"collective", "decode", "aggregate", "recovery", "checkpoint", "compute",
	"fuse",
}

// String names the phase as exported (metric label, trace-event name).
func (p Phase) String() string {
	if int(p) < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Counter identifies one monotonic total in the registry.
type Counter uint8

const (
	// CtrSteps counts completed Engine.Step exchanges.
	CtrSteps Counter = iota
	// CtrStepBytesSent / CtrStepBytesRecv are the step-level logical exchange
	// volume (the paper's per-worker data-volume metric, §V): compressed
	// payload bytes a worker contributes to / collects from collectives.
	CtrStepBytesSent
	CtrStepBytesRecv
	// CtrWireBytesSent / CtrWireBytesRecv are the transport-level totals:
	// every frame a transport actually puts on / takes off the wire,
	// including ring forwarding of other ranks' payloads and frame headers.
	CtrWireBytesSent
	CtrWireBytesRecv
	// CtrCollectiveOps counts collective operations entered.
	CtrCollectiveOps
	// CtrDecodeFaults / CtrDecodeFallbacks mirror the Engine's graceful-
	// degradation accounting: payloads that failed to decode, and tensors
	// re-exchanged uncompressed by the recovery round.
	CtrDecodeFaults
	CtrDecodeFallbacks
	// Fault injections by kind (comm.Faulty).
	CtrFaultDelays
	CtrFaultDrops
	CtrFaultCorruptions
	CtrFaultResets
	CtrFaultStalls
	// Liveness layer: pings written, silent intervals observed, and peers
	// declared dead (ErrPeerDead verdicts).
	CtrHeartbeatPings
	CtrHeartbeatMisses
	CtrPeerDeaths
	// Checkpointing: durable saves, bytes encoded into them, and snapshot
	// restores applied on resume.
	CtrCheckpointSaves
	CtrCheckpointBytes
	CtrCheckpointRestores
	// Scratch-buffer pool traffic: Get calls and the subset served by reuse.
	CtrPoolGets
	CtrPoolHits
	// Tensor fusion: buckets exchanged, tensors carried by multi-tensor
	// buckets, collective rounds saved versus the unfused per-tensor
	// schedule, and the payload bytes packed into multi-tensor buckets
	// (fill ratio = CtrFusionBucketBytes / (CtrFusionBuckets × TargetBytes)).
	CtrFusionBuckets
	CtrFusionTensorsFused
	CtrFusionRoundsSaved
	CtrFusionBucketBytes
	// Autotuning: policy decision rounds evaluated, per-tensor method switches
	// applied, EF-residual flush handoffs run on switches, and union decode
	// faults folded into candidate scoring as penalty evidence.
	CtrAutotuneDecisions
	CtrAutotuneSwitches
	CtrAutotuneFlushes
	CtrAutotuneFaultObs
	// Self-healing: transient-op retries absorbed by comm.Resilient, group
	// reform rendezvous completed (generation bumps), ring re-dials that
	// succeeded under a new generation, and snapshot bytes transferred to a
	// stateless rejoiner over the collective itself.
	CtrCommRetries
	CtrGroupReforms
	CtrRingReconnects
	CtrRejoinTransferBytes
	// Elastic membership: group reforms committed at a smaller world size
	// (evicting the ranks that missed the rejoin deadline), reforms that
	// absorbed pending joiners back in, and error-feedback residual sets
	// declared lost with an evicted rank (one per live EF-tensor per shrink).
	CtrElasticShrinks
	CtrElasticGrows
	CtrElasticEFDrops

	// NumCounters is the number of defined counters.
	NumCounters
)

var counterNames = [NumCounters]string{
	"steps_total",
	"step_bytes_sent_total",
	"step_bytes_recv_total",
	"wire_bytes_sent_total",
	"wire_bytes_recv_total",
	"collective_ops_total",
	"decode_faults_total",
	"decode_fallbacks_total",
	"faults_injected_delay_total",
	"faults_injected_drop_total",
	"faults_injected_corrupt_total",
	"faults_injected_reset_total",
	"faults_injected_stall_total",
	"heartbeat_pings_total",
	"heartbeat_misses_total",
	"heartbeat_peer_deaths_total",
	"checkpoint_saves_total",
	"checkpoint_bytes_total",
	"checkpoint_restores_total",
	"pool_gets_total",
	"pool_hits_total",
	"fusion_buckets_total",
	"fusion_tensors_fused_total",
	"fusion_rounds_saved_total",
	"fusion_bucket_bytes_total",
	"autotune_decisions_total",
	"autotune_switches_total",
	"autotune_flushes_total",
	"autotune_fault_observations_total",
	"comm_retries_total",
	"group_reforms_total",
	"ring_reconnects_total",
	"rejoin_transfer_bytes_total",
	"elastic_shrinks_total",
	"elastic_grows_total",
	"elastic_ef_drops_total",
}

// String names the counter as exported (without the "grace_" prefix).
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return "unknown"
}

// deprecatedCounterAliases maps a counter's canonical name to a deprecated
// name the Prometheus exporter still emits (same value) for one release, so
// dashboards migrate without a gap. The heartbeat family is uniformly
// heartbeat_*-prefixed as of this release; "peer_deaths_total" was the
// odd one out.
var deprecatedCounterAliases = map[string]string{
	"heartbeat_peer_deaths_total": "peer_deaths_total",
}

// NumStrategies sizes the per-communication-strategy byte accounting; the
// indices follow grace.Strategy (Allgather, Allreduce, Custom).
const NumStrategies = 3

var strategyNames = [NumStrategies]string{"allgather", "allreduce", "custom"}

// Trace track (tid) conventions, so every emitter lands spans on a stable,
// readable timeline row per rank: the comm driver / worker loop is track 0,
// codec lanes are 1..N, and transport wire I/O gets its own high tracks.
const (
	TIDDriver   = 0
	TIDWireSend = 98
	TIDWireRecv = 99
)

// T is one telemetry registry. All methods are safe for concurrent use and
// are no-ops on a nil receiver.
type T struct {
	enabled   atomic.Bool
	counters  [NumCounters]atomic.Int64
	stratSent [NumStrategies]atomic.Int64
	stratRecv [NumStrategies]atomic.Int64
	phases    [NumPhases]Histogram
	tracer    atomic.Pointer[Tracer]

	// methodMu guards methodSteps, the per-method tensor-step occupancy fed by
	// the autotuning engine (label → tensor-steps the label was active for).
	// The label set is the tuner's candidate list plus "flush" — bounded and
	// small — so a mutex-guarded map beats predeclaring counters per method.
	methodMu    sync.Mutex
	methodSteps map[string]int64

	// gaugeMu guards gauges: last-write-wins instantaneous values (world
	// size, group generation) exported alongside the counters. The name set
	// is small and static per process, so a map keeps the registry open to
	// new gauges without another enum.
	gaugeMu sync.Mutex
	gauges  map[string]int64
}

// Default is the process-wide registry the framework instruments. Counters
// are always live on it; span recording starts with Enable (or the cmds'
// -telemetry-addr / -trace flags).
var Default = New()

// New creates an empty registry with span recording disabled.
func New() *T { return &T{} }

// Enable turns span recording on or off. Counters are unaffected (always on).
func (t *T) Enable(on bool) {
	if t == nil {
		return
	}
	t.enabled.Store(on)
}

// Enabled reports whether span recording is on.
func (t *T) Enabled() bool { return t != nil && t.enabled.Load() }

// Add increments a counter. Always live; a few ns, zero allocations.
func (t *T) Add(c Counter, delta int64) {
	if t == nil || c >= NumCounters {
		return
	}
	t.counters[c].Add(delta)
}

// Value reads a counter.
func (t *T) Value(c Counter) int64 {
	if t == nil || c >= NumCounters {
		return 0
	}
	return t.counters[c].Load()
}

// AddStrategyBytes accounts step-level exchange volume against one
// communication strategy (index = int(grace.Strategy)).
func (t *T) AddStrategyBytes(strategy int, sent, recv int64) {
	if t == nil || strategy < 0 || strategy >= NumStrategies {
		return
	}
	t.stratSent[strategy].Add(sent)
	t.stratRecv[strategy].Add(recv)
}

// StrategyBytes reads one strategy's sent/recv totals.
func (t *T) StrategyBytes(strategy int) (sent, recv int64) {
	if t == nil || strategy < 0 || strategy >= NumStrategies {
		return 0, 0
	}
	return t.stratSent[strategy].Load(), t.stratRecv[strategy].Load()
}

// AddMethodSteps accounts tensor-step occupancy against one compression
// method label: "method m was the active choice for delta tensors this step".
// Fed by the autotuning engine; the label space stays bounded by the tuner's
// candidate set (plus "flush" for handoff steps).
func (t *T) AddMethodSteps(label string, delta int64) {
	if t == nil || delta == 0 {
		return
	}
	t.methodMu.Lock()
	if t.methodSteps == nil {
		t.methodSteps = make(map[string]int64)
	}
	t.methodSteps[label] += delta
	t.methodMu.Unlock()
}

// MethodSteps returns a copy of the per-method tensor-step occupancy map, or
// nil when nothing has been recorded.
func (t *T) MethodSteps() map[string]int64 {
	if t == nil {
		return nil
	}
	t.methodMu.Lock()
	defer t.methodMu.Unlock()
	if len(t.methodSteps) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.methodSteps))
	for k, v := range t.methodSteps {
		out[k] = v
	}
	return out
}

// SetGauge records an instantaneous value under name (exported as
// "grace_<name>" with gauge type). Last write wins.
func (t *T) SetGauge(name string, v int64) {
	if t == nil {
		return
	}
	t.gaugeMu.Lock()
	if t.gauges == nil {
		t.gauges = make(map[string]int64)
	}
	t.gauges[name] = v
	t.gaugeMu.Unlock()
}

// Gauge returns the last value set for name (0 if never set).
func (t *T) Gauge(name string) int64 {
	if t == nil {
		return 0
	}
	t.gaugeMu.Lock()
	defer t.gaugeMu.Unlock()
	return t.gauges[name]
}

// Gauges returns a copy of the gauge map, or nil when nothing has been set.
func (t *T) Gauges() map[string]int64 {
	if t == nil {
		return nil
	}
	t.gaugeMu.Lock()
	defer t.gaugeMu.Unlock()
	if len(t.gauges) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.gauges))
	for k, v := range t.gauges {
		out[k] = v
	}
	return out
}

// Start opens a span: it returns time.Now when span recording is enabled and
// the zero Time otherwise. Pass the result to Observe; a zero start makes
// Observe a no-op, so instrumented code needs no separate enabled check.
func (t *T) Start() time.Time {
	if t == nil || !t.enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Observe closes a span opened by Start: it records the elapsed time in the
// phase's histogram, emits a Chrome trace event when a Tracer is attached
// (pid = rank, tid = track, args.detail = detail), and returns the duration
// (0 when the span was never opened). detail is typically the tensor name;
// it labels trace events only — never metric series — so cardinality stays
// bounded.
func (t *T) Observe(p Phase, rank, tid int, detail string, start time.Time) time.Duration {
	if t == nil || start.IsZero() || int(p) >= NumPhases {
		return 0
	}
	d := time.Since(start)
	t.phases[p].Record(d)
	if tr := t.tracer.Load(); tr != nil {
		tr.complete(p.String(), rank, tid, start, d, detail)
	}
	return d
}

// PhaseHistogram exposes one phase's latency histogram (read-only use).
func (t *T) PhaseHistogram(p Phase) *Histogram {
	if t == nil || int(p) >= NumPhases {
		return nil
	}
	return &t.phases[p]
}

// Mark emits an instant trace event (a discrete incident: fault injected,
// peer declared dead, checkpoint saved). No-op without an attached Tracer.
func (t *T) Mark(name string, rank int) {
	if t == nil {
		return
	}
	if tr := t.tracer.Load(); tr != nil {
		tr.instant(name, rank)
	}
}

// SetTracer attaches (or, with nil, detaches) a Chrome trace writer. Span
// recording must also be enabled for complete events to flow.
func (t *T) SetTracer(tr *Tracer) {
	if t == nil {
		return
	}
	t.tracer.Store(tr)
}

// Reset zeroes every counter, strategy total, and histogram. The attached
// tracer and the enabled flag are left alone. Meant for tests and for
// delimiting harness sweeps.
func (t *T) Reset() {
	if t == nil {
		return
	}
	for i := range t.counters {
		t.counters[i].Store(0)
	}
	for i := 0; i < NumStrategies; i++ {
		t.stratSent[i].Store(0)
		t.stratRecv[i].Store(0)
	}
	for i := range t.phases {
		t.phases[i].Reset()
	}
	t.methodMu.Lock()
	t.methodSteps = nil
	t.methodMu.Unlock()
}
