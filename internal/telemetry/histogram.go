package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of log2 latency buckets. Bucket i counts
// durations d with 2^(i-1) ns < d <= 2^i ns (bucket 0 catches d <= 1ns);
// the top bucket absorbs everything past ~2^39 ns (~9 minutes), far beyond
// any phase this repo times.
const HistBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two bucket
// boundaries. Record is a few atomic adds — cheap enough for per-tensor,
// per-phase spans on the engine's hot path. The zero value is ready to use.
type Histogram struct {
	buckets [HistBuckets]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

func bucketIdx(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns)) // 0 -> 0, 1 -> 1, 2..3 -> 2, ...
	if i >= HistBuckets {
		i = HistBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound, in nanoseconds, of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= HistBuckets-1 {
		return int64(1) << (HistBuckets - 1)
	}
	return int64(1) << i
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := int64(d)
	h.buckets[bucketIdx(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNs returns the sum of all observed durations in nanoseconds.
func (h *Histogram) SumNs() int64 {
	if h == nil {
		return 0
	}
	return h.sumNs.Load()
}

// Bucket returns the observation count of bucket i.
func (h *Histogram) Bucket(i int) int64 {
	if h == nil || i < 0 || i >= HistBuckets {
		return 0
	}
	return h.buckets[i].Load()
}

// HistogramSnapshot is a self-consistent capture of one histogram: Count
// always equals the sum of Buckets, so a render derived from it (cumulative
// bucket counts, the +Inf series, _count) can never contradict itself the
// way independent atomic loads taken mid-Record could.
type HistogramSnapshot struct {
	Buckets [HistBuckets]int64
	Count   int64
	SumNs   int64
}

// Snapshot captures the histogram through the same atomic gate a Record
// passes: it reads count, then the buckets and sum, then count again, and
// retries while the two count reads disagree or the captured buckets do not
// sum to the count (a Record lands its bucket before its count, so a torn
// capture shows up as a mismatch). Under a sustained write storm the bounded
// retry falls back to deriving Count from the captured buckets — still
// internally consistent, merely a few in-flight observations behind the live
// totals. SumNs shares the capture but is only approximately aligned in the
// fallback case, which shifts a mean by at most the in-flight spans.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for attempt := 0; attempt < 8; attempt++ {
		c1 := h.count.Load()
		var cum int64
		for i := range s.Buckets {
			v := h.buckets[i].Load()
			s.Buckets[i] = v
			cum += v
		}
		s.SumNs = h.sumNs.Load()
		if c2 := h.count.Load(); c1 == c2 && cum == c2 {
			s.Count = c2
			return s
		}
	}
	var cum int64
	for _, v := range s.Buckets {
		cum += v
	}
	s.Count = cum
	return s
}

// QuantileNs estimates the q-quantile (0 <= q <= 1) in nanoseconds from a
// consistent snapshot of the bucket counts: it walks to the bucket containing
// the target rank and interpolates linearly inside it. Log2 buckets bound the
// error to the bucket width (a factor of two), which is plenty for "where
// does the time go" answers. Returns 0 when the histogram is empty.
func (h *Histogram) QuantileNs(q float64) int64 {
	if h == nil {
		return 0
	}
	s := h.Snapshot()
	return s.QuantileNs(q)
}

// QuantileNs estimates the q-quantile over the snapshot's buckets.
func (s *HistogramSnapshot) QuantileNs(q float64) int64 {
	total := s.Count
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i := 0; i < HistBuckets; i++ {
		n := s.Buckets[i]
		if n == 0 {
			continue
		}
		if seen+n > rank {
			lo := int64(0)
			if i > 0 {
				lo = BucketUpper(i - 1)
			}
			hi := BucketUpper(i)
			frac := float64(rank-seen+1) / float64(n)
			return lo + int64(float64(hi-lo)*frac)
		}
		seen += n
	}
	return BucketUpper(HistBuckets - 1)
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sumNs.Store(0)
}
