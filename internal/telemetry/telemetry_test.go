package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPhaseAndCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < NumPhases; p++ {
		n := Phase(p).String()
		if n == "" || n == "unknown" {
			t.Fatalf("phase %d has no name", p)
		}
		if seen[n] {
			t.Fatalf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" || n == "unknown" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
	if Phase(200).String() != "unknown" || Counter(200).String() != "unknown" {
		t.Fatal("out-of-range names should be unknown")
	}
}

func TestNilReceiverSafe(t *testing.T) {
	var nilT *T
	nilT.Add(CtrSteps, 1)
	nilT.AddStrategyBytes(1, 2, 3)
	nilT.Observe(PhaseCompress, 0, 0, "", time.Now())
	nilT.Mark("x", 0)
	nilT.Enable(true)
	nilT.Reset()
	nilT.SetTracer(nil)
	if nilT.Enabled() || nilT.Value(CtrSteps) != 0 {
		t.Fatal("nil receiver should read zero")
	}
	s := nilT.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil snapshot should be empty")
	}
	var buf bytes.Buffer
	if err := nilT.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestDisabledSpansAreNoops(t *testing.T) {
	reg := New()
	if !reg.Start().IsZero() {
		t.Fatal("Start should return zero time while disabled")
	}
	if d := reg.Observe(PhaseCompress, 0, 0, "", time.Time{}); d != 0 {
		t.Fatalf("Observe of zero start should return 0, got %v", d)
	}
	if reg.PhaseHistogram(PhaseCompress).Count() != 0 {
		t.Fatal("disabled span must not record")
	}
	reg.Enable(true)
	st := reg.Start()
	if st.IsZero() {
		t.Fatal("Start should return real time when enabled")
	}
	if reg.Observe(PhaseCompress, 0, 0, "t0", st) <= 0 {
		t.Fatal("enabled Observe should return positive duration")
	}
	if reg.PhaseHistogram(PhaseCompress).Count() != 1 {
		t.Fatal("enabled span must record")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	if h.QuantileNs(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 1000 observations of ~1µs and 10 of ~1ms: p50 lands in the µs decade,
	// p99.9-ish in the ms decade.
	for i := 0; i < 1000; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	if got := h.Count(); got != 1010 {
		t.Fatalf("count = %d, want 1010", got)
	}
	if got := h.SumNs(); got != 1000*1000+10*1000000 {
		t.Fatalf("sum = %d", got)
	}
	p50 := h.QuantileNs(0.5)
	if p50 < 512 || p50 > 2048 {
		t.Fatalf("p50 = %dns, want within the 1µs bucket neighborhood", p50)
	}
	p999 := h.QuantileNs(0.999)
	if p999 < 512*1024 || p999 > 2*1024*1024 {
		t.Fatalf("p99.9 = %dns, want within the 1ms bucket neighborhood", p999)
	}
	// Extremes must not panic or fall outside the observed range.
	if q := h.QuantileNs(0); q < 1 {
		t.Fatalf("q0 = %d", q)
	}
	if q := h.QuantileNs(1); q > 2*1024*1024 {
		t.Fatalf("q1 = %d", q)
	}
	h.Record(-time.Second) // negative durations clamp to bucket 0
	if h.Bucket(0) != 1 {
		t.Fatal("negative duration should land in bucket 0")
	}
	h.Record(time.Duration(1) << 62) // absurd duration clamps to top bucket
	if h.Bucket(HistBuckets-1) != 1 {
		t.Fatal("huge duration should land in the top bucket")
	}
}

func TestSnapshotOmitsZeroes(t *testing.T) {
	reg := New()
	reg.Enable(true)
	reg.Add(CtrDecodeFaults, 3)
	reg.AddStrategyBytes(0, 100, 200)
	reg.Observe(PhaseDecode, 0, 1, "", reg.Start())
	s := reg.Snapshot()
	if s.Counters["decode_faults_total"] != 3 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if _, ok := s.Counters["steps_total"]; ok {
		t.Fatal("zero counters should be omitted")
	}
	if s.Strategies["allgather"] != (StrategyBytesStat{SentBytes: 100, RecvBytes: 200}) {
		t.Fatalf("strategies = %v", s.Strategies)
	}
	if len(s.Strategies) != 1 {
		t.Fatal("zero strategies should be omitted")
	}
	ps, ok := s.Phases["decode"]
	if !ok || ps.Count != 1 || ps.TotalNs <= 0 || ps.P50Ns <= 0 || ps.P99Ns < ps.P50Ns {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatal(err)
	}
	reg.Reset()
	s = reg.Snapshot()
	if len(s.Counters)+len(s.Strategies)+len(s.Phases) != 0 {
		t.Fatalf("reset snapshot should be empty: %+v", s)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := New()
	reg.Enable(true)
	reg.Add(CtrHeartbeatMisses, 7)
	reg.AddStrategyBytes(1, 4096, 8192)
	reg.Observe(PhaseCompress, 0, 1, "t", reg.Start())
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"grace_telemetry_spans_enabled 1",
		"grace_heartbeat_misses_total 7",
		`grace_strategy_bytes_sent_total{strategy="allreduce"} 4096`,
		`grace_strategy_bytes_recv_total{strategy="allreduce"} 8192`,
		`grace_phase_seconds_count{phase="compress"} 1`,
		`grace_phase_seconds_bucket{phase="compress",le="+Inf"} 1`,
		`grace_phase_seconds_bucket{phase="decode",le="+Inf"} 0`,
		"# TYPE grace_phase_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative and end at the count.
	if !strings.Contains(out, `grace_phase_seconds_sum{phase="compress"}`) {
		t.Fatal("missing sum series")
	}
}

func TestTracerProducesValidJSON(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	reg := New()
	reg.Enable(true)
	reg.SetTracer(tr)
	reg.Observe(PhaseCompress, 0, 1, "tensor \"a\"", reg.Start())
	reg.Observe(PhaseWireSend, 1, TIDWireSend, "", reg.Start())
	reg.Mark("fault:corrupt", 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete, instant, meta int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["name"] == "compress" {
				if ev["args"].(map[string]any)["detail"] != `tensor "a"` {
					t.Fatalf("detail not round-tripped: %v", ev)
				}
				if ev["pid"].(float64) != 0 || ev["tid"].(float64) != 1 {
					t.Fatalf("pid/tid wrong: %v", ev)
				}
			}
		case "i":
			instant++
		case "M":
			meta++
		}
	}
	if complete != 2 || instant != 1 || meta == 0 {
		t.Fatalf("events: complete=%d instant=%d meta=%d", complete, instant, meta)
	}
}

func TestTracerUncleanFileStillLoadable(t *testing.T) {
	// A crash before Close leaves an unterminated array; appending the
	// terminator must yield valid JSON (what lenient viewers do implicitly).
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	reg := New()
	reg.Enable(true)
	reg.SetTracer(tr)
	reg.Observe(PhaseDecode, 0, 1, "", reg.Start())
	tr.mu.Lock()
	tr.w.Flush()
	tr.mu.Unlock()
	var events []map[string]any
	if err := json.Unmarshal(append(buf.Bytes(), "\n]"...), &events); err != nil {
		t.Fatalf("unterminated trace not recoverable: %v\n%s", err, buf.String())
	}
	if len(events) == 0 {
		t.Fatal("no events flushed")
	}
}

func TestServeEndpoints(t *testing.T) {
	reg := New()
	reg.Enable(true)
	reg.Add(CtrSteps, 1)
	reg.Observe(PhaseAggregate, 0, 0, "", reg.Start())
	srv, err := reg.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	code, body := get("/metrics")
	if code != 200 || !strings.Contains(body, "grace_steps_total 1") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if !strings.Contains(body, `grace_phase_seconds_count{phase="aggregate"} 1`) {
		t.Fatalf("/metrics missing phase series:\n%s", body)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	code, body = get("/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
}

func TestDefaultExpvarMirror(t *testing.T) {
	// Only the Default registry mirrors into expvar, and doing it twice (two
	// Handler calls) must not panic on duplicate Publish.
	_ = Default.Handler()
	_ = Default.Handler()
}

// TestConcurrentHammer drives counters, strategy bytes, spans, snapshots,
// Prometheus rendering, tracing, and Reset from many goroutines at once; its
// real assertion is `go test -race` finding no data races.
func TestConcurrentHammer(t *testing.T) {
	reg := New()
	reg.Enable(true)
	tr := NewTracer(io.Discard)
	reg.SetTracer(tr)
	const workers = 8
	const iters = 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				reg.Add(CtrWireBytesSent, int64(i))
				reg.AddStrategyBytes(i%NumStrategies, 10, 20)
				st := reg.Start()
				reg.Observe(Phase(i%NumPhases), w, w%4, "t", st)
				if i%37 == 0 {
					reg.Mark("mark", w)
				}
			}
		}()
	}
	// Concurrent readers (scraper + artifact writer) and one resetter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = reg.Snapshot()
			_ = reg.WritePrometheus(io.Discard)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			reg.Reset()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBenchArtifact(t *testing.T) {
	dir := t.TempDir()
	a := BenchArtifact{
		Name:             "StepExchange/engine",
		NsPerOp:          12345.6,
		AllocsPerOp:      2,
		SentBytes:        1 << 20,
		RecvBytes:        3 << 20,
		CompressionRatio: 0.05,
		Extra:            map[string]float64{"tensors": 4},
	}
	path, err := WriteBenchArtifact(dir, a)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "BENCH_StepExchange_engine.json") {
		t.Fatalf("path = %s", path)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back BenchArtifact
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != a.Name || back.SentBytes != a.SentBytes || back.Extra["tensors"] != 4 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

// BenchmarkDisabledSpan proves the disabled fast path allocates nothing and
// costs only the atomic enabled check.
func BenchmarkDisabledSpan(b *testing.B) {
	reg := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := reg.Start()
		reg.Observe(PhaseCompress, 0, 0, "tensor", st)
		reg.Add(CtrWireBytesSent, 1)
	}
}

// BenchmarkEnabledSpanNoTrace measures span cost with histograms live but no
// tracer attached (the -telemetry-addr steady state).
func BenchmarkEnabledSpanNoTrace(b *testing.B) {
	reg := New()
	reg.Enable(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := reg.Start()
		reg.Observe(PhaseCompress, 0, 0, "tensor", st)
	}
}

func ExamplePhase() {
	fmt.Println(PhaseCompress, PhaseWireRecv, PhaseCheckpoint)
	// Output: compress wire_recv checkpoint
}
