package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
)

// BenchArtifact is one machine-readable benchmark result, written as
// BENCH_<name>.json so the perf trajectory is tracked across PRs instead of
// living only in scrollback. Zero-valued optional fields are omitted.
type BenchArtifact struct {
	Name             string             `json:"name"`
	NsPerOp          float64            `json:"ns_per_op,omitempty"`
	AllocsPerOp      float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp       float64            `json:"bytes_per_op,omitempty"`
	SentBytes        int64              `json:"sent_bytes,omitempty"`
	RecvBytes        int64              `json:"recv_bytes,omitempty"`
	CompressionRatio float64            `json:"compression_ratio,omitempty"`
	Extra            map[string]float64 `json:"extra,omitempty"`
}

// artifactSlug maps a benchmark name to a filesystem-safe BENCH_ suffix.
func artifactSlug(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		default:
			return '_'
		}
	}, name)
}

// WriteBenchArtifact writes a as <dir>/BENCH_<name>.json (creating dir as
// needed) and returns the path written.
func WriteBenchArtifact(dir string, a BenchArtifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	buf, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+artifactSlug(a.Name)+".json")
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}
