package xrank

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// FlightDump is the postmortem artifact written when a fault fires: the last
// window of ring events, the process-wide telemetry snapshot, and a goroutine
// profile — everything needed to reconstruct what every rank (in-process) or
// this rank (multi-process) was doing when the fault hit.
type FlightDump struct {
	Reason     string              `json:"reason"`
	Error      string              `json:"error,omitempty"`
	Time       string              `json:"time"`
	WindowNs   int64               `json:"window_ns"`
	Generation int64               `json:"generation"`
	Events     []Event             `json:"events"`
	Telemetry  *telemetry.Snapshot `json:"telemetry,omitempty"`
	Goroutines string              `json:"goroutines,omitempty"`
}

// ConfigureFlight arms the flight recorder: dumps go to dir, covering the
// trailing window of events, with at most maxDumps files per process
// (maxDumps <= 0 keeps the current limit; window <= 0 keeps the current
// window). An empty dir disarms it.
func (r *Recorder) ConfigureFlight(dir string, window time.Duration, maxDumps int) {
	if dir == "" {
		r.flightDir.Store(nil)
		return
	}
	d := dir
	r.flightDir.Store(&d)
	if window > 0 {
		r.windowNs.Store(int64(window))
	}
	if maxDumps > 0 {
		r.maxDumps.Store(int64(maxDumps))
	}
}

// OnFlightDump registers a hook invoked (synchronously) after each dump is
// written; used by tests and the harness to collect dump paths. A nil fn
// clears the hook.
func (r *Recorder) OnFlightDump(fn func(path, reason string)) {
	if fn == nil {
		r.onDump.Store(nil)
		return
	}
	r.onDump.Store(&fn)
}

// Flight freezes the trailing event window and writes a FLIGHT_*.json dump.
// It is safe (and intended) to call from error paths on any goroutine: it is
// a no-op unless ConfigureFlight armed a directory, rate-limited to one dump
// per second and maxDumps per process so an abort storm (every rank's every
// op failing at once) produces one readable artifact, not thousands. Returns
// the path written, or "" when suppressed.
func (r *Recorder) Flight(reason string, cause error) string {
	dirp := r.flightDir.Load()
	if dirp == nil {
		return ""
	}
	now := time.Now().UnixNano()
	last := r.lastDump.Load()
	if last != 0 && now-last < int64(time.Second) {
		return ""
	}
	if !r.lastDump.CompareAndSwap(last, now) {
		return "" // another goroutine is dumping
	}
	seq := r.dumps.Add(1)
	if seq > r.maxDumps.Load() {
		return ""
	}

	r.dumpMu.Lock()
	defer r.dumpMu.Unlock()

	window := r.windowNs.Load()
	all, _ := r.Events(0)
	cut := now - window
	evs := all[:0]
	for _, ev := range all {
		if ev.T0Ns >= cut {
			evs = append(evs, ev)
		}
	}

	var gorout bytes.Buffer
	if p := pprof.Lookup("goroutine"); p != nil {
		p.WriteTo(&gorout, 1)
	}

	snap := telemetry.Default.Snapshot()
	dump := FlightDump{
		Reason:     reason,
		Time:       time.Unix(0, now).UTC().Format(time.RFC3339Nano),
		WindowNs:   window,
		Generation: r.gen.Load(),
		Events:     evs,
		Telemetry:  &snap,
		Goroutines: gorout.String(),
	}
	if cause != nil {
		dump.Error = cause.Error()
	}

	path := filepath.Join(*dirp, fmt.Sprintf("FLIGHT_%03d_%s.json", seq, sanitizeReason(reason)))
	b, err := json.MarshalIndent(&dump, "", "  ")
	if err != nil {
		return ""
	}
	b = append(b, '\n')
	if err := os.MkdirAll(*dirp, 0o755); err != nil {
		return ""
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return ""
	}
	if fnp := r.onDump.Load(); fnp != nil {
		(*fnp)(path, reason)
	}
	return path
}

// Dumps reports how many flight dumps have been attempted (post rate limit).
func (r *Recorder) Dumps() int64 { return r.dumps.Load() }

func sanitizeReason(s string) string {
	if s == "" {
		return "fault"
	}
	return strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_':
			return c
		default:
			return '_'
		}
	}, s)
}
