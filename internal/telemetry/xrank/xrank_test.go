package xrank

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func enabledRecorder(capacity int) *Recorder {
	r := NewRecorder()
	if capacity > 0 {
		r.SetCapacity(capacity)
	}
	r.SetEnabled(true)
	return r
}

func TestRecorderDisabledIsNoop(t *testing.T) {
	r := NewRecorder()
	if r.Enabled() {
		t.Fatal("new recorder should start disabled")
	}
	if r.Start() != 0 {
		t.Fatal("Start should return 0 while disabled")
	}
	r.RecordOp(0, OpAllreduce, 1, 10, 123) // t0 nonzero but disabled
	r.RecordFault(0, OpAllreduce, 1, FaultError)
	if evs, _ := r.Events(0); len(evs) != 0 {
		t.Fatalf("disabled recorder stored %d events", len(evs))
	}
}

func TestRecordAndCutWindows(t *testing.T) {
	r := enabledRecorder(0)
	r.SetGeneration(3)
	t0 := r.Start()
	if t0 == 0 {
		t.Fatal("Start returned 0 while enabled")
	}
	r.RecordOp(1, OpAllreduce, 7, 4096, t0)
	r.RecordStep(1, 42, 9000, t0)
	r.RecordFault(2, OpAllgather, 8, FaultRetry)

	evs, max := r.Events(0)
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	op, step, fault := evs[0], evs[1], evs[2]
	if op.Kind != KindOp || op.Rank != 1 || op.Op != OpAllreduce || op.Seq != 7 ||
		op.Bytes != 4096 || op.Gen != 3 || op.T0Ns != t0 || op.DurNs < 0 {
		t.Fatalf("bad op event: %+v", op)
	}
	if step.Kind != KindStep || step.Seq != 42 || step.Aux != 9000 {
		t.Fatalf("bad step event: %+v", step)
	}
	if fault.Kind != KindFault || fault.Rank != 2 || fault.Aux != FaultRetry || fault.T0Ns == 0 {
		t.Fatalf("bad fault event: %+v", fault)
	}

	// A second cut from max sees only newer events.
	if evs2, _ := r.Events(max); len(evs2) != 0 {
		t.Fatalf("window re-read returned %d events, want 0", len(evs2))
	}
	r.RecordOp(0, OpBarrier, 9, 0, r.Start())
	evs3, _ := r.Events(max)
	if len(evs3) != 1 || evs3[0].Op != OpBarrier {
		t.Fatalf("incremental window wrong: %+v", evs3)
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	r := enabledRecorder(8)
	for i := 0; i < 20; i++ {
		r.RecordOp(0, OpAllreduce, int64(i), 0, r.Start())
	}
	evs, _ := r.Events(0)
	if len(evs) != 8 {
		t.Fatalf("got %d events, want ring capacity 8", len(evs))
	}
	for i, ev := range evs {
		if want := int64(12 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (newest 8 kept in order)", i, ev.Seq, want)
		}
	}
}

// TestConcurrentScrapeWhileRecording is the -race regression for the seqlock
// slots: readers must never observe a half-written event, and all slot access
// is atomic.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := enabledRecorder(64) // tiny ring to force constant wraparound
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.RecordOp(rank, OpAllreduce, int64(i), int64(i), r.Start())
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		evs, _ := r.Events(0)
		for _, ev := range evs {
			if ev.Kind != KindOp || ev.Op != OpAllreduce || ev.Rank < 0 || ev.Rank > 3 {
				t.Errorf("torn event escaped seq validation: %+v", ev)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestWindowCodecRoundTrip(t *testing.T) {
	evs := []Event{
		{Kind: KindOp, Rank: 2, Op: OpAllgather, Seq: 11, Gen: 1, T0Ns: 1 << 40, DurNs: 12345, Bytes: 99},
		{Kind: KindStep, Rank: 2, Op: OpStep, Seq: 5, T0Ns: -3, DurNs: 0, Aux: 7},
	}
	rank, got, err := DecodeWindow(EncodeWindow(2, evs))
	if err != nil || rank != 2 {
		t.Fatalf("decode: rank=%d err=%v", rank, err)
	}
	if len(got) != len(evs) {
		t.Fatalf("got %d events, want %d", len(got), len(evs))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Fatalf("event %d mismatch: %+v != %+v", i, got[i], evs[i])
		}
	}
}

func TestDecodeWindowHostileInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":      nil,
		"bad magic":  {0x00, windowVersion, 0, 0},
		"bad ver":    {windowMagic, 99, 0, 0},
		"truncated":  EncodeWindow(1, []Event{{Kind: KindOp, Seq: 1}})[:6],
		"huge count": append([]byte{windowMagic, windowVersion, 0}, 0xff, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, b := range cases {
		if _, _, err := DecodeWindow(b); !errors.Is(err, ErrBadWindow) {
			t.Errorf("%s: err = %v, want ErrBadWindow", name, err)
		}
	}
}

// fakeGather simulates the collective plane for a 2-rank group where this
// test plays rank 0 and a canned window stands in for rank 1.
type fakeGather struct{ peer []byte }

func (f fakeGather) AllgatherBytes(b []byte) ([][]byte, error) {
	return [][]byte{b, f.peer}, nil
}

func TestAggregatorMergesRanks(t *testing.T) {
	r := enabledRecorder(0)
	r.RecordOp(0, OpAllreduce, 1, 10, r.Start())
	r.RecordOp(1, OpAllreduce, 1, 10, r.Start()) // in-process hub: shared ring

	peer := EncodeWindow(1, []Event{{Kind: KindOp, Rank: 1, Op: OpAllreduce, Seq: 1, DurNs: 5}})
	a := NewAggregator(r, 0, 2)
	if err := a.Exchange(fakeGather{peer: peer}); err != nil {
		t.Fatal(err)
	}
	merged := a.Merged()
	if len(merged) != 2 {
		t.Fatalf("merged %d events, want 2 (own rank-0 + peer rank-1)", len(merged))
	}
	var ranks []int64
	for _, ev := range merged {
		ranks = append(ranks, ev.Rank)
	}
	if !(ranks[0] == 0 && ranks[1] == 1) && !(ranks[0] == 1 && ranks[1] == 0) {
		t.Fatalf("merged ranks = %v", ranks)
	}

	// Second exchange: window already cut, own contribution now empty.
	if err := a.Exchange(fakeGather{peer: EncodeWindow(1, nil)}); err != nil {
		t.Fatal(err)
	}
	if len(a.Merged()) != 2 {
		t.Fatalf("re-exchange duplicated events: %d", len(a.Merged()))
	}
}

func TestAggregatorNonRootKeepsNothing(t *testing.T) {
	r := enabledRecorder(0)
	r.RecordOp(1, OpAllreduce, 1, 10, r.Start())
	a := NewAggregator(r, 1, 2)
	if err := a.Exchange(fakeGather{peer: EncodeWindow(0, nil)}); err != nil {
		t.Fatal(err)
	}
	if a.Merged() != nil {
		t.Fatal("non-root aggregator accumulated events")
	}
}

// synthSkew builds a merged stream for `size` ranks over `steps` steps where
// rank `slow` always arrives last: it waits 1ms in each collective while the
// others wait 5ms.
func synthSkew(size, steps, slow int) []Event {
	var evs []Event
	base := int64(1e12)
	stepNs := int64(20e6)
	for s := 0; s < steps; s++ {
		t0 := base + int64(s)*stepNs
		for r := 0; r < size; r++ {
			evs = append(evs, Event{Kind: KindStep, Rank: int64(r), Seq: int64(s), T0Ns: t0, DurNs: stepNs - 1e6})
			for op := 0; op < 3; op++ {
				wait := int64(5e6)
				if r == slow {
					wait = 1e6
				}
				evs = append(evs, Event{
					Kind: KindOp, Rank: int64(r), Op: OpAllreduce,
					Seq: int64(s*3 + op), T0Ns: t0 + int64(op)*3e6, DurNs: wait, Bytes: 128,
				})
			}
		}
	}
	return evs
}

func TestComputeSkewAttributesDelayedRank(t *testing.T) {
	evs := synthSkew(4, 10, 2)
	rows := ComputeSkew(evs, 4)
	if len(rows) != 10 {
		t.Fatalf("got %d skew rows, want 10", len(rows))
	}
	for _, row := range rows {
		if row.Straggler != 2 {
			t.Fatalf("step %d attributed straggler %d, want 2 (%+v)", row.Step, row.Straggler, row)
		}
		if row.SkewNs != 3*(5e6-1e6) {
			t.Fatalf("step %d skew = %d, want %d", row.Step, row.SkewNs, int64(3*(5e6-1e6)))
		}
		if row.Ops != 12 {
			t.Fatalf("step %d ops = %d, want 12", row.Step, row.Ops)
		}
	}
	counts := StragglerCounts(rows, 4)
	if counts[2] != 10 {
		t.Fatalf("straggler counts = %v, want rank 2 at 10", counts)
	}
}

func TestComputeSkewDropsPartialSteps(t *testing.T) {
	evs := synthSkew(2, 3, 1)
	// Strip rank 1's ops from step 2: that step is incomplete and must drop.
	var filtered []Event
	for _, ev := range evs {
		if ev.Kind == KindOp && ev.Rank == 1 && ev.Seq >= 6 {
			continue
		}
		filtered = append(filtered, ev)
	}
	rows := ComputeSkew(filtered, 2)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (partial step dropped)", len(rows))
	}
	// Ops outside any step window must not be assigned (e.g. the
	// aggregation exchange itself runs between steps).
	between := append(evs, Event{Kind: KindOp, Rank: 0, Op: OpAllgather, Seq: 99,
		T0Ns: 1e12 + 100*20e6, DurNs: 1e6})
	if got := ComputeSkew(between, 2); len(got) != 3 {
		t.Fatalf("out-of-window op changed row count: %d", len(got))
	}
}

func TestFlightDumpWritesAndRateLimits(t *testing.T) {
	r := enabledRecorder(0)
	dir := t.TempDir()
	r.ConfigureFlight(dir, 10*time.Second, 4)
	r.RecordOp(1, OpAllreduce, 3, 64, r.Start())
	r.RecordFault(1, OpAllreduce, 3, FaultError)

	path := r.Flight("peer_dead", errors.New("rank 1 allreduce: boom"))
	if path == "" {
		t.Fatal("Flight returned empty path")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	if err := json.Unmarshal(b, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.Reason != "peer_dead" || dump.Error == "" {
		t.Fatalf("dump header wrong: reason=%q error=%q", dump.Reason, dump.Error)
	}
	if len(dump.Events) != 2 {
		t.Fatalf("dump has %d events, want 2", len(dump.Events))
	}
	if dump.Telemetry == nil {
		t.Fatal("dump missing telemetry snapshot")
	}
	if !bytes.Contains([]byte(dump.Goroutines), []byte("goroutine")) {
		t.Fatal("dump missing goroutine profile")
	}

	// Immediate second dump is rate-limited away.
	if p2 := r.Flight("peer_dead", nil); p2 != "" {
		t.Fatalf("second dump within rate window wrote %q", p2)
	}
}

func TestFlightDisarmed(t *testing.T) {
	r := enabledRecorder(0)
	if p := r.Flight("x", nil); p != "" {
		t.Fatalf("unconfigured flight wrote %q", p)
	}
}

func TestWriteArtifacts(t *testing.T) {
	r := enabledRecorder(0)
	a := NewAggregator(r, 0, 4)
	a.merged = synthSkew(4, 5, 1)
	a.merged = append(a.merged, Event{Kind: KindFault, Rank: 1, Op: OpAllreduce, Seq: 7,
		Aux: FaultError, T0Ns: 1e12 + 1})
	dir := t.TempDir()
	if err := a.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}

	tb, err := os.ReadFile(filepath.Join(dir, TraceFile))
	if err != nil {
		t.Fatal(err)
	}
	var trace []map[string]any
	if err := json.Unmarshal(tb, &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawFault, sawProcess bool
	for _, ev := range trace {
		if name, _ := ev["name"].(string); name == "fault:error:allreduce" {
			if pid, _ := ev["pid"].(float64); pid == 1 {
				sawFault = true
			}
		}
		if name, _ := ev["name"].(string); name == "process_name" {
			sawProcess = true
		}
	}
	if !sawFault {
		t.Fatal("merged trace does not show the faulting op on the faulting rank")
	}
	if !sawProcess {
		t.Fatal("merged trace missing process_name metadata")
	}

	sb, err := os.ReadFile(filepath.Join(dir, SkewFile))
	if err != nil {
		t.Fatal(err)
	}
	var skew SkewSummary
	if err := json.Unmarshal(sb, &skew); err != nil {
		t.Fatal(err)
	}
	if skew.Steps != 5 || skew.StragglerSteps[1] != 5 {
		t.Fatalf("skew summary wrong: %+v", skew)
	}

	// Non-root write is a no-op.
	other := NewAggregator(r, 1, 4)
	dir2 := t.TempDir()
	if err := other.WriteArtifacts(dir2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, TraceFile)); !os.IsNotExist(err) {
		t.Fatal("non-root rank wrote trace artifact")
	}
}

func TestOpAndFaultNames(t *testing.T) {
	if OpName(OpAllreduce) != "allreduce" || OpName(999) != "?" || OpName(-1) != "?" {
		t.Fatal("OpName mapping broken")
	}
	if OpCode("allgather") != OpAllgather || OpCode("nope") != 0 {
		t.Fatal("OpCode mapping broken")
	}
	if FaultName(FaultPeerDead) != "peer_dead" || FaultName(42) != "?" {
		t.Fatal("FaultName mapping broken")
	}
}
