package xrank

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Window wire format: a magic/version byte pair, the sender's rank and event
// count as uvarints, then each event as 9 varints. Compact enough to
// piggyback on the collective plane at aggregation cadence without moving
// the wire-volume needle, and decoded defensively (count capped against the
// buffer length) because in multi-process runs it crosses the network.
const (
	windowMagic   = 0x78 // 'x'
	windowVersion = 1
	// maxWindowEvents bounds what a decoder will allocate for one window,
	// independent of the (hostile) declared count.
	maxWindowEvents = 1 << 20
)

// ErrBadWindow reports a malformed or truncated window buffer.
var ErrBadWindow = errors.New("xrank: malformed event window")

// EncodeWindow serializes rank's events into the window wire format.
func EncodeWindow(rank int, evs []Event) []byte {
	buf := make([]byte, 0, 2+10+len(evs)*20)
	buf = append(buf, windowMagic, windowVersion)
	buf = binary.AppendUvarint(buf, uint64(rank))
	buf = binary.AppendUvarint(buf, uint64(len(evs)))
	for _, ev := range evs {
		buf = binary.AppendVarint(buf, ev.Kind)
		buf = binary.AppendVarint(buf, ev.Rank)
		buf = binary.AppendVarint(buf, ev.Op)
		buf = binary.AppendVarint(buf, ev.Seq)
		buf = binary.AppendVarint(buf, ev.Gen)
		buf = binary.AppendVarint(buf, ev.T0Ns)
		buf = binary.AppendVarint(buf, ev.DurNs)
		buf = binary.AppendVarint(buf, ev.Aux)
		buf = binary.AppendVarint(buf, ev.Bytes)
	}
	return buf
}

// DecodeWindow parses a window buffer. It never trusts the declared count:
// allocation is bounded by both maxWindowEvents and what the remaining bytes
// could possibly hold (≥ 9 bytes per event).
func DecodeWindow(b []byte) (rank int, evs []Event, err error) {
	if len(b) < 2 || b[0] != windowMagic || b[1] != windowVersion {
		return 0, nil, ErrBadWindow
	}
	rest := b[2:]
	r, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, ErrBadWindow
	}
	rest = rest[n:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return 0, nil, ErrBadWindow
	}
	rest = rest[n:]
	if count > maxWindowEvents || count > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("%w: count %d exceeds buffer", ErrBadWindow, count)
	}
	evs = make([]Event, 0, count)
	for i := uint64(0); i < count; i++ {
		var ev Event
		fields := [...]*int64{&ev.Kind, &ev.Rank, &ev.Op, &ev.Seq, &ev.Gen,
			&ev.T0Ns, &ev.DurNs, &ev.Aux, &ev.Bytes}
		for _, f := range fields {
			v, n := binary.Varint(rest)
			if n <= 0 {
				return 0, nil, ErrBadWindow
			}
			*f = v
			rest = rest[n:]
		}
		evs = append(evs, ev)
	}
	return int(r), evs, nil
}

// Gatherer is the slice of the collective plane the aggregator needs. Any
// comm.Collective satisfies it; taking the narrow structural interface keeps
// xrank below comm in the import graph.
type Gatherer interface {
	AllgatherBytes(b []byte) ([][]byte, error)
}

// Aggregator cuts this rank's event windows and merges all ranks' windows on
// rank 0 via a piggybacked AllgatherBytes on the caller's existing collective
// handle — no extra connections, one extra lockstep op per cadence tick.
// Exchange must therefore be called at the same step on every rank (the
// trainer calls it at globalStep % every == 0, which is lockstep by
// construction).
type Aggregator struct {
	rec        *Recorder
	rank, size int
	since      int64
	merged     []Event // rank 0 only
}

// NewAggregator returns an aggregator for this rank over rec.
func NewAggregator(rec *Recorder, rank, size int) *Aggregator {
	return &Aggregator{rec: rec, rank: rank, size: size}
}

// Exchange cuts the window of this rank's events since the previous call and
// allgathers it; rank 0 accumulates the merged stream. Collective — every
// rank must call it at the same point in the op sequence.
func (a *Aggregator) Exchange(g Gatherer) error {
	all, max := a.rec.Events(a.since)
	a.since = max
	own := make([]Event, 0, len(all))
	for _, ev := range all {
		if int(ev.Rank) == a.rank {
			own = append(own, ev)
		}
	}
	parts, err := g.AllgatherBytes(EncodeWindow(a.rank, own))
	if err != nil {
		return err
	}
	if a.rank != 0 {
		return nil
	}
	for _, p := range parts {
		_, evs, derr := DecodeWindow(p)
		if derr != nil {
			return derr
		}
		a.merged = append(a.merged, evs...)
	}
	return nil
}

// Merged returns rank 0's accumulated cross-rank event stream (nil on other
// ranks).
func (a *Aggregator) Merged() []Event { return a.merged }

// Size returns the group size the aggregator was built for.
func (a *Aggregator) Size() int { return a.size }

// SkewRow is one step's cross-rank imbalance verdict. WaitNs[r] is rank r's
// total time blocked in transport rendezvous during the step; the straggler
// is the rank that waited LEAST (it arrived last, everyone else waited for
// it); SkewNs is max−min.
type SkewRow struct {
	Step      int64   `json:"step"`
	Straggler int     `json:"straggler"`
	WaitNs    []int64 `json:"wait_ns"`
	SkewNs    int64   `json:"skew_ns"`
	Ops       int     `json:"ops"`
}

// ComputeSkew derives per-step skew rows from a merged event stream.
//
// Assignment of transport ops to engine steps is done per rank against that
// rank's own step windows (KindStep events give [t0, t0+dur) per step), so
// it needs no cross-rank clock alignment: a rank's ops and its step windows
// share one clock. Steps observed by fewer than size ranks (partial windows
// at run edges, heal intervals) are dropped.
func ComputeSkew(evs []Event, size int) []SkewRow {
	if size <= 0 {
		return nil
	}
	type window struct {
		step   int64
		t0, t1 int64
	}
	wins := make([][]window, size)
	for _, ev := range evs {
		if ev.Kind != KindStep || ev.Rank < 0 || ev.Rank >= int64(size) {
			continue
		}
		wins[ev.Rank] = append(wins[ev.Rank], window{ev.Seq, ev.T0Ns, ev.T0Ns + ev.DurNs})
	}
	for r := range wins {
		sort.Slice(wins[r], func(i, j int) bool { return wins[r][i].t0 < wins[r][j].t0 })
	}

	type cell struct {
		waitNs int64
		ops    int
	}
	steps := map[int64][]cell{}
	for _, ev := range evs {
		if ev.Kind != KindOp || ev.Rank < 0 || ev.Rank >= int64(size) {
			continue
		}
		if ev.Op < OpAllreduce || ev.Op > OpBarrier {
			continue // only rendezvous collectives witness the skew
		}
		w := wins[ev.Rank]
		i := sort.Search(len(w), func(i int) bool { return w[i].t0 > ev.T0Ns })
		if i == 0 {
			continue
		}
		win := w[i-1]
		if ev.T0Ns >= win.t1 {
			continue // between steps (e.g. the aggregation op itself)
		}
		row, ok := steps[win.step]
		if !ok {
			row = make([]cell, size)
			steps[win.step] = row
		}
		row[ev.Rank].waitNs += ev.DurNs
		row[ev.Rank].ops++
	}

	var out []SkewRow
	for step, row := range steps {
		complete := true
		for _, c := range row {
			if c.ops == 0 {
				complete = false
				break
			}
		}
		if !complete {
			continue
		}
		sr := SkewRow{Step: step, WaitNs: make([]int64, size)}
		minW, maxW := row[0].waitNs, row[0].waitNs
		for r, c := range row {
			sr.WaitNs[r] = c.waitNs
			sr.Ops += c.ops
			if c.waitNs < minW {
				minW = c.waitNs
				sr.Straggler = r
			}
			if c.waitNs > maxW {
				maxW = c.waitNs
			}
		}
		sr.SkewNs = maxW - minW
		out = append(out, sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Step < out[j].Step })
	return out
}

// StragglerCounts tallies, per rank, how many steps attributed it as the
// straggler.
func StragglerCounts(rows []SkewRow, size int) []int64 {
	counts := make([]int64, size)
	for _, r := range rows {
		if r.Straggler >= 0 && r.Straggler < size {
			counts[r.Straggler]++
		}
	}
	return counts
}
