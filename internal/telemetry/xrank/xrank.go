// Package xrank is the cross-rank observability plane: a lock-free per-rank
// ring buffer of compact collective-op/step/fault events, a window collector
// that piggybacks event aggregation on the existing collective plane
// (AllgatherBytes — no extra connections), a merged Chrome-trace + per-step
// skew emitter, and a flight recorder that freezes the last N seconds of
// events to the artifacts directory when a fault fires.
//
// The package sits below internal/comm in the import graph (it imports only
// internal/telemetry and the standard library), so the communication layer
// itself can record transport-level events. That placement is load-bearing
// for straggler attribution: an injected delay sleeps *before* the inner
// collective runs, so at the engine level every rank's op duration looks the
// same (the delayed rank sleeps, its peers wait in the rendezvous). Only at
// the transport rendezvous is the asymmetry visible — the delayed rank
// arrives last and therefore waits the LEAST — so events are recorded around
// the rendezvous and the straggler for a step is the rank with the minimum
// summed collective wait (see ComputeSkew).
//
// Recording is designed for the hot path: one atomic load when disabled, and
// a handful of atomic stores into a preallocated ring when enabled — no
// locks, no allocation, no time syscalls unless enabled. Events are fixed
// stride int64 slots with a leading claim/sequence word; readers validate
// the claim before and after loading the fields and discard torn slots, so
// concurrent scrape-while-record is race-clean (all slot accesses are
// atomic) and never observes a half-written event.
package xrank

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds.
const (
	// KindOp is one collective operation measured at the transport
	// rendezvous: Seq is the per-handle op sequence number (lockstep —
	// identical across ranks for the same logical collective), DurNs the
	// time this rank spent inside the rendezvous, Bytes the payload size.
	KindOp = 1
	// KindStep is one engine step on one rank: Seq is the global step,
	// DurNs the wall time of Engine.Step, Aux the engine-observed exchange
	// bytes for the step.
	KindStep = 2
	// KindFault is an error occurrence (injected fault surfacing, peer
	// conviction, retry, reform, step error): Op says where, Aux carries a
	// FaultCode classifying what.
	KindFault = 3
)

// Op codes. These mirror comm's Op labels without importing comm (xrank is
// below comm in the import graph); OpName renders them for traces.
const (
	OpAllreduce = 1
	OpAllgather = 2
	OpBroadcast = 3
	OpBarrier   = 4
	OpHeartbeat = 5
	OpReform    = 6
	OpRetry     = 7
	OpStep      = 8
	OpDial      = 9
	OpSend      = 10
	OpRecv      = 11
)

// Fault codes carried in Event.Aux for KindFault events.
const (
	FaultError    = 1 // a *comm.Error (or equivalent) surfaced
	FaultPeerDead = 2 // heartbeat conviction
	FaultRetry    = 3 // transient error absorbed by a retry
	FaultReform   = 4 // group reform executed
	FaultStep     = 5 // grace.StepError surfaced from the engine
)

var opNames = [...]string{
	0:           "?",
	OpAllreduce: "allreduce",
	OpAllgather: "allgather",
	OpBroadcast: "broadcast",
	OpBarrier:   "barrier",
	OpHeartbeat: "heartbeat",
	OpReform:    "reform",
	OpRetry:     "retry",
	OpStep:      "step",
	OpDial:      "dial",
	OpSend:      "send",
	OpRecv:      "recv",
}

// OpName renders an op code for traces and tables; unknown codes render "?".
func OpName(op int64) string {
	if op < 0 || op >= int64(len(opNames)) || opNames[op] == "" {
		return "?"
	}
	return opNames[op]
}

// OpCode maps a comm op label (string(comm.Op)) back to its code; unknown
// labels map to 0.
func OpCode(name string) int64 {
	for code, n := range opNames {
		if n == name {
			return int64(code)
		}
	}
	return 0
}

var faultNames = [...]string{
	0:             "?",
	FaultError:    "error",
	FaultPeerDead: "peer_dead",
	FaultRetry:    "retry",
	FaultReform:   "reform",
	FaultStep:     "step_error",
}

// FaultName renders a fault code.
func FaultName(code int64) string {
	if code < 0 || code >= int64(len(faultNames)) || faultNames[code] == "" {
		return "?"
	}
	return faultNames[code]
}

// Event is the decoded form of one ring slot. All fields are plain integers
// so windows encode compactly and dumps stay grep-able.
type Event struct {
	Kind  int64 `json:"kind"`
	Rank  int64 `json:"rank"`
	Op    int64 `json:"op"`
	Seq   int64 `json:"seq"`
	Gen   int64 `json:"gen"`
	T0Ns  int64 `json:"t0_ns"`
	DurNs int64 `json:"dur_ns"`
	Aux   int64 `json:"aux"`
	Bytes int64 `json:"bytes"`
}

// Slot layout: claim word + the 9 event fields.
const stride = 10

// DefaultCapacity is the ring size (events) allocated on first enable when
// SetCapacity was not called: 32768 events ≈ 2.6 MB, several minutes of
// small-model training or a few seconds of a many-tensor step storm.
const DefaultCapacity = 32768

type ring struct {
	slots []atomic.Int64
	n     int64
}

// Recorder owns one process's event ring plus the flight-recorder state.
// In-process multi-rank runs (the hub) share one Recorder — events carry
// their rank — while multi-process runs have one per process; the collector
// merges either shape identically.
type Recorder struct {
	enabled atomic.Bool
	gen     atomic.Int64
	world   atomic.Int64
	pos     atomic.Int64
	ring    atomic.Pointer[ring]

	mu  sync.Mutex // guards ring allocation and capacity changes
	cap int64

	// Flight recorder configuration + rate limiting (see flight.go).
	flightDir atomic.Pointer[string]
	windowNs  atomic.Int64
	lastDump  atomic.Int64
	dumps     atomic.Int64
	maxDumps  atomic.Int64
	dumpMu    sync.Mutex
	onDump    atomic.Pointer[func(path string, reason string)]
}

// Default is the process-global recorder, mirroring telemetry.Default.
var Default = NewRecorder()

// NewRecorder returns a disabled recorder with default capacity.
func NewRecorder() *Recorder {
	r := &Recorder{cap: DefaultCapacity}
	r.windowNs.Store(int64(10 * time.Second))
	r.maxDumps.Store(32)
	return r
}

// SetCapacity sizes the ring (events). Takes effect on the next enable; a
// live ring is replaced immediately (existing events are dropped). n < 1
// resets to DefaultCapacity.
func (r *Recorder) SetCapacity(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n < 1 {
		n = DefaultCapacity
	}
	r.cap = int64(n)
	if r.ring.Load() != nil {
		r.ring.Store(&ring{slots: make([]atomic.Int64, int64(n)*stride), n: int64(n)})
	}
}

// SetEnabled turns event recording on or off. The first enable allocates the
// ring; disabling keeps it (and its events) for inspection.
func (r *Recorder) SetEnabled(on bool) {
	if on {
		r.mu.Lock()
		if r.ring.Load() == nil {
			r.ring.Store(&ring{slots: make([]atomic.Int64, r.cap*stride), n: r.cap})
		}
		r.mu.Unlock()
	}
	r.enabled.Store(on)
}

// Enabled reports whether recording is on. This is the single hot-path gate:
// call sites skip timestamping entirely when it is false.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// Start returns the current time in unix nanoseconds, or 0 when recording is
// disabled. Record* treat a zero t0 as "disabled at span start" and do
// nothing, so the disabled path costs one atomic load and no time syscall.
func (r *Recorder) Start() int64 {
	if !r.enabled.Load() {
		return 0
	}
	return time.Now().UnixNano()
}

// SetGeneration updates the group generation stamped into subsequent events.
func (r *Recorder) SetGeneration(g uint64) { r.gen.Store(int64(g)) }

// Generation returns the current stamped generation.
func (r *Recorder) Generation() int64 { return r.gen.Load() }

// SetWorldSize updates the world_size gauge after an elastic membership
// change (0 until the first elastic group publishes it).
func (r *Recorder) SetWorldSize(n int) { r.world.Store(int64(n)) }

// WorldSize returns the current world_size gauge value.
func (r *Recorder) WorldSize() int64 { return r.world.Load() }

// record claims the next slot and publishes the event. The claim word is
// first parked at -1 (torn marker), then set to pos+1 once every field is
// stored; readers that see a claim change mid-read discard the slot.
func (r *Recorder) record(kind, rank, op, seq, t0, dur, aux, bytes int64) {
	rg := r.ring.Load()
	if rg == nil {
		return
	}
	p := r.pos.Add(1) - 1
	base := (p % rg.n) * stride
	s := rg.slots[base : base+stride]
	s[0].Store(-1)
	s[1].Store(kind)
	s[2].Store(rank)
	s[3].Store(op)
	s[4].Store(seq)
	s[5].Store(r.gen.Load())
	s[6].Store(t0)
	s[7].Store(dur)
	s[8].Store(aux)
	s[9].Store(bytes)
	s[0].Store(p + 1)
}

// RecordOp records one collective op at the transport rendezvous. seq is the
// per-handle op sequence (lockstep-identical across ranks), bytes the payload
// size, t0 the value returned by Start (0 → no-op).
func (r *Recorder) RecordOp(rank int, op int64, seq int64, bytes int64, t0 int64) {
	if t0 == 0 || !r.enabled.Load() {
		return
	}
	r.record(KindOp, int64(rank), op, seq, t0, time.Now().UnixNano()-t0, 0, bytes)
}

// RecordStep records one completed engine step: step is the global step,
// t0 the Start value at step begin (0 → no-op), exchBytes the engine's
// observed exchange volume for the step.
func (r *Recorder) RecordStep(rank int, step int64, exchBytes int64, t0 int64) {
	if t0 == 0 || !r.enabled.Load() {
		return
	}
	r.record(KindStep, int64(rank), OpStep, step, t0, time.Now().UnixNano()-t0, exchBytes, 0)
}

// RecordFault records a fault occurrence at the current time. seq carries the
// op step / engine step the fault is attributed to (0 when unknown).
func (r *Recorder) RecordFault(rank int, op int64, seq int64, code int64) {
	if !r.enabled.Load() {
		return
	}
	r.record(KindFault, int64(rank), op, seq, time.Now().UnixNano(), 0, code, 0)
}

// Events returns all valid events with ring position > since, ordered by
// position, plus the maximum position seen (pass it back as since to cut
// consecutive windows). Torn or overwritten slots are skipped. Safe to call
// concurrently with writers.
func (r *Recorder) Events(since int64) ([]Event, int64) {
	rg := r.ring.Load()
	if rg == nil {
		return nil, since
	}
	tmp := make([]posEvent, 0, rg.n)
	maxPos := since
	for i := int64(0); i < rg.n; i++ {
		s := rg.slots[i*stride : i*stride+stride]
		c1 := s[0].Load()
		if c1 <= 0 {
			continue
		}
		ev := Event{
			Kind:  s[1].Load(),
			Rank:  s[2].Load(),
			Op:    s[3].Load(),
			Seq:   s[4].Load(),
			Gen:   s[5].Load(),
			T0Ns:  s[6].Load(),
			DurNs: s[7].Load(),
			Aux:   s[8].Load(),
			Bytes: s[9].Load(),
		}
		if s[0].Load() != c1 {
			continue // torn: overwritten while reading
		}
		if c1 <= since {
			continue
		}
		if c1 > maxPos {
			maxPos = c1
		}
		tmp = append(tmp, posEvent{c1, ev})
	}
	sortPosEvents(tmp)
	evs := make([]Event, len(tmp))
	for i, pe := range tmp {
		evs[i] = pe.ev
	}
	return evs, maxPos
}

type posEvent struct {
	pos int64
	ev  Event
}

// sortPosEvents orders a ring scan by position.
func sortPosEvents(s []posEvent) {
	sort.Slice(s, func(i, j int) bool { return s[i].pos < s[j].pos })
}

// Reset drops all events, the position counter, and the generation stamp.
// Test helper; not for use while writers are active.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if rg := r.ring.Load(); rg != nil {
		r.ring.Store(&ring{slots: make([]atomic.Int64, rg.n*stride), n: rg.n})
	}
	r.pos.Store(0)
	r.gen.Store(0)
	r.lastDump.Store(0)
	r.dumps.Store(0)
}
