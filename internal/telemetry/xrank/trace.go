package xrank

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Artifact filenames written by WriteArtifacts into an artifacts directory.
const (
	TraceFile = "XRANK_trace.json"
	SkewFile  = "XRANK_skew.json"
)

// traceEvent is one Chrome trace_event record. The merged trace renders each
// rank as a process (pid = rank) with three threads: steps (tid 0),
// collective ops (tid 1), and faults (tid 2) — load it in chrome://tracing
// or https://ui.perfetto.dev.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const (
	traceTidSteps  = 0
	traceTidOps    = 1
	traceTidFaults = 2
)

// WriteTrace writes the merged cross-rank event stream as a Chrome trace.
// Timestamps are microseconds relative to the earliest event, keeping the
// numbers small and the trace self-aligned (per-rank clocks in one process
// share a clock anyway; across processes the alignment is cosmetic — skew
// analytics never compare raw timestamps across ranks).
func WriteTrace(path string, evs []Event) error {
	var base int64 = 0
	for _, ev := range evs {
		if base == 0 || (ev.T0Ns != 0 && ev.T0Ns < base) {
			base = ev.T0Ns
		}
	}
	out := make([]traceEvent, 0, len(evs)+8)

	ranks := map[int64]bool{}
	for _, ev := range evs {
		ranks[ev.Rank] = true
	}
	var rankList []int64
	for r := range ranks {
		rankList = append(rankList, r)
	}
	sort.Slice(rankList, func(i, j int) bool { return rankList[i] < rankList[j] })
	for _, r := range rankList {
		out = append(out,
			traceEvent{Name: "process_name", Ph: "M", Pid: r,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r, Tid: traceTidSteps,
				Args: map[string]any{"name": "steps"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r, Tid: traceTidOps,
				Args: map[string]any{"name": "collectives"}},
			traceEvent{Name: "thread_name", Ph: "M", Pid: r, Tid: traceTidFaults,
				Args: map[string]any{"name": "faults"}},
		)
	}

	for _, ev := range evs {
		ts := float64(ev.T0Ns-base) / 1e3
		switch ev.Kind {
		case KindStep:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("step %d", ev.Seq), Ph: "X",
				Pid: ev.Rank, Tid: traceTidSteps, Ts: ts, Dur: float64(ev.DurNs) / 1e3,
				Args: map[string]any{"gen": ev.Gen, "exch_bytes": ev.Aux},
			})
		case KindOp:
			out = append(out, traceEvent{
				Name: OpName(ev.Op), Ph: "X",
				Pid: ev.Rank, Tid: traceTidOps, Ts: ts, Dur: float64(ev.DurNs) / 1e3,
				Args: map[string]any{"seq": ev.Seq, "gen": ev.Gen, "bytes": ev.Bytes},
			})
		case KindFault:
			out = append(out, traceEvent{
				Name: fmt.Sprintf("fault:%s:%s", FaultName(ev.Aux), OpName(ev.Op)), Ph: "i",
				Pid: ev.Rank, Tid: traceTidFaults, Ts: ts, S: "g",
				Args: map[string]any{"seq": ev.Seq, "gen": ev.Gen},
			})
		}
	}

	b, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// SkewSummary is the persisted form of the skew analysis: per-step rows plus
// the per-rank straggler tallies gracestat renders as the "top stragglers"
// table.
type SkewSummary struct {
	Size           int       `json:"size"`
	Steps          int       `json:"steps"`
	Rows           []SkewRow `json:"rows"`
	StragglerSteps []int64   `json:"straggler_steps_per_rank"`
}

// NewSkewSummary computes the summary for a merged event stream.
func NewSkewSummary(evs []Event, size int) *SkewSummary {
	rows := ComputeSkew(evs, size)
	return &SkewSummary{
		Size:           size,
		Steps:          len(rows),
		Rows:           rows,
		StragglerSteps: StragglerCounts(rows, size),
	}
}

// WriteSkew writes the summary as indented JSON.
func WriteSkew(path string, s *SkewSummary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// WriteArtifacts writes rank 0's merged trace and skew summary into dir.
// No-op (nil) on other ranks, so every rank may call it unconditionally.
func (a *Aggregator) WriteArtifacts(dir string) error {
	if a.rank != 0 {
		return nil
	}
	if err := WriteTrace(filepath.Join(dir, TraceFile), a.merged); err != nil {
		return err
	}
	return WriteSkew(filepath.Join(dir, SkewFile), NewSkewSummary(a.merged, a.size))
}
