package telemetry

// PhaseStats is one phase's aggregated span statistics in a Snapshot.
type PhaseStats struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	P50Ns   int64 `json:"p50_ns"`
	P99Ns   int64 `json:"p99_ns"`
}

// StrategyBytesStat is one communication strategy's exchange volume.
type StrategyBytesStat struct {
	SentBytes int64 `json:"sent_bytes"`
	RecvBytes int64 `json:"recv_bytes"`
}

// Snapshot is a point-in-time, JSON-marshalable view of a registry. The
// harness embeds it in structured run artifacts (results/<run>.json), and
// the expvar mirror serializes it under /debug/vars.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Strategies map[string]StrategyBytesStat `json:"strategies"`
	Phases     map[string]PhaseStats        `json:"phases"`
	// MethodSteps is the autotuner's per-method tensor-step occupancy
	// (candidate label → tensor-steps active); omitted for fixed-method runs.
	MethodSteps map[string]int64 `json:"method_steps,omitempty"`
}

// Snapshot captures the registry's current totals. Counters read zero and
// phases with no observations are omitted, so quiet runs produce small
// artifacts. The capture is not a single atomic cut — counters advance while
// it runs — which is the standard contract for scraped metrics.
func (t *T) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]int64),
		Strategies: make(map[string]StrategyBytesStat),
		Phases:     make(map[string]PhaseStats),
	}
	if t == nil {
		return s
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := t.counters[c].Load(); v != 0 {
			s.Counters[c.String()] = v
		}
	}
	for i := 0; i < NumStrategies; i++ {
		sent, recv := t.stratSent[i].Load(), t.stratRecv[i].Load()
		if sent != 0 || recv != 0 {
			s.Strategies[strategyNames[i]] = StrategyBytesStat{SentBytes: sent, RecvBytes: recv}
		}
	}
	for p := 0; p < NumPhases; p++ {
		// One consistent capture per phase (see Histogram.Snapshot): count,
		// total, and quantiles all derive from the same bucket cut.
		hs := t.phases[p].Snapshot()
		if hs.Count == 0 {
			continue
		}
		s.Phases[Phase(p).String()] = PhaseStats{
			Count:   hs.Count,
			TotalNs: hs.SumNs,
			P50Ns:   hs.QuantileNs(0.50),
			P99Ns:   hs.QuantileNs(0.99),
		}
	}
	s.MethodSteps = t.MethodSteps()
	return s
}
