package telemetry

import (
	"bufio"
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): one grace_<name>_total counter per Counter,
// grace_strategy_bytes_{sent,recv}_total{strategy=...} for the per-strategy
// volume, and one grace_phase_seconds{phase=...} histogram per phase with
// power-of-two buckets. Zero-count phases still emit their _count/_sum
// series (scrapers want stable series sets) but skip the 40 bucket lines.
func (t *T) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 32<<10)
	if t == nil {
		return bw.Flush()
	}

	fmt.Fprintf(bw, "# HELP grace_telemetry_spans_enabled Whether phase-span recording is on (counters are always on).\n")
	fmt.Fprintf(bw, "# TYPE grace_telemetry_spans_enabled gauge\n")
	enabled := 0
	if t.Enabled() {
		enabled = 1
	}
	fmt.Fprintf(bw, "grace_telemetry_spans_enabled %d\n", enabled)

	for c := Counter(0); c < NumCounters; c++ {
		name := "grace_" + c.String()
		v := t.counters[c].Load()
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, v)
		if old, ok := deprecatedCounterAliases[c.String()]; ok {
			alias := "grace_" + old
			fmt.Fprintf(bw, "# HELP %s Deprecated alias for %s; removed next release.\n", alias, name)
			fmt.Fprintf(bw, "# TYPE %s counter\n", alias)
			fmt.Fprintf(bw, "%s %d\n", alias, v)
		}
	}

	if gs := t.Gauges(); len(gs) > 0 {
		keys := make([]string, 0, len(gs))
		for k := range gs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "# TYPE grace_%s gauge\n", k)
			fmt.Fprintf(bw, "grace_%s %d\n", k, gs[k])
		}
	}

	fmt.Fprintf(bw, "# TYPE grace_strategy_bytes_sent_total counter\n")
	for i := 0; i < NumStrategies; i++ {
		fmt.Fprintf(bw, "grace_strategy_bytes_sent_total{strategy=%q} %d\n", strategyNames[i], t.stratSent[i].Load())
	}
	fmt.Fprintf(bw, "# TYPE grace_strategy_bytes_recv_total counter\n")
	for i := 0; i < NumStrategies; i++ {
		fmt.Fprintf(bw, "grace_strategy_bytes_recv_total{strategy=%q} %d\n", strategyNames[i], t.stratRecv[i].Load())
	}

	if ms := t.MethodSteps(); len(ms) > 0 {
		keys := make([]string, 0, len(ms))
		for k := range ms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(bw, "# HELP grace_autotune_method_steps_total Tensor-steps each compression method was the autotuner's active choice.\n")
		fmt.Fprintf(bw, "# TYPE grace_autotune_method_steps_total counter\n")
		for _, k := range keys {
			fmt.Fprintf(bw, "grace_autotune_method_steps_total{method=%q} %d\n", k, ms[k])
		}
	}

	fmt.Fprintf(bw, "# HELP grace_phase_seconds Time spent per training-step phase.\n")
	fmt.Fprintf(bw, "# TYPE grace_phase_seconds histogram\n")
	for p := 0; p < NumPhases; p++ {
		// One consistent capture per phase: buckets, _count, and _sum all
		// render from the same snapshot, so the +Inf cumulative count always
		// equals _count even while writers are mid-Record (the seqlock-style
		// retry in Histogram.Snapshot is the fix for the scrape-vs-writer
		// tear this exporter used to be exposed to).
		snap := t.phases[p].Snapshot()
		phase := Phase(p).String()
		if snap.Count > 0 {
			var cum int64
			for i := 0; i < HistBuckets; i++ {
				n := snap.Buckets[i]
				cum += n
				if n == 0 && i < HistBuckets-1 {
					continue // sparse render: only buckets that move the cumulative count
				}
				if i == HistBuckets-1 {
					fmt.Fprintf(bw, "grace_phase_seconds_bucket{phase=%q,le=\"+Inf\"} %d\n", phase, cum)
				} else {
					fmt.Fprintf(bw, "grace_phase_seconds_bucket{phase=%q,le=\"%g\"} %d\n", phase, float64(BucketUpper(i))/1e9, cum)
				}
			}
		} else {
			fmt.Fprintf(bw, "grace_phase_seconds_bucket{phase=%q,le=\"+Inf\"} 0\n", phase)
		}
		fmt.Fprintf(bw, "grace_phase_seconds_sum{phase=%q} %g\n", phase, float64(snap.SumNs)/1e9)
		fmt.Fprintf(bw, "grace_phase_seconds_count{phase=%q} %d\n", phase, snap.Count)
	}
	return bw.Flush()
}

// publishExpvarOnce mirrors the Default registry into expvar under the
// "grace" key, so /debug/vars carries the same snapshot as /metrics.
// expvar.Publish panics on duplicate names, hence the Once; only Default is
// mirrored (expvar is process-global, so per-T mirrors would collide).
var publishExpvarOnce sync.Once

func publishExpvar() {
	publishExpvarOnce.Do(func() {
		expvar.Publish("grace", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
