package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/grace"
	"repro/internal/telemetry"
)

// ErrNoCheckpoint is returned by Latest when a rank has no loadable
// checkpoint (none written yet, or every candidate is corrupt).
var ErrNoCheckpoint = errors.New("ckpt: no loadable checkpoint")

// DefaultKeep is how many recent checkpoints a Dir retains per rank.
const DefaultKeep = 3

// Save atomically writes the snapshot to path: the record is staged in a
// temp file in the same directory, fsynced, renamed over the destination,
// and the directory is fsynced so the rename itself is durable. A crash at
// any point leaves either the old file or the new one at path, never a torn
// mix.
func Save(path string, s *Snapshot) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: staging temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	buf := Encode(s)
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("ckpt: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("ckpt: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("ckpt: publishing %s: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	telemetry.Default.Add(telemetry.CtrCheckpointSaves, 1)
	telemetry.Default.Add(telemetry.CtrCheckpointBytes, int64(len(buf)))
	return nil
}

// Load reads and validates the checkpoint at path.
func Load(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", path, err)
	}
	return s, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("ckpt: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: syncing dir %s: %w", dir, err)
	}
	return nil
}

// Dir manages one rank's checkpoints inside a shared directory. Files are
// named rank%03d-step%012d.ckpt so a plain directory listing sorts them by
// rank then step, and every rank of a run can share one directory.
type Dir struct {
	root string
	rank int
	// Keep bounds how many recent checkpoints SaveStep retains for this
	// rank; older ones are pruned after each successful save. Zero means
	// DefaultKeep.
	Keep int
}

// OpenDir creates (if needed) and wraps a checkpoint directory for a rank,
// sweeping any stale temp files a crash mid-Save left behind for that rank.
func OpenDir(root string, rank int) (*Dir, error) {
	if rank < 0 {
		return nil, fmt.Errorf("ckpt: negative rank %d", rank)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating %s: %w", root, err)
	}
	d := &Dir{root: root, rank: rank}
	if err := d.sweepStaleTemps(); err != nil {
		return nil, err
	}
	return d, nil
}

// sweepStaleTemps removes temp files that a previous incarnation of this
// rank, crashing mid-Save, left behind. Only this rank's temps are touched:
// other ranks sharing the directory may have a save in flight right now, but
// this rank cannot — its saves are synchronous and OpenDir precedes the
// first one.
func (d *Dir) sweepStaleTemps() error {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return fmt.Errorf("ckpt: listing %s: %w", d.root, err)
	}
	prefix := fmt.Sprintf("rank%03d-", d.rank)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.Contains(name, ".ckpt.tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(d.root, name)); err != nil {
			return fmt.Errorf("ckpt: sweeping stale temp %s: %w", name, err)
		}
	}
	return nil
}

// Path returns the file path for this rank's checkpoint at a step.
func (d *Dir) Path(step int64) string {
	return filepath.Join(d.root, fmt.Sprintf("rank%03d-step%012d.ckpt", d.rank, step))
}

// SaveStep atomically writes the snapshot under its step's canonical name
// and prunes old checkpoints beyond Keep.
func (d *Dir) SaveStep(s *Snapshot) error {
	if err := Save(d.Path(s.Step), s); err != nil {
		return err
	}
	return d.prune()
}

// RejoinConfig returns the grace self-healing persistence hooks wired to
// this directory: step listing and own-snapshot loads come from the rank's
// files here, and the donor state transfer rides the checkpoint encoding
// (versioned, CRC-sealed — a truncated or corrupted transfer is rejected,
// not trusted). Callers set the policy fields (SyncOnStart, MaxHeals,
// OnHeal) on the returned value.
func (d *Dir) RejoinConfig() *grace.RejoinConfig {
	return &grace.RejoinConfig{
		ListSteps: d.Steps,
		LoadLocal: func(step int64) (*Snapshot, error) { return Load(d.Path(step)) },
		Encode:    func(s *Snapshot) ([]byte, error) { return Encode(s), nil },
		Decode:    Decode,
	}
}

// Steps lists this rank's checkpoint steps in ascending order, including
// files that may turn out to be corrupt on load.
func (d *Dir) Steps() ([]int64, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("ckpt: listing %s: %w", d.root, err)
	}
	var steps []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		var rank int
		var step int64
		if _, err := fmt.Sscanf(e.Name(), "rank%03d-step%012d.ckpt", &rank, &step); err != nil || rank != d.rank {
			continue
		}
		// Sscanf does not anchor the end of the name, so a stale temp file
		// from a crash mid-Save (rank001-step…042.ckpt.tmp367812345) would
		// parse as a real step; require an exact reconstruction match.
		if e.Name() != fmt.Sprintf("rank%03d-step%012d.ckpt", rank, step) {
			continue
		}
		steps = append(steps, step)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps, nil
}

// Latest loads the newest loadable checkpoint for this rank, silently
// skipping corrupt files (a crash mid-write leaves at most a stale temp
// file, but disk faults can still bite). Returns ErrNoCheckpoint when
// nothing loads.
func (d *Dir) Latest() (*Snapshot, error) {
	steps, err := d.Steps()
	if err != nil {
		return nil, err
	}
	for i := len(steps) - 1; i >= 0; i-- {
		s, err := Load(d.Path(steps[i]))
		if err == nil {
			return s, nil
		}
		if !errors.Is(err, ErrCorrupt) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: rank %d in %s", ErrNoCheckpoint, d.rank, d.root)
}

// LatestStep reports the newest step with a loadable checkpoint for this
// rank, or -1 when none loads.
func (d *Dir) LatestStep() int64 {
	s, err := d.Latest()
	if err != nil {
		return -1
	}
	return s.Step
}

func (d *Dir) prune() error {
	keep := d.Keep
	if keep <= 0 {
		keep = DefaultKeep
	}
	steps, err := d.Steps()
	if err != nil {
		return err
	}
	for len(steps) > keep {
		if err := os.Remove(d.Path(steps[0])); err != nil {
			return fmt.Errorf("ckpt: pruning: %w", err)
		}
		steps = steps[1:]
	}
	return nil
}

// CommonStep reports the newest step for which every rank 0..workers-1 has
// a loadable checkpoint in root — the consistent rollback point after a
// worker death. All ranks checkpoint at the same lockstep steps, but a
// crash can leave the victim one interval behind the survivors, so the
// intersection of loadable steps is computed explicitly. Returns -1 when no
// common step exists.
func CommonStep(root string, workers int) int64 {
	if workers <= 0 {
		return -1
	}
	counts := map[int64]int{}
	for rank := 0; rank < workers; rank++ {
		d := &Dir{root: root, rank: rank}
		steps, err := d.Steps()
		if err != nil {
			return -1
		}
		for _, step := range steps {
			if _, err := Load(d.Path(step)); err == nil {
				counts[step]++
			}
		}
	}
	common := int64(-1)
	for step, n := range counts {
		if n == workers && step > common {
			common = step
		}
	}
	return common
}
