package ckpt

import (
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/encode"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/optim"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Step:      42,
		Epoch:     3,
		Iter:      7,
		SinceSync: 2,
		Seed:      0xdeadbeef,
		Rank:      1,
		Workers:   4,
		Method:    "dgc",
		Fusion:    grace.FusionConfig{TargetBytes: 1 << 20, MaxTensors: 8, ByStrategy: true},
		Params: []Tensor{
			{Name: "w0", Shape: []int{2, 3}, Data: []float32{1, 2, 3, 4, 5, 6}},
			{Name: "b0", Shape: []int{3}, Data: []float32{-0.5, 0, 0.5}},
		},
		SyncPoint: []Tensor{
			{Name: "w0", Shape: []int{2, 3}, Data: []float32{1, 1, 1, 1, 1, 1}},
			{Name: "b0", Shape: []int{3}, Data: []float32{0, 0, 0}},
		},
		Opt: optim.State{
			Name: "momentum-sgd",
			Step: 42,
			Slots: []optim.Slot{
				{Name: "velocity", Data: [][]float32{{6, 5, 4, 3, 2, 1}, nil}},
			},
		},
		Memory: map[string][]float32{
			"w0": {0.1, 0.2, 0.3, 0.4, 0.5, 0.6},
			"b0": {-1, -2, -3},
		},
		Codec: grace.EngineCodecState{
			Method: "dgc",
			Tensors: map[string]map[string][]float32{
				"u": {"w0": {9, 8, 7, 6, 5, 4}},
				"v": {"w0": {1, 0, 1, 0, 1, 0}},
			},
			LaneRNGs: []fxrand.State{
				{Word: 12345, HasSpare: true, Spare: -0.25},
				{Word: 67890},
			},
		},
		Tuner: &grace.TunerState{
			Sig:          "autotune:v1 test",
			Step:         41,
			Switches:     3,
			NextSwitches: 1,
			Cands:        2,
			Assign:       []int32{1, 0},
			Pending:      []bool{true, false},
			LastBytes:    []int64{-1, 640, 128, -1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleSnapshot()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestEncodeDecodeMinimal(t *testing.T) {
	want := &Snapshot{Method: "topk", Opt: optim.State{Name: "sgd"}}
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("minimal round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDecodeAcceptsVersion1 splices the version-2 fusion fields and the
// version-3 tuner section out of an encoded record and stamps it version 1,
// reproducing a checkpoint written before either existed. It must still
// decode — with the zero (disabled) fusion policy and no tuner state —
// because operators resume old runs with new binaries.
func TestDecodeAcceptsVersion1(t *testing.T) {
	s := sampleSnapshot()
	s.Fusion = grace.FusionConfig{} // v1 files can only describe unfused runs
	s.Tuner = nil                   // ... and fixed-method runs
	b := Encode(s)

	// Replay the pre-fusion field sequence to locate where the fusion bytes
	// start; a zero policy encodes as exactly 3 bytes (two 0 uvarints + flag).
	w := encode.NewWriter(64)
	w.Raw([]byte(magic))
	w.U32(Version)
	w.U64(uint64(s.Step))
	w.Uvarint(uint64(s.Epoch))
	w.Uvarint(uint64(s.Iter))
	w.Uvarint(uint64(s.SinceSync))
	w.U64(s.Seed)
	w.Uvarint(uint64(s.Rank))
	w.Uvarint(uint64(s.Workers))
	putString(w, s.Method)
	off := w.Len()

	v1 := append(append([]byte(nil), b[:off]...), b[off+3:]...)
	// Drop the v3 tuner presence byte (a nil tuner encodes as one 0 byte at
	// the end of the body, just before the CRC).
	v1 = append(v1[:len(v1)-trailerLen-1], v1[len(v1)-trailerLen:]...)
	v1[len(magic)] = 1 // version u32, little-endian
	reseal(v1)

	got, err := Decode(v1)
	if err != nil {
		t.Fatalf("Decode(v1): %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("v1 decode mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}

// TestDecodeAcceptsVersion2 strips only the version-3 tuner section and
// stamps the record version 2: a checkpoint written by the fusion-era format
// must keep decoding, with no tuner state.
func TestDecodeAcceptsVersion2(t *testing.T) {
	s := sampleSnapshot()
	s.Tuner = nil // v2 files can only describe fixed-method runs
	b := Encode(s)

	v2 := append([]byte(nil), b...)
	v2 = append(v2[:len(v2)-trailerLen-1], v2[len(v2)-trailerLen:]...)
	v2[len(magic)] = 2 // version u32, little-endian
	reseal(v2)

	got, err := Decode(v2)
	if err != nil {
		t.Fatalf("Decode(v2): %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("v2 decode mismatch:\ngot  %+v\nwant %+v", got, s)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	a, b := Encode(sampleSnapshot()), Encode(sampleSnapshot())
	if string(a) != string(b) {
		t.Fatal("two encodings of the same snapshot differ (map-order leak)")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	valid := Encode(sampleSnapshot())
	cases := map[string][]byte{
		"empty":         {},
		"short":         valid[:8],
		"bad-magic":     append([]byte("JUNK"), valid[4:]...),
		"truncated":     valid[:len(valid)-5],
		"no-body":       valid[:8],
		"extra-byte":    append(append([]byte(nil), valid...), 0),
		"missing-crc":   valid[:len(valid)-4],
		"version-burst": func() []byte { b := append([]byte(nil), valid...); b[4] = 0xff; return b }(),
	}
	// Flip a byte in the middle of the body.
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit-flip"] = flipped

	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDecodeHostileCountsBounded: a forged record whose CRC is valid but
// whose counts claim far more elements than the file holds must error
// without huge allocation. The CRC gate already rejects casual corruption,
// so forge the CRC too.
func TestDecodeHostileCountsBounded(t *testing.T) {
	s := sampleSnapshot()
	b := Encode(s)
	// Overwrite a region with 0xff (huge uvarints), then re-seal the CRC.
	for i := 20; i < 40 && i < len(b)-4; i++ {
		b[i] = 0xff
	}
	reseal(b)
	if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile counts: err = %v, want ErrCorrupt", err)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.ckpt")
	want := sampleSnapshot()
	if err := Save(path, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Save/Load round trip mismatch")
	}
	// Overwrite with a new snapshot: still atomic, still loadable.
	want.Step = 99
	if err := Save(path, want); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	got, err = Load(path)
	if err != nil || got.Step != 99 {
		t.Fatalf("after overwrite: snapshot %+v, err %v", got, err)
	}
	// No stray temp files survive.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after saves, want 1", len(entries))
	}
}

// TestCrashMidWriteLeavesPrevious simulates a crash mid-write using the
// exact file names a real crash produces: partial temp files named the way
// Save stages them (canonical name + ".tmp" + random suffix) must not be
// mistaken for checkpoint steps, must not break pruning, and are swept by
// OpenDir; a torn file at the final path (simulating a non-atomic writer) is
// rejected rather than half-trusted.
func TestCrashMidWriteLeavesPrevious(t *testing.T) {
	root := t.TempDir()
	s := sampleSnapshot()
	write := func(rank int, step int64) {
		d, err := OpenDir(root, rank)
		if err != nil {
			t.Fatal(err)
		}
		s.Rank, s.Step = rank, step
		if err := d.SaveStep(s); err != nil {
			t.Fatalf("SaveStep(rank %d, step %d): %v", rank, step, err)
		}
	}
	write(0, 10)
	write(1, 10)
	write(1, 20)

	// Rank 1 crashed once mid-save of a new step 42 and once mid-re-save of
	// the existing step 20, leaving partial temps with Save's real naming.
	torn := Encode(s)[:30]
	for _, name := range []string{
		"rank001-step000000000042.ckpt.tmp367812345",
		"rank001-step000000000020.ckpt.tmp99",
	} {
		if err := os.WriteFile(filepath.Join(root, name), torn, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// The phantom step 42 must not be listed, and the half-re-saved step 20
	// must not be double-counted.
	d1 := &Dir{root: root, rank: 1}
	steps, err := d1.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int64{10, 20}) {
		t.Fatalf("Steps next to stale temps = %v, want [10 20]", steps)
	}
	latest, err := d1.Latest()
	if err != nil || latest.Step != 20 {
		t.Fatalf("Latest next to stale temps = %+v, %v; want step 20", latest, err)
	}
	if got := CommonStep(root, 2); got != 10 {
		t.Fatalf("CommonStep next to stale temps = %d, want 10", got)
	}

	// Pruning keeps working (it must never try to remove the phantom step's
	// canonical path).
	d1.Keep = 1
	s.Rank, s.Step = 1, 30
	if err := d1.SaveStep(s); err != nil {
		t.Fatalf("SaveStep next to stale temps: %v", err)
	}
	if steps, err = d1.Steps(); err != nil || !reflect.DeepEqual(steps, []int64{30}) {
		t.Fatalf("after prune Steps = %v, %v; want [30]", steps, err)
	}

	// Reopening the rank's directory — what a restarted worker does — sweeps
	// its stale temps; rank 0's files are untouched.
	if _, err := OpenDir(root, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".ckpt.tmp") {
			t.Fatalf("stale temp %s survived OpenDir", e.Name())
		}
	}
	d0 := &Dir{root: root, rank: 0}
	if got := d0.LatestStep(); got != 10 {
		t.Fatalf("rank 0 LatestStep after rank 1's sweep = %d, want 10", got)
	}

	// A torn file at the final path is detected.
	if err := os.WriteFile(d0.Path(10), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(d0.Path(10)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn final file: err = %v, want ErrCorrupt", err)
	}
}

func TestDirSavePruneLatest(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Keep = 2
	s := sampleSnapshot()
	s.Rank = 2
	for _, step := range []int64{10, 20, 30, 40} {
		s.Step = step
		if err := d.SaveStep(s); err != nil {
			t.Fatalf("SaveStep(%d): %v", step, err)
		}
	}
	steps, err := d.Steps()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int64{30, 40}) {
		t.Fatalf("after pruning steps = %v, want [30 40]", steps)
	}
	latest, err := d.Latest()
	if err != nil || latest.Step != 40 {
		t.Fatalf("Latest = %+v, %v", latest, err)
	}
	if got := d.LatestStep(); got != 40 {
		t.Fatalf("LatestStep = %d", got)
	}
}

func TestDirLatestSkipsCorrupt(t *testing.T) {
	root := t.TempDir()
	d, err := OpenDir(root, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := sampleSnapshot()
	s.Rank = 0
	for _, step := range []int64{1, 2} {
		s.Step = step
		if err := d.SaveStep(s); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest file; Latest must fall back to step 1.
	if err := os.WriteFile(d.Path(2), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	latest, err := d.Latest()
	if err != nil || latest.Step != 1 {
		t.Fatalf("Latest = %+v, %v; want step 1", latest, err)
	}
	// Corrupt both: ErrNoCheckpoint.
	if err := os.WriteFile(d.Path(1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Latest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt Latest err = %v, want ErrNoCheckpoint", err)
	}
}

func TestCommonStep(t *testing.T) {
	root := t.TempDir()
	s := sampleSnapshot()
	write := func(rank int, step int64) {
		d, err := OpenDir(root, rank)
		if err != nil {
			t.Fatal(err)
		}
		s.Rank, s.Step = rank, step
		if err := d.SaveStep(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := CommonStep(root, 2); got != -1 {
		t.Fatalf("empty dir CommonStep = %d, want -1", got)
	}
	// Rank 0 (crashed early) has {10, 20}; rank 1 ran ahead to {10, 20, 30}.
	write(0, 10)
	write(0, 20)
	write(1, 10)
	write(1, 20)
	write(1, 30)
	if got := CommonStep(root, 2); got != 20 {
		t.Fatalf("CommonStep = %d, want 20", got)
	}
	// Corrupting rank 0's step 20 drops the common point to 10.
	d0 := &Dir{root: root, rank: 0}
	if err := os.WriteFile(d0.Path(20), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := CommonStep(root, 2); got != 10 {
		t.Fatalf("CommonStep after corruption = %d, want 10", got)
	}
}

func TestBitwiseStability(t *testing.T) {
	s := sampleSnapshot()
	s.Params[0].Data[0] = float32(math.Float32frombits(0x7f800001)) // NaN payload preserved?
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float32bits(got.Params[0].Data[0]) != 0x7f800001 {
		t.Fatal("NaN bit pattern not preserved through the codec")
	}
}

// reseal recomputes and overwrites the trailing CRC so tests can forge
// structurally hostile but checksum-valid records.
func reseal(b []byte) {
	body := b[:len(b)-4]
	c := crc32.Checksum(body, castagnoli)
	b[len(b)-4] = byte(c)
	b[len(b)-3] = byte(c >> 8)
	b[len(b)-2] = byte(c >> 16)
	b[len(b)-1] = byte(c >> 24)
}
