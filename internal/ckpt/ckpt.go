// Package ckpt implements crash-consistent checkpointing of per-rank
// training state.
//
// A checkpoint file is a single binary record:
//
//	magic "GRCK" | u32 version | body | u32 CRC-32C
//
// The CRC (Castagnoli) covers everything before it, so truncation, bit rot,
// and partial writes are all detected before any of the body is trusted. The
// body is encoded with internal/encode's bounded reader/writer; every
// length prefix is validated against the bytes actually present, so a
// hostile or corrupted file can never force a huge allocation. Decode
// failures surface as errors wrapping ErrCorrupt.
//
// Writes are atomic: Save stages the record in a temp file in the target
// directory, fsyncs it, renames it over the destination, and fsyncs the
// directory. A crash at any point leaves either the previous checkpoint or
// the new one — never a torn file at the final path.
//
// The snapshot captures everything a rank needs to resume training
// bitwise-identically: model parameters, optimizer slots, the GRACE
// error-feedback residual memory, compressor-internal codec state (DGC
// momentum/accumulators, QSGD rounding RNG streams), and the loop position.
package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"repro/internal/encode"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/optim"
)

const (
	// Version is the current checkpoint format version. Version 2 added the
	// tensor-fusion policy after the method name; version 3 added the
	// autotune policy state after the codec section. Version-1 and -2 files
	// are still accepted and decode with the corresponding features zeroed
	// (no fusion, no tuner), so older checkpoints keep resuming their runs.
	Version = 3

	magic      = "GRCK"
	headerLen  = len(magic) + 4 // magic + version
	trailerLen = 4              // CRC-32C
)

// ErrCorrupt is wrapped by every decode failure: bad magic, unsupported
// version, CRC mismatch, truncation, or malformed body. A file rejected
// with ErrCorrupt must not be trusted; recovery falls back to the previous
// checkpoint.
var ErrCorrupt = errors.New("ckpt: corrupt checkpoint")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Tensor is one named dense tensor (a model parameter or sync-point copy).
type Tensor = grace.ParamTensor

// Snapshot is the complete per-rank training state at a step boundary; see
// grace.Snapshot for the field-by-field contract. The alias keeps one
// canonical struct: grace owns capture/restore semantics, this package owns
// the durable encoding.
type Snapshot = grace.Snapshot

// Encode serializes the snapshot into the versioned, CRC-sealed record.
func Encode(s *Snapshot) []byte {
	w := encode.NewWriter(1024)
	w.Raw([]byte(magic))
	w.U32(Version)

	w.U64(uint64(s.Step))
	w.Uvarint(uint64(s.Epoch))
	w.Uvarint(uint64(s.Iter))
	w.Uvarint(uint64(s.SinceSync))
	w.U64(s.Seed)
	w.Uvarint(uint64(s.Rank))
	w.Uvarint(uint64(s.Workers))
	putString(w, s.Method)
	w.Uvarint(uint64(s.Fusion.TargetBytes))
	w.Uvarint(uint64(s.Fusion.MaxTensors))
	if s.Fusion.ByStrategy {
		w.U8(1)
	} else {
		w.U8(0)
	}

	putTensors(w, s.Params)
	if s.SyncPoint != nil {
		w.U8(1)
		putTensors(w, s.SyncPoint)
	} else {
		w.U8(0)
	}

	// Optimizer state.
	putString(w, s.Opt.Name)
	w.U64(uint64(s.Opt.Step))
	w.Uvarint(uint64(len(s.Opt.Slots)))
	for _, slot := range s.Opt.Slots {
		putString(w, slot.Name)
		w.Uvarint(uint64(len(slot.Data)))
		for _, d := range slot.Data {
			if d == nil {
				w.U8(0)
				continue
			}
			w.U8(1)
			w.F32Slice(d)
		}
	}

	// EF residual memory (sorted for deterministic bytes).
	if s.Memory != nil {
		w.U8(1)
		putF32Map(w, s.Memory)
	} else {
		w.U8(0)
	}

	// Codec state.
	putString(w, s.Codec.Method)
	slots := make([]string, 0, len(s.Codec.Tensors))
	for name := range s.Codec.Tensors {
		slots = append(slots, name)
	}
	sort.Strings(slots)
	w.Uvarint(uint64(len(slots)))
	for _, name := range slots {
		putString(w, name)
		putF32Map(w, s.Codec.Tensors[name])
	}
	w.Uvarint(uint64(len(s.Codec.LaneRNGs)))
	for _, r := range s.Codec.LaneRNGs {
		w.U64(r.Word)
		if r.HasSpare {
			w.U8(1)
		} else {
			w.U8(0)
		}
		w.F64(r.Spare)
	}

	// Autotune policy state (v3+): presence byte, then the trajectory.
	if t := s.Tuner; t != nil {
		w.U8(1)
		putString(w, t.Sig)
		w.U64(uint64(t.Step))
		w.U64(uint64(t.Switches))
		w.Uvarint(uint64(t.NextSwitches))
		w.Uvarint(uint64(t.Cands))
		w.Uvarint(uint64(len(t.Assign)))
		for i, a := range t.Assign {
			w.Uvarint(uint64(a))
			if i < len(t.Pending) && t.Pending[i] {
				w.U8(1)
			} else {
				w.U8(0)
			}
		}
		w.Uvarint(uint64(len(t.LastBytes)))
		for _, b := range t.LastBytes {
			// Stored as value+1 so the -1 "never observed" sentinel encodes as
			// 0 without a sign bit.
			w.U64(uint64(b + 1))
		}
	} else {
		w.U8(0)
	}

	w.U32(crc32.Checksum(w.Bytes(), castagnoli))
	return w.Bytes()
}

// Decode parses and validates a checkpoint record. Any structural problem —
// short file, bad magic, unknown version, CRC mismatch, malformed or
// trailing body bytes — returns an error wrapping ErrCorrupt. Decode never
// panics and never allocates more than the input size warrants, no matter
// how hostile the input.
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < headerLen+trailerLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed framing", ErrCorrupt, len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:len(magic)])
	}
	body := b[:len(b)-trailerLen]
	want := crc32.Checksum(body, castagnoli)
	got := uint32(b[len(b)-4]) | uint32(b[len(b)-3])<<8 | uint32(b[len(b)-2])<<16 | uint32(b[len(b)-1])<<24
	if got != want {
		return nil, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrCorrupt, got, want)
	}

	r := encode.NewReader(body[len(magic):])
	v := r.U32()
	if v < 1 || v > Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want 1..%d)", ErrCorrupt, v, Version)
	}

	s := &Snapshot{}
	s.Step = int64(r.U64())
	s.Epoch = boundedInt(r)
	s.Iter = boundedInt(r)
	s.SinceSync = boundedInt(r)
	s.Seed = r.U64()
	s.Rank = boundedInt(r)
	s.Workers = boundedInt(r)
	s.Method = getString(r)
	if v >= 2 {
		s.Fusion.TargetBytes = boundedInt(r)
		s.Fusion.MaxTensors = boundedInt(r)
		s.Fusion.ByStrategy = r.U8() == 1
	}

	var err error
	if s.Params, err = getTensors(r); err != nil {
		return nil, err
	}
	if r.U8() == 1 {
		if s.SyncPoint, err = getTensors(r); err != nil {
			return nil, err
		}
	}

	s.Opt.Name = getString(r)
	s.Opt.Step = int64(r.U64())
	nSlots := boundedCount(r, 2)
	for i := 0; i < nSlots && r.Err() == nil; i++ {
		slot := optim.Slot{Name: getString(r)}
		n := boundedCount(r, 1)
		slot.Data = make([][]float32, 0, n)
		for j := 0; j < n && r.Err() == nil; j++ {
			if r.U8() == 1 {
				slot.Data = append(slot.Data, r.F32Slice())
			} else {
				slot.Data = append(slot.Data, nil)
			}
		}
		s.Opt.Slots = append(s.Opt.Slots, slot)
	}

	if r.U8() == 1 {
		if s.Memory, err = getF32Map(r); err != nil {
			return nil, err
		}
	}

	s.Codec.Method = getString(r)
	nCodec := boundedCount(r, 2)
	for i := 0; i < nCodec && r.Err() == nil; i++ {
		name := getString(r)
		m, err := getF32Map(r)
		if err != nil {
			return nil, err
		}
		if s.Codec.Tensors == nil {
			s.Codec.Tensors = map[string]map[string][]float32{}
		}
		s.Codec.Tensors[name] = m
	}
	nRNG := boundedCount(r, 17)
	for i := 0; i < nRNG && r.Err() == nil; i++ {
		s.Codec.LaneRNGs = append(s.Codec.LaneRNGs, fxrand.State{
			Word:     r.U64(),
			HasSpare: r.U8() == 1,
			Spare:    r.F64(),
		})
	}

	if v >= 3 && r.U8() == 1 {
		t := &grace.TunerState{}
		t.Sig = getString(r)
		t.Step = int64(r.U64())
		t.Switches = int64(r.U64())
		t.NextSwitches = int32(boundedInt(r))
		t.Cands = int32(boundedInt(r))
		nAssign := boundedCount(r, 2)
		if nAssign > 0 {
			t.Assign = make([]int32, 0, nAssign)
			t.Pending = make([]bool, 0, nAssign)
		}
		for i := 0; i < nAssign && r.Err() == nil; i++ {
			t.Assign = append(t.Assign, int32(boundedInt(r)))
			t.Pending = append(t.Pending, r.U8() == 1)
		}
		nBytes := boundedCount(r, 8)
		if nBytes > 0 {
			t.LastBytes = make([]int64, 0, nBytes)
		}
		for i := 0; i < nBytes && r.Err() == nil; i++ {
			// Stored as value+1 (sentinel -1 encodes as 0).
			raw := r.U64()
			if raw > math.MaxInt64 {
				poison(r)
				break
			}
			t.LastBytes = append(t.LastBytes, int64(raw)-1)
		}
		s.Tuner = t
	}

	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after body", ErrCorrupt, r.Remaining())
	}
	return s, nil
}

func putString(w *encode.Writer, s string) { w.BytesSlice([]byte(s)) }

func getString(r *encode.Reader) string { return string(r.BytesSlice()) }

func putTensors(w *encode.Writer, ts []Tensor) {
	w.Uvarint(uint64(len(ts)))
	for _, t := range ts {
		putString(w, t.Name)
		w.Uvarint(uint64(len(t.Shape)))
		for _, d := range t.Shape {
			w.Uvarint(uint64(d))
		}
		w.F32Slice(t.Data)
	}
}

func getTensors(r *encode.Reader) ([]Tensor, error) {
	n := boundedCount(r, 3)
	if n == 0 {
		// Canonical nil keeps Encode∘Decode a fixed point.
		return nil, errOf(r)
	}
	out := make([]Tensor, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		t := Tensor{Name: getString(r)}
		nd := boundedCount(r, 1)
		for j := 0; j < nd && r.Err() == nil; j++ {
			t.Shape = append(t.Shape, boundedInt(r))
		}
		t.Data = r.F32Slice()
		out = append(out, t)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

func putF32Map(w *encode.Writer, m map[string][]float32) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		putString(w, name)
		w.F32Slice(m[name])
	}
}

func getF32Map(r *encode.Reader) (map[string][]float32, error) {
	n := boundedCount(r, 2)
	out := make(map[string][]float32, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := getString(r)
		out[name] = r.F32Slice()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// boundedCount reads an element count and clamps it against the bytes left:
// each element costs at least minBytes on the wire, so a claimed count
// exceeding Remaining()/minBytes is hostile — poison the reader instead of
// pre-allocating for it.
func boundedCount(r *encode.Reader, minBytes int) int {
	n := r.Uvarint()
	if r.Err() != nil {
		return 0
	}
	if n > uint64(r.Remaining())/uint64(minBytes) {
		poison(r)
		return 0
	}
	return int(n)
}

// boundedInt reads a uvarint that must fit a non-negative int32, so the
// value stays positive even where int is 32 bits (GOARCH=386/arm).
func boundedInt(r *encode.Reader) int {
	v := r.Uvarint()
	if v > math.MaxInt32 {
		poison(r)
		return 0
	}
	return int(v)
}

// errOf wraps a reader's pending error as ErrCorrupt (nil when clean).
func errOf(r *encode.Reader) error {
	if err := r.Err(); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}

// poison forces the reader into its sticky error state by demanding one byte
// more than remains; every later read then fails and Decode reports
// ErrCorrupt.
func poison(r *encode.Reader) {
	r.Raw(r.Remaining() + 1)
}
