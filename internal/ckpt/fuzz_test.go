package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws hostile bytes at the checkpoint reader:
// truncations, bit flips, forged headers, and records whose length prefixes
// claim far more data than exists. Decode must either return an error or a
// snapshot that re-encodes consistently — never panic, and never allocate
// disproportionately to the input (the boundedCount/F32Slice guards).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GRCK"))
	f.Add([]byte("GRCK\x01\x00\x00\x00"))
	valid := Encode(sampleSnapshot())
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add(valid[:len(valid)/2])
	minimal := Encode(&Snapshot{})
	f.Add(minimal)
	// A checksum-valid record with hostile counts in the body.
	forged := append([]byte(nil), valid...)
	for i := 20; i < 40 && i < len(forged)-4; i++ {
		forged[i] = 0xff
	}
	reseal(forged)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		// Anything that decodes must round-trip: re-encoding and re-decoding
		// yields the same record bytes (the format has one canonical
		// serialization per snapshot).
		again := Encode(s)
		s2, err := Decode(again)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if !bytes.Equal(again, Encode(s2)) {
			t.Fatal("encoding is not a fixed point for decoded snapshots")
		}
	})
}

// FuzzAutotuneState aims hostile bytes specifically at the version-3 tuner
// section: the seeds carry valid records whose tuner tail is then mutated and
// CRC-resealed, so the fuzzer starts inside the policy-state decoder instead
// of bouncing off the checksum gate. Decode must never panic, never allocate
// disproportionately (a forged Assign/LastBytes count cannot exceed the bytes
// present), and anything accepted must re-encode canonically with structurally
// consistent policy state.
func FuzzAutotuneState(f *testing.F) {
	valid := Encode(sampleSnapshot())
	f.Add(valid)
	// A snapshot whose only payload is the tuner section.
	bare := Encode(&Snapshot{Tuner: sampleSnapshot().Tuner})
	f.Add(bare)
	// No tuner at all (presence byte 0).
	f.Add(Encode(&Snapshot{}))
	// Truncate inside the tuner section.
	f.Add(valid[:len(valid)-6])
	// Forge the tuner tail with huge uvarints, then reseal so the CRC passes.
	for _, src := range [][]byte{valid, bare} {
		forged := append([]byte(nil), src...)
		for i := len(forged) - 24; i < len(forged)-4; i++ {
			if i >= 0 {
				forged[i] = 0xff
			}
		}
		reseal(forged)
		f.Add(forged)
		// And a milder mutation: flip bits across the tuner region.
		flipped := append([]byte(nil), src...)
		for i := len(flipped) - 30; i < len(flipped)-4; i += 3 {
			if i >= 0 {
				flipped[i] ^= 0x24
			}
		}
		reseal(flipped)
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		if tu := s.Tuner; tu != nil {
			if len(tu.Pending) != len(tu.Assign) {
				t.Fatalf("decoded tuner state is inconsistent: %d assigns, %d pendings",
					len(tu.Assign), len(tu.Pending))
			}
			for i, v := range tu.LastBytes {
				if v < -1 {
					t.Fatalf("decoded tuner byte cell %d holds %d (< -1)", i, v)
				}
			}
		}
		again := Encode(s)
		s2, err := Decode(again)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if !bytes.Equal(again, Encode(s2)) {
			t.Fatal("encoding is not a fixed point for decoded snapshots")
		}
	})
}
