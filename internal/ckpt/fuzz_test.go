package ckpt

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode throws hostile bytes at the checkpoint reader:
// truncations, bit flips, forged headers, and records whose length prefixes
// claim far more data than exists. Decode must either return an error or a
// snapshot that re-encodes consistently — never panic, and never allocate
// disproportionately to the input (the boundedCount/F32Slice guards).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("GRCK"))
	f.Add([]byte("GRCK\x01\x00\x00\x00"))
	valid := Encode(sampleSnapshot())
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add(valid[:len(valid)/2])
	minimal := Encode(&Snapshot{})
	f.Add(minimal)
	// A checksum-valid record with hostile counts in the body.
	forged := append([]byte(nil), valid...)
	for i := 20; i < 40 && i < len(forged)-4; i++ {
		forged[i] = 0xff
	}
	reseal(forged)
	f.Add(forged)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := Decode(b)
		if err != nil {
			return
		}
		// Anything that decodes must round-trip: re-encoding and re-decoding
		// yields the same record bytes (the format has one canonical
		// serialization per snapshot).
		again := Encode(s)
		s2, err := Decode(again)
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if !bytes.Equal(again, Encode(s2)) {
			t.Fatal("encoding is not a fixed point for decoded snapshots")
		}
	})
}
