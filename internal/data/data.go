// Package data provides deterministic synthetic datasets standing in for the
// paper's benchmarks (Table II): Gaussian-prototype images for CIFAR-10 /
// ImageNet, latent-factor implicit ratings for MovieLens-20M, Markov-chain
// token streams for Penn Treebank, and ellipse segmentation masks for
// DAGM2007.
//
// Real datasets are unavailable offline and far too large for a CPU-only Go
// substrate; these generators produce learnable tasks with held-out
// evaluation under the same quality metrics, which is what the compression
// study needs (see DESIGN.md, substitutions).
package data

import (
	"fmt"

	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Batch carries one mini-batch in whichever representation the task uses.
// Exactly the fields a task needs are non-nil.
type Batch struct {
	X   *tensor.Dense // dense inputs (images)
	IDs [][]int       // integer inputs (token windows, (user,item) pairs)
	Y   []int         // class / next-token labels
	YF  *tensor.Dense // dense targets (masks, binary labels)
}

// Dataset is an indexable collection of examples.
type Dataset interface {
	Len() int
	Batch(indices []int) Batch
}

// Sampler produces the per-epoch mini-batch schedule for one worker's shard
// of a dataset. Sharding is by contiguous stripes after a seeded shuffle, so
// all workers agree on the partition (the paper's data-parallel setup: each
// worker owns a partition D_i).
type Sampler struct {
	n, workers, rank int
	seed             uint64
	epoch            int
}

// NewSampler creates a sampler over n examples for the given worker.
func NewSampler(n, workers, rank int, seed uint64) *Sampler {
	if workers <= 0 || rank < 0 || rank >= workers {
		panic(fmt.Sprintf("data: bad sampler rank %d of %d", rank, workers))
	}
	return &Sampler{n: n, workers: workers, rank: rank, seed: seed}
}

// EpochBatches returns this worker's mini-batches for the next epoch: a
// shuffled shard cut into batches of size bs (the final short batch is
// dropped so every worker performs the same number of steps, as collective
// training requires).
func (s *Sampler) EpochBatches(bs int) [][]int {
	rng := fxrand.New(s.seed + uint64(s.epoch)*1_000_003)
	s.epoch++
	perm := rng.Perm(s.n)
	shard := s.n / s.workers
	lo := s.rank * shard
	mine := perm[lo : lo+shard]
	var batches [][]int
	for i := 0; i+bs <= len(mine); i += bs {
		batches = append(batches, mine[i:i+bs])
	}
	return batches
}

// Seek positions the sampler so the next EpochBatches call produces the
// schedule for the given epoch. Epoch schedules are a pure function of
// (seed, epoch), so a resumed worker that seeks to its checkpointed epoch
// replays exactly the batches the uninterrupted run would have drawn.
func (s *Sampler) Seek(epoch int) { s.epoch = epoch }

// StepsPerEpoch reports how many batches of size bs each worker runs.
func (s *Sampler) StepsPerEpoch(bs int) int {
	return (s.n / s.workers) / bs
}

// AllIndices returns [0, n) for full-dataset evaluation.
func AllIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
