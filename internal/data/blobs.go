package data

import (
	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Blobs is a synthetic binary-segmentation dataset standing in for DAGM2007
// in the U-Net benchmark: grayscale images with a noisy background and 1-3
// brighter elliptical defects; the target is the per-pixel defect mask,
// evaluated by intersection-over-union.
type Blobs struct {
	H, W  int
	x, yf []*tensor.Dense
}

var _ Dataset = (*Blobs)(nil)

// BlobsConfig parameterizes the generator.
type BlobsConfig struct {
	H, W  int
	N     int
	Noise float32
	Seed  uint64
}

// NewBlobs generates the dataset.
func NewBlobs(cfg BlobsConfig) *Blobs {
	r := fxrand.New(cfg.Seed)
	d := &Blobs{H: cfg.H, W: cfg.W}
	for i := 0; i < cfg.N; i++ {
		img := tensor.New(1, cfg.H, cfg.W)
		mask := tensor.New(1, cfg.H, cfg.W)
		for j := range img.Data() {
			img.Data()[j] = r.NormFloat32() * cfg.Noise
		}
		blobs := r.Intn(3) + 1
		for b := 0; b < blobs; b++ {
			cy := float32(r.Intn(cfg.H))
			cx := float32(r.Intn(cfg.W))
			ry := float32(r.Intn(cfg.H/4) + 2)
			rx := float32(r.Intn(cfg.W/4) + 2)
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					dy := (float32(y) - cy) / ry
					dx := (float32(x) - cx) / rx
					if dy*dy+dx*dx <= 1 {
						img.Set(img.At(0, y, x)+1.5, 0, y, x)
						mask.Set(1, 0, y, x)
					}
				}
			}
		}
		d.x = append(d.x, img)
		d.yf = append(d.yf, mask)
	}
	return d
}

// Len returns the number of samples.
func (d *Blobs) Len() int { return len(d.x) }

// Batch assembles [B,1,H,W] images with matching masks in YF.
func (d *Blobs) Batch(indices []int) Batch {
	b := len(indices)
	x := tensor.New(b, 1, d.H, d.W)
	yf := tensor.New(b, 1, d.H, d.W)
	stride := d.H * d.W
	for i, idx := range indices {
		copy(x.Data()[i*stride:(i+1)*stride], d.x[idx].Data())
		copy(yf.Data()[i*stride:(i+1)*stride], d.yf[idx].Data())
	}
	return Batch{X: x, YF: yf}
}
