package data

import (
	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Images is a synthetic image-classification dataset: each class has a random
// low-frequency prototype image, and samples are the prototype plus pixel
// noise. It is learnable by both MLPs and CNNs, with difficulty controlled by
// the noise level, and stands in for CIFAR-10 / ImageNet in the paper's image
// classification benchmarks.
type Images struct {
	Classes, C, H, W int
	protos           []*tensor.Dense
	x                []*tensor.Dense
	y                []int
}

var _ Dataset = (*Images)(nil)

// ImagesConfig parameterizes the generator.
type ImagesConfig struct {
	Classes int
	C, H, W int
	N       int     // number of samples
	Noise   float32 // pixel noise stddev
	Seed    uint64
	// SampleSalt varies the per-sample noise without changing the class
	// prototypes: train and test sets share a Seed and differ in salt.
	SampleSalt uint64
}

// NewImages generates the dataset. Prototypes are smooth (low-frequency)
// patterns so convolution kernels have local structure to exploit.
func NewImages(cfg ImagesConfig) *Images {
	r := fxrand.New(cfg.Seed)
	d := &Images{Classes: cfg.Classes, C: cfg.C, H: cfg.H, W: cfg.W}
	// Build smooth prototypes: random coarse 4x4 grids, bilinearly upsampled.
	const coarse = 4
	for c := 0; c < cfg.Classes; c++ {
		grid := make([]float32, cfg.C*coarse*coarse)
		for i := range grid {
			grid[i] = r.NormFloat32()
		}
		p := tensor.New(cfg.C, cfg.H, cfg.W)
		for ch := 0; ch < cfg.C; ch++ {
			for y := 0; y < cfg.H; y++ {
				for x := 0; x < cfg.W; x++ {
					// Bilinear sample of the coarse grid.
					gy := float32(y) / float32(cfg.H-1) * (coarse - 1)
					gx := float32(x) / float32(cfg.W-1) * (coarse - 1)
					y0, x0 := int(gy), int(gx)
					y1, x1 := min(y0+1, coarse-1), min(x0+1, coarse-1)
					fy, fx := gy-float32(y0), gx-float32(x0)
					g := func(yy, xx int) float32 { return grid[ch*coarse*coarse+yy*coarse+xx] }
					v := g(y0, x0)*(1-fy)*(1-fx) + g(y0, x1)*(1-fy)*fx +
						g(y1, x0)*fy*(1-fx) + g(y1, x1)*fy*fx
					p.Set(v, ch, y, x)
				}
			}
		}
		d.protos = append(d.protos, p)
	}
	rs := r.Fork(cfg.SampleSalt)
	for i := 0; i < cfg.N; i++ {
		c := i % cfg.Classes
		img := d.protos[c].Clone()
		for j := range img.Data() {
			img.Data()[j] += rs.NormFloat32() * cfg.Noise
		}
		d.x = append(d.x, img)
		d.y = append(d.y, c)
	}
	return d
}

// Len returns the number of samples.
func (d *Images) Len() int { return len(d.x) }

// Batch assembles [B,C,H,W] inputs and integer labels.
func (d *Images) Batch(indices []int) Batch {
	b := len(indices)
	x := tensor.New(b, d.C, d.H, d.W)
	y := make([]int, b)
	stride := d.C * d.H * d.W
	for i, idx := range indices {
		copy(x.Data()[i*stride:(i+1)*stride], d.x[idx].Data())
		y[i] = d.y[idx]
	}
	return Batch{X: x, Y: y}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
