package data

import (
	"math"
	"testing"
)

func TestSamplerShardsDisjointAndEqual(t *testing.T) {
	const n, workers, bs = 1000, 4, 10
	seen := map[int]int{}
	var steps []int
	for rank := 0; rank < workers; rank++ {
		s := NewSampler(n, workers, rank, 7)
		batches := s.EpochBatches(bs)
		steps = append(steps, len(batches))
		for _, b := range batches {
			for _, idx := range b {
				seen[idx]++
			}
		}
	}
	for rank := 1; rank < workers; rank++ {
		if steps[rank] != steps[0] {
			t.Fatalf("uneven steps per worker: %v", steps)
		}
	}
	for idx, c := range seen {
		if c != 1 {
			t.Fatalf("index %d appeared %d times across shards", idx, c)
		}
	}
	if len(seen) != n {
		t.Fatalf("shards covered %d of %d indices", len(seen), n)
	}
}

func TestSamplerEpochsDiffer(t *testing.T) {
	s := NewSampler(100, 1, 0, 3)
	b1 := s.EpochBatches(10)
	b2 := s.EpochBatches(10)
	same := true
	for i := range b1 {
		for j := range b1[i] {
			if b1[i][j] != b2[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("two epochs used the identical order")
	}
}

func TestSamplerDeterministicAcrossWorkers(t *testing.T) {
	// Two samplers with the same seed must agree on the global permutation:
	// rank 0's shard from one run equals rank 0's shard from another.
	a := NewSampler(64, 2, 0, 5).EpochBatches(8)
	b := NewSampler(64, 2, 0, 5).EpochBatches(8)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("sampler not deterministic")
			}
		}
	}
}

func TestSamplerBadRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSampler(10, 2, 2, 1)
}

func TestStepsPerEpoch(t *testing.T) {
	s := NewSampler(100, 4, 0, 1)
	if s.StepsPerEpoch(10) != 2 {
		t.Fatalf("StepsPerEpoch = %d want 2", s.StepsPerEpoch(10))
	}
}

func TestImagesShapesAndLabels(t *testing.T) {
	d := NewImages(ImagesConfig{Classes: 3, C: 2, H: 8, W: 8, N: 30, Noise: 0.1, Seed: 1})
	if d.Len() != 30 {
		t.Fatalf("Len = %d", d.Len())
	}
	b := d.Batch([]int{0, 1, 2})
	if b.X.Dim(0) != 3 || b.X.Dim(1) != 2 || b.X.Dim(2) != 8 || b.X.Dim(3) != 8 {
		t.Fatalf("batch shape %v", b.X.Shape())
	}
	if b.Y[0] != 0 || b.Y[1] != 1 || b.Y[2] != 2 {
		t.Fatalf("labels %v", b.Y)
	}
}

func TestImagesClassesSeparable(t *testing.T) {
	// Same-class samples must be closer than cross-class samples on average.
	d := NewImages(ImagesConfig{Classes: 2, C: 1, H: 8, W: 8, N: 40, Noise: 0.3, Seed: 2})
	b := d.Batch(AllIndices(40))
	dist := func(i, j int) float64 {
		var s float64
		stride := 64
		for k := 0; k < stride; k++ {
			diff := float64(b.X.Data()[i*stride+k] - b.X.Data()[j*stride+k])
			s += diff * diff
		}
		return s
	}
	var same, cross float64
	var ns, nc int
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if b.Y[i] == b.Y[j] {
				same += dist(i, j)
				ns++
			} else {
				cross += dist(i, j)
				nc++
			}
		}
	}
	if same/float64(ns) >= cross/float64(nc) {
		t.Fatal("classes are not separable")
	}
}

func TestImagesDeterministic(t *testing.T) {
	a := NewImages(ImagesConfig{Classes: 2, C: 1, H: 4, W: 4, N: 4, Noise: 0.1, Seed: 9})
	b := NewImages(ImagesConfig{Classes: 2, C: 1, H: 4, W: 4, N: 4, Noise: 0.1, Seed: 9})
	ba, bb := a.Batch([]int{0, 3}), b.Batch([]int{0, 3})
	for i := range ba.X.Data() {
		if ba.X.Data()[i] != bb.X.Data()[i] {
			t.Fatal("images not deterministic")
		}
	}
}

func TestRatingsStructure(t *testing.T) {
	d := NewRatings(RatingsConfig{Users: 50, Items: 200, LatentDim: 8, PosPerUser: 5, NegPerPos: 4, Seed: 3})
	if d.Len() == 0 {
		t.Fatal("empty ratings dataset")
	}
	b := d.Batch([]int{0, 1})
	if len(b.IDs) != 2 || len(b.IDs[0]) != 2 {
		t.Fatalf("IDs shape wrong: %v", b.IDs)
	}
	if b.IDs[0][0] < 0 || b.IDs[0][0] >= 50 || b.IDs[0][1] < 0 || b.IDs[0][1] >= 200 {
		t.Fatalf("ids out of range: %v", b.IDs[0])
	}
	pos, negs := d.EvalCases()
	if len(pos) != 50 || len(negs) != 50 {
		t.Fatalf("eval cases %d/%d", len(pos), len(negs))
	}
	for u := range negs {
		if len(negs[u]) != 99 {
			t.Fatalf("user %d has %d negatives", u, len(negs[u]))
		}
		for _, n := range negs[u] {
			if n == pos[u] {
				t.Fatal("held-out positive appears among negatives")
			}
		}
	}
}

func TestRatingsLabelBalance(t *testing.T) {
	d := NewRatings(RatingsConfig{Users: 20, Items: 100, LatentDim: 4, PosPerUser: 4, NegPerPos: 4, Seed: 4})
	b := d.Batch(AllIndices(d.Len()))
	var pos int
	for _, v := range b.YF.Data() {
		if v == 1 {
			pos++
		}
	}
	wantRatio := 1.0 / 5.0 // 1 positive per 4 negatives
	got := float64(pos) / float64(d.Len())
	if math.Abs(got-wantRatio) > 0.02 {
		t.Fatalf("positive ratio %v want ~%v", got, wantRatio)
	}
}

func TestTokenStreamShapes(t *testing.T) {
	d := NewTokenStream(TokenConfig{Vocab: 50, SeqLen: 8, TrainTok: 1000, TestTok: 200, Successors: 4, Seed: 5})
	if d.Len() != (1000-1)/8 {
		t.Fatalf("Len = %d", d.Len())
	}
	b := d.Batch([]int{0, 2})
	if len(b.IDs) != 2 || len(b.IDs[0]) != 8 || len(b.Y) != 16 {
		t.Fatalf("token batch shapes: ids %d x %d, y %d", len(b.IDs), len(b.IDs[0]), len(b.Y))
	}
	// Targets are inputs shifted by one.
	if b.IDs[0][1] != b.Y[0] {
		t.Fatal("targets are not next tokens")
	}
	for _, tok := range b.IDs[0] {
		if tok < 0 || tok >= 50 {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
}

func TestTokenStreamIsPredictable(t *testing.T) {
	// The chain's entropy must be far below the uniform log(V) bound,
	// otherwise the LM benchmark cannot show learning.
	d := NewTokenStream(TokenConfig{Vocab: 100, SeqLen: 8, TrainTok: 1000, TestTok: 100, Successors: 5, Seed: 6})
	uniform := math.Log(100)
	if d.Entropy > uniform*0.7 {
		t.Fatalf("chain entropy %v too close to uniform %v", d.Entropy, uniform)
	}
	if d.Entropy <= 0 {
		t.Fatalf("entropy %v must be positive", d.Entropy)
	}
}

func TestTokenStreamTestWindows(t *testing.T) {
	d := NewTokenStream(TokenConfig{Vocab: 30, SeqLen: 10, TrainTok: 500, TestTok: 101, Successors: 3, Seed: 7})
	ids, targets := d.TestWindows()
	if len(ids) != 10 || len(targets) != 10 {
		t.Fatalf("test windows %d/%d", len(ids), len(targets))
	}
	if ids[0][1] != targets[0][0] {
		t.Fatal("test targets misaligned")
	}
}

func TestBlobsMaskConsistency(t *testing.T) {
	d := NewBlobs(BlobsConfig{H: 16, W: 16, N: 10, Noise: 0.2, Seed: 8})
	b := d.Batch(AllIndices(10))
	if b.X.Dim(0) != 10 || b.YF.Dim(0) != 10 {
		t.Fatal("blob batch shapes wrong")
	}
	// Mask pixels must be brighter on average than background.
	var maskSum, bgSum float64
	var maskN, bgN int
	for i, m := range b.YF.Data() {
		if m == 1 {
			maskSum += float64(b.X.Data()[i])
			maskN++
		} else if m == 0 {
			bgSum += float64(b.X.Data()[i])
			bgN++
		} else {
			t.Fatalf("mask value %v not binary", m)
		}
	}
	if maskN == 0 || bgN == 0 {
		t.Fatal("degenerate masks")
	}
	if maskSum/float64(maskN) <= bgSum/float64(bgN)+1 {
		t.Fatal("defects are not brighter than background")
	}
}

func TestAllIndices(t *testing.T) {
	idx := AllIndices(3)
	if len(idx) != 3 || idx[0] != 0 || idx[2] != 2 {
		t.Fatalf("AllIndices = %v", idx)
	}
}
