package data

import (
	"repro/internal/fxrand"
	"repro/internal/tensor"
)

// Ratings is a synthetic implicit-feedback recommendation dataset standing in
// for MovieLens-20M in the NCF benchmark. Ground truth preferences follow a
// latent-factor model: user u likes item v when σ(⟨p_u, q_v⟩) is high. The
// training set holds observed positives plus sampled negatives (the standard
// NCF regime); evaluation is leave-one-out with 99 sampled negatives per
// user, scored by Hit Rate@10 — the paper's "Best Hit Rate" metric.
type Ratings struct {
	Users, Items int

	// training triples
	user, item []int
	label      []float32

	// leave-one-out eval: per user, the held-out positive and 99 negatives
	evalPos  []int
	evalNegs [][]int

	rng *fxrand.RNG
}

var _ Dataset = (*Ratings)(nil)

// RatingsConfig parameterizes the generator.
type RatingsConfig struct {
	Users, Items int
	LatentDim    int
	PosPerUser   int // observed positives per user (training)
	NegPerPos    int // sampled negatives per positive
	Seed         uint64
}

// NewRatings generates the dataset.
func NewRatings(cfg RatingsConfig) *Ratings {
	r := fxrand.New(cfg.Seed)
	d := &Ratings{Users: cfg.Users, Items: cfg.Items, rng: r.Fork(77)}

	// Latent ground truth.
	p := make([][]float32, cfg.Users)
	q := make([][]float32, cfg.Items)
	for u := range p {
		p[u] = randVec(r, cfg.LatentDim)
	}
	for i := range q {
		q[i] = randVec(r, cfg.LatentDim)
	}
	score := func(u, i int) float32 {
		var s float32
		for k := 0; k < cfg.LatentDim; k++ {
			s += p[u][k] * q[i][k]
		}
		return s
	}

	for u := 0; u < cfg.Users; u++ {
		// The user's true positives are their top-scoring items among a
		// random candidate pool; this creates learnable structure without an
		// O(U·I) full sort.
		pool := r.Sample(cfg.Items, minInt(cfg.Items, cfg.PosPerUser*8))
		// Partial selection of top PosPerUser+1 by score.
		topK := cfg.PosPerUser + 1 // +1 held out for eval
		for sel := 0; sel < topK && sel < len(pool); sel++ {
			best := sel
			for j := sel + 1; j < len(pool); j++ {
				if score(u, pool[j]) > score(u, pool[best]) {
					best = j
				}
			}
			pool[sel], pool[best] = pool[best], pool[sel]
		}
		positives := pool[:minInt(topK, len(pool))]
		held := positives[0] // highest-scored item is held out
		d.evalPos = append(d.evalPos, held)
		negs := make([]int, 0, 99)
		for len(negs) < 99 {
			cand := r.Intn(cfg.Items)
			if cand != held {
				negs = append(negs, cand)
			}
		}
		d.evalNegs = append(d.evalNegs, negs)

		for _, it := range positives[1:] {
			d.user = append(d.user, u)
			d.item = append(d.item, it)
			d.label = append(d.label, 1)
			for n := 0; n < cfg.NegPerPos; n++ {
				d.user = append(d.user, u)
				d.item = append(d.item, r.Intn(cfg.Items))
				d.label = append(d.label, 0)
			}
		}
	}
	return d
}

func randVec(r *fxrand.RNG, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		v[i] = r.NormFloat32()
	}
	return v
}

// Len returns the number of training triples.
func (d *Ratings) Len() int { return len(d.user) }

// Batch assembles (user,item) id pairs with binary labels in YF.
func (d *Ratings) Batch(indices []int) Batch {
	ids := make([][]int, len(indices))
	yf := tensor.New(len(indices))
	for i, idx := range indices {
		ids[i] = []int{d.user[idx], d.item[idx]}
		yf.Data()[i] = d.label[idx]
	}
	return Batch{IDs: ids, YF: yf}
}

// EvalCases returns the leave-one-out evaluation cases: for each user, the
// held-out positive item and its 99 sampled negatives.
func (d *Ratings) EvalCases() (pos []int, negs [][]int) { return d.evalPos, d.evalNegs }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
