package tensor

import (
	"math"

	"repro/internal/fxrand"
)

// RandN fills t with N(0, stddev²) variates drawn from r and returns t.
func (t *Dense) RandN(r *fxrand.RNG, stddev float32) *Dense {
	for i := range t.data {
		t.data[i] = r.NormFloat32() * stddev
	}
	return t
}

// RandU fills t with uniform variates in [lo, hi) and returns t.
func (t *Dense) RandU(r *fxrand.RNG, lo, hi float32) *Dense {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + r.Float32()*span
	}
	return t
}

// GlorotInit fills t with the Glorot/Xavier uniform initialization for a
// layer with the given fan-in and fan-out, the default initializer used by
// the paper's TensorFlow benchmarks.
func (t *Dense) GlorotInit(r *fxrand.RNG, fanIn, fanOut int) *Dense {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return t.RandU(r, -limit, limit)
}

// HeInit fills t with He-normal initialization (for ReLU networks).
func (t *Dense) HeInit(r *fxrand.RNG, fanIn int) *Dense {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return t.RandN(r, std)
}
