package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/fxrand"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Rank() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad shape metadata: %v", x)
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New not zero filled")
		}
	}
}

func TestScalarTensor(t *testing.T) {
	s := New()
	if s.Size() != 1 || s.Rank() != 0 {
		t.Fatalf("scalar tensor wrong: size=%d rank=%d", s.Size(), s.Rank())
	}
	s.Set(3.5)
	if s.At() != 3.5 {
		t.Fatal("scalar At/Set broken")
	}
}

func TestFromSliceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(0, 2) != 3 || x.At(1, 0) != 4 || x.At(1, 2) != 6 {
		t.Fatalf("row-major indexing broken: %v", x.Data())
	}
	x.Set(9, 1, 1)
	if x.Data()[4] != 9 {
		t.Fatal("Set wrote wrong offset")
	}
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	c := x.Clone()
	c.Data()[0] = 99
	if x.Data()[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data()[0] = 7
	if x.At(0, 0) != 7 {
		t.Fatal("Reshape does not share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad reshape did not panic")
		}
	}()
	x.Reshape(3)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.Add(b)
	want := []float32{5, 7, 9}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Fatalf("Add: got %v", a.Data())
		}
	}
	a.Sub(b)
	if a.Data()[0] != 1 || a.Data()[2] != 3 {
		t.Fatalf("Sub: got %v", a.Data())
	}
	a.Mul(b)
	if a.Data()[1] != 10 {
		t.Fatalf("Mul: got %v", a.Data())
	}
	a.Div(b)
	if a.Data()[1] != 2 {
		t.Fatalf("Div: got %v", a.Data())
	}
	a.Scale(2).AddScalar(1)
	if a.Data()[0] != 3 {
		t.Fatalf("Scale/AddScalar: got %v", a.Data())
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 4}, 2)
	a.AddScaled(0.5, b)
	if a.Data()[0] != 2 || a.Data()[1] != 3 {
		t.Fatalf("AddScaled: got %v", a.Data())
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float32{-1, 2}, 2)
	a.Apply(func(x float32) float32 { return x * x })
	if a.Data()[0] != 1 || a.Data()[1] != 4 {
		t.Fatalf("Apply: got %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-3, 1, 2}, 3)
	if a.Sum() != 0 {
		t.Fatalf("Sum = %v", a.Sum())
	}
	if a.Mean() != 0 {
		t.Fatalf("Mean = %v", a.Mean())
	}
	if a.Max() != 2 || a.Min() != -3 {
		t.Fatalf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if got := a.Dot(a); got != 14 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestNorms(t *testing.T) {
	a := FromSlice([]float32{3, -4}, 2)
	if a.Norm1() != 7 {
		t.Fatalf("Norm1 = %v", a.Norm1())
	}
	if a.Norm2() != 5 {
		t.Fatalf("Norm2 = %v", a.Norm2())
	}
	if a.NormInf() != 4 {
		t.Fatalf("NormInf = %v", a.NormInf())
	}
	if Norm2F32(a.Data()) != 5 || Norm1F32(a.Data()) != 7 || NormInfF32(a.Data()) != 4 {
		t.Fatal("flat norm helpers disagree")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2).Add(New(3))
}

func TestMatmulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := Matmul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, v := range c.Data() {
		if v != want[i] {
			t.Fatalf("Matmul got %v want %v", c.Data(), want)
		}
	}
}

func TestMatmulIdentity(t *testing.T) {
	r := fxrand.New(1)
	a := New(4, 4).RandN(r, 1)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	c := Matmul(a, id)
	for i, v := range c.Data() {
		if v != a.Data()[i] {
			t.Fatal("A·I != A")
		}
	}
}

func TestMatmulInto(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	c := New(2, 2)
	c.Fill(99) // ensure it is zeroed internally
	MatmulInto(c, a, b)
	want := Matmul(a, b)
	for i, v := range c.Data() {
		if v != want.Data()[i] {
			t.Fatalf("MatmulInto %v want %v", c.Data(), want.Data())
		}
	}
}

// matmulRef is a naive reference implementation for property tests.
func matmulRef(a, b *Dense) *Dense {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.At(i, p)) * float64(b.At(p, j))
			}
			c.Set(float32(s), i, j)
		}
	}
	return c
}

func TestMatmulMatchesReference(t *testing.T) {
	f := func(seed uint64, mr, kr, nr uint8) bool {
		m, k, n := int(mr%8)+1, int(kr%8)+1, int(nr%8)+1
		r := fxrand.New(seed)
		a := New(m, k).RandN(r, 1)
		b := New(k, n).RandN(r, 1)
		got := Matmul(a, b)
		want := matmulRef(a, b)
		for i := range got.Data() {
			if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMatmulTAMatchesTranspose(t *testing.T) {
	r := fxrand.New(2)
	a := New(5, 3).RandN(r, 1)
	b := New(5, 4).RandN(r, 1)
	got := MatmulTA(a, b)
	want := Matmul(Transpose(a), b)
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
			t.Fatal("MatmulTA != Aᵀ·B")
		}
	}
}

func TestMatmulTBMatchesTranspose(t *testing.T) {
	r := fxrand.New(3)
	a := New(5, 3).RandN(r, 1)
	b := New(4, 3).RandN(r, 1)
	got := MatmulTB(a, b)
	want := Matmul(a, Transpose(b))
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > 1e-4 {
			t.Fatal("MatmulTB != A·Bᵀ")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := fxrand.New(4)
	a := New(3, 7).RandN(r, 1)
	b := Transpose(Transpose(a))
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatal("transpose twice != identity")
		}
	}
}

func TestMatmulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Matmul(New(2, 3), New(2, 3))
}

func TestRandNMoments(t *testing.T) {
	r := fxrand.New(5)
	x := New(100000).RandN(r, 2)
	mean := x.Mean()
	var varSum float64
	for _, v := range x.Data() {
		varSum += (float64(v) - mean) * (float64(v) - mean)
	}
	variance := varSum / float64(x.Size())
	if math.Abs(mean) > 0.05 {
		t.Fatalf("RandN mean %v", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Fatalf("RandN variance %v want ~4", variance)
	}
}

func TestRandURange(t *testing.T) {
	r := fxrand.New(6)
	x := New(10000).RandU(r, -2, 3)
	if x.Min() < -2 || x.Max() >= 3 {
		t.Fatalf("RandU out of range: [%v,%v]", x.Min(), x.Max())
	}
}

func TestGlorotBounds(t *testing.T) {
	r := fxrand.New(7)
	x := New(1000).GlorotInit(r, 50, 50)
	limit := math.Sqrt(6.0 / 100.0)
	if float64(x.NormInf()) > limit {
		t.Fatalf("Glorot exceeds limit %v: %v", limit, x.NormInf())
	}
}

func BenchmarkMatmul128(b *testing.B) {
	r := fxrand.New(1)
	x := New(128, 128).RandN(r, 1)
	y := New(128, 128).RandN(r, 1)
	c := New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatmulInto(c, x, y)
	}
}

func BenchmarkAddScaled(b *testing.B) {
	r := fxrand.New(1)
	x := New(1<<16).RandN(r, 1)
	y := New(1<<16).RandN(r, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.AddScaled(0.001, y)
	}
}
