package tensor

import "fmt"

// Matmul computes C = A·B for 2-D tensors A (m×k) and B (k×n), writing into a
// freshly allocated m×n tensor.
//
// The kernel iterates in ikj order so the inner loop streams both B and C
// rows sequentially; this is the standard cache-friendly layout for row-major
// storage and is 5-10x faster than the naive ijk order for the matrix sizes
// used by the neural-network substrate.
func Matmul(a, b *Dense) *Dense {
	m, k := mustMatrix(a, "Matmul lhs")
	k2, n := mustMatrix(b, "Matmul rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: Matmul inner dimensions %d vs %d", k, k2))
	}
	c := New(m, n)
	matmulInto(c.data, a.data, b.data, m, k, n)
	return c
}

// MatmulInto computes C = A·B into an existing m×n tensor, avoiding the
// allocation. C must not alias A or B.
func MatmulInto(c, a, b *Dense) {
	m, k := mustMatrix(a, "MatmulInto lhs")
	k2, n := mustMatrix(b, "MatmulInto rhs")
	cm, cn := mustMatrix(c, "MatmulInto dst")
	if k != k2 || cm != m || cn != n {
		panic(fmt.Sprintf("tensor: MatmulInto shapes %v·%v -> %v", a.shape, b.shape, c.shape))
	}
	c.Zero()
	matmulInto(c.data, a.data, b.data, m, k, n)
}

func matmulInto(c, a, b []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		ci := c[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatmulTA computes C = Aᵀ·B where A is k×m and B is k×n, producing m×n.
// Used for weight gradients (dW = Xᵀ·dY).
func MatmulTA(a, b *Dense) *Dense {
	k, m := mustMatrix(a, "MatmulTA lhs")
	k2, n := mustMatrix(b, "MatmulTA rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatmulTA inner dimensions %d vs %d", k, k2))
	}
	c := New(m, n)
	// C[i,j] = sum_p A[p,i]*B[p,j]; iterate p outer for sequential access.
	for p := 0; p < k; p++ {
		ap := a.data[p*m : (p+1)*m]
		bp := b.data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c.data[i*n : (i+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
	return c
}

// MatmulTB computes C = A·Bᵀ where A is m×k and B is n×k, producing m×n.
// Used for input gradients (dX = dY·Wᵀ).
func MatmulTB(a, b *Dense) *Dense {
	m, k := mustMatrix(a, "MatmulTB lhs")
	n, k2 := mustMatrix(b, "MatmulTB rhs")
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatmulTB inner dimensions %d vs %d", k, k2))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		ai := a.data[i*k : (i+1)*k]
		ci := c.data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b.data[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
	return c
}

// Transpose returns a new tensor holding the transpose of 2-D tensor a.
func Transpose(a *Dense) *Dense {
	m, n := mustMatrix(a, "Transpose")
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}

func mustMatrix(t *Dense, op string) (rows, cols int) {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: %s requires rank-2 tensor, got shape %v", op, t.shape))
	}
	return t.shape[0], t.shape[1]
}
