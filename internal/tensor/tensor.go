// Package tensor implements dense float32 tensors and the linear-algebra
// primitives required by the neural-network substrate and the gradient
// compressors.
//
// The design intentionally mirrors the small subset of TensorFlow/PyTorch
// tensor functionality that the GRACE paper's framework relies on: shaped
// dense arrays of float32, elementwise arithmetic, reductions and norms, and
// 2-D matrix products. Storage is a flat slice in row-major order; Data
// exposes it so compressors can operate on gradients as flat vectors, exactly
// as the paper's sparsify/quantize helpers do.
package tensor

import (
	"fmt"
	"math"
)

// Dense is a dense, row-major float32 tensor.
type Dense struct {
	shape []int
	data  []float32
}

// New allocates a zero-filled tensor with the given shape. A tensor with no
// dimensions is a scalar holding one element.
func New(shape ...int) *Dense {
	n := checkShape(shape)
	return &Dense{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Dense {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	return &Dense{shape: append([]int(nil), shape...), data: data}
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated.
func (t *Dense) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Dense) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Dense) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Dense) Size() int { return len(t.data) }

// Data returns the underlying storage in row-major order. Mutating it mutates
// the tensor.
func (t *Dense) Data() []float32 { return t.data }

// Clone returns a deep copy.
func (t *Dense) Clone() *Dense {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// size. It panics on size mismatch.
func (t *Dense) Reshape(shape ...int) *Dense {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape size %d to %v", len(t.data), shape))
	}
	return &Dense{shape: append([]int(nil), shape...), data: t.data}
}

// offset converts a multi-index to a flat offset.
func (t *Dense) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + v
	}
	return off
}

// At returns the element at the multi-index idx.
func (t *Dense) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the multi-index idx.
func (t *Dense) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// Fill sets every element to v.
func (t *Dense) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Dense) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// CopyFrom copies src's elements into t. Shapes must have equal sizes.
func (t *Dense) CopyFrom(src *Dense) {
	if len(src.data) != len(t.data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.data, src.data)
}

// SameShape reports whether t and o have identical shapes.
func (t *Dense) SameShape(o *Dense) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// String renders a compact description (shape and size), not the full
// contents, to keep logs readable for large tensors.
func (t *Dense) String() string {
	return fmt.Sprintf("Dense%v(%d elems)", t.shape, len(t.data))
}

// --- Elementwise operations (in place, returning t for chaining) ---

func (t *Dense) assertSame(o *Dense, op string) {
	if len(o.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: %s size mismatch %d vs %d", op, len(t.data), len(o.data)))
	}
}

// Add adds o elementwise into t.
func (t *Dense) Add(o *Dense) *Dense {
	t.assertSame(o, "Add")
	for i, v := range o.data {
		t.data[i] += v
	}
	return t
}

// Sub subtracts o elementwise from t.
func (t *Dense) Sub(o *Dense) *Dense {
	t.assertSame(o, "Sub")
	for i, v := range o.data {
		t.data[i] -= v
	}
	return t
}

// Mul multiplies t by o elementwise (Hadamard product).
func (t *Dense) Mul(o *Dense) *Dense {
	t.assertSame(o, "Mul")
	for i, v := range o.data {
		t.data[i] *= v
	}
	return t
}

// Div divides t by o elementwise.
func (t *Dense) Div(o *Dense) *Dense {
	t.assertSame(o, "Div")
	for i, v := range o.data {
		t.data[i] /= v
	}
	return t
}

// Scale multiplies every element by s.
func (t *Dense) Scale(s float32) *Dense {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScalar adds s to every element.
func (t *Dense) AddScalar(s float32) *Dense {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// AddScaled performs t += s*o (axpy).
func (t *Dense) AddScaled(s float32, o *Dense) *Dense {
	t.assertSame(o, "AddScaled")
	for i, v := range o.data {
		t.data[i] += s * v
	}
	return t
}

// Apply replaces each element x with f(x).
func (t *Dense) Apply(f func(float32) float32) *Dense {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
	return t
}

// --- Reductions ---

// Sum returns the sum of all elements, accumulated in float64.
func (t *Dense) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Dense) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. It panics on empty tensors.
func (t *Dense) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on empty tensors.
func (t *Dense) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product <t, o> accumulated in float64.
func (t *Dense) Dot(o *Dense) float64 {
	t.assertSame(o, "Dot")
	var s float64
	for i, v := range t.data {
		s += float64(v) * float64(o.data[i])
	}
	return s
}

// --- Norms (computed on the flat vector, as compressors require) ---

// Norm1 returns the L1 norm.
func (t *Dense) Norm1() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (t *Dense) Norm2() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// NormInf returns the infinity norm (maximum absolute value; 0 if empty).
func (t *Dense) NormInf() float64 {
	var m float64
	for _, v := range t.data {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// --- Flat-vector helpers shared with the compressors ---

// Norm2F32 returns the Euclidean norm of a flat float32 vector.
func Norm2F32(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Norm1F32 returns the L1 norm of a flat float32 vector.
func Norm1F32(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(float64(v))
	}
	return s
}

// NormInfF32 returns the infinity norm of a flat float32 vector.
func NormInfF32(x []float32) float64 {
	var m float64
	for _, v := range x {
		a := math.Abs(float64(v))
		if a > m {
			m = a
		}
	}
	return m
}

// MeanF32 returns the mean of a flat float32 vector (0 if empty).
func MeanF32(x []float32) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += float64(v)
	}
	return s / float64(len(x))
}

// Sqrt32 is a float32 square root helper.
func Sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Abs32 is a float32 absolute-value helper.
func Abs32(x float32) float32 {
	if x < 0 {
		return -x
	}
	return x
}
