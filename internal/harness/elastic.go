package harness

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/grace"
	"repro/internal/telemetry"
)

// elasticKeep is the checkpoint retention the elastic batteries use: the
// reference phase reloads the shrink's rollback snapshot after the degraded
// run finished, so the default keep-3 pruning must not eat it.
const elasticKeep = 64

// ElasticResult reports one supervised degrade-and-continue experiment: a
// rank is lost permanently mid-run, the survivors vote to shrink to N−1 and
// finish, and the finals must match a reference N−1 run started from the
// post-reform state bit for bit.
type ElasticResult struct {
	// ShrinkStep is the step the survivors rolled back to when they committed
	// the smaller world size.
	ShrinkStep int64
	// ShrinkSize is the committed world size after the loss (N−1).
	ShrinkSize int
	// Lost holds the original ranks the shrink evicted.
	Lost []int
	// Downtime is the wall-clock span from the kill to the survivors resuming
	// training at the smaller size.
	Downtime time.Duration
	// EFDrops is the elastic_ef_drops_total counter delta over the degraded
	// run: one per evicted rank per tensor when error-feedback memory is on.
	EFDrops int64
	// Match reports bitwise equality of the degraded finals against the
	// reference N−1 run.
	Match  bool
	Detail string
	// Degraded and Reference are the survivor finals, indexed by post-shrink
	// current rank.
	Degraded, Reference []*grace.Snapshot
}

// ElasticGrowResult reports one scale-back-up experiment: after the shrink, a
// fresh worker presents at the join point, the members absorb it, and the run
// finishes at the original world size.
type ElasticGrowResult struct {
	// ShrinkStep and GrowStep are the rollback steps of the two membership
	// changes.
	ShrinkStep, GrowStep int64
	// GrowSize is the committed world size after the absorption.
	GrowSize int
	// GrowDowntime is the wall-clock span from the join registration to the
	// group resuming at full size.
	GrowDowntime time.Duration
	// Launches counts RunWorker invocations per original rank: 1 for
	// survivors, 2 for the lost rank (first incarnation dies, a fresh joiner
	// replaces it).
	Launches []int
	// Finals are the per-original-rank final snapshots; every one must carry
	// the full world size again.
	Finals []*grace.Snapshot
}

// DefaultElastic builds the standard elastic scenario on top of the recovery
// battery's training config: 3 workers, checkpoints every 3 steps, rank 1
// permanently lost at step 5, and a rejoin deadline short enough that the
// survivors' vote fires quickly once the retry budget is exhausted.
func DefaultElastic(transport, method string, mem bool, dir string) RecoveryConfig {
	cfg := DefaultRecovery(transport, method, mem, dir)
	cfg.RejoinDeadline = 500 * time.Millisecond * raceTimeoutScale
	return cfg
}

// RunElastic executes the degrade-and-continue scenario: the victim dies for
// good (no respawn), the survivors shrink to N−1 and finish, and a reference
// N−1 group — resumed from the survivors' rollback snapshots with each
// worker's compressor seeded by its pre-shrink original rank — must reproduce
// the degraded finals bit for bit.
func RunElastic(cfg RecoveryConfig) (*ElasticResult, error) {
	if err := validateElastic(&cfg); err != nil {
		return nil, err
	}
	n := cfg.Train.Workers
	res := &ElasticResult{}

	ef0 := telemetry.Default.Value(telemetry.CtrElasticEFDrops)
	shrinkDir := filepath.Join(cfg.Dir, "shrink")
	finals, err := runElasticShrinkPhase(cfg, shrinkDir, res)
	if err != nil {
		return nil, err
	}
	res.EFDrops = telemetry.Default.Value(telemetry.CtrElasticEFDrops) - ef0
	if res.ShrinkSize != n-1 {
		return nil, fmt.Errorf("harness: shrink committed size %d, want %d", res.ShrinkSize, n-1)
	}

	// Survivors in original-rank order are the reference run's launch order:
	// post-shrink current rank is the index in this list.
	var survivors []int
	for rank := 0; rank < n; rank++ {
		if rank != cfg.KillRank {
			survivors = append(survivors, rank)
		}
	}
	res.Degraded = make([]*grace.Snapshot, len(survivors))
	for cur, orig := range survivors {
		res.Degraded[cur] = finals[orig]
	}
	res.Reference, err = runElasticReferencePhase(cfg, shrinkDir, survivors, res.ShrinkStep)
	if err != nil {
		return nil, err
	}
	res.Match, res.Detail = snapshotsBitwiseEqual(res.Degraded, res.Reference)
	return res, nil
}

// runElasticShrinkPhase runs the faulted attempt: all N ranks start, the
// victim dies permanently at KillStep, and the supervisor never respawns it —
// the survivors must vote, shrink, and run to completion on their own.
func runElasticShrinkPhase(cfg RecoveryConfig, dir string, res *ElasticResult) ([]*grace.Snapshot, error) {
	n := cfg.Train.Workers
	sc, err := newFaultScaffold(&cfg, scaffoldElastic)
	if err != nil {
		return nil, err
	}
	finals := make([]*grace.Snapshot, n)
	errs := make([]error, n)

	var mu sync.Mutex
	var killT, resizeT time.Time

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				coll, die, err := sc.collFor(rank)
				if err != nil {
					errs[rank] = err
					return
				}
				if c, ok := coll.(io.Closer); ok {
					defer c.Close()
				}
				tc := cfg.Train
				d, err := ckpt.OpenDir(dir, rank)
				if err != nil {
					errs[rank] = err
					return
				}
				d.Keep = elasticKeep
				tc.Checkpoint = &grace.CheckpointConfig{
					Every: cfg.Every,
					Final: true,
					Save: func(s *grace.Snapshot) error {
						finals[rank] = s
						return d.SaveStep(s)
					},
				}
				tc.Rejoin = d.RejoinConfig()
				tc.Elastic = &grace.ElasticConfig{
					RejoinDeadline: cfg.elasticDeadline(),
					OnResize: func(m comm.Membership, step int64) {
						mu.Lock()
						res.ShrinkStep = step
						res.ShrinkSize = m.Size()
						res.Lost = m.Lost
						resizeT = time.Now()
						mu.Unlock()
					},
				}
				if rank == cfg.KillRank {
					tc.OnStep = func(_ int, step int64) error {
						if step == cfg.KillStep {
							mu.Lock()
							killT = time.Now()
							mu.Unlock()
							die()
							return ErrSimulatedCrash
						}
						return nil
					}
				}
				_, errs[rank] = grace.RunWorker(tc, rank, coll, simnetClusterFor(cfg.Train))
			}(rank)
		}
		wg.Wait()
	}()

	timeout := cfg.watchdog()
	select {
	case <-done:
	case <-time.After(timeout):
		sc.teardown()
		<-done
		return nil, fmt.Errorf("harness: elastic shrink phase watchdog fired after %v", timeout)
	}
	for rank, err := range errs {
		if rank == cfg.KillRank {
			if !errors.Is(err, ErrSimulatedCrash) {
				return nil, fmt.Errorf("harness: victim rank %d exited with %v, want the simulated crash", rank, err)
			}
			continue
		}
		if err != nil {
			return nil, fmt.Errorf("harness: survivor rank %d: %w", rank, err)
		}
	}
	if !killT.IsZero() && resizeT.After(killT) {
		res.Downtime = resizeT.Sub(killT)
	}
	return finals, nil
}

// runElasticReferencePhase replays the post-shrink run from scratch: a fresh
// N−1 group resumes the survivors' rollback snapshots (rank identities
// rewritten to the post-shrink current ranks) and runs to completion with no
// faults. Survivors of a real shrink keep the compressors their ORIGINAL rank
// seeded, so the reference workers map their current rank back to the
// original before constructing one.
func runElasticReferencePhase(cfg RecoveryConfig, dir string, survivors []int, step int64) ([]*grace.Snapshot, error) {
	m := len(survivors)
	ref := cfg
	ref.Train.Workers = m
	if base := cfg.Train.NewCompressor; base != nil {
		ref.Train.NewCompressor = func(cur int) (grace.Compressor, error) {
			return base(survivors[cur])
		}
	}
	resume := make([]*grace.Snapshot, m)
	for cur, orig := range survivors {
		d, err := ckpt.OpenDir(dir, orig)
		if err != nil {
			return nil, err
		}
		snap, err := ckpt.Load(d.Path(step))
		if err != nil {
			return nil, fmt.Errorf("harness: loading survivor %d rollback snapshot at step %d: %w", orig, step, err)
		}
		// The snapshot keeps its pre-shrink Workers count: that is what makes
		// the trainer take the elastic resume transform (replay the epoch from
		// its start under the new partition), the same path the survivors took.
		snap.Rank = cur
		resume[cur] = snap
	}

	sc, err := newFaultScaffold(&ref, scaffoldElastic)
	if err != nil {
		return nil, err
	}
	refDir := filepath.Join(cfg.Dir, "ref")
	finals := make([]*grace.Snapshot, m)
	errs := make([]error, m)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for rank := 0; rank < m; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				coll, _, err := sc.collFor(rank)
				if err != nil {
					errs[rank] = err
					return
				}
				if c, ok := coll.(io.Closer); ok {
					defer c.Close()
				}
				tc := ref.Train
				d, err := ckpt.OpenDir(refDir, rank)
				if err != nil {
					errs[rank] = err
					return
				}
				d.Keep = elasticKeep
				tc.Checkpoint = &grace.CheckpointConfig{
					Every:  cfg.Every,
					Final:  true,
					Resume: resume[rank],
					Save: func(s *grace.Snapshot) error {
						finals[rank] = s
						return d.SaveStep(s)
					},
				}
				tc.Rejoin = d.RejoinConfig()
				tc.Elastic = &grace.ElasticConfig{RejoinDeadline: cfg.elasticDeadline()}
				_, errs[rank] = grace.RunWorker(tc, rank, coll, simnetClusterFor(tc))
			}(rank)
		}
		wg.Wait()
	}()

	timeout := cfg.watchdog()
	select {
	case <-done:
	case <-time.After(timeout):
		sc.teardown()
		<-done
		return nil, fmt.Errorf("harness: elastic reference phase watchdog fired after %v", timeout)
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: reference rank %d: %w", rank, err)
		}
	}
	return finals, nil
}

// RunElasticGrow executes the scale-back-up scenario: the victim dies
// permanently, the survivors shrink and continue, then the supervisor
// launches a fresh worker under the lost original rank — the members' join
// beacon absorbs it and every rank must finish at the full world size.
func RunElasticGrow(cfg RecoveryConfig) (*ElasticGrowResult, error) {
	if err := validateElastic(&cfg); err != nil {
		return nil, err
	}
	n := cfg.Train.Workers
	sc, err := newFaultScaffold(&cfg, scaffoldElastic)
	if err != nil {
		return nil, err
	}
	dir := filepath.Join(cfg.Dir, "grow")
	res := &ElasticGrowResult{Launches: make([]int, n), Finals: make([]*grace.Snapshot, n)}
	errs := make([]error, n)

	var mu sync.Mutex
	var joinT, grownT time.Time
	var maxStep int64                // highest step any survivor completed
	shrunk := make(chan struct{})    // closed when the survivors commit N−1
	joinReady := make(chan struct{}) // closed when the joiner's registration is visible
	var shrinkOnce, grownOnce sync.Once
	// The join is sequenced against survivor progress from both sides: the
	// supervisor waits until the survivors hold a post-shrink checkpoint (so
	// the grow rolls back to a later step than the shrink did), and past the
	// gate step the survivors wait for the join request to land (so the
	// beacon is guaranteed to observe it before the run ends).
	gateStep := cfg.KillStep + 3

	launch := func(rank int, joiner bool) error {
		mu.Lock()
		res.Launches[rank]++
		mu.Unlock()
		var coll comm.Collective
		var die func()
		var err error
		if joiner {
			coll, err = sc.join(rank, cfg.watchdog())
		} else {
			coll, die, err = sc.collFor(rank)
		}
		if err != nil {
			return err
		}
		if c, ok := coll.(io.Closer); ok {
			defer c.Close()
		}
		tc := cfg.Train
		d, err := ckpt.OpenDir(dir, rank)
		if err != nil {
			return err
		}
		d.Keep = elasticKeep
		tc.Checkpoint = &grace.CheckpointConfig{
			Every: cfg.Every,
			Final: true,
			Save: func(s *grace.Snapshot) error {
				res.Finals[rank] = s
				return d.SaveStep(s)
			},
		}
		tc.Rejoin = d.RejoinConfig()
		// The joiner's deadline also bounds its JoinGroup wait — give it the
		// whole phase budget, since absorption needs the members to reach
		// their next step boundary first.
		deadline := cfg.elasticDeadline()
		if joiner {
			deadline = cfg.watchdog()
		}
		tc.Elastic = &grace.ElasticConfig{
			RejoinDeadline: deadline,
			JoinOnStart:    joiner,
			OnResize: func(m comm.Membership, step int64) {
				if m.Size() < n {
					shrinkOnce.Do(func() {
						mu.Lock()
						res.ShrinkStep = step
						mu.Unlock()
						close(shrunk)
					})
					return
				}
				grownOnce.Do(func() {
					mu.Lock()
					res.GrowStep = step
					res.GrowSize = m.Size()
					grownT = time.Now()
					mu.Unlock()
				})
			},
		}
		switch {
		case !joiner && rank == cfg.KillRank:
			tc.OnStep = func(_ int, step int64) error {
				if step == cfg.KillStep {
					die()
					return ErrSimulatedCrash
				}
				return nil
			}
		case !joiner:
			tc.OnStep = func(_ int, step int64) error {
				mu.Lock()
				if step > maxStep {
					maxStep = step
				}
				mu.Unlock()
				if step >= gateStep {
					<-joinReady
				}
				return nil
			}
		}
		_, err = grace.RunWorker(tc, rank, coll, simnetClusterFor(cfg.Train))
		return err
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				err := launch(rank, false)
				if rank == cfg.KillRank {
					if !errors.Is(err, ErrSimulatedCrash) {
						mu.Lock()
						errs[rank] = fmt.Errorf("victim exited with %v, want the simulated crash", err)
						mu.Unlock()
					}
					return
				}
				mu.Lock()
				errs[rank] = err
				mu.Unlock()
			}(rank)
		}
		// Supervisor: once the shrink is committed and the survivors have a
		// post-shrink checkpoint behind them, present a fresh worker under the
		// lost original rank and release the survivors' gate when the
		// registration is visible to the group.
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(cfg.watchdog())
			waitFor := func(ok func() bool) bool {
				for !ok() {
					if !time.Now().Before(deadline) {
						return false
					}
					time.Sleep(2 * time.Millisecond)
				}
				return true
			}
			select {
			case <-shrunk:
			case <-time.After(cfg.watchdog()):
				close(joinReady) // unblock the gate; the phase will fail below
				return
			}
			if !waitFor(func() bool {
				mu.Lock()
				defer mu.Unlock()
				return maxStep >= gateStep
			}) {
				close(joinReady)
				return
			}
			mu.Lock()
			joinT = time.Now()
			mu.Unlock()
			joined := make(chan error, 1)
			go func() { joined <- launch(cfg.KillRank, true) }()
			// The registration may already have been absorbed by the time we
			// look, so "grow committed" releases the gate too.
			waitFor(func() bool {
				if len(sc.pending()) > 0 {
					return true
				}
				mu.Lock()
				defer mu.Unlock()
				return !grownT.IsZero()
			})
			close(joinReady)
			err := <-joined
			mu.Lock()
			if errs[cfg.KillRank] == nil {
				errs[cfg.KillRank] = err
			}
			mu.Unlock()
		}()
		wg.Wait()
	}()

	timeout := 2 * cfg.watchdog()
	select {
	case <-done:
	case <-time.After(timeout):
		sc.teardown()
		<-done
		return nil, fmt.Errorf("harness: elastic grow phase watchdog fired after %v", timeout)
	}
	for rank, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: grow rank %d: %w", rank, err)
		}
	}
	if res.GrowSize != n {
		return nil, fmt.Errorf("harness: grow committed size %d, want %d", res.GrowSize, n)
	}
	for rank, s := range res.Finals {
		if s == nil {
			return nil, fmt.Errorf("harness: rank %d has no final snapshot", rank)
		}
		if s.Workers != n {
			return nil, fmt.Errorf("harness: rank %d finished at world size %d, want %d", rank, s.Workers, n)
		}
	}
	if !joinT.IsZero() && grownT.After(joinT) {
		res.GrowDowntime = grownT.Sub(joinT)
	}
	return res, nil
}

// validateElastic checks the pieces both elastic scenarios need.
func validateElastic(cfg *RecoveryConfig) error {
	n := cfg.Train.Workers
	if cfg.Train.Checkpoint != nil || cfg.Train.OnStep != nil || cfg.Train.Rejoin != nil || cfg.Train.Elastic != nil {
		return fmt.Errorf("harness: elastic owns Checkpoint, OnStep, Rejoin, and Elastic")
	}
	if cfg.Dir == "" || cfg.Every <= 0 {
		return fmt.Errorf("harness: elastic needs Dir and Every")
	}
	if n < 3 {
		return fmt.Errorf("harness: elastic needs at least 3 workers (the shrink must keep a ring)")
	}
	if cfg.KillRank < 0 || cfg.KillRank >= n {
		return fmt.Errorf("harness: kill rank %d out of [0,%d)", cfg.KillRank, n)
	}
	if cfg.KillStep <= 0 {
		return fmt.Errorf("harness: kill step must be positive")
	}
	switch cfg.Transport {
	case "", TransportHub, TransportTCP:
	default:
		return fmt.Errorf("harness: unknown transport %q", cfg.Transport)
	}
	return nil
}
