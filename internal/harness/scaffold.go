package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
)

// scaffoldKind selects which collective substrate flavor a supervised fault
// scenario runs on top of.
type scaffoldKind int

const (
	// scaffoldRestart is the one-shot group: a crash poisons it for good and
	// recovery is a full restart of every rank (RunRecovery).
	scaffoldRestart scaffoldKind = iota
	// scaffoldReform is the resilient self-healing group: survivors reform at
	// the next generation in place (RunRejoin).
	scaffoldReform
	// scaffoldElastic is the elastic-membership group: survivors may commit a
	// smaller world size and absorb joiners back later (RunElastic).
	scaffoldElastic
)

// tcpFaultRing is the surface the scaffold needs from any TCP ring flavor:
// the collective itself plus the two death modes and orderly shutdown.
type tcpFaultRing interface {
	comm.Collective
	Kill()
	Hang()
	Close() error
}

// faultScaffold bundles the transport-specific pieces shared by the restart,
// rejoin, and elastic batteries, so each battery describes only its scenario,
// not how to sever a rank on each substrate.
type faultScaffold struct {
	// collFor builds one rank's collective and its death action. On TCP the
	// action severs the victim's sockets with no goodbye handshake (Kill, not
	// Close — Close's orderly bye would make the survivors treat the departure
	// as graceful), or freezes them open in "hang" mode so the conviction must
	// come through the heartbeat miss window. On the hub there is no wire to
	// sever: the supervisor delivers the liveness verdict itself, with the
	// same sentinel a transport's heartbeat layer would produce.
	collFor func(rank int) (comm.Collective, func(), error)
	// teardown force-releases the whole group when the phase watchdog fires.
	teardown func()
	// hub is non-nil on the hub transport; elastic grow scenarios register
	// fresh joiners through it.
	hub *comm.Hub
	// join (elastic kind only) builds a fresh joiner's collective: the hub
	// registers a pending join and returns a handle whose JoinGroup blocks
	// until absorbed; TCP dials the group's join point and blocks until the
	// members' ReformGrow completes.
	join func(rank int, wait time.Duration) (comm.Collective, error)
	// pending (elastic kind only) reports the original ranks currently
	// registered as joiners, as visible to any live member — the supervisor
	// polls it to know a join request has landed before releasing the gate.
	pending func() []int
}

// newFaultScaffold assembles the scaffold for one phase of a supervised
// scenario. Each call builds a fresh group.
func newFaultScaffold(cfg *RecoveryConfig, kind scaffoldKind) (*faultScaffold, error) {
	n := cfg.Train.Workers
	if cfg.Transport != TransportTCP {
		hub := comm.NewHub(n)
		sc := &faultScaffold{hub: hub}
		if kind == scaffoldRestart {
			abort := func() {
				hub.Abort(fmt.Errorf("supervisor: rank %d declared dead: %w", cfg.KillRank, ErrSimulatedCrash))
			}
			sc.collFor = func(rank int) (comm.Collective, func(), error) {
				return hub.Worker(rank), abort, nil
			}
			sc.teardown = abort
			return sc, nil
		}
		hub.SetReformTimeout(cfg.watchdog())
		die := func() {
			hub.Abort(fmt.Errorf("supervisor: rank %d process died: %w", cfg.KillRank, comm.ErrPeerDead))
		}
		sc.collFor = func(rank int) (comm.Collective, func(), error) {
			return hub.Worker(rank), die, nil
		}
		sc.teardown = func() {
			hub.Abort(fmt.Errorf("harness watchdog teardown: %w", comm.ErrPeerDead))
		}
		if kind == scaffoldElastic {
			sc.join = func(rank int, _ time.Duration) (comm.Collective, error) {
				return hub.Join(rank)
			}
			sc.pending = func() []int {
				return hub.Worker(0).PendingJoins()
			}
		}
		return sc, nil
	}

	addrs, err := freeLoopbackAddrs(n)
	if err != nil {
		return nil, err
	}
	var dial func(rank int) (tcpFaultRing, error)
	switch kind {
	case scaffoldRestart:
		dial = func(rank int) (tcpFaultRing, error) {
			return comm.DialTCPRingConfig(cfg.ringConfig(rank, addrs))
		}
	case scaffoldReform:
		dial = func(rank int) (tcpFaultRing, error) {
			return comm.DialRing(cfg.ringConfig(rank, addrs))
		}
	case scaffoldElastic:
		dial = func(rank int) (tcpFaultRing, error) {
			return comm.DialElasticRing(cfg.ringConfig(rank, addrs))
		}
	}
	var mu sync.Mutex
	var rings []tcpFaultRing
	sc := &faultScaffold{}
	sc.collFor = func(rank int) (comm.Collective, func(), error) {
		ring, err := dial(rank)
		if err != nil {
			return nil, nil, err
		}
		mu.Lock()
		rings = append(rings, ring)
		mu.Unlock()
		die := ring.Kill
		if cfg.KillMode == "hang" {
			die = ring.Hang
		}
		return ring, die, nil
	}
	sc.teardown = func() {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range rings {
			if kind == scaffoldRestart {
				r.Close()
			} else {
				r.Kill()
			}
		}
	}
	if kind == scaffoldElastic {
		sc.join = func(rank int, wait time.Duration) (comm.Collective, error) {
			ring, err := comm.JoinElasticRing(cfg.ringConfig(rank, addrs), wait)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			rings = append(rings, ring)
			mu.Unlock()
			return ring, nil
		}
		sc.pending = func() []int {
			mu.Lock()
			defer mu.Unlock()
			var out []int
			for _, r := range rings {
				if er, ok := r.(*comm.ElasticRing); ok {
					out = append(out, er.PendingJoins()...)
				}
			}
			return out
		}
	}
	return sc, nil
}
