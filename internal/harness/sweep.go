package harness

import (
	"fmt"

	"repro/internal/grace"
	"repro/internal/simnet"
)

// MethodSpec is one evaluated configuration of a compression method, with
// the degree-of-compression parameters the paper uses in its figure legends
// (e.g. "Topk(0.01)", "QSGD(64)").
type MethodSpec struct {
	Label string
	Name  string
	Opts  grace.Options
	// EF enables the framework error-feedback memory. Methods with built-in
	// memory keep it false regardless of the paper's EF-On column.
	EF bool
}

// ExtensionMethods are registered methods that go beyond the paper's 16
// implemented ones; they are evaluated by dedicated ablation experiments
// rather than the main Figure 6/7 sweeps.
var ExtensionMethods = map[string]bool{
	"huffterngrad": true,
	"huffqsgd":     true,
	"signsgdmv":    true,
}

// Suite returns the paper's evaluated method set (§V, Figure legends) with
// the default degrees of compression, plus the ATOMO extension. Error
// feedback follows Table I's EF-On column, honoring built-in memories.
func Suite() []MethodSpec {
	specs := []MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "SignSGD", Name: "signsgd"},
		{Label: "SIGNUM", Name: "signum"},
		{Label: "EFsignSGD", Name: "efsignsgd", EF: true},
		{Label: "1-bit SGD", Name: "onebit"},
		{Label: "QSGD(64)", Name: "qsgd", Opts: grace.Options{Levels: 64}},
		{Label: "TernGrad", Name: "terngrad"},
		{Label: "Natural", Name: "natural", EF: true},
		{Label: "8-bit", Name: "eightbit", EF: true},
		{Label: "INCEPTIONN", Name: "inceptionn"},
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "Randk(0.01)", Name: "randomk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "Thresh(0.01)", Name: "thresholdv", Opts: grace.Options{Threshold: 0.01}, EF: true},
		{Label: "DGC(0.01)", Name: "dgc", Opts: grace.Options{Ratio: 0.01}},
		{Label: "Adaptive(0.01)", Name: "adaptive", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "SketchML(64)", Name: "sketchml", Opts: grace.Options{Levels: 64}, EF: true},
		{Label: "3LC", Name: "threelc"},
		{Label: "PowerSGD(4)", Name: "powersgd", Opts: grace.Options{Rank: 4}},
		{Label: "ATOMO(3)", Name: "atomo", Opts: grace.Options{Rank: 3}},
	}
	return specs
}

// SuiteByLabel finds a spec in the default suite.
func SuiteByLabel(label string) (MethodSpec, error) {
	for _, s := range Suite() {
		if s.Label == label {
			return s, nil
		}
	}
	return MethodSpec{}, fmt.Errorf("harness: unknown method label %q", label)
}

// SweepConfig sets the system configuration of an experiment run.
type SweepConfig struct {
	Workers int
	Net     simnet.Link
	// Scale multiplies benchmark epochs (and is the knob that trades
	// fidelity for runtime; 1.0 = DESIGN.md defaults).
	Scale float64
	Seed  uint64
	// CodecParallelism bounds each worker's Engine codec lanes; 0 selects
	// GOMAXPROCS (see grace.EngineConfig).
	CodecParallelism int
	// FusionBytes, when > 0, enables tensor-fusion batching with that bucket
	// fill target (see grace.FusionConfig.TargetBytes); 0 keeps the paper's
	// per-tensor collective schedule.
	FusionBytes int
	// XRank configures the cross-rank observability plane for the run (event
	// recording, trace aggregation cadence, flight recorder); the zero value
	// keeps it off. See grace.XRankConfig.
	XRank grace.XRankConfig
}

// DefaultSweep matches the paper's default system setup: 8 workers on
// 10 Gbps TCP (§V-A).
func DefaultSweep() SweepConfig {
	return SweepConfig{Workers: 8, Net: simnet.TCP10G, Scale: 1.0, Seed: 42}
}

// RunOne trains benchmark b under the given method and returns the report.
func RunOne(b Benchmark, spec MethodSpec, sc SweepConfig) (*grace.Report, error) {
	cfg := grace.Config{
		Workers:      sc.Workers,
		BatchSize:    b.BatchSize,
		Epochs:       b.scaledEpochs(sc.Scale),
		Seed:         sc.Seed,
		NewModel:     b.NewModel,
		Dataset:      b.NewDataset(),
		NewOptimizer: b.NewOptimizer,
		NewCompressor: func(rank int) (grace.Compressor, error) {
			opts := spec.Opts
			opts.Seed = sc.Seed*1000 + uint64(rank)
			return grace.New(spec.Name, opts)
		},
		UseMemory:            spec.EF,
		CodecParallelism:     sc.CodecParallelism,
		Fusion:               grace.FusionConfig{TargetBytes: sc.FusionBytes},
		XRank:                sc.XRank,
		Net:                  sc.Net,
		ComputePerIter:       b.ComputePerIter,
		Eval:                 b.NewEval(),
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	rep, err := grace.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s / %s: %w", b.Name, spec.Label, err)
	}
	return rep, nil
}
