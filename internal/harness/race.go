//go:build race

package harness

// raceTimeoutScale stretches the harness's default watchdog and transport
// timeouts when the race detector is on: instrumented runs are several times
// slower, and a watchdog tuned for native speed turns real recoveries into
// flaky CI failures. Explicitly configured timeouts are never scaled — the
// caller said what they meant.
const raceTimeoutScale = 4
