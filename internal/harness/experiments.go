package harness

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/grace"
	"repro/internal/metrics"
	"repro/internal/simnet"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID          string
	Paper       string
	Description string
	Run         func(sc SweepConfig) ([]*Table, error)
}

// Experiments lists every reproducible table/figure keyed by id (DESIGN.md
// §5).
func Experiments() map[string]Experiment {
	exps := []Experiment{
		{ID: "table1", Paper: "Table I", Description: "taxonomy of implemented compression methods", Run: runTable1},
		{ID: "table2", Paper: "Table II", Description: "benchmark suite and baseline quality", Run: runTable2},
		{ID: "fig1", Paper: "Figure 1", Description: "accuracy vs epochs and vs wall time (VGG16 stand-in, 8 workers, 25 Gbps)", Run: runFig1},
		{ID: "fig8", Paper: "Figure 8", Description: "compress+decompress latency by input size", Run: runFig8},
		{ID: "fig9", Paper: "Figure 9", Description: "throughput TCP vs RDMA (ResNet-9 stand-in)", Run: runFig9},
		{ID: "fig10", Paper: "Figure 10", Description: "quality vs relative throughput at 1 Gbps (ResNet-50 stand-in)", Run: runFig10},
		{ID: "net25", Paper: "§V-A", Description: "throughput delta from 10 to 25 Gbps", Run: runNet25},
		{ID: "efablation", Paper: "§V-B EF findings", Description: "error-feedback on/off quality ablation", Run: runEFAblation},
		{ID: "huffablation", Paper: "related work [81]", Description: "Huffman entropy-coding stage ablation", Run: runHuffAblation},
		{ID: "packing", Paper: "§V-C footnote", Description: "bit-packing vs unpacked representation ablation", Run: runPackingAblation},
		{ID: "psablation", Paper: "§IV-A", Description: "ring allreduce vs parameter-server topology", Run: runPSAblation},
		{ID: "localsgd", Paper: "Table I (Qsparse-local-SGD)", Description: "compressed synchronization every H local steps", Run: runLocalSGD},
	}
	fig6 := []struct {
		id, bench, paper string
	}{
		{"fig6a", "cnnsmall", "Figure 6a"},
		{"fig6b", "cnnmid", "Figure 6b"},
		{"fig6c", "cnnlarge", "Figure 6c"},
		{"fig6d", "ncf", "Figure 6d"},
		{"fig6e", "lstm", "Figure 6e"},
		{"fig6f", "segnet", "Figure 6f"},
	}
	for _, f := range fig6 {
		f := f
		exps = append(exps, Experiment{
			ID: f.id, Paper: f.paper,
			Description: "quality vs relative throughput, " + f.bench,
			Run: func(sc SweepConfig) ([]*Table, error) {
				return runSweep(f.bench, f.paper, sc)
			},
		})
	}
	fig7 := []struct {
		id, bench, paper string
	}{
		{"fig7a", "cnnlarge", "Figure 7a"},
		{"fig7b", "lstm", "Figure 7b"},
		{"fig7c", "ncf", "Figure 7c"},
	}
	for _, f := range fig7 {
		f := f
		exps = append(exps, Experiment{
			ID: f.id, Paper: f.paper,
			Description: "quality vs relative data volume, " + f.bench,
			Run: func(sc SweepConfig) ([]*Table, error) {
				return runSweep(f.bench, f.paper, sc)
			},
		})
	}
	out := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		out[e.ID] = e
	}
	return out
}

// ExperimentIDs returns sorted experiment ids.
func ExperimentIDs() []string {
	m := Experiments()
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// --- Table I ---

func runTable1(sc SweepConfig) ([]*Table, error) {
	t := &Table{
		Title:  "Table I: classification of implemented gradient compression methods",
		Header: []string{"method", "class", "|g~|_0", "nature", "EF-on", "builtin-EF", "strategy", "reference"},
	}
	for _, m := range grace.All() {
		c, err := m.New(grace.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(m.Name, m.Class, m.Output, m.Nature, yesNo(m.DefaultEF), yesNo(m.BuiltinEF), c.Strategy().String(), m.Reference)
	}
	return []*Table{t}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// --- Table II ---

func runTable2(sc SweepConfig) ([]*Table, error) {
	t := &Table{
		Title: "Table II: benchmarks and baseline quality (scaled stand-ins)",
		Header: []string{"benchmark", "stands in for", "task", "params", "grad vectors",
			"epochs", "metric", "baseline quality"},
	}
	for _, b := range Benchmarks() {
		rep, err := RunOne(b, MethodSpec{Label: "Baseline", Name: "none"}, sc)
		if err != nil {
			return nil, err
		}
		model := b.NewModel(0)
		t.AddRow(b.Name, b.PaperModel, b.Task, TrainingParams(model), GradientVectors(model),
			b.scaledEpochs(sc.Scale), b.Metric, rep.BestQuality)
	}
	return []*Table{t}, nil
}

// --- Figure 1 ---

func runFig1(sc SweepConfig) ([]*Table, error) {
	b, err := BenchmarkByName("mlpwide")
	if err != nil {
		return nil, err
	}
	sc.Net = simnet.TCP25G
	specs := []MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "Randk(0.01)", Name: "randomk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "8-bit", Name: "eightbit", EF: true},
	}
	epochsT := &Table{
		Title:  "Figure 1a: top-1 accuracy vs epochs (VGG16 stand-in, 8 workers, 25 Gbps)",
		Header: []string{"epoch", "Baseline", "Randk(0.01)", "8-bit"},
	}
	timeT := &Table{
		Title:  "Figure 1b: top-1 accuracy vs virtual wall time",
		Header: []string{"epoch", "Baseline t(s)", "Baseline acc", "Randk t(s)", "Randk acc", "8-bit t(s)", "8-bit acc"},
	}
	reps := make([]*grace.Report, len(specs))
	for i, spec := range specs {
		reps[i], err = RunOne(b, spec, sc)
		if err != nil {
			return nil, err
		}
	}
	epochs := len(reps[0].EpochQuality)
	for e := 0; e < epochs; e++ {
		epochsT.AddRow(e+1, reps[0].EpochQuality[e], reps[1].EpochQuality[e], reps[2].EpochQuality[e])
		timeT.AddRow(e+1,
			reps[0].EpochVirtualTime[e].Seconds(), reps[0].EpochQuality[e],
			reps[1].EpochVirtualTime[e].Seconds(), reps[1].EpochQuality[e],
			reps[2].EpochVirtualTime[e].Seconds(), reps[2].EpochQuality[e])
	}
	return []*Table{epochsT, timeT}, nil
}

// --- Figures 6 & 7 (shared sweep) ---

func runSweep(bench, paper string, sc SweepConfig) ([]*Table, error) {
	b, err := BenchmarkByName(bench)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("%s: %s (%s) — quality vs relative throughput and data volume, %d workers, %s",
			paper, b.Name, b.PaperModel, sc.Workers, sc.Net.Name),
		Header: []string{"method", b.Metric, "rel throughput", "rel volume/iter", "throughput (samples/s)", "bytes/iter"},
	}
	var baseTP, baseVol float64
	for _, spec := range Suite() {
		rep, err := RunOne(b, spec, sc)
		if err != nil {
			return nil, err
		}
		if spec.Name == "none" {
			baseTP = rep.Throughput
			baseVol = rep.BytesPerIter
		}
		t.AddRow(spec.Label, rep.BestQuality,
			metrics.Relative(rep.Throughput, baseTP),
			metrics.Relative(rep.BytesPerIter, baseVol),
			rep.Throughput, rep.BytesPerIter)
	}
	return []*Table{t}, nil
}

// --- Figure 9 ---

func runFig9(sc SweepConfig) ([]*Table, error) {
	b, err := BenchmarkByName("cnnfast")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9: throughput TCP vs RDMA at 25 Gbps (ResNet-9 stand-in)",
		Header: []string{"method", "TCP (samples/s)", "RDMA (samples/s)", "RDMA/TCP"},
	}
	for _, spec := range Suite() {
		scTCP := sc
		scTCP.Net = simnet.TCP25G
		tcp, err := RunOne(b, spec, scTCP)
		if err != nil {
			return nil, err
		}
		scRDMA := sc
		scRDMA.Net = simnet.RDMA25G
		rdma, err := RunOne(b, spec, scRDMA)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.Label, tcp.Throughput, rdma.Throughput,
			metrics.Relative(rdma.Throughput, tcp.Throughput))
	}
	return []*Table{t}, nil
}

// --- Figure 10 ---

func runFig10(sc SweepConfig) ([]*Table, error) {
	sc.Net = simnet.TCP1G
	return runSweep("cnnlarge", "Figure 10", sc)
}

// --- §V-A: 10 vs 25 Gbps ---

func runNet25(sc SweepConfig) ([]*Table, error) {
	t := &Table{
		Title:  "§V-A: throughput moving from 10 Gbps to 25 Gbps",
		Header: []string{"benchmark", "method", "10G (samples/s)", "25G (samples/s)", "improvement"},
	}
	specs := []MethodSpec{
		{Label: "Baseline", Name: "none"},
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}, EF: true},
		{Label: "QSGD(64)", Name: "qsgd", Opts: grace.Options{Levels: 64}},
	}
	for _, bench := range []string{"cnnmid", "mlpwide"} {
		b, err := BenchmarkByName(bench)
		if err != nil {
			return nil, err
		}
		for _, spec := range specs {
			sc10 := sc
			sc10.Net = simnet.TCP10G
			r10, err := RunOne(b, spec, sc10)
			if err != nil {
				return nil, err
			}
			sc25 := sc
			sc25.Net = simnet.TCP25G
			r25, err := RunOne(b, spec, sc25)
			if err != nil {
				return nil, err
			}
			t.AddRow(bench, spec.Label, r10.Throughput, r25.Throughput,
				metrics.Relative(r25.Throughput, r10.Throughput))
		}
	}
	return []*Table{t}, nil
}

// --- §V-B: error-feedback ablation ---

func runEFAblation(sc SweepConfig) ([]*Table, error) {
	methods := []MethodSpec{
		{Label: "Topk(0.01)", Name: "topk", Opts: grace.Options{Ratio: 0.01}},
		{Label: "Randk(0.01)", Name: "randomk", Opts: grace.Options{Ratio: 0.01}},
		{Label: "8-bit", Name: "eightbit"},
		{Label: "Natural", Name: "natural"},
		{Label: "QSGD(64)", Name: "qsgd", Opts: grace.Options{Levels: 64}},
		{Label: "TernGrad", Name: "terngrad"},
		{Label: "SignSGD", Name: "signsgd"},
	}
	var tables []*Table
	for _, bench := range []string{"mlpwide", "ncf"} {
		b, err := BenchmarkByName(bench)
		if err != nil {
			return nil, err
		}
		t := &Table{
			Title:  fmt.Sprintf("EF ablation on %s (%s): %s with and without error feedback", b.Name, b.PaperModel, b.Metric),
			Header: []string{"method", "EF off", "EF on", "delta"},
		}
		for _, m := range methods {
			off := m
			off.EF = false
			on := m
			on.EF = true
			rOff, err := RunOne(b, off, sc)
			if err != nil {
				return nil, err
			}
			rOn, err := RunOne(b, on, sc)
			if err != nil {
				return nil, err
			}
			t.AddRow(m.Label, rOff.BestQuality, rOn.BestQuality, rOn.BestQuality-rOff.BestQuality)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// --- Figure 8 ---

// codecInput builds the compressor and deterministic d-element gradient the
// codec micro-benchmarks run over.
func codecInput(spec MethodSpec, d int, seed uint64) (grace.Compressor, []float32, grace.TensorInfo, error) {
	opts := spec.Opts
	opts.Seed = seed
	c, err := grace.New(spec.Name, opts)
	if err != nil {
		return nil, nil, grace.TensorInfo{}, err
	}
	rows := 1
	for rows*rows < d {
		rows *= 2
	}
	info := grace.NewTensorInfo("bench", []int{rows, (d + rows - 1) / rows})
	g := make([]float32, info.Size())
	rng := newLCG(seed)
	for i := range g {
		g[i] = rng.norm() * 0.1
	}
	return c, g, info, nil
}

// CodecLatency measures compress+decompress wall time for one method over a
// d-element tensor, returning per-repetition durations.
func CodecLatency(spec MethodSpec, d, reps int, seed uint64) ([]time.Duration, error) {
	c, g, info, err := codecInput(spec, d, seed)
	if err != nil {
		return nil, err
	}
	out := make([]time.Duration, reps)
	for r := 0; r < reps; r++ {
		start := time.Now()
		p, err := c.Compress(g, info)
		if err != nil {
			return nil, err
		}
		if _, err := c.Decompress(p, info); err != nil {
			return nil, err
		}
		out[r] = time.Since(start)
	}
	return out, nil
}

// CodecVolume compresses one d-element tensor and reports its payload wire
// bytes — the per-worker sent volume CodecLatency's timing runs over, for
// benchmark artifact emission.
func CodecVolume(spec MethodSpec, d int, seed uint64) (int, error) {
	c, g, info, err := codecInput(spec, d, seed)
	if err != nil {
		return 0, err
	}
	p, err := c.Compress(g, info)
	if err != nil {
		return 0, err
	}
	return p.WireBytes(), nil
}

func runFig8(sc SweepConfig) ([]*Table, error) {
	sizesMB := []int{1, 10}
	reps := 5
	if sc.Scale >= 1 {
		sizesMB = append(sizesMB, 100)
		reps = 10
	}
	t := &Table{
		Title:  "Figure 8: compress+decompress latency (CPU Go substrate)",
		Header: []string{"method", "input", "min (ms)", "mean (ms)", "max (ms)"},
	}
	for _, spec := range Suite() {
		if spec.Name == "none" {
			continue
		}
		for _, mb := range sizesMB {
			d := mb * 1024 * 1024 / 4
			durs, err := CodecLatency(spec, d, reps, 7)
			if err != nil {
				return nil, err
			}
			min, max, sum := durs[0], durs[0], time.Duration(0)
			for _, d := range durs {
				if d < min {
					min = d
				}
				if d > max {
					max = d
				}
				sum += d
			}
			mean := sum / time.Duration(len(durs))
			t.AddRow(spec.Label, fmt.Sprintf("%dMB", mb),
				float64(min)/1e6, float64(mean)/1e6, float64(max)/1e6)
		}
	}
	return []*Table{t}, nil
}

// newLCG is a tiny local generator for benchmark inputs, avoiding fxrand so
// this file's hot loop is self-contained.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// norm approximates a standard normal by summing uniforms (Irwin-Hall).
func (l *lcg) norm() float32 {
	var s float32
	for i := 0; i < 4; i++ {
		s += float32(l.next()>>40) / (1 << 24)
	}
	return (s - 2) * 1.732
}
