package harness

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"reflect"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/grace"
	"repro/internal/grace/autotune"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/simnet"
)

// Transport selects the collective substrate a recovery experiment runs on.
// Hub and TCP rings reduce in different floating-point orders, so the
// uninterrupted reference run always uses the same transport as the
// crash/recovery run — bitwise comparison is only meaningful within one.
const (
	TransportHub = "hub"
	TransportTCP = "tcp"
)

// ErrSimulatedCrash marks the kill a recovery scenario injects into one
// worker: the rank stops dead right after its step-boundary checkpoint, as a
// SIGKILL would, and the supervisor must recover the group from disk.
var ErrSimulatedCrash = errors.New("harness: simulated worker crash")

// RecoveryConfig describes one supervised crash/recovery experiment: train
// with periodic checkpoints, kill one rank mid-run, roll every rank back to
// the newest checkpoint step they all hold, restart, and require the final
// weights to match an uninterrupted run bit for bit.
type RecoveryConfig struct {
	// Train is the base run. Checkpoint and OnStep are owned by the
	// supervisor and must be nil.
	Train grace.Config
	// Dir is the checkpoint root; per-rank subdirectories are created inside.
	Dir string
	// Every is the checkpoint cadence in optimizer steps.
	Every int
	// KillRank dies immediately after step KillStep's checkpoint is durable.
	KillRank int
	KillStep int64
	// KillMode selects how a TCP victim dies: "kill" (default) severs its
	// sockets like a process death; "hang" freezes it with sockets open, so
	// the survivors' liveness layer must convict through the heartbeat miss
	// window instead of a socket reset. Ignored on the hub.
	KillMode string
	// Transport is TransportHub (default) or TransportTCP.
	Transport string
	// Heartbeat configures the TCP ring liveness layer; 0 selects 25ms.
	// Ignored on the hub, which has supervisor-driven abort instead.
	Heartbeat time.Duration
	// Timeout is the per-phase watchdog; 0 selects 60s (scaled up under the
	// race detector — see raceTimeoutScale). Explicit values are used as-is.
	Timeout time.Duration
	// RejoinDeadline is how long elastic survivors hold the door open for a
	// lost rank before voting to shrink (RunElastic/RunElasticGrow only);
	// 0 selects 500ms (race-scaled).
	RejoinDeadline time.Duration
	// SetupTimeout and OpTimeout configure the TCP ring; zero selects 10s
	// and 30s respectively (race-scaled). Ignored on the hub.
	SetupTimeout time.Duration
	OpTimeout    time.Duration
}

// elasticDeadline returns the effective shrink-vote deadline.
func (cfg *RecoveryConfig) elasticDeadline() time.Duration {
	if cfg.RejoinDeadline > 0 {
		return cfg.RejoinDeadline
	}
	return 500 * time.Millisecond * raceTimeoutScale
}

// watchdog returns the effective per-phase watchdog timeout.
func (cfg *RecoveryConfig) watchdog() time.Duration {
	if cfg.Timeout > 0 {
		return cfg.Timeout
	}
	return 60 * time.Second * raceTimeoutScale
}

// ringConfig assembles the TCP ring configuration shared by the recovery and
// rejoin batteries, applying the defaults and race scaling.
func (cfg *RecoveryConfig) ringConfig(rank int, addrs []string) comm.RingConfig {
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = 25 * time.Millisecond
	}
	setup := cfg.SetupTimeout
	if setup <= 0 {
		setup = 10 * time.Second * raceTimeoutScale
	}
	op := cfg.OpTimeout
	if op <= 0 {
		op = 30 * time.Second * raceTimeoutScale
	}
	return comm.RingConfig{
		Rank: rank, Addrs: addrs,
		SetupTimeout: setup,
		OpTimeout:    op,
		Heartbeat:    hb,
		Seed:         cfg.Train.Seed,
	}
}

// RecoveryResult reports what the supervisor observed.
type RecoveryResult struct {
	// ResumeStep is the step every rank was rolled back to (the newest
	// checkpoint all ranks hold).
	ResumeStep int64
	// KillErrs holds each rank's error from the crashed phase: the victim's
	// simulated kill, the survivors' typed collective failures.
	KillErrs []error
	// Match reports bitwise equality of the recovered and reference finals.
	Match  bool
	Detail string
	// Downtime is the wall-clock span from the kill to the first completed
	// optimizer step of the restarted group — what the full-restart recovery
	// path costs, for comparison against RunRejoin's Downtime.
	Downtime time.Duration
	// Reference and Recovered are the per-rank final snapshots.
	Reference, Recovered []*grace.Snapshot
}

// DefaultRecovery builds the standard kill/restart scenario: a small MLP
// classification run sized so checkpoints land mid-epoch (3 workers × 4
// iters/epoch × 2 epochs = 8 lockstep steps), checkpointing every 3 steps,
// with rank 1 dying at step 5 — between two checkpoint boundaries, so the
// rollback replays steps the victim had already taken.
func DefaultRecovery(transport, method string, mem bool, dir string) RecoveryConfig {
	ds := data.NewImages(data.ImagesConfig{Classes: 4, C: 1, H: 8, W: 8, N: 96, Noise: 0.3, Seed: 7})
	return RecoveryConfig{
		Train: grace.Config{
			Workers:   3,
			BatchSize: 8,
			Epochs:    2,
			Seed:      13,
			NewModel: func(seed uint64) grace.Model {
				return models.NewMLPClassifier(seed, 64, []int{24}, 4)
			},
			Dataset:      ds,
			NewOptimizer: func() optim.Optimizer { return optim.NewMomentumSGD(0.05, 0.9) },
			NewCompressor: func(rank int) (grace.Compressor, error) {
				return grace.New(method, grace.Options{Seed: uint64(rank) + 1, Ratio: 0.25, Levels: 8})
			},
			UseMemory:        mem,
			CodecParallelism: 2,
			// Run fused so crash/restart also proves the fused schedule
			// recovers: checkpoints carry the policy and resume validates it.
			Fusion: grace.FusionConfig{TargetBytes: 4096},
			Net:    simnet.TCP10G,
		},
		Dir:       dir,
		Every:     3,
		KillRank:  1,
		KillStep:  5,
		Transport: transport,
	}
}

// AutotuneRecovery is the kill/restart scenario with the workers in
// autotuning mode: a short-cadence policy over three candidates, so the 8
// lockstep steps cover warmup probing, flush handoffs, and a scored
// decision, and the step-3 checkpoint lands mid-warmup — the restart must
// resume the policy trajectory bitwise, not just the weights. Fusion stays
// off (the Engine rejects it in tuner mode).
func AutotuneRecovery(transport, dir string) RecoveryConfig {
	cfg := DefaultRecovery(transport, "", true, dir)
	cfg.Train.NewCompressor = nil
	cfg.Train.Fusion = grace.FusionConfig{}
	workers, link := cfg.Train.Workers, cfg.Train.Net
	cfg.Train.NewTuner = func() (grace.Tuner, error) {
		return autotune.New(autotune.Config{
			Candidates: []grace.TunerCandidate{
				{Label: "none", Method: "none"},
				{Label: "topk@0.25", Method: "topk", Opts: grace.Options{Ratio: 0.25}},
				{Label: "eightbit", Method: "eightbit"},
			},
			Every:   1,
			Workers: workers,
			Link:    link,
		})
	}
	return cfg
}

// RunRecovery executes the full supervised kill/restart scenario.
func RunRecovery(cfg RecoveryConfig) (*RecoveryResult, error) {
	n := cfg.Train.Workers
	if cfg.Train.Checkpoint != nil || cfg.Train.OnStep != nil {
		return nil, fmt.Errorf("harness: recovery owns Checkpoint and OnStep")
	}
	if cfg.Dir == "" || cfg.Every <= 0 {
		return nil, fmt.Errorf("harness: recovery needs Dir and Every")
	}
	if cfg.KillRank < 0 || cfg.KillRank >= n {
		return nil, fmt.Errorf("harness: kill rank %d out of [0,%d)", cfg.KillRank, n)
	}
	if cfg.KillStep <= 0 {
		return nil, fmt.Errorf("harness: kill step must be positive")
	}
	switch cfg.Transport {
	case "", TransportHub, TransportTCP:
	default:
		return nil, fmt.Errorf("harness: unknown transport %q", cfg.Transport)
	}
	switch cfg.KillMode {
	case "", "kill", "hang":
	default:
		return nil, fmt.Errorf("harness: unknown kill mode %q", cfg.KillMode)
	}

	// Uninterrupted reference on the same transport.
	refFinals, refErrs, err := runRecoveryPhase(cfg, phaseOpts{})
	if err != nil {
		return nil, err
	}
	for rank, err := range refErrs {
		if err != nil {
			return nil, fmt.Errorf("harness: reference rank %d: %w", rank, err)
		}
	}

	// Supervised run, attempt 0: checkpoints to disk, one rank dies.
	var killT time.Time
	_, killErrs, err := runRecoveryPhase(cfg, phaseOpts{dir: cfg.Dir, kill: true,
		onStep: func(rank int, step int64) {
			if rank == cfg.KillRank && step == cfg.KillStep {
				killT = time.Now()
			}
		}})
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{KillErrs: killErrs, Reference: refFinals}
	if !errors.Is(killErrs[cfg.KillRank], ErrSimulatedCrash) {
		return nil, fmt.Errorf("harness: victim rank %d error = %v, want simulated crash",
			cfg.KillRank, killErrs[cfg.KillRank])
	}
	for rank, err := range killErrs {
		if rank == cfg.KillRank {
			continue
		}
		if err == nil {
			return nil, fmt.Errorf("harness: rank %d completed despite the crash (kill step too late?)", rank)
		}
		if cfg.Transport == TransportTCP && !errors.Is(err, comm.ErrPeerDead) {
			return nil, fmt.Errorf("harness: survivor rank %d error = %v, want the liveness layer's ErrPeerDead", rank, err)
		}
	}

	// Roll back to the newest step every rank can actually load — ranks may
	// have checkpointed unevenly around the crash — and restart all of them.
	res.ResumeStep = ckpt.CommonStep(cfg.Dir, n)
	if res.ResumeStep < 0 {
		return nil, fmt.Errorf("harness: no common checkpoint step across %d ranks", n)
	}
	resume := make([]*grace.Snapshot, n)
	for rank := range resume {
		d, err := ckpt.OpenDir(cfg.Dir, rank)
		if err != nil {
			return nil, err
		}
		if resume[rank], err = ckpt.Load(d.Path(res.ResumeStep)); err != nil {
			return nil, fmt.Errorf("harness: loading rank %d step %d: %w", rank, res.ResumeStep, err)
		}
	}
	var firstStep sync.Once
	recFinals, recErrs, err := runRecoveryPhase(cfg, phaseOpts{dir: cfg.Dir, resume: resume,
		onStep: func(int, int64) {
			firstStep.Do(func() {
				if !killT.IsZero() {
					res.Downtime = time.Since(killT)
				}
			})
		}})
	if err != nil {
		return nil, err
	}
	for rank, err := range recErrs {
		if err != nil {
			return nil, fmt.Errorf("harness: recovered rank %d: %w", rank, err)
		}
	}
	res.Recovered = recFinals
	res.Match, res.Detail = snapshotsBitwiseEqual(recFinals, refFinals)
	return res, nil
}

// phaseOpts selects one phase of the scenario: reference (zero value),
// crash (kill), or restart (resume).
type phaseOpts struct {
	dir    string // "" disables on-disk checkpoints (finals still captured)
	kill   bool
	resume []*grace.Snapshot
	// onStep, when set, observes every rank's completed steps (called before
	// any kill action) — the downtime measurements hang off it.
	onStep func(rank int, step int64)
}

// runRecoveryPhase runs all ranks once over a fresh collective group and
// returns their final snapshots and errors. The returned error reports
// infrastructure problems only; training/crash errors land in errs.
func runRecoveryPhase(cfg RecoveryConfig, opts phaseOpts) (finals []*grace.Snapshot, errs []error, _ error) {
	n := cfg.Train.Workers
	finals = make([]*grace.Snapshot, n)
	errs = make([]error, n)

	sc, err := newFaultScaffold(&cfg, scaffoldRestart)
	if err != nil {
		return nil, nil, err
	}

	cluster := simnetClusterFor(cfg.Train)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for rank := 0; rank < n; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				coll, die, err := sc.collFor(rank)
				if err != nil {
					errs[rank] = err
					return
				}
				if c, ok := coll.(io.Closer); ok {
					defer c.Close()
				}
				tc := cfg.Train
				var d *ckpt.Dir
				if opts.dir != "" {
					if d, err = ckpt.OpenDir(opts.dir, rank); err != nil {
						errs[rank] = err
						return
					}
				}
				tc.Checkpoint = &grace.CheckpointConfig{
					Every: cfg.Every,
					Final: true,
					Save: func(s *grace.Snapshot) error {
						finals[rank] = s
						if d != nil {
							return d.SaveStep(s)
						}
						return nil
					},
				}
				if opts.resume != nil {
					tc.Checkpoint.Resume = opts.resume[rank]
				}
				kill := opts.kill && rank == cfg.KillRank
				if obs := opts.onStep; obs != nil || kill {
					tc.OnStep = func(_ int, step int64) error {
						if obs != nil {
							obs(rank, step)
						}
						if kill && step == cfg.KillStep {
							die()
							return ErrSimulatedCrash
						}
						return nil
					}
				}
				_, errs[rank] = grace.RunWorker(tc, rank, coll, cluster)
			}(rank)
		}
		wg.Wait()
	}()

	timeout := cfg.watchdog()
	select {
	case <-done:
		return finals, errs, nil
	case <-time.After(timeout):
		sc.teardown()
		<-done
		return nil, nil, fmt.Errorf("harness: recovery phase watchdog fired after %v", timeout)
	}
}

// snapshotsBitwiseEqual compares per-rank final params — and, in autotuning
// runs, the policy state — bit for bit.
func snapshotsBitwiseEqual(got, want []*grace.Snapshot) (bool, string) {
	for rank := range want {
		g, w := got[rank], want[rank]
		if g == nil || w == nil {
			return false, fmt.Sprintf("rank %d: missing final snapshot", rank)
		}
		if g.Step != w.Step {
			return false, fmt.Sprintf("rank %d: final step %d, want %d", rank, g.Step, w.Step)
		}
		if (g.Tuner == nil) != (w.Tuner == nil) {
			return false, fmt.Sprintf("rank %d: tuner presence %v, want %v", rank, g.Tuner != nil, w.Tuner != nil)
		}
		if g.Tuner != nil && !reflect.DeepEqual(g.Tuner, w.Tuner) {
			return false, fmt.Sprintf("rank %d: policy state diverged:\n got %+v\nwant %+v", rank, g.Tuner, w.Tuner)
		}
		if len(g.Params) != len(w.Params) {
			return false, fmt.Sprintf("rank %d: %d params, want %d", rank, len(g.Params), len(w.Params))
		}
		for i := range w.Params {
			for j := range w.Params[i].Data {
				gb := math.Float32bits(g.Params[i].Data[j])
				wb := math.Float32bits(w.Params[i].Data[j])
				if gb != wb {
					return false, fmt.Sprintf("rank %d: %s[%d] = %08x, want %08x",
						rank, w.Params[i].Name, j, gb, wb)
				}
			}
		}
	}
	return true, ""
}

// simnetClusterFor builds the virtual-time cluster matching the run's
// communication architecture.
func simnetClusterFor(tc grace.Config) simnet.Cluster {
	if tc.ParamServer {
		return simnet.NewStarCluster(tc.Net, tc.Workers)
	}
	return simnet.NewCluster(tc.Net, tc.Workers)
}

// freeLoopbackAddrs reserves n distinct loopback ports by briefly listening
// on them.
func freeLoopbackAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs, nil
}
