// Package harness defines the benchmark suite (the paper's Table II, scaled
// to the Go substrate) and the experiment implementations that regenerate
// every table and figure of the evaluation section (§V). See DESIGN.md §5
// for the experiment index and EXPERIMENTS.md for paper-vs-measured results.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Print renders the table with aligned fixed-width columns.
func (t *Table) Print(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}
