package harness

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/fxrand"
	"repro/internal/grace"
	"repro/internal/grace/autotune"
	"repro/internal/simnet"
	"repro/internal/telemetry"
)

// This file is the autotune benchmark battery: one tuned training run
// against one static training run per candidate, compared on modeled step
// time. The comparison metric is NOT read off the training runs directly —
// their trajectories diverge (different compression histories produce
// different gradients, and sparsifier index coding is value-dependent), so
// comparing their clocks would be comparing two different workloads. Instead
// the battery freezes each run's policy and replays all of them over one
// common deterministic gradient stream shaped like the benchmark's model,
// charging the exchanged bytes against the same α-β cluster model the
// trainer's virtual clock uses. Per-tensor costs are independent under
// per-tensor collectives, so a policy that picks each tensor's cheapest
// candidate is additive-optimal, and two identical policies tie exactly.

// AutotuneRow is one run of the battery.
type AutotuneRow struct {
	// Label is the candidate label, or "autotune" for the tuned run.
	Label string
	Tuned bool
	// StepTime is the frozen policy's modeled step time on the common
	// replay stream: modeled comm per step + the benchmark's ComputePerIter.
	StepTime time.Duration
	// Switches and FinalPolicy echo the training run's Report (zero/nil for
	// static rows).
	Switches    int64
	FinalPolicy []string
	Report      *grace.Report
}

// AutotuneResult is the battery outcome.
type AutotuneResult struct {
	Bench   string
	Workers int
	Net     string
	// Rows holds the tuned row first, then one static row per candidate.
	Rows []AutotuneRow
	// Tuned and BestStatic point into Rows.
	Tuned      *AutotuneRow
	BestStatic *AutotuneRow
}

// DefaultAutotuneSweep is the autotune study's system point: 4 workers on
// 1 Gbps TCP — the communication-bound corner where method choice moves
// modeled wall-clock the most, and where the paper's Figure 10 shows the
// method ranking inverting.
func DefaultAutotuneSweep() SweepConfig {
	return SweepConfig{Workers: 4, Net: simnet.TCP1G, Scale: 1.0, Seed: 42}
}

// autotuneEvery is the battery's decision period. The stock benchmarks run
// few iterations per epoch, so a short period lets warmup (len(candidates)
// windows) finish with most of the run left in steady state.
const autotuneEvery = 2

// replaySteps is the length of the common replay stream the frozen policies
// are scored on.
const replaySteps = 8

// NewDefaultTuner returns a grace.Config.NewTuner factory for the stock
// candidate set under the sweep's link and group size. Every rank must build
// an identical policy, which is why the factory closes over the sweep
// config and nothing rank-dependent.
func NewDefaultTuner(sc SweepConfig) func() (grace.Tuner, error) {
	return func() (grace.Tuner, error) {
		return autotune.New(autotune.Config{
			Candidates: autotune.DefaultCandidates(),
			Every:      autotuneEvery,
			Workers:    sc.Workers,
			Link:       sc.Net,
		})
	}
}

// fixedTuner pins a constant per-tensor assignment over a candidate set; the
// replay probe uses it to run a frozen policy through the real codec and
// collective paths without any decision logic.
type fixedTuner struct {
	cands  []grace.TunerCandidate
	assign []int32
}

func (f *fixedTuner) Candidates() []grace.TunerCandidate { return f.cands }
func (f *fixedTuner) Sig() string                        { return "harness-fixed" }

func (f *fixedTuner) Init(infos []grace.TensorInfo) error {
	if len(f.assign) != len(infos) {
		return fmt.Errorf("harness: fixed policy covers %d tensors, engine has %d", len(f.assign), len(infos))
	}
	return nil
}

func (f *fixedTuner) Plan(dst []grace.TunerAssign) int {
	for i := range dst {
		dst[i] = grace.TunerAssign{Cand: int(f.assign[i])}
	}
	return 0
}

func (f *fixedTuner) Observe([]grace.TunerObs) {}
func (f *fixedTuner) State() *grace.TunerState {
	return &grace.TunerState{Sig: "harness-fixed", Cands: int32(len(f.cands))}
}
func (f *fixedTuner) LoadState(*grace.TunerState) error { return nil }

// benchInfos derives the benchmark model's tensor set, the same way the
// trainer registers it.
func benchInfos(b Benchmark, seed uint64) []grace.TensorInfo {
	params := b.NewModel(seed).Params()
	infos := make([]grace.TensorInfo, len(params))
	for i, p := range params {
		infos[i] = grace.NewTensorInfo(p.Name, p.Value.Shape())
	}
	return infos
}

// replayGrads is the common gradient stream: deterministic in (rank, step,
// tensor), identical for every policy being scored.
func replayGrads(rank, step int, infos []grace.TensorInfo) [][]float32 {
	r := fxrand.New(uint64(rank)*104729 + uint64(step)*31 + 5)
	out := make([][]float32, len(infos))
	for i, info := range infos {
		g := make([]float32, info.Size())
		for j := range g {
			g[j] = r.NormFloat32() * 0.1
		}
		out[i] = g
	}
	return out
}

// replayStepTime scores one frozen per-tensor assignment on the common
// stream: it runs the policy through real engines (with error-feedback
// memory, as the tuned run trains) on an in-process hub and averages the
// modeled comm time of the exchanged bytes, plus the benchmark's fixed
// compute model. Everything here is deterministic.
func replayStepTime(b Benchmark, sc SweepConfig, cands []grace.TunerCandidate, assign []int32) (time.Duration, error) {
	infos := benchInfos(b, sc.Seed)
	if len(assign) != len(infos) {
		return 0, fmt.Errorf("harness: policy covers %d tensors, model has %d", len(assign), len(infos))
	}
	cluster := simnet.NewCluster(sc.Net, sc.Workers)
	hub := comm.NewHub(sc.Workers)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var commTotal time.Duration
	errs := make([]error, sc.Workers)
	for rank := 0; rank < sc.Workers; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			eng, err := grace.NewEngine(
				grace.WithCollective(hub.Worker(rank)),
				grace.WithTuner(&fixedTuner{cands: cands, assign: assign}),
				grace.WithEngineMemory(grace.NewMemory(1, 1)),
				grace.WithParallelism(sc.CodecParallelism),
			)
			if err != nil {
				errs[rank] = err
				return
			}
			for step := 0; step < replaySteps; step++ {
				_, rep, err := eng.Step(replayGrads(rank, step, infos), infos)
				if err != nil {
					errs[rank] = err
					return
				}
				if rank == 0 {
					mu.Lock()
					commTotal += grace.ModeledStepCommTime(cluster, rep)
					mu.Unlock()
				}
			}
		}(rank)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("harness: policy replay: %w", err)
		}
	}
	return commTotal/replaySteps + b.ComputePerIter, nil
}

// RunAutotuneBench trains benchmark b once under the autotuner and once per
// static candidate, then scores every frozen policy on the common replay
// stream and ranks the runs on modeled step time.
func RunAutotuneBench(b Benchmark, sc SweepConfig) (*AutotuneResult, error) {
	res := &AutotuneResult{Bench: b.Name, Workers: sc.Workers, Net: sc.Net.Name}
	cands := autotune.DefaultCandidates()

	tunedCfg := grace.Config{
		Workers:              sc.Workers,
		BatchSize:            b.BatchSize,
		Epochs:               b.scaledEpochs(sc.Scale),
		Seed:                 sc.Seed,
		NewModel:             b.NewModel,
		Dataset:              b.NewDataset(),
		NewOptimizer:         b.NewOptimizer,
		NewTuner:             NewDefaultTuner(sc),
		UseMemory:            true,
		CodecParallelism:     sc.CodecParallelism,
		Net:                  sc.Net,
		ComputePerIter:       b.ComputePerIter,
		Eval:                 b.NewEval(),
		QualityLowerIsBetter: b.LowerIsBetter,
	}
	rep, err := grace.Run(tunedCfg)
	if err != nil {
		return nil, fmt.Errorf("harness: %s / autotune: %w", b.Name, err)
	}

	// Freeze the tuned run's final policy as a per-tensor assignment.
	byLabel := make(map[string]int32, len(cands))
	for i, c := range cands {
		byLabel[c.Label] = int32(i)
	}
	assign := make([]int32, len(rep.FinalPolicy))
	for i, label := range rep.FinalPolicy {
		c, ok := byLabel[label]
		if !ok {
			return nil, fmt.Errorf("harness: tuned run reports unknown candidate %q", label)
		}
		assign[i] = c
	}
	st, err := replayStepTime(b, sc, cands, assign)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, AutotuneRow{
		Label: "autotune", Tuned: true, StepTime: st,
		Switches: rep.Switches, FinalPolicy: rep.FinalPolicy, Report: rep,
	})

	// One static training run + frozen replay per candidate, under the same
	// error-feedback setting the tuned run uses for every candidate.
	nTensors := len(benchInfos(b, sc.Seed))
	for ci, cand := range cands {
		spec := MethodSpec{Label: cand.Label, Name: cand.Method, Opts: cand.Opts, EF: true}
		rep, err := RunOne(b, spec, sc)
		if err != nil {
			return nil, err
		}
		uniform := make([]int32, nTensors)
		for i := range uniform {
			uniform[i] = int32(ci)
		}
		st, err := replayStepTime(b, sc, cands, uniform)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AutotuneRow{Label: cand.Label, StepTime: st, Report: rep})
	}

	res.Tuned = &res.Rows[0]
	for i := 1; i < len(res.Rows); i++ {
		if res.BestStatic == nil || res.Rows[i].StepTime < res.BestStatic.StepTime {
			res.BestStatic = &res.Rows[i]
		}
	}
	return res, nil
}

// AutotuneArtifact renders a battery result as a BENCH_ artifact. NsPerOp is
// the tuned policy's modeled step time on the replay stream; Extra carries
// every row's step time and final quality plus the switch count, so the
// tuned-vs-best-static margin is tracked across PRs.
func AutotuneArtifact(res *AutotuneResult) telemetry.BenchArtifact {
	a := telemetry.BenchArtifact{
		Name:    "autotune_" + res.Bench,
		NsPerOp: float64(res.Tuned.StepTime.Nanoseconds()),
		Extra: map[string]float64{
			"workers":             float64(res.Workers),
			"switches":            float64(res.Tuned.Switches),
			"best_static_step_ns": float64(res.BestStatic.StepTime.Nanoseconds()),
			"tuned_quality":       res.Tuned.Report.FinalQuality,
		},
	}
	for _, r := range res.Rows {
		if !r.Tuned {
			a.Extra["static_"+r.Label+"_step_ns"] = float64(r.StepTime.Nanoseconds())
			a.Extra["static_"+r.Label+"_quality"] = r.Report.FinalQuality
		}
	}
	return a
}
